package gcx_test

import (
	"fmt"
	"log"
	"strings"

	"gcx"
)

// The introduction's query: children of bib without a price, then all book
// titles.
func Example() {
	eng, err := gcx.Compile(`
<r>{
  for $bib in /bib return
  ((for $x in $bib/* return
      if (not(exists($x/price))) then $x else ()),
   for $b in $bib/book return $b/title)
}</r>`)
	if err != nil {
		log.Fatal(err)
	}
	out, _, err := eng.RunString(
		`<bib><book><title>Streams</title><author>S. One</author></book>` +
			`<book><title>Buffers</title><price>30</price></book></bib>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
	// Output:
	// <r><book><title>Streams</title><author>S. One</author></book><title>Streams</title><title>Buffers</title></r>
}

// Buffer statistics quantify what active garbage collection saves: the
// peak never exceeds a handful of nodes even though the whole relevant
// region flows through the buffer.
func ExampleEngine_Run() {
	eng := gcx.MustCompile(`<out>{ for $b in /bib/book return $b/title }</out>`)

	var doc strings.Builder
	doc.WriteString("<bib>")
	for i := 0; i < 1000; i++ {
		doc.WriteString("<book><title>t</title><junk>x</junk></book>")
	}
	doc.WriteString("</bib>")

	_, stats, err := eng.RunString(doc.String())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("peak=%d nodes, purged=%d of %d buffered\n",
		stats.PeakBufferNodes, stats.PurgedTotal, stats.BufferedTotal)
	// Output:
	// peak=5 nodes, purged=3001 of 3001 buffered
}

// A corpus of documents evaluates in parallel across a worker pool,
// with results delivered strictly in corpus order — byte-identical to
// evaluating each document alone.
func ExampleEngine_Bulk() {
	eng := gcx.MustCompile(`<out>{ for $b in /bib/book return $b/title }</out>`)

	// Three documents concatenated into one stream (files and tar
	// archives work the same via CorpusFiles / CorpusTar).
	corpus := gcx.CorpusConcat(strings.NewReader(
		`<bib><book><title>One</title></book></bib>` +
			`<bib><book><title>Two</title></book></bib>` +
			`<bib><book><title>Three</title></book></bib>`))

	bs, err := eng.Bulk(corpus, gcx.BulkOptions{Workers: 2}, func(d gcx.BulkDoc) error {
		fmt.Printf("%s: %s\n", d.Name, d.Output)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d documents\n", bs.Docs)
	// Output:
	// doc[0]: <out><title>One</title></out>
	// doc[1]: <out><title>Two</title></out>
	// doc[2]: <out><title>Three</title></out>
	// 3 documents
}

// Explain exposes the static analysis: the projection tree (Figure 1 of
// the paper) and the rewritten query with signOff statements.
func ExampleEngine_Explain() {
	eng := gcx.MustCompile(`<out>{ for $b in /bib/book return $b/title }</out>`,
		gcx.WithoutOptimizations())
	explain := eng.Explain()
	// Print just the projection tree section.
	start := strings.Index(explain, "projection tree:")
	end := strings.Index(explain, "roles:")
	fmt.Print(explain[start:end])
	// Output:
	// projection tree:
	// n0: /
	//   n1: /bib  {r1}
	//     n2: /book  {r2}
	//       n3: /title
	//         n4: dos::node()  {r3}
	//
}

// Strategies let the paper's baselines run on the same query for
// comparison.
func ExampleWithStrategy() {
	doc := `<bib><book><title>a</title></book><book><title>b</title></book></bib>`
	query := `<out>{ for $b in /bib/book return $b/title }</out>`
	for _, s := range []gcx.Strategy{gcx.GCX, gcx.StaticOnly, gcx.FullBuffer} {
		eng := gcx.MustCompile(query, gcx.WithStrategy(s))
		_, stats, err := eng.RunString(doc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s purged %d\n", s, stats.PurgedTotal)
	}
	// Output:
	// GCX purged 7
	// StaticOnly purged 0
	// FullBuffer purged 0
}
