package gcx

// Registry is the v2 subscription API for shared-stream serving at scale:
// instead of compiling a fixed query list into one immutable Workload,
// clients Subscribe and Unsubscribe query texts incrementally and Run
// evaluates every active subscription over one pass of each document.
//
// Three properties make this the 10k-subscription regime (see DESIGN.md,
// "Subscription registry"):
//
//   - Dedup: subscriptions are grouped by query text. Each DISTINCT text
//     is compiled once and evaluated once per document, no matter how many
//     subscribers share it; results fan out to every subscriber's writer.
//
//   - Shared automaton: the distinct texts' projection trees merge with
//     node sharing (static.MergeTrees), so per-token matching cost scales
//     with the number of distinct path STRUCTURES, not the query count.
//
//   - Incremental compilation: Subscribe compiles only its own query;
//     the merged snapshot is rebuilt lazily on the next Run, reusing every
//     surviving member's compiled artifact.
//
// A Registry is safe for concurrent use: Subscribe/Unsubscribe may race
// active Runs. Each Run evaluates an immutable snapshot taken when it
// starts — churn during a run takes effect on the next one.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"gcx/internal/engine"
	"gcx/internal/static"
	"gcx/internal/workload"
	"gcx/internal/xmlstream"
)

// Sink supplies the output writer for each subscription of a Run. Writer
// is called once per active subscription at run start; returning nil
// discards that subscription's output for this run. Writers must be
// distinct per subscription (results stream progressively along the
// shared pass).
type Sink interface {
	Writer(s *Subscription) io.Writer
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(s *Subscription) io.Writer

// Writer implements Sink.
func (f SinkFunc) Writer(s *Subscription) io.Writer { return f(s) }

// DiscardSink drops all output — for runs measured only through stats.
var DiscardSink Sink = SinkFunc(func(*Subscription) io.Writer { return nil })

// Registry holds the active subscriptions and their compiled artifacts.
type Registry struct {
	cfg config

	mu     sync.Mutex
	groups map[string]*subGroup     // by query text
	order  []*subGroup              // insertion order (stable role spaces)
	subs   map[string]*Subscription // by subscription id
	ids    []string                 // subscription insertion order
	dirty  bool                     // group set changed since last snapshot
	snap   *registrySnapshot
}

// subGroup is one distinct query text and its subscribers. The compiled
// member survives snapshot rebuilds and subscriber churn — it is dropped
// only when the last subscriber leaves.
type subGroup struct {
	text   string
	member *engine.Compiled
	subs   []*Subscription // subscribe order
}

// registrySnapshot is the immutable artifact one Run evaluates: the
// merged workload over the distinct texts plus the fanout lists frozen at
// snapshot time.
type registrySnapshot struct {
	wl     *workload.Compiled
	groups [][]*Subscription // per workload member, frozen subscriber list
}

// NewRegistry creates an empty registry. All subscriptions share one
// configuration (strategy, optimizations, schema, read batch), exactly
// like CompileWorkload members.
func NewRegistry(opts ...Option) (*Registry, error) {
	cfg := config{strategy: GCX, static: static.AllOptimizations()}
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.resolveSchema(); err != nil {
		return nil, err
	}
	return &Registry{
		cfg:    cfg,
		groups: map[string]*subGroup{},
		subs:   map[string]*Subscription{},
	}, nil
}

// MustNewRegistry is NewRegistry panicking on error.
func MustNewRegistry(opts ...Option) *Registry {
	r, err := NewRegistry(opts...)
	if err != nil {
		panic("gcx: MustNewRegistry: " + err.Error())
	}
	return r
}

// Subscription is one client's standing query. Its stats accumulate
// across runs; reads are safe while runs are active.
type Subscription struct {
	id    string
	query string

	runs    atomic.Int64
	bytes   atomic.Int64
	lastErr atomic.Pointer[error]
}

// ID returns the subscription id.
func (s *Subscription) ID() string { return s.id }

// Query returns the subscribed query text.
func (s *Subscription) Query() string { return s.query }

// SubscriptionStats is a snapshot of one subscription's accumulated
// serving counters.
type SubscriptionStats struct {
	// Runs counts the registry runs that evaluated this subscription.
	Runs int64 `json:"runs"`
	// OutputBytes counts result bytes delivered to this subscription's
	// writers across all runs.
	OutputBytes int64 `json:"output_bytes"`
	// LastErr is the most recent delivery or evaluation error (nil when
	// the last run was clean). A delivery error never interrupts the
	// shared pass: the failing subscriber stops receiving bytes for that
	// run, siblings are unaffected.
	LastErr error `json:"-"`
}

// Stats returns a snapshot of the subscription's counters.
func (s *Subscription) Stats() SubscriptionStats {
	st := SubscriptionStats{
		Runs:        s.runs.Load(),
		OutputBytes: s.bytes.Load(),
	}
	if p := s.lastErr.Load(); p != nil {
		st.LastErr = *p
	}
	return st
}

func (s *Subscription) recordErr(err error) {
	if err == nil {
		s.lastErr.Store(nil)
		return
	}
	s.lastErr.Store(&err)
}

// Subscribe registers a standing query under the given id and compiles it
// if its text is new to the registry (subscriptions sharing a text share
// one compiled artifact and one evaluation per document). The id must be
// non-empty and not currently subscribed. A compile failure is reported
// as a *QueryError carrying the id; the registry is unchanged.
func (r *Registry) Subscribe(id, query string) (*Subscription, error) {
	if id == "" {
		return nil, errors.New("gcx: Subscribe: empty subscription id")
	}

	// Compile outside the lock: compilation is the expensive part, and
	// concurrent Subscribes of distinct texts should not serialize on it.
	// The double-checked group lookup below discards a duplicate compile
	// if another Subscribe of the same text won the race.
	r.mu.Lock()
	if _, dup := r.subs[id]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("gcx: Subscribe: id %q is already subscribed", id)
	}
	g := r.groups[query]
	r.mu.Unlock()

	var member *engine.Compiled
	if g == nil {
		m, err := engine.Compile(query, engine.Config{
			Mode:   r.cfg.strategy.mode(),
			Static: &r.cfg.static,
			Schema: r.cfg.schema,
		})
		if err != nil {
			return nil, queryError(id, err)
		}
		member = m
	}

	sub := &Subscription{id: id, query: query}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.subs[id]; dup {
		return nil, fmt.Errorf("gcx: Subscribe: id %q is already subscribed", id)
	}
	g = r.groups[query]
	if g == nil {
		if member == nil {
			// The group we piggybacked on disappeared between the two
			// critical sections (its last subscriber left): compile after
			// all. Rare; done under the lock for simplicity.
			m, err := engine.Compile(query, engine.Config{
				Mode:   r.cfg.strategy.mode(),
				Static: &r.cfg.static,
				Schema: r.cfg.schema,
			})
			if err != nil {
				return nil, queryError(id, err)
			}
			member = m
		}
		g = &subGroup{text: query, member: member}
		r.groups[query] = g
		r.order = append(r.order, g)
		r.dirty = true
	}
	g.subs = append(g.subs, sub)
	r.subs[id] = sub
	r.ids = append(r.ids, id)
	return sub, nil
}

// MustSubscribe is Subscribe panicking on error, for tests and examples.
func (r *Registry) MustSubscribe(id, query string) *Subscription {
	s, err := r.Subscribe(id, query)
	if err != nil {
		panic("gcx: MustSubscribe: " + err.Error())
	}
	return s
}

// Unsubscribe removes the subscription with the given id, reporting
// whether it existed. When the last subscription of a query text leaves,
// the text's compiled artifact is dropped and the merged snapshot is
// rebuilt on the next Run. A run already in flight is unaffected (it
// evaluates the snapshot taken at its start).
func (r *Registry) Unsubscribe(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	sub, ok := r.subs[id]
	if !ok {
		return false
	}
	delete(r.subs, id)
	for i, x := range r.ids {
		if x == id {
			r.ids = append(r.ids[:i], r.ids[i+1:]...)
			break
		}
	}
	g := r.groups[sub.query]
	for i, x := range g.subs {
		if x == sub {
			g.subs = append(g.subs[:i], g.subs[i+1:]...)
			break
		}
	}
	if len(g.subs) == 0 {
		delete(r.groups, sub.query)
		for i, x := range r.order {
			if x == g {
				r.order = append(r.order[:i], r.order[i+1:]...)
				break
			}
		}
		r.dirty = true
	} else {
		// The group survives but its fanout list changed: invalidate only
		// the frozen subscriber lists, keeping the compiled workload.
		if r.snap != nil {
			r.snap = &registrySnapshot{wl: r.snap.wl, groups: r.frozenGroupsLocked()}
		}
	}
	return true
}

// Len returns the number of active subscriptions.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.subs)
}

// Groups returns the number of distinct query texts — the number of
// evaluations one Run performs per document.
func (r *Registry) Groups() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.order)
}

// IDs returns the active subscription ids in subscribe order.
func (r *Registry) IDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.ids))
	copy(out, r.ids)
	return out
}

// Subscription returns the active subscription with the given id.
func (r *Registry) Subscription(id string) (*Subscription, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.subs[id]
	return s, ok
}

// frozenGroupsLocked copies the current per-group subscriber lists.
func (r *Registry) frozenGroupsLocked() [][]*Subscription {
	groups := make([][]*Subscription, len(r.order))
	for i, g := range r.order {
		groups[i] = append([]*Subscription(nil), g.subs...)
	}
	return groups
}

// snapshot returns the current immutable run artifact, rebuilding the
// merged workload only when the group set changed since the last build
// (compiled members are reused as-is — churn never recompiles surviving
// queries).
func (r *Registry) snapshot() (*registrySnapshot, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.order) == 0 {
		return nil, errors.New("gcx: registry has no subscriptions")
	}
	if r.snap == nil || r.dirty {
		members := make([]*engine.Compiled, len(r.order))
		for i, g := range r.order {
			members[i] = g.member
		}
		wl, err := workload.CompileMembers(members, workload.Config{
			Engine: engine.Config{
				Mode:   r.cfg.strategy.mode(),
				Static: &r.cfg.static,
				Schema: r.cfg.schema,
			},
			Batch: r.cfg.readBatch,
		})
		if err != nil {
			return nil, err
		}
		r.snap = &registrySnapshot{wl: wl, groups: r.frozenGroupsLocked()}
		r.dirty = false
	}
	return r.snap, nil
}

// RegistryStats reports one registry run.
type RegistryStats struct {
	// Aggregate measures the single shared pass (one tokenization, the
	// union buffer's peak).
	Aggregate Stats `json:"aggregate"`
	// Groups is the number of distinct query texts evaluated;
	// Subscriptions is the number of fanout targets served.
	Groups        int `json:"groups"`
	Subscriptions int `json:"subscriptions"`
}

// Run evaluates every active subscription over the XML document read from
// in — one shared pass, one evaluation per distinct query text — fanning
// each text's result out to its subscribers' writers (obtained from
// sink). Per-subscriber delivery errors are isolated: they are recorded
// on the subscription (Stats().LastErr) and stop that subscriber's
// delivery for this run, without disturbing the shared pass. The returned
// error reports failures of the pass itself.
func (r *Registry) Run(in io.Reader, sink Sink) (RegistryStats, error) {
	return r.RunContext(context.Background(), in, sink)
}

// RunContext is Run bounded by a context; see Engine.RunContext.
func (r *Registry) RunContext(ctx context.Context, in io.Reader, sink Sink) (RegistryStats, error) {
	snap, err := r.snapshot()
	if err != nil {
		return RegistryStats{}, err
	}
	if sink == nil {
		sink = DiscardSink
	}
	outs := make([]io.Writer, len(snap.groups))
	fans := make([]*fanout, len(snap.groups))
	nsubs := 0
	for i, subs := range snap.groups {
		f := &fanout{targets: make([]fanTarget, len(subs))}
		for j, sub := range subs {
			f.targets[j] = fanTarget{w: sink.Writer(sub), sub: sub}
			nsubs++
		}
		fans[i] = f
		outs[i] = f
	}
	st, qs, runErr := snap.wl.Run(guard(ctx, in), outs)
	for i, subs := range snap.groups {
		var qerr error
		if i < len(qs) {
			qerr = qs[i].Err
		}
		for _, sub := range subs {
			sub.runs.Add(1)
			if qerr != nil {
				sub.recordErr(qerr)
			} else if !fans[i].failed(sub) {
				sub.recordErr(nil)
			}
		}
	}
	return RegistryStats{
		Aggregate: Stats{
			PeakBufferNodes:        st.Buffer.PeakNodes,
			PeakBufferBytes:        st.Buffer.PeakBytes,
			BufferedTotal:          st.Buffer.NodesAppended,
			PurgedTotal:            st.Buffer.NodesDeleted,
			SignOffs:               st.Buffer.SignOffs,
			TokensRead:             st.TokensRead,
			OutputBytes:            st.OutputBytes,
			TimeToFirstResultNanos: st.TTFRNanos,
			EvalWallNanos:          st.WallNanos,
		},
		Groups:        len(snap.groups),
		Subscriptions: nsubs,
	}, runErr
}

// fanout delivers one group's result stream to every subscriber of its
// query text. Delivery errors are isolated per target: a failing
// subscriber is dropped for the rest of the run and the error recorded on
// its subscription; Write always reports success upstream so the shared
// pass continues for the siblings.
type fanout struct {
	targets []fanTarget
}

type fanTarget struct {
	w      io.Writer // nil discards
	sub    *Subscription
	broken bool
}

func (f *fanout) Write(p []byte) (int, error) {
	for i := range f.targets {
		t := &f.targets[i]
		if t.w == nil || t.broken {
			continue
		}
		n, err := t.w.Write(p)
		if err == nil && n < len(p) {
			err = io.ErrShortWrite
		}
		t.sub.bytes.Add(int64(n))
		if err != nil {
			t.broken = true
			t.sub.recordErr(err)
		}
	}
	return len(p), nil
}

// FlushResult propagates the engine's first-result flush to every target
// that can use it (xmlstream.ResultFlusher), so earliest answering
// reaches each subscriber's transport.
func (f *fanout) FlushResult() {
	for i := range f.targets {
		t := &f.targets[i]
		if t.w == nil || t.broken {
			continue
		}
		if rf, ok := t.w.(xmlstream.ResultFlusher); ok {
			rf.FlushResult()
		}
	}
}

func (f *fanout) failed(sub *Subscription) bool {
	for i := range f.targets {
		if f.targets[i].sub == sub {
			return f.targets[i].broken
		}
	}
	return false
}
