package gcx

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
)

func soloOutput(t *testing.T, query, doc string) string {
	t.Helper()
	got, _, err := MustCompile(query).RunString(doc)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// bufSink collects every subscription's output into per-id buffers.
type bufSink struct {
	mu   sync.Mutex
	bufs map[string]*bytes.Buffer
}

func newBufSink() *bufSink { return &bufSink{bufs: map[string]*bytes.Buffer{}} }

func (s *bufSink) Writer(sub *Subscription) io.Writer {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := &bytes.Buffer{}
	s.bufs[sub.ID()] = b
	return b
}

func (s *bufSink) get(id string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b := s.bufs[id]; b != nil {
		return b.String()
	}
	return ""
}

func TestRegistrySubscribeRunMatchesSolo(t *testing.T) {
	queries := map[string]string{
		"titles": `<titles>{ for $b in /bib/book return $b/title }</titles>`,
		"cheap":  `<cheap>{ for $b in /bib/book return if ($b/price < 50) then $b/title else () }</cheap>`,
		"all":    `<all>{ for $b in /bib/book return $b }</all>`,
		// Duplicate text under a second id: must join the first group.
		"titles2": `<titles>{ for $b in /bib/book return $b/title }</titles>`,
	}
	reg, err := NewRegistry()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"titles", "cheap", "all", "titles2"} {
		if _, err := reg.Subscribe(id, queries[id]); err != nil {
			t.Fatalf("Subscribe(%s): %v", id, err)
		}
	}
	if reg.Len() != 4 {
		t.Fatalf("Len = %d, want 4", reg.Len())
	}
	if reg.Groups() != 3 {
		t.Fatalf("Groups = %d, want 3 (duplicate text must share a group)", reg.Groups())
	}
	sink := newBufSink()
	st, err := reg.Run(strings.NewReader(bibDoc), sink)
	if err != nil {
		t.Fatal(err)
	}
	if st.Groups != 3 || st.Subscriptions != 4 {
		t.Fatalf("stats groups/subs = %d/%d, want 3/4", st.Groups, st.Subscriptions)
	}
	if st.Aggregate.TokensRead == 0 {
		t.Fatal("aggregate stats not populated")
	}
	for id, q := range queries {
		want := soloOutput(t, q, bibDoc)
		if got := sink.get(id); got != want {
			t.Fatalf("%s: got %q, want solo output %q", id, got, want)
		}
		sub, ok := reg.Subscription(id)
		if !ok {
			t.Fatalf("Subscription(%s) missing", id)
		}
		ss := sub.Stats()
		if ss.Runs != 1 || ss.OutputBytes != int64(len(want)) || ss.LastErr != nil {
			t.Fatalf("%s stats = %+v, want 1 run / %d bytes / nil err", id, ss, len(want))
		}
	}
}

func TestRegistrySubscribeErrors(t *testing.T) {
	reg := MustNewRegistry()
	if _, err := reg.Subscribe("", `<q/>`); err == nil {
		t.Fatal("empty id must be rejected")
	}
	if _, err := reg.Subscribe("a", `<q>{ for $b in`); err == nil {
		t.Fatal("want compile error")
	} else {
		var qe *QueryError
		if !errors.As(err, &qe) || qe.ID != "a" {
			t.Fatalf("want *QueryError with ID \"a\", got %v", err)
		}
		if qe.Line == 0 {
			t.Fatalf("syntax error should carry a position: %+v", qe)
		}
	}
	if reg.Len() != 0 {
		t.Fatalf("failed Subscribe must not register: Len = %d", reg.Len())
	}
	reg.MustSubscribe("a", `<q/>`)
	if _, err := reg.Subscribe("a", `<r/>`); err == nil {
		t.Fatal("duplicate id must be rejected")
	}
	if _, err := reg.Run(strings.NewReader(bibDoc), nil); err != nil {
		t.Fatalf("nil sink must discard, got %v", err)
	}
	empty := MustNewRegistry()
	if _, err := empty.Run(strings.NewReader(bibDoc), nil); err == nil {
		t.Fatal("empty registry Run must error")
	}
}

func TestRegistryUnsubscribe(t *testing.T) {
	reg := MustNewRegistry()
	q := `<titles>{ for $b in /bib/book return $b/title }</titles>`
	reg.MustSubscribe("a", q)
	reg.MustSubscribe("b", q)
	if reg.Groups() != 1 {
		t.Fatalf("Groups = %d, want 1", reg.Groups())
	}
	if !reg.Unsubscribe("a") {
		t.Fatal("Unsubscribe(a) = false")
	}
	if reg.Unsubscribe("a") {
		t.Fatal("double Unsubscribe must report false")
	}
	// The group survives through b; the run serves only b.
	sink := newBufSink()
	if _, err := reg.Run(strings.NewReader(bibDoc), sink); err != nil {
		t.Fatal(err)
	}
	if sink.get("a") != "" {
		t.Fatal("unsubscribed id received output")
	}
	if want := soloOutput(t, q, bibDoc); sink.get("b") != want {
		t.Fatalf("survivor output %q, want %q", sink.get("b"), want)
	}
	if !reg.Unsubscribe("b") || reg.Len() != 0 || reg.Groups() != 0 {
		t.Fatalf("registry not empty after last unsubscribe: len %d groups %d", reg.Len(), reg.Groups())
	}
}

// TestRegistryChurnRacesRuns drives concurrent Subscribe/Unsubscribe
// against active Runs and verifies — under -race — that every run
// delivers byte-identical solo output to every subscription it served.
func TestRegistryChurnRacesRuns(t *testing.T) {
	queries := []string{
		`<titles>{ for $b in /bib/book return $b/title }</titles>`,
		`<authors>{ for $b in /bib/book return $b/author }</authors>`,
		`<all>{ for $b in /bib/book return $b }</all>`,
		`<cheap>{ for $b in /bib/book return if ($b/price < 50) then $b/title else () }</cheap>`,
	}
	want := make([]string, len(queries))
	for i, q := range queries {
		want[i] = soloOutput(t, q, bibDoc)
	}
	reg := MustNewRegistry()
	// A stable core that is never unsubscribed, so every run has work.
	reg.MustSubscribe("core", queries[0])

	const runners = 4
	const churners = 3
	const iters = 25
	var wg sync.WaitGroup
	for r := 0; r < runners; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				sink := newBufSink()
				if _, err := reg.Run(strings.NewReader(bibDoc), sink); err != nil {
					t.Errorf("run: %v", err)
					return
				}
				// Every id that got output must match its solo run exactly;
				// the snapshot decides who was served, bytes decide it was
				// served correctly.
				sink.mu.Lock()
				for id, buf := range sink.bufs {
					got := buf.String()
					if got == "" {
						continue // unsubscribed mid-run: delivery stops, never corrupts
					}
					qi := 0
					if id != "core" {
						fmt.Sscanf(id, "churn-%d", &qi)
						qi = qi % len(queries)
					}
					if got != want[qi] {
						t.Errorf("%s: output diverged from solo run", id)
					}
				}
				sink.mu.Unlock()
			}
		}()
	}
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := fmt.Sprintf("churn-%d", c*iters+i)
				sub, err := reg.Subscribe(id, queries[(c*iters+i)%len(queries)])
				if err != nil {
					t.Errorf("subscribe %s: %v", id, err)
					return
				}
				_ = sub
				if i%2 == 0 {
					reg.Unsubscribe(id)
				}
			}
		}(c)
	}
	wg.Wait()
}

func TestRegistryFanoutIsolatesFailingSubscriber(t *testing.T) {
	reg := MustNewRegistry()
	q := `<titles>{ for $b in /bib/book return $b/title }</titles>`
	reg.MustSubscribe("good", q)
	reg.MustSubscribe("bad", q)
	want := soloOutput(t, q, bibDoc)

	var good bytes.Buffer
	boom := errors.New("boom")
	sink := SinkFunc(func(sub *Subscription) io.Writer {
		if sub.ID() == "bad" {
			return failWriter{err: boom}
		}
		return &good
	})
	if _, err := reg.Run(strings.NewReader(bibDoc), sink); err != nil {
		t.Fatalf("a failing subscriber must not fail the pass: %v", err)
	}
	if good.String() != want {
		t.Fatalf("sibling output corrupted: %q", good.String())
	}
	bad, _ := reg.Subscription("bad")
	if !errors.Is(bad.Stats().LastErr, boom) {
		t.Fatalf("bad.LastErr = %v, want boom", bad.Stats().LastErr)
	}
	goodSub, _ := reg.Subscription("good")
	if goodSub.Stats().LastErr != nil {
		t.Fatalf("good.LastErr = %v, want nil", goodSub.Stats().LastErr)
	}

	// The next run with a healthy sink clears the error.
	if _, err := reg.Run(strings.NewReader(bibDoc), nil); err != nil {
		t.Fatal(err)
	}
	if bad.Stats().LastErr != nil {
		t.Fatalf("LastErr not cleared on clean run: %v", bad.Stats().LastErr)
	}
}

type failWriter struct{ err error }

func (f failWriter) Write(p []byte) (int, error) { return 0, f.err }

// TestRegistryCompiledReuse: churn that only adds and removes subscribers
// of EXISTING texts must not invalidate the merged snapshot, and
// re-subscribing a removed text compiles only that text.
func TestRegistryCompiledReuse(t *testing.T) {
	reg := MustNewRegistry()
	qa := `<a>{ for $b in /bib/book return $b/title }</a>`
	qb := `<b>{ for $b in /bib/book return $b/author }</b>`
	reg.MustSubscribe("a1", qa)
	reg.MustSubscribe("b1", qb)
	if _, err := reg.Run(strings.NewReader(bibDoc), nil); err != nil {
		t.Fatal(err)
	}
	snap1, err := reg.snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Fanout-only churn: same group set, snapshot must be reused.
	reg.MustSubscribe("a2", qa)
	reg.Unsubscribe("a2")
	snap2, err := reg.snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap1.wl != snap2.wl {
		t.Fatal("fanout-only churn recompiled the merged workload")
	}
	// Group churn invalidates.
	reg.Unsubscribe("b1")
	snap3, err := reg.snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap3.wl == snap2.wl {
		t.Fatal("group removal must rebuild the merged workload")
	}
}

func TestRegistryRunContextCancel(t *testing.T) {
	reg := MustNewRegistry()
	reg.MustSubscribe("a", `<a>{ for $b in /bib/book return $b/title }</a>`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := reg.RunContext(ctx, strings.NewReader(bibDoc), nil)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled cause to remain matchable", err)
	}
}
