module gcx

go 1.24

tool gcx/cmd/gcxlint
