module gcx

go 1.24
