package gcx

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// Alloc-regression guards for the pooled run state: a compiled Engine
// recycles its tokenizer, buffer arena, projector, evaluator, and writer
// through a sync.Pool, so repeated runs must not rebuild the runtime.
// Before pooling, the evaluation below cost ~2700 allocs/run; the bounds
// here are far below that and catch any reintroduced per-run or
// per-element allocation.

func allocTestDoc(books int, withPrice bool) string {
	var doc strings.Builder
	doc.WriteString("<bib>")
	for i := 0; i < books; i++ {
		doc.WriteString("<book><title>T</title>")
		if withPrice || i%2 == 0 {
			doc.WriteString("<price>5</price>")
		}
		doc.WriteString("</book>")
	}
	doc.WriteString("</bib>")
	return doc.String()
}

// TestSteadyStateAllocsStructural: a query that buffers only structure
// (existence witnesses, no text serialization) must run allocation-free
// once the pool is warm — the paper's engine as a zero-garbage server.
func TestSteadyStateAllocsStructural(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	eng := MustCompile(`<out>{
	    for $b in /bib/book return
	        if (exists($b/price)) then <hit/> else ()
	}</out>`)
	data := allocTestDoc(100, false)
	r := strings.NewReader(data)

	run := func() {
		r.Reset(data)
		if _, err := eng.Run(r, io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the pool

	if allocs := testing.AllocsPerRun(30, run); allocs > 8 {
		t.Fatalf("structural steady-state run allocates: %.1f allocs/run, want <= 8", allocs)
	}
}

// TestSteadyStateAllocsWithOutput: serializing buffered text necessarily
// copies it out of the tokenizer's scratch (one allocation per buffered
// text node); nothing else may allocate on a warm pool.
func TestSteadyStateAllocsWithOutput(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	eng := MustCompile(`<out>{
	    for $b in /bib/book return
	        if (exists($b/price)) then $b/title else ()
	}</out>`)
	data := allocTestDoc(100, true)
	r := strings.NewReader(data)

	run := func() {
		r.Reset(data)
		if _, err := eng.Run(r, io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	run()

	// 100 buffered <title> texts -> ~100 unavoidable copies; allow slack
	// for map growth, none for per-run reconstruction (which costs
	// thousands).
	if allocs := testing.AllocsPerRun(30, run); allocs > 150 {
		t.Fatalf("output steady-state run allocates: %.1f allocs/run, want <= 150", allocs)
	}
}

// TestPooledRunsDeterministic: recycled run state must not leak between
// runs — repeated and interleaved runs of one Engine produce identical
// output and stats.
func TestPooledRunsDeterministic(t *testing.T) {
	eng := MustCompile(`<out>{
	    for $b in /bib/book return
	        if (exists($b/price)) then $b/title else ()
	}</out>`)
	docA := allocTestDoc(50, true)
	docB := allocTestDoc(31, false)

	outA, statsA, err := eng.RunString(docA)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		gotB, _, err := eng.RunString(docB)
		if err != nil {
			t.Fatal(err)
		}
		gotA, stats, err := eng.RunString(docA)
		if err != nil {
			t.Fatal(err)
		}
		if gotA != outA {
			t.Fatalf("run %d: output drift:\n got  %q\n want %q", i, gotA, outA)
		}
		// Wall-clock fields differ run to run by nature; everything else
		// must be bit-identical.
		if stats.Deterministic() != statsA.Deterministic() {
			t.Fatalf("run %d: stats drift:\n got  %+v\n want %+v", i, stats, statsA)
		}
		_ = gotB
	}
}

// BenchmarkGCXWarmPool reports the steady-state cost of one evaluation on
// a warm pool (the serving hot path).
func BenchmarkGCXWarmPool(b *testing.B) {
	eng := MustCompile(`<out>{
	    for $b in /bib/book return
	        if (exists($b/price)) then $b/title else ()
	}</out>`)
	data := []byte(allocTestDoc(100, true))
	r := bytes.NewReader(data)
	if _, err := eng.Run(r, io.Discard); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(data)
		if _, err := eng.Run(r, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
