// Package gcx is a streaming XQuery engine with active garbage collection,
// reproducing
//
//	Michael Schmidt, Stefanie Scherzinger, Christoph Koch.
//	"Combined Static and Dynamic Analysis for Effective Buffer
//	Minimization in Streaming XQuery Evaluation." ICDE 2007.
//
// The engine evaluates the practical XQuery fragment XQ (arbitrarily
// nested for-loops, conditions, joins — composition-free XQuery) over XML
// streams with minimal buffering: static analysis derives a projection
// tree and a set of roles, the input stream is projected on the fly with
// roles assigned to buffered nodes, and statically inserted signOff
// statements actively purge nodes the moment they become irrelevant to the
// rest of the evaluation.
//
// Quick start:
//
//	eng, err := gcx.Compile(`<out>{
//	    for $b in /bib/book return
//	        if (exists($b/price)) then $b/title else ()
//	}</out>`)
//	if err != nil { ... }
//	stats, err := eng.Run(inputReader, os.Stdout)
//	fmt.Printf("peak buffer: %d nodes\n", stats.PeakBufferNodes)
//
// Three buffering strategies are available for comparison (see
// DESIGN.md): the full GCX technique, projection without garbage
// collection (StaticOnly), and full document buffering (FullBuffer).
package gcx

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"strings"

	"gcx/internal/dtd"
	"gcx/internal/engine"
	"gcx/internal/static"
	"gcx/internal/workload"
	"gcx/internal/xmark"
)

// Strategy selects the buffer management technique.
type Strategy int

const (
	// GCX is the paper's technique: stream projection plus active garbage
	// collection driven by signOff statements.
	GCX Strategy = iota
	// StaticOnly projects the stream but never purges the buffer —
	// "static analysis alone" (the projection strategy of Galax [13]).
	StaticOnly
	// FullBuffer loads the entire document into the buffer — the naive
	// in-memory baseline.
	FullBuffer
)

// String names the strategy.
func (s Strategy) String() string { return s.mode().String() }

func (s Strategy) mode() engine.Mode {
	switch s {
	case StaticOnly:
		return engine.ModeStaticOnly
	case FullBuffer:
		return engine.ModeFullBuffer
	default:
		return engine.ModeGCX
	}
}

// Option configures compilation.
type Option func(*config)

type config struct {
	strategy  Strategy
	static    static.Options
	schema    *dtd.Schema
	schemaSrc string
	readBatch int
	err       error
}

// fingerprint renders the compilation-relevant configuration as a stable
// string, so a CompileCache can key entries by (query text, options). The
// DTD source is folded to a hash: schemas can be large and two textually
// identical DTDs parse identically.
func (c *config) fingerprint() string {
	h := fnv.New64a()
	io.WriteString(h, c.schemaSrc)
	return fmt.Sprintf("s%d|e%t|a%t|r%t|b%d|d%x",
		c.strategy, c.static.EarlyUpdates, c.static.AggregateRoles,
		c.static.EliminateRedundantRoles, c.readBatch, h.Sum64())
}

// WithStrategy selects the buffering strategy (default GCX).
func WithStrategy(s Strategy) Option {
	return func(c *config) { c.strategy = s }
}

// WithoutEarlyUpdates disables the early-update rewriting (Section 6 of
// the paper): output roles are then released at scope ends instead of
// immediately after each node is emitted.
func WithoutEarlyUpdates() Option {
	return func(c *config) { c.static.EarlyUpdates = false }
}

// WithoutAggregateRoles disables aggregate roles (Section 6): subtree
// relevance is then tracked with one role instance per buffered node.
func WithoutAggregateRoles() Option {
	return func(c *config) { c.static.AggregateRoles = false }
}

// WithoutRedundantRoleElimination disables redundant-role elimination
// (Section 6, Figure 12).
func WithoutRedundantRoleElimination() Option {
	return func(c *config) { c.static.EliminateRedundantRoles = false }
}

// WithoutOptimizations disables all Section 6 optimizations, yielding the
// paper's base technique (whose rewritten queries match the paper's
// figures verbatim).
func WithoutOptimizations() Option {
	return func(c *config) { c.static = static.Options{} }
}

// WithDTD supplies a document type definition, enabling schema-aware early
// region termination: blocking cursors stop as soon as the content model
// proves no further match can arrive, instead of scanning to the end of
// the input. This is the capability of the schema-based systems the paper
// compares against ([11]); results are unchanged, only less input is read.
// Supplying a DTD asserts that inputs are valid against it.
//
// The DTD is parsed at compile time, not at option-application time, so
// CompileCache key derivation (which applies options on every lookup)
// stays cheap; a malformed DTD surfaces as a Compile error.
func WithDTD(dtdSource string) Option {
	return func(c *config) { c.schemaSrc = dtdSource }
}

// resolveSchema parses the deferred DTD source, once, at compilation.
func (c *config) resolveSchema() error {
	if c.schemaSrc == "" {
		return nil
	}
	s, err := dtd.Parse(c.schemaSrc)
	if err != nil {
		return err
	}
	c.schema = s
	return nil
}

// WithReadBatch tunes the shared-stream scheduler of a Workload: once
// every member query is blocked on the stream, up to n tokens are read
// before the members are woken again. Larger batches amortize scheduling
// overhead; smaller ones purge buffered data sooner (a signOff may run up
// to n tokens later than in a solo run). The default (0) selects a batch
// that makes scheduling overhead negligible. Ignored by Compile.
func WithReadBatch(n int) Option {
	return func(c *config) { c.readBatch = n }
}

// XMarkDTD is the schema of the documents produced by cmd/xmarkgen, for
// use with WithDTD in benchmarks and examples.
const XMarkDTD = xmark.DTD

// Stats reports the measurements of one run. The buffer high watermark is
// the paper's primary metric. The JSON field names are stable for
// benchmark and CI scraping (cmd/gcx -stats-json).
type Stats struct {
	// PeakBufferNodes is the high watermark of simultaneously buffered
	// nodes.
	PeakBufferNodes int64 `json:"peak_buffer_nodes"`
	// PeakBufferBytes is the high watermark of estimated buffered bytes.
	PeakBufferBytes int64 `json:"peak_buffer_bytes"`
	// BufferedTotal is the total number of nodes ever copied into the
	// buffer (projection effectiveness).
	BufferedTotal int64 `json:"buffered_total"`
	// PurgedTotal is the total number of nodes reclaimed by active
	// garbage collection.
	PurgedTotal int64 `json:"purged_total"`
	// SignOffs is the number of executed signOff statements.
	SignOffs int64 `json:"sign_offs"`
	// TokensRead is the number of stream tokens consumed.
	TokensRead int64 `json:"tokens_read"`
	// OutputBytes is the number of serialized result bytes.
	OutputBytes int64 `json:"output_bytes"`
	// TimeToFirstResultNanos is the time from run start to the first
	// result byte entering the output writer — the serving-tier latency
	// metric: how long buffering held results back before they started
	// to flow. A run that produced no output has no first result: the
	// field is 0 and absent from JSON, never a fake "0ns latency"
	// observation.
	TimeToFirstResultNanos int64 `json:"time_to_first_result_nanos,omitempty"`
	// EvalWallNanos is the run's evaluation wall time.
	EvalWallNanos int64 `json:"eval_wall_nanos"`
}

// clearTiming zeroes the wall-clock fields, leaving only the
// deterministic measurements. Tests and tools that compare run stats for
// exact equality (pooled-run determinism, bulk-vs-solo equivalence) use
// it: timing is legitimately different on every run.
func (s *Stats) clearTiming() {
	s.TimeToFirstResultNanos = 0
	s.EvalWallNanos = 0
}

// Deterministic returns a copy of the stats with the wall-clock fields
// zeroed, for exact-equality comparison across runs.
func (s Stats) Deterministic() Stats {
	s.clearTiming()
	return s
}

// Engine is a compiled query, safe for concurrent use by multiple
// goroutines.
//
// Concurrency contract (see DESIGN.md): a single evaluation is strictly
// sequential — the paper's evaluation semantics — but a compiled Engine
// holds only immutable analysis results plus a pool of recycled run
// states (tokenizer, buffer arena, projector, evaluator, writer), so any
// number of Run calls may proceed in parallel. After warm-up, repeated
// runs allocate almost nothing: the run state is reused and the buffer's
// node arena is reclaimed wholesale between runs.
type Engine struct {
	c *engine.Compiled
}

// Compile parses, rewrites, and statically analyzes a query.
//
// The accepted surface syntax is the fragment XQ of the paper (Figure 6)
// plus conveniences that are normalized away: where-clauses, multi-step
// paths, @attr steps (attributes are converted to subelements, matching
// the engine's input adaptation), string/numeric literals, and comments.
func Compile(query string, opts ...Option) (*Engine, error) {
	cfg := config{strategy: GCX, static: static.AllOptimizations()}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.err != nil {
		return nil, cfg.err
	}
	if err := cfg.resolveSchema(); err != nil {
		return nil, err
	}
	c, err := engine.Compile(query, engine.Config{Mode: cfg.strategy.mode(), Static: &cfg.static, Schema: cfg.schema})
	if err != nil {
		return nil, queryError("", err)
	}
	return &Engine{c: c}, nil
}

// MustCompile is Compile panicking on error, for tests and examples with
// constant queries.
func MustCompile(query string, opts ...Option) *Engine {
	e, err := Compile(query, opts...)
	if err != nil {
		panic(fmt.Sprintf("gcx: MustCompile: %v", err))
	}
	return e
}

// Run evaluates the query over the XML document read from in, writing the
// serialized result to out. It is RunContext with context.Background().
func (e *Engine) Run(in io.Reader, out io.Writer) (Stats, error) {
	return e.RunContext(context.Background(), in, out)
}

// RunString evaluates over an in-memory document and returns the result.
func (e *Engine) RunString(doc string) (string, Stats, error) {
	var out strings.Builder
	st, err := e.Run(strings.NewReader(doc), &out)
	return out.String(), st, err
}

// Explain returns the compilation diagnostics: variable tree, dependency
// sets, projection tree, role table, and the rewritten query with signOff
// statements — the artifacts of the paper's Figures 1, 8, 9 and 12 for
// this query.
func (e *Engine) Explain() string { return e.c.Explain() }

// TraceOption configures a Trace run.
type TraceOption func(*traceConfig)

type traceConfig struct {
	limit     int
	truncated *bool
	ctx       context.Context
}

// WithTraceLimit bounds the recorded steps: after n events the evaluation
// continues but further steps are dropped. n <= 0 means unbounded. This
// is the option services use — a deep trace of an arbitrarily large
// document then holds at most n buffer snapshots.
func WithTraceLimit(n int) TraceOption {
	return func(c *traceConfig) { c.limit = n }
}

// WithTraceTruncated reports into hit whether a WithTraceLimit bound was
// reached (steps were dropped). hit is written before Trace returns.
func WithTraceTruncated(hit *bool) TraceOption {
	return func(c *traceConfig) { c.truncated = hit }
}

// WithTraceContext bounds the traced run by a context, with the same
// semantics as RunContext: on cancellation the returned error matches
// ErrCanceled.
func WithTraceContext(ctx context.Context) TraceOption {
	return func(c *traceConfig) { c.ctx = ctx }
}

// Trace evaluates the query and additionally records the buffer contents
// after every consumed token and executed signOff — the step-by-step view
// of the paper's Figure 2. Options bound the recording; an unbounded
// trace of a large document holds a snapshot per token.
func (e *Engine) Trace(in io.Reader, out io.Writer, opts ...TraceOption) ([]TraceStep, Stats, error) {
	var cfg traceConfig
	for _, o := range opts {
		o(&cfg)
	}
	tr := &engine.Tracer{Limit: cfg.limit}
	est, err := e.c.RunWith(guard(cfg.ctx, in), out, engine.RunOptions{Trace: tr})
	steps := make([]TraceStep, len(tr.Steps))
	for i, s := range tr.Steps {
		steps[i] = TraceStep{Event: s.Event, Buffer: s.Buffer}
	}
	if cfg.truncated != nil {
		*cfg.truncated = tr.Truncated
	}
	return steps, convertStats(est), err
}

// TraceN is Trace with a step bound.
//
// Deprecated: use Trace with WithTraceLimit and WithTraceTruncated.
func (e *Engine) TraceN(in io.Reader, out io.Writer, maxSteps int) (steps []TraceStep, truncated bool, st Stats, err error) {
	steps, st, err = e.Trace(in, out, WithTraceLimit(maxSteps), WithTraceTruncated(&truncated))
	return steps, truncated, st, err
}

// TraceStep is one event of a traced run.
type TraceStep struct {
	// Event describes the trigger: `read <tag>` or `signOff($x, rN)`.
	Event string `json:"event"`
	// Buffer is the buffer tree with role annotations after the event,
	// in the notation of the paper's Figure 2.
	Buffer string `json:"buffer"`
}

func convertStats(st engine.Stats) Stats {
	return Stats{
		PeakBufferNodes:        st.Buffer.PeakNodes,
		PeakBufferBytes:        st.Buffer.PeakBytes,
		BufferedTotal:          st.Buffer.NodesAppended,
		PurgedTotal:            st.Buffer.NodesDeleted,
		SignOffs:               st.Buffer.SignOffs,
		TokensRead:             st.TokensRead,
		OutputBytes:            st.OutputBytes,
		TimeToFirstResultNanos: st.TTFRNanos,
		EvalWallNanos:          st.WallNanos,
	}
}

// Workload is a set of queries compiled into one shared serving artifact:
// a single evaluation pass tokenizes, projects, and buffers the input
// document once, while every member query produces exactly the output (and
// output order) of its solo Run. Like an Engine, a Workload is immutable
// after compilation and safe for concurrent use; each Run draws a pooled
// run state.
//
// The per-query projection trees are merged into one combined projection
// tree with per-query role spaces, so the shared buffer keeps the union of
// what the member queries need, and — under the GCX strategy — a node is
// reclaimed the moment the LAST interested query signs it off.
type Workload struct {
	c *workload.Compiled
}

// CompileWorkload compiles a set of queries for shared-stream evaluation.
// All members share one configuration (strategy, optimizations, schema).
func CompileWorkload(queries []string, opts ...Option) (*Workload, error) {
	cfg := config{strategy: GCX, static: static.AllOptimizations()}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.err != nil {
		return nil, cfg.err
	}
	if err := cfg.resolveSchema(); err != nil {
		return nil, err
	}
	c, err := workload.Compile(queries, workload.Config{
		Engine: engine.Config{Mode: cfg.strategy.mode(), Static: &cfg.static, Schema: cfg.schema},
		Batch:  cfg.readBatch,
	})
	if err != nil {
		return nil, queryError("", err)
	}
	return &Workload{c: c}, nil
}

// MustCompileWorkload is CompileWorkload panicking on error.
func MustCompileWorkload(queries []string, opts ...Option) *Workload {
	w, err := CompileWorkload(queries, opts...)
	if err != nil {
		panic(fmt.Sprintf("gcx: MustCompileWorkload: %v", err))
	}
	return w
}

// Len returns the number of member queries.
func (w *Workload) Len() int { return w.c.Len() }

// QueryStats reports one member query's share of a workload run.
type QueryStats struct {
	// OutputBytes is the member's serialized output.
	OutputBytes int64 `json:"output_bytes"`
	// SignOffs counts the member's executed signOff statements.
	SignOffs int64 `json:"sign_offs"`
	// RoleAssignments and RoleRemovals count role instances in the
	// member's role space; after a clean GCX run they are equal.
	RoleAssignments int64 `json:"role_assignments"`
	RoleRemovals    int64 `json:"role_removals"`
	// TokensAtDone is the shared stream position when this member's
	// evaluation completed — how much of the input it needed.
	TokensAtDone int64 `json:"tokens_at_done"`
	// TimeToFirstResultNanos is the time from pass start to this
	// member's first result byte. Members emit progressively along the
	// shared pass, so each reports its own first-result latency; a
	// member that produced no output has none (0, absent from JSON).
	TimeToFirstResultNanos int64 `json:"time_to_first_result_nanos,omitempty"`
	// EvalWallNanos is the time from pass start to this member's
	// evaluation completing.
	EvalWallNanos int64 `json:"eval_wall_nanos"`
	// Err is the member's evaluation error, if any (also joined into the
	// error returned by Run).
	Err error `json:"-"`
}

// WorkloadStats combines the shared-pass measurements with the per-query
// breakdown. Aggregate.TokensRead counts the single shared pass — with N
// member queries it stays what ONE solo run would read, not N times that.
type WorkloadStats struct {
	Aggregate Stats        `json:"aggregate"`
	Queries   []QueryStats `json:"queries"`
}

// Run evaluates all member queries over the XML document read from in —
// one pass — writing member i's serialized result to outs[i] (len(outs)
// must equal Len, and the writers must be distinct: members emit their
// results progressively along the pass). Member evaluation errors are
// joined into the returned error and also reported per query in the stats.
func (w *Workload) Run(in io.Reader, outs []io.Writer) (WorkloadStats, error) {
	return w.RunContext(context.Background(), in, outs)
}

func errWriterCount(want, got int) error {
	return fmt.Errorf("gcx: workload has %d queries but %d output writers were supplied", want, got)
}

// RunStrings evaluates over an in-memory document and returns the member
// results in query order.
func (w *Workload) RunStrings(doc string) ([]string, WorkloadStats, error) {
	bufs := make([]strings.Builder, w.Len())
	outs := make([]io.Writer, w.Len())
	for i := range bufs {
		outs[i] = &bufs[i]
	}
	st, err := w.Run(strings.NewReader(doc), outs)
	results := make([]string, w.Len())
	for i := range bufs {
		results[i] = bufs[i].String()
	}
	return results, st, err
}

// Explain returns the compilation diagnostics of every member followed by
// the merged projection tree and the combined role table.
func (w *Workload) Explain() string { return w.c.Explain() }

func convertWorkloadStats(st workload.Stats, qs []workload.QueryStats) WorkloadStats {
	out := WorkloadStats{
		Aggregate: Stats{
			PeakBufferNodes:        st.Buffer.PeakNodes,
			PeakBufferBytes:        st.Buffer.PeakBytes,
			BufferedTotal:          st.Buffer.NodesAppended,
			PurgedTotal:            st.Buffer.NodesDeleted,
			SignOffs:               st.Buffer.SignOffs,
			TokensRead:             st.TokensRead,
			OutputBytes:            st.OutputBytes,
			TimeToFirstResultNanos: st.TTFRNanos,
			EvalWallNanos:          st.WallNanos,
		},
		Queries: make([]QueryStats, len(qs)),
	}
	for i, q := range qs {
		out.Queries[i] = QueryStats{
			OutputBytes:            q.OutputBytes,
			SignOffs:               q.SignOffs,
			RoleAssignments:        q.RoleAssignments,
			RoleRemovals:           q.RoleRemovals,
			TokensAtDone:           q.TokensAtDone,
			TimeToFirstResultNanos: q.TTFRNanos,
			EvalWallNanos:          q.WallNanos,
			Err:                    q.Err,
		}
	}
	return out
}
