package gcx

import (
	"archive/tar"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"

	"gcx/internal/queries"
	"gcx/internal/xmark"
)

// bulkWorkerCounts is the differential matrix's -j axis: serial, a
// fixed parallel degree, and whatever the host offers.
func bulkWorkerCounts() []int {
	js := []int{1, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	var out []int
	for _, j := range js {
		if !seen[j] {
			seen[j] = true
			out = append(out, j)
		}
	}
	return out
}

// bulkCorpus builds the shared test corpus: XMark documents in
// SHUFFLED size order (large documents early, small late), so faster
// small documents finish while their bigger predecessors are still
// evaluating and the reorder window must actually reorder.
var bulkCorpus struct {
	once sync.Once
	docs [][]byte
}

func bulkCorpusDocs(t *testing.T) [][]byte {
	t.Helper()
	bulkCorpus.once.Do(func() {
		sizes := []int64{48 << 10, 4 << 10, 64 << 10, 8 << 10, 32 << 10, 6 << 10, 24 << 10, 12 << 10}
		for i, size := range sizes {
			var buf bytes.Buffer
			if _, err := xmark.Generate(&buf, xmark.Config{Factor: xmark.FactorForSize(size), Seed: uint64(100 + i)}); err != nil {
				panic(err)
			}
			bulkCorpus.docs = append(bulkCorpus.docs, buf.Bytes())
		}
	})
	return bulkCorpus.docs
}

// concatCorpus joins documents with the inter-document noise a real
// concatenated feed carries: prologs, comments, and whitespace.
func concatCorpus(docs [][]byte) []byte {
	var buf bytes.Buffer
	for i, d := range docs {
		switch i % 3 {
		case 1:
			buf.WriteString("\n<?xml version=\"1.0\"?>")
		case 2:
			buf.WriteString("\n<!-- next document -->\n")
		}
		buf.Write(d)
	}
	return buf.Bytes()
}

// soloRuns is the reference: each document evaluated alone, in a loop,
// through the same compiled engine.
func soloRuns(t *testing.T, eng *Engine, docs [][]byte) ([][]byte, []Stats) {
	t.Helper()
	outs := make([][]byte, len(docs))
	stats := make([]Stats, len(docs))
	for i, d := range docs {
		var buf bytes.Buffer
		st, err := eng.Run(bytes.NewReader(d), &buf)
		if err != nil {
			t.Fatalf("solo run doc %d: %v", i, err)
		}
		outs[i] = buf.Bytes()
		stats[i] = st
	}
	return outs, stats
}

// collectBulk drains a bulk run into copied per-document outputs.
func collectBulk(t *testing.T, eng *Engine, corpus *Corpus, j int) ([][]byte, []Stats, BulkStats) {
	t.Helper()
	var outs [][]byte
	var stats []Stats
	bs, err := eng.Bulk(corpus, BulkOptions{Workers: j}, func(d BulkDoc) error {
		if d.Err != nil {
			t.Errorf("doc %d (%s) failed: %v", d.Index, d.Name, d.Err)
		}
		if d.Index != len(outs) {
			t.Errorf("doc %d emitted at position %d: corpus order violated", d.Index, len(outs))
		}
		outs = append(outs, append([]byte(nil), d.Output...))
		stats = append(stats, d.Stats)
		return nil
	})
	if err != nil {
		t.Fatalf("bulk: %v", err)
	}
	return outs, stats, bs
}

// TestBulkEquivalence is the differential conformance suite: for every
// catalog query, buffering strategy, and worker count, a bulk run over
// the shuffled-size corpus must be byte-identical, document by
// document, to the per-document solo Engine.Run loop — including each
// document's run statistics, which would diverge if pooled run state
// leaked between concurrently evaluated documents.
func TestBulkEquivalence(t *testing.T) {
	docs := bulkCorpusDocs(t)
	stream := concatCorpus(docs)
	for _, q := range queries.AllIncludingExtended() {
		for _, strat := range []Strategy{GCX, StaticOnly, FullBuffer} {
			eng, err := Compile(q.Text, WithStrategy(strat))
			if err != nil {
				t.Fatal(err)
			}
			wantOuts, wantStats := soloRuns(t, eng, docs)
			for _, j := range bulkWorkerCounts() {
				t.Run(fmt.Sprintf("%s/%v/j%d", q.Name, strat, j), func(t *testing.T) {
					gotOuts, gotStats, bs := collectBulk(t, eng, CorpusConcat(bytes.NewReader(stream)), j)
					if len(gotOuts) != len(docs) {
						t.Fatalf("bulk saw %d docs, corpus has %d", len(gotOuts), len(docs))
					}
					for i := range docs {
						if !bytes.Equal(gotOuts[i], wantOuts[i]) {
							t.Errorf("doc %d: bulk output (%d bytes) differs from solo (%d bytes)",
								i, len(gotOuts[i]), len(wantOuts[i]))
						}
						// Timing fields are wall-clock and differ by nature;
						// every deterministic measurement must match solo.
						if gotStats[i].Deterministic() != wantStats[i].Deterministic() {
							t.Errorf("doc %d: bulk stats %+v differ from solo %+v", i, gotStats[i], wantStats[i])
						}
					}
					if bs.Docs != int64(len(docs)) || bs.Failed != 0 {
						t.Errorf("bulk stats: %+v", bs)
					}
					if bs.PeakInFlight > j {
						t.Errorf("peak in-flight %d exceeds %d workers", bs.PeakInFlight, j)
					}
				})
			}
		}
	}
}

// TestBulkSourcesAgree runs the same corpus through all three source
// kinds — concatenated stream, tar archive, files on disk — and
// demands identical per-document results.
func TestBulkSourcesAgree(t *testing.T) {
	docs := bulkCorpusDocs(t)
	eng := MustCompile(queries.ByName("Q1").Text)
	wantOuts, _ := soloRuns(t, eng, docs)

	dir := t.TempDir()
	var tarBuf bytes.Buffer
	tw := tar.NewWriter(&tarBuf)
	var paths []string
	for i, d := range docs {
		name := fmt.Sprintf("doc%03d.xml", i)
		if err := tw.WriteHeader(&tar.Header{Name: name, Mode: 0o644, Size: int64(len(d))}); err != nil {
			t.Fatal(err)
		}
		if _, err := tw.Write(d); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, d, 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	files, err := CorpusFiles(paths...)
	if err != nil {
		t.Fatal(err)
	}
	globbed, err := CorpusFiles(filepath.Join(dir, "doc*.xml"))
	if err != nil {
		t.Fatal(err)
	}
	sources := map[string]*Corpus{
		"concat": CorpusConcat(bytes.NewReader(concatCorpus(docs))),
		"tar":    CorpusTar(bytes.NewReader(tarBuf.Bytes())),
		"files":  files,
		"glob":   globbed,
	}
	// Split the archive into two on-disk tars so a '*.tar' glob has to
	// resolve to several archives in order.
	half := len(docs) / 2
	for i, span := range [][][]byte{docs[:half], docs[half:]} {
		var tb bytes.Buffer
		tw := tar.NewWriter(&tb)
		for k, d := range span {
			if err := tw.WriteHeader(&tar.Header{Name: fmt.Sprintf("m%d.xml", k), Mode: 0o644, Size: int64(len(d))}); err != nil {
				t.Fatal(err)
			}
			if _, err := tw.Write(d); err != nil {
				t.Fatal(err)
			}
		}
		if err := tw.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("part%d.tar", i)), tb.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	tarGlob, err := CorpusPaths(filepath.Join(dir, "part*.tar"))
	if err != nil {
		t.Fatal(err)
	}
	sources["targlob"] = tarGlob

	for name, corpus := range sources {
		t.Run(name, func(t *testing.T) {
			gotOuts, _, bs := collectBulk(t, eng, corpus, 4)
			if len(gotOuts) != len(docs) {
				t.Fatalf("%s source saw %d docs, want %d", name, len(gotOuts), len(docs))
			}
			for i := range docs {
				if !bytes.Equal(gotOuts[i], wantOuts[i]) {
					t.Errorf("%s source doc %d differs from solo", name, i)
				}
			}
			if bs.Failed != 0 {
				t.Errorf("%s source: %d failed docs", name, bs.Failed)
			}
		})
	}
}

// TestBulkIsolation plants a unique marker in every document and runs
// highly parallel bulk passes: each document's output must carry its
// own marker and no other document's — cross-document text bleed from
// a mis-reset pooled run state would surface here.
func TestBulkIsolation(t *testing.T) {
	const n = 24
	var docs [][]byte
	var stream bytes.Buffer
	for i := 0; i < n; i++ {
		doc := fmt.Sprintf(`<site><people><person><id>person0</id><name>MARKER-%03d</name></person></people></site>`, i)
		docs = append(docs, []byte(doc))
		stream.WriteString(doc)
		stream.WriteByte('\n')
	}
	eng := MustCompile(queries.ByName("Q1").Text)
	var outs []string
	_, err := eng.Bulk(CorpusConcat(bytes.NewReader(stream.Bytes())), BulkOptions{Workers: 8}, func(d BulkDoc) error {
		if d.Err != nil {
			t.Errorf("doc %d: %v", d.Index, d.Err)
		}
		outs = append(outs, string(d.Output))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != n {
		t.Fatalf("got %d docs, want %d", len(outs), n)
	}
	for i, out := range outs {
		own := fmt.Sprintf("MARKER-%03d", i)
		if !strings.Contains(out, own) {
			t.Errorf("doc %d output lost its own marker: %q", i, out)
		}
		if c := strings.Count(out, "MARKER-"); c != 1 {
			t.Errorf("doc %d output carries %d markers (cross-document bleed): %q", i, c, out)
		}
	}
}

// TestBulkPoisonDocument places malformed and unparseable documents
// among healthy ones: each failure stays in its own slot and every
// sibling remains byte-identical to its solo run.
//
// The poisons here are depth-balanced (mismatched tag names, bad
// entities): a concatenated stream is framed by content, so only
// balanced garbage has a findable boundary. Unbalanced garbage is
// covered by TestBulkPoisonTar, where the archive provides the framing.
func TestBulkPoisonDocument(t *testing.T) {
	docs := bulkCorpusDocs(t)
	eng := MustCompile(queries.ByName("Q6").Text)
	wantOuts, _ := soloRuns(t, eng, docs)

	var stream bytes.Buffer
	stream.Write(docs[0])
	stream.WriteString("<poison><x></y></poison>") // mismatched inner tags, balanced depth
	stream.Write(docs[1])
	stream.WriteString("<p2>&undefined;</p2>") // unknown entity
	stream.Write(docs[2])

	type slot struct {
		out []byte
		err error
	}
	var got []slot
	bs, err := eng.Bulk(CorpusConcat(bytes.NewReader(stream.Bytes())), BulkOptions{Workers: 4}, func(d BulkDoc) error {
		got = append(got, slot{append([]byte(nil), d.Output...), d.Err})
		return nil
	})
	if err != nil {
		t.Fatalf("bulk run itself failed: %v", err)
	}
	if len(got) != 5 {
		t.Fatalf("got %d docs, want 5", len(got))
	}
	if bs.Failed != 2 {
		t.Errorf("failed count %d, want 2", bs.Failed)
	}
	for i, healthy := range map[int]int{0: 0, 2: 1, 4: 2} {
		if got[i].err != nil {
			t.Errorf("healthy doc %d failed: %v", i, got[i].err)
		}
		if !bytes.Equal(got[i].out, wantOuts[healthy]) {
			t.Errorf("healthy doc %d output differs from its solo run", i)
		}
	}
	for _, poisoned := range []int{1, 3} {
		if got[poisoned].err == nil {
			t.Errorf("poison doc %d did not fail", poisoned)
		}
	}
}

// TestBulkPoisonTar covers the poison shape a concatenated stream
// cannot isolate: a structurally unbalanced document. Tar members are
// framed by the archive, so even an unclosed-element document fails
// alone.
func TestBulkPoisonTar(t *testing.T) {
	docs := bulkCorpusDocs(t)[:3]
	eng := MustCompile(queries.ByName("Q6").Text)
	wantOuts, _ := soloRuns(t, eng, docs)

	var tarBuf bytes.Buffer
	tw := tar.NewWriter(&tarBuf)
	add := func(name string, data []byte) {
		if err := tw.WriteHeader(&tar.Header{Name: name, Mode: 0o644, Size: int64(len(data))}); err != nil {
			t.Fatal(err)
		}
		if _, err := tw.Write(data); err != nil {
			t.Fatal(err)
		}
	}
	add("a.xml", docs[0])
	add("poison.xml", []byte("<poison><unclosed></poison>"))
	add("b.xml", docs[1])
	add("truncated.xml", []byte("<half><way>"))
	add("c.xml", docs[2])
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	type slot struct {
		out []byte
		err error
	}
	var got []slot
	bs, err := eng.Bulk(CorpusTar(bytes.NewReader(tarBuf.Bytes())), BulkOptions{Workers: 4}, func(d BulkDoc) error {
		got = append(got, slot{append([]byte(nil), d.Output...), d.Err})
		return nil
	})
	if err != nil {
		t.Fatalf("bulk run itself failed: %v", err)
	}
	if len(got) != 5 || bs.Failed != 2 {
		t.Fatalf("got %d docs, %d failed; want 5 docs, 2 failed", len(got), bs.Failed)
	}
	for i, healthy := range map[int]int{0: 0, 2: 1, 4: 2} {
		if got[i].err != nil {
			t.Errorf("healthy member %d failed: %v", i, got[i].err)
		}
		if !bytes.Equal(got[i].out, wantOuts[healthy]) {
			t.Errorf("healthy member %d output differs from its solo run", i)
		}
	}
	for _, poisoned := range []int{1, 3} {
		if got[poisoned].err == nil {
			t.Errorf("poison member %d did not fail", poisoned)
		}
	}
}

// TestBulkWorkloadEquivalence extends the differential suite to
// Workload.Bulk: per document and per member query, bulk output must
// match the solo shared-stream run.
func TestBulkWorkloadEquivalence(t *testing.T) {
	docs := bulkCorpusDocs(t)[:5]
	var texts []string
	for _, q := range queries.All() {
		texts = append(texts, q.Text)
	}
	for _, strat := range []Strategy{GCX, StaticOnly, FullBuffer} {
		wl, err := CompileWorkload(texts, WithStrategy(strat))
		if err != nil {
			t.Fatal(err)
		}
		want := make([][][]byte, len(docs)) // doc -> member -> bytes
		for i, d := range docs {
			results, _, err := wl.RunStrings(string(d))
			if err != nil {
				t.Fatalf("solo workload doc %d: %v", i, err)
			}
			for _, r := range results {
				want[i] = append(want[i], []byte(r))
			}
		}
		for _, j := range bulkWorkerCounts() {
			t.Run(fmt.Sprintf("%v/j%d", strat, j), func(t *testing.T) {
				var got [][][]byte
				bs, err := wl.Bulk(CorpusConcat(bytes.NewReader(concatCorpus(docs))), BulkOptions{Workers: j}, func(d BulkDoc) error {
					if d.Err != nil {
						t.Errorf("doc %d: %v", d.Index, d.Err)
					}
					cp := make([][]byte, len(d.Outputs))
					for i, o := range d.Outputs {
						cp[i] = append([]byte(nil), o...)
					}
					got = append(got, cp)
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(docs) {
					t.Fatalf("bulk saw %d docs, want %d", len(got), len(docs))
				}
				for i := range docs {
					for m := range texts {
						if !bytes.Equal(got[i][m], want[i][m]) {
							t.Errorf("doc %d member %d: bulk differs from solo", i, m)
						}
					}
				}
				if bs.Docs != int64(len(docs)) {
					t.Errorf("bulk stats: %+v", bs)
				}
			})
		}
	}
}
