package gcx

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

const cacheTestQuery = `<q>{ for $b in /bib/book return $b/title }</q>`
const cacheTestDoc = `<bib><book><title>a</title></book><book><title>b</title></book></bib>`

func TestCompileCacheHit(t *testing.T) {
	cc := NewCompileCache(8)
	e1, err := cc.Engine(cacheTestQuery)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := cc.Engine(cacheTestQuery)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatal("same query + options must return the identical cached Engine")
	}
	st := cc.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Compiles != 1 || st.Entries != 1 {
		t.Fatalf("stats after one miss and one hit: %+v", st)
	}
	out, _, err := e2.RunString(cacheTestDoc)
	if err != nil {
		t.Fatal(err)
	}
	if out != "<q><title>a</title><title>b</title></q>" {
		t.Fatalf("cached engine output: %s", out)
	}
}

func TestCompileCacheOptionsAreKeyed(t *testing.T) {
	cc := NewCompileCache(8)
	gcxEng, err := cc.Engine(cacheTestQuery)
	if err != nil {
		t.Fatal(err)
	}
	fullEng, err := cc.Engine(cacheTestQuery, WithStrategy(FullBuffer))
	if err != nil {
		t.Fatal(err)
	}
	if gcxEng == fullEng {
		t.Fatal("different strategies must compile distinct engines")
	}
	noEarly, err := cc.Engine(cacheTestQuery, WithoutEarlyUpdates())
	if err != nil {
		t.Fatal(err)
	}
	if noEarly == gcxEng {
		t.Fatal("different static options must compile distinct engines")
	}
	if st := cc.Stats(); st.Compiles != 3 || st.Entries != 3 {
		t.Fatalf("three distinct configurations expected: %+v", st)
	}
	// Same options again: all hits, no new compiles.
	if _, err := cc.Engine(cacheTestQuery, WithStrategy(FullBuffer)); err != nil {
		t.Fatal(err)
	}
	if st := cc.Stats(); st.Compiles != 3 {
		t.Fatalf("re-request must not recompile: %+v", st)
	}
}

func TestCompileCacheWorkloadKeyedByOrder(t *testing.T) {
	cc := NewCompileCache(8)
	qs := []string{`<a>{ for $x in /r/a return $x }</a>`, `<b>{ for $x in /r/b return $x }</b>`}
	w1, err := cc.Workload(qs)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := cc.Workload(qs)
	if err != nil {
		t.Fatal(err)
	}
	if w1 != w2 {
		t.Fatal("identical workload must be served from cache")
	}
	rev, err := cc.Workload([]string{qs[1], qs[0]})
	if err != nil {
		t.Fatal(err)
	}
	if rev == w1 {
		t.Fatal("member order is part of the identity of a workload")
	}
}

func TestCompileCacheEviction(t *testing.T) {
	cc := NewCompileCache(2)
	q := func(i int) string {
		return fmt.Sprintf(`<q>{ for $b in /r/e%d return $b }</q>`, i)
	}
	if _, err := cc.Engine(q(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Engine(q(1)); err != nil {
		t.Fatal(err)
	}
	// Touch q0 so q1 is the LRU victim when q2 arrives.
	if _, err := cc.Engine(q(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Engine(q(2)); err != nil {
		t.Fatal(err)
	}
	st := cc.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("capacity 2 after 3 distinct queries: %+v", st)
	}
	// q0 must still be cached (it was freshly used), q1 must recompile.
	before := cc.Stats().Compiles
	if _, err := cc.Engine(q(0)); err != nil {
		t.Fatal(err)
	}
	if got := cc.Stats().Compiles; got != before {
		t.Fatalf("recently used entry was evicted: compiles %d -> %d", before, got)
	}
	if _, err := cc.Engine(q(1)); err != nil {
		t.Fatal(err)
	}
	if got := cc.Stats().Compiles; got != before+1 {
		t.Fatalf("LRU entry must have been evicted and recompiled: compiles %d -> %d", before, got)
	}
}

func TestCompileCacheNegativeCaching(t *testing.T) {
	cc := NewCompileCache(8)
	bad := `<q>{ for $b in /bib/book`
	if _, err := cc.Engine(bad); err == nil {
		t.Fatal("malformed query must fail to compile")
	}
	if _, err := cc.Engine(bad); err == nil {
		t.Fatal("cached error must surface again")
	}
	if st := cc.Stats(); st.Compiles != 1 {
		t.Fatalf("a malformed query must cost one compile, not one per request: %+v", st)
	}
}

func TestCompileCacheBadDTDIsNegativeCached(t *testing.T) {
	cc := NewCompileCache(8)
	if _, err := cc.Engine(cacheTestQuery, WithDTD("<!NOT-A-DTD")); err == nil {
		t.Fatal("invalid DTD must fail")
	}
	if _, err := cc.Engine(cacheTestQuery, WithDTD("<!NOT-A-DTD")); err == nil {
		t.Fatal("cached DTD error must surface again")
	}
	// The DTD parses at compile time (not per lookup), so the failure is
	// one cached compile like any other bad input.
	if st := cc.Stats(); st.Compiles != 1 || st.Entries != 1 {
		t.Fatalf("bad DTD must cost one compile: %+v", st)
	}
	// A valid DTD under the same query is a distinct key.
	if _, err := cc.Engine(cacheTestQuery, WithDTD(XMarkDTD)); err != nil {
		t.Fatal(err)
	}
	if st := cc.Stats(); st.Compiles != 2 || st.Entries != 2 {
		t.Fatalf("distinct DTDs must be distinct entries: %+v", st)
	}
}

// TestCompileCacheQueryListCollisionResistance: the workload key must
// distinguish member boundaries even for adversarial texts (a NUL or a
// length-prefix-looking fragment inside a query must not fuse two
// members into one).
func TestCompileCacheQueryListCollisionResistance(t *testing.T) {
	cc := NewCompileCache(16)
	a := "<a>{ for $x in /r/a return $x }</a>"
	b := "<b>{ for $x in /r/b return $x }</b>"
	pairs := [][]string{
		{a, b},
		{a + "\x00" + b},
		{a + "\x00", b},
		{a, "\x00" + b},
	}
	for _, qs := range pairs {
		cc.Workload(qs) // compile errors are fine; only key identity matters
	}
	if st := cc.Stats(); st.Entries != len(pairs) {
		t.Fatalf("4 distinct query lists must produce 4 entries, got %+v", st)
	}
}

// TestCompileCacheSingleFlight: many goroutines requesting the same cold
// key must trigger exactly one compilation.
func TestCompileCacheSingleFlight(t *testing.T) {
	cc := NewCompileCache(8)
	const n = 32
	var wg sync.WaitGroup
	engines := make([]*Engine, n)
	errs := make([]error, n)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			engines[i], errs[i] = cc.Engine(cacheTestQuery)
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if engines[i] != engines[0] {
			t.Fatal("all callers must receive the identical Engine")
		}
	}
	if st := cc.Stats(); st.Compiles != 1 {
		t.Fatalf("concurrent cold requests must coalesce into one compile: %+v", st)
	}
}

// TestCompileCacheConcurrentMixed hammers the cache with a working set
// larger than the capacity while runs execute, to catch races between
// eviction, lookup, and use of evicted-but-held entries.
func TestCompileCacheConcurrentMixed(t *testing.T) {
	cc := NewCompileCache(4)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				q := fmt.Sprintf(`<q>{ for $b in /r/e%d return $b }</q>`, (w+i)%7)
				eng, err := cc.Engine(q)
				if err != nil {
					t.Error(err)
					return
				}
				doc := `<r><e0>x</e0><e1>x</e1><e2>x</e2><e3>x</e3><e4>x</e4><e5>x</e5><e6>x</e6></r>`
				out, _, err := eng.RunString(doc)
				if err != nil {
					t.Error(err)
					return
				}
				if !strings.Contains(out, "x") {
					t.Errorf("unexpected output %q for %q", out, q)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
