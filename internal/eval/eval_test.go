package eval

import (
	"errors"
	"strings"
	"testing"

	"gcx/internal/buffer"
	"gcx/internal/xmlstream"
	"gcx/internal/xqast"
)

// scriptFeeder simulates the stream projector: each Step executes the next
// scripted buffer mutation.
type scriptFeeder struct {
	steps []func()
	fail  error
}

func (f *scriptFeeder) Step() (bool, error) {
	if f.fail != nil {
		return false, f.fail
	}
	if len(f.steps) == 0 {
		return false, nil
	}
	s := f.steps[0]
	f.steps = f.steps[1:]
	s()
	return true, nil
}

func setup() (*buffer.Buffer, *xmlstream.SymTab) {
	syms := xmlstream.NewSymTab()
	return buffer.New(syms, 4, []bool{false, false, false, false, false}), syms
}

func evaluator(buf *buffer.Buffer, feed Feeder) *Evaluator {
	var sink strings.Builder
	return New(buf, feed, xmlstream.NewWriter(&sink), Options{ExecuteSignOffs: true})
}

func child(test string) xqast.Step {
	return xqast.Step{Axis: xqast.Child, Test: xqast.NameTest(test)}
}

func TestCursorChildIterationBlocking(t *testing.T) {
	buf, syms := setup()
	root := buf.Root()
	r := buf.AppendElement(root, syms.Intern("r"))

	// The feeder appends two matching children and one non-matching one,
	// then finishes r.
	feed := &scriptFeeder{steps: []func(){
		func() { buf.Finish(withRole(buf, buf.AppendElement(r, syms.Intern("a")), 1)) },
		func() { buf.Finish(withRole(buf, buf.AppendElement(r, syms.Intern("x")), 2)) },
		func() { buf.Finish(withRole(buf, buf.AppendElement(r, syms.Intern("a")), 1)) },
		func() { buf.Finish(r) },
	}}
	e := evaluator(buf, feed)
	cur := newCursor(e, r, child("a"))
	defer cur.close()

	var names []string
	for {
		n, err := cur.next()
		if err != nil {
			t.Fatal(err)
		}
		if n == nil {
			break
		}
		names = append(names, buf.Syms().Name(n.Sym))
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "a" {
		t.Fatalf("iterated %v", names)
	}
}

func withRole(buf *buffer.Buffer, n *buffer.Node, role xqast.Role) *buffer.Node {
	buf.AddRole(n, role, 1)
	return n
}

func TestCursorPinsSurviveSignOff(t *testing.T) {
	buf, syms := setup()
	r := buf.AppendElement(buf.Root(), syms.Intern("r"))
	a1 := withRole(buf, buf.AppendElement(r, syms.Intern("a")), 1)
	buf.Finish(a1)
	a2 := withRole(buf, buf.AppendElement(r, syms.Intern("a")), 1)
	buf.Finish(a2)
	buf.Finish(r)

	e := evaluator(buf, &scriptFeeder{})
	cur := newCursor(e, r, child("a"))
	n1, err := cur.next()
	if err != nil || n1 != a1 {
		t.Fatalf("first: %v %v", n1, err)
	}
	// The loop body signs off the binding role of the current node: the
	// node becomes irrelevant but must stay linked (pinned) so the cursor
	// can advance from it.
	if err := buf.SignOff(a1, nil, 1); err != nil {
		t.Fatal(err)
	}
	if a1.Unlinked() {
		t.Fatal("pinned current node must not be unlinked")
	}
	n2, err := cur.next()
	if err != nil || n2 != a2 {
		t.Fatalf("second: %v %v", n2, err)
	}
	// Advancing released the pin: a1 is now reclaimed.
	if !a1.Unlinked() {
		t.Fatal("previous node must be reclaimed after advancing")
	}
	cur.close()
}

func TestCursorDescendantDocOrder(t *testing.T) {
	buf, syms := setup()
	r := buf.AppendElement(buf.Root(), syms.Intern("r"))
	// r -> b1 -> (k, b2 -> k), c -> b3
	b1 := withRole(buf, buf.AppendElement(r, syms.Intern("b")), 1)
	k1 := withRole(buf, buf.AppendElement(b1, syms.Intern("k")), 2)
	buf.Finish(k1)
	b2 := withRole(buf, buf.AppendElement(b1, syms.Intern("b")), 1)
	buf.Finish(b2)
	buf.Finish(b1)
	c := withRole(buf, buf.AppendElement(r, syms.Intern("c")), 2)
	b3 := withRole(buf, buf.AppendElement(c, syms.Intern("b")), 1)
	buf.Finish(b3)
	buf.Finish(c)
	buf.Finish(r)

	e := evaluator(buf, &scriptFeeder{})
	cur := newCursor(e, r, xqast.Step{Axis: xqast.Descendant, Test: xqast.NameTest("b")})
	defer cur.close()
	var got []*buffer.Node
	for {
		n, err := cur.next()
		if err != nil {
			t.Fatal(err)
		}
		if n == nil {
			break
		}
		got = append(got, n)
	}
	if len(got) != 3 || got[0] != b1 || got[1] != b2 || got[2] != b3 {
		t.Fatalf("descendant order wrong: %v", got)
	}
}

func TestCursorFirstStepStopsAfterWitness(t *testing.T) {
	buf, syms := setup()
	r := buf.AppendElement(buf.Root(), syms.Intern("r"))
	p1 := withRole(buf, buf.AppendElement(r, syms.Intern("p")), 1)
	buf.Finish(p1)
	p2 := withRole(buf, buf.AppendElement(r, syms.Intern("p")), 1)
	buf.Finish(p2)
	buf.Finish(r)

	e := evaluator(buf, &scriptFeeder{})
	step := child("p")
	step.First = true
	cur := newCursor(e, r, step)
	defer cur.close()
	n, _ := cur.next()
	if n != p1 {
		t.Fatal("first witness expected")
	}
	n2, _ := cur.next()
	if n2 != nil {
		t.Fatal("[1] cursor must stop after the witness")
	}
}

func TestCursorPropagatesFeederError(t *testing.T) {
	buf, syms := setup()
	r := buf.AppendElement(buf.Root(), syms.Intern("r")) // unfinished
	e := evaluator(buf, &scriptFeeder{fail: errors.New("boom")})
	cur := newCursor(e, r, child("a"))
	defer cur.close()
	if _, err := cur.next(); err == nil {
		t.Fatal("feeder error must propagate")
	}
}

func TestCompareValues(t *testing.T) {
	cases := []struct {
		l    string
		op   xqast.RelOp
		r    string
		want bool
	}{
		{"9", xqast.OpLt, "10", true},    // numeric
		{"9", xqast.OpGt, "10", false},   // numeric
		{"a", xqast.OpLt, "b", true},     // string
		{"9", xqast.OpLt, "x10", false},  // mixed -> string: "9" > "x10"? '9'(57) < 'x'(120): true!
		{"abc", xqast.OpEq, "abc", true}, //
		{"abc", xqast.OpNe, "abd", true}, //
		{" 5 ", xqast.OpEq, "5", true},   // numeric after trim
		{"5.5", xqast.OpGe, "5.5", true}, //
		{"-3", xqast.OpLe, "2", true},    //
		{"100", xqast.OpGt, "20", true},  // numeric, not lexicographic
		{"", xqast.OpEq, "", true},       //
		{"", xqast.OpLt, "a", true},      //
	}
	for _, tc := range cases {
		// fix the mixed-case expectation computed above
		want := tc.want
		if tc.l == "9" && tc.r == "x10" {
			want = "9" < "x10"
		}
		if got := compareValues(tc.l, tc.op, tc.r); got != want {
			t.Fatalf("compare(%q %s %q) = %v, want %v", tc.l, tc.op, tc.r, got, want)
		}
	}
}

func TestStringValueConcatenatesTexts(t *testing.T) {
	// Role 1 is aggregate: the subtree below r is covered, as it would be
	// for a comparison dependency in a real run.
	syms := xmlstream.NewSymTab()
	buf := buffer.New(syms, 1, []bool{false, true})
	r := buf.AppendElement(buf.Root(), syms.Intern("r"))
	withRole(buf, r, 1)
	buf.AppendText(r, "a")
	k := buf.AppendElement(r, syms.Intern("k"))
	buf.AppendText(k, "b")
	buf.Finish(k)
	buf.AppendText(r, "c")
	buf.Finish(r)

	e := evaluator(buf, &scriptFeeder{})
	v, err := e.stringValue(r)
	if err != nil {
		t.Fatal(err)
	}
	if v != "abc" {
		t.Fatalf("string value %q, want abc", v)
	}
}

func TestStringValueBlocksUntilFinished(t *testing.T) {
	buf, syms := setup()
	r := buf.AppendElement(buf.Root(), syms.Intern("r"))
	withRole(buf, r, 1)
	buf.AppendText(r, "x")
	feed := &scriptFeeder{steps: []func(){
		func() { buf.AppendText(r, "y") },
		func() { buf.Finish(r) },
	}}
	e := evaluator(buf, feed)
	v, err := e.stringValue(r)
	if err != nil {
		t.Fatal(err)
	}
	if v != "xy" {
		t.Fatalf("string value %q, want xy", v)
	}
}
