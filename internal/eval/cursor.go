package eval

import (
	"gcx/internal/buffer"
	"gcx/internal/xqast"
)

// cursor iterates the buffered matches of one location step below a context
// node in document order, blocking for more input while the relevant region
// is unfinished.
//
// The cursor pins its current node: active garbage collection defers the
// deletion of pinned nodes (exactly like unfinished ones, Section 5), so
// the signOff batch at the end of a loop body may make the current binding
// irrelevant without invalidating the cursor's position. The node is
// reclaimed when the cursor advances past it.
type cursor struct {
	e    *Evaluator
	ctx  *buffer.Node
	step xqast.Step
	// cur is the pinned current node (nil before the first next()).
	cur *buffer.Node
	// done marks an exhausted cursor.
	done bool
	// first tracks [1] steps: after one match the cursor is exhausted.
	yielded bool
	// released marks a cursor returned to the evaluator's freelist; it
	// makes close idempotent (finish() closes eagerly, the owner's
	// deferred close then becomes a no-op).
	released bool
}

//gcxlint:noalloc
func newCursor(e *Evaluator, ctx *buffer.Node, step xqast.Step) *cursor {
	var c *cursor
	if n := len(e.curPool); n > 0 {
		c = e.curPool[n-1]
		e.curPool = e.curPool[:n-1]
		*c = cursor{}
	} else {
		c = &cursor{} //gcxlint:allocok freelist growth to loop-nesting depth, amortized across runs
	}
	c.e = e
	c.ctx = ctx
	c.step = step
	// Schema shortcut: if the content model excludes this child tag
	// entirely, the sequence is empty without reading anything.
	if e.opts.Schema != nil && step.Axis == xqast.Child &&
		step.Test.Kind == xqast.TestName && ctx.Kind == buffer.KindElement {
		parent := e.buf.Syms().Name(ctx.Sym)
		if can, known := e.opts.Schema.CanContain(parent, step.Test.Name); known && !can {
			c.done = true
		}
	}
	return c
}

// close releases the cursor's pin and returns it to the evaluator's
// freelist. The cursor must not be used afterwards.
//
//gcxlint:noalloc
func (c *cursor) close() {
	if c.released {
		return
	}
	if c.cur != nil {
		c.e.buf.Unpin(c.cur)
	}
	// Zero the whole cursor before pooling: an idle freelist entry must
	// not pin its context node (or the step's strings) until reuse
	// happens to overwrite it.
	e := c.e
	*c = cursor{released: true}
	e.curPool = append(e.curPool, c)
}

// next returns the next match in document order, or nil when the sequence
// is exhausted. The returned node is pinned until the following next() or
// close().
//
//gcxlint:noalloc
func (c *cursor) next() (*buffer.Node, error) {
	if c.done {
		return nil, nil
	}
	if c.step.First && c.yielded {
		c.finish()
		return nil, nil
	}
	for {
		n := c.scan()
		if n != nil {
			c.e.buf.Pin(n)
			if c.cur != nil {
				c.e.buf.Unpin(c.cur)
			}
			c.cur = n
			c.yielded = true
			return n, nil
		}
		// No further match buffered: either the region is complete (the
		// sequence is exhausted) or we must pull more input.
		if c.regionFinished() {
			c.finish()
			return nil, nil
		}
		if _, err := c.e.pull(); err != nil {
			c.finish()
			return nil, err
		}
	}
}

//gcxlint:noalloc
func (c *cursor) finish() {
	c.done = true
	c.close()
}

// scan finds the next buffered match after the current position without
// blocking.
//
//gcxlint:noalloc
func (c *cursor) scan() *buffer.Node {
	switch c.step.Axis {
	case xqast.Child:
		var n *buffer.Node
		if c.cur == nil {
			n = c.ctx.FirstChild
		} else {
			n = c.cur.NextSib
		}
		for ; n != nil; n = n.NextSib {
			if c.e.buf.MatchTest(c.step.Test, n) {
				return n
			}
		}
		return nil
	case xqast.Descendant, xqast.DescendantOrSelf:
		// Document-order DFS through the buffered subtree. dos appears
		// only in internal paths but is supported for completeness.
		start := c.cur
		if start == nil {
			if c.step.Axis == xqast.DescendantOrSelf && c.e.buf.MatchTest(c.step.Test, c.ctx) {
				return c.ctx
			}
			start = c.ctx
		}
		for n := c.nextInDocOrder(start); n != nil; n = c.nextInDocOrder(n) {
			if c.e.buf.MatchTest(c.step.Test, n) {
				return n
			}
		}
		return nil
	default:
		return nil
	}
}

// nextInDocOrder advances one position in the DFS over the subtree of
// c.ctx, returning nil at the end of the currently buffered region.
//
//gcxlint:noalloc
func (c *cursor) nextInDocOrder(n *buffer.Node) *buffer.Node {
	if n.FirstChild != nil {
		return n.FirstChild
	}
	for n != nil && n != c.ctx {
		if n.NextSib != nil {
			return n.NextSib
		}
		n = n.Parent
	}
	return nil
}

// regionFinished reports whether no further matches can appear: once the
// context is finished (all descendants are then finished too), or — for
// child-axis name tests with a schema — once the content model proves no
// further match can arrive (the projector marks the context node when a
// sibling tag kills the test tag; see package dtd).
//
//gcxlint:noalloc
func (c *cursor) regionFinished() bool {
	if c.ctx.Finished() {
		return true
	}
	if c.step.Axis != xqast.Child {
		return false
	}
	// Universal XML fact: a document has exactly one root element, so a
	// child-axis cursor over the virtual root is exhausted after its
	// first match.
	if c.ctx.Kind == buffer.KindRoot && c.yielded {
		return true
	}
	// Schema fact: the content model proves no further match can arrive.
	if c.step.Test.Kind == xqast.TestName && c.ctx.Kind == buffer.KindElement &&
		c.ctx.NoMore(c.e.buf.Syms().Lookup(c.step.Test.Name)) {
		return true
	}
	return false
}
