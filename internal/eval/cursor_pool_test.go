package eval

import "testing"

// A closed cursor sits in the evaluator's freelist until the next
// newCursor; while it waits there it must not pin its context node (or
// anything else from the finished iteration).
func TestClosedCursorRetainsNothing(t *testing.T) {
	buf, syms := setup()
	r := buf.AppendElement(buf.Root(), syms.Intern("r"))
	buf.Finish(buf.AppendElement(r, syms.Intern("a")))
	buf.Finish(r)

	e := evaluator(buf, &scriptFeeder{})
	cur := newCursor(e, r, child("a"))
	if _, err := cur.next(); err != nil {
		t.Fatal(err)
	}
	cur.close()

	if len(e.curPool) != 1 {
		t.Fatalf("freelist has %d entries, want 1", len(e.curPool))
	}
	pooled := e.curPool[0]
	if !pooled.released {
		t.Error("pooled cursor not marked released")
	}
	if pooled.ctx != nil || pooled.cur != nil || pooled.e != nil {
		t.Errorf("pooled cursor still pins nodes: ctx=%p cur=%p e=%p", pooled.ctx, pooled.cur, pooled.e)
	}
	if pooled.step.Test.Name != "" {
		t.Errorf("pooled cursor retains step strings: %+v", pooled.step)
	}
}
