// Package eval implements the GCX query evaluator (Section 6, Figure 11):
// a strictly sequential, pull-based interpreter for rewritten XQ queries.
//
// The evaluator walks the buffer tree. Whenever it needs data that is not
// buffered yet (the next node of a for-loop, a witness for an existence
// check, the completion of a subtree that is being serialized), it blocks
// and drives the stream pre-projector token by token until the data is
// available or the relevant region is finished — the chain of commands of
// Figure 11. SignOff statements are forwarded to the buffer manager, which
// performs the role updates and invokes active garbage collection.
package eval

import (
	"strconv"
	"strings"

	"gcx/internal/buffer"
	"gcx/internal/dtd"
	"gcx/internal/xmlstream"
	"gcx/internal/xqast"
)

// Feeder supplies more input to the buffer; implemented by the stream
// projector. Step processes one token and reports false at end of input.
type Feeder interface {
	Step() (bool, error)
}

// Options configures an evaluator run.
type Options struct {
	// ExecuteSignOffs enables active garbage collection. The StaticOnly
	// baseline ("static analysis alone") disables it: the buffer then
	// holds the full projected document, as in projection-based systems
	// [13].
	ExecuteSignOffs bool
	// Schema, when non-nil, lets cursors terminate regions early using
	// DTD content-model facts (must match the projector's schema).
	Schema *dtd.Schema
	// RoleOffset is added to every signOff role ID before it reaches the
	// buffer. Solo runs leave it zero; shared-stream workloads compile each
	// member query against its own role space within a combined role table
	// (static.MergeTrees), and the rewritten query's role IDs — assigned by
	// the member's solo analysis — are translated here at execution time.
	RoleOffset xqast.Role
	// OnSignOff, if set, is invoked after each executed signOff statement
	// (used by the Figure 2 trace example).
	OnSignOff func(s xqast.SignOff)
	// OnToken, if set, is invoked after each token pulled from the
	// projector while the evaluator was blocked.
	OnToken func()
}

// Evaluator evaluates one query over one document. An Evaluator can be
// reused for further runs via Reset once its buffer, feeder, and writer
// have been reset; the environment map and cursor freelist are retained,
// so repeated evaluations are allocation-free after warm-up.
type Evaluator struct {
	buf  *buffer.Buffer
	feed Feeder
	out  *xmlstream.Writer
	opts Options
	env  map[string]*buffer.Node
	// curPool recycles cursors (one is consumed per for-loop, existence
	// check, and value collection — the per-binding hot path).
	curPool []*cursor
	// valsR is the reused operand-value scratch slice for the collected
	// (right-hand) side of compare: a nested-loop join evaluates one
	// comparison per pair of bindings, and the operand sequence must not
	// cost an allocation each time. The left side streams through
	// compareStream and never materializes.
	valsR []string
	// cmpOp/cmpRHS/cmpRHSReady carry the active comparison through
	// compareStream's recursion without closures (closures would allocate
	// on the join hot path). Comparisons never nest — a Compare condition
	// has no sub-conditions — so one set of fields suffices.
	cmpOp       xqast.RelOp
	cmpRHS      xqast.Operand
	cmpRHSReady bool
	// firstFlushed records that the first result byte has been pushed
	// through the writer's batching toward the destination. Armed in pull
	// rather than at write time so a run that fails on its very first
	// input token still produces zero client-visible bytes.
	firstFlushed bool
}

// New creates an evaluator writing query output to out.
func New(buf *buffer.Buffer, feed Feeder, out *xmlstream.Writer, opts Options) *Evaluator {
	return &Evaluator{
		buf:  buf,
		feed: feed,
		out:  out,
		opts: opts,
		env:  map[string]*buffer.Node{xqast.RootVar: buf.Root()},
	}
}

// Reset prepares the evaluator for another run. The buffer must already
// be reset (the root binding is re-read from it), and opts are replaced
// wholesale so per-run hooks (tracing) do not leak across runs.
//
//gcxlint:keep buf wired at construction; the owner resets the buffer separately
//gcxlint:keep feed wired at construction; the owner resets the projector separately
//gcxlint:keep out wired at construction; the owner re-targets the writer separately
//gcxlint:keep curPool the cursor freelist is the point of pooling; entries are zeroed in close
func (e *Evaluator) Reset(opts Options) {
	e.opts = opts
	clear(e.env)
	e.env[xqast.RootVar] = e.buf.Root()
	e.firstFlushed = false
	e.cmpOp = 0
	// An errored run can abandon a comparison mid-stream; make sure the
	// pooled evaluator retains no operand strings either way.
	e.cmpRHS = xqast.Operand{}
	e.cmpRHSReady = false
	e.dropScratch()
}

// Run evaluates the query and flushes the output writer.
func (e *Evaluator) Run(q *xqast.Query) error {
	// The operand scratch holds views of buffered document text; drop them
	// when the evaluation ends (normally, with an error, or by panic) so a
	// pooled idle evaluator pins no document data.
	defer e.dropScratch()
	if err := e.expr(q.Root); err != nil {
		return err
	}
	return e.out.Flush()
}

// dropScratch clears the operand-value scratch over its full capacity:
// re-slicing alone would keep the string headers beyond the current
// length alive for as long as the evaluator sits in its pool.
//
//gcxlint:noalloc
func (e *Evaluator) dropScratch() {
	e.valsR = e.valsR[:cap(e.valsR)]
	clear(e.valsR)
	e.valsR = e.valsR[:0]
}

// pull drives the projector by one token. It returns false when the input
// is exhausted.
//
// pull is also the earliest-answering flush point: once a result byte
// exists AND at least one input token has been consumed successfully, the
// byte is certain — nothing upstream can retract it — so it is pushed
// through the writer's batching (and the destination's, via
// ResultFlusher) instead of riding the 32KB bufio until end of run. Doing
// this between tokens means the flush never lands mid-tag, and gating it
// on a successful Step keeps a request that dies on its very first token
// free of committed output (the server's clean-4xx path depends on that).
//
//gcxlint:noalloc
func (e *Evaluator) pull() (bool, error) {
	more, err := e.feed.Step()
	if err != nil {
		return false, err
	}
	if !e.firstFlushed && e.out.FirstByteAt() != 0 {
		e.firstFlushed = true
		e.out.FlushFirst()
	}
	if e.opts.OnToken != nil {
		e.opts.OnToken()
	}
	return more, nil
}

// waitFinished blocks until n's closing tag has been read.
//
//gcxlint:noalloc
func (e *Evaluator) waitFinished(n *buffer.Node) error {
	for !n.Finished() {
		if _, err := e.pull(); err != nil {
			return err
		}
	}
	return nil
}

func (e *Evaluator) expr(x xqast.Expr) error {
	switch x := x.(type) {
	case nil, xqast.Empty:
		return nil
	case xqast.Sequence:
		for _, item := range x.Items {
			if err := e.expr(item); err != nil {
				return err
			}
		}
		return nil
	case xqast.Element:
		e.out.StartElement(x.Name)
		if err := e.expr(x.Child); err != nil {
			return err
		}
		e.out.EndElement(x.Name)
		return e.out.Err()
	case xqast.Text:
		e.out.Text(x.Data)
		return e.out.Err()
	case xqast.CondTag:
		ok, err := e.cond(x.Cond)
		if err != nil {
			return err
		}
		if ok {
			if x.Open {
				e.out.StartElement(x.Name)
			} else {
				e.out.EndElement(x.Name)
			}
		}
		return e.out.Err()
	case xqast.VarRef:
		n := e.env[x.Var]
		return e.serialize(n)
	case xqast.PathExpr:
		return e.outputPath(x.Path)
	case xqast.For:
		return e.forLoop(x)
	case xqast.If:
		ok, err := e.cond(x.Cond)
		if err != nil {
			return err
		}
		if ok {
			return e.expr(x.Then)
		}
		return e.expr(x.Else)
	case xqast.SignOff:
		if !e.opts.ExecuteSignOffs {
			return nil
		}
		binding := e.env[x.Path.Var]
		if err := e.buf.SignOff(binding, x.Path.Steps, x.Role+e.opts.RoleOffset); err != nil {
			return err
		}
		if e.opts.OnSignOff != nil {
			e.opts.OnSignOff(x)
		}
		return nil
	default:
		return errUnsupported(x)
	}
}

func errUnsupported(x interface{}) error {
	return &Error{Msg: "unsupported expression in evaluator", Detail: x}
}

// Error is an evaluation failure.
type Error struct {
	Msg    string
	Detail interface{}
}

func (e *Error) Error() string { return "eval: " + e.Msg }

// forLoop iterates the binding sequence of a for-loop strictly
// sequentially, evaluating the body (including its trailing signOff batch)
// once per binding.
func (e *Evaluator) forLoop(f xqast.For) error {
	y := e.env[f.In.Var]
	cur := newCursor(e, y, f.In.Steps[0])
	defer cur.close()
	for {
		n, err := cur.next()
		if err != nil {
			return err
		}
		if n == nil {
			return nil
		}
		e.env[f.Var] = n
		if err := e.expr(f.Return); err != nil {
			return err
		}
		delete(e.env, f.Var)
	}
}

// outputPath copies all matches of a single-step path to the output in
// document order (used when early updates are disabled).
func (e *Evaluator) outputPath(p xqast.Path) error {
	y := e.env[p.Var]
	cur := newCursor(e, y, p.Steps[0])
	defer cur.close()
	for {
		n, err := cur.next()
		if err != nil {
			return err
		}
		if n == nil {
			return nil
		}
		if err := e.serialize(n); err != nil {
			return err
		}
	}
}

// serialize copies a buffered node (with its complete subtree) to the
// output, blocking for input while the subtree is unfinished. The subtree
// is guaranteed to be fully buffered by the output dependencies of the
// static analysis.
func (e *Evaluator) serialize(n *buffer.Node) error {
	switch n.Kind {
	case buffer.KindText:
		e.out.Text(n.Text)
		return e.out.Err()
	case buffer.KindElement:
		name := e.buf.Syms().Name(n.Sym)
		e.out.StartElement(name)
		var prev *buffer.Node
		for {
			c, err := e.nextChildBlocking(n, prev)
			if err != nil {
				return err
			}
			if c == nil {
				break
			}
			if err := e.serialize(c); err != nil {
				return err
			}
			prev = c
		}
		e.out.EndElement(name)
		return e.out.Err()
	default:
		// The virtual root: outputting $root copies the entire document.
		var prev *buffer.Node
		for {
			c, err := e.nextChildBlocking(n, prev)
			if err != nil {
				return err
			}
			if c == nil {
				return nil
			}
			if err := e.serialize(c); err != nil {
				return err
			}
			prev = c
		}
	}
}

// nextChildBlocking returns the child of parent following prev (or the
// first child if prev is nil), pulling input until one appears or parent
// finishes. During serialization no signOffs run, so links are stable.
//
//gcxlint:noalloc
func (e *Evaluator) nextChildBlocking(parent, prev *buffer.Node) (*buffer.Node, error) {
	for {
		var c *buffer.Node
		if prev == nil {
			c = parent.FirstChild
		} else {
			c = prev.NextSib
		}
		if c != nil {
			return c, nil
		}
		if parent.Finished() {
			return nil, nil
		}
		if _, err := e.pull(); err != nil {
			return nil, err
		}
	}
}

// --- conditions ---

func (e *Evaluator) cond(c xqast.Cond) (bool, error) {
	switch c := c.(type) {
	case xqast.TrueCond:
		return true, nil
	case xqast.Not:
		v, err := e.cond(c.C)
		return !v, err
	case xqast.And:
		l, err := e.cond(c.L)
		if err != nil || !l {
			return false, err
		}
		return e.cond(c.R)
	case xqast.Or:
		l, err := e.cond(c.L)
		if err != nil || l {
			return l, err
		}
		return e.cond(c.R)
	case xqast.Exists:
		n := e.env[c.Path.Var]
		return e.exists(n, c.Path.Steps)
	case xqast.Compare:
		return e.compare(c)
	default:
		return false, &Error{Msg: "unsupported condition", Detail: c}
	}
}

// exists searches for a witness of path steps below n, blocking until one
// is found or the relevant region is finished. The projection guarantees
// the first witness per context is buffered (the [1] predicate).
//
// Two schema fast paths keep the check from pulling input it does not
// need: a chain the DTD proves present in EVERY valid document is true
// the moment the context node exists (no waiting for the witness event),
// and newCursor's CanContain shortcut already makes a provably-absent
// chain false without a pull. Both only change WHEN the answer is known,
// never what it is, so output bytes are untouched.
func (e *Evaluator) exists(n *buffer.Node, steps []xqast.Step) (bool, error) {
	if len(steps) == 0 {
		return true, nil
	}
	if e.provableExists(n, steps) {
		return true, nil
	}
	cur := newCursor(e, n, steps[0])
	defer cur.close()
	for {
		m, err := cur.next()
		if err != nil {
			return false, err
		}
		if m == nil {
			return false, nil
		}
		ok, err := e.exists(m, steps[1:])
		if err != nil || ok {
			return ok, err
		}
	}
}

// provableExists reports whether the DTD guarantees at least one match of
// the step chain below n in EVERY valid document: each link is a
// child-axis name test whose tag the parent's content model cannot omit
// (Schema.MustContain). When it holds, the existence check is certain the
// moment the context node's start tag has been read — no witness event is
// needed. Runs per existence check on the loop-body hot path, so it must
// not allocate.
//
//gcxlint:noalloc
func (e *Evaluator) provableExists(n *buffer.Node, steps []xqast.Step) bool {
	s := e.opts.Schema
	if s == nil || n == nil || n.Kind != buffer.KindElement {
		return false
	}
	name := e.buf.Syms().Name(n.Sym)
	for _, st := range steps {
		if st.Axis != xqast.Child || st.Test.Kind != xqast.TestName {
			return false
		}
		if !s.MustContain(name, st.Test.Name) {
			return false
		}
		name = st.Test.Name
	}
	return true
}

// compare evaluates a general comparison with existential semantics over
// the operand sequences. Values compare numerically when both sides parse
// as numbers, lexicographically otherwise ("atomic equality" of Section 3
// extended to the RelOps of Figure 6).
//
// The left operand STREAMS: each of its values is compared as soon as its
// subtree closes, and the first satisfying pair answers the condition
// without collecting the remaining matches — earliest answering for
// value-based filters. The right operand is collected once, lazily, when
// the first left value appears (an empty left sequence is false without
// evaluating the right side, matching the all-at-once semantics). A
// literal left operand is swapped to the collected side under the
// mirrored operator so the streaming side is always the path.
func (e *Evaluator) compare(c xqast.Compare) (bool, error) {
	lhs, op, rhs := c.LHS, c.Op, c.RHS
	if lhs.IsLiteral && !rhs.IsLiteral {
		lhs, rhs = rhs, lhs
		op = mirrorOp(op)
	}
	if lhs.IsLiteral {
		// Both sides literal (not produced by the normalizer, but cheap to
		// answer exactly).
		return compareValues(lhs.Lit, op, rhs.Lit), nil
	}
	e.cmpOp, e.cmpRHS, e.cmpRHSReady = op, rhs, false
	ok, err := e.compareStream(e.env[lhs.Path.Var], lhs.Path.Steps)
	e.cmpRHS = xqast.Operand{} // do not retain operand strings in the pooled evaluator
	return ok, err
}

// compareStream walks the streamed operand's match set in document order
// and reports whether any value satisfies the active comparison,
// returning at the first hit. State lives on the evaluator (not in
// closures): compare runs once per binding pair in a nested-loop join.
func (e *Evaluator) compareStream(n *buffer.Node, steps []xqast.Step) (bool, error) {
	if len(steps) == 0 {
		v, err := e.stringValue(n)
		if err != nil {
			return false, err
		}
		if !e.cmpRHSReady {
			vals, err := e.operandValues(e.cmpRHS, e.valsR[:0])
			e.valsR = vals
			if err != nil {
				return false, err
			}
			e.cmpRHSReady = true
		}
		for _, r := range e.valsR {
			if compareValues(v, e.cmpOp, r) {
				return true, nil
			}
		}
		return false, nil
	}
	cur := newCursor(e, n, steps[0])
	defer cur.close()
	for {
		m, err := cur.next()
		if err != nil {
			return false, err
		}
		if m == nil {
			return false, nil
		}
		ok, err := e.compareStream(m, steps[1:])
		if err != nil || ok {
			return ok, err
		}
	}
}

// mirrorOp returns the operator with its operands exchanged:
// a op b  ⇔  b mirrorOp(a).
func mirrorOp(op xqast.RelOp) xqast.RelOp {
	switch op {
	case xqast.OpLt:
		return xqast.OpGt
	case xqast.OpLe:
		return xqast.OpGe
	case xqast.OpGt:
		return xqast.OpLt
	case xqast.OpGe:
		return xqast.OpLe
	default: // = and != are symmetric
		return op
	}
}

// operandValues appends the operand's value sequence to out (the
// evaluator-owned scratch; conditions never nest mid-collection, so the
// two slices cover any condition tree).
func (e *Evaluator) operandValues(o xqast.Operand, out []string) ([]string, error) {
	if o.IsLiteral {
		return append(out, o.Lit), nil
	}
	n := e.env[o.Path.Var]
	return e.collectValues(n, o.Path.Steps, out)
}

func (e *Evaluator) collectValues(n *buffer.Node, steps []xqast.Step, out []string) ([]string, error) {
	if len(steps) == 0 {
		v, err := e.stringValue(n)
		if err != nil {
			return out, err
		}
		return append(out, v), nil
	}
	cur := newCursor(e, n, steps[0])
	defer cur.close()
	for {
		m, err := cur.next()
		if err != nil {
			return out, err
		}
		if m == nil {
			return out, nil
		}
		if out, err = e.collectValues(m, steps[1:], out); err != nil {
			return out, err
		}
	}
}

// stringValue computes the concatenated text content of a node, blocking
// until the subtree is complete (comparison dependencies buffer whole
// subtrees, so all text is present).
func (e *Evaluator) stringValue(n *buffer.Node) (string, error) {
	if n.Kind == buffer.KindText {
		return n.Text, nil
	}
	if err := e.waitFinished(n); err != nil {
		return "", err
	}
	// Leaf elements with a single text child — the overwhelmingly common
	// shape of comparison operands (<price>10</price>) — need no
	// concatenation. Join conditions evaluate one comparison per pair of
	// bindings, so this path must not allocate.
	if c := n.FirstChild; c == nil {
		return "", nil
	} else if c.Kind == buffer.KindText && c.NextSib == nil {
		return c.Text, nil
	}
	var b strings.Builder
	var walk func(m *buffer.Node)
	walk = func(m *buffer.Node) {
		if m.Kind == buffer.KindText {
			b.WriteString(m.Text)
			return
		}
		for c := m.FirstChild; c != nil; c = c.NextSib {
			walk(c)
		}
	}
	walk(n)
	return b.String(), nil
}

// compareValues applies a RelOp: numerically when both operands parse as
// numbers, as strings otherwise.
func compareValues(l string, op xqast.RelOp, r string) bool {
	lf, lerr := strconv.ParseFloat(strings.TrimSpace(l), 64)
	rf, rerr := strconv.ParseFloat(strings.TrimSpace(r), 64)
	if lerr == nil && rerr == nil {
		switch op {
		case xqast.OpEq:
			return lf == rf
		case xqast.OpNe:
			return lf != rf
		case xqast.OpLt:
			return lf < rf
		case xqast.OpLe:
			return lf <= rf
		case xqast.OpGt:
			return lf > rf
		case xqast.OpGe:
			return lf >= rf
		}
		return false
	}
	switch op {
	case xqast.OpEq:
		return l == r
	case xqast.OpNe:
		return l != r
	case xqast.OpLt:
		return l < r
	case xqast.OpLe:
		return l <= r
	case xqast.OpGt:
		return l > r
	case xqast.OpGe:
		return l >= r
	}
	return false
}
