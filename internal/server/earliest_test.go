package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"gcx"
	"gcx/internal/xmark"
)

// earliestTestQuery's first match (africa items) sits in the first few KB
// of an XMark document; everything after is tail the query never emits
// from.
const earliestTestQuery = `<r>{ for $i in /site/regions/africa/item return <n>{ $i/name }</n> }</r>`

// ttfbSlack is the acceptance budget between the engine's own
// first-result stamp and the moment the client reads that byte off the
// socket: HTTP framing, one flush, and a loopback hop.
const ttfbSlack = 10 * time.Millisecond

func earliestListener(t *testing.T, reg *Registry) net.Addr {
	t.Helper()
	s, err := New(Config{Registry: reg, Cache: gcx.NewCompileCache(0)})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })
	return ln.Addr()
}

// TestEarliestAnswerClientTTFB proves the earliest-answering property at
// the outermost boundary: a raw HTTP/1 client uploads only the prefix of
// the document holding the first match, STALLS the rest of the body, and
// must still receive the first result byte — within ttfbSlack of the
// engine's own TTFR stamp. A server that holds output until end of input
// cannot pass: the first byte would be blocked behind a tail the client
// refuses to send until that byte arrives.
func TestEarliestAnswerClientTTFB(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Add("e", earliestTestQuery); err != nil {
		t.Fatal(err)
	}
	addr := earliestListener(t, reg)

	var buf bytes.Buffer
	if _, err := xmark.Generate(&buf, xmark.Config{Factor: xmark.FactorForSize(512 << 10), Seed: 7}); err != nil {
		t.Fatal(err)
	}
	doc := buf.Bytes()
	want := directRun(t, earliestTestQuery, doc)
	cut := 64 << 10 // well past the first africa item, ~85% of the body withheld

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	t0 := time.Now()
	fmt.Fprintf(conn, "POST /query?id=e HTTP/1.1\r\nHost: gcxd\r\nContent-Type: application/xml\r\nContent-Length: %d\r\nConnection: close\r\n\r\n", len(doc))
	if _, err := conn.Write(doc[:cut]); err != nil {
		t.Fatal(err)
	}

	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		t.Fatalf("no response while the body tail was stalled (output held past certainty?): %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var one [1]byte
	if _, err := io.ReadFull(resp.Body, one[:]); err != nil {
		t.Fatalf("no result byte while the body tail was stalled: %v", err)
	}
	clientTTFB := time.Since(t0)

	// The tail was still ours to send when the first byte arrived; now
	// release it and check the stream completes byte-identically.
	if _, err := conn.Write(doc[cut:]); err != nil {
		t.Fatal(err)
	}
	rest, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(one[:]) + string(rest); got != want {
		t.Fatalf("streamed body differs from direct run:\ngot  %q\nwant %q", got, want)
	}

	var st gcx.Stats
	if err := json.Unmarshal([]byte(resp.Trailer.Get("Gcx-Stats")), &st); err != nil {
		t.Fatalf("bad Gcx-Stats trailer %q: %v", resp.Trailer.Get("Gcx-Stats"), err)
	}
	if st.TimeToFirstResultNanos <= 0 {
		t.Fatalf("engine TTFR stamp missing from stats: %+v", st)
	}
	engine := time.Duration(st.TimeToFirstResultNanos)
	if lag := clientTTFB - engine; lag > ttfbSlack {
		t.Fatalf("client first byte lags engine stamp by %v (client %v, engine %v); budget %v",
			lag, clientTTFB, engine, ttfbSlack)
	}
}

// TestBulkPartFlushedBeforeNextDocument: on /bulk over a concatenated
// stream, document K's completed part must cross the transport when K is
// done — not when K+1 fills a buffer. The client sends document 1, stalls
// before document 2, and must read part 1 (boundary, headers, result
// bytes) off the socket while document 2 is still withheld.
func TestBulkPartFlushedBeforeNextDocument(t *testing.T) {
	addr := earliestListener(t, testRegistry(t))
	doc := xmarkDoc(t)
	want := directRun(t, "<r>{ for $i in /site/regions/africa/item return <n>{ $i/name }</n> }</r>", doc)

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := "<r>{ for $i in /site/regions/africa/item return <n>{ $i/name }</n> }</r>"
	fmt.Fprintf(conn, "POST /bulk?q=%s&j=1 HTTP/1.1\r\nHost: gcxd\r\nContent-Type: application/xml\r\nContent-Length: %d\r\nConnection: close\r\n\r\n",
		strings.ReplaceAll(q, " ", "%20"), 2*len(doc))
	if _, err := conn.Write(doc); err != nil { // document 1, complete
		t.Fatal(err)
	}

	// Read until document 1's full result has crossed the wire — with
	// document 2 entirely unsent. A buffered server blocks here and the
	// deadline fails the test.
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	got := make([]byte, 0, 1<<16)
	tmp := make([]byte, 4096)
	for !bytes.Contains(got, []byte(want)) {
		n, err := conn.Read(tmp)
		got = append(got, tmp[:n]...)
		if err != nil {
			t.Fatalf("part 1 not flushed before document 2 was sent (read %d bytes): %v\n%s", len(got), err, got)
		}
	}

	if _, err := conn.Write(doc); err != nil { // document 2
		t.Fatal(err)
	}
	rest, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	full := append(got, rest...)
	if !bytes.HasPrefix(full, []byte("HTTP/1.1 200")) {
		line, _, _ := bytes.Cut(full, []byte("\r\n"))
		t.Fatalf("unexpected response: %s", line)
	}
	if n := bytes.Count(full, []byte(want)); n != 2 {
		t.Fatalf("want document 1's result twice in the bulk response, found %d", n)
	}
}
