package server

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Registry is the set of named queries a gcxd instance serves by id.
// It is immutable after loading; handlers read it concurrently.
type Registry struct {
	ids  []string // registration order (workload output order)
	byID map[string]string
}

// NewRegistry builds a registry from (id, query) pairs given in order.
func NewRegistry() *Registry {
	return &Registry{byID: map[string]string{}}
}

// Add registers a query under id. Duplicate ids are an error: silently
// shadowing a served query is how stale results happen.
func (r *Registry) Add(id, query string) error {
	if id == "" {
		return fmt.Errorf("registry: empty query id")
	}
	if strings.ContainsAny(id, " \t\n") {
		return fmt.Errorf("registry: query id %q contains whitespace", id)
	}
	if _, dup := r.byID[id]; dup {
		return fmt.Errorf("registry: duplicate query id %q", id)
	}
	r.ids = append(r.ids, id)
	r.byID[id] = query
	return nil
}

// IDs returns the registered ids in registration order.
func (r *Registry) IDs() []string {
	out := make([]string, len(r.ids))
	copy(out, r.ids)
	return out
}

// Get returns the query text for id.
func (r *Registry) Get(id string) (string, bool) {
	q, ok := r.byID[id]
	return q, ok
}

// Len returns the number of registered queries.
func (r *Registry) Len() int { return len(r.ids) }

// LoadRegistry loads queries from path. A directory registers every *.xq
// file in lexical order under its basename (sans extension); a file is
// parsed with ParseRegistry.
func LoadRegistry(path string) (*Registry, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if !fi.IsDir() {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return ParseRegistry(baseID(path), f)
	}
	entries, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	reg := NewRegistry()
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".xq") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("registry: no *.xq files in %s", path)
	}
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(path, name))
		if err != nil {
			return nil, err
		}
		if err := reg.Add(baseID(name), string(data)); err != nil {
			return nil, err
		}
	}
	return reg, nil
}

// ParseRegistry reads a registry file: queries separated by lines of the
// form "=== <id>". Text before the first separator (or a file with no
// separators) is one query registered under defaultID.
func ParseRegistry(defaultID string, src io.Reader) (*Registry, error) {
	reg := NewRegistry()
	id := defaultID
	var body strings.Builder
	flush := func() error {
		q := strings.TrimSpace(body.String())
		body.Reset()
		if q == "" {
			return nil
		}
		return reg.Add(id, q)
	}
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "=== "); ok {
			if err := flush(); err != nil {
				return nil, err
			}
			id = strings.TrimSpace(rest)
			continue
		}
		body.WriteString(line)
		body.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if reg.Len() == 0 {
		return nil, fmt.Errorf("registry: no queries found")
	}
	return reg, nil
}

func baseID(path string) string {
	return strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
}
