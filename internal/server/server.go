// Package server is the HTTP serving layer of gcx (cmd/gcxd): clients
// POST an XML document and name a query — inline or from a registry
// loaded at startup — and the document is evaluated as a stream.
//
// The request body is never slurped: it is handed to the engine as an
// io.Reader, so the server's memory high watermark per request is the
// engine's buffer peak — exactly the quantity the paper's combined static
// and dynamic analysis minimizes. That property is what makes the engine
// safe to put behind a socket: a 200 MB document POSTed to a streaming
// query costs the server a few KB of buffer, not 200 MB.
//
// Hot queries are served from a gcx.CompileCache, so steady-state
// requests perform zero compilations and draw pooled run states from the
// cached Engines (PR 1) and Workloads (PR 2).
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/pprof"
	"net/textproto"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gcx"
	"gcx/internal/obs"
)

// Config parameterizes a Server.
type Config struct {
	// Registry holds the queries servable by id. May be nil: the server
	// then serves inline queries only.
	Registry *Registry
	// Cache is the compile cache; nil allocates a fresh one with the
	// default capacity.
	Cache *gcx.CompileCache
	// Options are the gcx compile options applied to every query
	// (strategy, optimizations, schema). All queries of one server share
	// one configuration, mirroring gcx.CompileWorkload.
	Options []gcx.Option
	// MaxBodyBytes rejects request bodies larger than this (0 = no limit).
	// Enforcement is streaming: the limit trips when the excess byte is
	// read, not by buffering the body.
	MaxBodyBytes int64
	// MaxDocBytes caps a SINGLE document of a /bulk corpus (0 = no
	// limit). An oversized member fails alone — 413 if it is the first
	// document, a per-part error behind it — while siblings evaluate.
	MaxDocBytes int64
	// BulkWorkers caps the per-request worker pool of /bulk (and is the
	// default when the request gives no j= parameter). ≤0 = GOMAXPROCS.
	BulkWorkers int
	// Timeout bounds one request's evaluation, input read included
	// (0 = no limit). On expiry the engine's stream read fails and the
	// evaluation unwinds; this reuses the engine's error propagation
	// rather than abandoning a goroutine.
	Timeout time.Duration
	// MaxInflight is the admission threshold for /readyz: when at least
	// this many serving requests are in flight the server reports 503 so
	// load balancers stop routing new work here (0 = readiness never
	// considers load). In-flight requests still complete — this is
	// backpressure signaling, not rejection.
	MaxInflight int
	// EnablePprof mounts net/http/pprof under GET /debug/pprof/. Off by
	// default: profiling endpoints leak heap contents and belong behind a
	// deliberate flag.
	EnablePprof bool
}

// Server handles the gcxd HTTP API:
//
//	POST /query?q=...        evaluate an inline query over the body
//	POST /query?id=...       evaluate a registered query
//	POST /workload?id=a&id=b evaluate several queries in ONE pass of the body
//	POST /bulk?id=...&j=N    evaluate one query over EVERY document of the
//	                         body (tar archive or concatenated XML stream)
//	                         across N parallel workers
//	GET  /queries            list registered query ids
//	GET  /metrics            service counters (Prometheus text; ?format=json)
//	GET  /healthz            liveness
//
// Responses to /query stream: result bytes are written as evaluation
// produces them, with run statistics in the Gcx-Stats HTTP trailer. A
// Server is immutable after New and safe for concurrent use.
type Server struct {
	cfg   Config
	cache *gcx.CompileCache
	mux   *http.ServeMux
	m     metrics

	// regMu guards the id→text registry and its mirror subscription
	// registry; both are replaced together by ReloadRegistry (SIGHUP in
	// cmd/gcxd) while requests read them.
	regMu sync.RWMutex
	reg   *Registry
	// subs mirrors reg in the v2 subscription API: one subscription per
	// registered id, sharing one merged projection automaton. Full-fleet
	// POST /workload (no id=/q= parameters) is served from it, so the
	// fleet's compiled artifacts persist across requests AND reloads —
	// only added ids compile, only removed ids drop out.
	subs *gcx.Registry

	// inflight counts serving requests (/query, /workload, /bulk)
	// currently being handled; /readyz compares it to Config.MaxInflight.
	inflight atomic.Int64
	// notReady, when non-nil, is the reason /readyz reports 503 — set by
	// SetNotReady when the process boots degraded (e.g. the registry
	// failed to load) and cleared by SetReady.
	notReady atomic.Pointer[string]
}

// New builds a Server and precompiles every registered query, so a
// registry typo fails at startup rather than on first request and
// /query?id= requests are cache hits from the first one.
func New(cfg Config) (*Server, error) {
	s := &Server{cfg: cfg, cache: cfg.Cache, reg: cfg.Registry}
	if s.cache == nil {
		s.cache = gcx.NewCompileCache(0)
	}
	if s.reg == nil {
		s.reg = NewRegistry()
	}
	for _, id := range s.reg.IDs() {
		q, _ := s.reg.Get(id)
		if _, err := s.cache.Engine(q, cfg.Options...); err != nil {
			return nil, fmt.Errorf("server: registered query %q: %w", id, err)
		}
	}
	subs, err := subscribeAll(s.reg, cfg.Options)
	if err != nil {
		return nil, err
	}
	s.subs = subs
	s.m.initTTFR(s.reg.IDs())
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.timed(&s.m.latQuery, s.handleQuery))
	mux.HandleFunc("POST /workload", s.timed(&s.m.latWorkload, s.handleWorkload))
	mux.HandleFunc("POST /bulk", s.timed(&s.m.latBulk, s.handleBulk))
	mux.HandleFunc("GET /queries", s.handleQueries)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /buildinfo", s.handleBuildInfo)
	if cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.mux = mux
	return s, nil
}

// timed wraps a serving handler with the in-flight gauge and its
// endpoint's request-latency histogram (whole-handler wall time, so
// streaming the response to a slow client counts — that is the latency a
// caller of this endpoint experiences).
func (s *Server) timed(h *obs.Histogram, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		start := obs.Now()
		defer func() {
			h.Observe(obs.Now() - start)
			s.inflight.Add(-1)
		}()
		fn(w, r)
	}
}

// SetNotReady makes /readyz report 503 with the given reason. Used by
// cmd/gcxd to boot degraded (serving inline queries, liveness, and
// metrics) when the registry cannot be loaded, instead of exiting.
func (s *Server) SetNotReady(reason string) { s.notReady.Store(&reason) }

// SetReady clears a SetNotReady condition.
func (s *Server) SetReady() { s.notReady.Store(nil) }

// subscribeAll mirrors an id→text registry into a gcx.Registry: one
// subscription per registered id, all sharing the server's compile
// options.
func subscribeAll(reg *Registry, opts []gcx.Option) (*gcx.Registry, error) {
	subs, err := gcx.NewRegistry(opts...)
	if err != nil {
		return nil, err
	}
	for _, id := range reg.IDs() {
		q, _ := reg.Get(id)
		if _, err := subs.Subscribe(id, q); err != nil {
			return nil, fmt.Errorf("server: registered query %q: %w", id, err)
		}
	}
	return subs, nil
}

// registry returns the current id→text registry (reload-safe).
func (s *Server) registry() *Registry {
	s.regMu.RLock()
	defer s.regMu.RUnlock()
	return s.reg
}

// subscriptions returns the current subscription registry (reload-safe).
func (s *Server) subscriptions() *gcx.Registry {
	s.regMu.RLock()
	defer s.regMu.RUnlock()
	return s.subs
}

// ReloadRegistry swaps in a new query registry without restarting the
// server (cmd/gcxd wires it to SIGHUP). The subscription registry is
// updated by DIFF: ids whose query text is unchanged keep their compiled
// artifacts, removed or changed ids unsubscribe, new or changed ids
// subscribe. Every new text is compiled before any mutation, so a typo in
// the new registry rejects the reload and the serving fleet is untouched.
// In-flight requests finish against the snapshot they started with.
//
// TTFR histograms are allocated at boot; ids first registered by a
// reload fold into the "inline" bucket until the next restart.
func (s *Server) ReloadRegistry(newReg *Registry) error {
	if newReg == nil {
		return errors.New("server: reload with nil registry")
	}
	// Validate first: every new text must compile (warms the cache too).
	for _, id := range newReg.IDs() {
		q, _ := newReg.Get(id)
		if _, err := s.cache.Engine(q, s.cfg.Options...); err != nil {
			return fmt.Errorf("server: registered query %q: %w", id, err)
		}
	}
	s.regMu.Lock()
	defer s.regMu.Unlock()
	for _, id := range s.reg.IDs() {
		oldQ, _ := s.reg.Get(id)
		if newQ, ok := newReg.Get(id); !ok || newQ != oldQ {
			s.subs.Unsubscribe(id)
		}
	}
	for _, id := range newReg.IDs() {
		if _, ok := s.subs.Subscription(id); ok {
			continue
		}
		q, _ := newReg.Get(id)
		if _, err := s.subs.Subscribe(id, q); err != nil {
			return fmt.Errorf("server: registered query %q: %w", id, err)
		}
	}
	s.reg = newReg
	return nil
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if reason := s.notReady.Load(); reason != nil {
		http.Error(w, "not ready: "+*reason, http.StatusServiceUnavailable)
		return
	}
	if lim := s.cfg.MaxInflight; lim > 0 {
		if n := s.inflight.Load(); n >= int64(lim) {
			http.Error(w, fmt.Sprintf("not ready: %d requests in flight (admission threshold %d)", n, lim),
				http.StatusServiceUnavailable)
			return
		}
	}
	io.WriteString(w, "ok\n")
}

func (s *Server) handleBuildInfo(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		writeJSONBody(w, struct {
			Error string `json:"error"`
		}{Error: "build info unavailable (binary built without module support)"})
		return
	}
	settings := make(map[string]string, len(bi.Settings))
	for _, kv := range bi.Settings {
		settings[kv.Key] = kv.Value
	}
	writeJSONBody(w, struct {
		GoVersion string            `json:"go_version"`
		Path      string            `json:"path"`
		Module    string            `json:"module"`
		Version   string            `json:"version"`
		Settings  map[string]string `json:"settings"`
	}{
		GoVersion: bi.GoVersion,
		Path:      bi.Path,
		Module:    bi.Main.Path,
		Version:   bi.Main.Version,
		Settings:  settings,
	})
}

// Cache returns the server's compile cache (metrics, tests).
func (s *Server) Cache() *gcx.CompileCache { return s.cache }

// Metrics returns a snapshot of the service counters.
func (s *Server) Metrics() Snapshot { return s.m.snapshot(s.cache.Stats()) }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// resolveQuery maps one q=/id= parameter pair to a query text.
func (s *Server) resolveQuery(r *http.Request) (string, error) {
	q := r.URL.Query().Get("q")
	id := r.URL.Query().Get("id")
	switch {
	case q != "" && id != "":
		return "", errors.New("give either q= or id=, not both")
	case q != "":
		return q, nil
	case id != "":
		text, ok := s.registry().Get(id)
		if !ok {
			return "", fmt.Errorf("unknown query id %q", id)
		}
		return text, nil
	default:
		return "", errors.New("missing query: give q= (inline) or id= (registered)")
	}
}

// body wraps the request body for engine consumption: size-limited,
// deadline-aware, and counted. The returned context carries the request
// deadline and must also guard the response writer: once the input hits
// EOF the engine performs no more reads, so without a write-side check a
// slow-reading client would keep the evaluation alive past the timeout.
// The returned cancel must be deferred.
func (s *Server) body(w http.ResponseWriter, r *http.Request) (io.Reader, context.Context, context.CancelFunc) {
	ctx := r.Context()
	cancel := context.CancelFunc(func() {})
	if s.cfg.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
	}
	var in io.Reader = r.Body
	if s.cfg.MaxBodyBytes > 0 {
		in = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	}
	return &countingReader{r: in, n: &s.m.bytesIn}, ctx, cancel
}

// countingReader feeds the service bytes-in counter. Cancellation is NOT
// checked here: handlers run the engine through the context-aware API
// (RunContext, WithTraceContext, BulkOptions.Context), which surfaces an
// expired deadline as a typed stream error the engine unwinds on.
type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

// queryLabel is the TTFR-histogram label of a /query request: the
// registered id, or the inline bucket for q= queries.
func queryLabel(r *http.Request) string {
	if id := r.URL.Query().Get("id"); id != "" {
		return id
	}
	return inlineLabel
}

// admitLength rejects a request whose DECLARED Content-Length already
// exceeds the body limit, before any evaluation starts. On the streaming
// paths the first result byte commits the status line within one input
// token, after which a mid-stream limit breach can only surface as a
// Gcx-Error trailer — so the one case where a clean 413 is still
// possible, a client that announced the oversize up front, must be
// decided here. Chunked uploads (unknown length) pass and hit the
// streaming limit.
func (s *Server) admitLength(w http.ResponseWriter, r *http.Request) bool {
	if s.cfg.MaxBodyBytes > 0 && r.ContentLength > s.cfg.MaxBodyBytes {
		s.fail(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("request body of %d bytes exceeds the limit of %d bytes", r.ContentLength, s.cfg.MaxBodyBytes))
		return false
	}
	return true
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.m.queryRequests.Add(1)
	if !s.admitLength(w, r) {
		return
	}
	text, err := s.resolveQuery(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	eng, err := s.cache.Engine(text, s.cfg.Options...)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("compile: %w", err))
		return
	}
	if r.Header.Get("Gcx-Trace") != "" {
		s.handleQueryTraced(w, r, eng)
		return
	}
	// The first result byte flushes while the request body is still being
	// read; without full duplex the HTTP/1 server would drain-and-discard
	// the unread body at that first flush, truncating the document under
	// the engine. (Best effort, same as /bulk: recorders and HTTP/2
	// either do not support or do not need it.)
	http.NewResponseController(w).EnableFullDuplex()
	in, ctx, cancel := s.body(w, r)
	defer cancel()

	// The result streams; the status line is committed before evaluation
	// finishes, so run statistics and late errors travel as trailers.
	w.Header().Set("Trailer", "Gcx-Stats, Gcx-Error")
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	out := &countingWriter{w: w, n: &s.m.bytesOut, ctx: ctx, flush: flusherOf(w)}
	stats, runErr := eng.RunContext(ctx, in, out)
	s.m.record(stats)
	s.m.observeTTFR(queryLabel(r), stats.TimeToFirstResultNanos)
	if runErr != nil {
		s.m.erroredRequests.Add(1)
		if out.written == 0 {
			// Nothing committed yet: a proper status line is still possible.
			h := w.Header()
			h.Del("Trailer")
			h.Del("Content-Type")
			s.failCode(w, runErr)
			return
		}
		w.Header().Set("Gcx-Error", runErr.Error())
	}
	if b, err := json.Marshal(stats); err == nil {
		w.Header().Set("Gcx-Stats", string(b))
	}
}

// Deep-trace bounds: a Gcx-Trace header value ≥ 2 requests that many
// steps (capped), any other non-empty value gets the default. Each step
// holds a full buffer dump, so the bound is what keeps a trace of an
// arbitrarily large document from buffering the world — the one thing
// this server otherwise never does.
const (
	defaultTraceSteps = 1024
	maxTraceSteps     = 4096
)

// traceResponse is the JSON sidecar part of a traced /query run.
type traceResponse struct {
	Steps     []gcx.TraceStep `json:"steps"`
	Truncated bool            `json:"truncated"`
	Stats     gcx.Stats       `json:"stats"`
}

// handleQueryTraced serves POST /query with a Gcx-Trace header: a
// multipart/mixed response whose first part streams the query result
// (progressively, like the untraced path) and whose second part is a JSON
// sidecar carrying the bounded buffer-lifecycle trace plus run stats.
func (s *Server) handleQueryTraced(w http.ResponseWriter, r *http.Request, eng *gcx.Engine) {
	limit := defaultTraceSteps
	if n, err := strconv.Atoi(r.Header.Get("Gcx-Trace")); err == nil && n >= 2 {
		limit = min(n, maxTraceSteps)
	}
	// Part 0 streams progressively; see handleQuery on full duplex.
	http.NewResponseController(w).EnableFullDuplex()
	in, ctx, cancel := s.body(w, r)
	defer cancel()

	mw := multipart.NewWriter(w)
	w.Header().Set("Content-Type", "multipart/mixed; boundary="+mw.Boundary())
	rh := textproto.MIMEHeader{}
	rh.Set("Content-Type", "application/xml; charset=utf-8")
	rh.Set("Gcx-Part", "result")
	part0, err := mw.CreatePart(rh)
	if err != nil {
		return
	}
	out := &countingWriter{w: part0, n: &s.m.bytesOut, ctx: ctx, flush: flusherOf(w)}
	var truncated bool
	steps, stats, runErr := eng.Trace(in, out,
		gcx.WithTraceLimit(limit),
		gcx.WithTraceTruncated(&truncated),
		gcx.WithTraceContext(ctx))
	s.m.record(stats)
	s.m.observeTTFR(queryLabel(r), stats.TimeToFirstResultNanos)
	if runErr != nil {
		s.m.erroredRequests.Add(1)
	}
	th := textproto.MIMEHeader{}
	th.Set("Content-Type", "application/json")
	th.Set("Gcx-Part", "trace")
	if runErr != nil {
		th.Set("Gcx-Error", runErr.Error())
	}
	tp, err := mw.CreatePart(th)
	if err != nil {
		return
	}
	writeJSONBody(tp, traceResponse{Steps: steps, Truncated: truncated, Stats: stats})
	mw.Close()
}

// workloadResponse is the JSON shape of POST /workload under
// Accept: application/json.
type workloadResponse struct {
	IDs     []string          `json:"ids"`
	Results []string          `json:"results"`
	Errors  []string          `json:"errors,omitempty"`
	Stats   gcx.WorkloadStats `json:"stats"`
}

func (s *Server) handleWorkload(w http.ResponseWriter, r *http.Request) {
	s.m.workloadRequests.Add(1)
	if !s.admitLength(w, r) {
		return
	}
	params := r.URL.Query()
	ids := params["id"]
	if len(ids) == 0 && len(params["q"]) == 0 {
		// Full fleet: served from the subscription registry, whose merged
		// automaton and compiled members persist across requests and
		// registry reloads — no cache lookups, no recompilation.
		s.handleWorkloadRegistry(w, r)
		return
	}
	reg := s.registry()
	var texts, labels []string
	for _, id := range ids {
		text, ok := reg.Get(id)
		if !ok {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("unknown query id %q", id))
			return
		}
		texts = append(texts, text)
		labels = append(labels, id)
	}
	for i, q := range params["q"] {
		texts = append(texts, q)
		labels = append(labels, fmt.Sprintf("inline-%d", i))
	}
	if len(texts) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("no queries: registry is empty and no id=/q= given"))
		return
	}
	wl, err := s.cache.Workload(texts, s.cfg.Options...)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("compile: %w", err))
		return
	}
	in, ctx, cancel := s.body(w, r)
	defer cancel()

	if strings.Contains(r.Header.Get("Accept"), "application/json") {
		s.workloadJSON(w, ctx, wl, in, labels)
		return
	}
	s.workloadMultipart(w, ctx, wl, in, labels)
}

// registryWorkloadResponse is the JSON shape of a full-fleet POST
// /workload served from the subscription registry. Results are ordered by
// subscription id order; Stats carries the shared pass's aggregate (the
// wire shape of the aggregate matches workloadResponse, so clients
// reading ids/results/stats.aggregate see no difference).
type registryWorkloadResponse struct {
	IDs     []string          `json:"ids"`
	Results []string          `json:"results,omitempty"`
	Errors  []string          `json:"errors,omitempty"`
	Stats   gcx.RegistryStats `json:"stats"`
}

// handleWorkloadRegistry serves POST /workload with no id=/q= parameters:
// the whole registered fleet, evaluated through the subscription
// registry's persistent merged automaton.
func (s *Server) handleWorkloadRegistry(w http.ResponseWriter, r *http.Request) {
	subs := s.subscriptions()
	ids := subs.IDs()
	if len(ids) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("no queries: registry is empty and no id=/q= given"))
		return
	}
	in, ctx, cancel := s.body(w, r)
	defer cancel()

	if strings.Contains(r.Header.Get("Accept"), "application/json") {
		s.registryJSON(w, ctx, subs, in, ids)
		return
	}
	s.registryMultipart(w, ctx, subs, in, ids)
}

// registryErrors collects the per-subscription errors of the run that
// just completed, reporting whether every subscription failed.
func registryErrors(subs *gcx.Registry, ids []string) (errs []string, allFailed bool) {
	allFailed = true
	for _, id := range ids {
		sub, ok := subs.Subscription(id)
		if !ok {
			continue
		}
		if e := sub.Stats().LastErr; e != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", id, e))
		} else {
			allFailed = false
		}
	}
	return errs, allFailed
}

// registryJSON is the buffered JSON shape of the full-fleet path; mirrors
// workloadJSON.
func (s *Server) registryJSON(w http.ResponseWriter, ctx context.Context, subs *gcx.Registry, in io.Reader, ids []string) {
	bufs := make(map[string]*bytes.Buffer, len(ids))
	for _, id := range ids {
		bufs[id] = &bytes.Buffer{}
	}
	sink := gcx.SinkFunc(func(sub *gcx.Subscription) io.Writer {
		b := bufs[sub.ID()]
		if b == nil {
			// Subscribed after this request snapshotted the id list
			// (concurrent reload): no part was promised, discard.
			return nil
		}
		return &countingWriter{w: b, n: &s.m.bytesOut}
	})
	stats, runErr := subs.RunContext(ctx, in, sink)
	s.m.record(stats.Aggregate)
	resp := registryWorkloadResponse{IDs: ids, Stats: stats}
	for _, id := range ids {
		resp.Results = append(resp.Results, bufs[id].String())
	}
	if runErr != nil {
		s.m.erroredRequests.Add(1)
		errs, allFailed := registryErrors(subs, ids)
		if allFailed {
			s.failCode(w, runErr)
			return
		}
		resp.Errors = errs
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSONBody(w, resp)
}

// registryMultipart is the streaming shape of the full-fleet path:
// mirrors workloadMultipart — the first subscription's part streams
// progressively along the shared pass, later parts buffer, the final part
// carries the run stats.
func (s *Server) registryMultipart(w http.ResponseWriter, ctx context.Context, subs *gcx.Registry, in io.Reader, ids []string) {
	// Part 0 streams progressively; see handleQuery on full duplex.
	http.NewResponseController(w).EnableFullDuplex()
	mw := multipart.NewWriter(w)
	w.Header().Set("Content-Type", "multipart/mixed; boundary="+mw.Boundary())

	part0, err := mw.CreatePart(partHeader(0, ids[0], "application/xml; charset=utf-8"))
	if err != nil {
		return
	}
	bufs := make(map[string]*bytes.Buffer, len(ids))
	outs := make(map[string]io.Writer, len(ids))
	outs[ids[0]] = &countingWriter{w: part0, n: &s.m.bytesOut, ctx: ctx, flush: flusherOf(w)}
	for _, id := range ids[1:] {
		b := &bytes.Buffer{}
		bufs[id] = b
		outs[id] = &countingWriter{w: b, n: &s.m.bytesOut}
	}
	sink := gcx.SinkFunc(func(sub *gcx.Subscription) io.Writer { return outs[sub.ID()] })
	stats, runErr := subs.RunContext(ctx, in, sink)
	s.m.record(stats.Aggregate)
	if runErr != nil {
		s.m.erroredRequests.Add(1)
	}
	for i, id := range ids[1:] {
		p, err := mw.CreatePart(partHeader(i+1, id, "application/xml; charset=utf-8"))
		if err != nil {
			return
		}
		if _, err := p.Write(bufs[id].Bytes()); err != nil {
			return
		}
	}
	sh := textproto.MIMEHeader{}
	sh.Set("Content-Type", "application/json")
	sh.Set("Gcx-Part", "stats")
	if runErr != nil {
		sh.Set("Gcx-Error", runErr.Error())
	}
	sp, err := mw.CreatePart(sh)
	if err != nil {
		return
	}
	resp := registryWorkloadResponse{IDs: ids, Stats: stats}
	if runErr != nil {
		resp.Errors, _ = registryErrors(subs, ids)
	}
	writeJSONBody(sp, resp)
	mw.Close()
}

// workloadJSON buffers every member result and responds with one JSON
// object. Convenient for programmatic clients; large results belong in
// the multipart path.
func (s *Server) workloadJSON(w http.ResponseWriter, ctx context.Context, wl *gcx.Workload, in io.Reader, labels []string) {
	bufs := make([]bytes.Buffer, wl.Len())
	outs := make([]io.Writer, wl.Len())
	for i := range bufs {
		outs[i] = &countingWriter{w: &bufs[i], n: &s.m.bytesOut}
	}
	stats, runErr := wl.RunContext(ctx, in, outs)
	s.m.record(stats.Aggregate)
	s.observeWorkloadTTFR(labels, stats)
	resp := workloadResponse{IDs: labels, Stats: stats}
	for i := range bufs {
		resp.Results = append(resp.Results, bufs[i].String())
	}
	if runErr != nil {
		s.m.erroredRequests.Add(1)
		// Nothing has been committed yet on this (fully buffered) path, so
		// a failure of the shared stream itself — which interrupts every
		// member — gets a proper status code, same as /query. A partial
		// failure (some members completed) stays 200 with the error list.
		allFailed := true
		for _, q := range stats.Queries {
			if q.Err == nil {
				allFailed = false
				break
			}
		}
		if allFailed {
			s.failCode(w, runErr)
			return
		}
		for _, q := range stats.Queries {
			if q.Err != nil {
				resp.Errors = append(resp.Errors, q.Err.Error())
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSONBody(w, resp)
}

// workloadMultipart streams a multipart/mixed response: the FIRST
// member's part is created up front and receives its bytes progressively
// along the shared pass (multipart parts are sequential, so later members
// buffer until the pass completes, exactly like cmd/gcx's stdout
// discipline); the final part carries the WorkloadStats JSON.
func (s *Server) workloadMultipart(w http.ResponseWriter, ctx context.Context, wl *gcx.Workload, in io.Reader, labels []string) {
	// Member 0's part streams progressively; see handleQuery on full duplex.
	http.NewResponseController(w).EnableFullDuplex()
	mw := multipart.NewWriter(w)
	w.Header().Set("Content-Type", "multipart/mixed; boundary="+mw.Boundary())

	part0, err := mw.CreatePart(partHeader(0, labels[0], "application/xml; charset=utf-8"))
	if err != nil {
		return
	}
	bufs := make([]bytes.Buffer, wl.Len())
	outs := make([]io.Writer, wl.Len())
	outs[0] = &countingWriter{w: part0, n: &s.m.bytesOut, ctx: ctx, flush: flusherOf(w)}
	for i := 1; i < wl.Len(); i++ {
		outs[i] = &countingWriter{w: &bufs[i], n: &s.m.bytesOut}
	}
	stats, runErr := wl.RunContext(ctx, in, outs)
	s.m.record(stats.Aggregate)
	s.observeWorkloadTTFR(labels, stats)
	if runErr != nil {
		s.m.erroredRequests.Add(1)
	}
	for i := 1; i < wl.Len(); i++ {
		p, err := mw.CreatePart(partHeader(i, labels[i], "application/xml; charset=utf-8"))
		if err != nil {
			return
		}
		if _, err := p.Write(bufs[i].Bytes()); err != nil {
			return
		}
	}
	sh := textproto.MIMEHeader{}
	sh.Set("Content-Type", "application/json")
	sh.Set("Gcx-Part", "stats")
	if runErr != nil {
		sh.Set("Gcx-Error", runErr.Error())
	}
	sp, err := mw.CreatePart(sh)
	if err != nil {
		return
	}
	resp := workloadResponse{IDs: labels, Stats: stats}
	if runErr != nil {
		for _, q := range stats.Queries {
			if q.Err != nil {
				resp.Errors = append(resp.Errors, q.Err.Error())
			}
		}
	}
	writeJSONBody(sp, resp)
	mw.Close()
}

// observeWorkloadTTFR records each member's time-to-first-result under
// its own label — every member of the shared pass has its own writer, so
// per-member TTFR is measured, not apportioned. Members registered by id
// land in their query's histogram; inline-N labels fold into "inline".
func (s *Server) observeWorkloadTTFR(labels []string, stats gcx.WorkloadStats) {
	for i, q := range stats.Queries {
		if i < len(labels) {
			s.m.observeTTFR(labels[i], q.TimeToFirstResultNanos)
		}
	}
}

func partHeader(index int, label, contentType string) textproto.MIMEHeader {
	h := textproto.MIMEHeader{}
	h.Set("Content-Type", contentType)
	h.Set("Gcx-Query-Index", strconv.Itoa(index))
	h.Set("Gcx-Query-Id", label)
	return h
}

func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	writeJSONBody(w, struct {
		IDs []string `json:"ids"`
	}{IDs: s.registry().IDs()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.Metrics()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		snap.writeJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap.writeProm(w)
}

// fail responds with a plain-text error before any body bytes were
// committed.
func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	s.m.erroredRequests.Add(1)
	http.Error(w, "gcxd: "+err.Error(), code)
}

// failCode classifies a run error that occurred before the first output
// byte: body too large, evaluation timeout, client gone, or bad input.
// Classification is typed (errors.Is against the gcx error vocabulary),
// never message matching.
func (s *Server) failCode(w http.ResponseWriter, err error) {
	var maxErr *http.MaxBytesError
	switch {
	case errors.As(err, &maxErr), errors.Is(err, gcx.ErrTooLarge):
		http.Error(w, "gcxd: "+err.Error(), http.StatusRequestEntityTooLarge)
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, "gcxd: evaluation timeout: "+err.Error(), http.StatusRequestTimeout)
	case errors.Is(err, context.Canceled), errors.Is(err, gcx.ErrCanceled):
		// Client is gone; nobody reads this status.
		http.Error(w, "gcxd: "+err.Error(), http.StatusBadRequest)
	default:
		http.Error(w, "gcxd: "+err.Error(), http.StatusBadRequest)
	}
}

// writeJSONBody encodes v to w; encode errors mean the client is gone
// and are deliberately dropped.
func writeJSONBody(w io.Writer, v any) {
	json.NewEncoder(w).Encode(v)
}

// countingWriter forwards writes and counts bytes (per-request commit
// detection and the service bytes-out counter). When ctx is set, an
// expired deadline fails the write: after the input reaches EOF the
// engine performs no more reads, so this is what bounds the
// result-emission phase for a slow-reading client. When flush is set,
// the engine's first-result flush propagates through FlushResult so the
// byte crosses the transport instead of waiting in the ResponseWriter's
// buffers.
type countingWriter struct {
	w       io.Writer
	n       *atomic.Int64
	written int64
	ctx     context.Context
	flush   http.Flusher
}

// FlushResult implements xmlstream.ResultFlusher: called (through the
// engine's writer) once the first result byte is certain, and per /bulk
// part by the handler. Committing the status line here is deliberate —
// it is the moment the response stops being retractable.
func (c *countingWriter) FlushResult() {
	if c.flush != nil {
		c.flush.Flush()
	}
}

// flusherOf extracts the transport flush capability of a ResponseWriter
// (nil when the writer cannot flush — e.g. some recorders; the
// first-result flush then degrades to the engine's bufio drain).
func flusherOf(w http.ResponseWriter) http.Flusher {
	f, _ := w.(http.Flusher)
	return f
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.ctx != nil {
		if err := c.ctx.Err(); err != nil {
			return 0, fmt.Errorf("request aborted: %w", err)
		}
	}
	n, err := c.w.Write(p)
	c.written += int64(n)
	c.n.Add(int64(n))
	return n, err
}
