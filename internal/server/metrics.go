package server

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync/atomic"

	"gcx"
	"gcx/internal/obs"
)

// inlineLabel buckets inline (non-registered) queries in the per-query
// TTFR histograms.
const inlineLabel = "inline"

// metrics holds the scrape-stable service counters. Everything is an
// atomic so the hot request path never takes a lock; /metrics reads a
// consistent-enough snapshot (counters are monotonic). The histograms
// follow the same discipline (see internal/obs): recording is atomics
// only, and the per-query map is built once at New and never mutated, so
// lookups are lock-free reads of an immutable map.
type metrics struct {
	queryRequests    atomic.Int64
	workloadRequests atomic.Int64
	bulkRequests     atomic.Int64
	erroredRequests  atomic.Int64

	bulkDocs      atomic.Int64 // documents served through /bulk
	bulkDocErrors atomic.Int64 // of which failed (isolated per document)
	// Worker utilization of the /bulk pools: busy sums per-document
	// evaluation time, worker sums wall × workers. Both counters are
	// MONOTONIC (they only ever grow, surviving any single request), so
	// busy/worker is the fleet-wide pool utilization since process start,
	// and rate(busy)/rate(worker) is the utilization over any window.
	// The raw nanos stay exposed alongside the derived ratio gauge so
	// dashboards can window them.
	bulkBusyNanos   atomic.Int64
	bulkWorkerNanos atomic.Int64

	bytesIn  atomic.Int64 // request-body bytes streamed into engines
	bytesOut atomic.Int64 // result bytes streamed to clients

	tokensRead    atomic.Int64
	nodesBuffered atomic.Int64
	nodesPurged   atomic.Int64
	signOffs      atomic.Int64

	peakNodesMax atomic.Int64 // largest single-run buffer peak observed
	peakBytesMax atomic.Int64
	peakNodesSum atomic.Int64 // summed per-run peaks (aggregate buffer pressure)
	peakBytesSum atomic.Int64

	// Request-latency histograms, one per serving endpoint (whole-handler
	// wall time, streaming included).
	latQuery    obs.Histogram
	latWorkload obs.Histogram
	latBulk     obs.Histogram

	// ttfr maps a registered query id — plus the "inline" bucket — to its
	// time-to-first-result histogram. Immutable after initTTFR.
	ttfr map[string]*obs.Histogram
	// ttfrIDs is the stable exposition order of the ttfr keys.
	ttfrIDs []string
}

// initTTFR builds the immutable per-query TTFR histogram map: one
// histogram per registered query id plus the inline bucket.
func (m *metrics) initTTFR(ids []string) {
	m.ttfr = make(map[string]*obs.Histogram, len(ids)+1)
	m.ttfrIDs = append([]string{}, ids...)
	sort.Strings(m.ttfrIDs)
	m.ttfrIDs = append(m.ttfrIDs, inlineLabel)
	for _, id := range m.ttfrIDs {
		m.ttfr[id] = &obs.Histogram{}
	}
}

// observeTTFR records one run's time-to-first-result under the query's
// histogram; unknown labels (inline-N workload members, ad-hoc queries)
// fold into the inline bucket. Runs with no output (nanos 0) are skipped:
// they have no first result. Lock-free and allocation-free.
//
//gcxlint:noalloc
func (m *metrics) observeTTFR(label string, nanos int64) {
	h := m.ttfr[label]
	if h == nil {
		h = m.ttfr[inlineLabel]
	}
	h.ObservePositive(nanos)
}

// record folds one run's stats into the service totals.
func (m *metrics) record(st gcx.Stats) {
	m.tokensRead.Add(st.TokensRead)
	m.nodesBuffered.Add(st.BufferedTotal)
	m.nodesPurged.Add(st.PurgedTotal)
	m.signOffs.Add(st.SignOffs)
	m.peakNodesSum.Add(st.PeakBufferNodes)
	m.peakBytesSum.Add(st.PeakBufferBytes)
	atomicMax(&m.peakNodesMax, st.PeakBufferNodes)
	atomicMax(&m.peakBytesMax, st.PeakBufferBytes)
}

func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// HistSummary is the JSON view of one latency histogram: quantiles are
// nearest-rank over the log₂ buckets (upper-bound answers, ≤2× off).
type HistSummary struct {
	Count int64   `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
}

func summarize(s obs.HistSnapshot) HistSummary {
	return HistSummary{
		Count: s.Count,
		P50Ms: float64(s.Quantile(0.50)) / 1e6,
		P99Ms: float64(s.Quantile(0.99)) / 1e6,
	}
}

// promHist carries one labeled histogram snapshot into the exposition.
type promHist struct {
	label string
	snap  obs.HistSnapshot
}

// RuntimeStats are the Go runtime gauges exposed on /metrics.
type RuntimeStats struct {
	Goroutines        int    `json:"goroutines"`
	HeapAllocBytes    uint64 `json:"heap_alloc_bytes"`
	HeapObjects       uint64 `json:"heap_objects"`
	GCPauseTotalNanos uint64 `json:"gc_pause_total_nanos"`
	GCCycles          uint32 `json:"gc_cycles"`
}

func readRuntime() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeStats{
		Goroutines:        runtime.NumGoroutine(),
		HeapAllocBytes:    ms.HeapAlloc,
		HeapObjects:       ms.HeapObjects,
		GCPauseTotalNanos: ms.PauseTotalNs,
		GCCycles:          ms.NumGC,
	}
}

// Snapshot is the JSON view of /metrics. It builds on the cmd/gcx
// -stats-json shape: Aggregate is a gcx.Stats whose total fields
// (tokens, buffered, purged, signOffs, output bytes) are summed across
// all runs the service performed, while its Peak fields report the
// largest single-run peak observed. BulkBusyNanos/BulkWorkerNanos are
// the raw MONOTONIC counters behind BulkUtilization — the JSON keeps
// both so scrapers can window the counters themselves.
type Snapshot struct {
	RequestsQuery    int64                  `json:"requests_query"`
	RequestsWorkload int64                  `json:"requests_workload"`
	RequestsBulk     int64                  `json:"requests_bulk"`
	RequestsErrored  int64                  `json:"requests_errored"`
	BulkDocs         int64                  `json:"bulk_docs"`
	BulkDocErrors    int64                  `json:"bulk_doc_errors"`
	BulkBusyNanos    int64                  `json:"bulk_busy_nanos"`
	BulkWorkerNanos  int64                  `json:"bulk_worker_nanos"`
	BulkUtilization  float64                `json:"bulk_utilization_ratio"`
	BytesIn          int64                  `json:"bytes_in"`
	Cache            gcx.CacheStats         `json:"cache"`
	Aggregate        gcx.Stats              `json:"aggregate"`
	PeakNodesSum     int64                  `json:"peak_buffer_nodes_sum"`
	PeakBytesSum     int64                  `json:"peak_buffer_bytes_sum"`
	RequestLatency   map[string]HistSummary `json:"request_latency"`
	TTFR             map[string]HistSummary `json:"ttfr"`
	Runtime          RuntimeStats           `json:"runtime"`

	// Raw histogram snapshots for the Prometheus exposition (not part of
	// the JSON shape — the summaries above are).
	latHists  []promHist
	ttfrHists []promHist
}

func (m *metrics) snapshot(cache gcx.CacheStats) Snapshot {
	busy, worker := m.bulkBusyNanos.Load(), m.bulkWorkerNanos.Load()
	var util float64
	if worker > 0 {
		util = float64(busy) / float64(worker)
	}
	s := Snapshot{
		RequestsQuery:    m.queryRequests.Load(),
		RequestsWorkload: m.workloadRequests.Load(),
		RequestsBulk:     m.bulkRequests.Load(),
		RequestsErrored:  m.erroredRequests.Load(),
		BulkDocs:         m.bulkDocs.Load(),
		BulkDocErrors:    m.bulkDocErrors.Load(),
		BulkBusyNanos:    busy,
		BulkWorkerNanos:  worker,
		BulkUtilization:  util,
		BytesIn:          m.bytesIn.Load(),
		Cache:            cache,
		Aggregate: gcx.Stats{
			PeakBufferNodes: m.peakNodesMax.Load(),
			PeakBufferBytes: m.peakBytesMax.Load(),
			BufferedTotal:   m.nodesBuffered.Load(),
			PurgedTotal:     m.nodesPurged.Load(),
			SignOffs:        m.signOffs.Load(),
			TokensRead:      m.tokensRead.Load(),
			OutputBytes:     m.bytesOut.Load(),
		},
		PeakNodesSum:   m.peakNodesSum.Load(),
		PeakBytesSum:   m.peakBytesSum.Load(),
		RequestLatency: map[string]HistSummary{},
		TTFR:           map[string]HistSummary{},
		Runtime:        readRuntime(),
	}
	s.latHists = []promHist{
		{label: "query", snap: m.latQuery.Snapshot()},
		{label: "workload", snap: m.latWorkload.Snapshot()},
		{label: "bulk", snap: m.latBulk.Snapshot()},
	}
	for _, h := range s.latHists {
		s.RequestLatency[h.label] = summarize(h.snap)
	}
	for _, id := range m.ttfrIDs {
		snap := m.ttfr[id].Snapshot()
		s.ttfrHists = append(s.ttfrHists, promHist{label: id, snap: snap})
		s.TTFR[id] = summarize(snap)
	}
	return s
}

// writeJSON emits the snapshot as one JSON object.
func (s Snapshot) writeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

// writeProm emits the snapshot in the Prometheus text exposition format
// (version 0.0.4): every family carries # HELP and # TYPE lines,
// histograms expose cumulative _bucket series with an le label plus
// _sum/_count, and the output ends with a newline. Names are
// scrape-stable: CI and dashboards key on them, and the strict parser in
// internal/obs validates this exact output in tests.
func (s Snapshot) writeProm(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	family := func(name, help, typ string) {
		p("# HELP %s %s\n", name, help)
		p("# TYPE %s %s\n", name, typ)
	}

	family("gcxd_requests_total", "Requests served, by endpoint.", "counter")
	p("gcxd_requests_total{endpoint=\"query\"} %d\n", s.RequestsQuery)
	p("gcxd_requests_total{endpoint=\"workload\"} %d\n", s.RequestsWorkload)
	p("gcxd_requests_total{endpoint=\"bulk\"} %d\n", s.RequestsBulk)
	family("gcxd_errors_total", "Requests that failed (rejected or errored during evaluation).", "counter")
	p("gcxd_errors_total %d\n", s.RequestsErrored)
	family("gcxd_bulk_docs_total", "Documents evaluated through /bulk.", "counter")
	p("gcxd_bulk_docs_total %d\n", s.BulkDocs)
	family("gcxd_bulk_doc_errors_total", "Bulk documents that failed (isolated per document).", "counter")
	p("gcxd_bulk_doc_errors_total %d\n", s.BulkDocErrors)
	family("gcxd_bulk_busy_seconds_total", "Monotonic: summed per-document evaluation time across bulk workers.", "counter")
	p("gcxd_bulk_busy_seconds_total %g\n", float64(s.BulkBusyNanos)/1e9)
	family("gcxd_bulk_worker_seconds_total", "Monotonic: summed bulk wall time times pool workers (capacity).", "counter")
	p("gcxd_bulk_worker_seconds_total %g\n", float64(s.BulkWorkerNanos)/1e9)
	family("gcx_bulk_utilization_ratio", "Bulk pool utilization since process start: busy seconds over worker-capacity seconds.", "gauge")
	p("gcx_bulk_utilization_ratio %g\n", s.BulkUtilization)
	family("gcxd_cache_hits_total", "Compile cache hits.", "counter")
	p("gcxd_cache_hits_total %d\n", s.Cache.Hits)
	family("gcxd_cache_misses_total", "Compile cache misses.", "counter")
	p("gcxd_cache_misses_total %d\n", s.Cache.Misses)
	family("gcxd_cache_evictions_total", "Compile cache evictions.", "counter")
	p("gcxd_cache_evictions_total %d\n", s.Cache.Evictions)
	family("gcxd_cache_compiles_total", "Query compilations performed.", "counter")
	p("gcxd_cache_compiles_total %d\n", s.Cache.Compiles)
	family("gcxd_cache_entries", "Compile cache resident entries.", "gauge")
	p("gcxd_cache_entries %d\n", s.Cache.Entries)
	family("gcxd_bytes_in_total", "Request-body bytes streamed into engines.", "counter")
	p("gcxd_bytes_in_total %d\n", s.BytesIn)
	family("gcxd_bytes_out_total", "Result bytes streamed to clients.", "counter")
	p("gcxd_bytes_out_total %d\n", s.Aggregate.OutputBytes)
	family("gcxd_tokens_read_total", "Stream tokens consumed.", "counter")
	p("gcxd_tokens_read_total %d\n", s.Aggregate.TokensRead)
	family("gcxd_nodes_buffered_total", "Nodes copied into buffers.", "counter")
	p("gcxd_nodes_buffered_total %d\n", s.Aggregate.BufferedTotal)
	family("gcxd_nodes_purged_total", "Nodes reclaimed by active garbage collection.", "counter")
	p("gcxd_nodes_purged_total %d\n", s.Aggregate.PurgedTotal)
	family("gcxd_signoffs_total", "Executed signOff statements.", "counter")
	p("gcxd_signoffs_total %d\n", s.Aggregate.SignOffs)
	family("gcxd_buffer_peak_nodes_max", "Largest single-run buffer peak, in nodes.", "gauge")
	p("gcxd_buffer_peak_nodes_max %d\n", s.Aggregate.PeakBufferNodes)
	family("gcxd_buffer_peak_bytes_max", "Largest single-run buffer peak, in bytes.", "gauge")
	p("gcxd_buffer_peak_bytes_max %d\n", s.Aggregate.PeakBufferBytes)
	family("gcxd_buffer_peak_nodes_sum", "Summed per-run buffer peaks, in nodes.", "counter")
	p("gcxd_buffer_peak_nodes_sum %d\n", s.PeakNodesSum)
	family("gcxd_buffer_peak_bytes_sum", "Summed per-run buffer peaks, in bytes.", "counter")
	p("gcxd_buffer_peak_bytes_sum %d\n", s.PeakBytesSum)

	writePromHist(p, "gcxd_request_duration_seconds",
		"Whole-request handler latency, streaming included.", "endpoint", s.latHists)
	writePromHist(p, "gcxd_ttfr_seconds",
		"Time from run start to the first result byte, by registered query id.", "query", s.ttfrHists)

	family("gcxd_go_goroutines", "Live goroutines.", "gauge")
	p("gcxd_go_goroutines %d\n", s.Runtime.Goroutines)
	family("gcxd_go_heap_alloc_bytes", "Heap bytes allocated and in use.", "gauge")
	p("gcxd_go_heap_alloc_bytes %d\n", s.Runtime.HeapAllocBytes)
	family("gcxd_go_heap_objects", "Live heap objects.", "gauge")
	p("gcxd_go_heap_objects %d\n", s.Runtime.HeapObjects)
	family("gcxd_go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.", "counter")
	p("gcxd_go_gc_pause_seconds_total %g\n", float64(s.Runtime.GCPauseTotalNanos)/1e9)
	family("gcxd_go_gc_cycles_total", "Completed GC cycles.", "counter")
	p("gcxd_go_gc_cycles_total %d\n", s.Runtime.GCCycles)
	return err
}

// writePromHist emits one histogram family: for every labeled snapshot, a
// cumulative _bucket series per log₂ bound (le in seconds, final +Inf)
// plus _sum and _count. _count is the bucket total, keeping the
// +Inf-equals-count invariant even if a concurrent Observe lands between
// the bucket loads and the count load.
func writePromHist(p func(string, ...any), name, help, labelName string, hists []promHist) {
	p("# HELP %s %s\n", name, help)
	p("# TYPE %s histogram\n", name)
	for _, h := range hists {
		var cum int64
		for i := 0; i < obs.NumBuckets; i++ {
			cum += h.snap.Counts[i]
			le := "+Inf"
			if i < obs.NumBuckets-1 {
				le = fmt.Sprintf("%g", float64(obs.UpperBound(i))/1e9)
			}
			p("%s_bucket{%s=%q,le=%q} %d\n", name, labelName, h.label, le, cum)
		}
		p("%s_sum{%s=%q} %g\n", name, labelName, h.label, float64(h.snap.Sum)/1e9)
		p("%s_count{%s=%q} %d\n", name, labelName, h.label, cum)
	}
}
