package server

import (
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"

	"gcx"
)

// metrics holds the scrape-stable service counters. Everything is an
// atomic so the hot request path never takes a lock; /metrics reads a
// consistent-enough snapshot (counters are monotonic).
type metrics struct {
	queryRequests    atomic.Int64
	workloadRequests atomic.Int64
	bulkRequests     atomic.Int64
	erroredRequests  atomic.Int64

	bulkDocs      atomic.Int64 // documents served through /bulk
	bulkDocErrors atomic.Int64 // of which failed (isolated per document)
	// Worker utilization of the /bulk pools: busy sums per-document
	// evaluation time, worker sums wall × workers. busy/worker is the
	// fleet-wide pool utilization since the last counter reset.
	bulkBusyNanos   atomic.Int64
	bulkWorkerNanos atomic.Int64

	bytesIn  atomic.Int64 // request-body bytes streamed into engines
	bytesOut atomic.Int64 // result bytes streamed to clients

	tokensRead    atomic.Int64
	nodesBuffered atomic.Int64
	nodesPurged   atomic.Int64
	signOffs      atomic.Int64

	peakNodesMax atomic.Int64 // largest single-run buffer peak observed
	peakBytesMax atomic.Int64
	peakNodesSum atomic.Int64 // summed per-run peaks (aggregate buffer pressure)
	peakBytesSum atomic.Int64
}

// record folds one run's stats into the service totals.
func (m *metrics) record(st gcx.Stats) {
	m.tokensRead.Add(st.TokensRead)
	m.nodesBuffered.Add(st.BufferedTotal)
	m.nodesPurged.Add(st.PurgedTotal)
	m.signOffs.Add(st.SignOffs)
	m.peakNodesSum.Add(st.PeakBufferNodes)
	m.peakBytesSum.Add(st.PeakBufferBytes)
	atomicMax(&m.peakNodesMax, st.PeakBufferNodes)
	atomicMax(&m.peakBytesMax, st.PeakBufferBytes)
}

func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Snapshot is the JSON view of /metrics. It builds on the cmd/gcx
// -stats-json shape: Aggregate is a gcx.Stats whose total fields
// (tokens, buffered, purged, signOffs, output bytes) are summed across
// all runs the service performed, while its Peak fields report the
// largest single-run peak observed.
type Snapshot struct {
	RequestsQuery    int64          `json:"requests_query"`
	RequestsWorkload int64          `json:"requests_workload"`
	RequestsBulk     int64          `json:"requests_bulk"`
	RequestsErrored  int64          `json:"requests_errored"`
	BulkDocs         int64          `json:"bulk_docs"`
	BulkDocErrors    int64          `json:"bulk_doc_errors"`
	BulkBusyNanos    int64          `json:"bulk_busy_nanos"`
	BulkWorkerNanos  int64          `json:"bulk_worker_nanos"`
	BytesIn          int64          `json:"bytes_in"`
	Cache            gcx.CacheStats `json:"cache"`
	Aggregate        gcx.Stats      `json:"aggregate"`
	PeakNodesSum     int64          `json:"peak_buffer_nodes_sum"`
	PeakBytesSum     int64          `json:"peak_buffer_bytes_sum"`
}

func (m *metrics) snapshot(cache gcx.CacheStats) Snapshot {
	return Snapshot{
		RequestsQuery:    m.queryRequests.Load(),
		RequestsWorkload: m.workloadRequests.Load(),
		RequestsBulk:     m.bulkRequests.Load(),
		RequestsErrored:  m.erroredRequests.Load(),
		BulkDocs:         m.bulkDocs.Load(),
		BulkDocErrors:    m.bulkDocErrors.Load(),
		BulkBusyNanos:    m.bulkBusyNanos.Load(),
		BulkWorkerNanos:  m.bulkWorkerNanos.Load(),
		BytesIn:          m.bytesIn.Load(),
		Cache:            cache,
		Aggregate: gcx.Stats{
			PeakBufferNodes: m.peakNodesMax.Load(),
			PeakBufferBytes: m.peakBytesMax.Load(),
			BufferedTotal:   m.nodesBuffered.Load(),
			PurgedTotal:     m.nodesPurged.Load(),
			SignOffs:        m.signOffs.Load(),
			TokensRead:      m.tokensRead.Load(),
			OutputBytes:     m.bytesOut.Load(),
		},
		PeakNodesSum: m.peakNodesSum.Load(),
		PeakBytesSum: m.peakBytesSum.Load(),
	}
}

// writeJSON emits the snapshot as one JSON object.
func (s Snapshot) writeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

// writeProm emits the snapshot in the Prometheus text exposition format.
// Names are scrape-stable: CI and dashboards key on them.
func (s Snapshot) writeProm(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("# TYPE gcxd_requests_total counter\n")
	p("gcxd_requests_total{endpoint=\"query\"} %d\n", s.RequestsQuery)
	p("gcxd_requests_total{endpoint=\"workload\"} %d\n", s.RequestsWorkload)
	p("gcxd_requests_total{endpoint=\"bulk\"} %d\n", s.RequestsBulk)
	p("# TYPE gcxd_errors_total counter\n")
	p("gcxd_errors_total %d\n", s.RequestsErrored)
	p("# TYPE gcxd_bulk_docs_total counter\n")
	p("gcxd_bulk_docs_total %d\n", s.BulkDocs)
	p("# TYPE gcxd_bulk_doc_errors_total counter\n")
	p("gcxd_bulk_doc_errors_total %d\n", s.BulkDocErrors)
	p("# TYPE gcxd_bulk_busy_seconds_total counter\n")
	p("gcxd_bulk_busy_seconds_total %g\n", float64(s.BulkBusyNanos)/1e9)
	p("# TYPE gcxd_bulk_worker_seconds_total counter\n")
	p("gcxd_bulk_worker_seconds_total %g\n", float64(s.BulkWorkerNanos)/1e9)
	p("# TYPE gcxd_cache_hits_total counter\n")
	p("gcxd_cache_hits_total %d\n", s.Cache.Hits)
	p("# TYPE gcxd_cache_misses_total counter\n")
	p("gcxd_cache_misses_total %d\n", s.Cache.Misses)
	p("# TYPE gcxd_cache_evictions_total counter\n")
	p("gcxd_cache_evictions_total %d\n", s.Cache.Evictions)
	p("# TYPE gcxd_cache_compiles_total counter\n")
	p("gcxd_cache_compiles_total %d\n", s.Cache.Compiles)
	p("# TYPE gcxd_cache_entries gauge\n")
	p("gcxd_cache_entries %d\n", s.Cache.Entries)
	p("# TYPE gcxd_bytes_in_total counter\n")
	p("gcxd_bytes_in_total %d\n", s.BytesIn)
	p("# TYPE gcxd_bytes_out_total counter\n")
	p("gcxd_bytes_out_total %d\n", s.Aggregate.OutputBytes)
	p("# TYPE gcxd_tokens_read_total counter\n")
	p("gcxd_tokens_read_total %d\n", s.Aggregate.TokensRead)
	p("# TYPE gcxd_nodes_buffered_total counter\n")
	p("gcxd_nodes_buffered_total %d\n", s.Aggregate.BufferedTotal)
	p("# TYPE gcxd_nodes_purged_total counter\n")
	p("gcxd_nodes_purged_total %d\n", s.Aggregate.PurgedTotal)
	p("# TYPE gcxd_signoffs_total counter\n")
	p("gcxd_signoffs_total %d\n", s.Aggregate.SignOffs)
	p("# TYPE gcxd_buffer_peak_nodes_max gauge\n")
	p("gcxd_buffer_peak_nodes_max %d\n", s.Aggregate.PeakBufferNodes)
	p("# TYPE gcxd_buffer_peak_bytes_max gauge\n")
	p("gcxd_buffer_peak_bytes_max %d\n", s.Aggregate.PeakBufferBytes)
	p("# TYPE gcxd_buffer_peak_nodes_sum counter\n")
	p("gcxd_buffer_peak_nodes_sum %d\n", s.PeakNodesSum)
	p("# TYPE gcxd_buffer_peak_bytes_sum counter\n")
	p("gcxd_buffer_peak_bytes_sum %d\n", s.PeakBytesSum)
	return err
}
