package server

import (
	"bytes"
	"encoding/json"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"gcx"
	"gcx/internal/obs"
	"gcx/internal/xmark"
)

// bigXmarkDoc generates a document large enough that evaluation takes
// measurably longer than producing the first result byte.
func bigXmarkDoc(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := xmark.Generate(&buf, xmark.Config{Factor: 0.05, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// scrape fetches /metrics and runs it through the strict exposition
// parser — the compliance check every test of this file inherits.
func scrape(t testing.TB, client *http.Client, base string) *obs.Exposition {
	t.Helper()
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type %q, want the 0.0.4 exposition", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := obs.ParseExposition(data)
	if err != nil {
		t.Fatalf("/metrics violates the exposition format: %v", err)
	}
	return exp
}

// sampleValue finds the sample of a family whose labels all match; the
// second return reports whether it exists.
func sampleValue(f *obs.Family, name string, labels map[string]string) (float64, bool) {
	if f == nil {
		return 0, false
	}
next:
	for _, s := range f.Samples {
		if s.Name != name {
			continue
		}
		for k, v := range labels {
			if s.Label(k) != v {
				continue next
			}
		}
		return s.Value, true
	}
	return 0, false
}

// TestMetricsExpositionCompliance is the satellite acceptance check: a
// live scrape after real traffic parses under the strict 0.0.4 parser,
// every family carries HELP and TYPE, the TTFR histogram is labeled by
// registered query id, and the bulk utilization gauge is derived from
// the monotonic counters.
func TestMetricsExpositionCompliance(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	doc := xmarkDoc(t)

	resp, body := post(t, ts.Client(), ts.URL+"/query?id=Q1", doc, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, body)
	}
	resp, body = post(t, ts.Client(), ts.URL+"/bulk?id=Q6", append(append([]byte{}, doc...), doc...), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bulk status %d: %s", resp.StatusCode, body)
	}

	exp := scrape(t, ts.Client(), ts.URL)
	for name, f := range exp.Families {
		if f.Help == "" || f.Type == "" {
			t.Errorf("family %s lacks HELP/TYPE metadata", name)
		}
	}

	ttfr := exp.Family("gcxd_ttfr_seconds")
	if ttfr == nil || ttfr.Type != "histogram" {
		t.Fatalf("gcxd_ttfr_seconds missing or not a histogram: %+v", ttfr)
	}
	if v, ok := sampleValue(ttfr, "gcxd_ttfr_seconds_count", map[string]string{"query": "Q1"}); !ok || v < 1 {
		t.Errorf("gcxd_ttfr_seconds_count{query=\"Q1\"} = %v (present %v), want >= 1 after a /query?id=Q1 request", v, ok)
	}
	// /bulk ran two documents of Q6: each contributes its own TTFR sample.
	if v, ok := sampleValue(ttfr, "gcxd_ttfr_seconds_count", map[string]string{"query": "Q6"}); !ok || v < 2 {
		t.Errorf("gcxd_ttfr_seconds_count{query=\"Q6\"} = %v (present %v), want >= 2 after a two-document /bulk", v, ok)
	}
	if _, ok := sampleValue(ttfr, "gcxd_ttfr_seconds_bucket", map[string]string{"query": "Q1", "le": "+Inf"}); !ok {
		t.Error("gcxd_ttfr_seconds_bucket{query=\"Q1\",le=\"+Inf\"} missing")
	}

	lat := exp.Family("gcxd_request_duration_seconds")
	if lat == nil || lat.Type != "histogram" {
		t.Fatalf("gcxd_request_duration_seconds missing or not a histogram")
	}
	for _, endpoint := range []string{"query", "bulk"} {
		if v, ok := sampleValue(lat, "gcxd_request_duration_seconds_count", map[string]string{"endpoint": endpoint}); !ok || v < 1 {
			t.Errorf("request duration count for endpoint %q = %v (present %v), want >= 1", endpoint, v, ok)
		}
	}

	util := exp.Family("gcx_bulk_utilization_ratio")
	if util == nil || util.Type != "gauge" {
		t.Fatalf("gcx_bulk_utilization_ratio missing or not a gauge")
	}
	if v := util.Samples[0].Value; v <= 0 || v > 1 {
		t.Errorf("gcx_bulk_utilization_ratio = %v, want in (0, 1] after bulk traffic", v)
	}
	// The derived gauge must agree with the raw monotonic counters.
	busy, _ := sampleValue(exp.Family("gcxd_bulk_busy_seconds_total"), "gcxd_bulk_busy_seconds_total", nil)
	worker, _ := sampleValue(exp.Family("gcxd_bulk_worker_seconds_total"), "gcxd_bulk_worker_seconds_total", nil)
	if busy <= 0 || worker <= 0 || busy > worker {
		t.Errorf("raw pool counters implausible: busy %v worker %v", busy, worker)
	}

	if v, ok := sampleValue(exp.Family("gcxd_go_goroutines"), "gcxd_go_goroutines", nil); !ok || v < 1 {
		t.Errorf("gcxd_go_goroutines = %v (present %v), want >= 1", v, ok)
	}
}

// TestStatsTrailerReportsTTFR: the Gcx-Stats trailer of a large streamed
// /query carries a nonzero time-to-first-result strictly below the
// evaluation wall time — first output begins well before evaluation ends.
func TestStatsTrailerReportsTTFR(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	doc := bigXmarkDoc(t)
	resp, body := post(t, ts.Client(), ts.URL+"/query?id=Q1", doc, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(body) == 0 {
		t.Fatal("no result bytes streamed")
	}
	var st gcx.Stats
	if err := json.Unmarshal([]byte(resp.Trailer.Get("Gcx-Stats")), &st); err != nil {
		t.Fatalf("stats trailer: %v (%q)", err, resp.Trailer.Get("Gcx-Stats"))
	}
	if st.TimeToFirstResultNanos <= 0 {
		t.Fatalf("TimeToFirstResultNanos = %d, want > 0", st.TimeToFirstResultNanos)
	}
	if st.EvalWallNanos <= 0 {
		t.Fatalf("EvalWallNanos = %d, want > 0", st.EvalWallNanos)
	}
	if st.TimeToFirstResultNanos >= st.EvalWallNanos {
		t.Fatalf("TTFR %d >= wall %d: first result should precede evaluation end on a %d-byte document",
			st.TimeToFirstResultNanos, st.EvalWallNanos, len(doc))
	}
}

// TestConcurrentScrapeWhileServing hammers /query while scraping and
// parsing /metrics — the lock-free histogram recording and snapshotting
// under real contention (run with -race in CI).
func TestConcurrentScrapeWhileServing(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	doc := xmarkDoc(t)
	const servers, scrapers, iters = 4, 2, 8

	var wg sync.WaitGroup
	errs := make(chan error, servers+scrapers)
	for w := 0; w < servers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				resp, _, err := tryPost(ts.Client(), ts.URL+"/query?id=Q1", doc, "")
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- errorFromStatus(resp.StatusCode)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	for w := 0; w < scrapers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := ts.Client().Get(ts.URL + "/metrics")
				if err != nil {
					errs <- err
					return
				}
				data, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if _, err := obs.ParseExposition(data); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	// Stop scrapers once the serving goroutines drain.
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			time.Sleep(20 * time.Millisecond)
			if len(errs) > 0 {
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	exp := scrape(t, ts.Client(), ts.URL)
	if v, ok := sampleValue(exp.Family("gcxd_ttfr_seconds"), "gcxd_ttfr_seconds_count", map[string]string{"query": "Q1"}); !ok || v != servers*iters {
		t.Fatalf("gcxd_ttfr_seconds_count{query=\"Q1\"} = %v, want %d", v, servers*iters)
	}
}

type statusError int

func (e statusError) Error() string { return "unexpected status " + http.StatusText(int(e)) }

func errorFromStatus(code int) error { return statusError(code) }

// TestQueryTraceSidecar: a Gcx-Trace header turns /query into a
// multipart response — the streamed result plus a JSON sidecar with the
// bounded buffer-lifecycle trace.
func TestQueryTraceSidecar(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	doc := xmarkDoc(t)
	q, _ := testRegistry(t).Get("Q1")
	want := directRun(t, q, doc)

	readTrace := func(headerValue string) (result string, tr struct {
		Steps     []gcx.TraceStep `json:"steps"`
		Truncated bool            `json:"truncated"`
		Stats     gcx.Stats       `json:"stats"`
	}) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/query?id=Q1", bytes.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Gcx-Trace", headerValue)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		mt, params, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
		if err != nil || mt != "multipart/mixed" {
			t.Fatalf("content type %q (%v), want multipart/mixed", resp.Header.Get("Content-Type"), err)
		}
		mr := multipart.NewReader(resp.Body, params["boundary"])
		for {
			p, err := mr.NextPart()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			data, err := io.ReadAll(p)
			if err != nil {
				t.Fatal(err)
			}
			switch p.Header.Get("Gcx-Part") {
			case "result":
				result = string(data)
			case "trace":
				if err := json.Unmarshal(data, &tr); err != nil {
					t.Fatalf("trace part: %v", err)
				}
			default:
				t.Fatalf("unexpected part %q", p.Header.Get("Gcx-Part"))
			}
		}
		return result, tr
	}

	result, tr := readTrace("1")
	if result != want {
		t.Fatalf("traced result differs from direct run (%d vs %d bytes)", len(result), len(want))
	}
	if len(tr.Steps) == 0 {
		t.Fatal("trace sidecar carries no steps")
	}
	if len(tr.Steps) > 1024 {
		t.Fatalf("default trace bound exceeded: %d steps", len(tr.Steps))
	}
	if tr.Stats.TokensRead == 0 {
		t.Fatal("trace sidecar stats are empty")
	}

	// An explicit tiny bound truncates but leaves the result intact.
	result, tr = readTrace("2")
	if result != want {
		t.Fatal("bounded trace changed the result stream")
	}
	if len(tr.Steps) != 2 || !tr.Truncated {
		t.Fatalf("Gcx-Trace: 2 recorded %d steps (truncated %v), want exactly 2 truncated", len(tr.Steps), tr.Truncated)
	}
}

// TestReadyz covers both unready conditions: a degraded boot
// (SetNotReady) and admission pressure (MaxInflight saturated by a
// hanging request).
func TestReadyz(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInflight: 1})

	get := func() (int, string) {
		resp, err := ts.Client().Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get(); code != http.StatusOK {
		t.Fatalf("idle server not ready: %d %s", code, body)
	}

	srv.SetNotReady("registry /tmp/nope: no such directory")
	if code, body := get(); code != http.StatusServiceUnavailable || !strings.Contains(body, "registry") {
		t.Fatalf("SetNotReady: got %d %q, want 503 naming the registry", code, body)
	}
	srv.SetReady()
	if code, _ := get(); code != http.StatusOK {
		t.Fatalf("SetReady did not restore readiness: %d", code)
	}

	// Saturate the single admission slot with a request whose body never
	// completes; readiness must flip to 503 while it is in flight.
	pr, pw := io.Pipe()
	reqDone := make(chan struct{})
	go func() {
		defer close(reqDone)
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/query?id=Q1", pr)
		resp, err := ts.Client().Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	if _, err := pw.Write([]byte("<site>")); err != nil {
		t.Fatal(err)
	}
	saturated := false
	for i := 0; i < 100 && !saturated; i++ {
		code, _ := get()
		saturated = code == http.StatusServiceUnavailable
		if !saturated {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if !saturated {
		t.Fatal("/readyz never reported admission pressure with MaxInflight=1 saturated")
	}
	pw.Close()
	<-reqDone
	ready := false
	for i := 0; i < 100 && !ready; i++ {
		code, _ := get()
		ready = code == http.StatusOK
		if !ready {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if !ready {
		t.Fatal("/readyz stuck unready after the hanging request finished")
	}
}

func TestBuildinfo(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := ts.Client().Get(ts.URL + "/buildinfo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var bi struct {
		GoVersion string `json:"go_version"`
		Module    string `json:"module"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&bi); err != nil {
		t.Fatal(err)
	}
	if bi.GoVersion == "" {
		t.Fatal("buildinfo reports no Go version")
	}
}

// TestPprofGating: the profiling suite exists only behind EnablePprof.
func TestPprofGating(t *testing.T) {
	_, off := newTestServer(t, Config{})
	resp, err := off.Client().Get(off.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof reachable without the flag: status %d", resp.StatusCode)
	}

	_, on := newTestServer(t, Config{EnablePprof: true})
	resp, err = on.Client().Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof not served with EnablePprof: status %d", resp.StatusCode)
	}
}
