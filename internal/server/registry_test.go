package server

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseRegistryMultiQuery(t *testing.T) {
	src := `=== first
<a>{ for $x in /r/a return $x }</a>
=== second
<b>{
  for $x in /r/b return $x
}</b>
`
	reg, err := ParseRegistry("default", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.IDs(); len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Fatalf("ids: %v", got)
	}
	q, ok := reg.Get("second")
	if !ok || !strings.Contains(q, "/r/b") {
		t.Fatalf("second: %q (%t)", q, ok)
	}
}

func TestParseRegistrySingleQueryUsesDefaultID(t *testing.T) {
	reg, err := ParseRegistry("solo", strings.NewReader(`<a>{ for $x in /r/a return $x }</a>`))
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.IDs(); len(got) != 1 || got[0] != "solo" {
		t.Fatalf("ids: %v", got)
	}
}

func TestParseRegistryRejectsDuplicates(t *testing.T) {
	src := "=== a\n<a/>\n=== a\n<b/>\n"
	if _, err := ParseRegistry("d", strings.NewReader(src)); err == nil {
		t.Fatal("duplicate id must be rejected")
	}
}

func TestParseRegistryEmpty(t *testing.T) {
	if _, err := ParseRegistry("d", strings.NewReader("\n\n")); err == nil {
		t.Fatal("empty registry must be rejected")
	}
}

func TestLoadRegistryFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "catalog.xq")
	src := "=== one\n<a>{ for $x in /r/a return $x }</a>\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	reg, err := LoadRegistry(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.IDs(); len(got) != 1 || got[0] != "one" {
		t.Fatalf("ids: %v", got)
	}
}

func TestLoadRegistryDirectory(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"zeta.xq", "alpha.xq", "ignored.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(`<a>{ for $x in /r/a return $x }</a>`), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	reg, err := LoadRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.IDs(); len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("ids: %v", got)
	}
}
