package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gcx"
	"gcx/internal/queries"
	"gcx/internal/xmark"
)

// testDoc caches one small XMark document shared by the suite.
var testDoc struct {
	once sync.Once
	data []byte
}

func xmarkDoc(t testing.TB) []byte {
	testDoc.once.Do(func() {
		var buf bytes.Buffer
		if _, err := xmark.Generate(&buf, xmark.Config{Factor: 0.002, Seed: 11}); err != nil {
			panic(err)
		}
		testDoc.data = buf.Bytes()
	})
	if len(testDoc.data) == 0 {
		t.Fatal("no test document")
	}
	return testDoc.data
}

// testRegistry registers the paper's Table 1 queries under their names.
func testRegistry(t testing.TB) *Registry {
	reg := NewRegistry()
	for _, q := range queries.All() {
		if err := reg.Add(q.Name, q.Text); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	if cfg.Registry == nil {
		cfg.Registry = testRegistry(t)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// directRun is the ground truth: the library evaluation the server must
// reproduce byte for byte.
func directRun(t testing.TB, query string, doc []byte) string {
	t.Helper()
	eng, err := gcx.Compile(query)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if _, err := eng.Run(bytes.NewReader(doc), &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

// tryPost is the goroutine-safe request helper (no t.Fatal — the testing
// package forbids FailNow off the test goroutine).
func tryPost(client *http.Client, url string, body []byte, accept string) (*http.Response, []byte, error) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return resp, data, nil
}

func post(t testing.TB, client *http.Client, url string, body []byte, accept string) (*http.Response, []byte) {
	t.Helper()
	resp, data, err := tryPost(client, url, body, accept)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestQueryByIDMatchesDirectRun(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	doc := xmarkDoc(t)
	for _, q := range queries.All() {
		resp, body := post(t, ts.Client(), ts.URL+"/query?id="+q.Name, doc, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", q.Name, resp.StatusCode, body)
		}
		want := directRun(t, q.Text, doc)
		if string(body) != want {
			t.Fatalf("%s: served result differs from direct Engine.Run (%d vs %d bytes)", q.Name, len(body), len(want))
		}
		if got := resp.Trailer.Get("Gcx-Error"); got != "" {
			t.Fatalf("%s: unexpected error trailer %q", q.Name, got)
		}
		var st gcx.Stats
		if err := json.Unmarshal([]byte(resp.Trailer.Get("Gcx-Stats")), &st); err != nil {
			t.Fatalf("%s: stats trailer: %v (%q)", q.Name, err, resp.Trailer.Get("Gcx-Stats"))
		}
		if st.OutputBytes != int64(len(want)) {
			t.Fatalf("%s: trailer reports %d output bytes, served %d", q.Name, st.OutputBytes, len(want))
		}
	}
}

func TestQueryInline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	doc := xmarkDoc(t)
	q := `<inline>{ for $p in /site/people/person return $p/name }</inline>`
	resp, body := post(t, ts.Client(), ts.URL+"/query?q="+urlEscape(q), doc, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if want := directRun(t, q, doc); string(body) != want {
		t.Fatal("inline query result differs from direct run")
	}
}

func urlEscape(s string) string {
	r := strings.NewReplacer("%", "%25", "&", "%26", "+", "%2B", "#", "%23", " ", "%20", "\n", "%0A")
	return r.Replace(s)
}

func TestQueryRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, url := range map[string]string{
		"no query":      "/query",
		"unknown id":    "/query?id=nope",
		"both q and id": "/query?id=Q1&q=x",
		"bad syntax":    "/query?q=" + urlEscape("<q>{ for $b in"),
	} {
		resp, _ := post(t, ts.Client(), ts.URL+url, []byte("<r/>"), "")
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: want 400, got %d", name, resp.StatusCode)
		}
	}
}

func TestWorkloadJSONMatchesSoloRuns(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	doc := xmarkDoc(t)
	resp, body := post(t, ts.Client(), ts.URL+"/workload", doc, "application/json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var wr workloadResponse
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatal(err)
	}
	all := queries.All()
	if len(wr.Results) != len(all) {
		t.Fatalf("want %d results, got %d", len(all), len(wr.Results))
	}
	for i, q := range all {
		if wr.IDs[i] != q.Name {
			t.Fatalf("result %d: want id %s, got %s", i, q.Name, wr.IDs[i])
		}
		if want := directRun(t, q.Text, doc); wr.Results[i] != want {
			t.Fatalf("%s: workload result differs from solo run", q.Name)
		}
	}
	if len(wr.Errors) != 0 {
		t.Fatalf("unexpected errors: %v", wr.Errors)
	}
	if wr.Stats.Aggregate.TokensRead == 0 {
		t.Fatal("aggregate stats missing")
	}
}

func TestWorkloadMultipart(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	doc := xmarkDoc(t)
	resp, body := post(t, ts.Client(), ts.URL+"/workload?id=Q1&id=Q13", doc, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	mt, params, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if err != nil || mt != "multipart/mixed" {
		t.Fatalf("content type %q: %v", resp.Header.Get("Content-Type"), err)
	}
	mr := multipart.NewReader(bytes.NewReader(body), params["boundary"])
	want := map[string]string{
		"Q1":  directRun(t, queries.Q1.Text, doc),
		"Q13": directRun(t, queries.Q13.Text, doc),
	}
	var gotStats bool
	var parts int
	for {
		p, err := mr.NextPart()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(p)
		if err != nil {
			t.Fatal(err)
		}
		if p.Header.Get("Gcx-Part") == "stats" {
			gotStats = true
			var wr workloadResponse
			if err := json.Unmarshal(data, &wr); err != nil {
				t.Fatalf("stats part: %v", err)
			}
			if wr.Stats.Aggregate.TokensRead == 0 {
				t.Fatal("stats part has no aggregate token count")
			}
			continue
		}
		parts++
		id := p.Header.Get("Gcx-Query-Id")
		if string(data) != want[id] {
			t.Fatalf("part %s differs from solo run", id)
		}
	}
	if parts != 2 || !gotStats {
		t.Fatalf("want 2 query parts + stats part, got %d (stats %t)", parts, gotStats)
	}
}

// TestCacheHitsPerformZeroCompiles locks in the compile-cache contract:
// after the first request for a query, repeated requests must not compile
// anything.
func TestCacheHitsPerformZeroCompiles(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	doc := xmarkDoc(t)
	// Prime: registered queries are compiled by New already; one request
	// each for the workload and an inline query.
	post(t, ts.Client(), ts.URL+"/query?id=Q1", doc, "")
	post(t, ts.Client(), ts.URL+"/workload", doc, "application/json")
	inline := `<i>{ for $p in /site/people/person return $p/id }</i>`
	post(t, ts.Client(), ts.URL+"/query?q="+urlEscape(inline), doc, "")

	before := s.Cache().Stats()
	for i := 0; i < 5; i++ {
		post(t, ts.Client(), ts.URL+"/query?id=Q1", doc, "")
		post(t, ts.Client(), ts.URL+"/workload", doc, "application/json")
		post(t, ts.Client(), ts.URL+"/query?q="+urlEscape(inline), doc, "")
	}
	after := s.Cache().Stats()
	if after.Compiles != before.Compiles {
		t.Fatalf("hot requests compiled: %d -> %d compiles", before.Compiles, after.Compiles)
	}
	if after.Hits <= before.Hits {
		t.Fatalf("expected cache hits to grow: %+v -> %+v", before, after)
	}
}

// TestConcurrentMixedRequests fires many concurrent requests of every
// kind — solo hits, workload, cache-missing inline queries, oversized
// bodies, mid-body disconnects — and byte-compares every successful
// response against the direct library run. Run with -race this is the
// serving layer's concurrency proof.
func TestConcurrentMixedRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxBodyBytes: 1 << 20})
	doc := xmarkDoc(t)
	if len(doc) >= 1<<20 {
		t.Fatalf("test document too large for the configured body cap: %d", len(doc))
	}
	// Valid XML ~1.8MB, comfortably over the 1MB cap: the limit must trip
	// while streaming, well before the closing root tag.
	oversized := append([]byte("<r>"), bytes.Repeat([]byte("<x>padding</x>"), 1<<17)...)
	oversized = append(oversized, "</r>"...)

	wantByID := map[string]string{}
	for _, q := range queries.All() {
		wantByID[q.Name] = directRun(t, q.Text, doc)
	}
	// Pre-compute the cache-missing inline queries and their expected
	// outputs on the test goroutine (directRun uses t.Fatal).
	const inlineVariants = 7
	inlineQ := make([]string, inlineVariants)
	inlineWant := make([]string, inlineVariants)
	for v := 0; v < inlineVariants; v++ {
		inlineQ[v] = fmt.Sprintf(`<m>{ for $p in /site/people/person return if ($p/id = "person%d") then $p/name else () }</m>`, v)
		inlineWant[v] = directRun(t, inlineQ[v], doc)
	}

	const workers = 12
	const iters = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := ts.Client()
			for i := 0; i < iters; i++ {
				switch (w + i) % 5 {
				case 0: // registered solo query (cache hit)
					q := queries.All()[(w+i)%len(queries.All())]
					resp, body, err := tryPost(client, ts.URL+"/query?id="+q.Name, doc, "")
					if err != nil {
						t.Errorf("solo %s: %v", q.Name, err)
						return
					}
					if resp.StatusCode != http.StatusOK {
						t.Errorf("solo %s: status %d", q.Name, resp.StatusCode)
						return
					}
					if string(body) != wantByID[q.Name] {
						t.Errorf("solo %s: body differs from direct run", q.Name)
						return
					}
				case 1: // full workload
					resp, body, err := tryPost(client, ts.URL+"/workload", doc, "application/json")
					if err != nil {
						t.Errorf("workload: %v", err)
						return
					}
					if resp.StatusCode != http.StatusOK {
						t.Errorf("workload: status %d", resp.StatusCode)
						return
					}
					var wr workloadResponse
					if err := json.Unmarshal(body, &wr); err != nil {
						t.Errorf("workload: %v", err)
						return
					}
					for j, q := range queries.All() {
						if wr.Results[j] != wantByID[q.Name] {
							t.Errorf("workload %s differs from solo run", q.Name)
							return
						}
					}
				case 2: // cache miss: rotating inline queries
					v := (w*iters + i) % inlineVariants
					resp, body, err := tryPost(client, ts.URL+"/query?q="+urlEscape(inlineQ[v]), doc, "")
					if err != nil {
						t.Errorf("miss: %v", err)
						return
					}
					if resp.StatusCode != http.StatusOK {
						t.Errorf("miss: status %d", resp.StatusCode)
						return
					}
					if string(body) != inlineWant[v] {
						t.Errorf("miss: body differs from direct run")
						return
					}
				case 3: // oversized body must be rejected, not buffered
					resp, _, err := tryPost(client, ts.URL+"/query?id=Q1", oversized, "")
					if err != nil {
						t.Errorf("oversized: %v", err)
						return
					}
					if resp.StatusCode != http.StatusRequestEntityTooLarge {
						t.Errorf("oversized: want 413, got %d", resp.StatusCode)
						return
					}
				case 4: // client disconnect mid-body
					pr, pw := io.Pipe()
					req, err := http.NewRequest(http.MethodPost, ts.URL+"/query?id=Q6", pr)
					if err != nil {
						t.Error(err)
						return
					}
					go func() {
						pw.Write(doc[:256])
						pw.CloseWithError(errors.New("client walked away"))
					}()
					resp, err := client.Do(req)
					if err == nil {
						// The server may have answered before noticing;
						// either way the connection must be sound.
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// The service must be healthy after the storm.
	resp, body := post(t, ts.Client(), ts.URL+"/query?id=Q1", doc, "")
	if resp.StatusCode != http.StatusOK || string(body) != wantByID["Q1"] {
		t.Fatalf("server unhealthy after concurrent storm: status %d", resp.StatusCode)
	}
	snap := s.Metrics()
	if snap.RequestsQuery == 0 || snap.RequestsWorkload == 0 {
		t.Fatalf("metrics did not count requests: %+v", snap)
	}
	if snap.Cache.Hits == 0 {
		t.Fatalf("no cache hits recorded: %+v", snap.Cache)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	doc := xmarkDoc(t)
	post(t, ts.Client(), ts.URL+"/query?id=Q1", doc, "")

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, metric := range []string{
		"gcxd_requests_total{endpoint=\"query\"} 1",
		"gcxd_cache_hits_total",
		"gcxd_bytes_in_total",
		"gcxd_buffer_peak_nodes_max",
	} {
		if !strings.Contains(string(text), metric) {
			t.Errorf("metrics output missing %q:\n%s", metric, text)
		}
	}

	resp, err = ts.Client().Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if snap.RequestsQuery != 1 {
		t.Fatalf("json snapshot: %+v", snap)
	}
	if snap.BytesIn != int64(len(doc)) {
		t.Fatalf("bytes_in %d, want the full streamed document %d", snap.BytesIn, len(doc))
	}
	if snap.Aggregate.TokensRead == 0 || snap.Aggregate.PeakBufferNodes == 0 {
		t.Fatalf("aggregate stats not recorded: %+v", snap.Aggregate)
	}
}

func TestQueriesEndpointAndHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := ts.Client().Get(ts.URL + "/queries")
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		IDs []string `json:"ids"`
	}
	err = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.IDs) != len(queries.All()) || got.IDs[0] != "Q1" {
		t.Fatalf("ids: %v", got.IDs)
	}
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok\n" {
		t.Fatalf("healthz: %q", body)
	}
}

func TestNewRejectsBrokenRegisteredQuery(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Add("broken", `<q>{ for $b in`); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Registry: reg}); err == nil {
		t.Fatal("a registry with an uncompilable query must fail at startup")
	}
}

// TestRequestTimeout: a body that trickles in slower than the evaluation
// timeout must abort the request through the engine's read path. The
// input's first token arrives fine, so the first result byte commits 200
// before the expiry — the timeout then surfaces on the truncated stream's
// Gcx-Error trailer, the streaming contract for all post-commit failures.
func TestRequestTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{Timeout: 50 * time.Millisecond})
	pr, pw := io.Pipe()
	go func() {
		pw.Write([]byte("<site><people>"))
		time.Sleep(300 * time.Millisecond)
		pw.Close()
	}()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/query?id=Q1", pr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("client error: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("streamed response: want committed 200, got %d: %s", resp.StatusCode, body)
	}
	io.Copy(io.Discard, resp.Body) // trailers follow the body
	if got := resp.Trailer.Get("Gcx-Error"); !strings.Contains(got, "deadline") {
		t.Fatalf("timeout missing from Gcx-Error trailer: %q", got)
	}
}
