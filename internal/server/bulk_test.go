package server

import (
	"archive/tar"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"gcx"
	"gcx/internal/queries"
	"gcx/internal/xmark"
)

// bulkDocs builds a small corpus of distinct XMark documents (sizes
// shuffled so parallel completion order differs from corpus order).
func bulkTestDocs(t testing.TB, n int) [][]byte {
	t.Helper()
	var docs [][]byte
	for i := 0; i < n; i++ {
		var buf bytes.Buffer
		factor := 0.001 * float64(1+(i*7)%5)
		if _, err := xmark.Generate(&buf, xmark.Config{Factor: factor, Seed: uint64(40 + i)}); err != nil {
			t.Fatal(err)
		}
		docs = append(docs, buf.Bytes())
	}
	return docs
}

func concatBody(docs [][]byte) []byte {
	var buf bytes.Buffer
	for _, d := range docs {
		buf.Write(d)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

func tarBody(t testing.TB, names []string, docs [][]byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	for i, d := range docs {
		if err := tw.WriteHeader(&tar.Header{Name: names[i], Mode: 0o644, Size: int64(len(d))}); err != nil {
			t.Fatal(err)
		}
		if _, err := tw.Write(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// bulkPart is one parsed document part of a /bulk response.
type bulkPart struct {
	index int
	name  string
	errh  string
	stats gcx.Stats
	body  []byte
}

// parseBulk parses a /bulk multipart response into document parts and
// the aggregate stats part.
func parseBulk(t testing.TB, resp *http.Response, body []byte) ([]bulkPart, bulkResponse) {
	t.Helper()
	mt, params, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if err != nil || mt != "multipart/mixed" {
		t.Fatalf("content type %q: %v", resp.Header.Get("Content-Type"), err)
	}
	mr := multipart.NewReader(bytes.NewReader(body), params["boundary"])
	var parts []bulkPart
	var agg bulkResponse
	var gotAgg bool
	for {
		p, err := mr.NextPart()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(p)
		if err != nil {
			t.Fatal(err)
		}
		if p.Header.Get("Gcx-Part") == "stats" {
			gotAgg = true
			if err := json.Unmarshal(data, &agg); err != nil {
				t.Fatalf("aggregate part: %v", err)
			}
			continue
		}
		var bp bulkPart
		fmt.Sscanf(p.Header.Get("Gcx-Doc-Index"), "%d", &bp.index)
		bp.name = p.Header.Get("Gcx-Doc-Name")
		bp.errh = p.Header.Get("Gcx-Error")
		if sh := p.Header.Get("Gcx-Stats"); sh != "" {
			if err := json.Unmarshal([]byte(sh), &bp.stats); err != nil {
				t.Fatalf("doc stats header: %v", err)
			}
		}
		bp.body = data
		parts = append(parts, bp)
	}
	if !gotAgg {
		t.Fatal("no aggregate stats part")
	}
	return parts, agg
}

func TestBulkConcatMatchesSoloRuns(t *testing.T) {
	s, ts := newTestServer(t, Config{BulkWorkers: 8})
	docs := bulkTestDocs(t, 6)
	resp, body := post(t, ts.Client(), ts.URL+"/bulk?id=Q1&j=4", concatBody(docs), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	parts, agg := parseBulk(t, resp, body)
	if len(parts) != len(docs) {
		t.Fatalf("got %d doc parts, want %d", len(parts), len(docs))
	}
	for i, p := range parts {
		if p.index != i {
			t.Errorf("part %d carries index %d: order violated", i, p.index)
		}
		if p.errh != "" {
			t.Errorf("doc %d failed: %s", i, p.errh)
		}
		if want := directRun(t, queries.Q1.Text, docs[i]); string(p.body) != want {
			t.Errorf("doc %d differs from solo run (%d vs %d bytes)", i, len(p.body), len(want))
		}
		if p.stats.TokensRead == 0 {
			t.Errorf("doc %d has no per-document stats", i)
		}
	}
	if agg.Stats.Docs != int64(len(docs)) || agg.Stats.Failed != 0 {
		t.Errorf("aggregate: %+v", agg.Stats)
	}
	if agg.Stats.Workers != 4 {
		t.Errorf("aggregate workers %d, want 4", agg.Stats.Workers)
	}
	// The trailer repeats the envelope for clients that skip the body.
	var trailerStats gcx.BulkStats
	if err := json.Unmarshal([]byte(resp.Trailer.Get("Gcx-Bulk-Stats")), &trailerStats); err != nil {
		t.Fatalf("Gcx-Bulk-Stats trailer: %v", err)
	}
	if trailerStats.Docs != int64(len(docs)) {
		t.Errorf("trailer docs %d, want %d", trailerStats.Docs, len(docs))
	}
	// Service counters: documents and worker time are accounted.
	snap := s.Metrics()
	if snap.RequestsBulk != 1 || snap.BulkDocs != int64(len(docs)) || snap.BulkDocErrors != 0 {
		t.Errorf("metrics: %+v", snap)
	}
	if snap.BulkBusyNanos <= 0 || snap.BulkWorkerNanos < snap.BulkBusyNanos {
		t.Errorf("utilization counters: busy %d, worker %d", snap.BulkBusyNanos, snap.BulkWorkerNanos)
	}
}

func TestBulkTarPreservesMemberNames(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	docs := bulkTestDocs(t, 3)
	names := []string{"a/first.xml", "a/second.xml", "b/third.xml"}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/bulk?id=Q13", bytes.NewReader(tarBody(t, names, docs)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-tar")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	parts, agg := parseBulk(t, resp, body)
	if len(parts) != 3 || agg.Stats.Failed != 0 {
		t.Fatalf("parts %d, aggregate %+v", len(parts), agg.Stats)
	}
	for i, p := range parts {
		if p.name != names[i] {
			t.Errorf("part %d name %q, want %q", i, p.name, names[i])
		}
		if want := directRun(t, queries.Q13.Text, docs[i]); string(p.body) != want {
			t.Errorf("member %s differs from solo run", p.name)
		}
	}
}

// TestBulkPoisonMember: one bad document among healthy ones is a
// 207-style partial result — 200 envelope, the poison part carries
// Gcx-Error, every sibling is byte-identical to its solo run.
func TestBulkPoisonMember(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	docs := bulkTestDocs(t, 4)
	names := []string{"ok1.xml", "poison.xml", "ok2.xml", "ok3.xml"}
	members := [][]byte{docs[0], []byte("<poison><unclosed></poison>"), docs[1], docs[2]}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/bulk?id=Q6", bytes.NewReader(tarBody(t, names, members)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-tar")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (want 200 with a per-part error): %s", resp.StatusCode, body)
	}
	parts, agg := parseBulk(t, resp, body)
	if len(parts) != 4 {
		t.Fatalf("got %d parts, want 4", len(parts))
	}
	if parts[1].errh == "" {
		t.Error("poison part carries no Gcx-Error")
	}
	for i, docIdx := range map[int]int{0: 0, 2: 1, 3: 2} {
		if parts[i].errh != "" {
			t.Errorf("healthy member %d errored: %s", i, parts[i].errh)
		}
		if want := directRun(t, queries.Q6.Text, docs[docIdx]); string(parts[i].body) != want {
			t.Errorf("healthy member %d differs from its solo run", i)
		}
	}
	if agg.Stats.Failed != 1 || len(agg.Errors) != 1 {
		t.Errorf("aggregate: %+v errors %v", agg.Stats, agg.Errors)
	}
	if snap := s.Metrics(); snap.BulkDocErrors != 1 {
		t.Errorf("bulk doc errors counter %d, want 1", snap.BulkDocErrors)
	}
}

// TestBulkOversizedFirstMember413: a resource-limit violation on the
// very first document fails the whole request with a real status code
// — nothing has been committed yet.
func TestBulkOversizedFirstMember413(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxDocBytes: 1 << 10})
	docs := bulkTestDocs(t, 2)
	big := bytes.Repeat([]byte("x"), 4<<10)
	bigDoc := append(append([]byte("<big>"), big...), []byte("</big>")...)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/bulk?id=Q1",
		bytes.NewReader(tarBody(t, []string{"big.xml", "ok.xml"}, [][]byte{bigDoc, docs[0]})))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-tar")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", resp.StatusCode, body)
	}
}

// TestBulkOversizedLaterMemberIsolated: once parts are flowing, an
// oversized member degrades to a per-part error; siblings (including
// those AFTER it) still evaluate.
func TestBulkOversizedLaterMemberIsolated(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxDocBytes: 16 << 10})
	small := []byte(`<site><people><person><id>person0</id><name>tiny</name></person></people></site>`)
	big := append(append([]byte("<big>"), bytes.Repeat([]byte("y"), 32<<10)...), []byte("</big>")...)
	resp, body := post(t, ts.Client(), ts.URL+"/bulk?id=Q1", concatBody([][]byte{small, big, small}), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	parts, agg := parseBulk(t, resp, body)
	if len(parts) != 3 {
		t.Fatalf("got %d parts, want 3", len(parts))
	}
	if parts[1].errh == "" || !strings.Contains(parts[1].errh, "exceeds") {
		t.Errorf("oversized part error %q", parts[1].errh)
	}
	want := directRun(t, queries.Q1.Text, small)
	if string(parts[0].body) != want || string(parts[2].body) != want {
		t.Error("siblings of the oversized member differ from solo runs")
	}
	if agg.Stats.Failed != 1 {
		t.Errorf("aggregate: %+v", agg.Stats)
	}
}

// TestBulkTruncatedArchive: the body dies mid-archive. Members served
// before the break are intact; the break itself lands in the aggregate
// error list, and the handler returns instead of wedging the pool.
func TestBulkTruncatedArchive(t *testing.T) {
	s := newFailureServer(t, Config{})
	docs := bulkTestDocs(t, 3)
	whole := tarBody(t, []string{"a.xml", "b.xml", "c.xml"}, docs)
	// Cut mid-way through the second member's data.
	cut := whole[:1024+len(docs[0])+512+len(docs[1])/2]
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/bulk?id=Q1", bytes.NewReader(cut))
	req.Header.Set("Content-Type", "application/x-tar")
	s.ServeHTTP(rec, req)
	resp := rec.Result()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		// Acceptable alternative: the break happened before the first
		// member completed, so the whole request failed with a code.
		if resp.StatusCode == http.StatusBadRequest {
			return
		}
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	parts, agg := parseBulk(t, resp, body)
	if len(parts) < 1 {
		t.Fatal("no parts before the truncation")
	}
	if want := directRun(t, queries.Q1.Text, docs[0]); string(parts[0].body) != want {
		t.Error("first member differs from its solo run despite truncation later")
	}
	if len(agg.Errors) == 0 {
		t.Error("aggregate does not report the broken archive")
	}
}

// TestBulkClientGoneMidStream: the response writer starts failing while
// parts are streaming; the run unwinds (dispatch cancelled), the pool
// stays healthy, and the next request works.
func TestBulkClientGoneMidStream(t *testing.T) {
	s := newFailureServer(t, Config{})
	docs := bulkTestDocs(t, 6)
	w := &failingResponseWriter{n: 512}
	req := httptest.NewRequest(http.MethodPost, "/bulk?id=Q6&j=2", bytes.NewReader(concatBody(docs)))
	s.ServeHTTP(w, req)

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/bulk?id=Q1&j=2", bytes.NewReader(concatBody(docs[:2]))))
	if rec.Code != http.StatusOK {
		t.Fatalf("server unhealthy after client disconnect: %d", rec.Code)
	}
	parts, _ := parseBulk(t, rec.Result(), rec.Body.Bytes())
	if len(parts) != 2 {
		t.Fatalf("follow-up request got %d parts, want 2", len(parts))
	}
}

// TestBulkEmptyCorpus: an empty body is a valid corpus of zero
// documents — the envelope holds just the aggregate part.
func TestBulkEmptyCorpus(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.Client(), ts.URL+"/bulk?id=Q1", nil, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	parts, agg := parseBulk(t, resp, body)
	if len(parts) != 0 || agg.Stats.Docs != 0 {
		t.Fatalf("parts %d, aggregate %+v", len(parts), agg.Stats)
	}
}

// TestBulkWorkerCapClamps: the server's BulkWorkers cap wins over a
// greedy j= parameter.
func TestBulkWorkerCapClamps(t *testing.T) {
	_, ts := newTestServer(t, Config{BulkWorkers: 2})
	docs := bulkTestDocs(t, 3)
	resp, body := post(t, ts.Client(), ts.URL+"/bulk?id=Q1&j=64", concatBody(docs), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	_, agg := parseBulk(t, resp, body)
	if agg.Stats.Workers != 2 {
		t.Errorf("workers %d, want the cap 2", agg.Stats.Workers)
	}
	// A j= that does not parse (or is non-positive) is a 400, not a
	// silent fallback to the default parallelism.
	for _, bad := range []string{"banana", "0", "-3", "1O"} {
		resp, body := post(t, ts.Client(), ts.URL+"/bulk?id=Q1&j="+bad, concatBody(docs), "")
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("j=%s: status %d, want 400: %s", bad, resp.StatusCode, body)
		}
	}
}

// TestBulkConcurrentMixedTraffic races bulk, solo, and workload
// requests against one server — the pool, cache, and metrics must stay
// consistent (run under -race).
func TestBulkConcurrentMixedTraffic(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	docs := bulkTestDocs(t, 4)
	bulk := concatBody(docs)
	solo := docs[0]
	wantSolo := directRun(t, queries.Q1.Text, solo)
	wantBulk := make([]string, len(docs))
	for i, d := range docs {
		wantBulk[i] = directRun(t, queries.Q6.Text, d)
	}

	const perKind = 6
	var wg sync.WaitGroup
	errc := make(chan error, 3*perKind)
	for i := 0; i < perKind; i++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			resp, body, err := tryPost(ts.Client(), ts.URL+"/bulk?id=Q6&j=3", bulk, "")
			if err != nil {
				errc <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errc <- fmt.Errorf("bulk status %d", resp.StatusCode)
				return
			}
			mt, params, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
			if err != nil || mt != "multipart/mixed" {
				errc <- fmt.Errorf("bulk content type %q: %v", resp.Header.Get("Content-Type"), err)
				return
			}
			mr := multipart.NewReader(bytes.NewReader(body), params["boundary"])
			idx := 0
			for {
				p, err := mr.NextPart()
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					errc <- err
					return
				}
				data, _ := io.ReadAll(p)
				if p.Header.Get("Gcx-Part") == "stats" {
					continue
				}
				if string(data) != wantBulk[idx] {
					errc <- fmt.Errorf("bulk doc %d diverged under concurrency", idx)
					return
				}
				idx++
			}
			if idx != len(docs) {
				errc <- fmt.Errorf("bulk saw %d docs, want %d", idx, len(docs))
			}
		}()
		go func() {
			defer wg.Done()
			resp, body, err := tryPost(ts.Client(), ts.URL+"/query?id=Q1", solo, "")
			if err != nil {
				errc <- err
				return
			}
			if resp.StatusCode != http.StatusOK || string(body) != wantSolo {
				errc <- fmt.Errorf("solo diverged under concurrency (status %d)", resp.StatusCode)
			}
		}()
		go func() {
			defer wg.Done()
			resp, _, err := tryPost(ts.Client(), ts.URL+"/workload?id=Q1&id=Q13", solo, "application/json")
			if err != nil {
				errc <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errc <- fmt.Errorf("workload status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
