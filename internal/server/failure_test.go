package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gcx/internal/queries"
)

// failingResponseWriter accepts n body bytes and then fails every write —
// a client whose connection died mid-response. It bypasses httptest's
// in-memory recorder so the engine's write-error path runs inside a real
// handler invocation.
type failingResponseWriter struct {
	h    http.Header
	code int
	n    int
	mu   sync.Mutex
}

func (w *failingResponseWriter) Header() http.Header {
	if w.h == nil {
		w.h = http.Header{}
	}
	return w.h
}

func (w *failingResponseWriter) WriteHeader(code int) { w.code = code }

func (w *failingResponseWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.code == 0 {
		w.code = http.StatusOK
	}
	if w.n <= 0 {
		return 0, io.ErrClosedPipe
	}
	if len(p) > w.n {
		m := w.n
		w.n = 0
		return m, io.ErrClosedPipe
	}
	w.n -= len(p)
	return len(p), nil
}

// slowResponseWriter accepts writes but stalls on each one.
type slowResponseWriter struct {
	failingResponseWriter
	delay time.Duration
}

func (w *slowResponseWriter) Write(p []byte) (int, error) {
	time.Sleep(w.delay)
	return w.failingResponseWriter.Write(p)
}

func newFailureServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = testRegistry(t)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestHandlerSurvivesFailingResponseWriter: the engine's write error must
// unwind the handler cleanly (no panic, no goroutine left running) and be
// counted as an errored request.
func TestHandlerSurvivesFailingResponseWriter(t *testing.T) {
	s := newFailureServer(t, Config{})
	doc := xmarkDoc(t)
	req := httptest.NewRequest(http.MethodPost, "/query?id=Q6", bytes.NewReader(doc))
	w := &failingResponseWriter{n: 32}
	s.ServeHTTP(w, req) // must not panic
	if got := s.Metrics().RequestsErrored; got != 1 {
		t.Fatalf("failing client must count as an errored request, got %d", got)
	}
	// The server must still serve correct results afterwards.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/query?id=Q1", bytes.NewReader(doc)))
	if rec.Code != http.StatusOK {
		t.Fatalf("follow-up request failed: %d", rec.Code)
	}
	if rec.Body.String() != directRun(t, queries.Q1.Text, doc) {
		t.Fatal("follow-up request produced wrong output")
	}
}

// TestHandlerSurvivesSlowResponseWriter: a glacial client must not wedge
// the handler (writes are synchronous; this exercises the path, the
// draining is the OS socket's problem in production).
func TestHandlerSurvivesSlowResponseWriter(t *testing.T) {
	s := newFailureServer(t, Config{})
	doc := xmarkDoc(t)
	req := httptest.NewRequest(http.MethodPost, "/query?id=Q1", bytes.NewReader(doc))
	w := &slowResponseWriter{failingResponseWriter: failingResponseWriter{n: 1 << 30}, delay: time.Millisecond}
	done := make(chan struct{})
	go func() {
		s.ServeHTTP(w, req)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("handler wedged on a slow client")
	}
	if w.code != http.StatusOK {
		t.Fatalf("status %d", w.code)
	}
}

// TestTruncatedRequestBody: a body that ends mid-element fails only
// AFTER the first result byte has been committed — earliest answering
// ships that byte within one input token of its certainty — so the
// streaming contract applies: 200 with partial output on the wire and
// the tokenizer's diagnosis in the Gcx-Error trailer. (A body that is
// garbage from byte one still gets a clean 400: nothing flushes before
// the first successful input token.)
func TestTruncatedRequestBody(t *testing.T) {
	s := newFailureServer(t, Config{})
	doc := xmarkDoc(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/query?id=Q1", bytes.NewReader(doc[:len(doc)/3])))
	res := rec.Result()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("mid-stream failure after commit: want 200, got %d (%s)", res.StatusCode, rec.Body.String())
	}
	if !rec.Flushed {
		t.Fatal("first result byte was not flushed to the client")
	}
	if got := res.Trailer.Get("Gcx-Error"); !strings.Contains(got, "unexpected end of input") {
		t.Fatalf("diagnosis missing from Gcx-Error trailer: %q", got)
	}
	if s.Metrics().RequestsErrored == 0 {
		t.Fatal("truncation not counted as an errored request")
	}
}

// TestGarbageRequestBody: input that fails on its very FIRST token must
// still produce a clean client error — the earliest-answering flush is
// armed only after one successful input step, precisely to keep this
// path's status line intact.
func TestGarbageRequestBody(t *testing.T) {
	s := newFailureServer(t, Config{})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/query?id=Q1", strings.NewReader("<")))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("garbage body: want 400, got %d (%s)", rec.Code, rec.Body.String())
	}
	if rec.Flushed {
		t.Fatal("nothing may be flushed before the first successful input token")
	}
}

// TestTruncatedWorkloadBody: same through the shared-pass endpoint. On
// the buffered JSON path nothing is committed before evaluation, and a
// stream failure interrupts EVERY member — so the request fails at the
// HTTP level (like /query), with the tokenizer's diagnosis in the body.
func TestTruncatedWorkloadBody(t *testing.T) {
	s := newFailureServer(t, Config{})
	doc := xmarkDoc(t)
	req := httptest.NewRequest(http.MethodPost, "/workload", bytes.NewReader(doc[:len(doc)/3]))
	req.Header.Set("Accept", "application/json")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("whole-stream failure on the buffered path: want 400, got %d (%s)", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "unexpected end of input") {
		t.Fatalf("diagnosis missing from response: %s", rec.Body.String())
	}
	if s.Metrics().RequestsErrored == 0 {
		t.Fatal("truncation not counted as an errored request")
	}
}

// TestOversizedWorkloadBodyJSON: the size cap classifies as 413 through
// the workload JSON path too.
func TestOversizedWorkloadBodyJSON(t *testing.T) {
	s := newFailureServer(t, Config{MaxBodyBytes: 4 << 10})
	doc := xmarkDoc(t)
	req := httptest.NewRequest(http.MethodPost, "/workload", bytes.NewReader(doc))
	req.Header.Set("Accept", "application/json")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("want 413, got %d (%s)", rec.Code, rec.Body.String())
	}
}

// TestWorkloadMultipartClientGoneMidStream: the part-0 stream failing must
// abort the multipart response without panicking.
func TestWorkloadMultipartClientGoneMidStream(t *testing.T) {
	s := newFailureServer(t, Config{})
	doc := xmarkDoc(t)
	req := httptest.NewRequest(http.MethodPost, "/workload?id=Q6&id=Q1", bytes.NewReader(doc))
	w := &failingResponseWriter{n: 256}
	s.ServeHTTP(w, req) // must not panic
	if s.Metrics().RequestsWorkload != 1 {
		t.Fatal("request not counted")
	}
}
