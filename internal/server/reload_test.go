package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"gcx/internal/queries"
)

// TestReloadRegistryRacesWorkload hot-swaps the registry while full-fleet
// /workload requests are streaming, under -race. Every response must be
// internally consistent: the id set it reports is one registry generation
// (never a blend), and each id's payload matches that id's solo run.
func TestReloadRegistryRacesWorkload(t *testing.T) {
	all := queries.All()
	if len(all) < 4 {
		t.Fatal("need at least 4 catalog queries")
	}
	// Generation 0: first half of the catalog. Generation 1: second half
	// plus one query whose TEXT changes meaning under the same id.
	mkReg := func(gen int) *Registry {
		reg := NewRegistry()
		half := len(all) / 2
		qs := all[:half]
		if gen == 1 {
			qs = all[half:]
		}
		for _, q := range qs {
			if err := reg.Add(q.Name, q.Text); err != nil {
				t.Fatal(err)
			}
		}
		// "pivot" exists in both generations with different texts — the
		// reload diff must resubscribe it, not reuse the old compile.
		pivot := fmt.Sprintf(`<pivot-gen%d>{ /site/people/person/name }</pivot-gen%d>`, gen, gen)
		if err := reg.Add("pivot", pivot); err != nil {
			t.Fatal(err)
		}
		return reg
	}

	doc := xmarkDoc(t)
	s, ts := newTestServer(t, Config{Registry: mkReg(0)})

	// Ground truth per generation, per id.
	want := make([]map[string]string, 2)
	for gen := 0; gen < 2; gen++ {
		want[gen] = map[string]string{}
		reg := mkReg(gen)
		for _, id := range reg.IDs() {
			q, _ := reg.Get(id)
			want[gen][id] = directRun(t, q, doc)
		}
	}

	const workers = 4
	const reqs = 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reqs; i++ {
				resp, body, err := tryPost(ts.Client(), ts.URL+"/workload", doc, "application/json")
				if err != nil {
					t.Errorf("workload: %v", err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("workload: status %d: %s", resp.StatusCode, body)
					return
				}
				var wr struct {
					IDs     []string `json:"ids"`
					Results []string `json:"results"`
				}
				if err := json.Unmarshal(body, &wr); err != nil {
					t.Errorf("workload: bad json: %v", err)
					return
				}
				if len(wr.Results) != len(wr.IDs) {
					t.Errorf("got %d results for %d ids", len(wr.Results), len(wr.IDs))
					return
				}
				results := map[string]string{}
				for i, id := range wr.IDs {
					results[id] = wr.Results[i]
				}
				// Identify the generation by the pivot payload, then demand
				// the whole response is that generation.
				gen := -1
				if strings.Contains(results["pivot"], "<pivot-gen0>") {
					gen = 0
				} else if strings.Contains(results["pivot"], "<pivot-gen1>") {
					gen = 1
				}
				if gen < 0 {
					t.Errorf("pivot output matches neither generation: %.80q", results["pivot"])
					return
				}
				if len(wr.IDs) != len(want[gen]) {
					t.Errorf("gen %d response has %d ids, want %d (%v)", gen, len(wr.IDs), len(want[gen]), wr.IDs)
					return
				}
				for id, got := range results {
					if exp, ok := want[gen][id]; !ok {
						t.Errorf("gen %d response served id %q from another generation", gen, id)
						return
					} else if got != exp {
						t.Errorf("gen %d id %q output diverged from solo run", gen, id)
						return
					}
				}
			}
		}()
	}
	// The reloader flips generations while the workers stream.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 20; i++ {
			if err := s.ReloadRegistry(mkReg(i % 2)); err != nil {
				t.Errorf("reload %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()

	// Reload with an invalid query must refuse and keep the previous set.
	bad := NewRegistry()
	if err := bad.Add("broken", "<r>{ for $x in"); err != nil {
		t.Fatal(err)
	}
	before := s.registry().IDs()
	if err := s.ReloadRegistry(bad); err == nil {
		t.Fatal("reload with an invalid query must fail")
	}
	after := s.registry().IDs()
	if len(before) != len(after) {
		t.Fatalf("failed reload mutated the registry: %v -> %v", before, after)
	}
	resp, _, err := tryPost(ts.Client(), ts.URL+"/workload", doc, "application/json")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("server unhealthy after rejected reload: %v status %v", err, resp)
	}
}
