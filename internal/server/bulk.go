package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"mime"
	"mime/multipart"
	"net/http"
	"net/textproto"
	"runtime"
	"strconv"

	"gcx"
)

// handleBulk serves POST /bulk: one query (inline q= or registered
// id=) evaluated over EVERY document of the request body — a tar
// archive (Content-Type application/x-tar or ?format=tar) or a
// concatenated multi-document XML stream — across a bounded worker
// pool (?j=N, capped by the server's BulkWorkers).
//
// The response is multipart/mixed, one part per document in corpus
// order with that document's result bytes and its stats in a Gcx-Stats
// part header; a failed document's part carries Gcx-Error and whatever
// partial output a solo run would have produced, while its siblings
// stay byte-identical to solo runs (207 Multi-Status in spirit: the
// status line says the stream worked, each part reports its own fate).
// The final part (Gcx-Part: stats) is the aggregate: gcx.BulkStats
// plus the failed documents, repeated in the Gcx-Bulk-Stats HTTP
// trailer for clients that only want the envelope.
//
// A request whose FIRST document already violates a resource limit
// (oversized member) fails whole with 413 before anything is
// committed; after the first part is out, errors are per-document.
func (s *Server) handleBulk(w http.ResponseWriter, r *http.Request) {
	s.m.bulkRequests.Add(1)
	if !s.admitLength(w, r) {
		return
	}
	text, err := s.resolveQuery(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	eng, err := s.cache.Engine(text, s.cfg.Options...)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("compile: %w", err))
		return
	}
	workers, err := s.bulkWorkers(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	// Parts stream out while the corpus is still being read from the
	// request body; the HTTP/1 server must not drain-and-close the body
	// at the first response flush. (Best effort: recorders and HTTP/2
	// either do not support or do not need it.)
	http.NewResponseController(w).EnableFullDuplex()
	in, ctx, cancel := s.body(w, r)
	defer cancel()

	var c *gcx.Corpus
	if isTarRequest(r) {
		c = gcx.CorpusTar(in)
	} else {
		c = gcx.CorpusConcat(in)
	}

	var (
		mw        *multipart.Writer
		committed bool
		failures  []string
	)
	// ensureEnvelope opens the multipart response exactly once — shared
	// by the first document part and the empty-corpus aggregate path.
	ensureEnvelope := func() {
		if mw != nil {
			return
		}
		mw = multipart.NewWriter(w)
		w.Header().Set("Trailer", "Gcx-Bulk-Stats")
		w.Header().Set("Content-Type", "multipart/mixed; boundary="+mw.Boundary())
	}
	abort := errors.New("bulk abort") // sentinel: status already decided
	bs, runErr := eng.Bulk(c, gcx.BulkOptions{
		Workers:     workers,
		MaxDocBytes: s.cfg.MaxDocBytes,
		Context:     ctx,
	}, func(d gcx.BulkDoc) error {
		s.m.bulkDocs.Add(1)
		if d.Err != nil {
			s.m.bulkDocErrors.Add(1)
			// The aggregate part's error list is capped: every failure is
			// still visible on its own part's Gcx-Error header, and an
			// adversarial corpus of millions of bad documents must not
			// grow request memory past the windowed bound.
			if len(failures) < maxBulkErrorList {
				failures = append(failures, gcx.BulkError(d))
			} else if len(failures) == maxBulkErrorList {
				failures = append(failures, "... further failures elided; see per-part Gcx-Error headers and the failed count")
			}
			var tooBig *gcx.DocTooLargeError
			if !committed && errors.As(d.Err, &tooBig) {
				// Nothing on the wire yet: a proper status line is still
				// possible, and a client that sent one oversized document
				// deserves a real 413, not a 200 with a buried error.
				s.fail(w, http.StatusRequestEntityTooLarge, d.Err)
				return abort
			}
		}
		s.m.record(d.Stats)
		// Per-document TTFR: a bulk run is many small solo runs, and each
		// document's first-result latency lands in the query's histogram.
		s.m.observeTTFR(queryLabel(r), d.Stats.TimeToFirstResultNanos)
		ensureEnvelope()
		h := textproto.MIMEHeader{}
		h.Set("Content-Type", "application/xml; charset=utf-8")
		h.Set("Gcx-Doc-Index", strconv.Itoa(d.Index))
		h.Set("Gcx-Doc-Name", d.Name)
		if b, err := json.Marshal(d.Stats); err == nil {
			h.Set("Gcx-Stats", string(b))
		}
		if d.Err != nil {
			h.Set("Gcx-Error", d.Err.Error())
		}
		// CreatePart writes the boundary, which commits the 200 status
		// line at the HTTP layer even when the write then fails — so the
		// commit flag must flip BEFORE the attempt, or the failure path
		// would try to write a second status line.
		committed = true
		p, err := mw.CreatePart(h)
		if err != nil {
			return err // client gone; unwind the pool
		}
		cw := &countingWriter{w: p, n: &s.m.bytesOut, ctx: ctx, flush: flusherOf(w)}
		if _, err := cw.Write(d.Output); err != nil {
			return err
		}
		// Each part is a complete per-document result: flush it across the
		// transport now, so a client consuming a long corpus sees document
		// K's answer when it is ready, not when document K+N fills a buffer.
		cw.FlushResult()
		return nil
	})
	s.m.bulkBusyNanos.Add(bs.BusyNanos)
	s.m.bulkWorkerNanos.Add(bs.WallNanos * int64(bs.Workers))

	if runErr != nil {
		if errors.Is(runErr, abort) {
			return // status already written
		}
		s.m.erroredRequests.Add(1)
		if !committed {
			// The stream broke before any document was served (body too
			// large, timeout, malformed first read): whole-request status.
			s.failCode(w, runErr)
			return
		}
		failures = append(failures, runErr.Error())
	}
	// Empty corpus: the envelope still opens, just for the aggregate.
	ensureEnvelope()

	sh := textproto.MIMEHeader{}
	sh.Set("Content-Type", "application/json")
	sh.Set("Gcx-Part", "stats")
	if sp, err := mw.CreatePart(sh); err == nil {
		writeJSONBody(sp, bulkResponse{Stats: bs, Errors: failures})
	}
	mw.Close()
	if b, err := json.Marshal(bs); err == nil {
		w.Header().Set("Gcx-Bulk-Stats", string(b))
	}
}

// maxBulkErrorList bounds the aggregate part's error list.
const maxBulkErrorList = 64

// isTarRequest reports whether the /bulk body is a tar archive: the
// parsed media type (not a substring — "multipart/form-data;
// boundary=tar0" is not tar) or an explicit ?format=tar.
func isTarRequest(r *http.Request) bool {
	if r.URL.Query().Get("format") == "tar" {
		return true
	}
	mt, _, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if err != nil {
		return false
	}
	return mt == "application/x-tar" || mt == "application/tar"
}

// bulkResponse is the aggregate (final) part of a /bulk response.
type bulkResponse struct {
	Stats  gcx.BulkStats `json:"stats"`
	Errors []string      `json:"errors,omitempty"`
}

// bulkWorkers resolves the effective worker count: the j= parameter
// clamped to [1, BulkWorkers] (BulkWorkers ≤ 0 means GOMAXPROCS). A j=
// that does not parse as a positive integer is a client error — silently
// running at the default would hide the typo.
func (s *Server) bulkWorkers(r *http.Request) (int, error) {
	limit := s.cfg.BulkWorkers
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	j := limit
	if v := r.URL.Query().Get("j"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return 0, fmt.Errorf("bad j= value %q: want a positive integer", v)
		}
		j = n
	}
	if j > limit {
		j = limit
	}
	return j, nil
}
