package projtree

import (
	"strings"
	"testing"

	"gcx/internal/xqast"
)

// build constructs the introduction's projection tree by hand (Figure 1).
func buildIntroTree() *Tree {
	t := New()
	bib := t.AddNode(t.Root, xqast.Step{Axis: xqast.Child, Test: xqast.NameTest("bib")})
	t.AddRole(bib, RoleBinding, "bib", false, "for $bib")
	star := t.AddNode(bib, xqast.Step{Axis: xqast.Child, Test: xqast.StarTest()})
	t.AddRole(star, RoleBinding, "x", false, "for $x")
	price := t.AddNode(star, xqast.Step{Axis: xqast.Child, Test: xqast.NameTest("price"), First: true})
	t.AddRole(price, RoleExists, "x", false, "exists($x/price)")
	dos := t.AddNode(star, xqast.Step{Axis: xqast.DescendantOrSelf, Test: xqast.NodeKindTest()})
	t.AddRole(dos, RoleOutput, "x", true, "$x")
	book := t.AddNode(bib, xqast.Step{Axis: xqast.Child, Test: xqast.NameTest("book")})
	t.AddRole(book, RoleBinding, "b", false, "for $b")
	title := t.AddNode(book, xqast.Step{Axis: xqast.Child, Test: xqast.NameTest("title")})
	tdos := t.AddNode(title, xqast.Step{Axis: xqast.DescendantOrSelf, Test: xqast.NodeKindTest()})
	t.AddRole(tdos, RoleOutput, "b", true, "$b/title")
	return t
}

func TestXPathNotation(t *testing.T) {
	tr := buildIntroTree()
	cases := map[int]string{
		0: "/",
		1: "/bib",
		2: "/bib/*",
		3: "/bib/*/price[1]",
		4: "/bib/*/dos::node()",
		5: "/bib/book",
		7: "/bib/book/title/dos::node()",
	}
	for id, want := range cases {
		if got := XPath(tr.Nodes[id]); got != want {
			t.Fatalf("XPath(n%d) = %q, want %q", id, got, want)
		}
	}
}

func TestPathToRoundTrip(t *testing.T) {
	tr := buildIntroTree()
	steps := PathTo(tr.Nodes[7])
	if len(steps) != 4 {
		t.Fatalf("PathTo depth %d, want 4", len(steps))
	}
	if steps[0].Test.Name != "bib" || steps[3].Axis != xqast.DescendantOrSelf {
		t.Fatalf("steps: %v", steps)
	}
	if len(PathTo(tr.Root)) != 0 {
		t.Fatal("PathTo(root) must be empty")
	}
}

func TestDosLeafDetection(t *testing.T) {
	tr := buildIntroTree()
	if !tr.Nodes[4].IsDosLeaf() || !tr.Nodes[7].IsDosLeaf() {
		t.Fatal("dos leaves not detected")
	}
	if tr.Nodes[2].IsDosLeaf() || tr.Root.IsDosLeaf() {
		t.Fatal("false dos leaf")
	}
}

func TestFormatShowsRolesAndFlags(t *testing.T) {
	tr := buildIntroTree()
	tr.Roles[2].Eliminated = true
	out := tr.Format()
	if !strings.Contains(out, "{r4 agg}") {
		t.Fatalf("aggregate flag missing:\n%s", out)
	}
	if !strings.Contains(out, "{r2 eliminated}") {
		t.Fatalf("eliminated flag missing:\n%s", out)
	}
	if !strings.Contains(out, "n3: /price[1]") {
		t.Fatalf("first-witness label missing:\n%s", out)
	}
}

func TestRoleTable(t *testing.T) {
	tr := buildIntroTree()
	if tr.ActiveRoleCount() != 6 {
		t.Fatalf("active roles %d, want 6", tr.ActiveRoleCount())
	}
	tr.Roles[1].Eliminated = true
	if tr.ActiveRoleCount() != 5 {
		t.Fatalf("active roles after elimination %d, want 5", tr.ActiveRoleCount())
	}
	if tr.Role(0) != nil || tr.Role(99) != nil {
		t.Fatal("out-of-range role lookups must return nil")
	}
	if tr.Role(3).Kind != RoleExists {
		t.Fatalf("role 3 kind %s", tr.Role(3).Kind)
	}
	table := tr.FormatRoles()
	if !strings.Contains(table, "exists") || !strings.Contains(table, "aggregate") {
		t.Fatalf("role table:\n%s", table)
	}
}
