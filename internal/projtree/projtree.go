// Package projtree defines projection trees and the role table
// (Section 2 of the paper).
//
// A projection tree is an unranked, unordered tree whose root is labeled "/"
// and whose inner nodes are labeled with location steps axis::x[p], where
// axis is child, descendant, or descendant-or-self, x is a tag name, "*",
// text(), or node(), and p is either true (omitted) or position()=1.
// Leaves labeled dos::node() denote that entire subtrees must be preserved.
//
// Each projection-tree node defines at most one role (the paper's function
// rpi); role-carrying matches make document nodes relevant for buffering,
// and signOff statements remove those roles again at runtime.
package projtree

import (
	"fmt"
	"sort"
	"strings"

	"gcx/internal/xqast"
)

// RoleKind records why a role exists; it drives signOff placement and the
// optimizations of Section 6.
type RoleKind uint8

const (
	// RoleBinding is a for-loop binding role: the nodes a variable
	// iterates over are relevant as iteration anchors.
	RoleBinding RoleKind = iota + 1
	// RoleExists keeps the first witness of an existence check ([1]
	// predicate, Definition 2 first bullet).
	RoleExists
	// RoleOutput keeps full subtrees that are copied to the output
	// (Definition 2, second and third bullets).
	RoleOutput
	// RoleCompare keeps full subtrees whose string values feed
	// comparisons.
	RoleCompare
)

// String names the role kind.
func (k RoleKind) String() string {
	switch k {
	case RoleBinding:
		return "binding"
	case RoleExists:
		return "exists"
	case RoleOutput:
		return "output"
	case RoleCompare:
		return "compare"
	default:
		return "kind?"
	}
}

// Role describes one role from the statically derived role table.
type Role struct {
	ID   xqast.Role
	Kind RoleKind
	// Var is the variable whose dependency (or binding) created the role.
	Var string
	// Aggregate marks roles assigned once at a subtree root instead of at
	// every subtree node (Section 6, "Aggregate Roles").
	Aggregate bool
	// Eliminated marks roles removed by redundant-role elimination
	// (Section 6): they are neither assigned during projection nor signed
	// off at runtime.
	Eliminated bool
	// Node is the projection-tree node that assigns this role.
	Node *Node
	// Desc is a human-readable origin, e.g. `exists($x/price)`.
	Desc string
}

// RoleRef is one (assigned role, cancellation chain) pair. A solo tree
// carries exactly one such pair per node (the Role/ChainRole fields); a
// shared merged tree (static.MergeTrees) collapses structurally identical
// nodes of different member queries into one node carrying the extra
// members' pairs as additional lanes.
type RoleRef struct {
	// Role is the role assigned to matching document nodes (0 if none).
	Role xqast.Role
	// Chain identifies the dependency chain for signOff cancellation.
	Chain xqast.Role
}

// Node is a projection-tree node.
type Node struct {
	ID     int
	Parent *Node
	// Step is the location step label. For the root node, Step is
	// meaningless and IsRoot is true.
	Step   xqast.Step
	IsRoot bool
	// Role is the role this node assigns to matching document nodes
	// (0 if none). Eliminated roles stay recorded here but are flagged in
	// the role table.
	Role xqast.Role
	// ChainRole identifies the dependency chain this node belongs to: for
	// nodes materialized from a dependency path it is the leaf's role; for
	// variable nodes it is the binding role. Used by signOff cancellation.
	ChainRole xqast.Role
	// Extra holds the role lanes of additional member queries sharing this
	// node in a merged tree (empty in solo trees). The projector treats
	// (Role, ChainRole) plus every Extra entry as independent lanes: role
	// assignment and signOff cancellation run per lane, while matching,
	// [1] witnesses, and the structural guard run once on the shared node.
	Extra []RoleRef
	// Var is the variable this node binds (variable nodes only).
	Var string
	// AnchorSelf marks nodes whose match instances anchor signOff
	// cancellation at their own frame: the root and straight variables
	// (fsa($x) = $x). Dependency chains inherit their anchor from the
	// nearest such ancestor instance.
	AnchorSelf bool
	Children   []*Node
}

// IsDosLeaf reports whether the node is a descendant-or-self::node() leaf
// (whole-subtree preservation).
func (n *Node) IsDosLeaf() bool {
	return !n.IsRoot && n.Step.Axis == xqast.DescendantOrSelf && n.Step.Test.Kind == xqast.TestNode
}

// Label renders the node's step label in the paper's notation.
func (n *Node) Label() string {
	if n.IsRoot {
		return "/"
	}
	switch n.Step.Axis {
	case xqast.Child:
		s := "/" + n.Step.Test.String()
		if n.Step.First {
			s += "[1]"
		}
		return s
	case xqast.Descendant:
		s := "//" + n.Step.Test.String()
		if n.Step.First {
			s += "[1]"
		}
		return s
	default:
		return "dos::" + n.Step.Test.String()
	}
}

// Tree is a projection tree plus its role table.
type Tree struct {
	Root  *Node
	Nodes []*Node // all nodes, indexed by ID
	// Roles is indexed by role ID (entry 0 unused).
	Roles []*Role
}

// New returns a tree containing only the root node.
func New() *Tree {
	root := &Node{ID: 0, IsRoot: true, AnchorSelf: true}
	return &Tree{Root: root, Nodes: []*Node{root}, Roles: []*Role{nil}}
}

// AddNode appends a child node under parent with the given step.
func (t *Tree) AddNode(parent *Node, step xqast.Step) *Node {
	n := &Node{ID: len(t.Nodes), Parent: parent, Step: step}
	t.Nodes = append(t.Nodes, n)
	parent.Children = append(parent.Children, n)
	return n
}

// AddRole allocates a role and attaches it to node n.
func (t *Tree) AddRole(n *Node, kind RoleKind, v string, aggregate bool, desc string) *Role {
	r := &Role{
		ID:        xqast.Role(len(t.Roles)),
		Kind:      kind,
		Var:       v,
		Aggregate: aggregate,
		Node:      n,
		Desc:      desc,
	}
	t.Roles = append(t.Roles, r)
	n.Role = r.ID
	return r
}

// Role returns the role with the given ID, or nil.
func (t *Tree) Role(id xqast.Role) *Role {
	if id <= 0 || int(id) >= len(t.Roles) {
		return nil
	}
	return t.Roles[id]
}

// ActiveRoleCount returns the number of non-eliminated roles.
func (t *Tree) ActiveRoleCount() int {
	n := 0
	for _, r := range t.Roles[1:] {
		if !r.Eliminated {
			n++
		}
	}
	return n
}

// PathTo returns the steps from the root to n.
func PathTo(n *Node) []xqast.Step {
	var rev []xqast.Step
	for cur := n; cur != nil && !cur.IsRoot; cur = cur.Parent {
		rev = append(rev, cur.Step)
	}
	steps := make([]xqast.Step, len(rev))
	for i := range rev {
		steps[i] = rev[len(rev)-1-i]
	}
	return steps
}

// XPath renders the absolute XPath of n in the paper's abbreviated
// notation, e.g. "/bib/*/price[1]" or "/book/title/dos::node()".
func XPath(n *Node) string {
	if n.IsRoot {
		return "/"
	}
	var b strings.Builder
	for _, s := range PathTo(n) {
		switch s.Axis {
		case xqast.Child:
			b.WriteByte('/')
		case xqast.Descendant:
			b.WriteString("//")
		case xqast.DescendantOrSelf:
			b.WriteString("/dos::")
			b.WriteString(s.Test.String())
			if s.First {
				b.WriteString("[1]")
			}
			continue
		}
		b.WriteString(s.Test.String())
		if s.First {
			b.WriteString("[1]")
		}
	}
	return b.String()
}

// Format renders the tree with one node per line, children indented, roles
// in braces — the textual analogue of the paper's Figure 1. Children are
// printed in insertion order (variable nodes before dependency chains).
func (t *Tree) Format() string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		for i := 0; i < depth; i++ {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "n%d: %s", n.ID, n.Label())
		if n.Role != 0 {
			r := t.Roles[n.Role]
			status := ""
			if r.Aggregate {
				status = " agg"
			}
			if r.Eliminated {
				status += " eliminated"
			}
			fmt.Fprintf(&b, "  {r%d%s}", n.Role, status)
		}
		for _, l := range n.Extra {
			// Shared merged trees only: one lane per additional member
			// query sharing this node.
			if l.Role != 0 {
				fmt.Fprintf(&b, "  +{r%d c%d}", l.Role, l.Chain)
			} else {
				fmt.Fprintf(&b, "  +{c%d}", l.Chain)
			}
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(t.Root, 0)
	return b.String()
}

// FormatRoles renders the role table sorted by ID, for diagnostics and
// golden tests.
func (t *Tree) FormatRoles() string {
	roles := append([]*Role(nil), t.Roles[1:]...)
	sort.Slice(roles, func(i, j int) bool { return roles[i].ID < roles[j].ID })
	var b strings.Builder
	for _, r := range roles {
		flags := ""
		if r.Aggregate {
			flags += " aggregate"
		}
		if r.Eliminated {
			flags += " eliminated"
		}
		fmt.Fprintf(&b, "r%-3d %-8s $%-8s %s%s\n", r.ID, r.Kind, r.Var, r.Desc, flags)
	}
	return b.String()
}
