// Package noallocbad seeds one violation of each noalloccheck rule.
package noallocbad

import (
	"fmt"
	"strings"
)

type hot struct {
	scratch []byte
}

//gcxlint:allocok test sink, not part of the hot path
func sink(v any) { _ = v }

func plain(b []byte) int { return len(b) }

//gcxlint:noalloc
func (h *hot) step(window []byte) {
	m := make(map[string]int) // want `make allocates`
	_ = m
	p := new(hot) // want `new allocates`
	_ = p
	xs := []int{1, 2, 3} // want `slice or map literal allocates`
	_ = xs
	kv := map[string]string{} // want `slice or map literal allocates`
	_ = kv
	hp := &hot{} // want `address of composite literal escapes to the heap`
	_ = hp
	f := func() {} // want `func literal allocates a closure`
	f()
	s := string(window) // want `string conversion allocates and copies`
	_ = s
	b := []byte(s) // want `string conversion allocates and copies`
	_ = b
	fmt.Println(len(window)) // want `call to fmt\.Println allocates`
	c := strings.Clone(s)    // want `call to strings\.Clone allocates`
	_ = c
	var sb strings.Builder // want `strings\.Builder grows by allocating`
	_ = sb
	sink(42) // want `interface boxing of int allocates`
}

//gcxlint:noalloc
func spawn() {
	go work() // want `go statement allocates a goroutine`
}

//gcxlint:noalloc
func work() {}

//gcxlint:noalloc
func localGrowth(n int) int {
	var acc []int // locally born: nil backing
	for i := 0; i < n; i++ {
		acc = append(acc, i) // want `append to function-local slice acc allocates`
	}
	return len(acc)
}

//gcxlint:noalloc
func cascade(b []byte) int {
	return plain(b) // want `call to plain, which is neither //gcxlint:noalloc nor declared //gcxlint:allocok`
}

//gcxlint:noalloc
func bareSuppression() {
	//gcxlint:allocok
	x := make([]int, 4) // want `//gcxlint:allocok requires a reason`
	_ = x
}

//gcxlint:allocok
func bareDeclSuppression() {} // want `declaration-level //gcxlint:allocok on bareDeclSuppression requires a reason`

// histo models the observability latency histogram: its recording path
// is annotated allocation-free, and the violations below are exactly the
// regressions internal/obs.Histogram.Observe must never reintroduce —
// lazy bucket allocation and per-sample label formatting.
type histo struct {
	counts map[string]int64
}

//gcxlint:noalloc
func (h *histo) observe(label string, nanos int64) {
	if h.counts == nil {
		h.counts = make(map[string]int64) // want `make allocates`
	}
	key := fmt.Sprintf("%s_seconds", label) // want `call to fmt\.Sprintf allocates`
	h.counts[key] += nanos
}

// structIdx models the tokenizer's structural-index classification
// chain (internal/xmlstream.StructIndex): Build runs inside fill() on
// every window slide, so it must reuse its words slice rather than
// re-making the bitmap per pass — the violation below is exactly the
// regression that would put one allocation on every refill.
type structIdx struct {
	words []uint64
}

//gcxlint:noalloc
func (ix *structIdx) build(window []byte) {
	bm := make([]uint64, (len(window)+63)/64) // want `make allocates`
	for i, c := range window {
		if c == '<' || c == '>' || c == '&' || c == '"' || c == '\'' {
			bm[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	ix.words = bm
}

// emitter models the earliest-answering emit path: the writer's
// first-byte stamp (xmlstream.Writer.stampFirst) runs on every emitted
// string and the positive-only histogram feed
// (obs.Histogram.ObservePositive) runs on every recorded run, so both
// must be plain stores and annotated callees all the way down. The
// violations below are the regressions that would put an allocation on
// every output byte or route recording through an unvetted helper.
type emitter struct {
	first    int64
	firstTag string
}

//gcxlint:noalloc
func (e *emitter) stampFirst(now int64, tag []byte) {
	if e.first != 0 {
		return
	}
	e.first = now
	e.firstTag = string(tag) // want `string conversion allocates and copies`
}

func isResult(nanos int64) bool { return nanos > 0 }

//gcxlint:noalloc
func (e *emitter) observePositive(nanos int64) {
	if !isResult(nanos) { // want `call to isResult, which is neither //gcxlint:noalloc nor declared //gcxlint:allocok`
		return
	}
	e.first = nanos
}
