// Package noallocok exercises the constructs a //gcxlint:noalloc
// function may legitimately contain; noalloccheck must stay silent here.
package noallocok

type scanner struct {
	buf    []byte
	names  map[string]string
	outBuf []int
}

// helper is itself part of the annotated hot path.
//
//gcxlint:noalloc
func (s *scanner) helper(b byte) bool { return b == '<' }

// fail is an error-path constructor: declaration-level allocok lets
// noalloc callers reach it without per-site suppressions.
//
//gcxlint:allocok error construction terminates the scan
func (s *scanner) fail(msg string) error {
	return &scanError{msg: msg}
}

type scanError struct{ msg string }

func (e *scanError) Error() string { return e.msg }

// scan stays allocation-free: appends target pooled field scratch,
// conversions sit in compare-only positions, helpers are annotated.
//
//gcxlint:noalloc
func (s *scanner) scan(window []byte, dst []int) ([]int, error) {
	// Appending to a field or a reslice of it is pooled scratch.
	s.buf = append(s.buf[:0], window...)
	// Appending to a parameter leaves ownership with the caller.
	dst = append(dst, len(window))
	// Map index keyed by a conversion does not materialize the string.
	if v, ok := s.names[string(window)]; ok {
		_ = v
	}
	// Comparison operands do not materialize either.
	if string(window) == "gcx" {
		return dst, nil
	}
	// Nor do switch tags.
	switch string(window) {
	case "a", "b":
		return dst, nil
	}
	if !s.helper(window[0]) {
		return dst, s.fail("unexpected byte")
	}
	// defer is open-coded; len/cap/copy are free.
	defer func() {}() //gcxlint:allocok teardown hook runs once per document, off the token loop
	n := copy(s.buf, window)
	_ = n
	return dst, nil
}

// interning performs the deliberate once-per-name copy, suppressed with
// a reason on the allocation line.
//
//gcxlint:noalloc
func (s *scanner) interning(name []byte) string {
	if owned, ok := s.names[string(name)]; ok {
		return owned
	}
	owned := string(name) //gcxlint:allocok interning copies each distinct name exactly once
	s.names[owned] = owned
	return owned
}

// pointerArgs passes pointer-shaped values to interface parameters,
// which the interface word holds without boxing.
//
//gcxlint:noalloc
func pointerArgs(sink interface{ accept(any) }, s *scanner) {
	sink.accept(s)
	sink.accept(nil)
}
