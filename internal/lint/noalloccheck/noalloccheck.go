// Package noalloccheck turns the repo's whole-run AllocsPerRun gates into
// line-level findings: a function annotated //gcxlint:noalloc (the
// tokenizer scan loop, projector transition, evaluator step, and
// buffer-arena fast paths) is flagged for every allocating construct it
// contains.
//
// Flagged constructs: make/new, slice and map literals, &composite
// literals, func literals, go statements, string↔[]byte conversions,
// fmt.* and other known allocating calls, strings.Builder/bytes.Buffer
// declarations, interface boxing of concrete values at call sites, and
// append onto a function-local slice (pooled scratch lives in fields or
// parameters, which stay exempt).
//
// Two escapes exist, both requiring a reason. A deliberate allocation
// site (an interning copy, a cold path) carries //gcxlint:allocok
// <reason> on its line; a same-package helper that is *allowed* to
// allocate when called from noalloc code (an error constructor) carries
// the same directive on its declaration. Conversions used only for
// comparison — map index keys, switch tags, == operands — are exempt
// because the compiler does not materialize them.
//
// Calls to same-package functions must themselves be //gcxlint:noalloc
// (or declaration-level allocok): the annotation is made to spread along
// the hot path, which is exactly how the hot path stays documented.
// Cross-package and dynamic calls are outside the package-local horizon.
package noalloccheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gcx/internal/lint/gcxlint"
)

// Analyzer is the noalloccheck pass.
var Analyzer = &gcxlint.Analyzer{
	Name: "noalloccheck",
	Doc:  "functions annotated //gcxlint:noalloc must not contain allocating constructs",
	Run:  run,
}

func run(pass *gcxlint.Pass) error {
	c := &checker{pass: pass, decls: make(map[types.Object]*ast.FuncDecl)}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				c.decls[obj] = fd
			}
			// Validate declaration-level allocok reasons everywhere,
			// not just on called functions.
			for _, dir := range gcxlint.Directives(fd.Doc) {
				if dir.Verb == "allocok" && dir.Args == "" {
					pass.Reportf(fd.Name.Pos(), "declaration-level //gcxlint:allocok on %s requires a reason", fd.Name.Name)
				}
			}
		}
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil && hasDirective(fd, "noalloc") {
				c.checkFunc(fd)
			}
		}
	}
	return nil
}

func isTestFile(pass *gcxlint.Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
}

func hasDirective(fd *ast.FuncDecl, verb string) bool {
	for _, d := range gcxlint.Directives(fd.Doc) {
		if d.Verb == verb {
			return true
		}
	}
	return false
}

type checker struct {
	pass  *gcxlint.Pass
	decls map[types.Object]*ast.FuncDecl
	born  map[types.Object]bool // current function's locally-born slices
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	exemptConv := collectComparisonPositions(fd.Body)
	c.born = collectLocallyBorn(c.pass, fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			c.report(x.Pos(), "go statement allocates a goroutine")
		case *ast.FuncLit:
			c.report(x.Pos(), "func literal allocates a closure")
		case *ast.ValueSpec:
			c.checkBuilderDecl(x)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					c.report(x.Pos(), "address of composite literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			if tv, ok := c.pass.TypesInfo.Types[x]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					c.report(x.Pos(), "slice or map literal allocates")
				}
			}
		case *ast.CallExpr:
			c.checkCall(x, exemptConv)
		}
		return true
	})
}

// checkCall dispatches the call-shaped rules: conversions, builtins,
// known allocators, boxing, and the same-package annotation cascade.
func (c *checker) checkCall(call *ast.CallExpr, exemptConv map[ast.Expr]bool) {
	// Type conversion.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if exemptConv[call] {
			return
		}
		src := c.pass.TypesInfo.Types[call.Args[0]].Type
		dst := tv.Type
		if stringSliceConversion(src, dst) {
			c.report(call.Pos(), "string conversion allocates and copies")
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				c.report(call.Pos(), "make allocates")
			case "new":
				c.report(call.Pos(), "new allocates")
			case "append":
				c.checkAppend(call)
			}
			return
		}
	}

	obj := calleeObject(c.pass, call)
	if fn, ok := obj.(*types.Func); ok {
		if pkg := fn.Pkg(); pkg != nil {
			if pkg.Path() == "fmt" {
				c.report(call.Pos(), "call to fmt.%s allocates", fn.Name())
				return
			}
			if allocatingCalls[pkg.Path()+"."+fn.Name()] {
				c.report(call.Pos(), "call to %s.%s allocates", pkg.Path(), fn.Name())
				return
			}
			if pkg == c.pass.Pkg {
				if fd, ok := c.decls[obj]; ok {
					if !hasDirective(fd, "noalloc") && !hasDirective(fd, "allocok") {
						c.report(call.Pos(), "call to %s, which is neither //gcxlint:noalloc nor declared //gcxlint:allocok", fn.Name())
						return
					}
				}
			}
		}
	}

	c.checkBoxing(call)
}

// checkAppend flags appends whose destination slice was born inside this
// function: growing a local slice is an allocation treadmill, whereas
// appending into pooled scratch (a field, a parameter, or a reslice of
// either) amortizes to zero.
func (c *checker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	root, born := c.appendDest(call.Args[0])
	if born {
		c.report(call.Pos(), "append to function-local slice %s allocates; reuse pooled scratch (a field or parameter)", root)
	}
}

// appendDest resolves the append destination to its root object and
// reports whether that object is a function-local slice (see
// collectLocallyBorn).
func (c *checker) appendDest(e ast.Expr) (string, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			obj := c.pass.TypesInfo.Uses[x]
			if obj == nil {
				return x.Name, false
			}
			return x.Name, c.born[obj]
		default:
			return "", false
		}
	}
}

// checkBuilderDecl flags declarations of growable buffer types; their
// write methods allocate as they grow.
func (c *checker) checkBuilderDecl(vs *ast.ValueSpec) {
	for _, name := range vs.Names {
		obj := c.pass.TypesInfo.Defs[name]
		if obj == nil {
			continue
		}
		t := obj.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			key := ""
			if named.Obj().Pkg() != nil {
				key = named.Obj().Pkg().Path() + "." + named.Obj().Name()
			}
			if key == "strings.Builder" || key == "bytes.Buffer" {
				c.report(name.Pos(), "%s grows by allocating", key)
			}
		}
	}
}

// checkBoxing flags concrete non-pointer values converted to interface
// parameters at a call: the conversion heap-allocates the value.
func (c *checker) checkBoxing(call *ast.CallExpr) {
	tv, ok := c.pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		param := paramType(sig, i, call.Ellipsis.IsValid())
		if param == nil {
			continue
		}
		if _, isIface := param.Underlying().(*types.Interface); !isIface {
			continue
		}
		at, ok := c.pass.TypesInfo.Types[arg]
		if !ok || at.IsNil() {
			continue
		}
		argType := at.Type
		switch argType.Underlying().(type) {
		case *types.Pointer, *types.Interface, *types.Chan, *types.Map, *types.Signature:
			// Pointer-shaped: stored directly in the interface word.
			continue
		}
		c.report(arg.Pos(), "interface boxing of %s allocates at this call", argType)
	}
}

// paramType returns the static parameter type for argument i, expanding
// the variadic tail.
func paramType(sig *types.Signature, i int, ellipsis bool) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		last := sig.Params().At(n - 1).Type()
		if ellipsis {
			return last
		}
		if s, ok := last.Underlying().(*types.Slice); ok {
			return s.Elem()
		}
		return last
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

// allocatingCalls names stdlib functions that always allocate their
// result; fmt.* is handled wholesale.
var allocatingCalls = map[string]bool{
	"strings.Clone":      true,
	"strings.Join":       true,
	"strings.Repeat":     true,
	"strings.Replace":    true,
	"strings.ReplaceAll": true,
	"strings.ToUpper":    true,
	"strings.ToLower":    true,
	"strings.Fields":     true,
	"strings.Split":      true,
	"bytes.Clone":        true,
	"bytes.Join":         true,
	"errors.New":         true,
	"errors.Join":        true,
	"strconv.Itoa":       true,
	"strconv.Quote":      true,
	"strconv.FormatInt":  true,
	"strconv.FormatUint": true,
}

func stringSliceConversion(src, dst types.Type) bool {
	return (isString(src) && isCharSlice(dst)) || (isCharSlice(src) && isString(dst))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isCharSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

// collectComparisonPositions gathers conversion call nodes that sit in
// compare-only positions — map index keys, switch tags, and ==/!=/</>
// operands — where the compiler elides the copy.
func collectComparisonPositions(body *ast.BlockStmt) map[ast.Expr]bool {
	exempt := make(map[ast.Expr]bool)
	mark := func(e ast.Expr) {
		if e == nil {
			return
		}
		exempt[ast.Unparen(e)] = true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.IndexExpr:
			mark(x.Index)
		case *ast.BinaryExpr:
			switch x.Op {
			case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
				mark(x.X)
				mark(x.Y)
			}
		case *ast.SwitchStmt:
			mark(x.Tag)
		}
		return true
	})
	return exempt
}

// collectLocallyBorn finds local slice variables every one of whose
// bindings allocates fresh backing (nil declaration, make, literal, or
// an append chain rooted in one); appends to these can never amortize.
func collectLocallyBorn(pass *gcxlint.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	born := make(map[types.Object]bool)
	doomed := make(map[types.Object]bool) // saw a non-born binding

	var exprBorn func(e ast.Expr) bool
	exprBorn = func(e ast.Expr) bool {
		switch x := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					switch id.Name {
					case "make":
						return true
					case "append":
						if len(x.Args) > 0 {
							return exprBorn(x.Args[0])
						}
					}
				}
			}
			return false
		case *ast.CompositeLit:
			return true
		case *ast.SliceExpr:
			return exprBorn(x.X)
		case *ast.Ident:
			if x.Name == "nil" {
				return true
			}
			obj := pass.TypesInfo.Uses[x]
			return obj != nil && born[obj]
		}
		return false
	}

	bind := func(id *ast.Ident, b bool) {
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			return
		}
		if _, ok := obj.Type().Underlying().(*types.Slice); !ok {
			return
		}
		if b && !doomed[obj] {
			born[obj] = true
		} else {
			doomed[obj] = true
			delete(born, obj)
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if i < len(x.Rhs) {
					bind(id, exprBorn(x.Rhs[i]))
				} else {
					bind(id, false) // tuple assignment from a call
				}
			}
		case *ast.ValueSpec:
			for i, id := range x.Names {
				if i < len(x.Values) {
					bind(id, exprBorn(x.Values[i]))
				} else {
					bind(id, true) // var x []T — nil backing
				}
			}
		}
		return true
	})
	return born
}

func calleeObject(pass *gcxlint.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

// report emits a diagnostic unless an //gcxlint:allocok suppression with
// a reason covers the line.
func (c *checker) report(pos token.Pos, format string, args ...any) {
	if d, ok := c.pass.Suppression("allocok", pos); ok {
		if d.Args == "" {
			c.pass.Reportf(pos, "//gcxlint:allocok requires a reason")
		}
		return
	}
	c.pass.Reportf(pos, format, args...)
}
