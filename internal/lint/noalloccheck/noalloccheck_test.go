package noalloccheck_test

import (
	"testing"

	"gcx/internal/lint/gcxlint/linttest"
	"gcx/internal/lint/noalloccheck"
)

func TestNoAllocCheck(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), noalloccheck.Analyzer, "noallocok", "noallocbad")
}
