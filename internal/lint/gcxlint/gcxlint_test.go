package gcxlint_test

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gcx/internal/lint/gcxlint"
)

// writePkg lays out a GOPATH-style src tree under a temp dir and returns
// the src root.
func writePkg(t *testing.T, importPath, src string) string {
	t.Helper()
	root := filepath.Join(t.TempDir(), "src")
	dir := filepath.Join(root, filepath.FromSlash(importPath))
	if err := os.MkdirAll(dir, 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	return root
}

// A misspelled directive verb must be a finding in its own right: a typo
// like //gcxlint:kep would otherwise silently disable the escape hatch
// it was meant to be.
func TestUnknownDirectiveVerb(t *testing.T) {
	root := writePkg(t, "m", `package m

//gcxlint:kep buf some reason
type s struct{ buf []byte }
`)
	fset := token.NewFileSet()
	lp, err := gcxlint.LoadDir(fset, root, "m", false)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := gcxlint.RunAnalyzers(fset, lp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, `unknown gcxlint directive verb "kep"`) {
		t.Fatalf("want one unknown-verb diagnostic, got %+v", diags)
	}
}

// Known verbs must not trip the hygiene check, and analyzer suffix
// matching must see through testdata-style prefixes.
func TestKnownVerbAndSuffixMatch(t *testing.T) {
	root := writePkg(t, "fake/internal/xmlstream", `package xmlstream

//gcxlint:noalloc
func hot() {}
`)
	fset := token.NewFileSet()
	lp, err := gcxlint.LoadDir(fset, root, "fake/internal/xmlstream", false)
	if err != nil {
		t.Fatal(err)
	}
	var sawSuffix bool
	probe := &gcxlint.Analyzer{
		Name: "probe",
		Doc:  "records suffix matching",
		Run: func(pass *gcxlint.Pass) error {
			sawSuffix = pass.PathHasSuffix("internal/xmlstream")
			if pass.PathHasSuffix("ternal/xmlstream") {
				return nil // non-boundary suffixes must not match, checked below
			}
			return nil
		},
	}
	diags, err := gcxlint.RunAnalyzers(fset, lp, []*gcxlint.Analyzer{probe})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("no diagnostics expected, got %+v", diags)
	}
	if !sawSuffix {
		t.Fatal("PathHasSuffix(internal/xmlstream) = false for fake/internal/xmlstream")
	}
}

func TestPathSuffixBoundary(t *testing.T) {
	root := writePkg(t, "notinternal/xmlstream", `package xmlstream`)
	fset := token.NewFileSet()
	lp, err := gcxlint.LoadDir(fset, root, "notinternal/xmlstream", false)
	if err != nil {
		t.Fatal(err)
	}
	probe := &gcxlint.Analyzer{
		Name: "probe",
		Doc:  "suffix matching respects path segment boundaries",
		Run: func(pass *gcxlint.Pass) error {
			if pass.PathHasSuffix("internal/xmlstream") {
				t.Error("notinternal/xmlstream must not match suffix internal/xmlstream")
			}
			return nil
		},
	}
	if _, err := gcxlint.RunAnalyzers(fset, lp, []*gcxlint.Analyzer{probe}); err != nil {
		t.Fatal(err)
	}
}
