package gcxlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// A Directive is one parsed //gcxlint:<verb> [args] comment. The grammar
// (documented in DESIGN.md) is deliberately tiny:
//
//	//gcxlint:keep <field> <reason>   resetcheck: field intentionally not reset
//	//gcxlint:noreset <reason>        resetcheck: pooled type intentionally has no Reset
//	//gcxlint:noalloc                 noalloccheck: function must not allocate
//	//gcxlint:allocok <reason>        noalloccheck: permit this line / calls to this decl
//	//gcxlint:borrowed                borrowcheck: func's string/[]byte/Token params+results are borrowed
//	//gcxlint:borrowok <reason>       borrowcheck: permit this retention
//	//gcxlint:solorole <reason>       roleoffsetcheck: permit this untranslated role
//
// Every suppression verb requires a human-readable reason; analyzers
// report annotations whose reason is missing.
type Directive struct {
	Verb string
	Args string // raw remainder, space-trimmed
	Pos  token.Pos
}

const directivePrefix = "//gcxlint:"

var knownVerbs = map[string]bool{
	"keep":     true,
	"noreset":  true,
	"noalloc":  true,
	"allocok":  true,
	"borrowed": true,
	"borrowok": true,
	"solorole": true,
}

// parseDirective parses a single comment, returning ok=false if it is not
// a gcxlint directive.
func parseDirective(c *ast.Comment) (Directive, bool) {
	text, found := strings.CutPrefix(c.Text, directivePrefix)
	if !found {
		return Directive{}, false
	}
	verb, args, _ := strings.Cut(text, " ")
	return Directive{Verb: strings.TrimSpace(verb), Args: strings.TrimSpace(args), Pos: c.Pos()}, true
}

// Directives returns the gcxlint directives attached to a comment group
// (a declaration doc comment or a struct field's doc/line comment).
func Directives(groups ...*ast.CommentGroup) []Directive {
	var ds []Directive
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if d, ok := parseDirective(c); ok {
				ds = append(ds, d)
			}
		}
	}
	return ds
}

// directiveIndex locates directives by file line so analyzers can honor
// end-of-line and preceding-line suppressions without re-walking comments.
type directiveIndex struct {
	byLine  map[string]map[int][]Directive
	unknown []Diagnostic
}

func indexDirectives(fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{byLine: make(map[string]map[int][]Directive)}
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				d, ok := parseDirective(c)
				if !ok {
					continue
				}
				if !knownVerbs[d.Verb] {
					idx.unknown = append(idx.unknown, Diagnostic{
						Pos:      d.Pos,
						Message:  fmt.Sprintf("unknown gcxlint directive verb %q", d.Verb),
						Analyzer: "gcxlint",
					})
					continue
				}
				pos := fset.Position(d.Pos)
				lines := idx.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]Directive)
					idx.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], d)
			}
		}
	}
	return idx
}

// Suppression returns the directive with the given verb that covers pos:
// one on the same source line (end-of-line comment) or on the line
// immediately above (own-line comment).
func (p *Pass) Suppression(verb string, pos token.Pos) (Directive, bool) {
	position := p.Fset.Position(pos)
	lines := p.directives.byLine[position.Filename]
	for _, line := range [2]int{position.Line, position.Line - 1} {
		for _, d := range lines[line] {
			if d.Verb == verb {
				return d, true
			}
		}
	}
	return Directive{}, false
}
