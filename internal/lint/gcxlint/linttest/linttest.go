// Package linttest runs a gcxlint analyzer over GOPATH-style testdata
// packages and checks its diagnostics against `// want "regexp"` comments,
// mirroring golang.org/x/tools/go/analysis/analysistest.
//
// An expectation comment attaches to its own source line:
//
//	p.lastToken = tk // want `borrowed .* stored in struct field`
//
// Every diagnostic must match exactly one pending expectation on its line,
// and every expectation must be consumed, so both false positives and
// false negatives fail the test.
package linttest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"gcx/internal/lint/gcxlint"
)

// TestData returns the absolute path of the package's testdata directory.
func TestData(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// Run loads each import path from testdata/src, applies the analyzer, and
// verifies its diagnostics against the // want comments in the sources.
func Run(t *testing.T, testdata string, a *gcxlint.Analyzer, importPaths ...string) {
	t.Helper()
	for _, path := range importPaths {
		path := path
		t.Run(path, func(t *testing.T) {
			t.Helper()
			runOne(t, testdata, a, path)
		})
	}
}

type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

func runOne(t *testing.T, testdata string, a *gcxlint.Analyzer, importPath string) {
	t.Helper()
	fset := token.NewFileSet()
	lp, err := gcxlint.LoadDir(fset, filepath.Join(testdata, "src"), importPath, false)
	if err != nil {
		t.Fatalf("loading %s: %v", importPath, err)
	}

	var wants []*expectation
	for _, f := range lp.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, found := strings.CutPrefix(text, "want ")
				if !found {
					continue
				}
				pos := fset.Position(c.Pos())
				for rest = strings.TrimSpace(rest); rest != ""; rest = strings.TrimSpace(rest) {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s: malformed want comment %q: %v", pos, c.Text, err)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: malformed want pattern %s: %v", pos, q, err)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, rx: rx, raw: pat})
					rest = rest[len(q):]
				}
			}
		}
	}

	diags, err := gcxlint.RunAnalyzers(fset, lp, []*gcxlint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, importPath, err)
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if w.matched || w.file != pos.Filename || w.line != pos.Line || !w.rx.MatchString(d.Message) {
				continue
			}
			w.matched = true
			found = true
			break
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", pos, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched pending expectation %q", w.file, w.line, w.raw)
		}
	}
}
