// Package gcxlint is a minimal, dependency-free analysis framework in the
// spirit of golang.org/x/tools/go/analysis, hosting the repo-specific
// analyzers that statically prove the engine's pooling, zero-copy, and
// hot-path invariants (see DESIGN.md, "Static invariant checking").
//
// The framework exists because this repository builds offline: it cannot
// depend on x/tools, but the `go vet -vettool=` driver protocol is stable
// and small, so unit.go implements it directly against the standard
// library's go/parser, go/types, and go/importer. Analyzers written
// against Analyzer/Pass here look like ordinary go/analysis passes and
// could be ported to x/tools with mechanical changes only.
package gcxlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Unlike x/tools analyzers, there is
// no Requires/Facts machinery: every gcxlint analyzer is package-local by
// design (cross-package contracts are expressed through annotations on the
// declarations that cross the boundary).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run executes the analyzer on one package.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an analyzer,
// mirroring analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers a diagnostic to the driver.
	Report func(Diagnostic)

	directives *directiveIndex
}

// Diagnostic is a finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// PathHasSuffix reports whether the package under analysis has the given
// import-path suffix ("internal/xmlstream" matches both the real package
// and a testdata mirror like "gcxtest/internal/xmlstream"). Analyzers use
// suffix matching so their seeded-violation fixtures can impersonate the
// real packages.
func (p *Pass) PathHasSuffix(suffix string) bool {
	path := p.Pkg.Path()
	if path == suffix {
		return true
	}
	return len(path) > len(suffix) && path[len(path)-len(suffix)-1] == '/' && path[len(path)-len(suffix):] == suffix
}

// RunAnalyzers executes the analyzers over a package loaded with LoadDir
// and returns the diagnostics in report order. It is the entry point for
// linttest and standalone -dir mode.
func RunAnalyzers(fset *token.FileSet, lp *LoadedPackage, analyzers []*Analyzer) ([]Diagnostic, error) {
	return runPackage(fset, lp.Files, lp.Pkg, lp.Info, analyzers)
}

// runPackage executes each analyzer over one loaded package and returns
// the diagnostics in report order.
func runPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	idx := indexDirectives(fset, files)
	diags = append(diags, idx.unknown...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			Report:     func(d Diagnostic) { diags = append(diags, d) },
			directives: idx,
		}
		if err := a.Run(pass); err != nil {
			return diags, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	return diags, nil
}
