package gcxlint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadedPackage is one package typechecked from source by LoadDir.
type LoadedPackage struct {
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// LoadDir parses and typechecks the package at srcRoot/importPath without
// export data or the go command. Imports resolve against sibling
// directories under srcRoot first (GOPATH-style, the testdata layout) and
// fall back to compiling the standard library from GOROOT source, which
// works offline. Test files are included only when includeTests is set
// and only for the root package.
func LoadDir(fset *token.FileSet, srcRoot, importPath string, includeTests bool) (*LoadedPackage, error) {
	ld := &dirLoader{
		fset: fset,
		root: srcRoot,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*types.Package),
	}
	return ld.load(importPath, includeTests)
}

type dirLoader struct {
	fset *token.FileSet
	root string
	std  types.Importer
	pkgs map[string]*types.Package
}

// Import resolves an import for a package being loaded: srcRoot siblings
// first, then the standard library.
func (l *dirLoader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		lp, err := l.load(path, false)
		if err != nil {
			return nil, err
		}
		return lp.Pkg, nil
	}
	return l.std.Import(path)
}

func (l *dirLoader) load(importPath string, includeTests bool) (*LoadedPackage, error) {
	dir := filepath.Join(l.root, filepath.FromSlash(importPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(names)

	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	tc := &types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	info := newTypesInfo()
	pkg, err := tc.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	l.pkgs[importPath] = pkg
	return &LoadedPackage{Files: files, Pkg: pkg, Info: info}, nil
}
