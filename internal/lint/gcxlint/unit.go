package gcxlint

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
)

// vetConfig is the JSON configuration `go vet -vettool=` writes for each
// compilation unit, as defined by the unitchecker protocol
// (golang.org/x/tools/go/analysis/unitchecker). Fields this driver does
// not consult are retained so the full file decodes cleanly.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main implements the vettool side of the unitchecker protocol for the
// given analyzers, plus a standalone -dir source mode used by tests and
// the CI self-check (testdata packages are invisible to `go vet`).
//
// Protocol summary (stable since Go 1.12):
//
//	gcxlint -V=full          print a version line ending in buildID=<hex>
//	gcxlint -flags           print a JSON description of supported flags
//	gcxlint <unit>.cfg       analyze one compilation unit, writing the
//	                         fact file named by the config; diagnostics go
//	                         to stderr as "pos: message", exit 1 if any
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	flag.Var(versionFlag{}, "V", "print version and exit")
	printflags := flag.Bool("flags", false, "print analyzer flags in JSON")
	dirs := flag.String("dir", "", "comma-separated package directories to analyze from source (standalone mode)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [-dir pkgdir[,pkgdir...]] | <unit>.cfg\n\nAnalyzers:\n", progname)
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, firstLine(a.Doc))
		}
	}
	flag.Parse()

	if *printflags {
		printFlags()
		os.Exit(0)
	}
	if *dirs != "" {
		os.Exit(runDirs(strings.Split(*dirs, ","), analyzers))
	}
	args := flag.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		flag.Usage()
		os.Exit(2)
	}
	os.Exit(runUnit(args[0], analyzers))
}

// versionFlag implements -V=full. The go command runs the vettool with
// this flag to obtain a cache key, and requires the output to end in a
// buildID derived from the tool binary, so a rebuilt gcxlint invalidates
// stale vet results.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) Get() any         { return nil }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		return fmt.Errorf("unsupported flag value: -V=%s", s)
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", filepath.Base(os.Args[0]), string(h.Sum(nil)))
	os.Exit(0)
	return nil
}

// printFlags emits the flag description JSON the go command consumes to
// decide which vet flags this tool accepts.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// runUnit analyzes one compilation unit described by a .cfg file.
func runUnit(cfgFile string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", cfgFile, err)
	}

	// The go command drives the vettool over the entire import graph,
	// standard library included, to propagate facts. gcxlint analyzers
	// are fact-free and package-local, so only this module's own
	// packages need analysis; everything else just gets its (empty)
	// fact file written.
	diags, err := analyzeUnit(cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		log.Fatal(err)
	}

	if cfg.VetxOutput != "" {
		// gcxlint exports no facts; an empty file satisfies the cache.
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			log.Fatalf("writing facts: %v", err)
		}
	}
	if cfg.VetxOnly || len(diags) == 0 {
		return 0
	}
	// Diagnostics were produced against a freshly parsed fileset local
	// to analyzeUnit; positions were already rendered into the message
	// stream there.
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	return 1
}

// analyzeUnit typechecks the unit from the export data the go command
// supplied and runs the analyzers. Diagnostics are returned pre-rendered
// as "file:line:col: message (analyzer)" strings.
func analyzeUnit(cfg *vetConfig, analyzers []*Analyzer) ([]string, error) {
	if cfg.ModulePath != moduleName || cfg.Standard[cfg.ImportPath] {
		return nil, nil
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// Path is a resolved package path, perhaps vendor-mangled.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := newTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}

	diags, err := runPackage(fset, files, pkg, info, analyzers)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = fmt.Sprintf("%s: %s (%s)", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	return out, nil
}

// moduleName gates analysis to this repository's own packages; the go
// command also runs the vettool over every dependency (including the
// standard library) purely to build the fact-file chain.
const moduleName = "gcx"

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Instances:    make(map[*ast.Ident]types.Instance),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:       make(map[ast.Node]*types.Scope),
		FileVersions: make(map[*ast.File]string),
	}
}

// runDirs analyzes package directories from source (no export data, no go
// command): the mode linttest and the CI self-check use to point gcxlint
// at seeded-violation testdata packages.
func runDirs(dirs []string, analyzers []*Analyzer) int {
	exit := 0
	for _, dir := range dirs {
		root, importPath, err := inferSrcRoot(dir)
		if err != nil {
			log.Fatal(err)
		}
		fset := token.NewFileSet()
		loaded, err := LoadDir(fset, root, importPath, false)
		if err != nil {
			log.Fatal(err)
		}
		diags, err := runPackage(fset, loaded.Files, loaded.Pkg, loaded.Info, analyzers)
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
			exit = 1
		}
	}
	return exit
}

// inferSrcRoot maps a package directory to a GOPATH-style source root and
// import path: the nearest ancestor directory named "src" anchors the
// root (the testdata convention); otherwise the directory's parent does.
func inferSrcRoot(dir string) (root, importPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for p := filepath.Dir(abs); p != filepath.Dir(p); p = filepath.Dir(p) {
		if filepath.Base(p) == "src" {
			rel, err := filepath.Rel(p, abs)
			if err != nil {
				return "", "", err
			}
			return p, filepath.ToSlash(rel), nil
		}
	}
	return filepath.Dir(abs), filepath.Base(abs), nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
