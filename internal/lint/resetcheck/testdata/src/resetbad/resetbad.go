// Package resetbad seeds one violation of each resetcheck rule; the CI
// self-check also runs the real gcxlint binary over this package and
// asserts a non-zero exit.
package resetbad

import "sync"

// leaky is the PR-1 bug class: pooled state whose Reset forgets a field.
type leaky struct {
	kept  int
	buf   []byte
	stale map[string]int
}

var pool = sync.Pool{New: func() any { return &leaky{} }}

func (l *leaky) Reset() { // want `leaky\.Reset does not reset field "stale"`
	l.kept = 0
	l.buf = l.buf[:0]
}

func recycle(l *leaky) {
	pool.Put(l)
}

var _ = recycle

// orphan cycles through a pool with no Reset at all.
type orphan struct{ n int } // want `orphan cycles through a sync\.Pool but declares no Reset method`

var orphanPool sync.Pool

func orphanUse() {
	o, _ := orphanPool.Get().(*orphan)
	orphanPool.Put(o)
}

var _ = orphanUse

// valrecv declares Reset on a value receiver, which mutates a copy.
type valrecv struct{ n int }

func (v valrecv) Reset() { v.n = 0 } // want `value receiver`

// annotated carries a keep annotation with no reason, so the escape hatch
// does not engage and the field still counts as unreset.
type annotated struct {
	//gcxlint:keep big
	big []byte // want `//gcxlint:keep big requires a reason`
	n   int
}

func (a *annotated) Reset() { a.n = 0 } // want `does not reset field "big"`

// mistargeted names a field that does not exist.
type mistargeted struct {
	n int
}

// Reset clears the counter.
//
//gcxlint:keep nosuch left over from a refactor
func (m *mistargeted) Reset() { m.n = 0 } // want `unknown field "nosuch"`
