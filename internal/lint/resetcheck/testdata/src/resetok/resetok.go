// Package resetok exercises every way a Reset method can legitimately
// cover its receiver's fields; resetcheck must stay silent here.
package resetok

import "sync"

type inner struct {
	n int
}

func (i *inner) Reset() { i.n = 0 }

type state struct {
	a  int
	b  []byte
	m  map[string]int
	in *inner
	//gcxlint:keep hook wired at construction, never rebound
	hook func()
}

var pool = sync.Pool{New: func() any { return &state{} }}

func (s *state) Reset() {
	s.a = 0
	s.b = s.b[:0]
	clear(s.m)
	s.in.Reset()
	s.relink()
}

// relink is a same-receiver helper; it participates in the coverage scan.
func (s *state) relink() {}

func get() *state  { return pool.Get().(*state) }
func put(s *state) { pool.Put(s) }

var _ = get
var _ = put

// small is fully covered by a whole-struct assignment.
type small struct{ x, y int }

func (s *small) Reset() { *s = small{} }

// chained covers its root field through an inlined same-receiver helper,
// the Reset → initRoot shape the buffer uses.
type chained struct {
	root  *inner
	depth int
}

func (c *chained) Reset() {
	c.depth = 0
	c.initRoot()
}

func (c *chained) initRoot() { c.root = &inner{} }

// scratch is pooled without a Reset, with the annotated justification.
//
//gcxlint:noreset every byte is overwritten before use on each borrow
type scratch struct {
	buf [64]byte
}

var scratchPool sync.Pool

func useScratch() {
	s, _ := scratchPool.Get().(*scratch)
	if s == nil {
		s = new(scratch)
	}
	scratchPool.Put(s)
}

var _ = useScratch

// keptByMethodDoc annotates the keep on the Reset method instead of the
// field declaration; both placements are valid.
type keptByMethodDoc struct {
	n    int
	hook func()
}

// Reset restores the counter; the hook is wired once at construction.
//
//gcxlint:keep hook wired at construction
func (k *keptByMethodDoc) Reset() { k.n = 0 }

// cleared is covered by clear() through an address-of helper call.
type cleared struct {
	m map[int]int
	v []int
}

func (c *cleared) Reset() {
	clear(c.m)
	wipe(&c.v)
}

func wipe(v *[]int) { *v = (*v)[:0] }
