package resetcheck_test

import (
	"testing"

	"gcx/internal/lint/gcxlint/linttest"
	"gcx/internal/lint/resetcheck"
)

func TestResetCheck(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), resetcheck.Analyzer, "resetok", "resetbad")
}
