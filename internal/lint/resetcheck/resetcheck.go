// Package resetcheck verifies the repo's pooling hygiene invariant: every
// type that cycles through a sync.Pool must declare a Reset method, and
// every Reset (or reset) method must account for every field of its
// receiver — by assigning it, clear()ing it, delegating to the field's own
// Reset, or carrying an explicit //gcxlint:keep annotation with a reason.
//
// This is the static form of the PR-1 bug class: a pooled run state whose
// Reset misses a field silently leaks one run's state (or one document's
// text) into the next run's. AllocsPerRun and equivalence tests catch the
// symptom probabilistically; the field-set difference here catches the
// missing assignment at the diff.
package resetcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gcx/internal/lint/gcxlint"
)

// Analyzer is the resetcheck pass.
var Analyzer = &gcxlint.Analyzer{
	Name: "resetcheck",
	Doc:  "pooled types must declare Reset, and Reset must cover every field",
	Run:  run,
}

// structDecl is one named struct type declared in the package.
type structDecl struct {
	name    *ast.Ident
	st      *ast.StructType
	doc     []*ast.CommentGroup // GenDecl doc + TypeSpec doc/comment
	obj     types.Object
	methods map[string]*ast.FuncDecl // declared methods, by name
	recvs   map[*ast.FuncDecl]types.Object
}

func run(pass *gcxlint.Pass) error {
	decls := collectStructs(pass)
	pooled := collectPooled(pass, decls)

	for _, d := range decls {
		resetDecls := resetMethods(d)
		if _, ok := pooled[d]; ok && len(resetDecls) == 0 {
			if !allowNoReset(pass, d) {
				pass.Reportf(d.name.Pos(), "%s cycles through a sync.Pool but declares no Reset method (add one or annotate the type //gcxlint:noreset <reason>)", d.name.Name)
			}
			continue
		}
		for _, m := range resetDecls {
			checkReset(pass, d, m)
		}
	}
	return nil
}

// collectStructs indexes the package's named struct declarations and
// their methods.
func collectStructs(pass *gcxlint.Pass) []*structDecl {
	byObj := make(map[types.Object]*structDecl)
	var decls []*structDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[ts.Name]
				if obj == nil {
					continue
				}
				d := &structDecl{
					name:    ts.Name,
					st:      st,
					doc:     []*ast.CommentGroup{gd.Doc, ts.Doc, ts.Comment},
					obj:     obj,
					methods: make(map[string]*ast.FuncDecl),
					recvs:   make(map[*ast.FuncDecl]types.Object),
				}
				byObj[obj] = d
				decls = append(decls, d)
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			recvObj, typeObj := receiver(pass, fd)
			if d, ok := byObj[typeObj]; ok {
				d.methods[fd.Name.Name] = fd
				d.recvs[fd] = recvObj
			}
		}
	}
	return decls
}

// receiver resolves a method's receiver variable and its named type's
// type object.
func receiver(pass *gcxlint.Pass, fd *ast.FuncDecl) (recvObj, typeObj types.Object) {
	field := fd.Recv.List[0]
	if len(field.Names) == 1 {
		recvObj = pass.TypesInfo.Defs[field.Names[0]]
	}
	t := field.Type
	for {
		switch e := t.(type) {
		case *ast.StarExpr:
			t = e.X
		case *ast.ParenExpr:
			t = e.X
		case *ast.IndexExpr: // generic receiver; not used in this repo
			t = e.X
		case *ast.Ident:
			return recvObj, pass.TypesInfo.Uses[e]
		default:
			return recvObj, nil
		}
	}
}

// collectPooled finds local struct types that flow through a sync.Pool —
// via Put arguments, Get type assertions, or New closures — and maps each
// to the first position evidencing the pooling.
func collectPooled(pass *gcxlint.Pass, decls []*structDecl) map[*structDecl]token.Pos {
	byObj := make(map[types.Object]*structDecl, len(decls))
	for _, d := range decls {
		byObj[d.obj] = d
	}
	pooled := make(map[*structDecl]token.Pos)
	mark := func(t types.Type, pos token.Pos) {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return
		}
		if d, ok := byObj[named.Obj()]; ok {
			if _, seen := pooled[d]; !seen {
				pooled[d] = pos
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				sel, ok := e.Fun.(*ast.SelectorExpr)
				if !ok || !isSyncPool(pass.TypesInfo.Types[sel.X].Type) {
					return true
				}
				if sel.Sel.Name == "Put" && len(e.Args) == 1 {
					if tv, ok := pass.TypesInfo.Types[e.Args[0]]; ok {
						mark(tv.Type, e.Args[0].Pos())
					}
				}
			case *ast.TypeAssertExpr:
				// rs, _ := pool.Get().(*runState)
				call, ok := e.X.(*ast.CallExpr)
				if !ok || e.Type == nil {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Get" || !isSyncPool(pass.TypesInfo.Types[sel.X].Type) {
					return true
				}
				if tv, ok := pass.TypesInfo.Types[e.Type]; ok {
					mark(tv.Type, e.Pos())
				}
			case *ast.KeyValueExpr:
				// sync.Pool{New: func() any { return &T{} }}
				key, ok := e.Key.(*ast.Ident)
				if !ok || key.Name != "New" {
					return true
				}
				fn, ok := e.Value.(*ast.FuncLit)
				if !ok {
					return true
				}
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					ret, ok := n.(*ast.ReturnStmt)
					if !ok || len(ret.Results) != 1 {
						return true
					}
					if tv, ok := pass.TypesInfo.Types[ret.Results[0]]; ok {
						mark(tv.Type, ret.Results[0].Pos())
					}
					return true
				})
			}
			return true
		})
	}
	return pooled
}

func isSyncPool(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

// resetMethods returns the type's declared Reset-style methods.
func resetMethods(d *structDecl) []*ast.FuncDecl {
	var ms []*ast.FuncDecl
	for _, name := range [2]string{"Reset", "reset"} {
		if m, ok := d.methods[name]; ok {
			ms = append(ms, m)
		}
	}
	return ms
}

// allowNoReset honors a //gcxlint:noreset <reason> annotation on the type
// declaration, reporting it if the reason is missing.
func allowNoReset(pass *gcxlint.Pass, d *structDecl) bool {
	for _, dir := range gcxlint.Directives(d.doc...) {
		if dir.Verb != "noreset" {
			continue
		}
		if dir.Args == "" {
			pass.Reportf(d.name.Pos(), "//gcxlint:noreset on %s requires a reason", d.name.Name)
		}
		return true
	}
	return false
}

// checkReset computes the set difference between the receiver's fields and
// the fields the reset method (plus same-receiver helpers it calls)
// covers, then reports the uncovered, unannotated remainder.
func checkReset(pass *gcxlint.Pass, d *structDecl, m *ast.FuncDecl) {
	fields := structFields(d.st)
	if len(fields) == 0 {
		return
	}
	if _, isPtr := m.Recv.List[0].Type.(*ast.StarExpr); !isPtr {
		pass.Reportf(m.Name.Pos(), "%s.%s has a value receiver and cannot reset the pooled state; use a pointer receiver", d.name.Name, m.Name.Name)
		return
	}

	kept := collectKeeps(pass, d, m, fields)
	handled := make(map[string]bool)
	var all bool
	scanned := make(map[*ast.FuncDecl]bool)

	var scan func(fd *ast.FuncDecl)
	scan = func(fd *ast.FuncDecl) {
		if fd.Body == nil || scanned[fd] {
			return
		}
		scanned[fd] = true
		recvObj := d.recvs[fd]
		if recvObj == nil {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range e.Lhs {
					if isRecvDeref(pass, recvObj, lhs) {
						all = true // *t = T{...} covers everything
						continue
					}
					if f, ok := rootField(pass, recvObj, lhs); ok {
						handled[f] = true
					}
				}
			case *ast.IncDecStmt:
				if f, ok := rootField(pass, recvObj, e.X); ok {
					handled[f] = true
				}
			case *ast.UnaryExpr:
				// &t.field handed to a helper counts as a write.
				if e.Op == token.AND {
					if f, ok := rootField(pass, recvObj, e.X); ok {
						handled[f] = true
					}
				}
			case *ast.CallExpr:
				if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "clear" && len(e.Args) == 1 {
					if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
						if f, ok := rootField(pass, recvObj, e.Args[0]); ok {
							handled[f] = true
						}
					}
					return true
				}
				sel, ok := e.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if recvIdent(pass, recvObj, sel.X) {
					// Same-receiver helper: analyze its body too, so
					// Reset → initRoot chains count.
					if helper, ok := d.methods[sel.Sel.Name]; ok {
						scan(helper)
					}
					return true
				}
				// Delegated reset: t.field.Reset(...) in any casing.
				if sel.Sel.Name == "Reset" || sel.Sel.Name == "reset" {
					if f, ok := rootField(pass, recvObj, sel.X); ok {
						handled[f] = true
					}
				}
			}
			return true
		})
	}
	scan(m)

	if all {
		return
	}
	for _, name := range fields {
		if name == "_" || handled[name] || kept[name] {
			continue
		}
		pass.Reportf(m.Name.Pos(), "%s.%s does not reset field %q (assign it, delegate to %s.Reset, or annotate //gcxlint:keep %s <reason>)",
			d.name.Name, m.Name.Name, name, name, name)
	}
}

// structFields lists the receiver struct's field names in declaration
// order; embedded fields are named by their type.
func structFields(st *ast.StructType) []string {
	var names []string
	for _, f := range st.Fields.List {
		if len(f.Names) == 0 {
			if name := embeddedName(f.Type); name != "" {
				names = append(names, name)
			}
			continue
		}
		for _, id := range f.Names {
			names = append(names, id.Name)
		}
	}
	return names
}

func embeddedName(t ast.Expr) string {
	switch e := t.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return embeddedName(e.X)
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

// collectKeeps gathers //gcxlint:keep <field> <reason> annotations from
// the struct's field declarations and the reset method's doc comment,
// validating the field name and the presence of a reason.
func collectKeeps(pass *gcxlint.Pass, d *structDecl, m *ast.FuncDecl, fields []string) map[string]bool {
	known := make(map[string]bool, len(fields))
	for _, f := range fields {
		known[f] = true
	}
	kept := make(map[string]bool)
	type source struct {
		dirs []gcxlint.Directive
		pos  token.Pos // annotated declaration, where hygiene findings anchor
	}
	sources := []source{{gcxlint.Directives(m.Doc), m.Name.Pos()}}
	for _, f := range d.st.Fields.List {
		sources = append(sources, source{gcxlint.Directives(f.Doc, f.Comment), f.Pos()})
	}
	for _, src := range sources {
		for _, dir := range src.dirs {
			if dir.Verb != "keep" {
				continue
			}
			field, reason, _ := strings.Cut(dir.Args, " ")
			if field == "" {
				pass.Reportf(src.pos, "//gcxlint:keep requires a field name and a reason")
				continue
			}
			if !known[field] {
				pass.Reportf(src.pos, "//gcxlint:keep names unknown field %q of %s", field, d.name.Name)
				continue
			}
			if strings.TrimSpace(reason) == "" {
				pass.Reportf(src.pos, "//gcxlint:keep %s requires a reason", field)
				continue
			}
			kept[field] = true
		}
	}
	return kept
}

// rootField reports the receiver field at the root of an lvalue-ish
// expression chain: t.f, t.f[i], t.f.g = …, (*t.f), &t.f.
func rootField(pass *gcxlint.Pass, recvObj types.Object, expr ast.Expr) (string, bool) {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.SelectorExpr:
			if recvIdent(pass, recvObj, e.X) {
				return e.Sel.Name, true
			}
			expr = e.X
		default:
			return "", false
		}
	}
}

func recvIdent(pass *gcxlint.Pass, recvObj types.Object, expr ast.Expr) bool {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.Ident:
			return recvObj != nil && pass.TypesInfo.Uses[e] == recvObj
		default:
			return false
		}
	}
}

func isRecvDeref(pass *gcxlint.Pass, recvObj types.Object, expr ast.Expr) bool {
	e, ok := expr.(*ast.StarExpr)
	return ok && recvIdent(pass, recvObj, e.X)
}
