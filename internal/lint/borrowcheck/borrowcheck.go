// Package borrowcheck enforces the tokenizer's zero-copy contract: a
// Token produced by a borrow-mode tokenizer — and any string or []byte
// derived from its Data — is a window subslice valid only until the next
// Next() call, so it must not outlive the statement flow that produced
// it. The analyzer taints values originating from xmlstream Next methods
// (and from functions annotated //gcxlint:borrowed) and reports flows
// that retain them: stores into struct fields, maps, slices, package
// variables, channel sends, returns from unannotated functions, and
// captures by closures.
//
// Cloning kills the taint: strings.Clone, a string↔[]byte conversion, or
// append(dst, src...) all copy the bytes. The walk is linear in source
// order, so the engine's guarded-clone idiom
//
//	if p.opts.BorrowedText { data = strings.Clone(data) }
//
// sanitizes every later use. A retention that is provably safe can be
// annotated //gcxlint:borrowok <reason>.
//
// The check is package-local: a same-package call that forwards borrowed
// data must be annotated //gcxlint:borrowed (which in turn taints that
// function's own string/[]byte/Token parameters). Cross-package calls are
// outside its horizon and rely on the callee's own analysis — the
// documented residual risk.
package borrowcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gcx/internal/lint/gcxlint"
)

// Analyzer is the borrowcheck pass.
var Analyzer = &gcxlint.Analyzer{
	Name: "borrowcheck",
	Doc:  "borrow-mode tokenizer windows must not be retained past the next Next()",
	Run:  run,
}

const xmlstreamSuffix = "internal/xmlstream"

func run(pass *gcxlint.Pass) error {
	if pass.PathHasSuffix(xmlstreamSuffix) {
		// The tokenizer package is the borrow implementation; its
		// internal window bookkeeping is the thing being borrowed from.
		return nil
	}
	c := &checker{pass: pass, decls: make(map[types.Object]*ast.FuncDecl)}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					c.decls[obj] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkFunc(fd)
			}
		}
	}
	return nil
}

func isTestFile(pass *gcxlint.Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
}

type checker struct {
	pass  *gcxlint.Pass
	decls map[types.Object]*ast.FuncDecl

	// Per-function walk state.
	fn       *ast.FuncDecl
	borrowed bool // current function is annotated //gcxlint:borrowed
	taint    map[types.Object]bool
}

func isBorrowedFunc(fd *ast.FuncDecl) bool {
	for _, d := range gcxlint.Directives(fd.Doc) {
		if d.Verb == "borrowed" {
			return true
		}
	}
	return false
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	c.fn = fd
	c.borrowed = isBorrowedFunc(fd)
	c.taint = make(map[types.Object]bool)

	if c.borrowed {
		// The annotation's meaning: this function's window-like
		// parameters are themselves borrowed, so its body must not
		// retain them either.
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				obj := c.pass.TypesInfo.Defs[name]
				if obj != nil && isWindowType(obj.Type()) {
					c.taint[obj] = true
				}
			}
		}
	}
	c.walkStmt(fd.Body)
}

// isWindowType reports whether a type can carry a borrowed window: a
// string, a byte slice, an xmlstream Token, or a slice of Tokens.
func isWindowType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() == types.String
	case *types.Slice:
		return isWindowType(u.Elem())
	case *types.Struct:
		return isXMLStreamToken(t)
	}
	return false
}

func isXMLStreamToken(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Name() != "Token" {
		return false
	}
	return pathHasSuffix(obj.Pkg().Path(), xmlstreamSuffix)
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// ---- statement walk (source order; branches processed sequentially) ----

func (c *checker) walkStmt(s ast.Stmt) {
	switch st := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, sub := range st.List {
			c.walkStmt(sub)
		}
	case *ast.AssignStmt:
		c.assign(st)
	case *ast.DeclStmt:
		gd, ok := st.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				tainted := false
				if i < len(vs.Values) {
					tainted = c.walkExpr(vs.Values[i])
				}
				c.bind(name, tainted)
			}
		}
	case *ast.ExprStmt:
		c.walkExpr(st.X)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			if c.walkExpr(r) && !c.borrowed {
				c.report(r.Pos(), "returns borrowed tokenizer bytes; clone them or annotate the function //gcxlint:borrowed")
			}
		}
	case *ast.SendStmt:
		c.walkExpr(st.Chan)
		if c.walkExpr(st.Value) {
			c.report(st.Value.Pos(), "sends borrowed tokenizer bytes over a channel; they may outlive the next Next()")
		}
	case *ast.IfStmt:
		c.walkStmt(st.Init)
		c.walkExpr(st.Cond)
		c.walkStmt(st.Body)
		c.walkStmt(st.Else)
	case *ast.ForStmt:
		c.walkStmt(st.Init)
		if st.Cond != nil {
			c.walkExpr(st.Cond)
		}
		c.walkStmt(st.Post)
		c.walkStmt(st.Body)
	case *ast.RangeStmt:
		tainted := c.walkExpr(st.X)
		for _, e := range [2]ast.Expr{st.Key, st.Value} {
			id, ok := e.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			if st.Tok == token.DEFINE {
				c.bind(id, tainted)
			} else {
				c.setTaint(id, tainted)
			}
		}
		c.walkStmt(st.Body)
	case *ast.SwitchStmt:
		c.walkStmt(st.Init)
		if st.Tag != nil {
			c.walkExpr(st.Tag)
		}
		for _, cc := range st.Body.List {
			clause := cc.(*ast.CaseClause)
			for _, e := range clause.List {
				c.walkExpr(e)
			}
			for _, sub := range clause.Body {
				c.walkStmt(sub)
			}
		}
	case *ast.TypeSwitchStmt:
		c.walkStmt(st.Init)
		c.walkStmt(st.Assign)
		for _, cc := range st.Body.List {
			clause := cc.(*ast.CaseClause)
			for _, sub := range clause.Body {
				c.walkStmt(sub)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range st.Body.List {
			clause := cc.(*ast.CommClause)
			c.walkStmt(clause.Comm)
			for _, sub := range clause.Body {
				c.walkStmt(sub)
			}
		}
	case *ast.LabeledStmt:
		c.walkStmt(st.Stmt)
	case *ast.GoStmt:
		c.walkExpr(st.Call)
	case *ast.DeferStmt:
		c.walkExpr(st.Call)
	case *ast.IncDecStmt:
		c.walkExpr(st.X)
	}
}

// assign handles x := e / x = e / x, y = e and the store-shaped LHS
// violations.
func (c *checker) assign(st *ast.AssignStmt) {
	// Tuple form: tk, err := tok.Next().
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		perResult := c.callResultTaints(st.Rhs[0], len(st.Lhs))
		for i, lhs := range st.Lhs {
			c.assignOne(st, lhs, perResult[i])
		}
		return
	}
	for i, lhs := range st.Lhs {
		tainted := false
		if i < len(st.Rhs) {
			tainted = c.walkExpr(st.Rhs[i])
		}
		c.assignOne(st, lhs, tainted)
	}
}

func (c *checker) assignOne(st *ast.AssignStmt, lhs ast.Expr, tainted bool) {
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		if st.Tok == token.DEFINE {
			c.bind(id, tainted)
		} else {
			c.setTaint(id, tainted)
		}
		return
	}
	if !tainted {
		// Still walk for nested closures on the LHS (rare).
		c.walkExpr(lhs)
		return
	}
	// Store through a selector/index/deref: find the root. Stores into a
	// value-typed local (a Token copy on the stack) merely taint the
	// local; anything else retains the window.
	if root, ok := c.localValueRoot(lhs); ok {
		c.taint[root] = true
		return
	}
	c.report(lhs.Pos(), "stores borrowed tokenizer bytes in %s; they are valid only until the next Next() — clone them first", describeLHS(lhs))
}

// localValueRoot walks to the root identifier of an LHS chain and reports
// whether it is a value-typed (struct or array) local variable, whose
// interior stores stay on this function's stack.
func (c *checker) localValueRoot(e ast.Expr) (types.Object, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			obj := c.pass.TypesInfo.Uses[x]
			if obj == nil {
				return nil, false
			}
			v, ok := obj.(*types.Var)
			if !ok || v.IsField() || !c.isLocal(obj) {
				return nil, false
			}
			switch obj.Type().Underlying().(type) {
			case *types.Struct, *types.Array:
				return obj, true
			}
			return nil, false
		default:
			return nil, false
		}
	}
}

func (c *checker) isLocal(obj types.Object) bool {
	return obj.Parent() != c.pass.Pkg.Scope() && obj.Pos() >= c.fn.Pos() && obj.Pos() <= c.fn.End()
}

func describeLHS(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		return "a struct field or package variable (" + x.Sel.Name + ")"
	case *ast.IndexExpr:
		return "a map or slice element"
	case *ast.StarExpr:
		return "a pointed-to location"
	}
	return "an escaping location"
}

func (c *checker) bind(id *ast.Ident, tainted bool) {
	obj := c.pass.TypesInfo.Defs[id]
	if obj == nil {
		// Re-declaration in a := with mixed new/old vars.
		obj = c.pass.TypesInfo.Uses[id]
	}
	if obj != nil {
		c.taint[obj] = tainted
	}
}

func (c *checker) setTaint(id *ast.Ident, tainted bool) {
	if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
		if v, ok := obj.(*types.Var); ok && !v.IsField() {
			if c.isLocal(obj) {
				c.taint[obj] = tainted
				return
			}
			if tainted {
				c.report(id.Pos(), "stores borrowed tokenizer bytes in %s, which outlives this call; clone them first", id.Name)
			}
		}
	}
}

// ---- expression walk: returns whether the value is borrow-tainted ----

func (c *checker) walkExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[x]
		return obj != nil && c.taint[obj]
	case *ast.ParenExpr:
		return c.walkExpr(x.X)
	case *ast.SelectorExpr:
		// tk.Data inherits tk's taint; package-qualified idents do not,
		// and neither do fields whose type cannot hold window bytes
		// (tk.Kind is a number — nothing to retain).
		if !c.walkExpr(x.X) {
			return false
		}
		if tv, ok := c.pass.TypesInfo.Types[x]; ok && tv.Type != nil && !isWindowType(tv.Type) && !isByteSlice(tv.Type) {
			return false
		}
		return true
	case *ast.StarExpr:
		return c.walkExpr(x.X)
	case *ast.UnaryExpr:
		return c.walkExpr(x.X)
	case *ast.SliceExpr:
		if x.Low != nil {
			c.walkExpr(x.Low)
		}
		if x.High != nil {
			c.walkExpr(x.High)
		}
		return c.walkExpr(x.X)
	case *ast.IndexExpr:
		c.walkExpr(x.Index)
		// Indexing a tainted slice of windows yields a window; indexing
		// a string/[]byte yields a byte, which cannot retain anything.
		if !c.walkExpr(x.X) {
			return false
		}
		if tv, ok := c.pass.TypesInfo.Types[e]; ok {
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsNumeric != 0 {
				return false
			}
		}
		return true
	case *ast.BinaryExpr:
		lt := c.walkExpr(x.X)
		rt := c.walkExpr(x.Y)
		// Comparisons don't retain; concatenation may return an operand
		// unchanged (runtime concatstrings shortcut when the other side
		// is empty), so it stays tainted.
		if x.Op == token.ADD {
			return lt || rt
		}
		return false
	case *ast.CompositeLit:
		tainted := false
		for _, elt := range x.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if c.walkExpr(v) {
				tainted = true
			}
		}
		return tainted
	case *ast.TypeAssertExpr:
		return c.walkExpr(x.X)
	case *ast.FuncLit:
		c.checkClosure(x)
		return false
	case *ast.CallExpr:
		taints := c.callResultTaints(x, 1)
		return taints[0]
	}
	return false
}

// checkClosure reports tainted captures — a closure that references a
// borrowed window may run after the next Next() — and then walks the
// closure body so stores it performs are checked like any other code.
func (c *checker) checkClosure(fl *ast.FuncLit) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := c.pass.TypesInfo.Uses[id]
		if obj == nil || !c.taint[obj] {
			return true
		}
		// Captured if declared outside the closure.
		if obj.Pos() < fl.Pos() || obj.Pos() > fl.End() {
			c.report(id.Pos(), "closure captures borrowed tokenizer bytes (%s); they may be stale when it runs — clone them first", id.Name)
		}
		return true
	})
	c.walkStmt(fl.Body)
}

// callResultTaints evaluates a call (or any expression standing where a
// call may be) and returns the taint of each of n results.
func (c *checker) callResultTaints(e ast.Expr, n int) []bool {
	taints := make([]bool, n)
	call, ok := e.(*ast.CallExpr)
	if !ok {
		t := c.walkExpr(e)
		for i := range taints {
			taints[i] = t
		}
		return taints
	}

	// Type conversion?
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		argTainted := c.walkExpr(call.Args[0])
		if !argTainted {
			return taints
		}
		// string([]byte) and []byte(string) copy; same-kind conversions
		// (string→string, named-slice re-typing) retain the window.
		src := c.pass.TypesInfo.Types[call.Args[0]].Type
		dst := tv.Type
		if (isByteSlice(src) && isString(dst)) || (isString(src) && isByteSlice(dst)) {
			return taints
		}
		taints[0] = argTainted
		return taints
	}

	// A directly-invoked func literal still gets its captures checked.
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		c.checkClosure(fl)
	}

	argTaints := make([]bool, len(call.Args))
	for i, a := range call.Args {
		argTaints[i] = c.walkExpr(a)
	}
	anyArgTainted := false
	for _, t := range argTaints {
		anyArgTainted = anyArgTainted || t
	}

	// Builtins and known sanitizers.
	switch fun := callee(call); {
	case fun == "append":
		// append(dst, src...) copies bytes out of src (src may be a
		// []byte or, for a []byte dst, a string); appending window
		// VALUES (strings, Tokens) into a slice retains their headers.
		if call.Ellipsis.IsValid() && len(call.Args) == 2 {
			if t := c.pass.TypesInfo.Types[call.Args[1]].Type; isByteSlice(t) || isString(t) {
				taints[0] = argTaints[0]
				return taints
			}
		}
		taints[0] = anyArgTainted
		return taints
	case fun == "copy", fun == "len", fun == "cap", fun == "min", fun == "max":
		return taints
	case fun == "strings.Clone", fun == "bytes.Clone":
		return taints
	}

	// Resolve the callee object for source/annotation checks.
	obj := calleeObject(c.pass, call)
	if obj != nil {
		if fn, ok := obj.(*types.Func); ok {
			pkg := fn.Pkg()
			if pkg != nil && pathHasSuffix(pkg.Path(), xmlstreamSuffix) {
				// Borrow-mode source: any xmlstream API returning Token
				// values hands out window subslices.
				c.markTokenResults(call, taints)
				return taints
			}
			if pkg != nil && pkg == c.pass.Pkg {
				if fd, ok := c.decls[obj]; ok && isBorrowedFunc(fd) {
					// Annotated forwarder: it may both accept and return
					// borrowed windows.
					c.markWindowResults(call, taints)
					return taints
				}
				if anyArgTainted {
					c.reportArg(call, argTaints, "passes borrowed tokenizer bytes to %s, which is not annotated //gcxlint:borrowed; it may retain them", fn.Name())
				}
				return taints
			}
		}
	}
	// Cross-package (or dynamic) call: outside the package-local
	// horizon. Results are treated as owned.
	return taints
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.String
}

// markTokenResults taints the call's Token-typed results.
func (c *checker) markTokenResults(call *ast.CallExpr, taints []bool) {
	c.markResults(call, taints, isXMLStreamToken)
}

// markWindowResults taints the call's string/[]byte/Token results.
func (c *checker) markWindowResults(call *ast.CallExpr, taints []bool) {
	c.markResults(call, taints, isWindowType)
}

func (c *checker) markResults(call *ast.CallExpr, taints []bool, pred func(types.Type) bool) {
	tv, ok := c.pass.TypesInfo.Types[call]
	if !ok {
		return
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len() && i < len(taints); i++ {
			if pred(t.At(i).Type()) {
				taints[i] = true
			}
		}
	default:
		if len(taints) > 0 && pred(t) {
			taints[0] = true
		}
	}
}

func callee(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if pkg, ok := fun.X.(*ast.Ident); ok {
			return pkg.Name + "." + fun.Sel.Name
		}
	}
	return ""
}

func calleeObject(pass *gcxlint.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

// report emits a diagnostic unless a //gcxlint:borrowok suppression with
// a reason covers the line.
func (c *checker) report(pos token.Pos, format string, args ...any) {
	if d, ok := c.pass.Suppression("borrowok", pos); ok {
		if d.Args == "" {
			c.pass.Reportf(pos, "//gcxlint:borrowok requires a reason")
		}
		return
	}
	c.pass.Reportf(pos, format, args...)
}

func (c *checker) reportArg(call *ast.CallExpr, argTaints []bool, format string, args ...any) {
	for i, t := range argTaints {
		if t {
			c.report(call.Args[i].Pos(), format, args...)
			return
		}
	}
	c.report(call.Pos(), format, args...)
}
