// Package borrowok exercises the sanctioned ways of consuming borrowed
// tokenizer windows; borrowcheck must stay silent here.
package borrowok

import (
	"strings"

	"gcxtest/internal/xmlstream"
)

type sink struct {
	last  string
	owned []byte
	str   string
	all   []string
	b     byte
	dbg   string
	kind  xmlstream.Kind
}

// cloneBeforeStore is the canonical fix: strings.Clone kills the taint.
func (s *sink) cloneBeforeStore(t *xmlstream.Tokenizer) {
	tk, _ := t.Next()
	s.last = strings.Clone(tk.Data)
}

// appendSpread copies the bytes out of the window.
func (s *sink) appendSpread(t *xmlstream.Tokenizer) {
	tk, _ := t.Next()
	s.owned = append(s.owned[:0], tk.Data...)
}

// conversions between string and []byte copy.
func (s *sink) convert(t *xmlstream.Tokenizer) {
	tk, _ := t.Next()
	s.owned = []byte(tk.Data)
	s.str = string(s.owned)
}

// guardedClone is the projector's idiom: the conditional clone kills the
// taint for every later use in source order.
func (s *sink) guardedClone(t *xmlstream.Tokenizer, borrowed bool) {
	tk, _ := t.Next()
	data := tk.Data
	if borrowed {
		data = strings.Clone(data)
	}
	s.last = data
}

// peek is annotated: callers may hand it borrowed windows, and its own
// body is checked with the parameter treated as borrowed.
//
//gcxlint:borrowed
func peek(data string) byte {
	if len(data) == 0 {
		return 0
	}
	return data[0]
}

func (s *sink) forward(t *xmlstream.Tokenizer) {
	tk, _ := t.Next()
	s.b = peek(tk.Data)
}

// localCopy keeps a Token copy in a stack-local struct; nothing escapes.
func (s *sink) localCopy(t *xmlstream.Tokenizer) {
	tk, _ := t.Next()
	var cp xmlstream.Token
	cp.Data = tk.Data
	if len(cp.Data) > 0 {
		s.b = cp.Data[0]
	}
}

// byteReads index out scalar bytes, which cannot retain the window.
func (s *sink) byteReads(t *xmlstream.Tokenizer) {
	tk, _ := t.Next()
	if len(tk.Data) > 0 {
		s.b = tk.Data[0]
	}
}

// reassignment of the token kills its taint.
func (s *sink) reassigned(t *xmlstream.Tokenizer) {
	tk, _ := t.Next()
	tk = xmlstream.Token{Data: "owned"}
	s.last = tk.Data
}

// suppressed documents a store the author has proven safe.
func (s *sink) suppressed(t *xmlstream.Tokenizer) {
	tk, _ := t.Next()
	s.dbg = tk.Data //gcxlint:borrowok consumed by the same statement's caller before the next Next
}

// scalarField stores only the token's numeric kind: no window bytes can
// be retained through a non-string field.
func (s *sink) scalarField(t *xmlstream.Tokenizer) {
	tk, _ := t.Next()
	s.kind = tk.Kind
}
