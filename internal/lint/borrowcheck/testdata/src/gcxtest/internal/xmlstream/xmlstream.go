// Package xmlstream is a miniature stand-in for the real tokenizer: its
// import-path suffix matches internal/xmlstream, so borrowcheck treats
// Token values returned by Next as borrowed window subslices.
package xmlstream

type Kind int

const (
	StartElement Kind = iota
	EndElement
	Text
)

type Token struct {
	Kind Kind
	Name string
	Data string
}

type Tokenizer struct {
	doc string
}

func (t *Tokenizer) Next() (Token, error) {
	return Token{Kind: Text, Data: t.doc}, nil
}
