// Package borrowbad seeds one violation of each borrowcheck rule.
package borrowbad

import (
	"gcxtest/internal/xmlstream"
)

type sink struct {
	last string
	tok  xmlstream.Token
	all  []string
	x    string
}

var global string

// fieldStore retains the raw window in a struct field — the PR-5 bug
// class this analyzer exists for.
func (s *sink) fieldStore(t *xmlstream.Tokenizer) {
	tk, _ := t.Next()
	s.last = tk.Data // want `stores borrowed tokenizer bytes in a struct field`
}

// wholeToken retains the Token value, Data included.
func (s *sink) wholeToken(t *xmlstream.Tokenizer) {
	tk, _ := t.Next()
	s.tok = tk // want `stores borrowed tokenizer bytes in a struct field`
}

// mapStore retains the window in a map.
func mapStore(t *xmlstream.Tokenizer, m map[string]string) {
	tk, _ := t.Next()
	m["k"] = tk.Data // want `stores borrowed tokenizer bytes in a map or slice element`
}

// appendHeader retains the string header even though append copies the
// slice spine.
func (s *sink) appendHeader(t *xmlstream.Tokenizer) {
	tk, _ := t.Next()
	s.all = append(s.all, tk.Data) // want `stores borrowed tokenizer bytes in a struct field`
}

// capture lets a closure observe the window after it may have been
// overwritten.
func capture(t *xmlstream.Tokenizer, run func(func())) {
	tk, _ := t.Next()
	run(func() {
		global = tk.Data // want `closure captures borrowed tokenizer bytes \(tk\)` `stores borrowed tokenizer bytes in global`
	})
}

// leak returns the window from an unannotated function.
func leak(t *xmlstream.Tokenizer) string {
	tk, _ := t.Next()
	return tk.Data // want `returns borrowed tokenizer bytes`
}

// send pushes the window through a channel.
func send(t *xmlstream.Tokenizer, ch chan string) {
	tk, _ := t.Next()
	ch <- tk.Data // want `sends borrowed tokenizer bytes over a channel`
}

// unannotatedCallee might retain its argument for all the analyzer knows.
func swallow(data string) { _ = data }

func forward(t *xmlstream.Tokenizer) {
	tk, _ := t.Next()
	swallow(tk.Data) // want `passes borrowed tokenizer bytes to swallow`
}

// packageVar stores the window in a package variable.
func packageVar(t *xmlstream.Tokenizer) {
	tk, _ := t.Next()
	global = tk.Data // want `stores borrowed tokenizer bytes in global`
}

// missingReason uses the escape hatch without justifying it.
func (s *sink) missingReason(t *xmlstream.Tokenizer) {
	tk, _ := t.Next()
	//gcxlint:borrowok
	s.x = tk.Data // want `//gcxlint:borrowok requires a reason`
}
