package borrowcheck_test

import (
	"testing"

	"gcx/internal/lint/borrowcheck"
	"gcx/internal/lint/gcxlint/linttest"
)

func TestBorrowCheck(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), borrowcheck.Analyzer, "borrowok", "borrowbad")
}
