// Package roleoffsetcheck guards the eval/workload role-space boundary
// introduced with merged workloads: member queries are compiled with solo
// role IDs, but the shared buffer indexes its role tables in the merged
// space, so every role ID an evaluator (or the workload's accounting)
// hands to the buffer must first pass through the RoleOffset/Offsets
// translation. The workload equivalence suite can only probe this
// probabilistically; here it is a syntactic proof obligation.
//
// Within packages on the boundary (import-path suffix internal/eval or
// internal/workload), any Role-typed argument to a buffer role API —
// SignOff, AddRole, AssignedCount, RemovedCount on a type from
// internal/buffer — must derive from an expression that mentions
// RoleOffset or Offsets, directly or through a local variable assigned
// from one. A deliberate solo-space use is annotated
// //gcxlint:solorole <reason>.
package roleoffsetcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"gcx/internal/lint/gcxlint"
)

// Analyzer is the roleoffsetcheck pass.
var Analyzer = &gcxlint.Analyzer{
	Name: "roleoffsetcheck",
	Doc:  "role IDs crossing into the buffer must pass through the RoleOffset translation",
	Run:  run,
}

var roleAPIs = map[string]bool{
	"SignOff":       true,
	"AddRole":       true,
	"AssignedCount": true,
	"RemovedCount":  true,
}

func run(pass *gcxlint.Pass) error {
	if !pass.PathHasSuffix("internal/eval") && !pass.PathHasSuffix("internal/workload") {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

func checkFunc(pass *gcxlint.Pass, fd *ast.FuncDecl) {
	translated := make(map[types.Object]bool)

	mentions := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.Ident:
				if x.Name == "RoleOffset" || x.Name == "Offsets" {
					found = true
				} else if obj := pass.TypesInfo.Uses[x]; obj != nil && translated[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}

	// Source-order walk: record which locals hold translated roles, and
	// check buffer role-API call arguments as they appear.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" || i >= len(x.Rhs) {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil {
					continue
				}
				translated[obj] = mentions(x.Rhs[i])
			}
		case *ast.ValueSpec:
			for i, id := range x.Names {
				if i >= len(x.Values) {
					continue
				}
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					translated[obj] = mentions(x.Values[i])
				}
			}
		case *ast.CallExpr:
			checkCall(pass, x, mentions)
		}
		return true
	})
}

func checkCall(pass *gcxlint.Pass, call *ast.CallExpr, mentions func(ast.Expr) bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !roleAPIs[sel.Sel.Name] {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	recv := fn.Signature().Recv()
	if recv == nil || !isBufferType(recv.Type()) {
		return
	}
	sig := fn.Signature()
	for i, arg := range call.Args {
		if i >= sig.Params().Len() {
			break
		}
		if !isRoleType(sig.Params().At(i).Type()) {
			continue
		}
		if mentions(arg) {
			continue
		}
		if d, suppressed := pass.Suppression("solorole", arg.Pos()); suppressed {
			if d.Args == "" {
				pass.Reportf(arg.Pos(), "//gcxlint:solorole requires a reason")
			}
			continue
		}
		pass.Reportf(arg.Pos(), "role ID passed to buffer %s without the RoleOffset translation; solo role IDs do not index the merged role table (annotate //gcxlint:solorole <reason> if deliberate)", sel.Sel.Name)
	}
}

func isBufferType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pathHasSuffix(pkg.Path(), "internal/buffer")
}

func isRoleType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Role" && obj.Pkg() != nil && pathHasSuffix(obj.Pkg().Path(), "internal/xqast")
}

func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
