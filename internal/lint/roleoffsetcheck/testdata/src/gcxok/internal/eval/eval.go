// Package eval is a clean boundary consumer: every role crossing into
// the buffer carries the offset translation; roleoffsetcheck must stay
// silent here.
package eval

import (
	"gcxtest/internal/buffer"
	"gcxtest/internal/xqast"
)

type Options struct {
	RoleOffset xqast.Role
}

type Compiled struct {
	Offsets    []xqast.Role
	roleCounts []int
}

type Evaluator struct {
	buf  *buffer.Buffer
	opts Options
}

// direct translation at the call site, the solo evaluator's shape.
func (e *Evaluator) signOff(binding *buffer.Node, role xqast.Role) {
	e.buf.SignOff(binding, role+e.opts.RoleOffset)
}

// throughLocal mirrors the workload accounting loop: the loop variable
// derives from Offsets, so every use of it is translated.
func throughLocal(c *Compiled, buf *buffer.Buffer, i int) int64 {
	var total int64
	for r := c.Offsets[i] + 1; r <= c.Offsets[i]+xqast.Role(c.roleCounts[i]); r++ {
		total += buf.AssignedCount(r)
		total += buf.RemovedCount(r)
	}
	return total
}

// nonRoleArgs never trips the check: only Role-typed parameters of the
// role APIs are proof obligations.
func nonRoleArgs(buf *buffer.Buffer, binding *buffer.Node) int64 {
	return buf.AssignedTotal(binding, 3)
}

// suppressed documents a deliberate solo-space probe.
func suppressed(e *Evaluator, role xqast.Role) {
	e.buf.AddRole(nil, role) //gcxlint:solorole solo-mode diagnostics run before any merge exists
}
