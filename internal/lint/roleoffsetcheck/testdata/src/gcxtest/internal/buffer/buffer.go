// Package buffer mirrors the real buffer manager's role APIs; the
// import-path suffix internal/buffer is what roleoffsetcheck matches.
package buffer

import "gcxtest/internal/xqast"

type Node struct{}

type Buffer struct {
	assigned []int64
	removed  []int64
}

func (b *Buffer) SignOff(binding *Node, role xqast.Role)   {}
func (b *Buffer) AddRole(n *Node, role xqast.Role)         {}
func (b *Buffer) AssignedCount(role xqast.Role) int64      { return b.assigned[role] }
func (b *Buffer) RemovedCount(role xqast.Role) int64       { return b.removed[role] }
func (b *Buffer) Unrelated(role xqast.Role)                {}
func (b *Buffer) AssignedTotal(binding *Node, n int) int64 { return int64(n) }
