// Package xqast mirrors the real AST package's Role type; the import-path
// suffix internal/xqast is what roleoffsetcheck matches.
package xqast

type Role int32
