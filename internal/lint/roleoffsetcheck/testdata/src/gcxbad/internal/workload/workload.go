// Package workload seeds role IDs that cross into the buffer without the
// offset translation.
package workload

import (
	"gcxtest/internal/buffer"
	"gcxtest/internal/xqast"
)

type member struct {
	Role xqast.Role
}

type Compiled struct {
	Offsets []xqast.Role
}

// rawRole hands the buffer a solo-space ID straight off the member query.
func rawRole(buf *buffer.Buffer, m *member, binding *buffer.Node) {
	buf.SignOff(binding, m.Role) // want `role ID passed to buffer SignOff without the RoleOffset translation`
}

// rawConversion counts roles by converting a bare loop index.
func rawConversion(buf *buffer.Buffer, n int) int64 {
	var total int64
	for i := 1; i <= n; i++ {
		total += buf.AssignedCount(xqast.Role(i)) // want `role ID passed to buffer AssignedCount without the RoleOffset translation`
	}
	return total
}

// clobbered shows the linear tracking: the local was translated once,
// then overwritten with a solo ID.
func clobbered(c *Compiled, buf *buffer.Buffer, m *member, i int) {
	r := c.Offsets[i] + 1
	buf.AddRole(nil, r) // translated here
	r = m.Role
	buf.AddRole(nil, r) // want `role ID passed to buffer AddRole without the RoleOffset translation`
}

// missingReason uses the escape hatch without justifying it.
func missingReason(buf *buffer.Buffer, m *member) {
	//gcxlint:solorole
	buf.AddRole(nil, m.Role) // want `//gcxlint:solorole requires a reason`
}
