package roleoffsetcheck_test

import (
	"testing"

	"gcx/internal/lint/gcxlint/linttest"
	"gcx/internal/lint/roleoffsetcheck"
)

func TestRoleOffsetCheck(t *testing.T) {
	linttest.Run(t, linttest.TestData(t), roleoffsetcheck.Analyzer, "gcxok/internal/eval", "gcxbad/internal/workload")
}
