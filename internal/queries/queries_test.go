package queries

import (
	"bytes"
	"strings"
	"testing"

	"gcx/internal/engine"
	"gcx/internal/static"
	"gcx/internal/xmark"
)

// testDoc generates a small XMark document shared by the tests.
func testDoc(t *testing.T) string {
	t.Helper()
	var b bytes.Buffer
	if _, err := xmark.Generate(&b, xmark.Config{Factor: 0.003, Seed: 42}); err != nil {
		t.Fatalf("generate: %v", err)
	}
	return b.String()
}

func TestAllQueriesCompile(t *testing.T) {
	for _, q := range All() {
		for _, mode := range []engine.Mode{engine.ModeGCX, engine.ModeStaticOnly, engine.ModeFullBuffer} {
			if _, err := engine.Compile(q.Text, engine.Config{Mode: mode}); err != nil {
				t.Fatalf("%s (%s): %v", q.Name, mode, err)
			}
		}
	}
}

func TestByName(t *testing.T) {
	if ByName("Q8").Name != "Q8" {
		t.Fatal("ByName(Q8) failed")
	}
	if ByName("Q99").Name != "" {
		t.Fatal("ByName must return zero value for unknown queries")
	}
}

// TestQueriesAgreeAcrossModes runs every benchmark query on generated
// XMark data in every mode and optimization mix; outputs must agree and
// GCX must satisfy the balance invariants.
func TestQueriesAgreeAcrossModes(t *testing.T) {
	doc := testDoc(t)
	optsets := []static.Options{
		{},
		{AggregateRoles: true},
		static.AllOptimizations(),
	}
	for _, q := range All() {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			ref, err := engine.Compile(q.Text, engine.Config{Mode: engine.ModeFullBuffer})
			if err != nil {
				t.Fatal(err)
			}
			var want strings.Builder
			if _, err := ref.Run(strings.NewReader(doc), &want); err != nil {
				t.Fatalf("reference: %v", err)
			}
			if want.Len() < 20 {
				t.Fatalf("suspiciously small output (%d bytes): workload not exercised", want.Len())
			}

			for i := range optsets {
				o := optsets[i]
				c, err := engine.Compile(q.Text, engine.Config{Mode: engine.ModeGCX, Static: &o})
				if err != nil {
					t.Fatal(err)
				}
				var got strings.Builder
				if _, err := c.RunChecked(strings.NewReader(doc), &got); err != nil {
					t.Fatalf("gcx %+v: %v", o, err)
				}
				if got.String() != want.String() {
					t.Fatalf("gcx %+v output differs from reference\ngcx: %.400s\nref: %.400s",
						o, got.String(), want.String())
				}
			}

			so, err := engine.Compile(q.Text, engine.Config{Mode: engine.ModeStaticOnly})
			if err != nil {
				t.Fatal(err)
			}
			var got strings.Builder
			if _, err := so.Run(strings.NewReader(doc), &got); err != nil {
				t.Fatalf("static-only: %v", err)
			}
			if got.String() != want.String() {
				t.Fatal("static-only output differs from reference")
			}
		})
	}
}

// TestQ1FindsPerson0: the generated data always contains person0 and Q1
// must output exactly one name.
func TestQ1FindsPerson0(t *testing.T) {
	doc := testDoc(t)
	c, err := engine.Compile(Q1.Text, engine.Config{Mode: engine.ModeGCX})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if _, err := c.Run(strings.NewReader(doc), &out); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "<name>"); got != 1 {
		t.Fatalf("Q1 output has %d names, want 1: %s", got, out.String())
	}
}

// TestQ20Partition: every person lands in exactly one bracket, so the
// marker count equals the person count.
func TestQ20Partition(t *testing.T) {
	doc := testDoc(t)
	persons := strings.Count(doc, "<person ")
	c, err := engine.Compile(Q20.Text, engine.Config{Mode: engine.ModeGCX})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if _, err := c.Run(strings.NewReader(doc), &out); err != nil {
		t.Fatal(err)
	}
	markers := strings.Count(out.String(), "<preferred>") +
		strings.Count(out.String(), "<standard>") +
		strings.Count(out.String(), "<challenge>") +
		strings.Count(out.String(), "<na>")
	if markers != persons {
		t.Fatalf("Q20 emitted %d markers for %d persons", markers, persons)
	}
	if strings.Count(out.String(), "<na>") == 0 {
		t.Fatal("Q20 must classify some income-less persons")
	}
}

// TestQ8JoinCardinality: each closed auction has exactly one buyer, so the
// total number of <bought/> markers equals the closed-auction count.
func TestQ8JoinCardinality(t *testing.T) {
	doc := testDoc(t)
	auctions := strings.Count(doc, "<closed_auction>")
	c, err := engine.Compile(Q8.Text, engine.Config{Mode: engine.ModeGCX})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if _, err := c.Run(strings.NewReader(doc), &out); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "<bought>"); got != auctions {
		t.Fatalf("Q8 emitted %d bought markers for %d auctions", got, auctions)
	}
}

// TestMemoryShapes reproduces the qualitative claims of Table 1 on small
// data: GCX needs a bounded buffer for Q1/Q6/Q13/Q20 while Q8 retains the
// join region; StaticOnly needs the projected document; FullBuffer needs
// everything.
func TestMemoryShapes(t *testing.T) {
	doc := testDoc(t)
	peak := func(q Query, mode engine.Mode) int64 {
		c, err := engine.Compile(q.Text, engine.Config{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		var out strings.Builder
		st, err := c.Run(strings.NewReader(doc), &out)
		if err != nil {
			t.Fatalf("%s/%s: %v", q.Name, mode, err)
		}
		return st.Buffer.PeakBytes
	}

	for _, q := range []Query{Q1, Q6, Q13, Q20} {
		gcx := peak(q, engine.ModeGCX)
		so := peak(q, engine.ModeStaticOnly)
		full := peak(q, engine.ModeFullBuffer)
		if !(gcx < so && so <= full) {
			t.Fatalf("%s: peak ordering violated: gcx=%d static=%d full=%d", q.Name, gcx, so, full)
		}
		if gcx*10 > full {
			t.Fatalf("%s: GCX peak %d not an order of magnitude below full buffering %d", q.Name, gcx, full)
		}
	}

	// Q8 buffers the join region but still beats full buffering.
	gcx8 := peak(Q8, engine.ModeGCX)
	full8 := peak(Q8, engine.ModeFullBuffer)
	if gcx8 >= full8 {
		t.Fatalf("Q8: GCX peak %d must undercut full buffering %d", gcx8, full8)
	}
	gcx1 := peak(Q1, engine.ModeGCX)
	if gcx8 <= gcx1*2 {
		t.Fatalf("Q8 (join) peak %d should clearly exceed Q1 peak %d", gcx8, gcx1)
	}
}
