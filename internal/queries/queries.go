// Package queries contains the five XMark queries of the paper's
// evaluation (Section 7, Table 1), adapted to the fragment XQ exactly as
// the paper describes:
//
//   - XML attributes are treated as subelements (the tokenizer converts
//     them, so @id becomes the child element id);
//   - aggregations such as count($x) are replaced by outputting the value
//     of $x instead (we emit one marker or value element per qualifying
//     node);
//   - multi-step paths in for-loops become nested single-step loops (our
//     normalizer mechanizes this, so the texts below may use multi-step
//     paths for readability);
//   - where-clauses become if-then-else.
package queries

// Query couples a query text with its provenance.
type Query struct {
	// Name is the XMark query identifier, e.g. "Q1".
	Name string
	// Text is the adapted XQuery source.
	Text string
	// Description summarizes the original XMark query and the adaptation.
	Description string
}

// All returns the benchmark queries in Table 1 order.
func All() []Query {
	return []Query{Q1, Q6, Q8, Q13, Q20}
}

// ByName returns the query with the given name (case-sensitive), or a zero
// Query if unknown.
func ByName(name string) Query {
	for _, q := range All() {
		if q.Name == name {
			return q
		}
	}
	return Query{}
}

// Q1: "Return the name of the person with ID person0."
// Original: for $b in /site/people/person[@id="person0"] return $b/name.
// Adapted: the predicate becomes an if over the id subelement.
var Q1 = Query{
	Name: "Q1",
	Text: `<q1>{
  for $b in /site/people/person return
    if ($b/id = "person0") then $b/name else ()
}</q1>`,
	Description: "exact-match filter over the people region; constant-memory streaming for GCX",
}

// Q6: "How many items are listed on all continents?"
// Original: count(//regions//item). Adapted per the paper: the aggregate
// is replaced by outputting the value (one element per item, carrying the
// item's name). The descendant axis is the point of this query — the paper
// notes FluXQuery cannot run it ("n/a" in Table 1).
var Q6 = Query{
	Name: "Q6",
	Text: `<q6>{
  for $r in /site/regions return
    for $i in $r//item return
      <item>{ $i/name }</item>
}</q6>`,
	Description: "descendant-axis scan over all regions; constant-memory streaming for GCX",
}

// Q8: "List the names of persons and the number of items they bought."
// Original: a join of people with closed_auctions on buyer/@person with
// count over the matches. Adapted: one <bought/> marker per matching
// purchase (count replaced by value output). The nested loop re-iterates
// the closed_auctions region for every person, so the region must stay
// buffered until the end — the memory-versus-time behaviour Table 1 shows
// for Q8.
var Q8 = Query{
	Name: "Q8",
	Text: `<q8>{
  for $p in /site/people/person return
    <item>{
      ($p/name,
       for $t in /site/closed_auctions/closed_auction return
         if ($t/buyer/person = $p/id) then <bought/> else ())
    }</item>
}</q8>`,
	Description: "nested-loop value join people ⋈ closed_auctions; buffer grows with the inner region",
}

// Q13: "List the names of items registered in Australia along with their
// descriptions." Original: for $i in /site/regions/australia/item return
// <item name="{$i/@name}">{$i/description}</item>. Adapted: the name
// attribute of the output element becomes a child element.
var Q13 = Query{
	Name: "Q13",
	Text: `<q13>{
  for $i in /site/regions/australia/item return
    <item>{ ($i/name, $i/description) }</item>
}</q13>`,
	Description: "path-restricted scan with subtree output; constant-memory streaming for GCX",
}

// Q20: "Group customers by their income." Original: four count()
// aggregates over income brackets (income is a profile attribute).
// Adapted: single pass over people emitting one bracket marker per person
// (counts replaced by value output, multi-step paths split, attributes as
// subelements) — the single-step-per-loop form of [7] that the paper
// benchmarks.
var Q20 = Query{
	Name: "Q20",
	Text: `<q20>{
  for $p in /site/people/person return
    (if ($p/profile/income >= 100000) then <preferred/> else (),
     if ($p/profile/income < 100000 and $p/profile/income >= 30000) then <standard/> else (),
     if ($p/profile/income < 30000) then <challenge/> else (),
     if (not(exists($p/profile/income))) then <na/> else ())
}</q20>`,
	Description: "income bracket classification; constant-memory streaming for GCX",
}
