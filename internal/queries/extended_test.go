package queries

import (
	"strings"
	"testing"

	"gcx/internal/dtd"
	"gcx/internal/engine"
	"gcx/internal/xmark"
)

// TestExtendedQueriesAgreeAcrossModes: the extended corpus passes the same
// cross-engine equivalence and balance checks as the Table 1 queries.
func TestExtendedQueriesAgreeAcrossModes(t *testing.T) {
	doc := testDoc(t)
	schema := dtd.MustParse(xmark.DTD)
	for _, q := range Extended() {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			ref, err := engine.Compile(q.Text, engine.Config{Mode: engine.ModeFullBuffer})
			if err != nil {
				t.Fatal(err)
			}
			var want strings.Builder
			if _, err := ref.Run(strings.NewReader(doc), &want); err != nil {
				t.Fatalf("reference: %v", err)
			}
			if want.Len() < 20 {
				t.Fatalf("suspiciously small output (%d bytes)", want.Len())
			}

			for _, cfg := range []engine.Config{
				{Mode: engine.ModeGCX},
				{Mode: engine.ModeGCX, Schema: schema},
				{Mode: engine.ModeStaticOnly},
			} {
				c, err := engine.Compile(q.Text, cfg)
				if err != nil {
					t.Fatal(err)
				}
				var got strings.Builder
				if cfg.Mode == engine.ModeGCX {
					if _, err := c.RunChecked(strings.NewReader(doc), &got); err != nil {
						t.Fatalf("%v: %v", cfg, err)
					}
				} else {
					if _, err := c.Run(strings.NewReader(doc), &got); err != nil {
						t.Fatalf("%v: %v", cfg, err)
					}
				}
				if got.String() != want.String() {
					t.Fatalf("%v output differs\ngot:  %.300s\nwant: %.300s", cfg, got.String(), want.String())
				}
			}
		})
	}
}

// TestQ17Complement: persons with and without homepages partition the
// people section.
func TestQ17Complement(t *testing.T) {
	doc := testDoc(t)
	persons := strings.Count(doc, "<person ")
	withHomepage := strings.Count(doc, "<homepage>")

	c, err := engine.Compile(Q17.Text, engine.Config{Mode: engine.ModeGCX})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if _, err := c.Run(strings.NewReader(doc), &out); err != nil {
		t.Fatal(err)
	}
	got := strings.Count(out.String(), "<person>")
	if got != persons-withHomepage {
		t.Fatalf("Q17 found %d homepage-less persons, want %d-%d=%d",
			got, persons, withHomepage, persons-withHomepage)
	}
}

// TestQ5NumericFilter: every emitted price must satisfy the predicate
// (spot-check on the serialized output).
func TestQ5NumericFilter(t *testing.T) {
	doc := testDoc(t)
	c, err := engine.Compile(Q5.Text, engine.Config{Mode: engine.ModeGCX})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if _, err := c.Run(strings.NewReader(doc), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "<sold><price>") {
		t.Fatalf("Q5 produced no sold items: %.200s", out.String())
	}
	// Total closed auctions must exceed qualifying ones (prices are
	// uniform over 1..400, so both sides of the threshold occur).
	auctions := strings.Count(doc, "<closed_auction>")
	sold := strings.Count(out.String(), "<sold>")
	if sold == 0 || sold >= auctions {
		t.Fatalf("Q5 selectivity implausible: %d of %d", sold, auctions)
	}
}
