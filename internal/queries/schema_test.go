package queries

import (
	"strings"
	"testing"

	"gcx/internal/dtd"
	"gcx/internal/engine"
	"gcx/internal/xmark"
)

// TestSchemaEquivalenceOnXMark: every benchmark query produces identical
// output with and without the XMark DTD, never reads more tokens with it,
// and keeps the role balance invariants.
func TestSchemaEquivalenceOnXMark(t *testing.T) {
	doc := testDoc(t)
	schema := dtd.MustParse(xmark.DTD)

	for _, q := range All() {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			plain, err := engine.Compile(q.Text, engine.Config{Mode: engine.ModeGCX})
			if err != nil {
				t.Fatal(err)
			}
			var out1 strings.Builder
			st1, err := plain.RunChecked(strings.NewReader(doc), &out1)
			if err != nil {
				t.Fatal(err)
			}

			sch, err := engine.Compile(q.Text, engine.Config{Mode: engine.ModeGCX, Schema: schema})
			if err != nil {
				t.Fatal(err)
			}
			var out2 strings.Builder
			st2, err := sch.RunChecked(strings.NewReader(doc), &out2)
			if err != nil {
				t.Fatal(err)
			}

			if out1.String() != out2.String() {
				t.Fatalf("schema changed the result:\nplain:  %.300s\nschema: %.300s",
					out1.String(), out2.String())
			}
			if st2.TokensRead > st1.TokensRead {
				t.Fatalf("schema run read more tokens: %d vs %d", st2.TokensRead, st1.TokensRead)
			}
			if st2.Buffer.PeakNodes > st1.Buffer.PeakNodes {
				t.Fatalf("schema run buffered more: %d vs %d nodes",
					st2.Buffer.PeakNodes, st1.Buffer.PeakNodes)
			}
		})
	}
}

// TestSchemaSavesTokensOnQ13: Q13 only needs the regions section; the DTD
// proves regions cannot reappear after categories, so most of the stream
// is skipped.
func TestSchemaSavesTokensOnQ13(t *testing.T) {
	doc := testDoc(t)
	schema := dtd.MustParse(xmark.DTD)

	run := func(s *dtd.Schema) int64 {
		c, err := engine.Compile(Q13.Text, engine.Config{Mode: engine.ModeGCX, Schema: s})
		if err != nil {
			t.Fatal(err)
		}
		var out strings.Builder
		st, err := c.Run(strings.NewReader(doc), &out)
		if err != nil {
			t.Fatal(err)
		}
		return st.TokensRead
	}

	plain := run(nil)
	withSchema := run(schema)
	if withSchema*2 > plain {
		t.Fatalf("schema must cut Q13's token count at least in half: %d vs %d", withSchema, plain)
	}
}
