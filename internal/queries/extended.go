package queries

// Extended corpus: further XMark queries expressible in the fragment XQ
// after the paper's adaptations. They are not part of Table 1 but widen
// the engine's test coverage and give the benchmark harness more
// workloads (the paper's Section 7 adaptation rules apply unchanged).

// Extended returns the additional adapted XMark queries.
func Extended() []Query {
	return []Query{Q5, Q15, Q17}
}

// AllIncludingExtended returns Table 1 queries followed by the extended
// corpus.
func AllIncludingExtended() []Query {
	return append(All(), Extended()...)
}

// Q5: "How many sold items cost more than 40?" Original:
// count(for $i in /site/closed_auctions/closed_auction
//
//	where $i/price/text() >= 40 return $i/price).
//
// Adapted: count becomes one marker per qualifying auction.
var Q5 = Query{
	Name: "Q5",
	Text: `<q5>{
  for $i in /site/closed_auctions/closed_auction return
    if ($i/price >= 40) then <sold>{ $i/price }</sold> else ()
}</q5>`,
	Description: "numeric filter over closed auctions; constant-memory streaming for GCX",
}

// Q15: "Print the keywords in emphasis in annotations of closed auctions"
// (originally a long single path). Adapted: our annotation structure
// carries description/text; the long path becomes nested single-step
// loops automatically.
var Q15 = Query{
	Name: "Q15",
	Text: `<q15>{
  for $a in /site/closed_auctions/closed_auction/annotation/description/text return
    <text>{ $a/text() }</text>
}</q15>`,
	Description: "deep path navigation; constant-memory streaming for GCX",
}

// Q17: "Which persons don't have a homepage?" Original: a where-clause
// with empty(...); adapted with not(exists(...)).
var Q17 = Query{
	Name: "Q17",
	Text: `<q17>{
  for $p in /site/people/person return
    if (not(exists($p/homepage))) then <person>{ $p/name }</person> else ()
}</q17>`,
	Description: "negated existence check; constant-memory streaming for GCX",
}
