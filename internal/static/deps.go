package static

import (
	"fmt"

	"gcx/internal/projtree"
	"gcx/internal/xqast"
)

// collectDeps derives the dependency sets dep($x) of Definition 2 from the
// (early-update-rewritten) query:
//
//   - 〈axis::ν[1], r〉           for existence checks exists($x/axis::ν);
//   - 〈axis::ν/dos::node(), r〉  for output paths $x/axis::ν and comparison
//     operands;
//   - 〈dos::node(), r〉          for bare outputs $x.
//
// Conditions with multi-step paths yield correspondingly longer chains (a
// conservative generalization; see package normalize). Duplicate tuples for
// the same variable are derived only once: a single tuple yields a single
// role, a single assignment site, and a single signOff, so the balance
// requirement of Section 3 is preserved.
func (a *Analysis) collectDeps(q *xqast.Query) {
	seen := map[string]bool{}
	add := func(v string, steps []xqast.Step, kind projtree.RoleKind, desc string) {
		key := fmt.Sprintf("%s|%v|%d", v, xqast.Path{Var: v, Steps: steps}, kind)
		if seen[key] {
			return
		}
		seen[key] = true
		a.Deps[v] = append(a.Deps[v], &Dep{Var: v, Steps: steps, Kind: kind, Desc: desc})
	}

	outputPath := func(p xqast.Path, kind projtree.RoleKind, desc string) {
		steps := append([]xqast.Step(nil), p.Steps...)
		if len(steps) == 0 {
			// Bare variable use. If the variable binds text nodes
			// (a text() for-loop), its binding role already keeps the
			// node buffered and there is no subtree to capture: no
			// dependency is needed.
			if vi := a.Vars[p.Var]; vi != nil && vi.Step.Test.Kind == xqast.TestText {
				return
			}
			steps = append(steps, xqast.Step{Axis: xqast.DescendantOrSelf, Test: xqast.NodeKindTest()})
			add(p.Var, steps, kind, desc)
			return
		}
		// Output and comparison dependencies need the complete subtree,
		// expressed by a trailing dos::node() step — except for text()
		// leaves, which have no descendants.
		if steps[len(steps)-1].Test.Kind != xqast.TestText {
			steps = append(steps, xqast.Step{Axis: xqast.DescendantOrSelf, Test: xqast.NodeKindTest()})
		}
		add(p.Var, steps, kind, desc)
	}

	condDeps := func(c xqast.Cond) {
		switch c := c.(type) {
		case xqast.Exists:
			steps := append([]xqast.Step(nil), c.Path.Steps...)
			steps[len(steps)-1].First = true
			add(c.Path.Var, steps, projtree.RoleExists, "exists("+c.Path.String()+")")
		case xqast.Compare:
			desc := c.LHS.String() + " " + c.Op.String() + " " + c.RHS.String()
			if !c.LHS.IsLiteral {
				outputPath(c.LHS.Path, projtree.RoleCompare, desc)
			}
			if !c.RHS.IsLiteral {
				outputPath(c.RHS.Path, projtree.RoleCompare, desc)
			}
		}
	}

	xqast.Walk(q.Root, func(e xqast.Expr) bool {
		switch e := e.(type) {
		case xqast.VarRef:
			outputPath(xqast.Path{Var: e.Var}, projtree.RoleOutput, "$"+e.Var)
		case xqast.PathExpr:
			outputPath(e.Path, projtree.RoleOutput, e.Path.String())
		}
		return true
	})
	// Conditions of if-expressions and conditional tags, including nested
	// and/or/not operands.
	xqast.WalkConds(q.Root, condDeps)
}

// applyEarlyUpdates rewrites every output path expression $x/σ into
// "for $fresh in $x/σ return $fresh" (Section 6, "Early Updates"), so the
// per-node output role is signed off immediately after each node is
// emitted instead of at the end of the enclosing scope.
func applyEarlyUpdates(q *xqast.Query) *xqast.Query {
	used := map[string]bool{xqast.RootVar: true}
	xqast.Walk(q.Root, func(e xqast.Expr) bool {
		if f, ok := e.(xqast.For); ok {
			used[f.Var] = true
		}
		return true
	})
	fresh := 0
	freshVar := func(base string) string {
		for {
			fresh++
			name := fmt.Sprintf("%s_eu%d", base, fresh)
			if !used[name] {
				used[name] = true
				return name
			}
		}
	}
	child := xqast.Rewrite(q.Root.Child, func(e xqast.Expr) xqast.Expr {
		pe, ok := e.(xqast.PathExpr)
		if !ok {
			return e
		}
		v := freshVar(pe.Path.Var)
		return xqast.For{Var: v, In: pe.Path, Return: xqast.VarRef{Var: v}}
	})
	return &xqast.Query{Root: xqast.Element{Name: q.Root.Name, Child: child}}
}
