package static

import (
	"gcx/internal/dtd"
	"gcx/internal/xqast"
)

// ApplySchemaFacts rewrites conditions of the analyzed query that a DTD
// decides for every valid document: an existence check whose step chain
// the content models prove present in all documents becomes true(), and
// one whose chain they prove absent becomes not(true()). The evaluator
// then answers the condition the moment its context binding exists,
// without waiting for (or pulling toward) a witness event — the static
// half of earliest answering, complementing the evaluator's runtime
// MustContain/CanContain shortcuts for bindings whose tag only becomes
// known dynamically.
//
// Only conditions are rewritten. The projection tree, role table, and
// signOff statements are left untouched: witness regions stay projected
// and signed off exactly as before, so role balance and buffering
// behavior are unchanged and output stays byte-identical — the rewrite
// changes WHEN a condition is known, never what it evaluates to.
// Matching CondTag open/close pairs carry syntactically equal conditions
// and the rewrite is deterministic on the condition's syntax and the
// enclosing binder chain, so pairs stay equal.
func ApplySchemaFacts(a *Analysis, s *dtd.Schema) {
	if a == nil || a.Query == nil || s == nil {
		return
	}
	env := map[string]string{}
	root := rewriteSchemaExpr(a.Query.Root, env, s).(xqast.Element)
	a.Query.Root = root
}

// rewriteSchemaExpr walks the expression tree carrying the binder
// environment: variable name → element tag its bindings are known to
// carry ("" when statically unknown, e.g. a star or text() test).
func rewriteSchemaExpr(x xqast.Expr, env map[string]string, s *dtd.Schema) xqast.Expr {
	switch x := x.(type) {
	case xqast.Sequence:
		items := make([]xqast.Expr, len(x.Items))
		for i, item := range x.Items {
			items[i] = rewriteSchemaExpr(item, env, s)
		}
		return xqast.Sequence{Items: items}
	case xqast.Element:
		return xqast.Element{Name: x.Name, Child: rewriteSchemaExpr(x.Child, env, s)}
	case xqast.For:
		inner := make(map[string]string, len(env)+1)
		for k, v := range env {
			inner[k] = v
		}
		inner[x.Var] = bindingTag(x.In, env)
		return xqast.For{Var: x.Var, In: x.In, Return: rewriteSchemaExpr(x.Return, inner, s)}
	case xqast.If:
		return xqast.If{
			Cond: rewriteSchemaCond(x.Cond, env, s),
			Then: rewriteSchemaExpr(x.Then, env, s),
			Else: rewriteSchemaExpr(x.Else, env, s),
		}
	case xqast.CondTag:
		return xqast.CondTag{Cond: rewriteSchemaCond(x.Cond, env, s), Name: x.Name, Open: x.Open}
	default:
		// Empty, Text, VarRef, PathExpr, SignOff: no conditions below.
		return x
	}
}

// bindingTag returns the element tag every binding of the path carries: a
// node yielded by any axis step with a name test is an element of that
// name, so only the LAST step matters. Unknown ("") for star/text()/
// node() tests and for bare-variable paths whose binder is itself
// unknown.
func bindingTag(p xqast.Path, env map[string]string) string {
	if len(p.Steps) == 0 {
		return env[p.Var]
	}
	last := p.Steps[len(p.Steps)-1]
	if last.Test.Kind == xqast.TestName {
		return last.Test.Name
	}
	return ""
}

func rewriteSchemaCond(c xqast.Cond, env map[string]string, s *dtd.Schema) xqast.Cond {
	switch c := c.(type) {
	case xqast.Exists:
		switch decideExists(c.Path, env, s) {
		case schemaTrue:
			return xqast.TrueCond{}
		case schemaFalse:
			return xqast.Not{C: xqast.TrueCond{}}
		}
		return c
	case xqast.Not:
		return xqast.Not{C: rewriteSchemaCond(c.C, env, s)}
	case xqast.And:
		return xqast.And{L: rewriteSchemaCond(c.L, env, s), R: rewriteSchemaCond(c.R, env, s)}
	case xqast.Or:
		return xqast.Or{L: rewriteSchemaCond(c.L, env, s), R: rewriteSchemaCond(c.R, env, s)}
	default:
		// TrueCond stays; Compare depends on document values, which no
		// DTD decides.
		return c
	}
}

type schemaVerdict int

const (
	schemaUnknown schemaVerdict = iota
	schemaTrue
	schemaFalse
)

// decideExists checks an existence path link by link against the content
// models. A chain of child-axis name tests where every link is mandatory
// (dtd.MustContain) is present in every valid document; a chain broken by
// a link the parent's model excludes (CanContain known-false) is absent
// from all of them. Anything the DTD does not pin down — unknown binder
// tag, non-child axis, star/text() tests, undeclared elements, ANY
// content — stays undecided and keeps its runtime check.
func decideExists(p xqast.Path, env map[string]string, s *dtd.Schema) schemaVerdict {
	tag := env[p.Var]
	if tag == "" || len(p.Steps) == 0 {
		return schemaUnknown
	}
	all := true
	for _, st := range p.Steps {
		if st.Axis != xqast.Child || st.Test.Kind != xqast.TestName {
			return schemaUnknown
		}
		if can, known := s.CanContain(tag, st.Test.Name); known && !can {
			return schemaFalse
		}
		all = all && s.MustContain(tag, st.Test.Name)
		tag = st.Test.Name
	}
	if all {
		return schemaTrue
	}
	return schemaUnknown
}
