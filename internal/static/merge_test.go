package static

import (
	"testing"

	"gcx/internal/projtree"
	"gcx/internal/xqast"
)

// Tests for the shared-automaton merge: structurally identical nodes of
// DIFFERENT member queries collapse to one merged node carrying extra role
// lanes, nodes of the SAME member never collapse, and the disjoint variant
// keeps verbatim clones.

func trees(t *testing.T, queries ...string) []*projtree.Tree {
	t.Helper()
	out := make([]*projtree.Tree, len(queries))
	for i, q := range queries {
		out[i] = analyze(t, q, AllOptimizations()).Tree
	}
	return out
}

func laneCount(tr *projtree.Tree) int {
	n := 0
	for _, node := range tr.Nodes {
		n += len(node.Extra)
	}
	return n
}

// TestMergeSharesCommonPrefix: two queries over /bib/book with different
// leaf interests share the /bib and /book spine; only the leaves stay
// separate.
func TestMergeSharesCommonPrefix(t *testing.T) {
	q1 := `<q>{ for $b in /bib/book return $b/title }</q>`
	q2 := `<q>{ for $p in /bib/book return $p/price }</q>`
	ts := trees(t, q1, q2)
	solo1, solo2 := len(ts[0].Nodes), len(ts[1].Nodes)

	m, offsets := MergeTrees(ts)
	disjointSize := solo1 + solo2 - 1 // shared root only
	if len(m.Nodes) >= disjointSize {
		t.Fatalf("merged tree has %d nodes, expected sharing below the disjoint size %d:\n%s",
			len(m.Nodes), disjointSize, m.Format())
	}
	// The shared spine is /bib and /book: exactly two nodes carry a lane.
	if got := laneCount(m); got != 2 {
		t.Fatalf("expected 2 lane refs (shared /bib and /book), got %d:\n%s", got, m.Format())
	}
	// Role spaces stay disjoint: query 2's roles are offset past query 1's.
	if offsets[0] != 0 {
		t.Fatalf("first query's offset must be 0, got %d", offsets[0])
	}
	soloRoles1 := xqast.Role(len(ts[0].Roles) - 1)
	if offsets[1] != soloRoles1 {
		t.Fatalf("second query's offset must be %d, got %d", soloRoles1, offsets[1])
	}
	if want := int(soloRoles1) + len(ts[1].Roles) - 1 + 1; len(m.Roles) != want {
		t.Fatalf("combined role table has %d entries, want %d", len(m.Roles), want)
	}
	// Every combined role's node must live in the merged tree.
	inMerged := map[*projtree.Node]bool{}
	for _, n := range m.Nodes {
		inMerged[n] = true
	}
	for _, r := range m.Roles[1:] {
		if r.Node != nil && !inMerged[r.Node] {
			t.Fatalf("role r%d points outside the merged tree", r.ID)
		}
	}
}

// TestMergeIdenticalQueries: N copies of the same query collapse to the
// solo tree shape — the node count stays constant as copies are added,
// which is the sublinearity the subscription registry relies on.
func TestMergeIdenticalQueries(t *testing.T) {
	q := `<q>{ for $b in /bib/book return if (exists($b/price)) then $b/title else () }</q>`
	ts := trees(t, q, q, q, q)
	solo := len(ts[0].Nodes)

	m, offsets := MergeTrees(ts)
	if len(m.Nodes) != solo {
		t.Fatalf("four identical queries merged to %d nodes, want the solo %d:\n%s",
			len(m.Nodes), solo, m.Format())
	}
	// Role spaces still stack: each copy owns a full range.
	soloRoles := len(ts[0].Roles) - 1
	for i, off := range offsets {
		if int(off) != i*soloRoles {
			t.Fatalf("offset[%d] = %d, want %d", i, off, i*soloRoles)
		}
	}
	if len(m.Roles) != 4*soloRoles+1 {
		t.Fatalf("combined role table has %d entries, want %d", len(m.Roles), 4*soloRoles+1)
	}
}

// TestMergeNeverSharesWithinOneQuery: a query whose own tree contains two
// structurally identical sibling subtrees keeps them separate after the
// merge — sharing is strictly cross-member (each member's solo matching
// structure is preserved).
func TestMergeNeverSharesWithinOneQuery(t *testing.T) {
	q := `<q>{ (for $a in /bib/book return <x/>), (for $b in /bib/book return <y/>) }</q>`
	ts := trees(t, q)
	solo := len(ts[0].Nodes)

	m, _ := MergeTrees(ts)
	if len(m.Nodes) != solo {
		t.Fatalf("single-member merge changed the node count: %d vs solo %d:\n%s",
			len(m.Nodes), solo, m.Format())
	}
	if got := laneCount(m); got != 0 {
		t.Fatalf("single-member merge must not create lanes, got %d", got)
	}

	// Two copies of the duplicate-path query: cross-member sharing still
	// collapses the trees onto each other (same count as one), and each
	// member's two /bib/book chains land on two DISTINCT merged nodes.
	m2, _ := MergeTrees(trees(t, q, q))
	if len(m2.Nodes) != solo {
		t.Fatalf("two copies merged to %d nodes, want %d:\n%s", len(m2.Nodes), solo, m2.Format())
	}
}

// TestMergeDisjointKeepsClones: the pre-sharing merge clones every member
// subtree verbatim — node count is the sum, and no lanes exist.
func TestMergeDisjointKeepsClones(t *testing.T) {
	q1 := `<q>{ for $b in /bib/book return $b/title }</q>`
	q2 := `<q>{ for $p in /bib/book return $p/price }</q>`
	ts := trees(t, q1, q2)
	solo1, solo2 := len(ts[0].Nodes), len(ts[1].Nodes)

	m, offsets := MergeTreesDisjoint(ts)
	if want := solo1 + solo2 - 1; len(m.Nodes) != want {
		t.Fatalf("disjoint merge has %d nodes, want %d", len(m.Nodes), want)
	}
	if got := laneCount(m); got != 0 {
		t.Fatalf("disjoint merge must not create lanes, got %d", got)
	}
	if offsets[0] != 0 || offsets[1] != xqast.Role(len(ts[0].Roles)-1) {
		t.Fatalf("disjoint offsets wrong: %v", offsets)
	}
}

// TestShareablePredicate: the sharing guard refuses every mismatch that
// would change matching or cancellation semantics — different steps
// (including the [1] predicate), variable/chain class (binding lanes are
// exempt from the cancellation reduction chain lanes undergo), and
// self-anchoring.
func TestShareablePredicate(t *testing.T) {
	step := func(name string, first bool) xqast.Step {
		return xqast.Step{Axis: xqast.Child, Test: xqast.NameTest(name), First: first}
	}
	base := &projtree.Node{Step: step("book", false), Var: "b", AnchorSelf: true}
	cases := []struct {
		name string
		n    *projtree.Node
		want bool
	}{
		{"identical shape", &projtree.Node{Step: step("book", false), Var: "p", AnchorSelf: true}, true},
		{"different tag", &projtree.Node{Step: step("price", false), Var: "p", AnchorSelf: true}, false},
		{"[1] predicate differs", &projtree.Node{Step: step("book", true), Var: "p", AnchorSelf: true}, false},
		{"chain vs binding class", &projtree.Node{Step: step("book", false), Var: "", AnchorSelf: true}, false},
		{"anchor class differs", &projtree.Node{Step: step("book", false), Var: "p", AnchorSelf: false}, false},
	}
	for _, c := range cases {
		if got := shareable(base, c.n); got != c.want {
			t.Errorf("%s: shareable = %v, want %v", c.name, got, c.want)
		}
	}
}
