// Package static implements the compile-time analysis of the paper
// (Section 4): variable trees, dependencies (Definition 2), straight
// variables and first straight ancestors (Definitions 3-4), projection-tree
// derivation, signOff insertion (algorithm suQ, Figure 8), and the
// optimizations of Section 6 (early updates, aggregate roles,
// redundant-role elimination).
//
// Input queries must be normalized (package normalize) and if-pushed
// (package ifpush); Analyze checks the preconditions it relies on.
package static

import (
	"fmt"

	"gcx/internal/ifpush"
	"gcx/internal/projtree"
	"gcx/internal/xqast"
)

// Options selects the Section 6 optimizations. The zero value disables all
// of them, which reproduces the paper's base technique (and the exact
// rewritten queries shown in the paper's figures).
type Options struct {
	// EarlyUpdates rewrites output expressions $x/σ to
	// "for $fresh in $x/σ return $fresh" so nodes lose their output roles
	// immediately after being emitted (Section 6, "Early Updates").
	EarlyUpdates bool
	// AggregateRoles assigns dos::node() roles once at each subtree root
	// instead of at every node of the subtree (Section 6, "Aggregate
	// Roles").
	AggregateRoles bool
	// EliminateRedundantRoles drops roles whose buffering effect is
	// subsumed by other roles (Section 6, "Elimination of Redundant
	// Roles"); see DESIGN.md for the two criteria implemented.
	EliminateRedundantRoles bool
}

// AllOptimizations returns the configuration GCX runs with by default.
func AllOptimizations() Options {
	return Options{EarlyUpdates: true, AggregateRoles: true, EliminateRedundantRoles: true}
}

// VarInfo records the static facts about one query variable.
type VarInfo struct {
	Name string
	// Parent is parVarQ (Section 3); empty for $root.
	Parent string
	// Step is the single location step of the variable's for-loop.
	Step xqast.Step
	// Enclosing lists the binders of the for-loops syntactically enclosing
	// this variable's for-loop, outermost first.
	Enclosing []string
	// Straight per Definition 3.
	Straight bool
	// FSA is the first straight ancestor per Definition 4.
	FSA string
	// Node is the variable's projection-tree node.
	Node *projtree.Node
	// BindingRole is the role assigned to nodes this variable binds to
	// (0 for $root).
	BindingRole xqast.Role
}

// Dep is one dependency tuple 〈$x/π, r〉 from Definition 2.
type Dep struct {
	Var   string
	Steps []xqast.Step
	Kind  projtree.RoleKind
	Role  xqast.Role
	Desc  string
}

// Path returns the dependency path rooted at its variable.
func (d *Dep) Path() xqast.Path {
	return xqast.Path{Var: d.Var, Steps: d.Steps}
}

// Analysis is the result of static analysis: the rewritten query with
// signOff statements, the projection tree with its role table, and the
// per-variable facts.
type Analysis struct {
	// Query is the rewritten query (early updates applied, signOff
	// statements inserted).
	Query *xqast.Query
	// Tree is the projection tree driving stream projection and role
	// assignment.
	Tree *projtree.Tree
	// Vars maps variable names to their analysis records.
	Vars map[string]*VarInfo
	// VarOrder lists variables in document order of their for-loops,
	// starting with $root.
	VarOrder []string
	// Deps maps variables to their dependency tuples in derivation order.
	Deps map[string][]*Dep
	// Opts echoes the options used.
	Opts Options
}

// Var returns the record for a variable name, or nil.
func (a *Analysis) Var(name string) *VarInfo { return a.Vars[name] }

// Analyze runs the full static analysis on a normalized, if-pushed query.
func Analyze(q *xqast.Query, opts Options) (*Analysis, error) {
	a := &Analysis{
		Vars: map[string]*VarInfo{},
		Deps: map[string][]*Dep{},
		Opts: opts,
	}

	work := q
	if opts.EarlyUpdates {
		// Early updates introduce fresh for-loops around output paths;
		// if-pushdown must run again afterwards so that no for-loop (and
		// hence no signOff batch) remains inside an if-expression — the
		// guarantee of Section 3 that keeps role assignment and removal
		// balanced.
		work = ifpush.Push(applyEarlyUpdates(work))
	}

	if err := a.collectVars(work); err != nil {
		return nil, err
	}
	a.computeStraightness()
	a.collectDeps(work)
	a.buildTree()
	if opts.EliminateRedundantRoles {
		a.eliminateRedundantRoles(work)
	}
	a.Query = a.insertSignOffs(work)
	return a, nil
}

// VarPath returns varpathQ($x, $z): the location steps leading from $x down
// to $z along the variable tree (Section 3). It panics if $x is not an
// ancestor-or-self of $z, which would indicate an analysis bug.
func (a *Analysis) VarPath(x, z string) []xqast.Step {
	var rev []xqast.Step
	cur := z
	for cur != x {
		vi := a.Vars[cur]
		if vi == nil || cur == xqast.RootVar {
			panic(fmt.Sprintf("static: $%s is not an ancestor of $%s", x, z))
		}
		rev = append(rev, vi.Step)
		cur = vi.Parent
	}
	steps := make([]xqast.Step, len(rev))
	for i := range rev {
		steps[i] = rev[len(rev)-1-i]
	}
	return steps
}

// FormatVariableTree renders the variable tree with straightness and fsa
// annotations, for -explain diagnostics and golden tests.
func (a *Analysis) FormatVariableTree() string {
	var b []byte
	var walk func(name string, depth int)
	walk = func(name string, depth int) {
		for i := 0; i < depth; i++ {
			b = append(b, "  "...)
		}
		vi := a.Vars[name]
		b = append(b, "$"...)
		b = append(b, name...)
		if name != xqast.RootVar {
			b = append(b, fmt.Sprintf("  (step %s", vi.Step)...)
			if !vi.Straight {
				b = append(b, fmt.Sprintf(", not straight, fsa $%s", vi.FSA)...)
			}
			b = append(b, ')')
		}
		b = append(b, '\n')
		for _, child := range a.VarOrder {
			if a.Vars[child].Parent == name {
				walk(child, depth+1)
			}
		}
	}
	walk(xqast.RootVar, 0)
	return string(b)
}

// FormatDeps renders all dependency tuples in derivation order.
func (a *Analysis) FormatDeps() string {
	var b []byte
	for _, v := range a.VarOrder {
		for _, d := range a.Deps[v] {
			p := d.Path()
			b = append(b, fmt.Sprintf("dep($%s) ∋ 〈%s, r%d〉  (%s: %s)\n", v, p, d.Role, d.Kind, d.Desc)...)
		}
	}
	return string(b)
}
