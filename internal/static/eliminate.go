package static

import (
	"gcx/internal/xqast"
)

// eliminateRedundantRoles implements Section 6, "Elimination of Redundant
// Roles". The paper sketches the optimization by example (Figure 12: the
// binding roles r3 and r6 of the introduction's query are dropped); we
// implement two sound criteria derived from that example (see DESIGN.md):
//
//  1. A binding role is redundant when its variable has a bare
//     〈dos::node(), r'〉 dependency: the dos role keeps the binding node
//     (the "self" of descendant-or-self) buffered, and both roles are
//     signed off in the same suQ batch, so the binding role never extends
//     a node's lifetime. This is the r3/r5 case.
//
//  2. A binding role is redundant when the loop body is *navigation
//     transparent*: it consists solely of for-loops over paths rooted at
//     the variable (or at variables bound within the body) and of outputs
//     of such inner variables. Every observable effect of an iteration
//     then flows through dependency roles assigned to descendants at match
//     time, so a binding node without role-carrying descendants can only
//     drive iterations that produce no output. This is the r6/r7 case.
//
// Eliminated roles are not assigned during projection and their signOff
// statements are not emitted; the projection-tree node remains, so matched
// nodes are still buffered as structural anchors (Figure 12 keeps the
// paths, merely unlabels them).
func (a *Analysis) eliminateRedundantRoles(q *xqast.Query) {
	// Criterion 1: bare dos dependency on the same variable.
	for _, name := range a.VarOrder {
		if name == xqast.RootVar {
			continue
		}
		vi := a.Vars[name]
		for _, d := range a.Deps[name] {
			if len(d.Steps) == 1 && d.Steps[0].Axis == xqast.DescendantOrSelf &&
				d.Steps[0].Test.Kind == xqast.TestNode {
				a.Tree.Roles[vi.BindingRole].Eliminated = true
				break
			}
		}
	}

	// Criterion 2: navigation-transparent loop bodies.
	var visit func(e xqast.Expr)
	visit = func(e xqast.Expr) {
		switch e := e.(type) {
		case xqast.Sequence:
			for _, item := range e.Items {
				visit(item)
			}
		case xqast.Element:
			visit(e.Child)
		case xqast.If:
			visit(e.Then)
			visit(e.Else)
		case xqast.For:
			// Text-binding variables are exempt: text nodes carry no
			// output dependency (there is no subtree to capture), so
			// their binding role is what keeps emitted text buffered —
			// eliminating it would let the region be reclaimed before a
			// later loop reads it.
			if a.Vars[e.Var].Step.Test.Kind != xqast.TestText &&
				transparent(e.Return, map[string]bool{e.Var: true}) {
				a.Tree.Roles[a.Vars[e.Var].BindingRole].Eliminated = true
			}
			visit(e.Return)
		}
	}
	visit(q.Root.Child)
}

// transparent reports whether e produces output only via nodes that carry
// dependency roles of variables in scope (the set of variables rooted at
// the candidate binding). Constructors, conditions, and bare outputs of the
// candidate variable itself all defeat transparency.
func transparent(e xqast.Expr, scope map[string]bool) bool {
	switch e := e.(type) {
	case nil, xqast.Empty:
		return true
	case xqast.Sequence:
		for _, item := range e.Items {
			if !transparent(item, scope) {
				return false
			}
		}
		return true
	case xqast.For:
		if !scope[e.In.Var] {
			// Iterating a region unrelated to the candidate variable:
			// skipping the iteration would lose that region's output.
			return false
		}
		child := make(map[string]bool, len(scope)+1)
		for k, v := range scope {
			child[k] = v
		}
		child[e.Var] = true
		return transparent(e.Return, child)
	case xqast.PathExpr:
		return scope[e.Path.Var]
	case xqast.VarRef:
		// Outputs of inner loop variables are protected by their own
		// output dependencies; an output of an outer variable would need
		// the candidate's subtree itself.
		return scope[e.Var]
	default:
		// Element, Text, If, CondTag, SignOff: emission does not depend on
		// buffered descendants, so the iteration count is observable.
		return false
	}
}
