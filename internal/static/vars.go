package static

import (
	"fmt"

	"gcx/internal/xqast"
)

// collectVars builds the variable tree (Section 3): one VarInfo per for-loop
// binder plus $root, recording parVar, the loop step, and the syntactically
// enclosing binders needed for the straightness check.
func (a *Analysis) collectVars(q *xqast.Query) error {
	a.Vars[xqast.RootVar] = &VarInfo{Name: xqast.RootVar, Straight: true, FSA: xqast.RootVar}
	a.VarOrder = append(a.VarOrder, xqast.RootVar)

	var err error
	var walk func(e xqast.Expr, enclosing []string)
	walk = func(e xqast.Expr, enclosing []string) {
		if err != nil {
			return
		}
		switch e := e.(type) {
		case xqast.Sequence:
			for _, item := range e.Items {
				walk(item, enclosing)
			}
		case xqast.Element:
			walk(e.Child, enclosing)
		case xqast.If:
			walk(e.Then, enclosing)
			walk(e.Else, enclosing)
		case xqast.For:
			if len(e.In.Steps) != 1 {
				err = fmt.Errorf("static: for $%s iterates a %d-step path; run normalize first", e.Var, len(e.In.Steps))
				return
			}
			if _, dup := a.Vars[e.Var]; dup {
				err = fmt.Errorf("static: variable $%s bound twice; run normalize first", e.Var)
				return
			}
			if _, ok := a.Vars[e.In.Var]; !ok {
				err = fmt.Errorf("static: for $%s iterates over undefined $%s", e.Var, e.In.Var)
				return
			}
			vi := &VarInfo{
				Name:      e.Var,
				Parent:    e.In.Var,
				Step:      e.In.Steps[0],
				Enclosing: append([]string(nil), enclosing...),
			}
			a.Vars[e.Var] = vi
			a.VarOrder = append(a.VarOrder, e.Var)
			walk(e.Return, append(enclosing, e.Var))
		}
	}
	walk(q.Root, nil)
	return err
}

// isAncestorVar reports $z <Q $u: $u lies on the parVar chain of $z.
func (a *Analysis) isAncestorVar(u, z string) bool {
	cur := a.Vars[z]
	for cur != nil && cur.Name != xqast.RootVar {
		if cur.Parent == u {
			return true
		}
		cur = a.Vars[cur.Parent]
	}
	return false
}

// computeStraightness evaluates Definition 3 for every variable:
// $z is straight iff $z = $root, or its parent variable is straight and
// every for-loop enclosing $z's own loop binds an ancestor variable of $z.
// fsa (Definition 4) is the first straight variable on the parVar chain.
func (a *Analysis) computeStraightness() {
	// VarOrder is document order, so enclosing loops (which are also
	// ancestors in the walk) are processed before inner ones; parVar
	// binders are always processed before their dependents because a
	// variable must be in scope to be referenced.
	for _, name := range a.VarOrder {
		if name == xqast.RootVar {
			continue
		}
		vi := a.Vars[name]
		straight := a.Vars[vi.Parent].Straight
		if straight {
			for _, u := range vi.Enclosing {
				if !a.isAncestorVar(u, name) {
					straight = false
					break
				}
			}
		}
		vi.Straight = straight
		if straight {
			vi.FSA = name
		} else {
			vi.FSA = a.Vars[vi.Parent].FSA
		}
	}
}
