package static

import (
	"gcx/internal/projtree"
	"gcx/internal/xqast"
)

// MergeTrees unions the projection trees of several independently analyzed
// queries into one combined tree for shared-stream workload evaluation
// (see DESIGN.md, "Shared-stream workloads").
//
// Projection trees are prefix-closed path sets, so their union under a
// common root is again a valid projection tree; a document projected with
// the union tree is a valid projected document for *each* member query,
// because every path a member's evaluation navigates is still covered and
// the structural guard of Section 2 (case (2)) now ranges over the
// combined configuration — an element another query preserves can never be
// promoted into a false child-axis match of this query.
//
// Member subtrees are cloned verbatim (no node sharing, not even of common
// prefixes): every cloned node keeps exactly one owner query, so role
// assignment, [1] first-witness suppression, and signOff cancellation —
// all keyed on projection-node identity — behave exactly as in a solo run.
//
// Roles are renumbered into per-query role spaces: query i's roles occupy
// the half-open ID range (off[i], off[i+1]] of the combined role table,
// where off is the returned offset slice (off[i] is added to each of query
// i's solo role IDs). The combined role table is the concatenation of the
// member tables, so a role ID identifies its owning query by range.
func MergeTrees(trees []*projtree.Tree) (*projtree.Tree, []xqast.Role) {
	m := projtree.New()
	offsets := make([]xqast.Role, len(trees))
	for qi, t := range trees {
		off := xqast.Role(len(m.Roles) - 1)
		offsets[qi] = off
		cloneOf := make(map[*projtree.Node]*projtree.Node, len(t.Nodes))
		cloneOf[t.Root] = m.Root
		// Nodes are stored in creation order, so parents precede children.
		for _, n := range t.Nodes[1:] {
			c := m.AddNode(cloneOf[n.Parent], n.Step)
			c.Var = n.Var
			c.AnchorSelf = n.AnchorSelf
			if n.Role != 0 {
				c.Role = n.Role + off
			}
			if n.ChainRole != 0 {
				c.ChainRole = n.ChainRole + off
			}
			cloneOf[n] = c
		}
		for _, r := range t.Roles[1:] {
			m.Roles = append(m.Roles, &projtree.Role{
				ID:         r.ID + off,
				Kind:       r.Kind,
				Var:        r.Var,
				Aggregate:  r.Aggregate,
				Eliminated: r.Eliminated,
				Node:       cloneOf[r.Node],
				Desc:       r.Desc,
			})
		}
	}
	return m, offsets
}
