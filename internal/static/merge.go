package static

import (
	"gcx/internal/projtree"
	"gcx/internal/xqast"
)

// MergeTrees unions the projection trees of several independently analyzed
// queries into one combined tree for shared-stream workload evaluation
// (see DESIGN.md, "Shared-stream workloads").
//
// Projection trees are prefix-closed path sets, so their union under a
// common root is again a valid projection tree; a document projected with
// the union tree is a valid projected document for *each* member query,
// because every path a member's evaluation navigates is still covered and
// the structural guard of Section 2 (case (2)) now ranges over the
// combined configuration — an element another query preserves can never be
// promoted into a false child-axis match of this query.
//
// Structurally identical nodes of DIFFERENT member queries are shared:
// when query i's node has the same location step (including the [1]
// predicate), the same variable/chain class, and the same cancellation
// anchor class as an existing node of an earlier query, the existing node
// absorbs it as an extra role lane (projtree.RoleRef) instead of a clone.
// Matching work per stream token then scales with the number of DISTINCT
// path structures in the workload, not with the query count — the
// registry regime of 10k subscriptions over a few hundred shapes. The
// projector assigns roles and applies signOff cancellation per lane, so
// per-query role accounting is unchanged.
//
// Nodes of the SAME query are never shared with each other: within one
// member, dependency chains stay separate (each chain node belongs to
// exactly one role — required by signOff cancellation, see build.go), and
// sharing across variable/chain classes is refused because chain lanes
// are subject to cancellation reduction while binding lanes are exempt.
//
// Roles are renumbered into per-query role spaces: query i's roles occupy
// the half-open ID range (off[i], off[i+1]] of the combined role table,
// where off is the returned offset slice (off[i] is added to each of query
// i's solo role IDs). The combined role table is the concatenation of the
// member tables, so a role ID identifies its owning query by range.
func MergeTrees(trees []*projtree.Tree) (*projtree.Tree, []xqast.Role) {
	return mergeTrees(trees, true)
}

// MergeTreesDisjoint is the pre-sharing merge: member subtrees are cloned
// verbatim (no node sharing, not even of common prefixes), so matching
// cost is linear in the query count. Kept as the comparator for the
// subscription-scaling benchmark and as a diagnostic fallback.
func MergeTreesDisjoint(trees []*projtree.Tree) (*projtree.Tree, []xqast.Role) {
	return mergeTrees(trees, false)
}

// shareable reports whether an existing merged node can absorb an
// incoming member node as an extra lane: same location step (axis, test,
// and [1] predicate), same variable/chain class (chain lanes undergo
// cancellation reduction, binding lanes are exempt — see
// proj.Projector.cancelledCount), and same self-anchoring class (the
// anchor frame resolution in openElement is keyed on the node).
func shareable(s *projtree.Node, n *projtree.Node) bool {
	return s.Step == n.Step &&
		(s.Var == "") == (n.Var == "") &&
		s.AnchorSelf == n.AnchorSelf
}

func mergeTrees(trees []*projtree.Tree, share bool) (*projtree.Tree, []xqast.Role) {
	m := projtree.New()
	offsets := make([]xqast.Role, len(trees))
	// claimed maps a merged node to the index of the last tree that
	// placed one of its nodes there: a tree must never map two of its own
	// nodes onto one merged node (solo matching structure is preserved
	// per member), so only nodes claimed by EARLIER trees are share
	// targets.
	claimed := map[*projtree.Node]int{m.Root: -1}
	for qi, t := range trees {
		off := xqast.Role(len(m.Roles) - 1)
		offsets[qi] = off
		cloneOf := make(map[*projtree.Node]*projtree.Node, len(t.Nodes))
		cloneOf[t.Root] = m.Root
		// Nodes are stored in creation order, so parents precede children.
		for _, n := range t.Nodes[1:] {
			mp := cloneOf[n.Parent]
			var target *projtree.Node
			if share {
				for _, s := range mp.Children {
					if last, ok := claimed[s]; ok && last < qi && shareable(s, n) {
						target = s
						break
					}
				}
			}
			if target != nil {
				// Absorb as an extra lane; the shared node keeps the
				// first owner's primary Role/ChainRole/Var.
				if n.Role != 0 || n.ChainRole != 0 {
					lane := projtree.RoleRef{Chain: n.ChainRole + off}
					if n.Role != 0 {
						lane.Role = n.Role + off
					}
					if n.ChainRole == 0 {
						lane.Chain = 0
					}
					target.Extra = append(target.Extra, lane)
				}
			} else {
				target = m.AddNode(mp, n.Step)
				target.Var = n.Var
				target.AnchorSelf = n.AnchorSelf
				if n.Role != 0 {
					target.Role = n.Role + off
				}
				if n.ChainRole != 0 {
					target.ChainRole = n.ChainRole + off
				}
			}
			claimed[target] = qi
			cloneOf[n] = target
		}
		for _, r := range t.Roles[1:] {
			m.Roles = append(m.Roles, &projtree.Role{
				ID:         r.ID + off,
				Kind:       r.Kind,
				Var:        r.Var,
				Aggregate:  r.Aggregate,
				Eliminated: r.Eliminated,
				Node:       cloneOf[r.Node],
				Desc:       r.Desc,
			})
		}
	}
	return m, offsets
}
