package static

import (
	"strings"
	"testing"

	"gcx/internal/dtd"
	"gcx/internal/xqast"
)

const schemaTestDTD = `
<!ELEMENT site (regions, people)>
<!ELEMENT people (person*)>
<!ELEMENT person (id, name, phone?)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT id (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
`

func schemaFor(t *testing.T, src string) *dtd.Schema {
	t.Helper()
	s, err := dtd.Parse(src)
	if err != nil {
		t.Fatalf("dtd: %v", err)
	}
	return s
}

// TestSchemaFactsProveExists: person requires a name, so exists($p/name)
// is decided at compile time and the runtime witness check disappears.
func TestSchemaFactsProveExists(t *testing.T) {
	a := analyze(t, `<r>{ for $p in /site/people/person return
		if (exists($p/name)) then <y/> else <n/> }</r>`, Options{})
	s := schemaFor(t, schemaTestDTD)
	ApplySchemaFacts(a, s)
	got := xqast.Format(a.Query)
	if strings.Contains(got, "exists($p/name)") {
		t.Fatalf("exists($p/name) not rewritten:\n%s", got)
	}
	if !strings.Contains(got, "true()") {
		t.Fatalf("want true() in rewritten query:\n%s", got)
	}
}

// TestSchemaFactsRefuteExists: person's model excludes <price>, so
// exists($p/price) is statically false — not(true()) — and the evaluator
// never pulls input looking for a witness that cannot come.
func TestSchemaFactsRefuteExists(t *testing.T) {
	a := analyze(t, `<r>{ for $p in /site/people/person return
		if (exists($p/price)) then <y/> else <n/> }</r>`, Options{})
	s := schemaFor(t, schemaTestDTD)
	ApplySchemaFacts(a, s)
	got := xqast.Format(a.Query)
	if strings.Contains(got, "exists($p/price)") {
		t.Fatalf("exists($p/price) not rewritten:\n%s", got)
	}
	if !strings.Contains(got, "not(true())") {
		t.Fatalf("want not(true()) in rewritten query:\n%s", got)
	}
}

// TestSchemaFactsOptionalStaysRuntime: phone? is neither guaranteed nor
// excluded — the runtime check must survive.
func TestSchemaFactsOptionalStaysRuntime(t *testing.T) {
	a := analyze(t, `<r>{ for $p in /site/people/person return
		if (exists($p/phone)) then <y/> else <n/> }</r>`, Options{})
	s := schemaFor(t, schemaTestDTD)
	ApplySchemaFacts(a, s)
	got := xqast.Format(a.Query)
	if !strings.Contains(got, "exists($p/phone)") {
		t.Fatalf("undecidable exists must stay:\n%s", got)
	}
}

// TestSchemaFactsUnknownBinderStaysRuntime: a descendant-axis binding has
// no statically known tag, so nothing may be decided even though every
// person has a name.
func TestSchemaFactsUnknownBinderStaysRuntime(t *testing.T) {
	a := analyze(t, `<r>{ for $p in //person/* return
		if (exists($p/name)) then <y/> else <n/> }</r>`, Options{})
	s := schemaFor(t, schemaTestDTD)
	ApplySchemaFacts(a, s)
	got := xqast.Format(a.Query)
	if !strings.Contains(got, "exists($p/name)") {
		t.Fatalf("exists under unknown binder tag must stay:\n%s", got)
	}
}

// TestSchemaFactsChainedLinks: a multi-link chain is provable only when
// EVERY link is mandatory. site→people is, people→person is not
// (person*), so exists($s/people) rewrites while exists($s/people/person)
// must not — but a chain broken by an excluded link is still refutable.
func TestSchemaFactsChainedLinks(t *testing.T) {
	a := analyze(t, `<r>{ for $s in /site return
		((if (exists($s/people)) then <a/> else ()),
		 (if (exists($s/people/person)) then <b/> else ()),
		 (if (exists($s/regions/person)) then <c/> else ())) }</r>`, Options{})
	s := schemaFor(t, schemaTestDTD)
	ApplySchemaFacts(a, s)
	got := xqast.Format(a.Query)
	if strings.Contains(got, "exists($s/people)") && !strings.Contains(got, "exists($s/people/person)") {
		t.Fatalf("exists($s/people) should rewrite:\n%s", got)
	}
	if !strings.Contains(got, "exists($s/people/person)") {
		t.Fatalf("exists($s/people/person) has an optional link and must stay:\n%s", got)
	}
	// regions is declared with no content model here — undeclared means
	// CanContain is unknown, so the chain through it stays runtime.
	if !strings.Contains(got, "exists($s/regions/person)") {
		t.Fatalf("chain through undeclared regions must stay:\n%s", got)
	}
}

// TestSchemaFactsPreserveProjection: the rewrite decides conditions only;
// the projection tree, roles, and signOff placement must be bit-for-bit
// what they were before, so buffering and role balance cannot change.
func TestSchemaFactsPreserveProjection(t *testing.T) {
	const q = `<r>{ for $p in /site/people/person return
		if (exists($p/name)) then <y/> else <n/> }</r>`
	plain := analyze(t, q, Options{})
	rewritten := analyze(t, q, Options{})
	ApplySchemaFacts(rewritten, schemaFor(t, schemaTestDTD))
	if got, want := rewritten.Tree.Format(), plain.Tree.Format(); got != want {
		t.Fatalf("projection tree changed:\ngot:\n%s\nwant:\n%s", got, want)
	}
	gotQ := xqast.Format(rewritten.Query)
	plainQ := xqast.Format(plain.Query)
	if strings.Count(gotQ, "signOff") != strings.Count(plainQ, "signOff") {
		t.Fatalf("signOff placement changed:\ngot:\n%s\nwant:\n%s", gotQ, plainQ)
	}
}
