package static

import (
	"gcx/internal/xqast"
)

// insertSignOffs implements the static XQ rewriting of Section 4 (Figure 8,
// algorithm suQ): at the end of the scope of each straight variable $x, all
// nodes that depend on a variable $z with fsa($z) = $x lose their roles.
//
// Concretely, the batch emitted at the end of $x's for-loop body (or at the
// end of the whole query for $x = $root) is, in order:
//
//	signOff($x, r)                 binding role of $x itself ($x ≠ $root)
//	signOff($x/σ, r_z)             binding role of each non-straight $z with
//	                               fsa($z) = $x, σ = varpath($x, $z)
//	signOff($x/σ/π, r)             every dependency 〈π, r〉 of every $z with
//	                               fsa($z) = $x
//
// matching the paper's examples: the introduction's rewritten query
// (signOff($x,r3), signOff($x/price[1],r4), signOff($x/dos::node(),r5) at
// the end of for$x) and Figure 9 (signOff($root//b, r2) at query end for
// the non-straight $b).
//
// Under aggregate roles (Section 6), a dependency path ending in
// dos::node() is signed off at the subtree root instead: the trailing dos
// step is dropped and the buffer manager sweeps the subtree when the
// aggregate role is removed.
//
// Eliminated roles produce no signOff statements.
func (a *Analysis) insertSignOffs(q *xqast.Query) *xqast.Query {
	child := a.rewriteExpr(q.Root.Child)
	batch := a.suQ(xqast.RootVar)
	child = xqast.FlattenSequence(append([]xqast.Expr{child}, batch...))
	return &xqast.Query{Root: xqast.Element{Name: q.Root.Name, Child: child}}
}

func (a *Analysis) rewriteExpr(e xqast.Expr) xqast.Expr {
	switch e := e.(type) {
	case xqast.Sequence:
		items := make([]xqast.Expr, len(e.Items))
		for i, item := range e.Items {
			items[i] = a.rewriteExpr(item)
		}
		return xqast.FlattenSequence(items)
	case xqast.Element:
		return xqast.Element{Name: e.Name, Child: a.rewriteExpr(e.Child)}
	case xqast.If:
		return xqast.If{Cond: e.Cond, Then: a.rewriteExpr(e.Then), Else: a.rewriteExpr(e.Else)}
	case xqast.For:
		body := a.rewriteExpr(e.Return)
		if a.Vars[e.Var].Straight {
			batch := a.suQ(e.Var)
			body = xqast.FlattenSequence(append([]xqast.Expr{body}, batch...))
		}
		return xqast.For{Var: e.Var, In: e.In, Return: body}
	default:
		return e
	}
}

// suQ emits the signOff statements for straight variable $x (Figure 8).
func (a *Analysis) suQ(x string) []xqast.Expr {
	var out []xqast.Expr
	emit := func(path xqast.Path, role xqast.Role) {
		if a.Tree.Roles[role].Eliminated {
			return
		}
		out = append(out, xqast.SignOff{Path: path, Role: role})
	}

	if x != xqast.RootVar {
		emit(xqast.Path{Var: x}, a.Vars[x].BindingRole)
	}
	for _, z := range a.VarOrder {
		if a.Vars[z].FSA != x {
			continue
		}
		sigma := a.VarPath(x, z)
		if z != x && z != xqast.RootVar {
			// Binding roles of non-straight variables are released at
			// their first straight ancestor's scope end, via the variable
			// path (Figure 9: signOff($root//b, r2)).
			emit(xqast.Path{Var: x, Steps: sigma}, a.Vars[z].BindingRole)
		}
		for _, d := range a.Deps[z] {
			steps := append(append([]xqast.Step(nil), sigma...), d.Steps...)
			if a.Tree.Roles[d.Role].Aggregate {
				// Aggregate roles live on the subtree root: drop the
				// trailing dos::node() step.
				steps = steps[:len(steps)-1]
			}
			emit(xqast.Path{Var: x, Steps: steps}, d.Role)
		}
	}
	return out
}
