package static

import (
	"strings"
	"testing"

	"gcx/internal/ifpush"
	"gcx/internal/normalize"
	"gcx/internal/xqast"
	"gcx/internal/xqparser"
)

// introQuery is the running example from the paper's introduction.
const introQuery = `
<r> {
  for $bib in /bib return
  ((for $x in $bib/* return
      if (not(exists($x/price))) then $x else ()),
   for $b in $bib/book return $b/title)
} </r>`

// fig9Query is the left-hand query of Figure 9.
const fig9Query = `
<q>{ for $a in //a return
     <a>{ for $b in //b return <b/> }</a>
}</q>`

// example4Query is the left-hand query of Example 4.
const example4Query = `
<q>{ for $a in //a return
     <a>{ for $b in $a//b return <b/> }</a>
}</q>`

func analyze(t *testing.T, src string, opts Options) *Analysis {
	t.Helper()
	q, err := xqparser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	n, err := normalize.Normalize(q)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	p := ifpush.Push(n)
	a, err := Analyze(p, opts)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return a
}

// TestFigure1ProjectionTree checks the projection tree derived for the
// introduction's query against the paper's Figure 1 (modulo node/role
// numbering; see DESIGN.md).
func TestFigure1ProjectionTree(t *testing.T) {
	a := analyze(t, introQuery, Options{})
	got := a.Tree.Format()
	want := `n0: /
  n1: /bib  {r1}
    n2: /*  {r2}
      n3: dos::node()  {r3}
      n4: /price[1]  {r4}
    n5: /book  {r5}
      n6: /title
        n7: dos::node()  {r6}
`
	if got != want {
		t.Fatalf("projection tree mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestIntroRewrittenQuery checks signOff insertion for the introduction's
// query: each straight variable's batch appears at the end of its loop
// body, exactly as in the paper's rewritten query.
func TestIntroRewrittenQuery(t *testing.T) {
	a := analyze(t, introQuery, Options{})
	got := xqast.Format(a.Query)

	for _, want := range []string{
		"signOff($x, r2)",
		"signOff($x/dos::node(), r3)",
		"signOff($x/price[1], r4)",
		"signOff($b, r5)",
		"signOff($b/title/dos::node(), r6)",
		"signOff($bib, r1)",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("rewritten query missing %q:\n%s", want, got)
		}
	}
	// The bib signoff must come after both inner loops (end of scope).
	if strings.Index(got, "signOff($bib, r1)") < strings.Index(got, "signOff($b, r5)") {
		t.Fatalf("signOff($bib) must close the scope:\n%s", got)
	}
}

// TestFigure9SignOffInsertion: the inner variable $b iterates from $root
// while nested in for$a, so it is not straight; its binding role is signed
// off at the end of the whole query via the variable path //b.
func TestFigure9SignOffInsertion(t *testing.T) {
	a := analyze(t, fig9Query, Options{})

	b := a.Var("b")
	if b.Straight {
		t.Fatal("$b must not be straight (Example 6)")
	}
	if b.FSA != xqast.RootVar {
		t.Fatalf("fsa($b) = $%s, want $root (Example 6)", b.FSA)
	}
	if !a.Var("a").Straight {
		t.Fatal("$a must be straight (Example 6)")
	}

	got := xqast.Format(a.Query)
	if !strings.Contains(got, "signOff($root//b, r2)") {
		t.Fatalf("missing root-scope signoff for $b (Figure 9):\n%s", got)
	}
	if !strings.Contains(got, "signOff($a, r1)") {
		t.Fatalf("missing signoff for $a:\n%s", got)
	}
	// The $b signoff must be part of the root batch: after the for$a loop.
	if strings.Index(got, "signOff($root//b, r2)") < strings.Index(got, "signOff($a, r1)") {
		t.Fatalf("$b's binding signoff must be at query end:\n%s", got)
	}
}

// TestExample4SignOffInsertion: both variables straight, both signed off in
// their own loops.
func TestExample4SignOffInsertion(t *testing.T) {
	a := analyze(t, example4Query, Options{})
	if !a.Var("a").Straight || !a.Var("b").Straight {
		t.Fatal("both variables must be straight (Example 6)")
	}
	got := xqast.Format(a.Query)
	if !strings.Contains(got, "signOff($b, r2)") || !strings.Contains(got, "signOff($a, r1)") {
		t.Fatalf("missing per-loop signoffs (Example 4):\n%s", got)
	}
}

// TestFigure12RedundantRoles: with elimination enabled, the binding roles
// of $x (covered by its dos dependency) and $b (navigation-transparent
// body) disappear, exactly as in Figure 12.
func TestFigure12RedundantRoles(t *testing.T) {
	a := analyze(t, introQuery, Options{EliminateRedundantRoles: true})

	x := a.Var("x")
	b := a.Var("b")
	bib := a.Var("bib")
	if !a.Tree.Roles[x.BindingRole].Eliminated {
		t.Fatal("binding role of $x must be eliminated (criterion 1, the r3/r5 case)")
	}
	if !a.Tree.Roles[b.BindingRole].Eliminated {
		t.Fatal("binding role of $b must be eliminated (criterion 2, the r6/r7 case)")
	}
	if a.Tree.Roles[bib.BindingRole].Eliminated {
		t.Fatal("binding role of $bib must be kept (Figure 12 keeps /bib labeled)")
	}

	got := xqast.Format(a.Query)
	if strings.Contains(got, "signOff($x, r") {
		t.Fatalf("eliminated role still signed off:\n%s", got)
	}
	if strings.Contains(got, "signOff($b, r") {
		t.Fatalf("eliminated role still signed off:\n%s", got)
	}
	// The dependency roles survive.
	if !strings.Contains(got, "signOff($x/dos::node(), r") {
		t.Fatalf("dependency signoffs must survive elimination:\n%s", got)
	}
}

// TestFigure9NoElimination: $b's body constructs <b/> per iteration, so its
// binding role is observable and must survive elimination.
func TestFigure9NoElimination(t *testing.T) {
	a := analyze(t, fig9Query, Options{EliminateRedundantRoles: true})
	if a.Tree.Roles[a.Var("b").BindingRole].Eliminated {
		t.Fatal("constructor body must defeat criterion 2")
	}
	if a.Tree.Roles[a.Var("a").BindingRole].Eliminated {
		t.Fatal("constructor body must defeat criterion 2 for $a too")
	}
}

// TestEliminationRejectsForeignLoops: a nested loop over an unrelated
// region (a join) must defeat transparency — skipping an iteration would
// drop the join partner's output.
func TestEliminationRejectsForeignLoops(t *testing.T) {
	a := analyze(t, `<q>{ for $p in /site/person return for $t in /site/auction return $t/price }</q>`,
		Options{EliminateRedundantRoles: true})
	if a.Tree.Roles[a.Var("p").BindingRole].Eliminated {
		t.Fatal("loop over foreign region must defeat criterion 2 for $p")
	}
	// $t itself has a transparent body (output rooted at $t).
	if !a.Tree.Roles[a.Var("t").BindingRole].Eliminated {
		t.Fatal("$t's body is a pure output of $t and must be eliminated")
	}
}

func TestAggregateRolesChangeSignOffPaths(t *testing.T) {
	plain := analyze(t, introQuery, Options{})
	agg := analyze(t, introQuery, Options{AggregateRoles: true})

	plainStr := xqast.Format(plain.Query)
	aggStr := xqast.Format(agg.Query)

	if !strings.Contains(plainStr, "signOff($x/dos::node(), r3)") {
		t.Fatalf("plain mode must sign off the dos path:\n%s", plainStr)
	}
	// Aggregate mode signs off at the subtree root: the dos step is gone.
	if !strings.Contains(aggStr, "signOff($x, r3)") {
		t.Fatalf("aggregate mode must sign off at the subtree root:\n%s", aggStr)
	}
	if !strings.Contains(aggStr, "signOff($b/title, r6)") {
		t.Fatalf("aggregate mode must sign off titles at the title node:\n%s", aggStr)
	}
	if !agg.Tree.Roles[3].Aggregate {
		t.Fatal("dos role must be flagged aggregate")
	}
}

func TestEarlyUpdates(t *testing.T) {
	a := analyze(t, introQuery, Options{EarlyUpdates: true})
	// $b/title must have become "for $fresh in $b/title return $fresh" with
	// a per-node signoff inside.
	got := xqast.Format(a.Query)
	if !strings.Contains(got, "for $b_eu") {
		t.Fatalf("early updates did not rewrite the title output:\n%s", got)
	}
	var foundFreshLoop bool
	xqast.Walk(a.Query.Root, func(e xqast.Expr) bool {
		f, ok := e.(xqast.For)
		if !ok || !strings.Contains(f.Var, "_eu") {
			return true
		}
		foundFreshLoop = true
		// Body must contain the VarRef and its signoffs.
		seq, ok := f.Return.(xqast.Sequence)
		if !ok {
			t.Fatalf("fresh loop body: %T", f.Return)
		}
		if _, ok := seq.Items[0].(xqast.VarRef); !ok {
			t.Fatalf("fresh loop body head: %T", seq.Items[0])
		}
		sawSignoff := false
		for _, item := range seq.Items[1:] {
			if _, ok := item.(xqast.SignOff); ok {
				sawSignoff = true
			}
		}
		if !sawSignoff {
			t.Fatalf("fresh loop has no per-node signoff:\n%s", got)
		}
		return true
	})
	if !foundFreshLoop {
		t.Fatalf("no fresh early-update loop found:\n%s", got)
	}
}

func TestDependencyDeduplication(t *testing.T) {
	// The same condition twice must yield a single dependency (and a single
	// signOff), preserving the balance requirement.
	a := analyze(t, `<q>{ for $x in /a return
	   (if (exists($x/p)) then $x else (), if (exists($x/p)) then $x else ()) }</q>`, Options{})
	count := 0
	for _, d := range a.Deps["x"] {
		if strings.Contains(d.Desc, "exists") {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("duplicate condition produced %d deps, want 1:\n%s", count, a.FormatDeps())
	}
}

func TestQ8StyleJoinNotStraight(t *testing.T) {
	a := analyze(t, `
<q>{ for $p in /site/people/person return
     <item>{ ($p/name,
       for $t in /site/closed_auctions/closed_auction return
         if ($t/buyer/person = $p/id) then <t/> else ()) }</item>
}</q>`, Options{})

	// The inner chain re-roots at $root, so every variable of the inner
	// chain must be non-straight with fsa = $root: the closed_auctions
	// region stays buffered until the end of the query (the paper's
	// observed Q8 behaviour).
	inner := a.Var("t")
	if inner.Straight {
		t.Fatal("$t must not be straight")
	}
	if inner.FSA != xqast.RootVar {
		t.Fatalf("fsa($t) = $%s, want $root", inner.FSA)
	}
	// Outer person chain is straight.
	if !a.Var("p").Straight {
		t.Fatal("$p must be straight")
	}

	// Root batch must release the inner binding roles via variable paths.
	got := xqast.Format(a.Query)
	if !strings.Contains(got, "signOff($root/site/closed_auctions/closed_auction, r") {
		t.Fatalf("missing root-scope release of the join region:\n%s", got)
	}
}

func TestConditionDepsMultiStep(t *testing.T) {
	a := analyze(t, `<q>{ for $p in /people return if ($p/profile/income > 5000) then $p/name else () }</q>`, Options{})
	var found *Dep
	for _, d := range a.Deps["p"] {
		if d.Kind.String() == "compare" {
			found = d
		}
	}
	if found == nil {
		t.Fatalf("no comparison dep derived:\n%s", a.FormatDeps())
	}
	// profile/income/dos::node()
	if len(found.Steps) != 3 || found.Steps[2].Axis != xqast.DescendantOrSelf {
		t.Fatalf("comparison dep steps: %v", found.Steps)
	}
}

func TestTextOutputDepHasNoDos(t *testing.T) {
	a := analyze(t, `<q>{ for $p in /people return $p/name/text() }</q>`, Options{})
	// normalize splits $p/name/text() into a loop over name with a text()
	// output; the text() output dep must not get a dos step (text nodes
	// have no descendants).
	for v, deps := range a.Deps {
		for _, d := range deps {
			last := d.Steps[len(d.Steps)-1]
			if last.Test.Kind == xqast.TestText && len(d.Steps) > 0 {
				for _, s := range d.Steps {
					if s.Axis == xqast.DescendantOrSelf {
						t.Fatalf("text output dep of $%s has dos step: %v", v, d.Steps)
					}
				}
			}
		}
	}
}

func TestExistsDepGetsFirstPredicate(t *testing.T) {
	a := analyze(t, introQuery, Options{})
	var found bool
	for _, d := range a.Deps["x"] {
		if d.Kind.String() == "exists" {
			if len(d.Steps) != 1 || !d.Steps[0].First {
				t.Fatalf("exists dep must carry [1]: %v", d.Steps)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("exists dep missing:\n%s", a.FormatDeps())
	}
}

func TestVariableTreeFormat(t *testing.T) {
	a := analyze(t, introQuery, Options{})
	got := a.FormatVariableTree()
	want := `$root
  $bib  (step child::bib)
    $x  (step child::*)
    $b  (step child::book)
`
	if got != want {
		t.Fatalf("variable tree:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestRoleBalanceStatically: every non-eliminated role must appear in
// exactly one signOff statement of the rewritten query.
func TestRoleBalanceStatically(t *testing.T) {
	srcs := []string{
		introQuery,
		fig9Query,
		example4Query,
		`<q>{ for $p in /site/people/person return if ($p/id = "person0") then $p/name else () }</q>`,
		`<q>{ for $p in /a return <x>{ for $t in /b return if ($t/k = $p/k) then <hit/> else () }</x> }</q>`,
	}
	for _, src := range srcs {
		for _, opts := range []Options{{}, AllOptimizations(), {AggregateRoles: true}, {EarlyUpdates: true}} {
			a := analyze(t, src, opts)
			counts := map[xqast.Role]int{}
			xqast.Walk(a.Query.Root, func(e xqast.Expr) bool {
				if s, ok := e.(xqast.SignOff); ok {
					counts[s.Role]++
				}
				return true
			})
			for _, r := range a.Tree.Roles[1:] {
				want := 1
				if r.Eliminated {
					want = 0
				}
				if counts[r.ID] != want {
					t.Fatalf("opts %+v: role r%d (%s, $%s) has %d signoff sites, want %d\n%s",
						opts, r.ID, r.Kind, r.Var, counts[r.ID], want, xqast.Format(a.Query))
				}
			}
		}
	}
}
