package static

import (
	"gcx/internal/projtree"
	"gcx/internal/xqast"
)

// buildTree derives the projection tree (Section 4, "Deriving Projection
// Trees") in the paper's three steps, interleaved per variable so role
// numbering follows document order:
//
//  1. the variable tree becomes the projection-tree skeleton (each variable
//     node labeled with its for-loop step and carrying the binding role);
//  2. each dependency 〈$x/π, r〉 adds a chain of step nodes below $x's node
//     with role r on the chain's leaf;
//  3. the root is labeled "/".
//
// Dependency chains are kept separate (no prefix sharing) so every chain
// node belongs to exactly one role — required by signOff cancellation in
// the stream projector.
func (a *Analysis) buildTree() {
	t := projtree.New()
	a.Tree = t
	a.Vars[xqast.RootVar].Node = t.Root

	for _, name := range a.VarOrder {
		vi := a.Vars[name]
		if name != xqast.RootVar {
			parent := a.Vars[vi.Parent].Node
			n := t.AddNode(parent, vi.Step)
			n.Var = name
			n.AnchorSelf = vi.Straight
			role := t.AddRole(n, projtree.RoleBinding, name, false, "for $"+name)
			n.ChainRole = role.ID
			vi.Node = n
			vi.BindingRole = role.ID
		}
		for _, d := range a.Deps[name] {
			a.addDepChain(vi.Node, d)
		}
	}
}

// addDepChain materializes one dependency tuple below the variable node.
func (a *Analysis) addDepChain(varNode *projtree.Node, d *Dep) {
	t := a.Tree
	cur := varNode
	for _, step := range d.Steps {
		cur = t.AddNode(cur, step)
	}
	aggregate := a.Opts.AggregateRoles && cur.IsDosLeaf()
	role := t.AddRole(cur, d.Kind, d.Var, aggregate, d.Desc)
	d.Role = role.ID
	// Mark the whole chain with the leaf's role for cancellation.
	for n := cur; n != varNode; n = n.Parent {
		n.ChainRole = role.ID
	}
}
