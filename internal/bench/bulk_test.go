package bench

import "testing"

// TestRunBulkSmoke keeps the bulk sweep wired: a tiny corpus through
// two worker counts must produce consistent, monotone-sane rows.
func TestRunBulkSmoke(t *testing.T) {
	rep, err := RunBulk(BulkConfig{
		Docs:     6,
		DocBytes: 8 << 10,
		Seed:     7,
		Workers:  []int{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("got %d sweep points, want 2", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.DocsPerSec <= 0 {
			t.Errorf("-j %d: docs/s %v", r.Workers, r.DocsPerSec)
		}
		if r.PeakBufferNodes <= 0 {
			t.Errorf("-j %d: no buffer peak recorded", r.Workers)
		}
		if r.PoolUtilization <= 0 || r.PoolUtilization > 1.001 {
			t.Errorf("-j %d: utilization %v out of range", r.Workers, r.PoolUtilization)
		}
	}
	if rep.Results[0].SpeedupVsSerial != 1 {
		t.Errorf("serial speedup %v, want 1", rep.Results[0].SpeedupVsSerial)
	}
	if rep.CorpusBytes <= 0 || rep.Query != "Q6" {
		t.Errorf("report header: %+v", rep)
	}
}
