// Package bench is the benchmark harness that regenerates Table 1 of the
// paper: for each XMark query (Q1, Q6, Q8, Q13, Q20), document size, and
// engine (GCX, StaticOnly, FullBuffer), it measures wall-clock evaluation
// time and the buffer high watermark.
//
// The paper measured resident memory of whole processes (C++/Java engines)
// with `top`; we report the engine-controlled quantity — peak buffered
// nodes/bytes — plus Go heap figures, which is deterministic and directly
// reflects what the buffer-management technique controls. See EXPERIMENTS.md
// for the paper-versus-measured comparison.
package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gcx/internal/dtd"
	"gcx/internal/engine"
	"gcx/internal/queries"
	"gcx/internal/xmark"
)

// Config parameterizes a Table 1 sweep.
type Config struct {
	// Sizes are target document sizes in bytes (the paper used 10, 50,
	// 100, 200 MB).
	Sizes []int64
	// Queries to run; defaults to queries.All().
	Queries []queries.Query
	// Modes to compare; defaults to GCX, StaticOnly, FullBuffer.
	Modes []engine.Mode
	// Seed for document generation.
	Seed uint64
	// Timeout aborts a single run (0 = no timeout). The paper used 1 hour.
	Timeout time.Duration
	// WithSchema additionally runs GCX with the XMark DTD (schema-aware
	// early region termination; the FluX-style capability).
	WithSchema bool
	// Dir is where generated documents are cached; defaults to the OS
	// temp directory.
	Dir string
	// Progress, if non-nil, receives one line per completed run.
	Progress io.Writer
}

// Result is one cell of Table 1.
type Result struct {
	Query string
	// Engine is the column label: the mode name, or "GCX+DTD" for the
	// schema-aware run.
	Engine    string
	Mode      engine.Mode
	DocBytes  int64
	Duration  time.Duration
	PeakNodes int64
	PeakBytes int64
	OutBytes  int64
	Tokens    int64
	HeapPeak  uint64 // Go heap in use after the run (approximate)
	// Allocs / AllocBytes are the heap allocations performed during the
	// run (process-wide malloc deltas; with the engine's pooled run state
	// they approach the bytes the query genuinely had to buffer). Only
	// meaningful when AllocsMeasured is set: a goroutine abandoned by an
	// earlier timed-out run suppresses the measurement.
	Allocs         uint64
	AllocBytes     uint64
	AllocsMeasured bool
	Err            error
	TimedOut       bool
}

// Run executes the sweep and returns all results in (size, query, mode)
// order.
func Run(cfg Config) ([]Result, error) {
	if len(cfg.Queries) == 0 {
		cfg.Queries = queries.All()
	}
	if len(cfg.Modes) == 0 {
		cfg.Modes = []engine.Mode{engine.ModeGCX, engine.ModeStaticOnly, engine.ModeFullBuffer}
	}
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = []int64{10 << 20}
	}
	dir := cfg.Dir
	if dir == "" {
		dir = os.TempDir()
	}

	var results []Result
	for _, size := range cfg.Sizes {
		path, actual, err := Document(dir, size, cfg.Seed)
		if err != nil {
			return results, err
		}
		for _, q := range cfg.Queries {
			for _, mode := range cfg.Modes {
				r := runOne(q, mode, nil, path, actual, cfg.Timeout)
				results = append(results, r)
				if cfg.Progress != nil {
					fmt.Fprintf(cfg.Progress, "%s\n", FormatResult(r))
				}
			}
			if cfg.WithSchema {
				r := runOne(q, engine.ModeGCX, xmarkSchema(), path, actual, cfg.Timeout)
				results = append(results, r)
				if cfg.Progress != nil {
					fmt.Fprintf(cfg.Progress, "%s\n", FormatResult(r))
				}
			}
		}
	}
	return results, nil
}

// Document generates (or reuses) a cached XMark document of approximately
// the target size and returns its path and actual size.
func Document(dir string, targetBytes int64, seed uint64) (string, int64, error) {
	factor := xmark.FactorForSize(targetBytes)
	name := fmt.Sprintf("xmark-f%.6f-s%d.xml", factor, seed)
	path := filepath.Join(dir, name)
	if fi, err := os.Stat(path); err == nil && fi.Size() > 0 {
		return path, fi.Size(), nil
	}
	f, err := os.Create(path)
	if err != nil {
		return "", 0, fmt.Errorf("bench: create document: %w", err)
	}
	n, err := xmark.Generate(f, xmark.Config{Factor: factor, Seed: seed})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return "", 0, fmt.Errorf("bench: generate document: %w", err)
	}
	return path, n, nil
}

var schemaOnce struct {
	once   sync.Once
	schema *dtd.Schema
}

func xmarkSchema() *dtd.Schema {
	schemaOnce.once.Do(func() {
		schemaOnce.schema = dtd.MustParse(xmark.DTD)
	})
	return schemaOnce.schema
}

func runOne(q queries.Query, mode engine.Mode, schema *dtd.Schema, path string, docBytes int64, timeout time.Duration) Result {
	label := mode.String()
	if schema != nil {
		label += "+DTD"
	}
	r := Result{Query: q.Name, Engine: label, Mode: mode, DocBytes: docBytes}
	c, err := engine.Compile(q.Text, engine.Config{Mode: mode, Schema: schema})
	if err != nil {
		r.Err = err
		return r
	}
	f, err := os.Open(path)
	if err != nil {
		r.Err = err
		return r
	}
	defer f.Close()

	type outcome struct {
		st  engine.Stats
		err error
	}
	done := make(chan outcome, 1)
	// Alloc metrics are process-wide malloc deltas; a goroutine abandoned
	// by an earlier timeout would pollute them, so they are only reported
	// when no stray run is in flight around the measurement.
	cleanStart := strayRuns.Load() == 0
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	strayRuns.Add(1)
	go func() {
		st, err := c.Run(f, io.Discard)
		strayRuns.Add(-1)
		done <- outcome{st, err}
	}()

	var out outcome
	if timeout > 0 {
		select {
		case out = <-done:
		case <-time.After(timeout):
			r.TimedOut = true
			r.Duration = timeout
			return r
		}
	} else {
		out = <-done
	}
	r.Duration = time.Since(start)
	r.Err = out.err
	r.PeakNodes = out.st.Buffer.PeakNodes
	r.PeakBytes = out.st.Buffer.PeakBytes
	r.OutBytes = out.st.OutputBytes
	r.Tokens = out.st.TokensRead
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.HeapPeak = ms.HeapInuse
	if cleanStart && strayRuns.Load() == 0 {
		r.Allocs = ms.Mallocs - before.Mallocs
		r.AllocBytes = ms.TotalAlloc - before.TotalAlloc
		r.AllocsMeasured = true
	}
	return r
}

// strayRuns counts run goroutines currently inside engine.Run. A timed-out
// run's goroutine keeps executing after its result is abandoned; while any
// such stray is alive, per-run alloc metrics are left zero rather than
// reported wrong.
var strayRuns atomic.Int64

// FormatResult renders one result as a single line.
func FormatResult(r Result) string {
	if r.TimedOut {
		return fmt.Sprintf("%-4s %-11s %7s   timeout", r.Query, r.Engine, humanBytes(r.DocBytes))
	}
	if r.Err != nil {
		return fmt.Sprintf("%-4s %-11s %7s   error: %v", r.Query, r.Engine, humanBytes(r.DocBytes), r.Err)
	}
	allocs := "allocs n/a"
	if r.AllocsMeasured {
		allocs = fmt.Sprintf("allocs %d (%s)", r.Allocs, humanBytes(int64(r.AllocBytes)))
	}
	return fmt.Sprintf("%-4s %-11s %7s   %10s   peak %9s (%d nodes)   out %s   %s",
		r.Query, r.Engine, humanBytes(r.DocBytes), r.Duration.Round(time.Millisecond),
		humanBytes(r.PeakBytes), r.PeakNodes, humanBytes(r.OutBytes), allocs)
}

// FormatTable renders results in the layout of Table 1: one block per
// query, one row per document size, one column per engine showing
// "time / peak buffer".
func FormatTable(results []Result) string {
	type key struct {
		query string
		size  int64
	}
	cells := map[key]map[string]Result{}
	var modes []string
	modeSeen := map[string]bool{}
	var queriesOrder []string
	querySeen := map[string]bool{}
	sizesByQuery := map[string][]int64{}

	for _, r := range results {
		k := key{r.Query, r.DocBytes}
		if cells[k] == nil {
			cells[k] = map[string]Result{}
		}
		cells[k][r.Engine] = r
		if !modeSeen[r.Engine] {
			modeSeen[r.Engine] = true
			modes = append(modes, r.Engine)
		}
		if !querySeen[r.Query] {
			querySeen[r.Query] = true
			queriesOrder = append(queriesOrder, r.Query)
		}
		found := false
		for _, s := range sizesByQuery[r.Query] {
			if s == r.DocBytes {
				found = true
			}
		}
		if !found {
			sizesByQuery[r.Query] = append(sizesByQuery[r.Query], r.DocBytes)
		}
	}

	var b strings.Builder
	b.WriteString("Table 1 reproduction: evaluation time / buffer high watermark\n")
	b.WriteString(fmt.Sprintf("%-14s", "Query  Size"))
	for _, m := range modes {
		b.WriteString(fmt.Sprintf(" | %-24s", m))
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 14+27*len(modes)) + "\n")
	for _, qn := range queriesOrder {
		sizes := sizesByQuery[qn]
		sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
		for _, size := range sizes {
			b.WriteString(fmt.Sprintf("%-5s %8s", qn, humanBytes(size)))
			for _, m := range modes {
				r, ok := cells[key{qn, size}][m]
				switch {
				case !ok:
					b.WriteString(fmt.Sprintf(" | %-24s", "-"))
				case r.TimedOut:
					b.WriteString(fmt.Sprintf(" | %-24s", "timeout"))
				case r.Err != nil:
					b.WriteString(fmt.Sprintf(" | %-24s", "error"))
				default:
					b.WriteString(fmt.Sprintf(" | %9s / %-11s",
						r.Duration.Round(time.Millisecond), humanBytes(r.PeakBytes)))
				}
			}
			b.WriteString("\n")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatCSV renders results as CSV for downstream plotting.
func FormatCSV(results []Result) string {
	var b strings.Builder
	b.WriteString("query,engine,doc_bytes,duration_ms,peak_buffer_bytes,peak_buffer_nodes,output_bytes,tokens,timed_out,error\n")
	for _, r := range results {
		errStr := ""
		if r.Err != nil {
			errStr = strings.ReplaceAll(r.Err.Error(), ",", ";")
		}
		fmt.Fprintf(&b, "%s,%s,%d,%.3f,%d,%d,%d,%d,%t,%s\n",
			r.Query, r.Engine, r.DocBytes,
			float64(r.Duration.Microseconds())/1000.0,
			r.PeakBytes, r.PeakNodes, r.OutBytes, r.Tokens, r.TimedOut, errStr)
	}
	return b.String()
}

func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
