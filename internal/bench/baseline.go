package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Baseline is the committed BENCH_baseline.json document: the serve,
// bulk, and tokenizer reports captured on a known-good commit with the
// same parameters CI uses. The gcxbench -check gate compares a fresh
// run against it with per-metric tolerances, so a throughput or
// allocation regression fails the build instead of silently shipping
// as a prettier artifact.
//
// Regenerate (same machine class as the numbers being checked — the
// absolute throughput floors are hardware-relative) with:
//
//	gcxbench -serve-json BENCH_serve.json ...
//	gcxbench -bulk-json BENCH_bulk.json ...
//	gcxbench -tokenizer-json BENCH_tokenizer.json ...
//	gcxbench -baseline-out BENCH_baseline.json \
//	    -serve-in BENCH_serve.json -bulk-in BENCH_bulk.json \
//	    -tokenizer-in BENCH_tokenizer.json
type Baseline struct {
	// Note documents where the numbers came from (host class, date).
	Note      string           `json:"note,omitempty"`
	Serve     *ServeReport     `json:"serve,omitempty"`
	Bulk      *BulkReport      `json:"bulk,omitempty"`
	Tokenizer *TokenizerReport `json:"tokenizer,omitempty"`
}

// Tolerances are the per-metric regression budgets. The zero value is
// unusable; start from DefaultTolerances.
type Tolerances struct {
	// ThroughputDrop is the fractional docs/s / MB/s loss that fails the
	// gate (0.15 = fail on >15% drop).
	ThroughputDrop float64
	// AllocGrowth is the fractional allocs/op growth that fails the
	// gate, with AllocSlack absolute headroom on top: serve-path alloc
	// figures are process-wide deltas (GC and runtime goroutines bleed
	// in), so a literal zero-growth gate would flake. A real leak blows
	// through both in one step.
	AllocGrowth float64
	AllocSlack  uint64
	// PeakGrowth is the fractional buffer-peak growth that fails the
	// gate. Peaks are deterministic for a fixed (query, corpus), so
	// this mostly guards against projection/GC regressions.
	PeakGrowth float64
	// MinTextSpeedup is the absolute floor on the tokenizer's
	// chunked-vs-reference MB/s ratio for the text-heavy document —
	// the chunked rework's acceptance bar, held machine-portably.
	MinTextSpeedup float64
}

// DefaultTolerances returns the gate's defaults (the values the CI step
// runs with).
func DefaultTolerances() Tolerances {
	return Tolerances{
		ThroughputDrop: 0.15,
		AllocGrowth:    0.10,
		AllocSlack:     64,
		PeakGrowth:     0.15,
		MinTextSpeedup: 1.8,
	}
}

// Scale widens (factor > 1) or tightens every relative budget; the
// absolute floors (AllocSlack, MinTextSpeedup) are left alone.
func (tol Tolerances) Scale(factor float64) Tolerances {
	if factor > 0 {
		tol.ThroughputDrop *= factor
		tol.AllocGrowth *= factor
		tol.PeakGrowth *= factor
	}
	return tol
}

// LoadBaseline reads a Baseline (or a current-run Baseline assembled
// from individual report files — the format is the same).
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

// Compare checks a current run against the baseline and returns one
// violation string per breached budget (empty = gate passes). Sections
// present in the baseline but missing from the current run are
// violations — a gate that silently skips a lost artifact is no gate.
func (b *Baseline) Compare(cur *Baseline, tol Tolerances) []string {
	var v []string
	v = append(v, compareServe(b.Serve, cur.Serve, tol)...)
	v = append(v, compareBulk(b.Bulk, cur.Bulk, tol)...)
	v = append(v, compareTokenizer(b.Tokenizer, cur.Tokenizer, tol)...)
	return v
}

func throughputFloor(base float64, tol Tolerances) float64 {
	return base * (1 - tol.ThroughputDrop)
}

func allocCeiling(base uint64, tol Tolerances) uint64 {
	return base + uint64(float64(base)*tol.AllocGrowth) + tol.AllocSlack
}

func compareServe(base, cur *ServeReport, tol Tolerances) []string {
	if base == nil {
		return nil
	}
	if cur == nil {
		return []string{"serve: baseline has a serve section but the current run is missing BENCH_serve.json"}
	}
	var v []string
	if base.DocBytes != cur.DocBytes || base.Requests != cur.Requests ||
		strings.Join(base.Queries, ",") != strings.Join(cur.Queries, ",") {
		v = append(v, fmt.Sprintf("serve: parameter mismatch (doc %d vs %d bytes, %d vs %d requests, queries %v vs %v) — regenerate the baseline or fix the CI flags",
			base.DocBytes, cur.DocBytes, base.Requests, cur.Requests, base.Queries, cur.Queries))
		return v
	}
	// Absolute throughput floors only make sense on comparable hardware:
	// a core-count change is an environment change, not a regression, so
	// report it as such instead of as a misleading docs/s FAIL.
	if base.GoMaxProcs != cur.GoMaxProcs {
		v = append(v, fmt.Sprintf("serve: GOMAXPROCS changed %d -> %d — the runner hardware class differs from the baseline's; regenerate BENCH_baseline.json with gcxbench -baseline-out on the new class",
			base.GoMaxProcs, cur.GoMaxProcs))
		return v
	}
	curByPath := map[string]ServePathResult{}
	for _, r := range cur.Results {
		curByPath[r.Path] = r
	}
	for _, br := range base.Results {
		cr, ok := curByPath[br.Path]
		if !ok {
			v = append(v, fmt.Sprintf("serve/%s: path missing from current run", br.Path))
			continue
		}
		if floor := throughputFloor(br.DocsPerSec, tol); cr.DocsPerSec < floor {
			v = append(v, fmt.Sprintf("serve/%s: docs/s regressed %.1f -> %.1f (floor %.1f, -%.0f%% budget)",
				br.Path, br.DocsPerSec, cr.DocsPerSec, floor, tol.ThroughputDrop*100))
		}
		if ceil := allocCeiling(br.AllocsPerOp, tol); cr.AllocsPerOp > ceil {
			v = append(v, fmt.Sprintf("serve/%s: allocs/op grew %d -> %d (ceiling %d)",
				br.Path, br.AllocsPerOp, cr.AllocsPerOp, ceil))
		}
		if br.PeakBufferBytes > 0 {
			if ceil := int64(float64(br.PeakBufferBytes) * (1 + tol.PeakGrowth)); cr.PeakBufferBytes > ceil {
				v = append(v, fmt.Sprintf("serve/%s: peak buffer grew %d -> %d bytes (ceiling %d)",
					br.Path, br.PeakBufferBytes, cr.PeakBufferBytes, ceil))
			}
		}
	}
	return v
}

func compareBulk(base, cur *BulkReport, tol Tolerances) []string {
	if base == nil {
		return nil
	}
	if cur == nil {
		return []string{"bulk: baseline has a bulk section but the current run is missing BENCH_bulk.json"}
	}
	var v []string
	if base.Docs != cur.Docs || base.Query != cur.Query {
		v = append(v, fmt.Sprintf("bulk: parameter mismatch (%d vs %d docs, query %s vs %s) — regenerate the baseline or fix the CI flags",
			base.Docs, cur.Docs, base.Query, cur.Query))
		return v
	}
	if base.GoMaxProcs != cur.GoMaxProcs {
		v = append(v, fmt.Sprintf("bulk: GOMAXPROCS changed %d -> %d — the runner hardware class differs from the baseline's; regenerate BENCH_baseline.json with gcxbench -baseline-out on the new class",
			base.GoMaxProcs, cur.GoMaxProcs))
		return v
	}
	curByWorkers := map[int]BulkJobResult{}
	for _, r := range cur.Results {
		curByWorkers[r.Workers] = r
	}
	for _, br := range base.Results {
		cr, ok := curByWorkers[br.Workers]
		if !ok {
			v = append(v, fmt.Sprintf("bulk/j=%d: worker count missing from current run", br.Workers))
			continue
		}
		if floor := throughputFloor(br.DocsPerSec, tol); cr.DocsPerSec < floor {
			v = append(v, fmt.Sprintf("bulk/j=%d: docs/s regressed %.1f -> %.1f (floor %.1f)",
				br.Workers, br.DocsPerSec, cr.DocsPerSec, floor))
		}
		if br.PeakBufferBytes > 0 {
			if ceil := int64(float64(br.PeakBufferBytes) * (1 + tol.PeakGrowth)); cr.PeakBufferBytes > ceil {
				v = append(v, fmt.Sprintf("bulk/j=%d: per-doc peak buffer grew %d -> %d bytes (ceiling %d)",
					br.Workers, br.PeakBufferBytes, cr.PeakBufferBytes, ceil))
			}
		}
	}
	return v
}

func compareTokenizer(base, cur *TokenizerReport, tol Tolerances) []string {
	if base == nil {
		return nil
	}
	if cur == nil {
		return []string{"tokenizer: baseline has a tokenizer section but the current run is missing BENCH_tokenizer.json"}
	}
	var v []string
	if base.DocBytes != cur.DocBytes {
		v = append(v, fmt.Sprintf("tokenizer: parameter mismatch (doc %d vs %d bytes) — regenerate the baseline or fix the CI flags",
			base.DocBytes, cur.DocBytes))
		return v
	}
	curByCell := map[string]TokenizerResult{}
	for _, r := range cur.Results {
		curByCell[r.Doc+"/"+r.Path] = r
	}
	for _, br := range base.Results {
		key := br.Doc + "/" + br.Path
		cr, ok := curByCell[key]
		if !ok {
			v = append(v, fmt.Sprintf("tokenizer/%s: cell missing from current run", key))
			continue
		}
		if floor := throughputFloor(br.MBPerSec, tol); cr.MBPerSec < floor {
			v = append(v, fmt.Sprintf("tokenizer/%s: MB/s regressed %.1f -> %.1f (floor %.1f)",
				key, br.MBPerSec, cr.MBPerSec, floor))
		}
		if ceil := allocCeiling(br.AllocsPerOp, tol); cr.AllocsPerOp > ceil {
			v = append(v, fmt.Sprintf("tokenizer/%s: allocs/op grew %d -> %d (ceiling %d)",
				key, br.AllocsPerOp, cr.AllocsPerOp, ceil))
		}
		if br.Tokens > 0 && cr.Tokens != br.Tokens {
			v = append(v, fmt.Sprintf("tokenizer/%s: token count changed %d -> %d (deterministic corpus — scanner behavior changed)",
				key, br.Tokens, cr.Tokens))
		}
	}
	if tol.MinTextSpeedup > 0 && cur.SpeedupTextHeavy < tol.MinTextSpeedup {
		v = append(v, fmt.Sprintf("tokenizer: chunked/reference speedup on text-heavy fell to %.2fx (floor %.2fx)",
			cur.SpeedupTextHeavy, tol.MinTextSpeedup))
	}
	return v
}
