package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Baseline is the committed BENCH_baseline.json document: the serve,
// bulk, and tokenizer reports captured on a known-good commit with the
// same parameters CI uses. The gcxbench -check gate compares a fresh
// run against it with per-metric tolerances, so a throughput or
// allocation regression fails the build instead of silently shipping
// as a prettier artifact.
//
// The absolute throughput and allocation floors are hardware-relative,
// so they are only enforced when the current run's GOMAXPROCS matches
// the baseline's; on a mismatch (runner class changed) those floors are
// skipped with a warning and only the machine-portable metrics —
// parameters, token counts, buffer peaks, the chunked/reference
// speedup ratio — keep gating. Regenerate on the new class to restore
// the full gate:
//
//	gcxbench -serve-json BENCH_serve.json ...
//	gcxbench -bulk-json BENCH_bulk.json ...
//	gcxbench -tokenizer-json BENCH_tokenizer.json ...
//	gcxbench -baseline-out BENCH_baseline.json \
//	    -serve-in BENCH_serve.json -bulk-in BENCH_bulk.json \
//	    -tokenizer-in BENCH_tokenizer.json
type Baseline struct {
	// Note documents where the numbers came from (host class, date).
	Note      string           `json:"note,omitempty"`
	Serve     *ServeReport     `json:"serve,omitempty"`
	Bulk      *BulkReport      `json:"bulk,omitempty"`
	Tokenizer *TokenizerReport `json:"tokenizer,omitempty"`
	Subs      *SubsReport      `json:"subs,omitempty"`
}

// Tolerances are the per-metric regression budgets. The zero value is
// unusable; start from DefaultTolerances.
type Tolerances struct {
	// ThroughputDrop is the fractional docs/s / MB/s loss that fails the
	// gate (0.15 = fail on >15% drop).
	ThroughputDrop float64
	// AllocGrowth is the fractional allocs/op growth that fails the
	// gate, with AllocSlack absolute headroom on top: serve-path alloc
	// figures are process-wide deltas (GC and runtime goroutines bleed
	// in), so a literal zero-growth gate would flake. A real leak blows
	// through both in one step.
	AllocGrowth float64
	AllocSlack  uint64
	// PeakGrowth is the fractional buffer-peak growth that fails the
	// gate. Peaks are deterministic for a fixed (query, corpus), so
	// this mostly guards against projection/GC regressions.
	PeakGrowth float64
	// TTFRGrowth is the fractional time-to-first-result growth that
	// fails the gate, with TTFRSlackMs absolute headroom: first-byte
	// latencies sit in the microsecond-to-millisecond range where
	// scheduler noise dominates, so the relative budget is wide and the
	// slack absorbs the floor. A change that starts buffering results
	// before emission (the regression this guards) shifts TTFR by the
	// document's whole parse time and blows through both. TTFR floors
	// are hardware-relative: like throughput, they are skipped on a
	// GOMAXPROCS mismatch.
	TTFRGrowth  float64
	TTFRSlackMs float64
	// EarliestTTFRSlackMs is the tighter absolute headroom for the
	// earliest-answering scenario's first-byte latencies. That scenario's
	// whole point is that first-byte time is decoupled from document scan
	// time, so its budget is sub-millisecond where the general TTFR slack
	// is not: regressing the earliest path back into "first byte arrives
	// with the last" territory must fail the gate loudly.
	EarliestTTFRSlackMs float64
	// MinTextSpeedup is the absolute floor on the tokenizer's
	// chunked-vs-reference MB/s ratio for the text-heavy document —
	// the chunked rework's acceptance bar, held machine-portably.
	MinTextSpeedup float64
	// MinMarkupSpeedup is the same floor for the markup-heavy document —
	// the structural-index rework's acceptance bar. Like
	// MinTextSpeedup it is a ratio of two numbers measured on the same
	// runner in the same process, so it gates hard even when a
	// GOMAXPROCS mismatch suspends the absolute MB/s floors.
	MinMarkupSpeedup float64
	// MinSubsSpeedup is the absolute floor on the subscription registry's
	// shared-vs-disjoint docs/s ratio at the LARGEST subscription count in
	// the sweep — the subscription registry's acceptance bar (one merged
	// automaton with text dedup must beat one-automaton-per-subscription
	// by at least this factor under heavy overlap). A same-runner ratio,
	// so it gates even across hardware classes.
	MinSubsSpeedup float64
	// MinSubsRetention is the floor on the shared path's throughput
	// retention from the smallest to the largest subscription count — the
	// sublinearity witness. Linear-cost matching would show roughly
	// minCount/maxCount; structure-bound matching stays orders of
	// magnitude above it.
	MinSubsRetention float64
}

// DefaultTolerances returns the gate's defaults (the values the CI step
// runs with).
func DefaultTolerances() Tolerances {
	return Tolerances{
		ThroughputDrop:      0.15,
		AllocGrowth:         0.10,
		AllocSlack:          64,
		PeakGrowth:          0.15,
		TTFRGrowth:          0.75,
		TTFRSlackMs:         1.0,
		EarliestTTFRSlackMs: 0.5,
		MinTextSpeedup:      1.8,
		MinMarkupSpeedup:    2.0,
		MinSubsSpeedup:      5.0,
		MinSubsRetention:    0.02,
	}
}

// Scale widens (factor > 1) or tightens every relative budget; the
// absolute floors (AllocSlack, MinTextSpeedup, MinMarkupSpeedup) are
// left alone.
func (tol Tolerances) Scale(factor float64) Tolerances {
	if factor > 0 {
		tol.ThroughputDrop *= factor
		tol.AllocGrowth *= factor
		tol.PeakGrowth *= factor
		tol.TTFRGrowth *= factor
	}
	return tol
}

// LoadBaseline reads a Baseline (or a current-run Baseline assembled
// from individual report files — the format is the same).
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

// Compare checks a current run against the baseline and returns one
// violation string per breached budget (empty = gate passes), plus
// advisory warnings that do not fail the gate. Sections present in the
// baseline but missing from the current run are violations — a gate
// that silently skips a lost artifact is no gate. A GOMAXPROCS change
// is a warning: it means the runner hardware class differs from the
// baseline's, so the hardware-relative floors (throughput, allocs/op)
// are skipped until the baseline is regenerated on the new class,
// while the machine-portable checks (parameters, token counts, buffer
// peaks, speedup ratio) keep gating.
func (b *Baseline) Compare(cur *Baseline, tol Tolerances) (violations, warnings []string) {
	v, w := compareServe(b.Serve, cur.Serve, tol)
	violations, warnings = append(violations, v...), append(warnings, w...)
	v, w = compareBulk(b.Bulk, cur.Bulk, tol)
	violations, warnings = append(violations, v...), append(warnings, w...)
	v, w = compareTokenizer(b.Tokenizer, cur.Tokenizer, tol)
	violations, warnings = append(violations, v...), append(warnings, w...)
	v, w = compareSubs(b.Subs, cur.Subs, tol)
	violations, warnings = append(violations, v...), append(warnings, w...)
	return violations, warnings
}

func classChangeWarning(section string, base, cur int) string {
	return fmt.Sprintf("%s: GOMAXPROCS changed %d -> %d — the runner hardware class differs from the baseline's, so throughput and allocs/op floors are skipped; regenerate BENCH_baseline.json with gcxbench -baseline-out on this class to restore them",
		section, base, cur)
}

func throughputFloor(base float64, tol Tolerances) float64 {
	return base * (1 - tol.ThroughputDrop)
}

func allocCeiling(base uint64, tol Tolerances) uint64 {
	return base + uint64(float64(base)*tol.AllocGrowth) + tol.AllocSlack
}

func compareServe(base, cur *ServeReport, tol Tolerances) (v, w []string) {
	if base == nil {
		return nil, nil
	}
	if cur == nil {
		return []string{"serve: baseline has a serve section but the current run is missing BENCH_serve.json"}, nil
	}
	if base.DocBytes != cur.DocBytes || base.Requests != cur.Requests ||
		strings.Join(base.Queries, ",") != strings.Join(cur.Queries, ",") {
		v = append(v, fmt.Sprintf("serve: parameter mismatch (doc %d vs %d bytes, %d vs %d requests, queries %v vs %v) — regenerate the baseline or fix the CI flags",
			base.DocBytes, cur.DocBytes, base.Requests, cur.Requests, base.Queries, cur.Queries))
		return v, nil
	}
	// Absolute throughput and allocation floors only make sense on
	// comparable hardware: a core-count change is an environment change,
	// not a regression, so warn and fall through to the deterministic
	// checks instead of failing the gate on every run until the baseline
	// catches up with the runner class.
	sameClass := base.GoMaxProcs == cur.GoMaxProcs
	if !sameClass {
		w = append(w, classChangeWarning("serve", base.GoMaxProcs, cur.GoMaxProcs))
	}
	curByPath := map[string]ServePathResult{}
	for _, r := range cur.Results {
		curByPath[r.Path] = r
	}
	for _, br := range base.Results {
		cr, ok := curByPath[br.Path]
		if !ok {
			v = append(v, fmt.Sprintf("serve/%s: path missing from current run", br.Path))
			continue
		}
		if sameClass {
			if floor := throughputFloor(br.DocsPerSec, tol); cr.DocsPerSec < floor {
				v = append(v, fmt.Sprintf("serve/%s: docs/s regressed %.1f -> %.1f (floor %.1f, -%.0f%% budget)",
					br.Path, br.DocsPerSec, cr.DocsPerSec, floor, tol.ThroughputDrop*100))
			}
			if ceil := allocCeiling(br.AllocsPerOp, tol); cr.AllocsPerOp > ceil {
				v = append(v, fmt.Sprintf("serve/%s: allocs/op grew %d -> %d (ceiling %d)",
					br.Path, br.AllocsPerOp, cr.AllocsPerOp, ceil))
			}
			for _, q := range []struct {
				name      string
				base, cur float64
			}{
				{"ttfr p50", br.TTFRP50Ms, cr.TTFRP50Ms},
				{"ttfr p99", br.TTFRP99Ms, cr.TTFRP99Ms},
			} {
				if q.base <= 0 {
					continue // baseline predates TTFR tracking or path had no output
				}
				if ceil := q.base*(1+tol.TTFRGrowth) + tol.TTFRSlackMs; q.cur > ceil {
					v = append(v, fmt.Sprintf("serve/%s: %s regressed %.2fms -> %.2fms (ceiling %.2fms) — output is reaching the client later; check for new buffering ahead of the first result byte",
						br.Path, q.name, q.base, q.cur, ceil))
				}
			}
		}
		if br.PeakBufferBytes > 0 {
			if ceil := int64(float64(br.PeakBufferBytes) * (1 + tol.PeakGrowth)); cr.PeakBufferBytes > ceil {
				v = append(v, fmt.Sprintf("serve/%s: peak buffer grew %d -> %d bytes (ceiling %d)",
					br.Path, br.PeakBufferBytes, cr.PeakBufferBytes, ceil))
			}
		}
	}
	v, w = compareEarliest(base.Earliest, cur.Earliest, sameClass, tol, v, w)
	return v, w
}

// compareEarliest gates the earliest-answering scenario: the sink and
// server first-byte latencies must stay within the (tight) earliest
// slack of the baseline. Like the other latency floors it is
// hardware-relative and suspended on a runner-class change; output
// bytes are deterministic and always gate.
func compareEarliest(base, cur *EarliestReport, sameClass bool, tol Tolerances, v, w []string) ([]string, []string) {
	if base == nil {
		return v, w
	}
	if cur == nil {
		return append(v, "serve/earliest: baseline has an earliest-answering scenario but the current run is missing it — regenerate BENCH_serve.json with a gcxbench that knows the scenario"), w
	}
	if base.Query != cur.Query || base.DocBytes != cur.DocBytes {
		return append(v, fmt.Sprintf("serve/earliest: parameter mismatch (query %q vs %q, doc %d vs %d bytes) — regenerate the baseline or fix the CI flags",
			base.Query, cur.Query, base.DocBytes, cur.DocBytes)), w
	}
	if base.OutputBytes > 0 && cur.OutputBytes != base.OutputBytes {
		v = append(v, fmt.Sprintf("serve/earliest: output bytes changed %d -> %d (deterministic corpus — evaluator behavior changed)",
			base.OutputBytes, cur.OutputBytes))
	}
	if !sameClass {
		return v, w
	}
	for _, q := range []struct {
		name      string
		base, cur float64
	}{
		{"engine ttfr p50", base.EngineTTFRP50Ms, cur.EngineTTFRP50Ms},
		{"sink ttfr p50", base.SinkTTFRP50Ms, cur.SinkTTFRP50Ms},
		{"server ttfb p50", base.ServerTTFBP50Ms, cur.ServerTTFBP50Ms},
	} {
		if q.base <= 0 {
			continue
		}
		if ceil := q.base*(1+tol.TTFRGrowth) + tol.EarliestTTFRSlackMs; q.cur > ceil {
			v = append(v, fmt.Sprintf("serve/earliest: %s regressed %.3fms -> %.3fms (ceiling %.3fms) — the first result byte is being held past certainty; check for new batching or a lost flush on the emit path",
				q.name, q.base, q.cur, ceil))
		}
	}
	return v, w
}

func compareBulk(base, cur *BulkReport, tol Tolerances) (v, w []string) {
	if base == nil {
		return nil, nil
	}
	if cur == nil {
		return []string{"bulk: baseline has a bulk section but the current run is missing BENCH_bulk.json"}, nil
	}
	if base.Docs != cur.Docs || base.Query != cur.Query {
		v = append(v, fmt.Sprintf("bulk: parameter mismatch (%d vs %d docs, query %s vs %s) — regenerate the baseline or fix the CI flags",
			base.Docs, cur.Docs, base.Query, cur.Query))
		return v, nil
	}
	sameClass := base.GoMaxProcs == cur.GoMaxProcs
	if !sameClass {
		w = append(w, classChangeWarning("bulk", base.GoMaxProcs, cur.GoMaxProcs))
	}
	curByWorkers := map[int]BulkJobResult{}
	for _, r := range cur.Results {
		curByWorkers[r.Workers] = r
	}
	for _, br := range base.Results {
		cr, ok := curByWorkers[br.Workers]
		if !ok {
			v = append(v, fmt.Sprintf("bulk/j=%d: worker count missing from current run", br.Workers))
			continue
		}
		if sameClass {
			if floor := throughputFloor(br.DocsPerSec, tol); cr.DocsPerSec < floor {
				v = append(v, fmt.Sprintf("bulk/j=%d: docs/s regressed %.1f -> %.1f (floor %.1f)",
					br.Workers, br.DocsPerSec, cr.DocsPerSec, floor))
			}
		}
		if br.PeakBufferBytes > 0 {
			if ceil := int64(float64(br.PeakBufferBytes) * (1 + tol.PeakGrowth)); cr.PeakBufferBytes > ceil {
				v = append(v, fmt.Sprintf("bulk/j=%d: per-doc peak buffer grew %d -> %d bytes (ceiling %d)",
					br.Workers, br.PeakBufferBytes, cr.PeakBufferBytes, ceil))
			}
		}
	}
	return v, w
}

func compareTokenizer(base, cur *TokenizerReport, tol Tolerances) (v, w []string) {
	if base == nil {
		return nil, nil
	}
	if cur == nil {
		return []string{"tokenizer: baseline has a tokenizer section but the current run is missing BENCH_tokenizer.json"}, nil
	}
	if base.DocBytes != cur.DocBytes {
		v = append(v, fmt.Sprintf("tokenizer: parameter mismatch (doc %d vs %d bytes) — regenerate the baseline or fix the CI flags",
			base.DocBytes, cur.DocBytes))
		return v, nil
	}
	// The primary tokenizer gates are machine-portable and always run:
	// token counts (deterministic corpus) and the chunked/reference
	// speedup ratio, which cancels out runner speed. Absolute MB/s and
	// allocs/op floors are only held within one hardware class, same as
	// serve/bulk.
	sameClass := base.GoMaxProcs == cur.GoMaxProcs
	if !sameClass {
		w = append(w, classChangeWarning("tokenizer", base.GoMaxProcs, cur.GoMaxProcs))
	}
	curByCell := map[string]TokenizerResult{}
	for _, r := range cur.Results {
		curByCell[r.Doc+"/"+r.Path] = r
	}
	for _, br := range base.Results {
		key := br.Doc + "/" + br.Path
		cr, ok := curByCell[key]
		if !ok {
			v = append(v, fmt.Sprintf("tokenizer/%s: cell missing from current run", key))
			continue
		}
		if sameClass {
			if floor := throughputFloor(br.MBPerSec, tol); cr.MBPerSec < floor {
				v = append(v, fmt.Sprintf("tokenizer/%s: MB/s regressed %.1f -> %.1f (floor %.1f)",
					key, br.MBPerSec, cr.MBPerSec, floor))
			}
			if ceil := allocCeiling(br.AllocsPerOp, tol); cr.AllocsPerOp > ceil {
				v = append(v, fmt.Sprintf("tokenizer/%s: allocs/op grew %d -> %d (ceiling %d)",
					key, br.AllocsPerOp, cr.AllocsPerOp, ceil))
			}
		}
		if br.Tokens > 0 && cr.Tokens != br.Tokens {
			v = append(v, fmt.Sprintf("tokenizer/%s: token count changed %d -> %d (deterministic corpus — scanner behavior changed)",
				key, br.Tokens, cr.Tokens))
		}
	}
	if tol.MinTextSpeedup > 0 && cur.SpeedupTextHeavy < tol.MinTextSpeedup {
		v = append(v, fmt.Sprintf("tokenizer: chunked/reference speedup on text-heavy fell to %.2fx (floor %.2fx)",
			cur.SpeedupTextHeavy, tol.MinTextSpeedup))
	}
	if tol.MinMarkupSpeedup > 0 && cur.SpeedupMarkupHeavy < tol.MinMarkupSpeedup {
		v = append(v, fmt.Sprintf("tokenizer: chunked/reference speedup on markup-heavy fell to %.2fx (floor %.2fx) — the structural-index fast paths are no longer engaging on dense markup",
			cur.SpeedupMarkupHeavy, tol.MinMarkupSpeedup))
	}
	return v, w
}

func compareSubs(base, cur *SubsReport, tol Tolerances) (v, w []string) {
	if base == nil {
		return nil, nil
	}
	if cur == nil {
		return []string{"subs: baseline has a subscription-scale section but the current run is missing BENCH_subs.json"}, nil
	}
	countsOf := func(r *SubsReport) string {
		var parts []string
		for _, x := range r.Results {
			parts = append(parts, fmt.Sprint(x.Subs))
		}
		return strings.Join(parts, ",")
	}
	if base.DocBytes != cur.DocBytes || countsOf(base) != countsOf(cur) {
		v = append(v, fmt.Sprintf("subs: parameter mismatch (doc %d vs %d bytes, counts %s vs %s) — regenerate the baseline or fix the CI flags",
			base.DocBytes, cur.DocBytes, countsOf(base), countsOf(cur)))
		return v, nil
	}
	sameClass := base.GoMaxProcs == cur.GoMaxProcs
	if !sameClass {
		w = append(w, classChangeWarning("subs", base.GoMaxProcs, cur.GoMaxProcs))
	}
	curBySubs := map[int]SubsResult{}
	for _, r := range cur.Results {
		curBySubs[r.Subs] = r
	}
	for _, br := range base.Results {
		cr, ok := curBySubs[br.Subs]
		if !ok {
			v = append(v, fmt.Sprintf("subs/%d: count missing from current run", br.Subs))
			continue
		}
		if cr.Groups != cr.DistinctTexts {
			v = append(v, fmt.Sprintf("subs/%d: registry formed %d groups for %d distinct texts — query-text dedup is broken",
				cr.Subs, cr.Groups, cr.DistinctTexts))
		}
		if sameClass {
			if floor := throughputFloor(br.SharedDocsPerSec, tol); cr.SharedDocsPerSec < floor {
				v = append(v, fmt.Sprintf("subs/%d: shared docs/s regressed %.1f -> %.1f (floor %.1f)",
					br.Subs, br.SharedDocsPerSec, cr.SharedDocsPerSec, floor))
			}
		}
		if br.SharedPeakBufferBytes > 0 {
			if ceil := int64(float64(br.SharedPeakBufferBytes) * (1 + tol.PeakGrowth)); cr.SharedPeakBufferBytes > ceil {
				v = append(v, fmt.Sprintf("subs/%d: shared peak buffer grew %d -> %d bytes (ceiling %d)",
					br.Subs, br.SharedPeakBufferBytes, cr.SharedPeakBufferBytes, ceil))
			}
		}
	}
	// The machine-portable acceptance bars: both are same-runner ratios,
	// so they gate even when the absolute floors are suspended.
	if n := len(cur.Results); n > 0 {
		last := cur.Results[n-1]
		if tol.MinSubsSpeedup > 0 && last.Speedup < tol.MinSubsSpeedup {
			v = append(v, fmt.Sprintf("subs/%d: shared/disjoint speedup fell to %.1fx (floor %.1fx) — the merged automaton is no longer amortizing overlapping subscriptions",
				last.Subs, last.Speedup, tol.MinSubsSpeedup))
		}
	}
	if tol.MinSubsRetention > 0 && cur.SharedRetention > 0 && cur.SharedRetention < tol.MinSubsRetention {
		v = append(v, fmt.Sprintf("subs: shared-path throughput retention fell to %.4f (floor %.4f) — registry cost is scaling with the subscription count, not the distinct structures",
			cur.SharedRetention, tol.MinSubsRetention))
	}
	return v, w
}
