package bench

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"gcx"
	"gcx/internal/engine"
	"gcx/internal/queries"
	"gcx/internal/workload"
	"gcx/internal/xmark"
)

// SubsConfig parameterizes the subscription-scale benchmark (cmd/gcxbench
// -subs-json): N standing queries with heavy textual overlap are
// registered in a gcx.Registry and one document is pushed through the
// fleet, against a comparator that evaluates the same N queries as N
// independent projection automata (a disjoint-merge workload — the "one
// automaton per subscription" model a naive registry would be). The gap
// between the two columns is the tentpole claim of the subscription
// registry: matching cost scales with the number of distinct path
// STRUCTURES, not the subscription count.
type SubsConfig struct {
	// Counts is the subscription-count sweep (default 10, 100, 1000, 10000).
	Counts []int
	// DocBytes is the target size of the generated XMark document the
	// fleet evaluates (kept small: the disjoint comparator's cost grows
	// with Counts × DocBytes).
	DocBytes int64
	// Seed for document generation.
	Seed uint64
	// Iterations is the number of measured runs per count (plus one
	// warm-up that also builds the registry snapshot).
	Iterations int
	// Progress, if non-nil, receives one line per completed count.
	Progress io.Writer
}

// SubsResult is one subscription count's measurements. Field names are
// scrape-stable for CI trend tooling.
type SubsResult struct {
	Subs          int `json:"subs"`
	DistinctTexts int `json:"distinct_texts"`
	// Groups is the registry's distinct-query-text group count — the
	// number of evaluations one shared pass performs (== DistinctTexts;
	// recorded from the registry as a self-check).
	Groups int `json:"groups"`
	// SharedDocsPerSec is the registry path: one merged automaton with
	// node sharing, one evaluation per distinct text, fanout to all subs.
	SharedDocsPerSec float64 `json:"shared_docs_per_sec"`
	// DisjointDocsPerSec is the comparator: N members, no dedup, no node
	// sharing (workload.Config.DisjointMerge).
	DisjointDocsPerSec float64 `json:"disjoint_docs_per_sec"`
	// Speedup is SharedDocsPerSec / DisjointDocsPerSec.
	Speedup float64 `json:"speedup"`
	// SubscribeUsPerSub is the mean incremental Subscribe cost (compile +
	// registration) at this scale.
	SubscribeUsPerSub float64 `json:"subscribe_us_per_sub"`
	// SharedPeakBufferBytes / DisjointPeakBufferBytes are the union
	// buffer high watermarks of one run on each path.
	SharedPeakBufferBytes   int64 `json:"shared_peak_buffer_bytes"`
	DisjointPeakBufferBytes int64 `json:"disjoint_peak_buffer_bytes"`
	// OutputBytes is the total fanout volume of one shared run (every
	// subscriber's copy counted).
	OutputBytes int64 `json:"output_bytes"`
}

// SubsReport is the BENCH_subs.json document.
type SubsReport struct {
	DocBytes   int64        `json:"doc_bytes"`
	Iterations int          `json:"iterations"`
	Templates  int          `json:"templates"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Results    []SubsResult `json:"results"`
	// SharedRetention is SharedDocsPerSec at the largest count divided by
	// SharedDocsPerSec at the smallest — the sublinearity witness. A
	// registry whose cost grew linearly with the subscription count would
	// show ~minCount/maxCount here; structure-bound matching holds it
	// orders of magnitude higher.
	SharedRetention float64 `json:"shared_retention"`
}

// maxDistinctTexts bounds the distinct query texts per count: past this
// the fleet is pure fanout (more subscribers of existing texts), which is
// exactly the regime a 10k-subscription service lives in.
const maxDistinctTexts = 64

// subsTexts builds n distinct query texts from the catalog queries by
// wrapping each in a per-index result element: the projection spines —
// the part the merged automaton shares — are identical across variants of
// one template, while the texts (and outputs) stay distinct.
func subsTexts(n int) []string {
	templates := queries.All()
	texts := make([]string, n)
	for i := range texts {
		t := templates[i%len(templates)]
		texts[i] = fmt.Sprintf("<v%d>{ %s }</v%d>", i, strings.TrimSpace(t.Text), i)
	}
	return texts
}

// RunSubs executes the subscription-count sweep.
func RunSubs(cfg SubsConfig) (*SubsReport, error) {
	if len(cfg.Counts) == 0 {
		cfg.Counts = []int{10, 100, 1000, 10000}
	}
	if cfg.DocBytes <= 0 {
		cfg.DocBytes = 128 << 10
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 3
	}

	var buf bytes.Buffer
	if _, err := xmark.Generate(&buf, xmark.Config{Factor: xmark.FactorForSize(cfg.DocBytes), Seed: cfg.Seed}); err != nil {
		return nil, err
	}
	doc := buf.Bytes()

	rep := &SubsReport{
		DocBytes:   int64(len(doc)),
		Iterations: cfg.Iterations,
		Templates:  len(queries.All()),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, n := range cfg.Counts {
		r, err := runSubsCount(n, cfg.Iterations, doc)
		if err != nil {
			return nil, fmt.Errorf("subs=%d: %w", n, err)
		}
		rep.Results = append(rep.Results, r)
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "%s\n", FormatSubsResult(r))
		}
	}
	first, last := rep.Results[0], rep.Results[len(rep.Results)-1]
	if first.SharedDocsPerSec > 0 {
		rep.SharedRetention = last.SharedDocsPerSec / first.SharedDocsPerSec
	}
	return rep, nil
}

func runSubsCount(n, iterations int, doc []byte) (SubsResult, error) {
	distinct := min(n, maxDistinctTexts)
	texts := subsTexts(distinct)
	res := SubsResult{Subs: n, DistinctTexts: distinct}

	// Shared path: the registry. Subscribe cost is measured over the full
	// fleet build — at 10k subs most Subscribes are fanout-only joins of
	// an existing group, which is the incremental cost that matters.
	reg, err := gcx.NewRegistry()
	if err != nil {
		return res, err
	}
	t0 := time.Now()
	for i := 0; i < n; i++ {
		if _, err := reg.Subscribe(fmt.Sprintf("sub-%d", i), texts[i%distinct]); err != nil {
			return res, err
		}
	}
	res.SubscribeUsPerSub = float64(time.Since(t0).Microseconds()) / float64(n)
	res.Groups = reg.Groups()

	// Every subscriber gets a real (discarding) writer so the fanout loop
	// runs and per-subscription byte accounting stays live — the same
	// delivery work a serving tier performs, and the same writer the
	// disjoint comparator gets.
	sink := gcx.SinkFunc(func(*gcx.Subscription) io.Writer { return io.Discard })

	// Warm-up builds the merged snapshot and fills the run-state pool.
	st, err := reg.Run(bytes.NewReader(doc), sink)
	if err != nil {
		return res, err
	}
	res.SharedPeakBufferBytes = st.Aggregate.PeakBufferBytes
	res.OutputBytes = subsOutputBytes(reg)
	start := time.Now()
	for i := 0; i < iterations; i++ {
		if _, err := reg.Run(bytes.NewReader(doc), sink); err != nil {
			return res, err
		}
	}
	res.SharedDocsPerSec = float64(iterations) / time.Since(start).Seconds()

	// Disjoint comparator: the same n queries as independent automata in
	// one pass — per-query projection trees merged WITHOUT node sharing
	// and without text dedup, so matching and buffering cost carry the
	// full subscription count.
	members := make([]*engine.Compiled, n)
	compiled := make(map[string]*engine.Compiled, distinct)
	for i := 0; i < n; i++ {
		text := texts[i%distinct]
		c, ok := compiled[text]
		if !ok {
			c, err = engine.Compile(text, engine.Config{Mode: engine.ModeGCX})
			if err != nil {
				return res, err
			}
			compiled[text] = c
		}
		members[i] = c
	}
	wl, err := workload.CompileMembers(members, workload.Config{
		Engine:        engine.Config{Mode: engine.ModeGCX},
		DisjointMerge: true,
	})
	if err != nil {
		return res, err
	}
	outs := make([]io.Writer, n)
	for i := range outs {
		outs[i] = io.Discard
	}
	wst, _, err := wl.Run(bytes.NewReader(doc), outs)
	if err != nil {
		return res, err
	}
	res.DisjointPeakBufferBytes = wst.Buffer.PeakBytes
	start = time.Now()
	for i := 0; i < iterations; i++ {
		if _, _, err := wl.Run(bytes.NewReader(doc), outs); err != nil {
			return res, err
		}
	}
	res.DisjointDocsPerSec = float64(iterations) / time.Since(start).Seconds()
	if res.DisjointDocsPerSec > 0 {
		res.Speedup = res.SharedDocsPerSec / res.DisjointDocsPerSec
	}
	return res, nil
}

// subsOutputBytes sums the fleet's delivered bytes after one run.
func subsOutputBytes(reg *gcx.Registry) int64 {
	var total int64
	for _, id := range reg.IDs() {
		if sub, ok := reg.Subscription(id); ok {
			total += sub.Stats().OutputBytes
		}
	}
	return total
}

// FormatSubsResult renders one count's row as a single line.
func FormatSubsResult(r SubsResult) string {
	return fmt.Sprintf("subs %6d (%2d texts)   shared %8.1f docs/s   disjoint %8.2f docs/s   speedup %6.1fx   subscribe %6.1fus/sub   peak %s vs %s",
		r.Subs, r.DistinctTexts, r.SharedDocsPerSec, r.DisjointDocsPerSec, r.Speedup,
		r.SubscribeUsPerSub, humanBytes(r.SharedPeakBufferBytes), humanBytes(r.DisjointPeakBufferBytes))
}

// FormatSubsTable renders the full report for humans.
func FormatSubsTable(rep *SubsReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Subscription scale: %s doc, %d templates, %d iterations\n",
		humanBytes(rep.DocBytes), rep.Templates, rep.Iterations)
	for _, r := range rep.Results {
		b.WriteString(FormatSubsResult(r) + "\n")
	}
	fmt.Fprintf(&b, "shared-path throughput retention %d -> %d subs: %.3f\n",
		rep.Results[0].Subs, rep.Results[len(rep.Results)-1].Subs, rep.SharedRetention)
	return b.String()
}
