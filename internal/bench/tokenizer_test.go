package bench

import (
	"bytes"
	"io"
	"testing"

	"gcx"
	"gcx/internal/queries"
	"gcx/internal/xmlstream"
)

// BenchmarkTokenizerThroughput reports scan MB/s for the chunked
// tokenizer against the retained per-byte Reference scanner (and the
// full projected engine path) on the two XMark profile extremes. Run as
// a -benchtime 1x smoke in CI; locally:
//
//	go test -run xxx -bench BenchmarkTokenizerThroughput -benchmem ./internal/bench
//
// The acceptance bar for the chunked rework: ≥1.8x MB/s over reference
// on the text-heavy document with no allocs/op growth (the ratio is
// asserted continuously by the BENCH_baseline.json gate, not here —
// benchmark binaries must not fail on machine-dependent timings).
func BenchmarkTokenizerThroughput(b *testing.B) {
	textHeavy, markupHeavy := tokenizerDocs(4<<20, 1)
	opts := xmlstream.DefaultOptions()
	opts.BorrowText = true

	eng, err := gcx.Compile(queries.Q1.Text)
	if err != nil {
		b.Fatal(err)
	}

	for _, doc := range []struct {
		name string
		data []byte
	}{{"text-heavy", textHeavy}, {"markup-heavy", markupHeavy}} {
		r := bytes.NewReader(doc.data)
		b.Run(doc.name+"/index", func(b *testing.B) {
			var ix xmlstream.StructIndex
			b.SetBytes(int64(len(doc.data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := drainIndex(&ix, doc.data); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(doc.name+"/chunked", func(b *testing.B) {
			tok := xmlstream.NewTokenizerOptions(nil, opts)
			b.SetBytes(int64(len(doc.data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Reset(doc.data)
				tok.Reset(r)
				if _, err := drainChunked(tok); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(doc.name+"/reference", func(b *testing.B) {
			tok := xmlstream.NewReference(nil, opts)
			b.SetBytes(int64(len(doc.data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Reset(doc.data)
				tok.Reset(r)
				if _, err := drainReference(tok); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(doc.name+"/projected", func(b *testing.B) {
			b.SetBytes(int64(len(doc.data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Reset(doc.data)
				if _, err := eng.Run(r, io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestChunkedTokenizerAllocsNotAboveReference is the deterministic half
// of the acceptance bar: in the engine's BorrowText mode a warm chunked
// tokenizer must not allocate more per pass than the per-byte scanner it
// replaced (both are zero in steady state; the chunked scanner must not
// regress that).
func TestChunkedTokenizerAllocsNotAboveReference(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	textHeavy, markupHeavy := tokenizerDocs(256<<10, 1)
	opts := xmlstream.DefaultOptions()
	opts.BorrowText = true
	chunked := xmlstream.NewTokenizerOptions(nil, opts)
	reference := xmlstream.NewReference(nil, opts)

	for _, doc := range [][]byte{textHeavy, markupHeavy} {
		r := bytes.NewReader(doc)
		chunkedPass := func() {
			r.Reset(doc)
			chunked.Reset(r)
			if _, err := drainChunked(chunked); err != nil {
				t.Fatal(err)
			}
		}
		referencePass := func() {
			r.Reset(doc)
			reference.Reset(r)
			if _, err := drainReference(reference); err != nil {
				t.Fatal(err)
			}
		}
		chunkedPass() // warm up scratch buffers and name tables
		referencePass()
		ca := testing.AllocsPerRun(5, chunkedPass)
		ra := testing.AllocsPerRun(5, referencePass)
		if ca > ra {
			t.Fatalf("chunked tokenizer allocates more than reference: %.1f > %.1f allocs/pass", ca, ra)
		}
		if ca > 0 {
			t.Fatalf("warm chunked tokenizer allocates: %.1f allocs/pass, want 0", ca)
		}
	}
}

// TestRunTokenizer smoke-tests the report: all eight cells present, sane
// throughput numbers, and both scanners agree on the token count per
// document (the in-benchmark differential check).
func TestRunTokenizer(t *testing.T) {
	rep, err := RunTokenizer(TokenizerConfig{DocBytes: 64 << 10, Seed: 3, Iters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 8 {
		t.Fatalf("got %d cells, want 8", len(rep.Results))
	}
	tokens := map[string]int64{}
	for _, r := range rep.Results {
		if r.MBPerSec <= 0 {
			t.Errorf("%s/%s: non-positive MB/s", r.Doc, r.Path)
		}
		if r.Path == "index" && r.Tokens == 0 {
			t.Errorf("%s/index: zero structural bytes counted", r.Doc)
		}
		if r.Path == "chunked" || r.Path == "reference" {
			tokens[r.Doc+"/"+r.Path] = r.Tokens
		}
	}
	for _, doc := range []string{"text-heavy", "markup-heavy"} {
		if tokens[doc+"/chunked"] == 0 || tokens[doc+"/chunked"] != tokens[doc+"/reference"] {
			t.Errorf("%s: token count divergence chunked=%d reference=%d",
				doc, tokens[doc+"/chunked"], tokens[doc+"/reference"])
		}
	}
	if rep.SpeedupTextHeavy <= 0 || rep.SpeedupMarkupHeavy <= 0 {
		t.Fatalf("speedups not computed: %+v", rep)
	}
}

// BenchmarkStructuralIndex isolates the classification pass: Build over
// the whole document plus a full candidate walk, no tokenization. Its
// MB/s is the ceiling the index-driven scanner approaches as markup
// density grows; a regression here slows every window slide.
func BenchmarkStructuralIndex(b *testing.B) {
	textHeavy, markupHeavy := tokenizerDocs(4<<20, 1)
	for _, doc := range []struct {
		name string
		data []byte
	}{{"text-heavy", textHeavy}, {"markup-heavy", markupHeavy}} {
		b.Run(doc.name, func(b *testing.B) {
			var ix xmlstream.StructIndex
			b.SetBytes(int64(len(doc.data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := drainIndex(&ix, doc.data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
