package bench

import (
	"bytes"
	"io"
	"testing"

	"gcx/internal/engine"
	"gcx/internal/queries"
	"gcx/internal/workload"
	"gcx/internal/xmark"
)

// BenchmarkWorkload compares one shared-stream pass of 8 XMark queries
// (the Table 1 five plus the extended corpus) against 8 sequential solo
// passes over the same document. Both cases process one document per
// iteration (SetBytes reports input bytes per workload completion), so
// the MB/s figures are directly comparable: the shared pass tokenizes and
// projects the input once instead of 8 times.
//
// The document is 1MB: the speedup measures the linear scan work the
// shared pass eliminates. Q8's nested-loop join costs the same evaluator
// work in both settings and grows quadratically with document size, so at
// much larger documents it becomes the Amdahl floor of the ratio (the
// shared pass then still wins by the full scan cost of the other seven
// queries).
func BenchmarkWorkload(b *testing.B) {
	qs := queries.AllIncludingExtended()
	texts := make([]string, len(qs))
	for i, q := range qs {
		texts[i] = q.Text
	}

	var docBuf bytes.Buffer
	if _, err := xmark.Generate(&docBuf, xmark.Config{Factor: xmark.FactorForSize(1 << 20), Seed: 1}); err != nil {
		b.Fatal(err)
	}
	doc := docBuf.Bytes()

	b.Run("shared", func(b *testing.B) {
		w, err := workload.Compile(texts, workload.Config{Engine: engine.Config{Mode: engine.ModeGCX}})
		if err != nil {
			b.Fatal(err)
		}
		outs := make([]io.Writer, len(texts))
		for i := range outs {
			outs[i] = io.Discard
		}
		b.SetBytes(int64(len(doc)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := w.Run(bytes.NewReader(doc), outs); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("sequential", func(b *testing.B) {
		engines := make([]*engine.Compiled, len(texts))
		for i, t := range texts {
			c, err := engine.Compile(t, engine.Config{Mode: engine.ModeGCX})
			if err != nil {
				b.Fatal(err)
			}
			engines[i] = c
		}
		b.SetBytes(int64(len(doc)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, c := range engines {
				if _, err := c.Run(bytes.NewReader(doc), io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// TestWorkloadSinglePassEquivalence is the acceptance check behind the
// benchmark: over an XMark document, the shared pass reads the input
// exactly once (aggregate TokensRead equals one solo full pass) and every
// member's output is byte-identical to its solo run.
func TestWorkloadSinglePassEquivalence(t *testing.T) {
	qs := queries.AllIncludingExtended()
	texts := make([]string, len(qs))
	for i, q := range qs {
		texts[i] = q.Text
	}
	var docBuf bytes.Buffer
	if _, err := xmark.Generate(&docBuf, xmark.Config{Factor: xmark.FactorForSize(256 << 10), Seed: 1}); err != nil {
		t.Fatal(err)
	}
	doc := docBuf.Bytes()

	want := make([]string, len(texts))
	var maxTokens int64
	for i, text := range texts {
		c, err := engine.Compile(text, engine.Config{Mode: engine.ModeGCX})
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		st, err := c.Run(bytes.NewReader(doc), &out)
		if err != nil {
			t.Fatalf("%s solo: %v", qs[i].Name, err)
		}
		want[i] = out.String()
		if st.TokensRead > maxTokens {
			maxTokens = st.TokensRead
		}
	}

	// Batch 1 reproduces the solo token-demand schedule exactly; the
	// default batch may overshoot the last demand by up to one batch.
	w, err := workload.Compile(texts, workload.Config{Engine: engine.Config{Mode: engine.ModeGCX}, Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	outs := make([]io.Writer, len(texts))
	bufs := make([]bytes.Buffer, len(texts))
	for i := range outs {
		outs[i] = &bufs[i]
	}
	st, _, err := w.RunChecked(bytes.NewReader(doc), outs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bufs {
		if bufs[i].String() != want[i] {
			t.Errorf("%s: shared output differs from solo run", qs[i].Name)
		}
	}
	if st.TokensRead != maxTokens {
		t.Errorf("shared pass read %d tokens, one solo pass reads %d", st.TokensRead, maxTokens)
	}
}
