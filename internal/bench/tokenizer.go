package bench

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"gcx"
	"gcx/internal/queries"
	"gcx/internal/xmlstream"
)

// TokenizerConfig parameterizes the raw-scan throughput benchmark
// (cmd/gcxbench -tokenizer-json): the chunked tokenizer, the retained
// per-byte Reference scanner, and the full projected engine path are
// driven over a text-heavy and a markup-heavy XMark document, reporting
// MB/s and allocs per pass. Scan throughput is the floor under docs/s
// for every layer above (solo runs, workloads, gcxd, bulk corpora), so
// BENCH_tokenizer.json is the first place a hot-path regression shows.
type TokenizerConfig struct {
	// DocBytes is the target size of each generated document.
	DocBytes int64
	// Seed for document generation.
	Seed uint64
	// Iters is the number of measured passes per cell.
	Iters int
	// Query drives the projected path; defaults to Q1 (whose projection
	// tree discards nearly the whole document, so the row isolates the
	// projector's fast-skip riding on tokenizer sentinel scans).
	Query queries.Query
	// Progress, if non-nil, receives one line per completed cell.
	Progress io.Writer
}

// TokenizerResult is one (document, path) cell in BENCH_tokenizer.json.
// Field names are scrape-stable for CI trend tooling.
type TokenizerResult struct {
	Doc         string  `json:"doc"`  // text-heavy | markup-heavy
	Path        string  `json:"path"` // index | chunked | reference | projected
	MBPerSec    float64 `json:"mb_per_sec"`
	Tokens      int64   `json:"tokens"` // tokens per pass (structural bytes for index, 0 for projected)
	AllocsPerOp uint64  `json:"allocs_per_op"`
}

// TokenizerReport is the BENCH_tokenizer.json document.
type TokenizerReport struct {
	DocBytes int64  `json:"doc_bytes"`
	Iters    int    `json:"iters"`
	Query    string `json:"query"`
	// GoMaxProcs records the hardware class the numbers were captured
	// on; the baseline gate skips the absolute MB/s and allocs/op floors
	// when it differs (see compareTokenizer).
	GoMaxProcs int               `json:"gomaxprocs"`
	Results    []TokenizerResult `json:"results"`
	// SpeedupTextHeavy and SpeedupMarkupHeavy are chunked MB/s divided
	// by reference MB/s on the same document — the machine-portable
	// ratio the CI gate holds above its floor.
	SpeedupTextHeavy   float64 `json:"speedup_text_heavy"`
	SpeedupMarkupHeavy float64 `json:"speedup_markup_heavy"`
}

// tokenizerDocs builds the two scan-profile extremes out of the XMark
// vocabulary: the text-heavy document is wall-to-wall description text
// (long character-data runs, the projector discards them for most
// queries), the markup-heavy one is catgraph/incategory-style — dense
// small tags and attributes with almost no character data.
func tokenizerDocs(target int64, seed uint64) (textHeavy, markupHeavy []byte) {
	return genTextHeavyDoc(target, seed), genMarkupHeavyDoc(target, seed)
}

var tokenizerWords = []string{
	"gold", "silver", "auction", "reserve", "bidder", "parcel", "estate",
	"vintage", "catalog", "shipping", "antique", "seller", "increment",
	"closing", "preview", "condition", "provenance", "lot", "appraisal",
	"creditcard", "international", "description", "quantity", "payment",
}

// tokRand is the xorshift64* generator the xmark package uses, kept
// deterministic in the seed so baselines stay byte-stable.
type tokRand uint64

func newTokRand(seed uint64) tokRand {
	r := tokRand(seed*2862933555777941757 + 3037000493)
	if r == 0 {
		r = 88172645463325252
	}
	return r
}

func (r *tokRand) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = tokRand(x)
	return x * 2685821657736338717
}

func (r *tokRand) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// genTextHeavyDoc emits XMark region items whose descriptions carry long
// uninterrupted text runs — the best case for sentinel scanning.
func genTextHeavyDoc(target int64, seed uint64) []byte {
	rng := newTokRand(seed)
	var b bytes.Buffer
	b.Grow(int(target) + 4096)
	b.WriteString("<site><regions><europe>\n")
	for id := 0; int64(b.Len()) < target; id++ {
		fmt.Fprintf(&b, `<item id="item%d"><name>`, id)
		writeWords(&b, &rng, 3)
		b.WriteString("</name><description><text>")
		writeWords(&b, &rng, 120+rng.intn(80))
		b.WriteString("</text></description></item>\n")
	}
	b.WriteString("</europe></regions></site>\n")
	return b.Bytes()
}

// genMarkupHeavyDoc emits an XMark catgraph — rows of small
// attribute-bearing elements with no character data, the tag-parsing
// worst case where sentinel runs are short.
func genMarkupHeavyDoc(target int64, seed uint64) []byte {
	rng := newTokRand(seed)
	var b bytes.Buffer
	b.Grow(int(target) + 4096)
	b.WriteString("<site><catgraph>\n")
	for int64(b.Len()) < target {
		fmt.Fprintf(&b, "<edge from=\"category%d\" to=\"category%d\"></edge><incategory category=\"category%d\"/>\n",
			rng.intn(1000), rng.intn(1000), rng.intn(1000))
	}
	b.WriteString("</catgraph></site>\n")
	return b.Bytes()
}

func writeWords(b *bytes.Buffer, rng *tokRand, n int) {
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(tokenizerWords[rng.intn(len(tokenizerWords))])
	}
}

// drainChunked and drainReference are the solo scan loops for the
// chunked and reference rows. They are deliberately concrete-typed (not
// one loop over a func() closure): real consumers — the engine's
// projector, the splitter — call Next directly on the concrete type, so
// the benchmark must let the compiler devirtualize and inline the call
// the same way. The indirection cost of a closure per token (~15ns)
// would otherwise dominate the cell once the scan itself is fast. Both
// paths get the identical treatment, so the speedup ratio stays fair.
func drainChunked(t *xmlstream.Tokenizer) (int64, error) {
	var n int64
	for {
		tk, err := t.Next()
		if err != nil {
			return n, err
		}
		if tk.Kind == xmlstream.EOF {
			return n, nil
		}
		n++
	}
}

func drainReference(t *xmlstream.Reference) (int64, error) {
	var n int64
	for {
		tk, err := t.Next()
		if err != nil {
			return n, err
		}
		if tk.Kind == xmlstream.EOF {
			return n, nil
		}
		n++
	}
}

// drainIndex measures the structural-index classification pass alone —
// Build over the whole document plus a full candidate walk — isolating
// the cost the chunked tokenizer adds to every window slide. The
// returned count is the number of structural bytes, a machine-portable
// digest that pins the classification output across runs.
func drainIndex(ix *xmlstream.StructIndex, doc []byte) (int64, error) {
	ix.Build(doc)
	var n int64
	for p := 0; ; {
		i := ix.Next(p)
		if i < 0 {
			return n, nil
		}
		n++
		p = i + 1
	}
}

// RunTokenizer executes the 2×4 sweep and computes the speedup ratios.
func RunTokenizer(cfg TokenizerConfig) (*TokenizerReport, error) {
	if cfg.DocBytes <= 0 {
		cfg.DocBytes = 4 << 20
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 10
	}
	if cfg.Query.Name == "" {
		cfg.Query = queries.Q1
	}

	textHeavy, markupHeavy := tokenizerDocs(cfg.DocBytes, cfg.Seed)
	eng, err := gcx.Compile(cfg.Query.Text)
	if err != nil {
		return nil, err
	}

	opts := xmlstream.DefaultOptions()
	opts.BorrowText = true // the engine's mode: discarded regions cost no copies
	chunked := xmlstream.NewTokenizerOptions(nil, opts)
	reference := xmlstream.NewReference(nil, opts)
	var index xmlstream.StructIndex

	report := &TokenizerReport{
		DocBytes:   cfg.DocBytes,
		Iters:      cfg.Iters,
		Query:      cfg.Query.Name,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	mbs := map[string]float64{}
	for _, doc := range []struct {
		name string
		data []byte
	}{{"text-heavy", textHeavy}, {"markup-heavy", markupHeavy}} {
		r := bytes.NewReader(doc.data)
		paths := []struct {
			name string
			op   func() (int64, error)
		}{
			{"index", func() (int64, error) {
				return drainIndex(&index, doc.data)
			}},
			{"chunked", func() (int64, error) {
				r.Reset(doc.data)
				chunked.Reset(r)
				return drainChunked(chunked)
			}},
			{"reference", func() (int64, error) {
				r.Reset(doc.data)
				reference.Reset(r)
				return drainReference(reference)
			}},
			{"projected", func() (int64, error) {
				r.Reset(doc.data)
				_, err := eng.Run(r, io.Discard)
				return 0, err
			}},
		}
		for _, path := range paths {
			res, err := measureTokenizerCell(doc.name, path.name, int64(len(doc.data)), cfg.Iters, path.op)
			if err != nil {
				return nil, err
			}
			report.Results = append(report.Results, res)
			mbs[doc.name+"/"+path.name] = res.MBPerSec
			if cfg.Progress != nil {
				fmt.Fprintf(cfg.Progress, "%s\n", FormatTokenizerResult(res))
			}
		}
	}
	if ref := mbs["text-heavy/reference"]; ref > 0 {
		report.SpeedupTextHeavy = mbs["text-heavy/chunked"] / ref
	}
	if ref := mbs["markup-heavy/reference"]; ref > 0 {
		report.SpeedupMarkupHeavy = mbs["markup-heavy/chunked"] / ref
	}
	return report, nil
}

// measureTokenizerCell times iters passes of op (after one warm-up pass)
// and reads alloc counters around the loop.
func measureTokenizerCell(doc, path string, docBytes int64, iters int, op func() (int64, error)) (TokenizerResult, error) {
	res := TokenizerResult{Doc: doc, Path: path}
	tokens, err := op() // warm-up: populate pools, size scratch buffers
	if err != nil {
		return res, fmt.Errorf("%s/%s warm-up: %w", doc, path, err)
	}
	res.Tokens = tokens
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := op(); err != nil {
			return res, fmt.Errorf("%s/%s: %w", doc, path, err)
		}
	}
	elapsed := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	res.MBPerSec = float64(docBytes) * float64(iters) / elapsed.Seconds() / (1 << 20)
	res.AllocsPerOp = (after.Mallocs - before.Mallocs) / uint64(iters)
	return res, nil
}

// FormatTokenizerResult renders one cell as a single line.
func FormatTokenizerResult(r TokenizerResult) string {
	return fmt.Sprintf("%-12s %-10s %8.1f MB/s   %8d tokens   %d allocs/op",
		r.Doc, r.Path, r.MBPerSec, r.Tokens, r.AllocsPerOp)
}

// FormatTokenizerTable renders the full report for humans.
func FormatTokenizerTable(rep *TokenizerReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tokenizer throughput: %s docs, %d passes, projected via %s, GOMAXPROCS=%d\n",
		humanBytes(rep.DocBytes), rep.Iters, rep.Query, rep.GoMaxProcs)
	for _, r := range rep.Results {
		b.WriteString(FormatTokenizerResult(r) + "\n")
	}
	fmt.Fprintf(&b, "speedup chunked/reference: text-heavy %.2fx, markup-heavy %.2fx\n",
		rep.SpeedupTextHeavy, rep.SpeedupMarkupHeavy)
	return b.String()
}
