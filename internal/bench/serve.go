package bench

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"gcx"
	"gcx/internal/queries"
	"gcx/internal/server"
	"gcx/internal/xmark"
)

// ServeConfig parameterizes the serving-path benchmark (cmd/gcxbench
// -serve-json): the same query set is evaluated over the same document
// through three code paths of increasing stack depth — solo Engine.Run
// per query, one shared-stream Workload.Run, and HTTP POST /workload
// against an in-process gcxd server — so a regression in any layer shows
// up as a widening gap in BENCH_serve.json.
type ServeConfig struct {
	// DocBytes is the target size of the generated XMark document.
	DocBytes int64
	// Seed for document generation.
	Seed uint64
	// Requests is the number of measured iterations per path; one
	// iteration evaluates every query over one document.
	Requests int
	// Concurrency is the number of concurrent HTTP clients on the server
	// path (the library paths run sequentially: their per-op numbers feed
	// the latency trajectory, not a saturation test).
	Concurrency int
	// Queries to serve; defaults to queries.All().
	Queries []queries.Query
	// Progress, if non-nil, receives one line per completed path.
	Progress io.Writer
}

// ServePathResult is one path's measurements in BENCH_serve.json. Field
// names are scrape-stable for CI trend tooling.
type ServePathResult struct {
	Path       string  `json:"path"` // solo | workload | server
	Requests   int     `json:"requests"`
	DocsPerSec float64 `json:"docs_per_sec"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	// TTFR is the per-iteration time to the FIRST result byte — the
	// latency a streaming consumer experiences before output begins, as
	// opposed to P50Ms/P99Ms which time the whole iteration. Library
	// paths take it from the engine's own stamp (gcx.Stats); the server
	// path measures it client-side as time-to-first-response-byte, so it
	// additionally covers the HTTP stack.
	TTFRP50Ms       float64 `json:"ttfr_p50_ms"`
	TTFRP99Ms       float64 `json:"ttfr_p99_ms"`
	PeakBufferNodes int64   `json:"peak_buffer_nodes"`
	PeakBufferBytes int64   `json:"peak_buffer_bytes"`
	AllocsPerOp     uint64  `json:"allocs_per_op"`
	AllocBytesPerOp uint64  `json:"alloc_bytes_per_op"`
	OutputBytes     int64   `json:"output_bytes"` // per iteration, summed over queries
}

// ServeReport is the BENCH_serve.json document.
type ServeReport struct {
	DocBytes    int64             `json:"doc_bytes"`
	Queries     []string          `json:"queries"`
	Requests    int               `json:"requests"`
	Concurrency int               `json:"concurrency"`
	GoMaxProcs  int               `json:"gomaxprocs"`
	Results     []ServePathResult `json:"results"`
	// Earliest is the earliest-answering scenario: one query whose first
	// match sits near the start of a large document with a long tail of
	// irrelevant input behind it. It gates the property ROADMAP item 4
	// asks for — the first result byte must LEAVE the engine (sink) and
	// reach an HTTP client as soon as it is certain, not an input-scan
	// later.
	Earliest *EarliestReport `json:"earliest,omitempty"`
}

// EarliestQuery is the earliest-answering scenario query: XMark puts the
// africa region first in the document, so the first <item> match arrives
// within the first few KB while the remaining ~99% of the stream (other
// regions, people, auctions) is pure tail the query never emits from.
const EarliestQuery = `<earliest>{ for $i in /site/regions/africa/item return <n>{ $i/name }</n> }</earliest>`

// EarliestReport measures where the first result byte of EarliestQuery
// becomes observable at three boundaries of decreasing depth: the engine's
// own stamp (byte enters the output writer), the destination writer (byte
// leaves the engine's I/O batching), and an HTTP client of POST /query
// (byte crosses the transport). An earliest-answering engine keeps all
// three within noise of each other; output batching shows up as the sink
// and server columns trailing the engine stamp by a whole document scan.
type EarliestReport struct {
	Query           string  `json:"query"`
	DocBytes        int64   `json:"doc_bytes"`
	Requests        int     `json:"requests"`
	OutputBytes     int64   `json:"output_bytes"`
	EngineTTFRP50Ms float64 `json:"engine_ttfr_p50_ms"`
	SinkTTFRP50Ms   float64 `json:"sink_ttfr_p50_ms"`
	SinkTTFRP99Ms   float64 `json:"sink_ttfr_p99_ms"`
	ServerTTFBP50Ms float64 `json:"server_ttfb_p50_ms"`
	ServerTTFBP99Ms float64 `json:"server_ttfb_p99_ms"`
	WallP50Ms       float64 `json:"wall_p50_ms"`
}

// RunServe executes the three-path sweep.
func RunServe(cfg ServeConfig) (*ServeReport, error) {
	if len(cfg.Queries) == 0 {
		cfg.Queries = queries.All()
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 20
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	if cfg.DocBytes <= 0 {
		cfg.DocBytes = 1 << 20
	}

	var buf bytes.Buffer
	if _, err := xmark.Generate(&buf, xmark.Config{Factor: xmark.FactorForSize(cfg.DocBytes), Seed: cfg.Seed}); err != nil {
		return nil, err
	}
	doc := buf.Bytes()

	report := &ServeReport{
		DocBytes:    int64(len(doc)),
		Requests:    cfg.Requests,
		Concurrency: cfg.Concurrency,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}
	for _, q := range cfg.Queries {
		report.Queries = append(report.Queries, q.Name)
	}

	for _, path := range []func(ServeConfig, []byte) (ServePathResult, error){serveSolo, serveWorkload, serveHTTP} {
		r, err := path(cfg, doc)
		if err != nil {
			return nil, err
		}
		report.Results = append(report.Results, r)
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "%s\n", FormatServeResult(r))
		}
	}
	er, err := runEarliest(cfg, doc)
	if err != nil {
		return nil, err
	}
	report.Earliest = er
	if cfg.Progress != nil {
		fmt.Fprintf(cfg.Progress, "%s\n", FormatEarliest(er))
	}
	return report, nil
}

// firstByteSink is the earliest scenario's destination writer: it records
// the wall offset of the first byte the ENGINE hands to the destination.
// The gap between the engine's own TTFR stamp (writer entry) and this
// observation is exactly the output-batching latency the scenario gates.
type firstByteSink struct {
	start time.Time
	first time.Duration
	n     int64
}

func (s *firstByteSink) Write(p []byte) (int, error) {
	if s.first == 0 && len(p) > 0 {
		s.first = time.Since(s.start)
	}
	s.n += int64(len(p))
	return len(p), nil
}

// runEarliest runs EarliestQuery over the same document as the main sweep
// and reports first-byte latency at the engine stamp, the destination
// sink, and an HTTP client of POST /query.
func runEarliest(cfg ServeConfig, doc []byte) (*EarliestReport, error) {
	eng, err := gcx.Compile(EarliestQuery)
	if err != nil {
		return nil, fmt.Errorf("earliest compile: %w", err)
	}
	rep := &EarliestReport{Query: EarliestQuery, DocBytes: int64(len(doc)), Requests: cfg.Requests}

	engTTFR := make([]time.Duration, 0, cfg.Requests)
	sinkTTFR := make([]time.Duration, 0, cfg.Requests)
	walls := make([]time.Duration, 0, cfg.Requests)
	for i := 0; i < cfg.Requests+1; i++ { // first iteration is warm-up
		fb := &firstByteSink{start: time.Now()}
		st, err := eng.Run(bytes.NewReader(doc), fb)
		if err != nil {
			return nil, fmt.Errorf("earliest solo: %w", err)
		}
		if i == 0 {
			rep.OutputBytes = fb.n
			continue
		}
		walls = append(walls, time.Since(fb.start))
		if st.TimeToFirstResultNanos > 0 {
			engTTFR = append(engTTFR, time.Duration(st.TimeToFirstResultNanos))
		}
		if fb.first > 0 {
			sinkTTFR = append(sinkTTFR, fb.first)
		}
	}
	rep.EngineTTFRP50Ms = ms(percentile(engTTFR, 0.50))
	rep.SinkTTFRP50Ms = ms(percentile(sinkTTFR, 0.50))
	rep.SinkTTFRP99Ms = ms(percentile(sinkTTFR, 0.99))
	rep.WallP50Ms = ms(percentile(walls, 0.50))

	// Client-observed first byte of POST /query against an in-process
	// gcxd over a real loopback socket — covers multipart-free streaming
	// through countingWriter, the HTTP stack, and the kernel. The client
	// is a raw TCP conn, not net/http: Go's HTTP/1 Transport holds an
	// early response until the request body finishes writing, which would
	// hide exactly the latency this scenario gates (the server answers
	// while the body is still uploading).
	reg := server.NewRegistry()
	if err := reg.Add("earliest", EarliestQuery); err != nil {
		return nil, err
	}
	srv, err := server.New(server.Config{Registry: reg, Cache: gcx.NewCompileCache(0)})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()

	ttfbs := make([]time.Duration, 0, cfg.Requests)
	for i := 0; i < cfg.Requests+1; i++ {
		ttfb, err := rawQueryTTFB(ln.Addr().String(), "/query?id=earliest", doc)
		if err != nil {
			return nil, fmt.Errorf("earliest server: %w", err)
		}
		if i > 0 && ttfb > 0 {
			ttfbs = append(ttfbs, ttfb)
		}
	}
	rep.ServerTTFBP50Ms = ms(percentile(ttfbs, 0.50))
	rep.ServerTTFBP99Ms = ms(percentile(ttfbs, 0.99))
	return rep, nil
}

// earliestPrefix is how much of the document the raw client uploads
// before stalling — comfortably past XMark's leading africa items (the
// first match sits in the first few KB) while ~85% of the body is still
// outstanding when the first response byte is due.
const earliestPrefix = 64 << 10

// rawQueryTTFB POSTs doc over a raw HTTP/1 connection with a STALLED
// TAIL: it uploads only the prefix holding the first match, then waits
// for the first response byte before sending the rest. The returned
// duration is upload-start to first-byte — an earliest-answering server
// ships it from the prefix alone; one that sits on output until end of
// input never answers while the tail is withheld and trips the read
// deadline instead of deadlocking the benchmark.
func rawQueryTTFB(addr, path string, doc []byte) (time.Duration, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	cut := earliestPrefix
	if cut > len(doc) {
		cut = len(doc)
	}
	t0 := time.Now()
	if _, err := fmt.Fprintf(conn, "POST %s HTTP/1.1\r\nHost: gcxd\r\nContent-Type: application/xml\r\nContent-Length: %d\r\nConnection: close\r\n\r\n", path, len(doc)); err != nil {
		return 0, err
	}
	if _, err := conn.Write(doc[:cut]); err != nil {
		return 0, err
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	var one [1]byte
	if _, err := conn.Read(one[:]); err != nil {
		return 0, fmt.Errorf("no response byte while the body tail was stalled (output held past certainty?): %w", err)
	}
	ttfb := time.Since(t0)
	if _, err := conn.Write(doc[cut:]); err != nil {
		return 0, fmt.Errorf("uploading stalled tail: %w", err)
	}
	rest, err := io.ReadAll(conn)
	if err != nil {
		return 0, err
	}
	head := append(one[:], rest...)
	if !bytes.HasPrefix(head, []byte("HTTP/1.1 200")) {
		line, _, _ := bytes.Cut(head, []byte("\r\n"))
		return 0, fmt.Errorf("unexpected response: %s", line)
	}
	return ttfb, nil
}

// measure wraps one path's iteration loop with warm-up, timing, and
// alloc accounting — shared by all three paths so their rows report the
// same quantities the same way. op runs one iteration and returns
// (peakNodes, peakBytes, outputBytes, ttfrNanos); a zero ttfr (no
// output) is skipped in the TTFR percentiles. concurrency > 1 drains the
// iterations with that many workers (alloc figures stay process-wide
// deltas, i.e. approximate under concurrency).
func measure(path string, requests, concurrency int, op func() (int64, int64, int64, int64, error)) (ServePathResult, error) {
	res := ServePathResult{Path: path, Requests: requests}
	// Warm-up: populate run-state pools and HTTP keep-alives so the
	// measurement reflects the steady serving state.
	if _, _, _, _, err := op(); err != nil {
		return res, fmt.Errorf("%s warm-up: %w", path, err)
	}
	if concurrency < 1 {
		concurrency = 1
	}
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	var mu sync.Mutex
	lat := make([]time.Duration, 0, requests)
	ttfrs := make([]time.Duration, 0, requests)
	var opErr error
	work := make(chan struct{}, requests)
	for i := 0; i < requests; i++ {
		work <- struct{}{}
	}
	close(work)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				t0 := time.Now()
				pn, pb, out, ttfr, err := op()
				d := time.Since(t0)
				mu.Lock()
				if err != nil {
					if opErr == nil {
						opErr = err
					}
					mu.Unlock()
					return
				}
				lat = append(lat, d)
				if ttfr > 0 {
					ttfrs = append(ttfrs, time.Duration(ttfr))
				}
				res.PeakBufferNodes = max(res.PeakBufferNodes, pn)
				res.PeakBufferBytes = max(res.PeakBufferBytes, pb)
				res.OutputBytes = out
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	total := time.Since(start)
	if opErr != nil {
		return res, fmt.Errorf("%s: %w", path, opErr)
	}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	res.DocsPerSec = float64(requests) / total.Seconds()
	res.P50Ms = ms(percentile(lat, 0.50))
	res.P99Ms = ms(percentile(lat, 0.99))
	res.TTFRP50Ms = ms(percentile(ttfrs, 0.50))
	res.TTFRP99Ms = ms(percentile(ttfrs, 0.99))
	res.AllocsPerOp = (after.Mallocs - before.Mallocs) / uint64(requests)
	res.AllocBytesPerOp = (after.TotalAlloc - before.TotalAlloc) / uint64(requests)
	return res, nil
}

// serveSolo: each iteration runs every query as an independent pass —
// the N-pass baseline the shared stream amortizes away.
func serveSolo(cfg ServeConfig, doc []byte) (ServePathResult, error) {
	engines := make([]*gcx.Engine, len(cfg.Queries))
	for i, q := range cfg.Queries {
		e, err := gcx.Compile(q.Text)
		if err != nil {
			return ServePathResult{}, err
		}
		engines[i] = e
	}
	return measure("solo", cfg.Requests, 1, func() (int64, int64, int64, int64, error) {
		var pn, pb, out, ttfr int64
		iterStart := time.Now()
		for _, e := range engines {
			pre := time.Since(iterStart)
			st, err := e.Run(bytes.NewReader(doc), io.Discard)
			if err != nil {
				return 0, 0, 0, 0, err
			}
			// Iteration TTFR: first result byte of the first query that
			// produced any, offset by the queries already run before it.
			if ttfr == 0 && st.TimeToFirstResultNanos > 0 {
				ttfr = int64(pre) + st.TimeToFirstResultNanos
			}
			pn = max(pn, st.PeakBufferNodes)
			pb = max(pb, st.PeakBufferBytes)
			out += st.OutputBytes
		}
		return pn, pb, out, ttfr, nil
	})
}

// serveWorkload: one shared pass per iteration.
func serveWorkload(cfg ServeConfig, doc []byte) (ServePathResult, error) {
	texts := make([]string, len(cfg.Queries))
	for i, q := range cfg.Queries {
		texts[i] = q.Text
	}
	wl, err := gcx.CompileWorkload(texts)
	if err != nil {
		return ServePathResult{}, err
	}
	outs := make([]io.Writer, wl.Len())
	for i := range outs {
		outs[i] = io.Discard
	}
	return measure("workload", cfg.Requests, 1, func() (int64, int64, int64, int64, error) {
		st, err := wl.Run(bytes.NewReader(doc), outs)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		return st.Aggregate.PeakBufferNodes, st.Aggregate.PeakBufferBytes,
			st.Aggregate.OutputBytes, st.Aggregate.TimeToFirstResultNanos, nil
	})
}

// serveHTTP: POST /workload against an in-process gcxd over a real
// loopback socket, cfg.Concurrency clients at a time. Peak buffer comes
// from the server's own metrics (largest single-run peak observed).
func serveHTTP(cfg ServeConfig, doc []byte) (ServePathResult, error) {
	reg := server.NewRegistry()
	for _, q := range cfg.Queries {
		if err := reg.Add(q.Name, q.Text); err != nil {
			return ServePathResult{}, err
		}
	}
	srv, err := server.New(server.Config{Registry: reg, Cache: gcx.NewCompileCache(0)})
	if err != nil {
		return ServePathResult{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return ServePathResult{}, err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()
	url := "http://" + ln.Addr().String() + "/workload"
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: cfg.Concurrency}}

	// post returns the client-observed time to the first response body
	// byte — the server path's TTFR covers the whole stack (engine first
	// byte + multipart framing + HTTP write + loopback).
	post := func() (int64, error) {
		t0 := time.Now()
		resp, err := client.Post(url, "application/xml", bytes.NewReader(doc))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		var one [1]byte
		var ttfr int64
		if _, err := io.ReadFull(resp.Body, one[:]); err == nil {
			ttfr = int64(time.Since(t0))
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("status %d", resp.StatusCode)
		}
		return ttfr, nil
	}

	// Peaks and engine output bytes come from the server's own metrics
	// afterwards (the in-handler counting wraps the engine writers, so
	// OutputBytes stays comparable to the library paths rather than
	// counting multipart framing); per-op values in the loop are zero.
	res, err := measure("server", cfg.Requests, cfg.Concurrency, func() (int64, int64, int64, int64, error) {
		ttfr, err := post()
		return 0, 0, 0, ttfr, err
	})
	if err != nil {
		return res, err
	}
	snap := srv.Metrics()
	res.PeakBufferNodes = snap.Aggregate.PeakBufferNodes
	res.PeakBufferBytes = snap.Aggregate.PeakBufferBytes
	// measure ran requests+1 identical ops (warm-up included) against a
	// fresh server, so the per-op engine output is the exact quotient.
	res.OutputBytes = snap.Aggregate.OutputBytes / int64(cfg.Requests+1)
	return res, nil
}

// FormatServeResult renders one path result as a single line.
func FormatServeResult(r ServePathResult) string {
	return fmt.Sprintf("%-9s %6.1f docs/s   p50 %7.1fms   p99 %7.1fms   ttfr p50 %7.2fms p99 %7.2fms   peak %9s (%d nodes)   %d allocs/op",
		r.Path, r.DocsPerSec, r.P50Ms, r.P99Ms, r.TTFRP50Ms, r.TTFRP99Ms, humanBytes(r.PeakBufferBytes), r.PeakBufferNodes, r.AllocsPerOp)
}

// FormatEarliest renders the earliest-answering scenario as one line.
func FormatEarliest(e *EarliestReport) string {
	return fmt.Sprintf("earliest  engine ttfr p50 %7.3fms   sink p50 %7.3fms   server ttfb p50 %7.3fms p99 %7.3fms   wall p50 %7.1fms",
		e.EngineTTFRP50Ms, e.SinkTTFRP50Ms, e.ServerTTFBP50Ms, e.ServerTTFBP99Ms, e.WallP50Ms)
}

// FormatServeTable renders the full report for humans.
func FormatServeTable(rep *ServeReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Serving trajectory: %s doc, queries %s, %d iterations, server concurrency %d\n",
		humanBytes(rep.DocBytes), strings.Join(rep.Queries, ","), rep.Requests, rep.Concurrency)
	for _, r := range rep.Results {
		b.WriteString(FormatServeResult(r) + "\n")
	}
	if rep.Earliest != nil {
		b.WriteString(FormatEarliest(rep.Earliest) + "\n")
	}
	return b.String()
}

// percentile is the nearest-rank percentile: the smallest sample ≥ p of
// the distribution (so p99 of a small sample reports the tail, not the
// median's neighbour).
func percentile(durs []time.Duration, p float64) time.Duration {
	if len(durs) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), durs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(math.Ceil(p*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
