package bench

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"gcx"
	"gcx/internal/queries"
	"gcx/internal/server"
	"gcx/internal/xmark"
)

// ServeConfig parameterizes the serving-path benchmark (cmd/gcxbench
// -serve-json): the same query set is evaluated over the same document
// through three code paths of increasing stack depth — solo Engine.Run
// per query, one shared-stream Workload.Run, and HTTP POST /workload
// against an in-process gcxd server — so a regression in any layer shows
// up as a widening gap in BENCH_serve.json.
type ServeConfig struct {
	// DocBytes is the target size of the generated XMark document.
	DocBytes int64
	// Seed for document generation.
	Seed uint64
	// Requests is the number of measured iterations per path; one
	// iteration evaluates every query over one document.
	Requests int
	// Concurrency is the number of concurrent HTTP clients on the server
	// path (the library paths run sequentially: their per-op numbers feed
	// the latency trajectory, not a saturation test).
	Concurrency int
	// Queries to serve; defaults to queries.All().
	Queries []queries.Query
	// Progress, if non-nil, receives one line per completed path.
	Progress io.Writer
}

// ServePathResult is one path's measurements in BENCH_serve.json. Field
// names are scrape-stable for CI trend tooling.
type ServePathResult struct {
	Path       string  `json:"path"` // solo | workload | server
	Requests   int     `json:"requests"`
	DocsPerSec float64 `json:"docs_per_sec"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	// TTFR is the per-iteration time to the FIRST result byte — the
	// latency a streaming consumer experiences before output begins, as
	// opposed to P50Ms/P99Ms which time the whole iteration. Library
	// paths take it from the engine's own stamp (gcx.Stats); the server
	// path measures it client-side as time-to-first-response-byte, so it
	// additionally covers the HTTP stack.
	TTFRP50Ms       float64 `json:"ttfr_p50_ms"`
	TTFRP99Ms       float64 `json:"ttfr_p99_ms"`
	PeakBufferNodes int64   `json:"peak_buffer_nodes"`
	PeakBufferBytes int64   `json:"peak_buffer_bytes"`
	AllocsPerOp     uint64  `json:"allocs_per_op"`
	AllocBytesPerOp uint64  `json:"alloc_bytes_per_op"`
	OutputBytes     int64   `json:"output_bytes"` // per iteration, summed over queries
}

// ServeReport is the BENCH_serve.json document.
type ServeReport struct {
	DocBytes    int64             `json:"doc_bytes"`
	Queries     []string          `json:"queries"`
	Requests    int               `json:"requests"`
	Concurrency int               `json:"concurrency"`
	GoMaxProcs  int               `json:"gomaxprocs"`
	Results     []ServePathResult `json:"results"`
}

// RunServe executes the three-path sweep.
func RunServe(cfg ServeConfig) (*ServeReport, error) {
	if len(cfg.Queries) == 0 {
		cfg.Queries = queries.All()
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 20
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	if cfg.DocBytes <= 0 {
		cfg.DocBytes = 1 << 20
	}

	var buf bytes.Buffer
	if _, err := xmark.Generate(&buf, xmark.Config{Factor: xmark.FactorForSize(cfg.DocBytes), Seed: cfg.Seed}); err != nil {
		return nil, err
	}
	doc := buf.Bytes()

	report := &ServeReport{
		DocBytes:    int64(len(doc)),
		Requests:    cfg.Requests,
		Concurrency: cfg.Concurrency,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}
	for _, q := range cfg.Queries {
		report.Queries = append(report.Queries, q.Name)
	}

	for _, path := range []func(ServeConfig, []byte) (ServePathResult, error){serveSolo, serveWorkload, serveHTTP} {
		r, err := path(cfg, doc)
		if err != nil {
			return nil, err
		}
		report.Results = append(report.Results, r)
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "%s\n", FormatServeResult(r))
		}
	}
	return report, nil
}

// measure wraps one path's iteration loop with warm-up, timing, and
// alloc accounting — shared by all three paths so their rows report the
// same quantities the same way. op runs one iteration and returns
// (peakNodes, peakBytes, outputBytes, ttfrNanos); a zero ttfr (no
// output) is skipped in the TTFR percentiles. concurrency > 1 drains the
// iterations with that many workers (alloc figures stay process-wide
// deltas, i.e. approximate under concurrency).
func measure(path string, requests, concurrency int, op func() (int64, int64, int64, int64, error)) (ServePathResult, error) {
	res := ServePathResult{Path: path, Requests: requests}
	// Warm-up: populate run-state pools and HTTP keep-alives so the
	// measurement reflects the steady serving state.
	if _, _, _, _, err := op(); err != nil {
		return res, fmt.Errorf("%s warm-up: %w", path, err)
	}
	if concurrency < 1 {
		concurrency = 1
	}
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	var mu sync.Mutex
	lat := make([]time.Duration, 0, requests)
	ttfrs := make([]time.Duration, 0, requests)
	var opErr error
	work := make(chan struct{}, requests)
	for i := 0; i < requests; i++ {
		work <- struct{}{}
	}
	close(work)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				t0 := time.Now()
				pn, pb, out, ttfr, err := op()
				d := time.Since(t0)
				mu.Lock()
				if err != nil {
					if opErr == nil {
						opErr = err
					}
					mu.Unlock()
					return
				}
				lat = append(lat, d)
				if ttfr > 0 {
					ttfrs = append(ttfrs, time.Duration(ttfr))
				}
				res.PeakBufferNodes = max(res.PeakBufferNodes, pn)
				res.PeakBufferBytes = max(res.PeakBufferBytes, pb)
				res.OutputBytes = out
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	total := time.Since(start)
	if opErr != nil {
		return res, fmt.Errorf("%s: %w", path, opErr)
	}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	res.DocsPerSec = float64(requests) / total.Seconds()
	res.P50Ms = ms(percentile(lat, 0.50))
	res.P99Ms = ms(percentile(lat, 0.99))
	res.TTFRP50Ms = ms(percentile(ttfrs, 0.50))
	res.TTFRP99Ms = ms(percentile(ttfrs, 0.99))
	res.AllocsPerOp = (after.Mallocs - before.Mallocs) / uint64(requests)
	res.AllocBytesPerOp = (after.TotalAlloc - before.TotalAlloc) / uint64(requests)
	return res, nil
}

// serveSolo: each iteration runs every query as an independent pass —
// the N-pass baseline the shared stream amortizes away.
func serveSolo(cfg ServeConfig, doc []byte) (ServePathResult, error) {
	engines := make([]*gcx.Engine, len(cfg.Queries))
	for i, q := range cfg.Queries {
		e, err := gcx.Compile(q.Text)
		if err != nil {
			return ServePathResult{}, err
		}
		engines[i] = e
	}
	return measure("solo", cfg.Requests, 1, func() (int64, int64, int64, int64, error) {
		var pn, pb, out, ttfr int64
		iterStart := time.Now()
		for _, e := range engines {
			pre := time.Since(iterStart)
			st, err := e.Run(bytes.NewReader(doc), io.Discard)
			if err != nil {
				return 0, 0, 0, 0, err
			}
			// Iteration TTFR: first result byte of the first query that
			// produced any, offset by the queries already run before it.
			if ttfr == 0 && st.TimeToFirstResultNanos > 0 {
				ttfr = int64(pre) + st.TimeToFirstResultNanos
			}
			pn = max(pn, st.PeakBufferNodes)
			pb = max(pb, st.PeakBufferBytes)
			out += st.OutputBytes
		}
		return pn, pb, out, ttfr, nil
	})
}

// serveWorkload: one shared pass per iteration.
func serveWorkload(cfg ServeConfig, doc []byte) (ServePathResult, error) {
	texts := make([]string, len(cfg.Queries))
	for i, q := range cfg.Queries {
		texts[i] = q.Text
	}
	wl, err := gcx.CompileWorkload(texts)
	if err != nil {
		return ServePathResult{}, err
	}
	outs := make([]io.Writer, wl.Len())
	for i := range outs {
		outs[i] = io.Discard
	}
	return measure("workload", cfg.Requests, 1, func() (int64, int64, int64, int64, error) {
		st, err := wl.Run(bytes.NewReader(doc), outs)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		return st.Aggregate.PeakBufferNodes, st.Aggregate.PeakBufferBytes,
			st.Aggregate.OutputBytes, st.Aggregate.TimeToFirstResultNanos, nil
	})
}

// serveHTTP: POST /workload against an in-process gcxd over a real
// loopback socket, cfg.Concurrency clients at a time. Peak buffer comes
// from the server's own metrics (largest single-run peak observed).
func serveHTTP(cfg ServeConfig, doc []byte) (ServePathResult, error) {
	reg := server.NewRegistry()
	for _, q := range cfg.Queries {
		if err := reg.Add(q.Name, q.Text); err != nil {
			return ServePathResult{}, err
		}
	}
	srv, err := server.New(server.Config{Registry: reg, Cache: gcx.NewCompileCache(0)})
	if err != nil {
		return ServePathResult{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return ServePathResult{}, err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()
	url := "http://" + ln.Addr().String() + "/workload"
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: cfg.Concurrency}}

	// post returns the client-observed time to the first response body
	// byte — the server path's TTFR covers the whole stack (engine first
	// byte + multipart framing + HTTP write + loopback).
	post := func() (int64, error) {
		t0 := time.Now()
		resp, err := client.Post(url, "application/xml", bytes.NewReader(doc))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		var one [1]byte
		var ttfr int64
		if _, err := io.ReadFull(resp.Body, one[:]); err == nil {
			ttfr = int64(time.Since(t0))
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("status %d", resp.StatusCode)
		}
		return ttfr, nil
	}

	// Peaks and engine output bytes come from the server's own metrics
	// afterwards (the in-handler counting wraps the engine writers, so
	// OutputBytes stays comparable to the library paths rather than
	// counting multipart framing); per-op values in the loop are zero.
	res, err := measure("server", cfg.Requests, cfg.Concurrency, func() (int64, int64, int64, int64, error) {
		ttfr, err := post()
		return 0, 0, 0, ttfr, err
	})
	if err != nil {
		return res, err
	}
	snap := srv.Metrics()
	res.PeakBufferNodes = snap.Aggregate.PeakBufferNodes
	res.PeakBufferBytes = snap.Aggregate.PeakBufferBytes
	// measure ran requests+1 identical ops (warm-up included) against a
	// fresh server, so the per-op engine output is the exact quotient.
	res.OutputBytes = snap.Aggregate.OutputBytes / int64(cfg.Requests+1)
	return res, nil
}

// FormatServeResult renders one path result as a single line.
func FormatServeResult(r ServePathResult) string {
	return fmt.Sprintf("%-9s %6.1f docs/s   p50 %7.1fms   p99 %7.1fms   ttfr p50 %7.2fms p99 %7.2fms   peak %9s (%d nodes)   %d allocs/op",
		r.Path, r.DocsPerSec, r.P50Ms, r.P99Ms, r.TTFRP50Ms, r.TTFRP99Ms, humanBytes(r.PeakBufferBytes), r.PeakBufferNodes, r.AllocsPerOp)
}

// FormatServeTable renders the full report for humans.
func FormatServeTable(rep *ServeReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Serving trajectory: %s doc, queries %s, %d iterations, server concurrency %d\n",
		humanBytes(rep.DocBytes), strings.Join(rep.Queries, ","), rep.Requests, rep.Concurrency)
	for _, r := range rep.Results {
		b.WriteString(FormatServeResult(r) + "\n")
	}
	return b.String()
}

// percentile is the nearest-rank percentile: the smallest sample ≥ p of
// the distribution (so p99 of a small sample reports the tail, not the
// median's neighbour).
func percentile(durs []time.Duration, p float64) time.Duration {
	if len(durs) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), durs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(math.Ceil(p*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
