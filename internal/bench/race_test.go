//go:build race

package bench

// raceEnabled reports whether the race detector is active; allocation
// regression tests skip under it (instrumentation allocates and the
// detector deliberately defeats sync.Pool reuse to expose races).
const raceEnabled = true
