package bench

import (
	"strings"
	"testing"
)

func sampleBaseline() *Baseline {
	return &Baseline{
		Serve: &ServeReport{
			DocBytes: 512 << 10, Requests: 20, GoMaxProcs: 1,
			Results: []ServePathResult{
				{Path: "solo", DocsPerSec: 100, AllocsPerOp: 6000, PeakBufferBytes: 1 << 20},
				{Path: "workload", DocsPerSec: 300, AllocsPerOp: 9000, PeakBufferBytes: 1 << 20},
				{Path: "server", DocsPerSec: 250, AllocsPerOp: 12000, PeakBufferBytes: 1 << 20},
			},
		},
		Bulk: &BulkReport{
			Docs: 48, Query: "Q6", GoMaxProcs: 1,
			Results: []BulkJobResult{
				{Workers: 1, DocsPerSec: 50, PeakBufferBytes: 1 << 16},
				{Workers: 4, DocsPerSec: 170, PeakBufferBytes: 1 << 16},
			},
		},
		Tokenizer: &TokenizerReport{
			DocBytes: 4 << 20, GoMaxProcs: 1,
			Results: []TokenizerResult{
				{Doc: "text-heavy", Path: "chunked", MBPerSec: 1200, Tokens: 40000, AllocsPerOp: 0},
				{Doc: "text-heavy", Path: "reference", MBPerSec: 280, Tokens: 40000, AllocsPerOp: 0},
			},
			SpeedupTextHeavy:   4.3,
			SpeedupMarkupHeavy: 2.4,
		},
	}
}

// clone round-trips through the same maps Compare uses; mutate the copy
// to build "current run" scenarios.
func cloneBaseline() (*Baseline, *Baseline) { return sampleBaseline(), sampleBaseline() }

func wantViolation(t *testing.T, got []string, substr string) {
	t.Helper()
	for _, s := range got {
		if strings.Contains(s, substr) {
			return
		}
	}
	t.Fatalf("no violation containing %q in %q", substr, got)
}

// violationsOf drops the advisory warnings; tests that care about them
// call Compare directly.
func violationsOf(base, cur *Baseline, tol Tolerances) []string {
	v, _ := base.Compare(cur, tol)
	return v
}

func TestCompareIdenticalPasses(t *testing.T) {
	base, cur := cloneBaseline()
	v, w := base.Compare(cur, DefaultTolerances())
	if len(v) != 0 {
		t.Fatalf("identical run flagged: %q", v)
	}
	if len(w) != 0 {
		t.Fatalf("identical run warned: %q", w)
	}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	base, cur := cloneBaseline()
	cur.Serve.Results[0].DocsPerSec = 90      // -10% < 15% budget
	cur.Bulk.Results[1].DocsPerSec = 150      // -12%
	cur.Tokenizer.Results[0].MBPerSec = 1100  // -8%
	cur.Serve.Results[2].AllocsPerOp = 12050  // +50 within 10%+64
	cur.Tokenizer.Results[0].AllocsPerOp = 30 // within the 64 slack
	if v := violationsOf(base, cur, DefaultTolerances()); len(v) != 0 {
		t.Fatalf("within-tolerance run flagged: %q", v)
	}
}

func TestCompareCatchesThroughputDrop(t *testing.T) {
	base, cur := cloneBaseline()
	cur.Serve.Results[1].DocsPerSec = 200 // -33%
	wantViolation(t, violationsOf(base, cur, DefaultTolerances()), "serve/workload: docs/s regressed")

	base, cur = cloneBaseline()
	cur.Bulk.Results[0].DocsPerSec = 30
	wantViolation(t, violationsOf(base, cur, DefaultTolerances()), "bulk/j=1: docs/s regressed")

	base, cur = cloneBaseline()
	cur.Tokenizer.Results[0].MBPerSec = 700
	wantViolation(t, violationsOf(base, cur, DefaultTolerances()), "tokenizer/text-heavy/chunked: MB/s regressed")
}

func TestCompareCatchesAllocGrowth(t *testing.T) {
	base, cur := cloneBaseline()
	cur.Serve.Results[0].AllocsPerOp = 8000 // +33%
	wantViolation(t, violationsOf(base, cur, DefaultTolerances()), "serve/solo: allocs/op grew")

	base, cur = cloneBaseline()
	cur.Tokenizer.Results[0].AllocsPerOp = 500
	wantViolation(t, violationsOf(base, cur, DefaultTolerances()), "tokenizer/text-heavy/chunked: allocs/op grew")
}

func TestCompareCatchesPeakGrowth(t *testing.T) {
	base, cur := cloneBaseline()
	cur.Serve.Results[0].PeakBufferBytes = 2 << 20
	wantViolation(t, violationsOf(base, cur, DefaultTolerances()), "serve/solo: peak buffer grew")

	base, cur = cloneBaseline()
	cur.Bulk.Results[0].PeakBufferBytes = 1 << 20
	wantViolation(t, violationsOf(base, cur, DefaultTolerances()), "bulk/j=1: per-doc peak buffer grew")
}

func TestCompareCatchesSpeedupFloor(t *testing.T) {
	base, cur := cloneBaseline()
	cur.Tokenizer.SpeedupTextHeavy = 1.5
	wantViolation(t, violationsOf(base, cur, DefaultTolerances()), "speedup on text-heavy fell")

	base, cur = cloneBaseline()
	cur.Tokenizer.SpeedupMarkupHeavy = 1.3
	wantViolation(t, violationsOf(base, cur, DefaultTolerances()), "speedup on markup-heavy fell")
}

func TestCompareCatchesMissingSection(t *testing.T) {
	base, cur := cloneBaseline()
	cur.Tokenizer = nil
	wantViolation(t, violationsOf(base, cur, DefaultTolerances()), "missing BENCH_tokenizer.json")

	base, cur = cloneBaseline()
	cur.Serve.Results = cur.Serve.Results[:2]
	wantViolation(t, violationsOf(base, cur, DefaultTolerances()), "serve/server: path missing")
}

// A GOMAXPROCS change means the runner hardware class differs from the
// baseline's: the hardware-relative floors (throughput, allocs/op) are
// suspended with a warning — the gate must NOT fail every CI run just
// because the committed baseline was captured on a different class —
// while the machine-portable checks keep gating.
func TestCompareHardwareClassChangeWarnsAndSkipsFloors(t *testing.T) {
	base, cur := cloneBaseline()
	cur.Serve.GoMaxProcs = base.Serve.GoMaxProcs + 3
	cur.Serve.Results[0].DocsPerSec = 10     // hardware-relative: suspended
	cur.Serve.Results[0].AllocsPerOp = 90000 // hardware-relative: suspended
	cur.Bulk.GoMaxProcs = 8
	cur.Bulk.Results[0].DocsPerSec = 1
	cur.Tokenizer.GoMaxProcs = 4
	cur.Tokenizer.Results[0].MBPerSec = 10
	v, w := base.Compare(cur, DefaultTolerances())
	if len(v) != 0 {
		t.Fatalf("hardware-class change failed the gate: %q", v)
	}
	wantViolation(t, w, "serve: GOMAXPROCS changed")
	wantViolation(t, w, "bulk: GOMAXPROCS changed")
	wantViolation(t, w, "tokenizer: GOMAXPROCS changed")

	// The machine-portable metrics still gate across a class change:
	// buffer peaks, token counts, and the chunked/reference speedup
	// ratio are deterministic or runner-speed-independent.
	cur.Serve.Results[1].PeakBufferBytes = 4 << 20
	cur.Tokenizer.Results[1].Tokens = 39999
	cur.Tokenizer.SpeedupTextHeavy = 1.2
	cur.Tokenizer.SpeedupMarkupHeavy = 1.1
	v, _ = base.Compare(cur, DefaultTolerances())
	wantViolation(t, v, "serve/workload: peak buffer grew")
	wantViolation(t, v, "token count changed")
	wantViolation(t, v, "speedup on text-heavy fell")
	wantViolation(t, v, "speedup on markup-heavy fell")
}

func TestCompareCatchesParameterMismatch(t *testing.T) {
	base, cur := cloneBaseline()
	cur.Serve.DocBytes = 1 << 20
	wantViolation(t, violationsOf(base, cur, DefaultTolerances()), "serve: parameter mismatch")

	base, cur = cloneBaseline()
	cur.Tokenizer.Results[1].Tokens = 39999
	wantViolation(t, violationsOf(base, cur, DefaultTolerances()), "token count changed")
}

func TestCompareScaledTolerances(t *testing.T) {
	base, cur := cloneBaseline()
	cur.Serve.Results[0].DocsPerSec = 75 // -25%: fails at 1x, passes at 2x
	if v := violationsOf(base, cur, DefaultTolerances()); len(v) == 0 {
		t.Fatal("a 25 percent drop passed the default gate")
	}
	if v := violationsOf(base, cur, DefaultTolerances().Scale(2)); len(v) != 0 {
		t.Fatalf("a 25 percent drop failed the 2x-scaled gate: %q", v)
	}
}
