package bench

import (
	"strings"
	"testing"
	"time"

	"gcx/internal/engine"
	"gcx/internal/queries"
)

func TestRunSmallSweep(t *testing.T) {
	cfg := Config{
		Sizes:   []int64{256 << 10},
		Queries: []queries.Query{queries.Q1, queries.Q13},
		Seed:    1,
		Dir:     t.TempDir(),
	}
	results, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2*3 { // 2 queries × 3 modes
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s/%s: %v", r.Query, r.Mode, r.Err)
		}
		if r.Duration <= 0 || r.PeakBytes <= 0 || r.Tokens <= 0 {
			t.Fatalf("degenerate result: %+v", r)
		}
	}
	table := FormatTable(results)
	for _, want := range []string{"Q1", "Q13", "GCX", "StaticOnly", "FullBuffer"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	csv := FormatCSV(results)
	if strings.Count(csv, "\n") != len(results)+1 {
		t.Fatalf("csv row count wrong:\n%s", csv)
	}
}

func TestDocumentCaching(t *testing.T) {
	dir := t.TempDir()
	p1, n1, err := Document(dir, 128<<10, 3)
	if err != nil {
		t.Fatal(err)
	}
	p2, n2, err := Document(dir, 128<<10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 || n1 != n2 {
		t.Fatal("second call must reuse the cached document")
	}
}

func TestTimeout(t *testing.T) {
	cfg := Config{
		Sizes:   []int64{512 << 10},
		Queries: []queries.Query{queries.Q8}, // quadratic join
		Modes:   []engine.Mode{engine.ModeGCX},
		Seed:    1,
		Dir:     t.TempDir(),
		Timeout: 1 * time.Millisecond,
	}
	// The timeout select races with run completion when the process is
	// descheduled past both events (possible on loaded CI machines), so
	// allow a few attempts before declaring the mechanism broken.
	var last Result
	for attempt := 0; attempt < 5; attempt++ {
		results, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		last = results[0]
		if last.TimedOut {
			if !strings.Contains(FormatResult(last), "timeout") {
				t.Fatal("timeout must be rendered")
			}
			return
		}
	}
	t.Fatalf("expected a timeout, got %+v", last)
}
