package bench

import "testing"

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"10MB", 10 << 20, false},
		{"512KB", 512 << 10, false},
		{"2GB", 2 << 30, false},
		{"1.5MB", 3 << 19, false},
		{"100", 100, false},
		{"100B", 100, false},
		{" 10mb ", 10 << 20, false},
		{"", 0, true},
		{"abc", 0, true},
		{"-5MB", 0, true},
	}
	for _, tc := range cases {
		got, err := ParseSize(tc.in)
		if tc.err {
			if err == nil {
				t.Fatalf("ParseSize(%q) = %d, want error", tc.in, got)
			}
			continue
		}
		if err != nil || got != tc.want {
			t.Fatalf("ParseSize(%q) = %d, %v; want %d", tc.in, got, err, tc.want)
		}
	}
}

func TestFormatSize(t *testing.T) {
	cases := map[int64]string{
		100:      "100B",
		2 << 10:  "2.0KB",
		10 << 20: "10.0MB",
		3 << 30:  "3.0GB",
	}
	for in, want := range cases {
		if got := FormatSize(in); got != want {
			t.Fatalf("FormatSize(%d) = %q, want %q", in, got, want)
		}
	}
}
