package bench

import (
	"encoding/json"
	"io"
	"testing"
	"time"

	"gcx/internal/queries"
)

// TestRunServeSmoke: the three-path sweep completes on a tiny document
// and produces a structurally sound, JSON-serializable report.
func TestRunServeSmoke(t *testing.T) {
	rep, err := RunServe(ServeConfig{
		DocBytes:    32 << 10,
		Seed:        5,
		Requests:    2,
		Concurrency: 2,
		Queries:     []queries.Query{queries.Q1, queries.Q13},
		Progress:    io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("want 3 paths, got %d", len(rep.Results))
	}
	wantPaths := []string{"solo", "workload", "server"}
	for i, r := range rep.Results {
		if r.Path != wantPaths[i] {
			t.Fatalf("path %d: want %s, got %s", i, wantPaths[i], r.Path)
		}
		if r.DocsPerSec <= 0 || r.P50Ms <= 0 || r.P99Ms < r.P50Ms {
			t.Fatalf("%s: implausible latency figures: %+v", r.Path, r)
		}
		if r.PeakBufferNodes <= 0 {
			t.Fatalf("%s: no buffer peak recorded", r.Path)
		}
		if r.OutputBytes <= 0 {
			t.Fatalf("%s: no output recorded", r.Path)
		}
	}
	// All paths evaluate the same queries over the same document and all
	// report ENGINE output bytes (the server row reads its own metrics,
	// not HTTP framing), so the three volumes must agree exactly.
	for _, r := range rep.Results[1:] {
		if r.OutputBytes != rep.Results[0].OutputBytes {
			t.Fatalf("%s output volume %d differs from solo %d",
				r.Path, r.OutputBytes, rep.Results[0].OutputBytes)
		}
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	durs := []time.Duration{5, 1, 4, 2, 3} // unsorted on purpose
	if got := percentile(durs, 0.5); got != 3 {
		t.Fatalf("p50: %d", got)
	}
	if got := percentile(durs, 0.99); got != 5 {
		t.Fatalf("p99: %d", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty: %d", got)
	}
}
