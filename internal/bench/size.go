package bench

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSize parses human-readable byte sizes like "10MB", "512KB", "2GB",
// or plain byte counts. Units are binary (1MB = 1<<20).
func ParseSize(s string) (int64, error) {
	u := strings.ToUpper(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(u, "GB"):
		mult, u = 1<<30, strings.TrimSuffix(u, "GB")
	case strings.HasSuffix(u, "MB"):
		mult, u = 1<<20, strings.TrimSuffix(u, "MB")
	case strings.HasSuffix(u, "KB"):
		mult, u = 1<<10, strings.TrimSuffix(u, "KB")
	case strings.HasSuffix(u, "B"):
		u = strings.TrimSuffix(u, "B")
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(u), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bench: bad size %q", s)
	}
	return int64(v * float64(mult)), nil
}

// FormatSize renders a byte count the way ParseSize reads it.
func FormatSize(n int64) string { return humanBytes(n) }
