package bench

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"slices"
	"strings"
	"time"

	"gcx"
	"gcx/internal/queries"
	"gcx/internal/xmark"
)

// BulkConfig parameterizes the corpus-throughput benchmark
// (cmd/gcxbench -bulk-json): one compiled engine evaluated over a
// multi-document XMark corpus at increasing worker counts, reporting
// docs/s, scaling efficiency against the serial run, pool utilization,
// and a peak-heap proxy for resident memory. The corpus mixes document
// sizes so the reorder window does real work.
type BulkConfig struct {
	// Docs is the corpus size in documents.
	Docs int
	// DocBytes is the MEAN target document size; sizes alternate
	// between roughly 0.5× and 1.5× of it.
	DocBytes int64
	// Seed for document generation.
	Seed uint64
	// Query to evaluate; defaults to Q6 (the descendant-axis scan).
	Query queries.Query
	// Workers are the -j values to sweep; defaults to 1, 2, 4 and
	// GOMAXPROCS (deduplicated, ascending).
	Workers []int
	// Progress, if non-nil, receives one line per completed sweep point.
	Progress io.Writer
}

// BulkJobResult is one worker count's measurements in BENCH_bulk.json.
// Field names are scrape-stable for CI trend tooling.
type BulkJobResult struct {
	Workers    int     `json:"workers"`
	DocsPerSec float64 `json:"docs_per_sec"`
	WallMs     float64 `json:"wall_ms"`
	// SpeedupVsSerial is docs/s relative to the workers=1 row;
	// ScalingEfficiency divides that by the worker count (1.0 = linear).
	SpeedupVsSerial   float64 `json:"speedup_vs_serial"`
	ScalingEfficiency float64 `json:"scaling_efficiency"`
	// PoolUtilization is busy time / (wall × workers) as reported by
	// the bulk runner.
	PoolUtilization float64 `json:"pool_utilization"`
	// PeakHeapBytes samples runtime.MemStats.HeapInuse during the run —
	// the resident-memory proxy (the engine-controlled quantity is the
	// buffer peak below).
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	// PeakBufferNodes/Bytes are the largest SINGLE-document buffer
	// peaks; the run's engine memory bound is workers × these.
	PeakBufferNodes int64 `json:"peak_buffer_nodes"`
	PeakBufferBytes int64 `json:"peak_buffer_bytes"`
}

// BulkReport is the BENCH_bulk.json document.
type BulkReport struct {
	Docs        int             `json:"docs"`
	CorpusBytes int64           `json:"corpus_bytes"`
	Query       string          `json:"query"`
	GoMaxProcs  int             `json:"gomaxprocs"`
	Results     []BulkJobResult `json:"results"`
}

// RunBulk executes the worker-count sweep over one in-memory corpus.
func RunBulk(cfg BulkConfig) (*BulkReport, error) {
	if cfg.Docs <= 0 {
		cfg.Docs = 64
	}
	if cfg.DocBytes <= 0 {
		cfg.DocBytes = 256 << 10
	}
	if cfg.Query.Name == "" {
		cfg.Query = queries.Q6
	}
	if len(cfg.Workers) == 0 {
		cfg.Workers = defaultBulkWorkers()
	}

	// Build the corpus once: alternating sizes, distinct seeds.
	var corpus bytes.Buffer
	for i := 0; i < cfg.Docs; i++ {
		size := cfg.DocBytes / 2
		if i%2 == 1 {
			size = cfg.DocBytes * 3 / 2
		}
		if _, err := xmark.Generate(&corpus, xmark.Config{
			Factor: xmark.FactorForSize(size),
			Seed:   cfg.Seed + uint64(i),
		}); err != nil {
			return nil, err
		}
		corpus.WriteByte('\n')
	}
	data := corpus.Bytes()

	eng, err := gcx.Compile(cfg.Query.Text)
	if err != nil {
		return nil, err
	}
	report := &BulkReport{
		Docs:        cfg.Docs,
		CorpusBytes: int64(len(data)),
		Query:       cfg.Query.Name,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}

	// Warm-up at the largest worker count of the sweep (the list is in
	// user order, not necessarily ascending), so every sweep point finds
	// its run states pooled.
	warm := 0
	for _, j := range cfg.Workers {
		warm = max(warm, j)
	}
	if _, err := eng.Bulk(gcx.CorpusConcat(bytes.NewReader(data)), gcx.BulkOptions{Workers: warm}, nil); err != nil {
		return nil, err
	}

	for _, j := range cfg.Workers {
		res, err := bulkPoint(eng, data, cfg.Docs, j)
		if err != nil {
			return nil, err
		}
		report.Results = append(report.Results, res)
		if cfg.Progress != nil {
			// Speedup figures need the serial baseline, which may not
			// have run yet; report the raw point now (one line per
			// completed sweep point) and leave the full table to
			// FormatBulkTable.
			fmt.Fprintf(cfg.Progress, "-j %-3d %7.1f docs/s   util %3.0f%%   heap %s\n",
				res.Workers, res.DocsPerSec, 100*res.PoolUtilization, humanBytes(int64(res.PeakHeapBytes)))
		}
	}
	// The baseline is the workers=1 row, as the field names promise —
	// filled in after the sweep so the figures do not depend on the
	// order the worker counts were given. A sweep without a serial row
	// reports no speedup figures rather than silently rebasing.
	var serial float64
	for _, r := range report.Results {
		if r.Workers == 1 {
			serial = r.DocsPerSec
			break
		}
	}
	for i := range report.Results {
		r := &report.Results[i]
		if serial > 0 {
			r.SpeedupVsSerial = r.DocsPerSec / serial
			r.ScalingEfficiency = r.SpeedupVsSerial / float64(r.Workers)
		}
	}
	return report, nil
}

// defaultBulkWorkers is the sweep 1, 2, 4, GOMAXPROCS (dedup, sorted —
// the interesting suffix collapses on small machines).
func defaultBulkWorkers() []int {
	ws := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	var out []int
	for _, w := range ws {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	slices.Sort(out)
	return out
}

// bulkPoint measures one worker count, sampling the heap as an RSS
// proxy while the run is in flight.
func bulkPoint(eng *gcx.Engine, data []byte, docs, workers int) (BulkJobResult, error) {
	res := BulkJobResult{Workers: workers}
	runtime.GC()

	stop := make(chan struct{})
	peakc := make(chan uint64)
	go func() {
		var peak uint64
		var ms runtime.MemStats
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				peakc <- peak
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapInuse > peak {
					peak = ms.HeapInuse
				}
			}
		}
	}()

	start := time.Now()
	bs, err := eng.Bulk(gcx.CorpusConcat(bytes.NewReader(data)), gcx.BulkOptions{Workers: workers}, nil)
	wall := time.Since(start)
	close(stop)
	res.PeakHeapBytes = <-peakc
	if err != nil {
		return res, err
	}
	if bs.Failed > 0 {
		return res, fmt.Errorf("bulk sweep: %d of %d documents failed", bs.Failed, bs.Docs)
	}
	if int(bs.Docs) != docs {
		return res, fmt.Errorf("bulk sweep: evaluated %d documents, corpus has %d", bs.Docs, docs)
	}
	res.WallMs = ms(wall)
	res.DocsPerSec = float64(docs) / wall.Seconds()
	res.PoolUtilization = bs.Utilization()
	res.PeakBufferNodes = bs.Aggregate.PeakBufferNodes
	res.PeakBufferBytes = bs.Aggregate.PeakBufferBytes
	return res, nil
}

// FormatBulkResult renders one sweep point as a single line.
func FormatBulkResult(r BulkJobResult) string {
	return fmt.Sprintf("-j %-3d %7.1f docs/s   %5.2fx vs serial (%.0f%% efficient)   util %3.0f%%   heap %9s   peak %s/doc",
		r.Workers, r.DocsPerSec, r.SpeedupVsSerial, 100*r.ScalingEfficiency,
		100*r.PoolUtilization, humanBytes(int64(r.PeakHeapBytes)), humanBytes(r.PeakBufferBytes))
}

// FormatBulkTable renders the full report for humans.
func FormatBulkTable(rep *BulkReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Bulk corpus: %d docs (%s), query %s, GOMAXPROCS %d\n",
		rep.Docs, humanBytes(rep.CorpusBytes), rep.Query, rep.GoMaxProcs)
	for _, r := range rep.Results {
		b.WriteString(FormatBulkResult(r) + "\n")
	}
	return b.String()
}
