package engine

import (
	"strings"
	"testing"

	"gcx/internal/static"
)

// introQuery is the running example of the paper's introduction.
const introQuery = `
<r> {
  for $bib in /bib return
  ((for $x in $bib/* return
      if (not(exists($x/price))) then $x else ()),
   for $b in $bib/book return $b/title)
} </r>`

// introDoc extends the stream of Figure 2 with a priced book, so both
// if-branches and the cancellation path are exercised.
const introDoc = `<bib>` +
	`<book><title>T1</title><author>A1</author></book>` +
	`<book><title>T2</title><price>9</price><postprice>x</postprice></book>` +
	`</bib>`

func compile(t *testing.T, src string, cfg Config) *Compiled {
	t.Helper()
	c, err := Compile(src, cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

func runQuery(t *testing.T, src, doc string, cfg Config) (string, Stats) {
	t.Helper()
	c := compile(t, src, cfg)
	var out strings.Builder
	st, err := c.RunChecked(strings.NewReader(doc), &out)
	if err != nil {
		t.Fatalf("run (%s): %v", cfg.Mode, err)
	}
	return out.String(), st
}

// allConfigs enumerates the mode × optimization matrix used by the
// equivalence tests.
func allConfigs() []Config {
	optsets := []static.Options{
		{},
		{AggregateRoles: true},
		{EarlyUpdates: true},
		{EliminateRedundantRoles: true},
		{AggregateRoles: true, EliminateRedundantRoles: true},
		static.AllOptimizations(),
	}
	var cfgs []Config
	for i := range optsets {
		o := optsets[i]
		cfgs = append(cfgs, Config{Mode: ModeGCX, Static: &o})
	}
	cfgs = append(cfgs,
		Config{Mode: ModeStaticOnly},
		Config{Mode: ModeFullBuffer},
	)
	return cfgs
}

func TestIntroExampleOutput(t *testing.T) {
	want := `<r>` +
		`<book><title>T1</title><author>A1</author></book>` +
		`<title>T1</title><title>T2</title>` +
		`</r>`
	for _, cfg := range allConfigs() {
		got, _ := runQuery(t, introQuery, introDoc, cfg)
		if got != want {
			t.Fatalf("%s %+v:\ngot  %s\nwant %s", cfg.Mode, cfg.Static, got, want)
		}
	}
}

// TestFigure2Trace replays the paper's Figure 2: on the stream
// <bib><book><title/><author/></book>..., the author node is purged from
// the buffer as soon as the book's signOff batch has run, while the title
// survives for the later for$b loop.
func TestFigure2Trace(t *testing.T) {
	// Disable optimizations to match the paper's base technique (per-node
	// dos roles, no early updates).
	opts := static.Options{}
	c := compile(t, introQuery, Config{Mode: ModeGCX, Static: &opts})

	tr := &Tracer{}
	var out strings.Builder
	if _, err := c.RunWith(strings.NewReader(introDoc), &out, RunOptions{Trace: tr}); err != nil {
		t.Fatalf("run: %v", err)
	}

	trace := tr.Format()

	// Step 3 of Figure 2: after reading <book>, the node carries its
	// binding role and the dos role of $x plus the binding role of $b
	// (paper: book{r3,r5,r6}; our numbering: r2, r3, r5).
	if !strings.Contains(trace, "book{r2,r3,r5}") {
		t.Fatalf("book must carry three roles after being read:\n%s", trace)
	}
	// The author node carries only the dos role (paper: author{r5}).
	if !strings.Contains(trace, "author{r3}") {
		t.Fatalf("author must carry exactly the dos role:\n%s", trace)
	}

	// Find the last signOff of the first for$x iteration (the dos signoff
	// r3) and check the buffer no longer holds the author but still holds
	// the title (Figure 2 step 7).
	steps := tr.Steps
	idx := -1
	for i, s := range steps {
		if strings.Contains(s.Event, "signOff($x/dos::node(), r3)") {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatalf("dos signoff not traced:\n%s", trace)
	}
	after := steps[idx].Buffer
	if strings.Contains(after, "author") {
		t.Fatalf("author must be purged after the for$x batch (Figure 2 step 7):\n%s", after)
	}
	if !strings.Contains(after, "title") {
		t.Fatalf("title must survive for the for$b loop (Figure 2 step 7):\n%s", after)
	}
	// The book itself must survive carrying the for$b binding role.
	if !strings.Contains(after, "book{r5}") {
		t.Fatalf("book must retain exactly the $b binding role:\n%s", after)
	}
}

// TestCancellation exercises the signOff-on-unfinished-subtree path: the
// second book of introDoc contains a price, so the for$x batch runs while
// the book is still open; the trailing postprice element must not be
// buffered on behalf of the cancelled dos role, and the balance must hold
// (RunChecked verifies it).
func TestCancellation(t *testing.T) {
	for _, cfg := range allConfigs() {
		if cfg.Mode != ModeGCX {
			continue
		}
		c := compile(t, introQuery, cfg)
		tr := &Tracer{}
		var out strings.Builder
		if _, err := c.RunWith(strings.NewReader(introDoc), &out, RunOptions{Trace: tr}); err != nil {
			t.Fatalf("%+v: %v", cfg.Static, err)
		}
		// After the postprice element is read, it must not linger in the
		// buffer: the dos role was signed off before it arrived.
		for _, s := range tr.Steps {
			if strings.Contains(s.Event, "read <postprice>") && strings.Contains(s.Buffer, "postprice{") {
				t.Fatalf("%+v: postprice buffered with roles after cancellation:\n%s", cfg.Static, s.Buffer)
			}
		}
		// And the balance invariant must hold.
		var out2 strings.Builder
		if _, err := c.RunChecked(strings.NewReader(introDoc), &out2); err != nil {
			t.Fatalf("%+v: balance: %v", cfg.Static, err)
		}
	}
}

func TestExistsBlocking(t *testing.T) {
	// The price arrives late in the subtree: exists must block, find it,
	// and suppress the then-branch.
	src := `<q>{ for $x in /bib/book return if (exists($x/price)) then <priced/> else <free/> }</q>`
	doc := `<bib><book><a/><b/><price>1</price></book><book><a/></book></bib>`
	for _, cfg := range allConfigs() {
		got, _ := runQuery(t, src, doc, cfg)
		if got != `<q><priced></priced><free></free></q>` {
			t.Fatalf("%s: got %s", cfg.Mode, got)
		}
	}
}

func TestComparisons(t *testing.T) {
	src := `<q>{ for $p in /people/person return
	         if ($p/income > 50000 and not($p/name = "boss")) then <rich>{ $p/name }</rich> else () }</q>`
	doc := `<people>` +
		`<person><name>ann</name><income>60000</income></person>` +
		`<person><name>bob</name><income>7000</income></person>` +
		`<person><name>boss</name><income>90000</income></person>` +
		`</people>`
	want := `<q><rich><name>ann</name></rich></q>`
	for _, cfg := range allConfigs() {
		got, _ := runQuery(t, src, doc, cfg)
		if got != want {
			t.Fatalf("%s: got %s want %s", cfg.Mode, got, want)
		}
	}
}

func TestNumericVsStringComparison(t *testing.T) {
	// "9" < "10" numerically, but "9" > "10" lexicographically.
	src := `<q>{ for $x in /l/v return if ($x/n < 10) then <hit/> else () }</q>`
	doc := `<l><v><n>9</n></v><v><n>100</n></v></l>`
	got, _ := runQuery(t, src, doc, Config{Mode: ModeGCX})
	if got != `<q><hit></hit></q>` {
		t.Fatalf("numeric comparison broken: %s", got)
	}

	src2 := `<q>{ for $x in /l/v return if ($x/n < "b") then <hit/> else () }</q>`
	doc2 := `<l><v><n>a</n></v><v><n>c</n></v></l>`
	got2, _ := runQuery(t, src2, doc2, Config{Mode: ModeGCX})
	if got2 != `<q><hit></hit></q>` {
		t.Fatalf("string comparison broken: %s", got2)
	}
}

func TestJoinQuery(t *testing.T) {
	// A Q8-style value join: people × purchases.
	src := `<q>{ for $p in /db/people/person return
	        <row>{ ($p/name,
	          for $t in /db/sales/sale return
	            if ($t/who = $p/name) then <sale>{ $t/amount }</sale> else ()) }</row> }</q>`
	doc := `<db>` +
		`<people><person><name>ann</name></person><person><name>bob</name></person></people>` +
		`<sales>` +
		`<sale><who>bob</who><amount>3</amount></sale>` +
		`<sale><who>ann</who><amount>5</amount></sale>` +
		`<sale><who>ann</who><amount>7</amount></sale>` +
		`</sales>` +
		`</db>`
	want := `<q>` +
		`<row><name>ann</name><sale><amount>5</amount></sale><sale><amount>7</amount></sale></row>` +
		`<row><name>bob</name><sale><amount>3</amount></sale></row>` +
		`</q>`
	for _, cfg := range allConfigs() {
		got, _ := runQuery(t, src, doc, cfg)
		if got != want {
			t.Fatalf("%s %+v:\ngot  %s\nwant %s", cfg.Mode, cfg.Static, got, want)
		}
	}
}

func TestDescendantIteration(t *testing.T) {
	src := `<q>{ for $b in //b return <hit>{ $b/k }</hit> }</q>`
	doc := `<a><b><k>1</k><b><k>2</k></b></b><c><b><k>3</k></b></c></a>`
	want := `<q><hit><k>1</k></hit><hit><k>2</k></hit><hit><k>3</k></hit></q>`
	for _, cfg := range allConfigs() {
		got, _ := runQuery(t, src, doc, cfg)
		if got != want {
			t.Fatalf("%s: got %s want %s", cfg.Mode, got, want)
		}
	}
}

func TestWildcardAndText(t *testing.T) {
	src := `<q>{ for $x in /r/* return <cell>{ $x/text() }</cell> }</q>`
	doc := `<r><a>1</a><b>two</b><c><d/>3</c></r>`
	want := `<q><cell>1</cell><cell>two</cell><cell>3</cell></q>`
	for _, cfg := range allConfigs() {
		got, _ := runQuery(t, src, doc, cfg)
		if got != want {
			t.Fatalf("%s: got %s want %s", cfg.Mode, got, want)
		}
	}
}

// TestGCXBufferSmaller: the headline claim — on a filter query, GCX's peak
// buffer is bounded while StaticOnly grows with the (projected) input and
// FullBuffer with the whole input.
func TestGCXBufferSmaller(t *testing.T) {
	src := `<q>{ for $p in /people/person return if ($p/id = "p1") then $p/name else () }</q>`
	var doc strings.Builder
	doc.WriteString("<people>")
	for i := 0; i < 500; i++ {
		doc.WriteString(`<person><id>p` + string(rune('0'+i%10)) + `</id><name>n</name><junk>jjjjjjjjjj</junk></person>`)
	}
	doc.WriteString("</people>")

	_, gcx := runQuery(t, src, doc.String(), Config{Mode: ModeGCX})
	_, static_ := runQuery(t, src, doc.String(), Config{Mode: ModeStaticOnly})
	_, full := runQuery(t, src, doc.String(), Config{Mode: ModeFullBuffer})

	if gcx.Buffer.PeakNodes > 30 {
		t.Fatalf("GCX peak %d nodes: must be bounded (one person at a time)", gcx.Buffer.PeakNodes)
	}
	if static_.Buffer.PeakNodes < 500 {
		t.Fatalf("StaticOnly peak %d nodes: must hold all projected persons", static_.Buffer.PeakNodes)
	}
	if full.Buffer.PeakNodes < 2000 {
		t.Fatalf("FullBuffer peak %d nodes: must hold the whole document", full.Buffer.PeakNodes)
	}
	if !(gcx.Buffer.PeakNodes < static_.Buffer.PeakNodes && static_.Buffer.PeakNodes < full.Buffer.PeakNodes) {
		t.Fatalf("peak ordering violated: %d vs %d vs %d",
			gcx.Buffer.PeakNodes, static_.Buffer.PeakNodes, full.Buffer.PeakNodes)
	}
}

// TestEarlyStopOnExists: once an existence check has its witness and the
// rest of the query needs no further input, evaluation stops without
// consuming the remaining stream. (Loops, by contrast, must scan to the
// end — without schema knowledge another match could always follow; the
// paper makes the same observation when comparing against the
// schema-aware FluX system.)
func TestEarlyStopOnExists(t *testing.T) {
	src := `<q>{ if (exists(/r/head)) then <yes/> else () }</q>`
	doc := `<r><head></head><tail>` + strings.Repeat("<x></x>", 1000) + `</tail></r>`
	_, st := runQuery(t, src, doc, Config{Mode: ModeGCX})
	if st.TokensRead > 10 {
		t.Fatalf("read %d tokens; evaluation must stop at the witness", st.TokensRead)
	}

	// A loop over /r/head/item keeps the buffer flat even though it scans
	// the whole stream.
	src2 := `<q>{ for $x in /r/head/item return $x }</q>`
	doc2 := `<r><head><item>1</item></head><tail>` + strings.Repeat("<x></x>", 1000) + `</tail></r>`
	_, st2 := runQuery(t, src2, doc2, Config{Mode: ModeGCX})
	if st2.Buffer.PeakNodes > 10 {
		t.Fatalf("peak %d nodes; the tail must not be buffered", st2.Buffer.PeakNodes)
	}
}

func TestCondTagWellFormedness(t *testing.T) {
	// An if with an element constructor around a for-loop triggers the NC
	// rewriting; the conditional open/close tags must stay balanced.
	src := `<q>{ for $x in /db/g return
	         if (exists($x/keep)) then <g>{ for $y in $x/v return $y }</g> else () }</q>`
	doc := `<db><g><keep/><v>1</v><v>2</v></g><g><v>3</v></g></db>`
	want := `<q><g><v>1</v><v>2</v></g></q>`
	for _, cfg := range allConfigs() {
		got, _ := runQuery(t, src, doc, cfg)
		if got != want {
			t.Fatalf("%s: got %s want %s", cfg.Mode, got, want)
		}
	}
}

func TestEmptyDocumentRegions(t *testing.T) {
	src := `<q>{ for $x in /r/a return $x }</q>`
	got, _ := runQuery(t, src, `<r></r>`, Config{Mode: ModeGCX})
	if got != `<q></q>` {
		t.Fatalf("got %s", got)
	}
}

func TestMalformedInputSurfacesError(t *testing.T) {
	c := compile(t, `<q>{ for $x in /r/a return $x }</q>`, Config{Mode: ModeGCX})
	var out strings.Builder
	if _, err := c.Run(strings.NewReader(`<r><a></b></r>`), &out); err == nil {
		t.Fatal("malformed input must surface an error")
	}
	if _, err := c.Run(strings.NewReader(`<r><a>`), &out); err == nil {
		t.Fatal("truncated input must surface an error")
	}
}

func TestExplainOutput(t *testing.T) {
	c := compile(t, introQuery, Config{Mode: ModeGCX})
	ex := c.Explain()
	for _, want := range []string{"variable tree", "projection tree", "rewritten query", "dep($", "signOff("} {
		if !strings.Contains(ex, want) {
			t.Fatalf("explain missing %q:\n%s", want, ex)
		}
	}
}
