package engine

import (
	"strings"
	"testing"

	"gcx/internal/dtd"
	"gcx/internal/xmark"
)

const siteDTD = `
<!ELEMENT site (head, people, tail)>
<!ELEMENT head (meta*)>
<!ELEMENT meta (#PCDATA)>
<!ELEMENT people (person*)>
<!ELEMENT person (id, name)>
<!ELEMENT id (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT tail (noise*)>
<!ELEMENT noise (#PCDATA)>
`

func schemaDoc(persons, noise int) string {
	var b strings.Builder
	b.WriteString("<site><head><meta>m</meta></head><people>")
	for i := 0; i < persons; i++ {
		b.WriteString("<person><id>p</id><name>n</name></person>")
	}
	b.WriteString("</people><tail>")
	for i := 0; i < noise; i++ {
		b.WriteString("<noise>zzzzzzzz</noise>")
	}
	b.WriteString("</tail></site>")
	return b.String()
}

// TestSchemaEarlyTermination: with a DTD, a loop over /site/people/person
// stops as soon as <tail> opens (the content model kills people), instead
// of scanning the noise region — the schema capability of the FluX system
// the paper compares against.
func TestSchemaEarlyTermination(t *testing.T) {
	schema, err := dtd.Parse(siteDTD)
	if err != nil {
		t.Fatal(err)
	}
	src := `<q>{ for $p in /site/people/person return $p/name }</q>`
	doc := schemaDoc(50, 2000)

	plain := compile(t, src, Config{Mode: ModeGCX})
	var out1 strings.Builder
	stPlain, err := plain.RunChecked(strings.NewReader(doc), &out1)
	if err != nil {
		t.Fatal(err)
	}

	withSchema := compile(t, src, Config{Mode: ModeGCX, Schema: schema})
	var out2 strings.Builder
	stSchema, err := withSchema.RunChecked(strings.NewReader(doc), &out2)
	if err != nil {
		t.Fatal(err)
	}

	if out1.String() != out2.String() {
		t.Fatalf("schema must not change results:\nplain:  %.200s\nschema: %.200s", out1.String(), out2.String())
	}
	// Without the schema the whole stream is scanned; with it, the tail's
	// ~4000 tokens are skipped.
	if stPlain.TokensRead < 4000 {
		t.Fatalf("plain run read %d tokens; expected a full scan", stPlain.TokensRead)
	}
	if stSchema.TokensRead*5 > stPlain.TokensRead {
		t.Fatalf("schema run read %d of %d tokens; expected early termination",
			stSchema.TokensRead, stPlain.TokensRead)
	}
}

// TestSchemaCanContainShortcut: a loop over a child the content model
// excludes terminates immediately without pulling input.
func TestSchemaCanContainShortcut(t *testing.T) {
	schema, err := dtd.Parse(siteDTD)
	if err != nil {
		t.Fatal(err)
	}
	// people cannot contain ghost elements.
	src := `<q>{ for $p in /site/people return for $g in $p/ghost return $g }</q>`
	doc := schemaDoc(5, 2000)
	c := compile(t, src, Config{Mode: ModeGCX, Schema: schema})
	var out strings.Builder
	st, err := c.RunChecked(strings.NewReader(doc), &out)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "<q></q>" {
		t.Fatalf("output: %s", out.String())
	}
	// The run still scans for more people sections... no: after tail
	// opens, people is dead; after tail, site ends. The ghost loops never
	// block. Token count must stay well below the full document.
	if st.TokensRead*3 > int64(strings.Count(doc, "<")) {
		t.Fatalf("read %d tokens for a schema-refuted loop", st.TokensRead)
	}
}

// TestSchemaProvenExistsStopsPulling: when the DTD proves an existence
// chain (every link mandatory), the condition is answered the moment its
// context binding opens — the run neither pulls toward a witness deep in
// the document nor scans past what the loops still need.
func TestSchemaProvenExistsStopsPulling(t *testing.T) {
	schema, err := dtd.Parse(`
<!ELEMENT root (a)>
<!ELEMENT a (pad*, x)>
<!ELEMENT pad (#PCDATA)>
<!ELEMENT x (#PCDATA)>
`)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString("<root><a>")
	for i := 0; i < 2000; i++ {
		b.WriteString("<pad>zzzzzzzz</pad>")
	}
	b.WriteString("<x>t</x></a></root>")
	doc := b.String()
	src := `<q>{ for $r in /root return if (exists($r/a/x)) then <y/> else <n/> }</q>`

	plain := compile(t, src, Config{Mode: ModeGCX})
	var out1 strings.Builder
	stPlain, err := plain.RunChecked(strings.NewReader(doc), &out1)
	if err != nil {
		t.Fatal(err)
	}
	withSchema := compile(t, src, Config{Mode: ModeGCX, Schema: schema})
	var out2 strings.Builder
	stSchema, err := withSchema.RunChecked(strings.NewReader(doc), &out2)
	if err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Fatalf("schema must not change results:\nplain:  %s\nschema: %s", out1.String(), out2.String())
	}
	if !strings.Contains(out1.String(), "<y>") {
		t.Fatalf("x exists, want the then-branch: %s", out1.String())
	}
	// Plain evaluation hunts the witness through the pad region; the
	// proven condition needs no witness at all.
	if stPlain.TokensRead < 4000 {
		t.Fatalf("plain run read %d tokens; expected a witness hunt", stPlain.TokensRead)
	}
	if stSchema.TokensRead*10 > stPlain.TokensRead {
		t.Fatalf("schema run read %d of %d tokens; expected no witness hunt",
			stSchema.TokensRead, stPlain.TokensRead)
	}
}

// TestSchemaRefutedExistsStopsPulling: when the content model excludes
// the checked child, the else-branch is emitted immediately and the run
// stops pulling — plain evaluation must scan to the region's end to prove
// the negative.
func TestSchemaRefutedExistsStopsPulling(t *testing.T) {
	schema, err := dtd.Parse(siteDTD)
	if err != nil {
		t.Fatal(err)
	}
	src := `<q>{ for $s in /site return if (exists($s/ghost)) then <y/> else <n/> }</q>`
	doc := schemaDoc(5, 2000)

	plain := compile(t, src, Config{Mode: ModeGCX})
	var out1 strings.Builder
	stPlain, err := plain.RunChecked(strings.NewReader(doc), &out1)
	if err != nil {
		t.Fatal(err)
	}
	withSchema := compile(t, src, Config{Mode: ModeGCX, Schema: schema})
	var out2 strings.Builder
	stSchema, err := withSchema.RunChecked(strings.NewReader(doc), &out2)
	if err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Fatalf("schema must not change results:\nplain:  %s\nschema: %s", out1.String(), out2.String())
	}
	if !strings.Contains(out1.String(), "<n>") {
		t.Fatalf("no ghost exists, want the else-branch: %s", out1.String())
	}
	if stPlain.TokensRead < 4000 {
		t.Fatalf("plain run read %d tokens; expected a scan to prove absence", stPlain.TokensRead)
	}
	if stSchema.TokensRead*10 > stPlain.TokensRead {
		t.Fatalf("schema run read %d of %d tokens; expected an immediate answer",
			stSchema.TokensRead, stPlain.TokensRead)
	}
}

// TestSchemaDynamicBinderAgrees: a star binder has no statically known
// tag, so the compile-time rewrite cannot fire; the evaluator's runtime
// MustContain check answers per binding instead. Output must match the
// schemaless run exactly.
func TestSchemaDynamicBinderAgrees(t *testing.T) {
	schema, err := dtd.Parse(`
<!ELEMENT root (a, b)>
<!ELEMENT a (pad*, x)>
<!ELEMENT b (x)>
<!ELEMENT pad (#PCDATA)>
<!ELEMENT x (#PCDATA)>
`)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString("<root><a>")
	for i := 0; i < 200; i++ {
		b.WriteString("<pad>zzzzzzzz</pad>")
	}
	b.WriteString("<x>t</x></a><b><x>u</x></b></root>")
	doc := b.String()
	src := `<q>{ for $c in /root/* return if (exists($c/x)) then <y/> else <n/> }</q>`

	plain := compile(t, src, Config{Mode: ModeGCX})
	var out1 strings.Builder
	if _, err := plain.RunChecked(strings.NewReader(doc), &out1); err != nil {
		t.Fatal(err)
	}
	withSchema := compile(t, src, Config{Mode: ModeGCX, Schema: schema})
	var out2 strings.Builder
	if _, err := withSchema.RunChecked(strings.NewReader(doc), &out2); err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Fatalf("schema must not change results:\nplain:  %s\nschema: %s", out1.String(), out2.String())
	}
	if want := "<q><y></y><y></y></q>"; out1.String() != want {
		t.Fatalf("got %s, want %s", out1.String(), want)
	}
}

// TestSchemaAgreesOnXMark: all five benchmark queries produce identical
// output with and without the XMark DTD, while reading no more tokens.
func TestSchemaAgreesOnXMark(t *testing.T) {
	// The output-equality check on generated data lives in the queries
	// package tests; here we check the DTD itself parses and covers the
	// site structure.
	schema, err := dtd.Parse(xmark.DTD)
	if err != nil {
		t.Fatal(err)
	}
	if !schema.Declared("site") || !schema.Declared("closed_auction") {
		t.Fatal("XMark DTD incomplete")
	}
	dead := schema.NoMoreAfter("site", "open_auctions")
	found := false
	for _, d := range dead {
		if d == "people" {
			found = true
		}
	}
	if !found {
		t.Fatalf("XMark DTD must kill people after open_auctions: %v", dead)
	}
}
