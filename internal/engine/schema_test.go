package engine

import (
	"strings"
	"testing"

	"gcx/internal/dtd"
	"gcx/internal/xmark"
)

const siteDTD = `
<!ELEMENT site (head, people, tail)>
<!ELEMENT head (meta*)>
<!ELEMENT meta (#PCDATA)>
<!ELEMENT people (person*)>
<!ELEMENT person (id, name)>
<!ELEMENT id (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT tail (noise*)>
<!ELEMENT noise (#PCDATA)>
`

func schemaDoc(persons, noise int) string {
	var b strings.Builder
	b.WriteString("<site><head><meta>m</meta></head><people>")
	for i := 0; i < persons; i++ {
		b.WriteString("<person><id>p</id><name>n</name></person>")
	}
	b.WriteString("</people><tail>")
	for i := 0; i < noise; i++ {
		b.WriteString("<noise>zzzzzzzz</noise>")
	}
	b.WriteString("</tail></site>")
	return b.String()
}

// TestSchemaEarlyTermination: with a DTD, a loop over /site/people/person
// stops as soon as <tail> opens (the content model kills people), instead
// of scanning the noise region — the schema capability of the FluX system
// the paper compares against.
func TestSchemaEarlyTermination(t *testing.T) {
	schema, err := dtd.Parse(siteDTD)
	if err != nil {
		t.Fatal(err)
	}
	src := `<q>{ for $p in /site/people/person return $p/name }</q>`
	doc := schemaDoc(50, 2000)

	plain := compile(t, src, Config{Mode: ModeGCX})
	var out1 strings.Builder
	stPlain, err := plain.RunChecked(strings.NewReader(doc), &out1)
	if err != nil {
		t.Fatal(err)
	}

	withSchema := compile(t, src, Config{Mode: ModeGCX, Schema: schema})
	var out2 strings.Builder
	stSchema, err := withSchema.RunChecked(strings.NewReader(doc), &out2)
	if err != nil {
		t.Fatal(err)
	}

	if out1.String() != out2.String() {
		t.Fatalf("schema must not change results:\nplain:  %.200s\nschema: %.200s", out1.String(), out2.String())
	}
	// Without the schema the whole stream is scanned; with it, the tail's
	// ~4000 tokens are skipped.
	if stPlain.TokensRead < 4000 {
		t.Fatalf("plain run read %d tokens; expected a full scan", stPlain.TokensRead)
	}
	if stSchema.TokensRead*5 > stPlain.TokensRead {
		t.Fatalf("schema run read %d of %d tokens; expected early termination",
			stSchema.TokensRead, stPlain.TokensRead)
	}
}

// TestSchemaCanContainShortcut: a loop over a child the content model
// excludes terminates immediately without pulling input.
func TestSchemaCanContainShortcut(t *testing.T) {
	schema, err := dtd.Parse(siteDTD)
	if err != nil {
		t.Fatal(err)
	}
	// people cannot contain ghost elements.
	src := `<q>{ for $p in /site/people return for $g in $p/ghost return $g }</q>`
	doc := schemaDoc(5, 2000)
	c := compile(t, src, Config{Mode: ModeGCX, Schema: schema})
	var out strings.Builder
	st, err := c.RunChecked(strings.NewReader(doc), &out)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "<q></q>" {
		t.Fatalf("output: %s", out.String())
	}
	// The run still scans for more people sections... no: after tail
	// opens, people is dead; after tail, site ends. The ghost loops never
	// block. Token count must stay well below the full document.
	if st.TokensRead*3 > int64(strings.Count(doc, "<")) {
		t.Fatalf("read %d tokens for a schema-refuted loop", st.TokensRead)
	}
}

// TestSchemaAgreesOnXMark: all five benchmark queries produce identical
// output with and without the XMark DTD, while reading no more tokens.
func TestSchemaAgreesOnXMark(t *testing.T) {
	// The output-equality check on generated data lives in the queries
	// package tests; here we check the DTD itself parses and covers the
	// site structure.
	schema, err := dtd.Parse(xmark.DTD)
	if err != nil {
		t.Fatal(err)
	}
	if !schema.Declared("site") || !schema.Declared("closed_auction") {
		t.Fatal("XMark DTD incomplete")
	}
	dead := schema.NoMoreAfter("site", "open_auctions")
	found := false
	for _, d := range dead {
		if d == "people" {
			found = true
		}
	}
	if !found {
		t.Fatalf("XMark DTD must kill people after open_auctions: %v", dead)
	}
}
