// Package engine wires the GCX components together (the architecture of
// Figure 11): query compilation (parser, normalizer, if-pushdown, static
// analysis) and the pull-based runtime chain
//
//	query evaluator ⇄ buffer manager ⇄ stream pre-projector ⇄ tokenizer.
//
// Besides the full GCX mode it provides the two baselines used by the
// benchmark harness as stand-ins for the systems of Table 1:
//
//   - StaticOnly: stream projection with roles assigned but signOffs
//     ignored — "static analysis alone", the projection-based strategy of
//     Galax [13]. Memory grows with the projected document size.
//   - FullBuffer: no projection at all — the whole document is buffered,
//     like naive in-memory engines. Memory grows with the document size.
package engine

import (
	"fmt"
	"io"

	"gcx/internal/buffer"
	"gcx/internal/dtd"
	"gcx/internal/eval"
	"gcx/internal/ifpush"
	"gcx/internal/normalize"
	"gcx/internal/proj"
	"gcx/internal/projtree"
	"gcx/internal/static"
	"gcx/internal/xmlstream"
	"gcx/internal/xqast"
	"gcx/internal/xqparser"
)

// Mode selects the buffer management strategy.
type Mode int

const (
	// ModeGCX is the paper's system: projection + active garbage
	// collection.
	ModeGCX Mode = iota
	// ModeStaticOnly projects but never purges (no signOff execution).
	ModeStaticOnly
	// ModeFullBuffer buffers the entire document (no projection, no
	// purging).
	ModeFullBuffer
)

// String names the mode as used in reports.
func (m Mode) String() string {
	switch m {
	case ModeGCX:
		return "GCX"
	case ModeStaticOnly:
		return "StaticOnly"
	case ModeFullBuffer:
		return "FullBuffer"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config controls compilation.
type Config struct {
	Mode Mode
	// Static selects the Section 6 optimizations; ignored for
	// ModeFullBuffer. If nil, static.AllOptimizations() is used.
	Static *static.Options
	// Tokenizer options; zero value means xmlstream.DefaultOptions.
	Tokenizer *xmlstream.Options
	// Schema enables schema-aware early region termination (the
	// capability of the schema-based FluX system [11] the paper compares
	// against). Supplying it asserts the input is valid against the DTD.
	Schema *dtd.Schema
}

// Compiled is a query prepared for execution.
type Compiled struct {
	Source   string
	Mode     Mode
	Analysis *static.Analysis
	// MatchTree is the projection tree the projector runs with: the
	// analysis tree in GCX/StaticOnly modes, the keep-everything tree in
	// FullBuffer mode.
	MatchTree *projtree.Tree
	schema    *dtd.Schema
	tokOpts   xmlstream.Options
}

// Compile parses, normalizes, rewrites, and statically analyzes a query.
func Compile(src string, cfg Config) (*Compiled, error) {
	q, err := xqparser.Parse(src)
	if err != nil {
		return nil, err
	}
	n, err := normalize.Normalize(q)
	if err != nil {
		return nil, err
	}
	pushed := ifpush.Push(n)

	opts := static.AllOptimizations()
	if cfg.Static != nil {
		opts = *cfg.Static
	}
	a, err := static.Analyze(pushed, opts)
	if err != nil {
		return nil, err
	}

	c := &Compiled{
		Source:    src,
		Mode:      cfg.Mode,
		Analysis:  a,
		MatchTree: a.Tree,
		schema:    cfg.Schema,
		tokOpts:   xmlstream.DefaultOptions(),
	}
	if cfg.Tokenizer != nil {
		c.tokOpts = *cfg.Tokenizer
	}
	if cfg.Mode == ModeFullBuffer {
		c.MatchTree = fullBufferTree()
	}
	return c, nil
}

// fullBufferTree returns the keep-everything projection tree: a single
// aggregate dos::node() capture below the root.
func fullBufferTree() *projtree.Tree {
	t := projtree.New()
	leaf := t.AddNode(t.Root, xqast.Step{Axis: xqast.DescendantOrSelf, Test: xqast.NodeKindTest()})
	r := t.AddRole(leaf, projtree.RoleOutput, xqast.RootVar, true, "full-buffer capture")
	leaf.ChainRole = r.ID
	return t
}

// Stats aggregates the measurements of one run.
type Stats struct {
	Buffer buffer.Stats
	// TokensRead counts stream tokens consumed (the run may stop early if
	// the query needs only a prefix of the input).
	TokensRead int64
	// OutputBytes counts serialized output.
	OutputBytes int64
}

// RunOptions carries per-run hooks (tracing).
type RunOptions struct {
	// Trace, if non-nil, receives a buffer snapshot after every consumed
	// token and executed signOff (drives the Figure 2 example).
	Trace *Tracer
}

// Run executes the compiled query over the XML input, writing the result
// to out.
func (c *Compiled) Run(in io.Reader, out io.Writer) (Stats, error) {
	st, _, err := c.run(in, out, RunOptions{})
	return st, err
}

// RunWith executes with hooks.
func (c *Compiled) RunWith(in io.Reader, out io.Writer, ro RunOptions) (Stats, error) {
	st, _, err := c.run(in, out, ro)
	return st, err
}

// RunChecked executes and then verifies the role assignment/removal
// balance (Section 3's safety requirements: every assigned role instance
// is removed, and the buffer is empty after evaluation). Only meaningful
// in ModeGCX; other modes skip the check by design.
func (c *Compiled) RunChecked(in io.Reader, out io.Writer) (Stats, error) {
	st, buf, err := c.run(in, out, RunOptions{})
	if err != nil {
		return st, err
	}
	if c.Mode == ModeGCX {
		if err := buf.CheckBalance(); err != nil {
			return st, fmt.Errorf("%w\nbuffer:\n%s", err, buf.Dump())
		}
		if err := buf.CheckResidue(); err != nil {
			return st, fmt.Errorf("%w\nbuffer:\n%s", err, buf.Dump())
		}
	}
	return st, nil
}

func (c *Compiled) run(in io.Reader, out io.Writer, ro RunOptions) (Stats, *buffer.Buffer, error) {
	syms := xmlstream.NewSymTab()
	agg := make([]bool, len(c.MatchTree.Roles))
	for i, r := range c.MatchTree.Roles {
		if i > 0 && r.Aggregate {
			agg[i] = true
		}
	}
	buf := buffer.New(syms, len(c.MatchTree.Roles)-1, agg)
	tok := xmlstream.NewTokenizerOptions(in, c.tokOpts)
	aggregateMatching := c.Mode == ModeFullBuffer || c.Analysis.Opts.AggregateRoles
	p := proj.New(tok, buf, c.MatchTree, proj.Options{AggregateRoles: aggregateMatching, Schema: c.schema})

	w := xmlstream.NewWriter(out)
	evOpts := eval.Options{ExecuteSignOffs: c.Mode == ModeGCX, Schema: c.schema}
	if ro.Trace != nil {
		ro.Trace.install(&evOpts, buf, p)
	}
	ev := eval.New(buf, p, w, evOpts)

	err := ev.Run(c.Analysis.Query)
	st := Stats{
		Buffer:      buf.Stats(),
		TokensRead:  p.TokensRead(),
		OutputBytes: w.BytesWritten(),
	}
	return st, buf, err
}

// Explain renders the compilation diagnostics: variable tree,
// dependencies, projection tree, role table, and the rewritten query.
func (c *Compiled) Explain() string {
	a := c.Analysis
	return "mode: " + c.Mode.String() + "\n\n" +
		"variable tree:\n" + a.FormatVariableTree() + "\n" +
		"dependencies:\n" + a.FormatDeps() + "\n" +
		"projection tree:\n" + a.Tree.Format() + "\n" +
		"roles:\n" + a.Tree.FormatRoles() + "\n" +
		"rewritten query:\n" + xqast.Format(a.Query)
}
