// Package engine wires the GCX components together (the architecture of
// Figure 11): query compilation (parser, normalizer, if-pushdown, static
// analysis) and the pull-based runtime chain
//
//	query evaluator ⇄ buffer manager ⇄ stream pre-projector ⇄ tokenizer.
//
// Besides the full GCX mode it provides the two baselines used by the
// benchmark harness as stand-ins for the systems of Table 1:
//
//   - StaticOnly: stream projection with roles assigned but signOffs
//     ignored — "static analysis alone", the projection-based strategy of
//     Galax [13]. Memory grows with the projected document size.
//   - FullBuffer: no projection at all — the whole document is buffered,
//     like naive in-memory engines. Memory grows with the document size.
package engine

import (
	"fmt"
	"io"
	"sync"

	"gcx/internal/buffer"
	"gcx/internal/dtd"
	"gcx/internal/eval"
	"gcx/internal/ifpush"
	"gcx/internal/normalize"
	"gcx/internal/obs"
	"gcx/internal/proj"
	"gcx/internal/projtree"
	"gcx/internal/static"
	"gcx/internal/xmlstream"
	"gcx/internal/xqast"
	"gcx/internal/xqparser"
)

// Mode selects the buffer management strategy.
type Mode int

const (
	// ModeGCX is the paper's system: projection + active garbage
	// collection.
	ModeGCX Mode = iota
	// ModeStaticOnly projects but never purges (no signOff execution).
	ModeStaticOnly
	// ModeFullBuffer buffers the entire document (no projection, no
	// purging).
	ModeFullBuffer
)

// String names the mode as used in reports.
func (m Mode) String() string {
	switch m {
	case ModeGCX:
		return "GCX"
	case ModeStaticOnly:
		return "StaticOnly"
	case ModeFullBuffer:
		return "FullBuffer"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config controls compilation.
type Config struct {
	Mode Mode
	// Static selects the Section 6 optimizations; ignored for
	// ModeFullBuffer. If nil, static.AllOptimizations() is used.
	Static *static.Options
	// Tokenizer options; zero value means xmlstream.DefaultOptions.
	Tokenizer *xmlstream.Options
	// Schema enables schema-aware early region termination (the
	// capability of the schema-based FluX system [11] the paper compares
	// against). Supplying it asserts the input is valid against the DTD.
	Schema *dtd.Schema
}

// Compiled is a query prepared for execution. All exported fields are
// immutable after Compile; runs draw their mutable machinery from an
// internal pool, so a single Compiled may serve many goroutines at once.
type Compiled struct {
	Source   string
	Mode     Mode
	Analysis *static.Analysis
	// MatchTree is the projection tree the projector runs with: the
	// analysis tree in GCX/StaticOnly modes, the keep-everything tree in
	// FullBuffer mode.
	MatchTree *projtree.Tree
	schema    *dtd.Schema
	tokOpts   xmlstream.Options

	// agg marks aggregate roles, precomputed from the role table.
	agg []bool
	// pool recycles runStates across runs: after warm-up, Run allocates
	// (almost) nothing beyond what the document forces it to buffer.
	pool sync.Pool
}

// Compile parses, normalizes, rewrites, and statically analyzes a query.
func Compile(src string, cfg Config) (*Compiled, error) {
	q, err := xqparser.Parse(src)
	if err != nil {
		return nil, err
	}
	n, err := normalize.Normalize(q)
	if err != nil {
		return nil, err
	}
	pushed := ifpush.Push(n)

	opts := static.AllOptimizations()
	if cfg.Static != nil {
		opts = *cfg.Static
	}
	a, err := static.Analyze(pushed, opts)
	if err != nil {
		return nil, err
	}
	if cfg.Schema != nil {
		// Schema facts resolve conditions the DTD decides for every valid
		// document at compile time (earliest answering: the evaluator then
		// never waits for a witness event the schema already guarantees or
		// forbids). Projection and roles are untouched, so runtime behavior
		// changes only in WHEN conditions resolve.
		static.ApplySchemaFacts(a, cfg.Schema)
	}

	c := &Compiled{
		Source:    src,
		Mode:      cfg.Mode,
		Analysis:  a,
		MatchTree: a.Tree,
		schema:    cfg.Schema,
		tokOpts:   xmlstream.DefaultOptions(),
	}
	if cfg.Tokenizer != nil {
		c.tokOpts = *cfg.Tokenizer
	}
	if cfg.Mode == ModeFullBuffer {
		c.MatchTree = fullBufferTree()
	}
	c.agg = make([]bool, len(c.MatchTree.Roles))
	for i, r := range c.MatchTree.Roles {
		if i > 0 && r.Aggregate {
			c.agg[i] = true
		}
	}
	return c, nil
}

// fullBufferTree returns the keep-everything projection tree: a single
// aggregate dos::node() capture below the root.
func fullBufferTree() *projtree.Tree {
	t := projtree.New()
	leaf := t.AddNode(t.Root, xqast.Step{Axis: xqast.DescendantOrSelf, Test: xqast.NodeKindTest()})
	r := t.AddRole(leaf, projtree.RoleOutput, xqast.RootVar, true, "full-buffer capture")
	leaf.ChainRole = r.ID
	return t
}

// Stats aggregates the measurements of one run.
type Stats struct {
	Buffer buffer.Stats
	// TokensRead counts stream tokens consumed (the run may stop early if
	// the query needs only a prefix of the input).
	TokensRead int64
	// OutputBytes counts serialized output.
	OutputBytes int64
	// TTFRNanos is the time from run start to the first result byte
	// entering the output writer (0 when the run produced no output) —
	// the serving-tier latency metric: how long the projection/buffering
	// pipeline holds output back before results start to flow.
	TTFRNanos int64
	// WallNanos is the run's evaluation wall time.
	WallNanos int64
}

// RunOptions carries per-run hooks (tracing).
type RunOptions struct {
	// Trace, if non-nil, receives a buffer snapshot after every consumed
	// token and executed signOff (drives the Figure 2 example).
	Trace *Tracer
}

// maxRetainedSyms bounds the pooled symbol table across runs.
const maxRetainedSyms = 4096

// runState bundles the mutable per-run machinery of one evaluation: the
// tokenizer, the symbol table, the buffer (with its node arena), the
// projector, the output writer, and the evaluator. A runState is owned by
// exactly one run at a time and recycled through Compiled.pool, so after
// warm-up an Engine serves runs with near-zero steady-state allocation.
type runState struct {
	syms *xmlstream.SymTab
	buf  *buffer.Buffer
	tok  *xmlstream.Tokenizer
	proj *proj.Projector
	w    *xmlstream.Writer
	ev   *eval.Evaluator
}

// newRunState constructs the chain of Figure 11 once; subsequent runs
// reset it in place. The tokenizer lends text tokens to the projector
// (BorrowText), which copies only what it buffers.
func (c *Compiled) newRunState() *runState {
	syms := xmlstream.NewSymTab()
	buf := buffer.New(syms, len(c.MatchTree.Roles)-1, c.agg)
	tokOpts := c.tokOpts
	tokOpts.BorrowText = true
	tok := xmlstream.NewTokenizerOptions(nil, tokOpts)
	aggregateMatching := c.Mode == ModeFullBuffer || c.Analysis.Opts.AggregateRoles
	p := proj.New(tok, buf, c.MatchTree, proj.Options{
		AggregateRoles: aggregateMatching,
		Schema:         c.schema,
		BorrowedText:   true,
	})
	w := xmlstream.NewWriter(io.Discard)
	ev := eval.New(buf, p, w, eval.Options{})
	return &runState{syms: syms, buf: buf, tok: tok, proj: p, w: w, ev: ev}
}

// acquire takes a runState from the pool and points it at this run's
// input, output, and hooks.
func (c *Compiled) acquire(in io.Reader, out io.Writer, ro RunOptions) *runState {
	rs, _ := c.pool.Get().(*runState)
	if rs == nil {
		rs = c.newRunState()
	}
	rs.reset(c, in, out, ro)
	return rs
}

// reset points the runState at a new run's input, output, and hooks.
// Reset order matters: the projector rebuilds its root frame around the
// buffer's fresh root.
func (rs *runState) reset(c *Compiled, in io.Reader, out io.Writer, ro RunOptions) {
	rs.tok.Reset(in)
	rs.buf.Reset()
	// The symbol table survives runs (tag vocabularies repeat) but is
	// bounded: documents with generated per-document names must not grow
	// a pooled run state without limit. Safe only after buf.Reset — no
	// buffered node carries a Sym anymore.
	if rs.syms.Len() > maxRetainedSyms {
		rs.syms.Reset()
	}
	rs.proj.Reset()
	rs.w.Reset(out)
	evOpts := eval.Options{ExecuteSignOffs: c.Mode == ModeGCX, Schema: c.schema}
	if ro.Trace != nil {
		ro.Trace.install(&evOpts, rs.buf, rs.proj)
	}
	rs.ev.Reset(evOpts)
}

// release returns a runState to the pool, dropping the references to the
// caller's reader and writer, and resetting the buffer so the idle pool
// does not pin the document's buffered text.
func (c *Compiled) release(rs *runState) {
	rs.tok.Reset(nil)
	rs.w.Reset(io.Discard)
	rs.buf.Reset()
	c.pool.Put(rs)
}

// Run executes the compiled query over the XML input, writing the result
// to out. A Compiled is safe for concurrent use: each Run draws its own
// pooled run state; the run itself is strictly sequential (the paper's
// evaluation semantics).
func (c *Compiled) Run(in io.Reader, out io.Writer) (Stats, error) {
	st, rs, err := c.run(in, out, RunOptions{})
	c.release(rs)
	return st, err
}

// RunWith executes with hooks.
func (c *Compiled) RunWith(in io.Reader, out io.Writer, ro RunOptions) (Stats, error) {
	st, rs, err := c.run(in, out, ro)
	c.release(rs)
	return st, err
}

// RunChecked executes and then verifies the role assignment/removal
// balance (Section 3's safety requirements: every assigned role instance
// is removed, and the buffer is empty after evaluation). Only meaningful
// in ModeGCX; other modes skip the check by design.
func (c *Compiled) RunChecked(in io.Reader, out io.Writer) (Stats, error) {
	st, rs, err := c.run(in, out, RunOptions{})
	defer c.release(rs)
	if err != nil {
		return st, err
	}
	if c.Mode == ModeGCX {
		if err := rs.buf.CheckBalance(); err != nil {
			return st, fmt.Errorf("%w\nbuffer:\n%s", err, rs.buf.Dump())
		}
		if err := rs.buf.CheckResidue(); err != nil {
			return st, fmt.Errorf("%w\nbuffer:\n%s", err, rs.buf.Dump())
		}
	}
	return st, nil
}

func (c *Compiled) run(in io.Reader, out io.Writer, ro RunOptions) (Stats, *runState, error) {
	start := obs.Now()
	rs := c.acquire(in, out, ro)
	err := rs.ev.Run(c.Analysis.Query)
	st := Stats{
		Buffer:      rs.buf.Stats(),
		TokensRead:  rs.proj.TokensRead(),
		OutputBytes: rs.w.BytesWritten(),
		WallNanos:   obs.Now() - start,
	}
	// The writer stamped the first result byte as it was produced; a run
	// with no output keeps TTFR 0 (there was never a first result), and
	// so does a failed run whose buffered bytes never reached the
	// destination — nothing was answered, so there is no answer latency.
	if fb := rs.w.FirstByteAt(); fb > 0 && rs.w.Delivered() > 0 {
		st.TTFRNanos = max(fb-start, 1)
	}
	return st, rs, err
}

// Explain renders the compilation diagnostics: variable tree,
// dependencies, projection tree, role table, and the rewritten query.
func (c *Compiled) Explain() string {
	a := c.Analysis
	return "mode: " + c.Mode.String() + "\n\n" +
		"variable tree:\n" + a.FormatVariableTree() + "\n" +
		"dependencies:\n" + a.FormatDeps() + "\n" +
		"projection tree:\n" + a.Tree.Format() + "\n" +
		"roles:\n" + a.Tree.FormatRoles() + "\n" +
		"rewritten query:\n" + xqast.Format(a.Query)
}
