package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"gcx/internal/static"
	"gcx/internal/xqast"
)

// --- randomized documents ---

var quickTags = []string{"a", "b", "c", "d", "e"}
var quickTexts = []string{"1", "7", "42", "x", "yy", "person0"}

func randDoc(r *rand.Rand) string {
	var b strings.Builder
	var gen func(depth int)
	gen = func(depth int) {
		tag := quickTags[r.Intn(len(quickTags))]
		b.WriteString("<" + tag + ">")
		n := r.Intn(4)
		if depth >= 4 {
			n = 0
		}
		for i := 0; i < n; i++ {
			if r.Intn(3) == 0 {
				b.WriteString(quickTexts[r.Intn(len(quickTexts))])
			} else {
				gen(depth + 1)
			}
		}
		b.WriteString("</" + tag + ">")
	}
	b.WriteString("<root>")
	for i := 0; i < 1+r.Intn(3); i++ {
		gen(0)
	}
	b.WriteString("</root>")
	return b.String()
}

// --- randomized queries over the XQ fragment ---

type queryGen struct {
	r       *rand.Rand
	counter int
}

func (g *queryGen) fresh() string {
	g.counter++
	return fmt.Sprintf("v%d", g.counter)
}

func (g *queryGen) step() xqast.Step {
	axis := xqast.Child
	if g.r.Intn(3) == 0 {
		axis = xqast.Descendant
	}
	var test xqast.NodeTest
	switch g.r.Intn(8) {
	case 0:
		test = xqast.StarTest()
	case 1:
		test = xqast.TextTest()
	default:
		test = xqast.NameTest(quickTags[g.r.Intn(len(quickTags))])
	}
	return xqast.Step{Axis: axis, Test: test}
}

// elementStep avoids text() (for loop paths that will be navigated from).
func (g *queryGen) elementStep() xqast.Step {
	s := g.step()
	if s.Test.Kind == xqast.TestText {
		s.Test = xqast.NameTest(quickTags[g.r.Intn(len(quickTags))])
	}
	return s
}

func (g *queryGen) path(env []string, steps int, element bool) xqast.Path {
	p := xqast.Path{Var: env[g.r.Intn(len(env))]}
	for i := 0; i < steps; i++ {
		if element || i < steps-1 {
			p.Steps = append(p.Steps, g.elementStep())
		} else {
			p.Steps = append(p.Steps, g.step())
		}
	}
	return p
}

func (g *queryGen) cond(env []string, depth int) xqast.Cond {
	switch g.r.Intn(6) {
	case 0:
		return xqast.TrueCond{}
	case 1:
		if depth < 2 {
			return xqast.And{L: g.cond(env, depth+1), R: g.cond(env, depth+1)}
		}
		fallthrough
	case 2:
		if depth < 2 {
			return xqast.Not{C: g.cond(env, depth+1)}
		}
		fallthrough
	case 3:
		lhs := xqast.Operand{Path: g.path(env, 1+g.r.Intn(2), false)}
		var rhs xqast.Operand
		if g.r.Intn(2) == 0 {
			rhs = xqast.Operand{IsLiteral: true, Lit: quickTexts[g.r.Intn(len(quickTexts))]}
		} else {
			rhs = xqast.Operand{Path: g.path(env, 1+g.r.Intn(2), false)}
		}
		ops := []xqast.RelOp{xqast.OpEq, xqast.OpNe, xqast.OpLt, xqast.OpLe, xqast.OpGt, xqast.OpGe}
		return xqast.Compare{LHS: lhs, Op: ops[g.r.Intn(len(ops))], RHS: rhs}
	default:
		return xqast.Exists{Path: g.path(env, 1+g.r.Intn(2), false)}
	}
}

func (g *queryGen) expr(env []string, depth int) xqast.Expr {
	max := 7
	if depth >= 3 {
		max = 3 // only leaves
	}
	switch g.r.Intn(max) {
	case 0:
		return xqast.Text{Data: "t"}
	case 1:
		// Bare variable output.
		return xqast.VarRef{Var: env[g.r.Intn(len(env))]}
	case 2:
		return xqast.PathExpr{Path: g.path(env, 1+g.r.Intn(2), false)}
	case 3:
		return xqast.Element{Name: "x", Child: g.expr(env, depth+1)}
	case 4:
		items := []xqast.Expr{g.expr(env, depth+1), g.expr(env, depth+1)}
		return xqast.Sequence{Items: items}
	case 5:
		return xqast.If{Cond: g.cond(env, 0), Then: g.expr(env, depth+1), Else: g.expr(env, depth+1)}
	default:
		v := g.fresh()
		in := g.path(env, 1+g.r.Intn(2), g.r.Intn(4) != 0)
		body := g.expr(append(append([]string(nil), env...), v), depth+1)
		return xqast.For{Var: v, In: in, Return: body}
	}
}

func (g *queryGen) query() string {
	root := xqast.Element{Name: "out", Child: g.expr([]string{xqast.RootVar}, 0)}
	return xqast.Format(&xqast.Query{Root: root})
}

// TestTheorem1Equivalence is the paper's correctness theorem as a property
// test: for random documents and random XQ queries, the GCX evaluation
// (projection + signOffs + active GC, under every optimization mix) equals
// the reference evaluation over the fully buffered document, and the role
// balance invariants hold.
func TestTheorem1Equivalence(t *testing.T) {
	optsets := []static.Options{
		{},
		{AggregateRoles: true},
		{EarlyUpdates: true},
		{EliminateRedundantRoles: true},
		static.AllOptimizations(),
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := &queryGen{r: r}
		src := g.query()
		doc := randDoc(r)

		ref, err := Compile(src, Config{Mode: ModeFullBuffer})
		if err != nil {
			t.Logf("seed %d: compile: %v\n%s", seed, err, src)
			return false
		}
		var want strings.Builder
		if _, err := ref.Run(strings.NewReader(doc), &want); err != nil {
			t.Logf("seed %d: reference run: %v\n%s\n%s", seed, err, src, doc)
			return false
		}

		for i := range optsets {
			o := optsets[i]
			c, err := Compile(src, Config{Mode: ModeGCX, Static: &o})
			if err != nil {
				t.Logf("seed %d opts %+v: compile: %v", seed, o, err)
				return false
			}
			var got strings.Builder
			if _, err := c.RunChecked(strings.NewReader(doc), &got); err != nil {
				t.Logf("seed %d opts %+v: gcx run: %v\nquery:\n%s\ndoc: %s", seed, o, err, src, doc)
				return false
			}
			if got.String() != want.String() {
				t.Logf("seed %d opts %+v: output mismatch\nquery:\n%s\ndoc: %s\ngcx:  %s\nref:  %s",
					seed, o, src, doc, got.String(), want.String())
				return false
			}
		}
		// StaticOnly must agree as well (projection alone is lossless).
		so, err := Compile(src, Config{Mode: ModeStaticOnly})
		if err != nil {
			return false
		}
		var got strings.Builder
		if _, err := so.Run(strings.NewReader(doc), &got); err != nil {
			t.Logf("seed %d: static-only run: %v\nquery:\n%s\ndoc: %s", seed, err, src, doc)
			return false
		}
		if got.String() != want.String() {
			t.Logf("seed %d: static-only mismatch\nquery:\n%s\ndoc: %s\nso:  %s\nref: %s",
				seed, src, doc, got.String(), want.String())
			return false
		}
		return true
	}
	n := 150
	if testing.Short() {
		n = 25
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
}
