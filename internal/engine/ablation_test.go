package engine

import (
	"strings"
	"testing"

	"gcx/internal/static"
)

// TestEarlyUpdatesReducePeak: with many output matches per binding and
// interleaved irrelevant content, early updates release each output node
// right after emission instead of at the end of the enclosing scope
// (Section 6, "Early Updates"). The peak buffer shrinks accordingly.
func TestEarlyUpdatesReducePeak(t *testing.T) {
	var doc strings.Builder
	doc.WriteString("<bib><book>")
	for i := 0; i < 200; i++ {
		doc.WriteString("<title>some title text</title><junk>filler</junk>")
	}
	doc.WriteString("</book></bib>")
	src := `<q>{ for $b in /bib/book return $b/title }</q>`

	with := static.Options{EarlyUpdates: true, AggregateRoles: true, EliminateRedundantRoles: true}
	without := static.Options{AggregateRoles: true, EliminateRedundantRoles: true}

	_, stWith := runQuery(t, src, doc.String(), Config{Mode: ModeGCX, Static: &with})
	_, stWithout := runQuery(t, src, doc.String(), Config{Mode: ModeGCX, Static: &without})

	if stWith.Buffer.PeakNodes*10 > stWithout.Buffer.PeakNodes {
		t.Fatalf("early updates must reduce the peak by >10x: with=%d without=%d",
			stWith.Buffer.PeakNodes, stWithout.Buffer.PeakNodes)
	}
}

// TestAggregateRolesReduceAssignments: aggregate roles replace one role
// instance per subtree node by a single instance at the subtree root
// (Section 6, "Aggregate Roles").
func TestAggregateRolesReduceAssignments(t *testing.T) {
	var doc strings.Builder
	doc.WriteString("<bib>")
	for i := 0; i < 50; i++ {
		doc.WriteString("<book><a><b><c>deep</c></b></a><d>x</d><e>y</e></book>")
	}
	doc.WriteString("</bib>")
	src := `<q>{ for $b in /bib/book return $b }</q>`

	agg := static.Options{AggregateRoles: true}
	plain := static.Options{}

	_, stAgg := runQuery(t, src, doc.String(), Config{Mode: ModeGCX, Static: &agg})
	_, stPlain := runQuery(t, src, doc.String(), Config{Mode: ModeGCX, Static: &plain})

	if stAgg.Buffer.RoleAssignments*3 > stPlain.Buffer.RoleAssignments {
		t.Fatalf("aggregate roles must cut assignments by >3x: agg=%d plain=%d",
			stAgg.Buffer.RoleAssignments, stPlain.Buffer.RoleAssignments)
	}
	// Both runs stay balanced.
	for _, cfg := range []static.Options{agg, plain} {
		cfg := cfg
		c := compile(t, src, Config{Mode: ModeGCX, Static: &cfg})
		var out strings.Builder
		if _, err := c.RunChecked(strings.NewReader(doc.String()), &out); err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
	}
}

// TestRoleEliminationReducesSignOffs: eliminated roles are neither
// assigned nor signed off (Section 6, Figure 12).
func TestRoleEliminationReducesSignOffs(t *testing.T) {
	var doc strings.Builder
	doc.WriteString("<bib>")
	for i := 0; i < 100; i++ {
		doc.WriteString("<book><title>t</title></book>")
	}
	doc.WriteString("</bib>")
	src := `<q>{ for $b in /bib/book return $b/title }</q>`

	elim := static.Options{EliminateRedundantRoles: true, AggregateRoles: true}
	keep := static.Options{AggregateRoles: true}

	_, stElim := runQuery(t, src, doc.String(), Config{Mode: ModeGCX, Static: &elim})
	_, stKeep := runQuery(t, src, doc.String(), Config{Mode: ModeGCX, Static: &keep})

	if stElim.Buffer.SignOffs >= stKeep.Buffer.SignOffs {
		t.Fatalf("elimination must reduce signOff executions: elim=%d keep=%d",
			stElim.Buffer.SignOffs, stKeep.Buffer.SignOffs)
	}
	if stElim.Buffer.RoleAssignments >= stKeep.Buffer.RoleAssignments {
		t.Fatalf("elimination must reduce role assignments: elim=%d keep=%d",
			stElim.Buffer.RoleAssignments, stKeep.Buffer.RoleAssignments)
	}
}

// TestProjectionBeatsFullBuffering quantifies projection effectiveness:
// on a selective query, the projected token count is a tiny fraction of
// the document.
func TestProjectionSelectivity(t *testing.T) {
	var doc strings.Builder
	doc.WriteString("<site><people>")
	for i := 0; i < 100; i++ {
		doc.WriteString("<person><id>p</id><name>n</name></person>")
	}
	doc.WriteString("</people><other>")
	for i := 0; i < 5000; i++ {
		doc.WriteString("<noise><deep>zzz</deep></noise>")
	}
	doc.WriteString("</other></site>")

	src := `<q>{ for $p in /site/people/person return $p/name }</q>`
	_, st := runQuery(t, src, doc.String(), Config{Mode: ModeGCX})
	// ~10k noise elements are read but never buffered.
	if st.Buffer.NodesAppended > 1000 {
		t.Fatalf("buffered %d nodes; projection must skip the noise", st.Buffer.NodesAppended)
	}
	if st.TokensRead < 10000 {
		t.Fatalf("tokens read %d; the whole stream must have been scanned", st.TokensRead)
	}
}
