package engine

import (
	"errors"
	"io"
	"strings"
	"testing"
)

// failingReader yields n bytes of src and then a non-EOF error.
type failingReader struct {
	src io.Reader
	n   int
}

func (r *failingReader) Read(p []byte) (int, error) {
	if r.n <= 0 {
		return 0, errors.New("disk on fire")
	}
	if len(p) > r.n {
		p = p[:r.n]
	}
	m, err := r.src.Read(p)
	r.n -= m
	return m, err
}

// failingWriter accepts n bytes and then errors.
type failingWriter struct{ n int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("pipe closed")
	}
	if len(p) > w.n {
		m := w.n
		w.n = 0
		return m, errors.New("pipe closed")
	}
	w.n -= len(p)
	return len(p), nil
}

func TestReadErrorMidStreamSurfaces(t *testing.T) {
	doc := `<bib>` + strings.Repeat(`<book><title>t</title></book>`, 100) + `</bib>`
	c := compile(t, `<q>{ for $b in /bib/book return $b/title }</q>`, Config{Mode: ModeGCX})
	_, err := c.Run(&failingReader{src: strings.NewReader(doc), n: 200}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("read error must surface verbatim, got %v", err)
	}
}

func TestWriteErrorSurfaces(t *testing.T) {
	doc := `<bib>` + strings.Repeat(`<book><title>some title</title></book>`, 500) + `</bib>`
	c := compile(t, `<q>{ for $b in /bib/book return $b/title }</q>`, Config{Mode: ModeGCX})
	_, err := c.Run(strings.NewReader(doc), &failingWriter{n: 64})
	if err == nil || !strings.Contains(err.Error(), "pipe closed") {
		t.Fatalf("write error must surface, got %v", err)
	}
}

func TestEmptyInputFails(t *testing.T) {
	c := compile(t, `<q>{ for $b in /a return $b }</q>`, Config{Mode: ModeGCX})
	// An empty stream has no root element; the loop needs the root region
	// finished, which happens at EOF, so evaluation completes with empty
	// output (an empty document is a degenerate but safe input).
	var out strings.Builder
	if _, err := c.Run(strings.NewReader(""), &out); err != nil {
		t.Fatalf("empty input must be tolerated, got %v", err)
	}
	if out.String() != "<q></q>" {
		t.Fatalf("output: %s", out.String())
	}
}

func TestDeepNesting(t *testing.T) {
	// 10k-deep nesting must not blow the stack in tokenizer, projector,
	// or buffer reclamation.
	depth := 10000
	var b strings.Builder
	for i := 0; i < depth; i++ {
		b.WriteString("<d>")
	}
	b.WriteString("<leaf>x</leaf>")
	for i := 0; i < depth; i++ {
		b.WriteString("</d>")
	}
	c := compile(t, `<q>{ for $l in //leaf return $l }</q>`, Config{Mode: ModeGCX})
	var out strings.Builder
	if _, err := c.RunChecked(strings.NewReader(b.String()), &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != "<q><leaf>x</leaf></q>" {
		t.Fatalf("output: %s", out.String())
	}
}

// TestManySiblingsGC: a million-sibling region streams through a bounded
// buffer.
func TestManySiblingsGC(t *testing.T) {
	if testing.Short() {
		t.Skip("large input")
	}
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 200000; i++ {
		b.WriteString("<x><v>7</v></x>")
	}
	b.WriteString("</r>")
	c := compile(t, `<q>{ for $x in /r/x return $x/v }</q>`, Config{Mode: ModeGCX})
	var out countingDiscard
	st, err := c.RunChecked(strings.NewReader(b.String()), &out)
	if err != nil {
		t.Fatal(err)
	}
	if st.Buffer.PeakNodes > 16 {
		t.Fatalf("peak %d nodes; streaming must bound the buffer", st.Buffer.PeakNodes)
	}
	if out.n == 0 {
		t.Fatal("no output produced")
	}
}

type countingDiscard struct{ n int64 }

func (c *countingDiscard) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}
