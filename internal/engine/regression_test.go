package engine

import (
	"strings"
	"testing"

	"gcx/internal/static"
)

// TestRegressionTextVarElimination is the minimized counterexample found
// by TestTheorem1Equivalence (seed -8509200338473775066): a text() output
// loop inside a navigation-transparent body. Criterion 2 of redundant-role
// elimination must not eliminate the binding role of a text-binding
// variable — text nodes carry no dos dependency, so the binding role is
// the only thing keeping the emitted text buffered across the first
// (match-less) pass.
func TestRegressionTextVarElimination(t *testing.T) {
	src := `<out>{ ($root/d/e, $root//d/text()) }</out>`
	doc := `<root><d>1<c><a>xperson0</a>71</c>x</d><a>1</a></root>`
	want := `<out>1x</out>`

	for _, cfg := range allConfigs() {
		got, _ := runQuery(t, src, doc, cfg)
		if got != want {
			t.Fatalf("%s %+v:\ngot  %s\nwant %s", cfg.Mode, cfg.Static, got, want)
		}
	}
}

// TestTextVarBindingRoleSurvivesElimination pins the static-analysis side
// of the regression: the binding role of a text() loop variable stays
// active even under full optimization.
func TestTextVarBindingRoleSurvivesElimination(t *testing.T) {
	opts := static.AllOptimizations()
	c := compile(t, `<out>{ for $tv in /root/d/text() return $tv }</out>`,
		Config{Mode: ModeGCX, Static: &opts})
	found := false
	for _, r := range c.Analysis.Tree.Roles[1:] {
		if r.Var == "tv" && r.Kind.String() == "binding" {
			found = true
			if r.Eliminated {
				t.Fatal("text-binding role must never be eliminated")
			}
		}
	}
	if !found {
		t.Fatal("text loop variable not found in role table")
	}
	// And the run produces the text.
	var out strings.Builder
	if _, err := c.RunChecked(strings.NewReader(`<root><d>ab<x/>cd</d></root>`), &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != "<out>abcd</out>" {
		t.Fatalf("got %s", out.String())
	}
}
