package engine

import (
	"strings"
	"testing"

	"gcx/internal/static"
)

// TestRegressionTextVarElimination is the minimized counterexample found
// by TestTheorem1Equivalence (seed -8509200338473775066): a text() output
// loop inside a navigation-transparent body. Criterion 2 of redundant-role
// elimination must not eliminate the binding role of a text-binding
// variable — text nodes carry no dos dependency, so the binding role is
// the only thing keeping the emitted text buffered across the first
// (match-less) pass.
func TestRegressionTextVarElimination(t *testing.T) {
	src := `<out>{ ($root/d/e, $root//d/text()) }</out>`
	doc := `<root><d>1<c><a>xperson0</a>71</c>x</d><a>1</a></root>`
	want := `<out>1x</out>`

	for _, cfg := range allConfigs() {
		got, _ := runQuery(t, src, doc, cfg)
		if got != want {
			t.Fatalf("%s %+v:\ngot  %s\nwant %s", cfg.Mode, cfg.Static, got, want)
		}
	}
}

// TestRegressionOverlappingDescendantAnchors is the minimized
// counterexample found by TestTheorem1Equivalence (seed
// -1002668537322759271): under overlapping descendant steps (//*//*),
// one element's frame anchors instances of two different variables, and
// signOff cancellation keyed on (role, anchor frame) wrongly suppressed
// the binding-role assignment of a later, separate binding instance of
// the same variable — whose own signOff then failed with an undefined
// removal. Cancellation must only suppress chain continuations (Var ==
// "" projection nodes), never fresh variable matches.
func TestRegressionOverlappingDescendantAnchors(t *testing.T) {
	src := `<out>{ for $v1 in $root//*//* return text { "t" } }</out>`
	docs := []struct{ doc, want string }{
		{`<root><c><a><b></b></a></c></root>`, "<out>" + strings.Repeat("t", 6) + "</out>"},
		{`<root><c><a><c><b></b></c><c><e><e></e></e>x</c></a><a>person0<d><b>yy</b><a><b></b><a></a></a></d>yy</a></c><b></b><d></d></root>`,
			"<out>" + strings.Repeat("t", 47) + "</out>"},
	}
	for _, d := range docs {
		for _, cfg := range allConfigs() {
			got, _ := runQuery(t, src, d.doc, cfg)
			if got != d.want {
				t.Fatalf("%s %+v:\ngot  %s\nwant %s", cfg.Mode, cfg.Static, got, d.want)
			}
		}
	}
}

// TestRegressionFirstWitnessPerInstance is the minimized counterexample
// found by TestTheorem1Equivalence (seed -9075395493618128140): the [1]
// first-witness suppression was keyed per (owner frame, projection node),
// but one element can host several instances of the same projection node
// — one per anchoring variable binding under overlapping descendant steps
// (//c below //*). Each instance owns its own witness: signOff resolution
// removes one role instance per derivation, so suppressing the second
// instance's witness assignment left its signOff with an undefined
// removal.
func TestRegressionFirstWitnessPerInstance(t *testing.T) {
	src := `<out>{ for $v1 in $root//* return if (exists($v1//c//b)) then text { "t" } else () }</out>`
	docs := []struct{ doc, want string }{
		// root and the outer c both anchor a //c instance at the inner c.
		{`<root><c><c><b></b></c></c></root>`, "<out>tt</out>"},
		{`<root><c><a><c><b></b></c></a></c></root>`, "<out>ttt</out>"},
		// The original (unminimized) counterexample document.
		{`<root><a><c>x</c></a><b></b><c>xperson0<a><c>xperson0yy</c>1<c><a><b></b></a></c></a></c></root>`,
			"<out>ttt</out>"},
	}
	for _, d := range docs {
		for _, cfg := range allConfigs() {
			got, _ := runQuery(t, src, d.doc, cfg)
			if got != d.want {
				t.Fatalf("%s %+v:\ngot  %s\nwant %s", cfg.Mode, cfg.Static, got, d.want)
			}
		}
	}
}

// TestRegressionCancelOneInstance is the minimized counterexample found
// by TestTheorem1Equivalence (seed -8741672307750023696): an element can
// carry several derivation instances of one output role (//b below //*
// reaches b once per ancestor binding, merged into one capture), and a
// signOff executed while the element is still open must retire exactly
// ONE instance — deactivating the whole capture starved the remaining
// instance's descendants of the role, so its own later signOff failed
// with an undefined removal. The unexecuted else-branch matters: without
// it the loop body serializes b, which forces the closing tag to be read
// before the signOff, hiding the unfinished-subtree path.
func TestRegressionCancelOneInstance(t *testing.T) {
	src := `<out>{ if (true()) then text { "t" } else <x>{ $root//*//b }</x> }</out>`
	docs := []struct{ doc, want string }{
		{`<root><a><b>42<e>x</e></b></a></root>`, "<out>t</out>"},
		{`<root><c></c><a>person0<b>42<e>person0</e></b></a><a>1</a></root>`, "<out>t</out>"},
	}
	for _, d := range docs {
		for _, cfg := range allConfigs() {
			got, _ := runQuery(t, src, d.doc, cfg)
			if got != d.want {
				t.Fatalf("%s %+v:\ngot  %s\nwant %s", cfg.Mode, cfg.Static, got, d.want)
			}
		}
	}
}

// TestTextVarBindingRoleSurvivesElimination pins the static-analysis side
// of the regression: the binding role of a text() loop variable stays
// active even under full optimization.
func TestTextVarBindingRoleSurvivesElimination(t *testing.T) {
	opts := static.AllOptimizations()
	c := compile(t, `<out>{ for $tv in /root/d/text() return $tv }</out>`,
		Config{Mode: ModeGCX, Static: &opts})
	found := false
	for _, r := range c.Analysis.Tree.Roles[1:] {
		if r.Var == "tv" && r.Kind.String() == "binding" {
			found = true
			if r.Eliminated {
				t.Fatal("text-binding role must never be eliminated")
			}
		}
	}
	if !found {
		t.Fatal("text loop variable not found in role table")
	}
	// And the run produces the text.
	var out strings.Builder
	if _, err := c.RunChecked(strings.NewReader(`<root><d>ab<x/>cd</d></root>`), &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != "<out>abcd</out>" {
		t.Fatalf("got %s", out.String())
	}
}
