package engine

import (
	"fmt"
	"strings"

	"gcx/internal/buffer"
	"gcx/internal/eval"
	"gcx/internal/proj"
	"gcx/internal/xqast"
)

// Tracer records a step-by-step log of query evaluation: after every
// consumed input token and every executed signOff statement it snapshots
// the buffer contents. This regenerates the paper's Figure 2 ("Active
// garbage collection") for arbitrary queries and inputs.
type Tracer struct {
	Steps []TraceStep
	// Limit bounds the number of recorded steps (0 = unbounded).
	// Evaluation continues past the bound — tracing is an observer, never
	// a governor — but further events are dropped and Truncated is set.
	// Servers use this so a deep trace over an arbitrarily large document
	// holds a bounded number of buffer snapshots.
	Limit int
	// Truncated reports whether the Limit dropped at least one event.
	Truncated bool
}

// full reports (and records) that the step bound is exhausted. Checked
// before building a step: buffer dumps are expensive, and past the limit
// they would be thrown away.
func (t *Tracer) full() bool {
	if t.Limit > 0 && len(t.Steps) >= t.Limit {
		t.Truncated = true
		return true
	}
	return false
}

// TraceStep is one recorded event.
type TraceStep struct {
	// Event describes what happened, e.g. `read <book>` or
	// `signOff($x, r3)`.
	Event string
	// Buffer is the indented buffer dump after the event.
	Buffer string
}

func (t *Tracer) install(opts *eval.Options, buf *buffer.Buffer, p *proj.Projector) {
	// LastToken snapshots are pay-for-use: the projector copies token
	// data only while a tracer is watching.
	p.TrackLastToken(true)
	opts.OnToken = func() {
		if t.full() {
			return
		}
		t.Steps = append(t.Steps, TraceStep{
			Event:  "read " + p.LastToken().String(),
			Buffer: buf.Dump(),
		})
	}
	opts.OnSignOff = func(s xqast.SignOff) {
		if t.full() {
			return
		}
		t.Steps = append(t.Steps, TraceStep{
			Event:  fmt.Sprintf("signOff(%s, r%d)", s.Path, s.Role),
			Buffer: buf.Dump(),
		})
	}
}

// Format renders the trace as a two-column table in the spirit of
// Figure 2.
func (t *Tracer) Format() string {
	var b strings.Builder
	for i, s := range t.Steps {
		fmt.Fprintf(&b, "step %d: %s\n", i+1, s.Event)
		if s.Buffer == "" {
			b.WriteString("  (buffer empty)\n")
			continue
		}
		for _, line := range strings.Split(strings.TrimRight(s.Buffer, "\n"), "\n") {
			b.WriteString("  | " + line + "\n")
		}
	}
	return b.String()
}
