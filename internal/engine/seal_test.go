package engine

// Schema-scheduled flushing (sealing): with a DTD, a buffered element is
// marked finished the moment its content model proves no further child can
// arrive — before its end tag is read (Koch/Scherzinger, cs/0406016).
// Cursors and blocking waits observe Finished() early; physical
// reclamation still waits for the real end tag, so an invalid document can
// at worst produce the output its broken structure implies, never corrupt
// the arena.

import (
	"strings"
	"testing"

	"gcx/internal/dtd"
)

// TestSealStarLoopEndsBeforeEndTag: a star-axis loop has no tag for the
// NoMoreAfter fact to kill, so without a schema its region runs to the
// context's end tag. ContentComplete seals the context at the last child's
// close instead: the run finishes strictly earlier in the stream.
func TestSealStarLoopEndsBeforeEndTag(t *testing.T) {
	schema, err := dtd.Parse(`
<!ELEMENT db (part)>
<!ELEMENT part (a, b)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
`)
	if err != nil {
		t.Fatal(err)
	}
	src := `<q>{ for $c in /db/* return for $g in $c/* return <hit/> }</q>`
	doc := `<db><part><a>1</a><b>2</b></part></db>`

	plain := compile(t, src, Config{Mode: ModeGCX})
	var out1 strings.Builder
	stPlain, err := plain.RunChecked(strings.NewReader(doc), &out1)
	if err != nil {
		t.Fatal(err)
	}
	sealed := compile(t, src, Config{Mode: ModeGCX, Schema: schema})
	var out2 strings.Builder
	stSealed, err := sealed.RunChecked(strings.NewReader(doc), &out2)
	if err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Fatalf("sealing must not change results:\nplain:  %s\nsealed: %s", out1.String(), out2.String())
	}
	if want := "<q><hit></hit><hit></hit></q>"; out1.String() != want {
		t.Fatalf("got %s, want %s", out1.String(), want)
	}
	// Plain evaluation pulls </part> (and </db>) to finish the star
	// regions; the sealed run is done when <b> closes.
	if stSealed.TokensRead >= stPlain.TokensRead {
		t.Fatalf("seal must end the run before the end tags: sealed read %d tokens, plain %d",
			stSealed.TokensRead, stPlain.TokensRead)
	}
}

// TestSealEmptyElement: an element declared EMPTY is complete the moment
// it opens. A star loop over its children terminates without waiting for
// the close tag, and output is unchanged.
func TestSealEmptyElement(t *testing.T) {
	schema, err := dtd.Parse(`
<!ELEMENT db (hr)>
<!ELEMENT hr EMPTY>
`)
	if err != nil {
		t.Fatal(err)
	}
	src := `<q>{ for $h in /db/* return for $c in $h/* return <hit/> }</q>`
	doc := `<db><hr></hr></db>`

	plain := compile(t, src, Config{Mode: ModeGCX})
	var out1 strings.Builder
	stPlain, err := plain.RunChecked(strings.NewReader(doc), &out1)
	if err != nil {
		t.Fatal(err)
	}
	sealed := compile(t, src, Config{Mode: ModeGCX, Schema: schema})
	var out2 strings.Builder
	stSealed, err := sealed.RunChecked(strings.NewReader(doc), &out2)
	if err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Fatalf("sealing must not change results:\nplain:  %s\nsealed: %s", out1.String(), out2.String())
	}
	if want := "<q></q>"; out1.String() != want {
		t.Fatalf("got %s, want %s", out1.String(), want)
	}
	if stSealed.TokensRead > stPlain.TokensRead {
		t.Fatalf("sealed run read more tokens (%d) than plain (%d)", stSealed.TokensRead, stPlain.TokensRead)
	}
}

// TestSealRefusedForMixedContent: mixed content models never seal (their
// global repetition means nothing is final), and a parent whose projection
// wants text nodes must not be sealed even when the last child element
// closed — element-content whitespace may still arrive. Both runs must
// agree byte for byte.
func TestSealRefusedForMixedContent(t *testing.T) {
	schema, err := dtd.Parse(`
<!ELEMENT db (note)>
<!ELEMENT note (#PCDATA | em)*>
<!ELEMENT em (#PCDATA)>
`)
	if err != nil {
		t.Fatal(err)
	}
	src := `<q>{ for $n in /db/note return $n }</q>`
	doc := `<db><note>pre<em>mid</em>post</note></db>`

	plain := compile(t, src, Config{Mode: ModeGCX})
	var out1 strings.Builder
	if _, err := plain.RunChecked(strings.NewReader(doc), &out1); err != nil {
		t.Fatal(err)
	}
	sealed := compile(t, src, Config{Mode: ModeGCX, Schema: schema})
	var out2 strings.Builder
	if _, err := sealed.RunChecked(strings.NewReader(doc), &out2); err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Fatalf("sealing must not change results:\nplain:  %s\nsealed: %s", out1.String(), out2.String())
	}
	if !strings.Contains(out1.String(), "post") {
		t.Fatalf("text after the last child element must survive: %s", out1.String())
	}
}

// TestSchemaFlushLowersPeak is the acceptance check of schema-scheduled
// flushing on a catalog query: an accumulation query buffers every title
// while a blocking condition at the catalog's end stays unanswered. The
// content model answers the condition at the FIRST book instead, so the
// accumulated buffer flushes immediately and the peak drops strictly.
func TestSchemaFlushLowersPeak(t *testing.T) {
	schema, err := dtd.Parse(`
<!ELEMENT bib (journal?, book*)>
<!ELEMENT journal (#PCDATA)>
<!ELEMENT book (title, price)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT price (#PCDATA)>
`)
	if err != nil {
		t.Fatal(err)
	}
	src := `<q>{ if (exists(/bib/journal)) then (for $b in /bib/book return $b/title) else () }</q>`
	var b strings.Builder
	b.WriteString("<bib>")
	for i := 0; i < 200; i++ {
		b.WriteString("<book><title>streaming xquery</title><price>10</price></book>")
	}
	b.WriteString("</bib>")
	doc := b.String()

	plain := compile(t, src, Config{Mode: ModeGCX})
	var out1 strings.Builder
	stPlain, err := plain.RunChecked(strings.NewReader(doc), &out1)
	if err != nil {
		t.Fatal(err)
	}
	scheduled := compile(t, src, Config{Mode: ModeGCX, Schema: schema})
	var out2 strings.Builder
	stSched, err := scheduled.RunChecked(strings.NewReader(doc), &out2)
	if err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Fatalf("schema must not change results:\nplain:  %.200s\nschema: %.200s", out1.String(), out2.String())
	}
	// Without the schema every title is buffered until </bib> proves the
	// journal absent; with it, the condition resolves at the first book.
	if stPlain.Buffer.PeakNodes < 200 {
		t.Fatalf("plain peak %d nodes: expected the full title accumulation", stPlain.Buffer.PeakNodes)
	}
	if stSched.Buffer.PeakNodes*4 > stPlain.Buffer.PeakNodes {
		t.Fatalf("schema-scheduled peak %d nodes vs plain %d: expected a strict, large reduction",
			stSched.Buffer.PeakNodes, stPlain.Buffer.PeakNodes)
	}
}
