package xmlstream

import (
	"fmt"
	"strings"
	"testing"
)

// TestCharRefValidation: numeric character references must denote XML
// Chars. Surrogates, NUL, #xFFFE/#xFFFF, and values above #x10FFFF used
// to slip through ParseUint+appendRune and corrupt downstream UTF-8.
func TestCharRefValidation(t *testing.T) {
	bad := []struct {
		name  string
		input string
	}{
		{"NUL", `<a>&#0;</a>`},
		{"control", `<a>&#x1F;</a>`},
		{"high surrogate", `<a>&#xD83D;</a>`},
		{"low surrogate", `<a>&#xDE00;</a>`},
		{"FFFE", `<a>&#xFFFE;</a>`},
		{"FFFF", `<a>&#xFFFF;</a>`},
		{"above max", `<a>&#x110000;</a>`},
		{"way above max", `<a>&#4294967295;</a>`},
		{"in attribute", `<a x="&#xD800;"/>`},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			_, err := collectErr(tc.input, DefaultOptions())
			if err == nil {
				t.Fatalf("input %q: want *SyntaxError, got none", tc.input)
			}
			if _, ok := err.(*SyntaxError); !ok {
				t.Fatalf("input %q: want *SyntaxError, got %T: %v", tc.input, err, err)
			}
		})
	}

	good := []struct {
		input string
		want  string
	}{
		{`<a>&#x9;</a>`, "\t"},
		{`<a>&#65;</a>`, "A"},
		{`<a>&#xD7FF;</a>`, "퟿"},
		{`<a>&#xE000;</a>`, ""},
		{`<a>&#x10FFFF;</a>`, "\U0010FFFF"},
	}
	opts := DefaultOptions()
	opts.KeepWhitespaceText = true
	for _, tc := range good {
		toks := collect(t, tc.input, opts)
		if len(toks) != 3 || toks[1].Data != tc.want {
			t.Fatalf("input %q: got %v, want text %q", tc.input, toks, tc.want)
		}
	}
}

// TestTokenizerReset: a reset tokenizer must behave exactly like a fresh
// one, including after a mid-document error.
func TestTokenizerReset(t *testing.T) {
	const doc = `<bib><book id="7"><title>A &amp; B</title></book></bib>`
	tok := NewTokenizerOptions(nil, DefaultOptions())

	var runs [][]Token
	for i := 0; i < 3; i++ {
		tok.Reset(strings.NewReader(doc))
		var toks []Token
		for {
			tk, err := tok.Next()
			if err != nil {
				t.Fatalf("run %d: %v", i, err)
			}
			if tk.Kind == EOF {
				break
			}
			toks = append(toks, tk)
		}
		runs = append(runs, toks)
	}
	if !tokensEqual(runs[0], runs[1]) || !tokensEqual(runs[1], runs[2]) {
		t.Fatalf("reset runs diverge: %v vs %v vs %v", runs[0], runs[1], runs[2])
	}

	// An aborted, erroring document must not poison the next run.
	tok.Reset(strings.NewReader(`<a><b></a>`))
	for {
		if _, err := tok.Next(); err != nil {
			break
		}
	}
	tok.Reset(strings.NewReader(doc))
	var toks []Token
	for {
		tk, err := tok.Next()
		if err != nil {
			t.Fatalf("after error reset: %v", err)
		}
		if tk.Kind == EOF {
			break
		}
		toks = append(toks, tk)
	}
	if !tokensEqual(toks, runs[0]) {
		t.Fatalf("post-error reset diverges: %v vs %v", toks, runs[0])
	}
}

// TestBorrowText: under BorrowText, Text data is valid until the pending
// queue drains, and a copy made at delivery time must match what an
// owning tokenizer produces.
func TestBorrowText(t *testing.T) {
	const doc = `<bib><book id="x&amp;y" lang="de">text one<note/>text &#x42;</book></bib>`
	opts := DefaultOptions()
	owned := collect(t, doc, opts)

	opts.BorrowText = true
	tok := NewTokenizerOptions(strings.NewReader(doc), opts)
	var borrowed []Token
	for {
		tk, err := tok.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tk.Kind == EOF {
			break
		}
		if tk.Kind == Text {
			tk.Data = strings.Clone(tk.Data)
		}
		borrowed = append(borrowed, tk)
	}
	if !tokensEqual(owned, borrowed) {
		t.Fatalf("borrowed stream diverges:\n owned    %v\n borrowed %v", owned, borrowed)
	}
}

// TestInterningBounded: pooled tokenizers and symbol tables must not
// accumulate high-cardinality name vocabularies across Resets.
func TestInterningBounded(t *testing.T) {
	tok := NewTokenizerOptions(nil, DefaultOptions())
	for run := 0; run < 3; run++ {
		var doc strings.Builder
		doc.WriteString("<r>")
		for i := 0; i < maxRetainedNames; i++ {
			fmt.Fprintf(&doc, "<t%d-%d/>", run, i)
		}
		doc.WriteString("</r>")
		tok.Reset(strings.NewReader(doc.String()))
		for {
			tk, err := tok.Next()
			if err != nil {
				t.Fatal(err)
			}
			if tk.Kind == EOF {
				break
			}
		}
	}
	// Each run exceeds the cap on its own, so Reset must have dropped the
	// previous vocabularies instead of stacking all three.
	if len(tok.names) > maxRetainedNames+2 {
		t.Fatalf("interned names grew unboundedly: %d > cap %d", len(tok.names), maxRetainedNames)
	}

	s := NewSymTab()
	s.Intern("a")
	s.Intern("b")
	s.Reset()
	if s.Len() != 0 || s.Lookup("a") != NoSym {
		t.Fatal("SymTab.Reset must drop all names")
	}
	if got := s.Intern("c"); got != 1 || s.Name(got) != "c" {
		t.Fatalf("post-reset intern broken: sym %d", got)
	}
}

// TestTokenizerSteadyStateAllocs: after warm-up, tokenizing a document
// through a reset tokenizer in borrow mode must not allocate — the
// regression guard for the pooled run-state design.
func TestTokenizerSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	var doc strings.Builder
	doc.WriteString("<bib>")
	for i := 0; i < 50; i++ {
		doc.WriteString(`<book id="42" lang="en"><title>Streaming &amp; Buffering</title><price>19.99</price></book>`)
	}
	doc.WriteString("</bib>")
	data := doc.String()

	opts := DefaultOptions()
	opts.BorrowText = true
	tok := NewTokenizerOptions(nil, opts)
	r := strings.NewReader(data)

	drain := func() {
		r.Reset(data)
		tok.Reset(r)
		for {
			tk, err := tok.Next()
			if err != nil {
				t.Fatal(err)
			}
			if tk.Kind == EOF {
				return
			}
		}
	}
	drain() // warm up buffers and the name table

	if allocs := testing.AllocsPerRun(20, drain); allocs > 0 {
		t.Fatalf("steady-state tokenization allocates: %.1f allocs/run, want 0", allocs)
	}
}
