package xmlstream

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Reference is the retained byte-at-a-time tokenizer: a frozen copy of the
// scanner as it stood before the chunked fast paths landed in Tokenizer
// (see DESIGN.md, "Chunked scanning"). It exists for two jobs and must not
// be optimized:
//
//   - the differential conformance suite runs every fuzz-corpus input and
//     XMark document through both scanners and asserts byte-identical
//     token streams (differential_test.go, FuzzTokenizer), so a bug in
//     the run-scanning fast paths cannot hide behind its own coverage;
//   - BenchmarkTokenizerThroughput reports the chunked tokenizer's MB/s
//     against this naive baseline, which is what BENCH_tokenizer.json and
//     the CI regression gate track.
//
// Behaviour (token production, error messages, error offsets, Options
// semantics, Reset contract) is intentionally identical to Tokenizer.
type Reference struct {
	r    io.Reader
	opts Options

	buf    []byte
	pos    int   // next unread byte in buf
	n      int   // valid bytes in buf
	off    int64 // stream offset of buf[0]
	err    error // sticky read error (io.EOF or real error)
	closed bool

	// pending tokens produced by attribute expansion or self-closing tags.
	pending  []Token
	stack    []string // open element names for well-formedness checking
	rootSeen bool     // a root element has been produced (rejects forests)

	nameBuf []byte // scratch for tag/attr names
	textBuf []byte // scratch for text content
	attrBuf []byte // scratch for attribute values of the current tag
	attrs   []attr // scratch for attributes of the current tag

	names map[string]string
}

// NewReference returns a reference tokenizer reading from r. A nil reader
// is permitted if Reset is called before the first Next.
func NewReference(r io.Reader, opts Options) *Reference {
	return &Reference{
		r:     r,
		opts:  opts,
		buf:   make([]byte, 0, 64<<10),
		names: make(map[string]string, 64),
	}
}

// Reset rewinds the reference tokenizer to read a fresh document from r,
// mirroring Tokenizer.Reset.
//
//gcxlint:keep opts the mode is part of the tokenizer's identity; Reset swaps documents, not configuration
func (t *Reference) Reset(r io.Reader) {
	if len(t.names) > maxRetainedNames {
		t.names = make(map[string]string, 64)
	}
	t.r = r
	t.buf = t.buf[:0]
	t.pos = 0
	t.n = 0
	t.off = 0
	t.err = nil
	t.closed = false
	t.pending = t.pending[:0]
	t.stack = t.stack[:0]
	t.rootSeen = false
	t.nameBuf = resetScratch(t.nameBuf)
	t.textBuf = resetScratch(t.textBuf)
	t.attrBuf = resetScratch(t.attrBuf)
	clear(t.attrs[:cap(t.attrs)])
	t.attrs = t.attrs[:0]
}

// Depth returns the number of currently open elements.
func (t *Reference) Depth() int { return len(t.stack) }

func (t *Reference) syntaxErr(msg string) error {
	return &SyntaxError{Offset: t.off + int64(t.pos), Msg: msg}
}

// fill ensures at least one unread byte is available, reading more input if
// necessary. It returns false at end of input or on error.
func (t *Reference) fill() bool {
	if t.pos < t.n {
		return true
	}
	if t.err != nil {
		return false
	}
	// Slide the window.
	t.off += int64(t.n)
	t.pos = 0
	t.n = 0
	if cap(t.buf) == 0 {
		t.buf = make([]byte, 64<<10)
	}
	t.buf = t.buf[:cap(t.buf)]
	for {
		n, err := t.r.Read(t.buf)
		if n > 0 {
			t.n = n
			if err != nil {
				t.err = err
			}
			return true
		}
		if err != nil {
			t.err = err
			return false
		}
	}
}

func (t *Reference) peek() (byte, bool) {
	if !t.fill() {
		return 0, false
	}
	return t.buf[t.pos], true
}

func (t *Reference) next() (byte, bool) {
	if !t.fill() {
		return 0, false
	}
	c := t.buf[t.pos]
	t.pos++
	return c, true
}

// skipComment consumes input through the first "-->" and returns true,
// or false on EOF (see Tokenizer.skipComment for the dash-run rationale).
func (t *Reference) skipComment() bool {
	dashes := 0
	for {
		c, ok := t.next()
		if !ok {
			return false
		}
		switch {
		case c == '-':
			dashes++
		case c == '>' && dashes >= 2:
			return true
		default:
			dashes = 0
		}
	}
}

// skipUntil consumes input through the first occurrence of the literal
// sequence seq and returns true, or false on EOF. seq must not have a
// repeated prefix.
func (t *Reference) skipUntil(seq string) bool {
	matched := 0
	for {
		c, ok := t.next()
		if !ok {
			return false
		}
		if c == seq[matched] {
			matched++
			if matched == len(seq) {
				return true
			}
		} else if c == seq[0] {
			matched = 1
		} else {
			matched = 0
		}
	}
}

// readName reads an XML name into nameBuf and returns it as a string.
func (t *Reference) readName() (string, error) {
	c, ok := t.peek()
	if !ok {
		return "", errUnexpectedEOF
	}
	if !isNameStart(c) {
		return "", t.syntaxErr(fmt.Sprintf("expected name, found %q", c))
	}
	t.nameBuf = t.nameBuf[:0]
	for {
		c, ok := t.peek()
		if !ok || !isNameByte(c) {
			break
		}
		t.nameBuf = append(t.nameBuf, c)
		t.pos++
	}
	if interned, ok := t.names[string(t.nameBuf)]; ok {
		return interned, nil
	}
	name := string(t.nameBuf)
	t.names[name] = name
	return name, nil
}

func (t *Reference) skipSpace() {
	for {
		c, ok := t.peek()
		if !ok || !isSpace(c) {
			return
		}
		t.pos++
	}
}

// resolveEntity appends the expansion of the entity starting after '&' to
// dst. It consumes through the terminating ';'.
func (t *Reference) resolveEntity(dst []byte) ([]byte, error) {
	t.nameBuf = t.nameBuf[:0]
	for {
		c, ok := t.next()
		if !ok {
			return dst, errUnexpectedEOF
		}
		if c == ';' {
			break
		}
		if len(t.nameBuf) > 10 {
			return dst, t.syntaxErr("entity reference too long")
		}
		t.nameBuf = append(t.nameBuf, c)
	}
	ent := string(t.nameBuf)
	switch ent {
	case "amp":
		return append(dst, '&'), nil
	case "lt":
		return append(dst, '<'), nil
	case "gt":
		return append(dst, '>'), nil
	case "apos":
		return append(dst, '\''), nil
	case "quot":
		return append(dst, '"'), nil
	}
	if strings.HasPrefix(ent, "#") {
		numeric := ent[1:]
		base := 10
		if strings.HasPrefix(numeric, "x") || strings.HasPrefix(numeric, "X") {
			numeric, base = numeric[1:], 16
		}
		n, err := strconv.ParseUint(numeric, base, 32)
		if err != nil || !isXMLChar(rune(n)) {
			return dst, t.syntaxErr("bad character reference &" + ent + ";")
		}
		return appendRune(dst, rune(n)), nil
	}
	return dst, t.syntaxErr("unknown entity &" + ent + ";")
}

// textString converts the textBuf scratch to the Data of a Text token:
// a borrowed view under BorrowText, an owned copy otherwise.
func (t *Reference) textString() string {
	if t.opts.BorrowText {
		return borrowString(t.textBuf)
	}
	return string(t.textBuf)
}

// Next returns the next token in the stream, mirroring Tokenizer.Next.
func (t *Reference) Next() (Token, error) {
	tok, err := t.nextToken()
	if err != nil && t.err != nil && t.err != io.EOF {
		return Token{}, t.err
	}
	return tok, err
}

func (t *Reference) nextToken() (Token, error) {
	if len(t.pending) > 0 {
		tok := t.pending[0]
		copy(t.pending, t.pending[1:])
		t.pending = t.pending[:len(t.pending)-1]
		return tok, nil
	}
	if t.closed {
		return Token{Kind: EOF}, nil
	}
	for {
		c, ok := t.peek()
		if !ok {
			if t.err != nil && t.err != io.EOF {
				return Token{}, t.err
			}
			if len(t.stack) > 0 {
				return Token{}, t.syntaxErr("unexpected end of input: unclosed element <" + t.stack[len(t.stack)-1] + ">")
			}
			t.closed = true
			return Token{Kind: EOF}, nil
		}
		if c == '<' {
			t.pos++
			tok, produced, err := t.readMarkup()
			if err != nil {
				return Token{}, err
			}
			if produced {
				return tok, nil
			}
			continue // comment/PI/declaration: keep scanning
		}
		tok, produced, err := t.readText()
		if err != nil {
			return Token{}, err
		}
		if produced {
			return tok, nil
		}
	}
}

// readText consumes character data up to the next '<' and reports whether a
// Text token was produced (whitespace-only runs may be suppressed).
func (t *Reference) readText() (Token, bool, error) {
	t.textBuf = t.textBuf[:0]
	whitespaceOnly := true
	for {
		c, ok := t.peek()
		if !ok || c == '<' {
			break
		}
		t.pos++
		if c == '&' {
			var err error
			t.textBuf, err = t.resolveEntity(t.textBuf)
			if err != nil {
				return Token{}, false, err
			}
			whitespaceOnly = false
			continue
		}
		if whitespaceOnly && !isSpace(c) {
			whitespaceOnly = false
		}
		t.textBuf = append(t.textBuf, c)
	}
	if len(t.textBuf) == 0 {
		return Token{}, false, nil
	}
	if whitespaceOnly && !t.opts.KeepWhitespaceText {
		return Token{}, false, nil
	}
	if len(t.stack) == 0 {
		if whitespaceOnly {
			return Token{}, false, nil
		}
		return Token{}, false, t.syntaxErr("character data outside the root element")
	}
	return Token{Kind: Text, Data: t.textString()}, true, nil
}

// readMarkup handles input immediately after '<'. It reports whether a token
// was produced (comments, PIs, and declarations produce none).
func (t *Reference) readMarkup() (Token, bool, error) {
	c, ok := t.peek()
	if !ok {
		return Token{}, false, errUnexpectedEOF
	}
	switch c {
	case '?': // processing instruction or XML declaration
		t.pos++
		if !t.skipUntil("?>") {
			return Token{}, false, t.syntaxErr("unterminated processing instruction")
		}
		return Token{}, false, nil
	case '!':
		t.pos++
		return t.readBang()
	case '/':
		t.pos++
		name, err := t.readName()
		if err != nil {
			return Token{}, false, err
		}
		t.skipSpace()
		if c, ok := t.next(); !ok || c != '>' {
			return Token{}, false, t.syntaxErr("malformed closing tag </" + name)
		}
		if len(t.stack) == 0 {
			return Token{}, false, t.syntaxErr("closing tag </" + name + "> with no open element")
		}
		top := t.stack[len(t.stack)-1]
		if top != name {
			return Token{}, false, t.syntaxErr("mismatched closing tag </" + name + ">, expected </" + top + ">")
		}
		t.stack = t.stack[:len(t.stack)-1]
		return Token{Kind: EndElement, Name: name}, true, nil
	default:
		return t.readStartTag()
	}
}

// readBang handles "<!" constructs: comments, CDATA, DOCTYPE.
func (t *Reference) readBang() (Token, bool, error) {
	c, ok := t.peek()
	if !ok {
		return Token{}, false, errUnexpectedEOF
	}
	switch c {
	case '-': // comment
		t.pos++
		if c, ok := t.next(); !ok || c != '-' {
			return Token{}, false, t.syntaxErr("malformed comment")
		}
		if !t.skipComment() {
			return Token{}, false, t.syntaxErr("unterminated comment")
		}
		return Token{}, false, nil
	case '[': // CDATA
		for _, want := range "[CDATA[" {
			c, ok := t.next()
			if !ok || c != byte(want) {
				return Token{}, false, t.syntaxErr("malformed CDATA section")
			}
		}
		return t.readCDATA()
	default: // DOCTYPE or other declaration: skip to matching '>'
		// The internal subset may contain quoted literals, comments, and
		// PIs whose content legally includes '<', '>', and quotes — all
		// three are opaque to the nesting count. pfx tracks progress
		// through a "<!--" opener (1='<', 2='<!', 3='<!-').
		depth, pfx := 1, 0
		unterminated := func() (Token, bool, error) {
			return Token{}, false, t.syntaxErr("unterminated declaration")
		}
		for {
			c, ok := t.next()
			if !ok {
				return unterminated()
			}
			if pfx == 1 && c == '?' {
				// "<?": a processing instruction inside the subset.
				pfx = 0
				depth-- // undo the '<' that started it
				if !t.skipUntil("?>") {
					return unterminated()
				}
				continue
			}
			if pfx == 3 && c == '-' {
				// "<!--": a comment inside the subset.
				pfx = 0
				depth--
				if !t.skipComment() {
					return unterminated()
				}
				continue
			}
			switch {
			case c == '<':
				pfx = 1
			case pfx == 1 && c == '!':
				pfx = 2
			case pfx == 2 && c == '-':
				pfx = 3
			default:
				pfx = 0
			}
			switch c {
			case '"', '\'':
				quote := c
				for {
					c, ok := t.next()
					if !ok {
						return unterminated()
					}
					if c == quote {
						break
					}
				}
			case '<':
				depth++
			case '>':
				depth--
				if depth == 0 {
					return Token{}, false, nil
				}
			}
		}
	}
}

func (t *Reference) readCDATA() (Token, bool, error) {
	if len(t.stack) == 0 {
		return Token{}, false, t.syntaxErr("CDATA outside the root element")
	}
	t.textBuf = t.textBuf[:0]
	matched := 0
	for {
		c, ok := t.next()
		if !ok {
			return Token{}, false, t.syntaxErr("unterminated CDATA section")
		}
		switch {
		case c == ']':
			// In a run of brackets only the FINAL two can belong to the
			// "]]>" terminator; earlier ones are content.
			if matched == 2 {
				t.textBuf = append(t.textBuf, ']')
			} else {
				matched++
			}
			continue
		case c == '>' && matched == 2:
			if len(t.textBuf) == 0 {
				return Token{}, false, nil
			}
			return Token{Kind: Text, Data: t.textString()}, true, nil
		default:
			for ; matched > 0; matched-- {
				t.textBuf = append(t.textBuf, ']')
			}
			t.textBuf = append(t.textBuf, c)
		}
	}
}

// readStartTag parses an opening tag (after '<'), including attributes.
func (t *Reference) readStartTag() (Token, bool, error) {
	name, err := t.readName()
	if err != nil {
		return Token{}, false, err
	}
	if len(t.stack) == 0 && t.rootSeen {
		return Token{}, false, t.syntaxErr("multiple root elements: <" + name + ">")
	}
	// Attribute scratch is safe to rewind here: the pending queue (which
	// may reference attrBuf under BorrowText) is always drained before the
	// next tag is parsed.
	t.attrs = t.attrs[:0]
	t.attrBuf = t.attrBuf[:0]
	selfClosing := false
	for {
		t.skipSpace()
		c, ok := t.peek()
		if !ok {
			return Token{}, false, errUnexpectedEOF
		}
		if c == '>' {
			t.pos++
			break
		}
		if c == '/' {
			t.pos++
			if c, ok := t.next(); !ok || c != '>' {
				return Token{}, false, t.syntaxErr("malformed self-closing tag <" + name)
			}
			selfClosing = true
			break
		}
		aname, err := t.readName()
		if err != nil {
			return Token{}, false, err
		}
		t.skipSpace()
		if c, ok := t.next(); !ok || c != '=' {
			return Token{}, false, t.syntaxErr("attribute " + aname + " missing '='")
		}
		t.skipSpace()
		quote, ok := t.next()
		if !ok || (quote != '"' && quote != '\'') {
			return Token{}, false, t.syntaxErr("attribute " + aname + " missing quoted value")
		}
		valStart := len(t.attrBuf)
		for {
			c, ok := t.next()
			if !ok {
				return Token{}, false, errUnexpectedEOF
			}
			if c == quote {
				break
			}
			if c == '&' {
				t.attrBuf, err = t.resolveEntity(t.attrBuf)
				if err != nil {
					return Token{}, false, err
				}
				continue
			}
			t.attrBuf = append(t.attrBuf, c)
		}
		if t.opts.AttributesAsElements {
			var value string
			if t.opts.BorrowText {
				value = borrowString(t.attrBuf[valStart:])
			} else {
				value = string(t.attrBuf[valStart:])
			}
			t.attrs = append(t.attrs, attr{aname, value})
		} else {
			t.attrBuf = t.attrBuf[:valStart]
		}
	}

	t.rootSeen = true
	start := Token{Kind: StartElement, Name: name}
	if !selfClosing {
		t.stack = append(t.stack, name)
	}
	// Queue attribute subelements (and the closing tag for self-closing
	// elements) behind the start token.
	for _, a := range t.attrs {
		t.pending = append(t.pending, Token{Kind: StartElement, Name: a.name})
		if a.value != "" {
			t.pending = append(t.pending, Token{Kind: Text, Data: a.value})
		}
		t.pending = append(t.pending, Token{Kind: EndElement, Name: a.name})
	}
	if selfClosing {
		t.pending = append(t.pending, Token{Kind: EndElement, Name: name})
	}
	return start, true, nil
}
