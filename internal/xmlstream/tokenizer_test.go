package xmlstream

import (
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// collect drains all tokens from input with the given options.
func collect(t *testing.T, input string, opts Options) []Token {
	t.Helper()
	tok := NewTokenizerOptions(strings.NewReader(input), opts)
	var out []Token
	for {
		tk, err := tok.Next()
		if err != nil {
			t.Fatalf("Next: %v (after %d tokens)", err, len(out))
		}
		if tk.Kind == EOF {
			return out
		}
		out = append(out, tk)
	}
}

func collectErr(input string, opts Options) ([]Token, error) {
	tok := NewTokenizerOptions(strings.NewReader(input), opts)
	var out []Token
	for {
		tk, err := tok.Next()
		if err != nil {
			return out, err
		}
		if tk.Kind == EOF {
			return out, nil
		}
		out = append(out, tk)
	}
}

func tokensEqual(a, b []Token) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSimpleDocument(t *testing.T) {
	got := collect(t, `<bib><book><title>TCP/IP</title><author/></book></bib>`, DefaultOptions())
	want := []Token{
		{Kind: StartElement, Name: "bib"},
		{Kind: StartElement, Name: "book"},
		{Kind: StartElement, Name: "title"},
		{Kind: Text, Data: "TCP/IP"},
		{Kind: EndElement, Name: "title"},
		{Kind: StartElement, Name: "author"},
		{Kind: EndElement, Name: "author"},
		{Kind: EndElement, Name: "book"},
		{Kind: EndElement, Name: "bib"},
	}
	if !tokensEqual(got, want) {
		t.Fatalf("got %v\nwant %v", got, want)
	}
}

func TestAttributesBecomeSubelements(t *testing.T) {
	got := collect(t, `<person id="person0" score="7"><name>Ann</name></person>`, DefaultOptions())
	want := []Token{
		{Kind: StartElement, Name: "person"},
		{Kind: StartElement, Name: "id"},
		{Kind: Text, Data: "person0"},
		{Kind: EndElement, Name: "id"},
		{Kind: StartElement, Name: "score"},
		{Kind: Text, Data: "7"},
		{Kind: EndElement, Name: "score"},
		{Kind: StartElement, Name: "name"},
		{Kind: Text, Data: "Ann"},
		{Kind: EndElement, Name: "name"},
		{Kind: EndElement, Name: "person"},
	}
	if !tokensEqual(got, want) {
		t.Fatalf("got %v\nwant %v", got, want)
	}
}

func TestAttributesDiscarded(t *testing.T) {
	opts := Options{AttributesAsElements: false}
	got := collect(t, `<a x="1"><b y="2"/></a>`, opts)
	want := []Token{
		{Kind: StartElement, Name: "a"},
		{Kind: StartElement, Name: "b"},
		{Kind: EndElement, Name: "b"},
		{Kind: EndElement, Name: "a"},
	}
	if !tokensEqual(got, want) {
		t.Fatalf("got %v\nwant %v", got, want)
	}
}

func TestSelfClosingAttributeOrder(t *testing.T) {
	got := collect(t, `<item id="i1"/>`, DefaultOptions())
	want := []Token{
		{Kind: StartElement, Name: "item"},
		{Kind: StartElement, Name: "id"},
		{Kind: Text, Data: "i1"},
		{Kind: EndElement, Name: "id"},
		{Kind: EndElement, Name: "item"},
	}
	if !tokensEqual(got, want) {
		t.Fatalf("got %v\nwant %v", got, want)
	}
}

func TestEmptyAttributeValue(t *testing.T) {
	got := collect(t, `<a x=""/>`, DefaultOptions())
	want := []Token{
		{Kind: StartElement, Name: "a"},
		{Kind: StartElement, Name: "x"},
		{Kind: EndElement, Name: "x"},
		{Kind: EndElement, Name: "a"},
	}
	if !tokensEqual(got, want) {
		t.Fatalf("got %v\nwant %v", got, want)
	}
}

func TestEntities(t *testing.T) {
	got := collect(t, `<t>a &amp; b &lt;c&gt; &apos;d&apos; &quot;e&quot; &#65;&#x42;</t>`, DefaultOptions())
	if len(got) != 3 || got[1].Data != `a & b <c> 'd' "e" AB` {
		t.Fatalf("got %v", got)
	}
}

func TestEntityInAttribute(t *testing.T) {
	got := collect(t, `<t a="x &amp; y"/>`, DefaultOptions())
	if len(got) != 5 || got[2].Data != "x & y" {
		t.Fatalf("got %v", got)
	}
}

func TestWhitespaceSuppression(t *testing.T) {
	input := "<a>\n  <b> x </b>\n</a>"
	got := collect(t, input, DefaultOptions())
	want := []Token{
		{Kind: StartElement, Name: "a"},
		{Kind: StartElement, Name: "b"},
		{Kind: Text, Data: " x "},
		{Kind: EndElement, Name: "b"},
		{Kind: EndElement, Name: "a"},
	}
	if !tokensEqual(got, want) {
		t.Fatalf("got %v\nwant %v", got, want)
	}

	kept := collect(t, input, Options{AttributesAsElements: true, KeepWhitespaceText: true})
	if len(kept) != 7 {
		t.Fatalf("with KeepWhitespaceText want 7 tokens, got %v", kept)
	}
}

func TestCommentsPIsDoctypeSkipped(t *testing.T) {
	input := `<?xml version="1.0"?><!DOCTYPE a [<!ELEMENT a ANY>]><!-- hi --><a><!-- x --><?pi data?><b/></a>`
	got := collect(t, input, DefaultOptions())
	want := []Token{
		{Kind: StartElement, Name: "a"},
		{Kind: StartElement, Name: "b"},
		{Kind: EndElement, Name: "b"},
		{Kind: EndElement, Name: "a"},
	}
	if !tokensEqual(got, want) {
		t.Fatalf("got %v\nwant %v", got, want)
	}
}

func TestDoctypeInternalSubsetOpaqueContent(t *testing.T) {
	// Quoted literals, comments, and PIs inside the internal subset may
	// legally contain '<', '>', and quote characters; the declaration
	// skipper must treat them as opaque instead of counting them toward
	// the nesting (or scanning a comment's apostrophe as a quote).
	for _, input := range []string{
		`<!DOCTYPE a [<!ENTITY lt "<">]><a/>`,
		`<!DOCTYPE a [<!ENTITY gt '>'>]><a/>`,
		"<!DOCTYPE a [<!-- don't < > -->]><a/>",
		"<!DOCTYPE a [<?p quote ' bracket > ?>]><a/>",
		`<!DOCTYPE a [<!ELEMENT a EMPTY><!-- x --><!ATTLIST a b CDATA "<">]><a/>`,
	} {
		got := collect(t, input, DefaultOptions())
		want := []Token{
			{Kind: StartElement, Name: "a"},
			{Kind: EndElement, Name: "a"},
		}
		if !tokensEqual(got, want) {
			t.Errorf("%s: got %v\nwant %v", input, got, want)
		}
	}
}

func TestCommentDashRuns(t *testing.T) {
	// A comment whose terminator overlaps extra dashes ("--->") ends at
	// the first "-->" occurrence; the old skipUntil matcher lost its
	// match progress on dash runs and read such comments as
	// unterminated, swallowing the rest of the document.
	for _, input := range []string{
		"<a><!-- x ---></a>",
		"<a><!-- x ----></a>",
		"<a><!----></a>",
		"<a><!-- - -- ---></a>",
	} {
		got := collect(t, input, DefaultOptions())
		want := []Token{
			{Kind: StartElement, Name: "a"},
			{Kind: EndElement, Name: "a"},
		}
		if !tokensEqual(got, want) {
			t.Errorf("%s: got %v\nwant %v", input, got, want)
		}
	}
}

func TestCDATA(t *testing.T) {
	got := collect(t, `<a><![CDATA[x < y & z ]] ]]></a>`, DefaultOptions())
	if len(got) != 3 || got[1].Data != "x < y & z ]] " {
		t.Fatalf("got %v", got)
	}
}

func TestCDATABracketRuns(t *testing.T) {
	// CDATA content ending in ']' overlaps the "]]>" terminator; only
	// the final two brackets of a run belong to the terminator. The old
	// matcher flushed the whole run and read valid sections like
	// "<![CDATA[x]]]>" as unterminated.
	for _, tc := range []struct{ input, want string }{
		{`<a><![CDATA[x]]]></a>`, "x]"},
		{`<a><![CDATA[x]]]]></a>`, "x]]"},
		{`<a><![CDATA[]]]]></a>`, "]]"},
		{`<a><![CDATA[a]b]]]></a>`, "a]b]"},
	} {
		got := collect(t, tc.input, DefaultOptions())
		if len(got) != 3 || got[1].Data != tc.want {
			t.Errorf("%s: got %v, want CDATA %q", tc.input, got, tc.want)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"mismatched close", `<a><b></a></b>`},
		{"unclosed", `<a><b>`},
		{"stray close", `</a>`},
		{"text outside root", `hello<a/>`},
		{"two roots", `<a/><b/>`},
		{"bad entity", `<a>&bogus;</a>`},
		{"unterminated comment", `<a><!-- x</a>`},
		{"attr missing eq", `<a x"1"/>`},
		{"attr missing quote", `<a x=1/>`},
		{"unterminated cdata", `<a><![CDATA[x</a>`},
		{"garbage tag", `<a><<b/></a>`},
		{"truncated tag", `<a`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := collectErr(tc.input, DefaultOptions()); err == nil {
				t.Fatalf("input %q: want error, got none", tc.input)
			}
		})
	}
}

func TestEOFSticky(t *testing.T) {
	tok := NewTokenizer(strings.NewReader(`<a/>`))
	for i := 0; i < 2; i++ {
		if _, err := tok.Next(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		tk, err := tok.Next()
		if err != nil || tk.Kind != EOF {
			t.Fatalf("want sticky EOF, got %v %v", tk, err)
		}
	}
}

// shortReader returns at most n bytes per Read to exercise buffer refills.
type shortReader struct {
	r io.Reader
	n int
}

func (s *shortReader) Read(p []byte) (int, error) {
	if len(p) > s.n {
		p = p[:s.n]
	}
	return s.r.Read(p)
}

func TestShortReads(t *testing.T) {
	input := `<bib><book id="b1"><title>Streaming &amp; Buffers</title></book></bib>`
	want := collect(t, input, DefaultOptions())
	for _, n := range []int{1, 2, 3, 7} {
		tok := NewTokenizerOptions(&shortReader{strings.NewReader(input), n}, DefaultOptions())
		var got []Token
		for {
			tk, err := tok.Next()
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if tk.Kind == EOF {
				break
			}
			got = append(got, tk)
		}
		if !tokensEqual(got, want) {
			t.Fatalf("n=%d: got %v want %v", n, got, want)
		}
	}
}

func TestDepth(t *testing.T) {
	tok := NewTokenizer(strings.NewReader(`<a><b><c></c></b></a>`))
	depths := []int{1, 2, 3, 2, 1, 0}
	for i := 0; ; i++ {
		tk, err := tok.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tk.Kind == EOF {
			break
		}
		if tok.Depth() != depths[i] {
			t.Fatalf("token %d (%v): depth %d, want %d", i, tk, tok.Depth(), depths[i])
		}
	}
}

// randomTree produces a random XML document string and its expected token
// stream, for round-trip testing.
func randomTree(r *rand.Rand, depth int, sb *strings.Builder, toks *[]Token) {
	names := []string{"a", "b", "item", "x1", "long-name"}
	name := names[r.Intn(len(names))]
	sb.WriteString("<" + name + ">")
	*toks = append(*toks, Token{Kind: StartElement, Name: name})
	n := r.Intn(3)
	if depth > 4 {
		n = 0
	}
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			data := []string{"hello", "a&b", "1 < 2"}[r.Intn(3)]
			sb.WriteString(EscapeText(data))
			*toks = append(*toks, Token{Kind: Text, Data: data})
		} else {
			randomTree(r, depth+1, sb, toks)
		}
	}
	sb.WriteString("</" + name + ">")
	*toks = append(*toks, Token{Kind: EndElement, Name: name})
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		var want []Token
		randomTree(r, 0, &sb, &want)
		got, err := collectErr(sb.String(), DefaultOptions())
		if err != nil {
			t.Logf("doc %q: %v", sb.String(), err)
			return false
		}
		// Adjacent text tokens may merge; normalize both sides.
		return tokensEqual(mergeText(got), mergeText(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func mergeText(toks []Token) []Token {
	var out []Token
	for _, tk := range toks {
		if tk.Kind == Text && len(out) > 0 && out[len(out)-1].Kind == Text {
			out[len(out)-1].Data += tk.Data
			continue
		}
		out = append(out, tk)
	}
	return out
}

func TestWriterRoundTrip(t *testing.T) {
	input := `<bib><book id="b1"><title>a &amp; b</title><empty/></book></bib>`
	toks := collect(t, input, DefaultOptions())
	var sb strings.Builder
	w := NewWriter(&sb)
	for _, tk := range toks {
		w.WriteToken(tk)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Re-tokenize the writer output; token streams must agree.
	got := collect(t, sb.String(), DefaultOptions())
	if !tokensEqual(got, toks) {
		t.Fatalf("round trip mismatch:\n in: %v\nout: %v", toks, got)
	}
}

func TestWriterBalanceErrors(t *testing.T) {
	w := NewWriter(io.Discard)
	w.StartElement("a")
	w.EndElement("b")
	if w.Err() == nil {
		t.Fatal("want mismatch error")
	}

	w2 := NewWriter(io.Discard)
	w2.StartElement("a")
	if err := w2.Flush(); err == nil {
		t.Fatal("want unclosed-element error")
	}

	w3 := NewWriter(io.Discard)
	w3.EndElement("a")
	if w3.Err() == nil {
		t.Fatal("want stray-close error")
	}
}

func TestSymTab(t *testing.T) {
	s := NewSymTab()
	a := s.Intern("alpha")
	b := s.Intern("beta")
	if a == b {
		t.Fatal("distinct names must get distinct symbols")
	}
	if s.Intern("alpha") != a {
		t.Fatal("Intern must be stable")
	}
	if s.Name(a) != "alpha" || s.Name(b) != "beta" {
		t.Fatal("Name mismatch")
	}
	if s.Lookup("gamma") != NoSym {
		t.Fatal("Lookup of unknown name must return NoSym")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

func BenchmarkTokenizer(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 2000; i++ {
		sb.WriteString(`<item id="i1"><name>some name here</name><payload>lorem ipsum dolor sit amet</payload></item>`)
	}
	doc := "<root>" + sb.String() + "</root>"
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tok := NewTokenizer(strings.NewReader(doc))
		for {
			tk, err := tok.Next()
			if err != nil {
				b.Fatal(err)
			}
			if tk.Kind == EOF {
				break
			}
		}
	}
}
