package xmlstream

import (
	"strings"
	"testing"
)

// FuzzTokenizer feeds arbitrary bytes to the tokenizer and checks the
// engine-facing invariants: no panic, well-nested tags on success, and —
// the round-trip property — serializing the accepted token stream and
// re-tokenizing it yields the same stream. Accepted documents are exactly
// the attribute-free three-token-kind model the engine consumes, so the
// round trip must be lossless (attributes have already been converted to
// subelements, entities resolved, CDATA folded into text).
//
// It also differentially cross-checks the chunked Tokenizer against the
// retained per-byte Reference scanner at refill boundary sizes 1, 2, 7,
// 63/64/65 (the structural index's 64-byte block edges), and 4096 (every
// run-scanning fast path must behave identically whether or not the run
// straddles a refill or a bitmap block boundary), in both owning and
// BorrowText modes.
func FuzzTokenizer(f *testing.F) {
	seeds := []string{
		`<a/>`,
		`<bib><book year="1994"><title>TCP/IP</title></book></bib>`,
		`<a>x&amp;y&#65;<![CDATA[<raw>]]></a>`,
		`<?xml version="1.0"?><!DOCTYPE a><a><!-- c --><b/>t</a>`,
		`<a><b>1</b> <b>2</b></a>`,
		`<a>&#x10FFFF;</a>`,
		`<q><w e="r"/></q><junk`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Differential: chunked vs reference at every boundary size, on
		// malformed inputs too (errors must agree, not just successes).
		for _, w := range []int{1, 2, 7, 63, 64, 65, 4096} {
			diffOne(t, []byte(src), w, DefaultOptions())
			engineMode := DefaultOptions()
			engineMode.BorrowText = true
			diffOne(t, []byte(src), w, engineMode)
		}

		toks, err := collectTokens(strings.NewReader(src))
		if err != nil {
			return // malformed input must be reported, not panic — done
		}
		var out strings.Builder
		w := NewWriter(&out)
		for _, tok := range toks {
			w.WriteToken(tok)
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("serializing accepted stream: %v\ninput: %q", err, src)
		}
		again, err := collectTokens(strings.NewReader(out.String()))
		if err != nil {
			t.Fatalf("re-tokenizing serialized stream: %v\ninput: %q\nserialized: %q", err, src, out.String())
		}
		if len(toks) != len(again) {
			t.Fatalf("round trip changed token count %d -> %d\ninput: %q\nserialized: %q", len(toks), len(again), src, out.String())
		}
		for i := range toks {
			if toks[i] != again[i] {
				t.Fatalf("round trip changed token %d: %v -> %v\ninput: %q\nserialized: %q",
					i, toks[i], again[i], src, out.String())
			}
		}
	})
}

// collectTokens drains a document into a coalesced token list: adjacent
// text tokens are merged, since the tokenizer is free to split character
// data at buffer and entity boundaries.
func collectTokens(r *strings.Reader) ([]Token, error) {
	tok := NewTokenizer(r)
	var out []Token
	for {
		tk, err := tok.Next()
		if err != nil {
			return nil, err
		}
		if tk.Kind == EOF {
			return out, nil
		}
		if tk.Kind == Text && len(out) > 0 && out[len(out)-1].Kind == Text {
			out[len(out)-1].Data += tk.Data
			continue
		}
		out = append(out, tk)
	}
}
