package xmlstream

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"gcx/internal/xmark"
)

// The differential conformance suite: the chunked Tokenizer and the
// retained per-byte Reference scanner must produce byte-identical token
// streams — and identical errors — on every input, at every refill
// boundary size. Window sizes 1, 2, and 7 force every run (text,
// attribute values, comment/PI/CDATA/DOCTYPE interiors, names,
// whitespace) to straddle refills; 4096 and the unbounded reader exercise
// the zero-copy in-window fast paths.

// diffWindows are the refill boundary sizes under test; 0 means "let the
// reader hand over everything it has" (strings.Reader semantics).
// 63/64/65 straddle the structural index's 64-byte block edges, so every
// construct is also exercised with its structural bytes landing on the
// last bit of one bitmap word and the first bit of the next.
var diffWindows = []int{1, 2, 7, 63, 64, 65, 127, 128, 4096, 0}

// chunkReader yields at most k bytes per Read, bounding the tokenizer's
// lookahead window to k bytes so runs straddle refills.
type chunkReader struct {
	data []byte
	k    int
}

func (r *chunkReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := len(r.data)
	if r.k > 0 && n > r.k {
		n = r.k
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

// drainCloned drains a token stream, cloning borrowed string data so
// streams from pooled scratch can be compared after the fact.
func drainCloned(next func() (Token, error)) ([]Token, error) {
	var out []Token
	for {
		tk, err := next()
		if err != nil {
			return out, err
		}
		if tk.Kind == EOF {
			return out, nil
		}
		tk.Name = strings.Clone(tk.Name)
		tk.Data = strings.Clone(tk.Data)
		out = append(out, tk)
	}
}

func errString(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}

// diffOne tokenizes src with both scanners at the given window size and
// options and reports any divergence in tokens or errors.
func diffOne(t *testing.T, src []byte, window int, opts Options) {
	t.Helper()
	chunked := NewTokenizerOptions(&chunkReader{data: src, k: window}, opts)
	ctoks, cerr := drainCloned(chunked.Next)
	ref := NewReference(&chunkReader{data: src, k: window}, opts)
	rtoks, rerr := drainCloned(ref.Next)

	if errString(cerr) != errString(rerr) {
		t.Fatalf("window %d, opts %+v: error divergence\n chunked:   %s\n reference: %s\n input: %q",
			window, opts, errString(cerr), errString(rerr), truncate(src))
	}
	if len(ctoks) != len(rtoks) {
		t.Fatalf("window %d, opts %+v: token count %d vs %d\n input: %q",
			window, opts, len(ctoks), len(rtoks), truncate(src))
	}
	for i := range ctoks {
		if ctoks[i] != rtoks[i] {
			t.Fatalf("window %d, opts %+v: token %d diverges\n chunked:   %v\n reference: %v\n input: %q",
				window, opts, i, ctoks[i], rtoks[i], truncate(src))
		}
	}
}

func truncate(b []byte) string {
	if len(b) > 256 {
		return string(b[:256]) + fmt.Sprintf("...(%d bytes)", len(b))
	}
	return string(b)
}

// diffOptionSets are the option combinations the engine and its tests
// actually run under.
var diffOptionSets = []Options{
	{AttributesAsElements: true, BorrowText: true},                           // engine mode
	{AttributesAsElements: true},                                             // default
	{AttributesAsElements: true, KeepWhitespaceText: true},                   // whitespace kept
	{KeepWhitespaceText: true, BorrowText: true},                             // attributes discarded
	{AttributesAsElements: true, KeepWhitespaceText: true, BorrowText: true}, // everything on
}

// differentialCorpus is the hand-built input set: every fast path, every
// sentinel, every straddle-prone construct, plus malformed variants of
// each (the scanners must agree on errors, not just successes).
var differentialCorpus = []string{
	// Fuzz seeds (keep in sync with FuzzTokenizer).
	`<a/>`,
	`<bib><book year="1994"><title>TCP/IP</title></book></bib>`,
	`<a>x&amp;y&#65;<![CDATA[<raw>]]></a>`,
	`<?xml version="1.0"?><!DOCTYPE a><a><!-- c --><b/>t</a>`,
	`<a><b>1</b> <b>2</b></a>`,
	`<a>&#x10FFFF;</a>`,
	`<q><w e="r"/></q><junk`,

	// Text runs: long, whitespace-only, entity-dense, boundary entities.
	`<a>` + strings.Repeat("lorem ipsum dolor sit amet ", 400) + `</a>`,
	`<a>` + strings.Repeat(" \t\n\r", 300) + `</a>`,
	`<a>` + strings.Repeat("x&amp;", 200) + `</a>`,
	`<a>&lt;tag&gt; &quot;q&quot; &apos;a&apos;</a>`,
	`<a>text&`, // truncated entity
	`<a>a&bogus;b</a>`,
	`<a>&#x;</a>`,
	"<a>pre <b>in</b> post\n</a>\n",

	// Attribute values: long, entity-bearing, both quotes, '>' inside.
	`<a k="` + strings.Repeat("v", 9000) + `"/>`,
	`<a k="x&amp;y" j='1&#65;2'/>`,
	`<a k="a > b" j='< raw'/>`,
	`<a k="unterminated`,
	`<a k=>`,
	`<a k="v" k2`,

	// Comments: dash runs, terminator overlaps, interior sentinels.
	`<a><!-- plain --></a>`,
	`<a><!----></a>`,
	`<a><!-- ` + strings.Repeat("-", 500) + ` --></a>`,
	`<a><!-- x ---></a>`,
	`<a><!-- > < " -- almost --></a>`,
	`<a><!-- unterminated`,
	`<a><!-- unterminated --`,

	// PIs: '?' runs, overlapping terminators.
	`<a><?pi data?></a>`,
	`<a><?pi ` + strings.Repeat("?", 300) + `?></a>`,
	`<a><?pi q? >x?></a>`,
	`<a><?pi unterminated`,

	// CDATA: bracket runs, terminator edges, empty.
	`<a><![CDATA[]]></a>`,
	`<a><![CDATA[x]]]></a>`,
	`<a><![CDATA[` + strings.Repeat("]", 400) + `]]></a>`,
	`<a><![CDATA[a]]b]>c]]></a>`,
	`<a><![CDATA[` + strings.Repeat("interior text ", 300) + `]]></a>`,
	`<a><![CDATA[unterminated`,
	`<a><![CDAT[x]]></a>`,

	// DOCTYPE: internal subsets, quoted '<'/'>', subset comments and PIs.
	`<!DOCTYPE a><a/>`,
	`<!DOCTYPE a [<!ENTITY lt "<">]><a/>`,
	`<!DOCTYPE a [<!ELEMENT a (b|c)*><!ATTLIST a x CDATA "y>z">]><a/>`,
	`<!DOCTYPE a [<!-- <not> nested --><?pi >?>]><a/>`,
	`<!DOCTYPE a [` + strings.Repeat("<!ENTITY e 'v'>", 100) + `]><a/>`,
	`<!DOCTYPE a [<!ENTITY broken`,
	`<!DOCTYPE a [<!-- unterminated`,

	// Names and whitespace: long names, straddling tags, deep spaces.
	`<` + strings.Repeat("n", 3000) + `/>`,
	`<a    k = "v"    ></a    >`,
	"<a\n\t k1=\"v1\"\n\t k2='v2'\n/>",

	// Structure errors: the state machine boundaries.
	`<a><b></a>`,
	`<a></a><b/>`,
	`junk<a/>`,
	`<a/>trailing`,
	`< a/>`,
	`<a><`,
	``,
	`   `,
}

// blockEdgeCorpus places structural bytes and straddle-prone constructs
// exactly on the structural index's 64-byte block edges (offsets 63, 64,
// 65): tags, quoted attribute values, and entity references split across
// blocks, plus '<'/'>' inside opaque regions (CDATA, comments, DOCTYPE)
// at the edge. pad(n) emits n bytes of inert text so the construct under
// test starts at a chosen absolute offset.
func blockEdgeCorpus() []string {
	pad := func(n int) string { return strings.Repeat("x", n) }
	var out []string
	// A start tag whose '<', name, '=', quotes, '/' and '>' each land at
	// offsets 63, 64, and 65 in turn. "<r>" occupies offsets 0-2, so the
	// construct starts at 3+len(pad).
	for _, at := range []int{63, 64, 65} {
		p := pad(at - 3)
		out = append(out,
			`<r>`+p+`<b k="v" j='w'>t</b></r>`,   // '<' at the edge
			`<r>`+pad(at-4)+`<b k="v">t</b></r>`, // name at the edge
			`<r>`+p+`</r>`,                       // closing tag at the edge
			`<r><b>`+pad(at-6)+`</b></r>`,
			`<r>`+p+`&amp;&#65;</r>`,                   // entity '&' at the edge
			`<r>`+pad(at-8)+`&amp;tail</r>`,            // entity ';' near the edge
			`<r><b k="`+pad(at-9)+`" j='v'/></r>`,      // closing quote near the edge
			`<r><b k="`+pad(at-9)+`>" j='<raw>'/></r>`, // '>' '<' inside values at the edge
			`<r><b `+pad(0)+`k`+strings.Repeat(" ", at%7+1)+`= "v"/></r>`,
			`<r><![CDATA[`+pad(at-12)+`<in>]]>]]></r>`, // '<'/'>' in CDATA at the edge
			`<r><!--`+pad(at-7)+`<c> -- x--></r>`,      // '<'/'>' in a comment at the edge
			`<r><?pi `+pad(at-8)+`<p> ??></r>`,         // '<'/'>' in a PI at the edge
		)
		// DOCTYPE internal subset with quoted '<'/'>' hitting the edge.
		out = append(out,
			`<!DOCTYPE r [<!ENTITY e "`+pad(at-26)+`<v>">]><r/>`,
			`<!DOCTYPE r [`+pad(at-14)+`<!-- < > -->]><r/>`,
		)
	}
	// Structural bytes at exactly 63/64/65 with nothing else around them,
	// in one document: text runs sized so consecutive '<' bytes land on
	// 63, 64, and 65 across self-closing tags.
	out = append(out,
		`<r>`+pad(60)+`<b/>`+`<c/>`+pad(61)+`<d/></r>`,
		`<r>`+pad(61)+`<b x="`+pad(63)+`"/></r>`,
		// A tag spanning a whole block: attributes from offset 63 to 130.
		`<r>`+pad(60)+`<b aaaaaaaaaaaaaaaa="bbbbbbbbbbbbbbbb" cccccccccccccccc='dddddddddddddddd'/></r>`,
	)
	return out
}

// TestDifferentialCorpus sweeps the hand-built corpus across all window
// sizes and option sets.
func TestDifferentialCorpus(t *testing.T) {
	for i, src := range differentialCorpus {
		t.Run(fmt.Sprintf("case%02d", i), func(t *testing.T) {
			for _, w := range diffWindows {
				for _, opts := range diffOptionSets {
					diffOne(t, []byte(src), w, opts)
				}
			}
		})
	}
}

// TestDifferentialBlockEdges sweeps the generated block-boundary
// adversarial corpus: every construct with its structural bytes pinned to
// the index's 64-byte block edges, across all windows and option sets.
func TestDifferentialBlockEdges(t *testing.T) {
	for i, src := range blockEdgeCorpus() {
		t.Run(fmt.Sprintf("case%02d", i), func(t *testing.T) {
			for _, w := range diffWindows {
				for _, opts := range diffOptionSets {
					diffOne(t, []byte(src), w, opts)
				}
			}
		})
	}
}

// TestDifferentialSeedCorpus replays any committed fuzz findings
// (testdata/fuzz/FuzzTokenizer) through the differential check, so every
// crasher the fuzzer ever minimized keeps guarding the chunked scanner.
func TestDifferentialSeedCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzTokenizer")
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		t.Skip("no committed fuzz corpus")
	}
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		src, err := loadFuzzCorpusString(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		t.Run(e.Name(), func(t *testing.T) {
			for _, w := range diffWindows {
				for _, opts := range diffOptionSets {
					diffOne(t, []byte(src), w, opts)
				}
			}
		})
	}
}

// loadFuzzCorpusString parses a "go test fuzz v1" corpus file holding a
// single string argument.
func loadFuzzCorpusString(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "go test fuzz") {
		return "", fmt.Errorf("not a fuzz corpus file")
	}
	arg := strings.TrimSpace(lines[1])
	const prefix = "string("
	if !strings.HasPrefix(arg, prefix) || !strings.HasSuffix(arg, ")") {
		return "", fmt.Errorf("unsupported corpus argument %q", arg)
	}
	return strconv.Unquote(arg[len(prefix) : len(arg)-1])
}

// TestDifferentialXMark runs a generated XMark document — the realistic
// mix of long text, attribute-bearing tags, and markup runs — through
// both scanners at straddle-forcing and fast-path window sizes.
func TestDifferentialXMark(t *testing.T) {
	var buf strings.Builder
	if _, err := xmark.Generate(&buf, xmark.Config{Factor: xmark.FactorForSize(200 << 10), Seed: 7}); err != nil {
		t.Fatal(err)
	}
	doc := []byte(buf.String())
	windows := []int{3, 4096, 0}
	if testing.Short() {
		windows = []int{4096}
	}
	for _, w := range windows {
		for _, opts := range diffOptionSets {
			diffOne(t, doc, w, opts)
		}
	}
}

// TestBorrowedWindowTextSurvivesUntilNext pins the zero-copy contract:
// a Text token borrowed from the lookahead window stays intact until the
// following Next call, even when the next markup sits at the window edge.
func TestBorrowedWindowTextSurvivesUntilNext(t *testing.T) {
	doc := `<a>` + strings.Repeat("abcdefgh", 64) + `<b/></a>`
	opts := DefaultOptions()
	opts.BorrowText = true
	tok := NewTokenizerOptions(&chunkReader{data: []byte(doc), k: 600}, opts)
	var text string
	for {
		tk, err := tok.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tk.Kind == Text {
			// Inspect the borrowed data NOW (before the next call), as the
			// contract requires, and copy it.
			text = strings.Clone(tk.Data)
		}
		if tk.Kind == EOF {
			break
		}
	}
	if want := strings.Repeat("abcdefgh", 64); text != want {
		t.Fatalf("borrowed text corrupted: got %d bytes, want %d", len(text), len(want))
	}
}
