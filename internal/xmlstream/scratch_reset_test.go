package xmlstream

import (
	"strings"
	"testing"
)

// drainTokens runs a tokenizer to EOF, failing the test on syntax errors.
func drainTokens(t *testing.T, next func() (Token, error)) {
	t.Helper()
	for {
		tok, err := next()
		if err != nil {
			t.Fatalf("unexpected tokenizer error: %v", err)
		}
		if tok.Kind == EOF {
			return
		}
	}
}

// A pooled tokenizer must not keep any bytes of the previous document
// reachable after Reset, and a single pathological document must not pin
// oversized scratch buffers for the life of the pool entry.
func TestTokenizerResetScratchHygiene(t *testing.T) {
	big := `<r a="` + strings.Repeat("v", maxRetainedScratch+1) + `">` +
		strings.Repeat("x", 2*maxRetainedScratch) + `</r>`
	tok := NewTokenizer(strings.NewReader(big))
	drainTokens(t, tok.Next)

	tok.Reset(strings.NewReader("<r/>"))
	if tok.textBuf != nil {
		t.Errorf("textBuf retained %d bytes past maxRetainedScratch after Reset", cap(tok.textBuf))
	}
	if tok.attrBuf != nil {
		t.Errorf("attrBuf retained %d bytes past maxRetainedScratch after Reset", cap(tok.attrBuf))
	}
	if len(tok.nameBuf) != 0 {
		t.Errorf("nameBuf not truncated after Reset: len=%d", len(tok.nameBuf))
	}
	for i, a := range tok.attrs[:cap(tok.attrs)] {
		if a.name != "" || a.value != "" {
			t.Errorf("attrs[%d] still references previous document: %+v", i, a)
		}
	}
	drainTokens(t, tok.Next)
}

func TestReferenceResetScratchHygiene(t *testing.T) {
	big := `<r a="` + strings.Repeat("v", maxRetainedScratch+1) + `">` +
		strings.Repeat("x", 2*maxRetainedScratch) + `</r>`
	tok := NewReference(strings.NewReader(big), DefaultOptions())
	drainTokens(t, tok.Next)

	tok.Reset(strings.NewReader("<r/>"))
	if tok.textBuf != nil {
		t.Errorf("textBuf retained %d bytes past maxRetainedScratch after Reset", cap(tok.textBuf))
	}
	if tok.attrBuf != nil {
		t.Errorf("attrBuf retained %d bytes past maxRetainedScratch after Reset", cap(tok.attrBuf))
	}
	for i, a := range tok.attrs[:cap(tok.attrs)] {
		if a.name != "" || a.value != "" {
			t.Errorf("attrs[%d] still references previous document: %+v", i, a)
		}
	}
	drainTokens(t, tok.Next)
}

// Small documents keep their (bounded) scratch so a warmed-up pooled
// tokenizer stays allocation-free across Resets.
func TestTokenizerResetRetainsBoundedScratch(t *testing.T) {
	// The entity forces the text through textBuf; entity-free runs borrow
	// the window and never touch the scratch.
	tok := NewTokenizer(strings.NewReader(`<r a="b">he&amp;llo</r>`))
	drainTokens(t, tok.Next)
	textCap := cap(tok.textBuf)
	if textCap == 0 {
		t.Fatal("expected text scratch to have grown")
	}
	tok.Reset(strings.NewReader("<r/>"))
	if cap(tok.textBuf) != textCap {
		t.Errorf("bounded text scratch not retained: cap %d -> %d", textCap, cap(tok.textBuf))
	}
	if len(tok.textBuf) != 0 {
		t.Errorf("text scratch not truncated: len=%d", len(tok.textBuf))
	}
}
