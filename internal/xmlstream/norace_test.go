//go:build !race

package xmlstream

const raceEnabled = false
