package xmlstream

import (
	"encoding/binary"
	"math/bits"
)

// Structural index: the simdjson move, ported to streaming XML. Instead
// of byte-stepping (branch per byte) or sentinel IndexByte probes (call
// per run — a loss when markup is dense and runs are short), a single
// branchless classification pass runs over the whole lookahead window
// every refill and records, one bit per byte, where the five structural
// characters sit:
//
//	'<' 0x3C   '>' 0x3E   '&' 0x26   '"' 0x22   '\'' 0x27
//
// Tag, attribute, and text scanning then HOP between candidate
// positions with TrailingZeros64 instead of inspecting bytes. Quotes
// must be classified even though they only matter inside tags: finding
// a tag's closing '>' from the index requires masking '>' and '<' that
// sit inside quoted attribute values ("a > b" is value content, not a
// tag end).
//
// The bitmap is COMBINED: one bit marks "some structural byte here",
// and the consumer dispatches on the actual buffer byte. Candidates
// that turn out to be irrelevant in context (an apostrophe in character
// data, a '>' in a text run) cost one dispatch and are skipped. That
// keeps classification at three SWAR zero-tests per word instead of
// five, exploiting shared structure in the code points:
//
//	(x | 0x02) ^ 0x3E == 0  ⇔  x ∈ {0x3C, 0x3E}   ('<' or '>')
//	(x | 0x01) ^ 0x27 == 0  ⇔  x ∈ {0x26, 0x27}   ('&' or '\'')
//	 x         ^ 0x22 == 0  ⇔  x == 0x22          ('"')
//
// Block format: one uint64 per 64-byte block, bit i of words[b] set iff
// buf[b*64+i] is structural. The tail block is classified from a
// zero-padded copy (0x00 is never structural), so no bit is ever set at
// or beyond len(buf) — queries need no end-of-buffer re-check.

// StructIndex is a per-window structural-byte index. Build classifies a
// buffer; Next answers "first structural byte at or after p" in O(1)
// amortized. The words slice is reused across Builds, so a warm index
// performs zero allocations per pass.
type StructIndex struct {
	words []uint64 // one bit per byte, 64 bytes per word
	n     int      // classified length (len of the last Build's buffer)
}

const (
	swarEach = 0x0101010101010101 // one in every byte lane
	swar7F   = 0x7f7f7f7f7f7f7f7f
)

// swarZero returns 0x80 in every byte lane of v that is zero, and 0x00
// in every other lane. Exact per-lane detection: the cheaper
// (v-lo)&^v&hi idiom false-positives on lanes following a zero lane
// (borrow propagation), which would corrupt the bitmap.
//
//gcxlint:noalloc
func swarZero(v uint64) uint64 {
	return ^(((v & swar7F) + swar7F) | v | swar7F)
}

// classifyWord maps 8 input bytes (little-endian packed) to an 8-bit
// mask, bit j set iff byte j is one of the five structural characters.
// The lane masks (0x80 per match) are compressed to positional bits with
// a multiply-movemask: lane j's high bit, shifted to bit 8j, lands at
// bit 56+j under ×0x0102040810204080 with no carry collisions.
//
//gcxlint:noalloc
func classifyWord(x uint64) uint64 {
	angle := swarZero((x | 0x0202020202020202) ^ 0x3e3e3e3e3e3e3e3e) // '<' '>'
	ampos := swarZero((x | swarEach) ^ 0x2727272727272727)           // '&' '\''
	quot := swarZero(x ^ 0x2222222222222222)                         // '"'
	m := angle | ampos | quot
	return ((m >> 7) * 0x0102040810204080) >> 56
}

// Build classifies buf and replaces the index contents. It must be
// re-run whenever the window slides or is compacted: positions are
// absolute offsets into buf.
//
//gcxlint:noalloc
func (ix *StructIndex) Build(buf []byte) {
	n := len(buf)
	ix.n = n
	nw := (n + 63) >> 6
	if cap(ix.words) < nw {
		ix.words = make([]uint64, nw) //gcxlint:allocok sized to the window once; reused across Builds
	}
	ix.words = ix.words[:nw]
	i, w := 0, 0
	for ; i+64 <= n; i, w = i+64, w+1 {
		b := buf[i : i+64 : i+64]
		bm := classifyWord(binary.LittleEndian.Uint64(b[0:8]))
		bm |= classifyWord(binary.LittleEndian.Uint64(b[8:16])) << 8
		bm |= classifyWord(binary.LittleEndian.Uint64(b[16:24])) << 16
		bm |= classifyWord(binary.LittleEndian.Uint64(b[24:32])) << 24
		bm |= classifyWord(binary.LittleEndian.Uint64(b[32:40])) << 32
		bm |= classifyWord(binary.LittleEndian.Uint64(b[40:48])) << 40
		bm |= classifyWord(binary.LittleEndian.Uint64(b[48:56])) << 48
		bm |= classifyWord(binary.LittleEndian.Uint64(b[56:64])) << 56
		ix.words[w] = bm
	}
	if i < n {
		// Tail block: classify a zero-padded copy so no bit lands at or
		// past n (0x00 matches no structural class).
		var tail [64]byte
		copy(tail[:], buf[i:n])
		bm := classifyWord(binary.LittleEndian.Uint64(tail[0:8]))
		bm |= classifyWord(binary.LittleEndian.Uint64(tail[8:16])) << 8
		bm |= classifyWord(binary.LittleEndian.Uint64(tail[16:24])) << 16
		bm |= classifyWord(binary.LittleEndian.Uint64(tail[24:32])) << 24
		bm |= classifyWord(binary.LittleEndian.Uint64(tail[32:40])) << 32
		bm |= classifyWord(binary.LittleEndian.Uint64(tail[40:48])) << 40
		bm |= classifyWord(binary.LittleEndian.Uint64(tail[48:56])) << 48
		bm |= classifyWord(binary.LittleEndian.Uint64(tail[56:64])) << 56
		ix.words[w] = bm
	}
}

// Next returns the position of the first structural byte at or after
// from, or -1 if none remains in the classified range. The caller
// dispatches on the buffer byte at the returned position; a candidate
// that is not relevant in context is skipped by querying from+1.
//
//gcxlint:noalloc
func (ix *StructIndex) Next(from int) int {
	if from < 0 {
		from = 0
	}
	if from >= ix.n {
		return -1
	}
	w := from >> 6
	b := ix.words[w] &^ (1<<(uint(from)&63) - 1)
	for b == 0 {
		w++
		if w >= len(ix.words) {
			return -1
		}
		b = ix.words[w]
	}
	return w<<6 + bits.TrailingZeros64(b)
}

// Reset drops the classified range (keeping the words capacity) so a
// pooled owner starts its next document with an empty index.
//
//gcxlint:noalloc
func (ix *StructIndex) Reset() {
	ix.n = 0
	ix.words = ix.words[:0]
}

// Count returns the number of structural bytes in the classified range —
// a cheap, machine-portable digest used by the benchmark gate to pin the
// classification output across runs.
func (ix *StructIndex) Count() int {
	c := 0
	for _, w := range ix.words {
		c += bits.OnesCount64(w)
	}
	return c
}
