package xmlstream

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"unsafe"
)

// SyntaxError reports malformed XML input with a byte offset.
type SyntaxError struct {
	Offset int64
	Msg    string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xmlstream: syntax error at byte %d: %s", e.Offset, e.Msg)
}

// Options configures a Tokenizer.
type Options struct {
	// AttributesAsElements, when true (the default used by the engine),
	// reports each attribute name="value" on an opening tag as a leading
	// child element <name>value</name>. This implements the paper's
	// attribute adaptation (Sections 2 and 7). When false, attributes are
	// discarded.
	AttributesAsElements bool
	// KeepWhitespaceText, when true, reports whitespace-only character
	// data. The engine default is false (ignorable whitespace between
	// elements is dropped), which matches how the paper's example streams
	// are written.
	KeepWhitespaceText bool
	// BorrowText, when true, makes the Data of Text tokens a view into
	// the tokenizer's scratch buffers instead of a fresh allocation. The
	// view is valid only until the pending tokens queued by the producing
	// tag have been drained (for character data: until the next call to
	// Next). Consumers that retain text must copy it; the engine's
	// projector does so only for tokens it actually buffers, which makes
	// steady-state tokenization of discarded regions allocation-free.
	BorrowText bool
}

// DefaultOptions returns the configuration the engine uses.
func DefaultOptions() Options {
	return Options{AttributesAsElements: true, KeepWhitespaceText: false}
}

// Tokenizer reads an XML document from an io.Reader and produces a stream of
// Tokens. It supports the subset of XML needed for the engine: elements,
// attributes (converted or discarded), character data, CDATA sections,
// comments, processing instructions, and an optional XML declaration and
// DOCTYPE (skipped). Namespaces are not interpreted; qualified names are
// treated as plain tag names.
//
// Well-formedness of tag nesting is checked; the tokenizer returns a
// *SyntaxError on mismatched or unclosed tags.
//
// The scanner is chunked and index-driven: every window slide runs the
// branchless structural classification pass (see structidx.go), and text
// runs, start tags, and end tags are parsed by hopping the precomputed
// candidate positions — whole tags parse inside the window with no
// refill checks. The per-byte state machine remains as the fallback for
// anything the fast paths bail on (constructs straddling a refill,
// entities in attribute values, malformed shapes) and for opaque
// regions (comments, PIs, CDATA, DOCTYPE interiors), whose sentinel
// bytes are not structural and still use bytes.IndexByte run-skipping.
// The retained per-byte implementation (Reference) is the
// differential-testing and benchmarking baseline; both must produce
// byte-identical token streams (see DESIGN.md, "Chunked scanning" and
// "Structural index").
type Tokenizer struct {
	r    io.Reader
	opts Options

	buf    []byte
	pos    int   // next unread byte in buf
	n      int   // valid bytes in buf
	off    int64 // stream offset of buf[0]
	err    error // sticky read error (io.EOF or real error)
	closed bool

	// idx is the structural-byte index over buf[:n], rebuilt on every
	// window slide; queries return absolute buf offsets.
	idx StructIndex

	// pending tokens produced by attribute expansion or self-closing
	// tags. pendHead is the read cursor: delivery advances the head
	// instead of shifting the slice, so draining is copy-free.
	pending  []Token
	pendHead int
	stack    []string // open element names for well-formedness checking
	rootSeen bool     // a root element has been produced (rejects forests)

	nameBuf []byte // scratch for tag/attr names
	textBuf []byte // scratch for text content
	attrBuf []byte // scratch for attribute values of the current tag
	attrs   []attr // scratch for attributes of the current tag

	// names interns tag and attribute names: documents use few distinct
	// names, and the map lookup on string(nameBuf) does not allocate, so
	// steady-state tokenizing allocates only for character data.
	// nameCache is a small direct-mapped front for it: hot vocabularies
	// resolve with one string compare instead of a map probe.
	names     map[string]string
	nameCache [nameCacheSize]string
}

// attr is one parsed attribute of the current start tag.
type attr struct{ name, value string }

// NewTokenizer returns a tokenizer reading from r with default options.
func NewTokenizer(r io.Reader) *Tokenizer {
	return NewTokenizerOptions(r, DefaultOptions())
}

// NewTokenizerOptions returns a tokenizer with explicit options. A nil
// reader is permitted if Reset is called before the first Next.
func NewTokenizerOptions(r io.Reader, opts Options) *Tokenizer {
	return &Tokenizer{
		r:     r,
		opts:  opts,
		buf:   make([]byte, 0, 64<<10),
		names: make(map[string]string, 64),
	}
}

// maxRetainedNames bounds the interned-name table across Resets: XML
// vocabularies are normally tiny, but a pooled tokenizer fed documents
// with generated per-document tag names must not accumulate every name
// ever seen.
const maxRetainedNames = 4096

// maxRetainedScratch bounds the per-token scratch buffers across Resets:
// one pathological document with a multi-megabyte text run or attribute
// value must not pin that much memory inside every pooled tokenizer for
// the rest of the process lifetime.
const maxRetainedScratch = 64 << 10

// Reset rewinds the tokenizer to read a fresh document from r, retaining
// internal buffers up to a bound and truncating the scratch buffers so no
// bytes of the previous document remain reachable. A reset tokenizer
// behaves exactly like a newly constructed one (with the same Options),
// which makes it a pooled, allocation-free serving artifact: after
// warm-up, tokenizing a document allocates only for retained text.
//
//gcxlint:keep opts the mode is part of the tokenizer's identity; Reset swaps documents, not configuration
func (t *Tokenizer) Reset(r io.Reader) {
	if len(t.names) > maxRetainedNames {
		t.names = make(map[string]string, 64)
		t.nameCache = [nameCacheSize]string{} // entries point into the dropped table
	}
	t.r = r
	t.buf = t.buf[:0]
	t.pos = 0
	t.n = 0
	t.off = 0
	t.err = nil
	t.closed = false
	t.idx.Reset()
	t.pending = t.pending[:0]
	t.pendHead = 0
	t.stack = t.stack[:0]
	t.rootSeen = false
	t.nameBuf = resetScratch(t.nameBuf)
	t.textBuf = resetScratch(t.textBuf)
	t.attrBuf = resetScratch(t.attrBuf)
	// attr entries hold name and value strings of the previous document;
	// clear the backing array so they can be collected.
	clear(t.attrs[:cap(t.attrs)])
	t.attrs = t.attrs[:0]
}

// resetScratch truncates a scratch buffer for reuse, releasing it
// entirely if a previous document grew it past maxRetainedScratch.
func resetScratch(b []byte) []byte {
	if cap(b) > maxRetainedScratch {
		return nil
	}
	return b[:0]
}

// Depth returns the number of currently open elements.
func (t *Tokenizer) Depth() int { return len(t.stack) }

var errUnexpectedEOF = errors.New("unexpected end of input")

//gcxlint:allocok error construction terminates the scan
func (t *Tokenizer) syntaxErr(msg string) error {
	return &SyntaxError{Offset: t.off + int64(t.pos), Msg: msg}
}

// fill ensures at least one unread byte is available, reading more input if
// necessary. It returns false at end of input or on error.
//
//gcxlint:noalloc
func (t *Tokenizer) fill() bool {
	if t.pos < t.n {
		return true
	}
	if t.err != nil {
		return false
	}
	// Slide the window.
	t.off += int64(t.n)
	t.pos = 0
	t.n = 0
	if cap(t.buf) == 0 {
		t.buf = make([]byte, 64<<10) //gcxlint:allocok one-time window growth for a tokenizer constructed bufferless
	}
	t.buf = t.buf[:cap(t.buf)]
	for {
		n, err := t.r.Read(t.buf)
		if n > 0 {
			t.n = n
			// Classify the fresh window: one branchless pass funds every
			// index-driven fast path until the next slide.
			t.idx.Build(t.buf[:n])
			if err != nil {
				t.err = err
			}
			return true
		}
		if err != nil {
			t.err = err
			return false
		}
	}
}

//gcxlint:noalloc
func (t *Tokenizer) peek() (byte, bool) {
	if !t.fill() {
		return 0, false
	}
	return t.buf[t.pos], true
}

//gcxlint:noalloc
func (t *Tokenizer) next() (byte, bool) {
	if !t.fill() {
		return 0, false
	}
	c := t.buf[t.pos]
	t.pos++
	return c, true
}

// skipComment consumes input through the first "-->" and returns true,
// or false on EOF. Comments need their own scan rather than
// skipUntil("-->"): the naive matcher loses progress on runs of dashes,
// so a comment ending in "--->" — whose terminator overlaps the extra
// dash — would wrongly read as unterminated.
func (t *Tokenizer) skipComment() bool {
	dashes := 0
	for {
		if t.pos >= t.n && !t.fill() {
			return false
		}
		if dashes == 0 {
			// No partial terminator: everything before the next '-' is
			// interior and can be skipped in one IndexByte call.
			i := bytes.IndexByte(t.buf[t.pos:t.n], '-')
			if i < 0 {
				t.pos = t.n
				continue
			}
			t.pos += i + 1
			dashes = 1
			continue
		}
		c := t.buf[t.pos]
		t.pos++
		switch {
		case c == '-':
			dashes++
		case c == '>' && dashes >= 2:
			return true
		default:
			dashes = 0
		}
	}
}

// skipUntil consumes input through the first occurrence of the literal
// sequence seq and returns true, or false on EOF. seq must be at least
// two bytes and must not have a repeated prefix (see skipComment for
// why "-->" does not qualify).
func (t *Tokenizer) skipUntil(seq string) bool {
	matched := 0
	for {
		if t.pos >= t.n && !t.fill() {
			return false
		}
		if matched == 0 {
			// Nothing matched yet: skip the run up to the next candidate
			// first byte in one IndexByte call.
			i := bytes.IndexByte(t.buf[t.pos:t.n], seq[0])
			if i < 0 {
				t.pos = t.n
				continue
			}
			t.pos += i + 1
			matched = 1
			continue
		}
		c := t.buf[t.pos]
		t.pos++
		if c == seq[matched] {
			matched++
			if matched == len(seq) {
				return true
			}
		} else if c == seq[0] {
			matched = 1
		} else {
			matched = 0
		}
	}
}

//gcxlint:noalloc
func isNameStart(c byte) bool {
	return c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

//gcxlint:noalloc
func isNameByte(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

//gcxlint:noalloc
func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

// nameCacheSize is the direct-mapped interning cache size. Real
// vocabularies are a handful of names; 64 slots make collisions rare
// while keeping the table one cache line of string headers per way.
const nameCacheSize = 64

// intern returns the canonical string for the name bytes b (len(b) > 0)
// without allocating for names already seen: a direct-mapped cache
// compare first, the interning map second. The string conversions in
// comparison and map-key position are elided by the compiler.
//
//gcxlint:noalloc
func (t *Tokenizer) intern(b []byte) string {
	h := (uint32(b[0])*131 + uint32(b[len(b)-1])*31 + uint32(len(b))) % nameCacheSize
	if c := t.nameCache[h]; len(c) == len(b) && c == string(b) {
		return c
	}
	if interned, ok := t.names[string(b)]; ok {
		t.nameCache[h] = interned
		return interned
	}
	owned := string(b) //gcxlint:allocok interning copies each distinct name exactly once
	t.names[owned] = owned
	t.nameCache[h] = owned
	return owned
}

// readName reads an XML name and returns it as an interned string. The
// fast path scans the name inside the current window and interns straight
// from the window subslice; only a name that straddles a refill goes
// through nameBuf.
//
//gcxlint:noalloc
func (t *Tokenizer) readName() (string, error) {
	c, ok := t.peek()
	if !ok {
		return "", errUnexpectedEOF
	}
	if !isNameStart(c) {
		return "", t.syntaxErr(fmt.Sprintf("expected name, found %q", c)) //gcxlint:allocok error construction terminates the scan
	}
	win := t.buf[t.pos:t.n]
	i := 1
	for i < len(win) && isNameByte(win[i]) {
		i++
	}
	if i < len(win) {
		// Whole name in the window: intern without copying.
		name := win[:i]
		t.pos += i
		return t.intern(name), nil
	}
	// The name may continue past the refill boundary: accumulate.
	t.nameBuf = append(t.nameBuf[:0], win...)
	t.pos = t.n
	for {
		c, ok := t.peek()
		if !ok || !isNameByte(c) {
			break
		}
		t.nameBuf = append(t.nameBuf, c)
		t.pos++
	}
	return t.intern(t.nameBuf), nil
}

//gcxlint:noalloc
func (t *Tokenizer) skipSpace() {
	for {
		if t.pos >= t.n && !t.fill() {
			return
		}
		win := t.buf[t.pos:t.n]
		i := 0
		for i < len(win) && isSpace(win[i]) {
			i++
		}
		t.pos += i
		if i < len(win) {
			return
		}
	}
}

// resolveEntity appends the expansion of the entity starting after '&' to
// dst. It consumes through the terminating ';'.
//
//gcxlint:noalloc
func (t *Tokenizer) resolveEntity(dst []byte) ([]byte, error) {
	t.nameBuf = t.nameBuf[:0]
	for {
		c, ok := t.next()
		if !ok {
			return dst, errUnexpectedEOF
		}
		if c == ';' {
			break
		}
		if len(t.nameBuf) > 10 {
			return dst, t.syntaxErr("entity reference too long")
		}
		t.nameBuf = append(t.nameBuf, c)
	}
	// The conversion in switch-tag position is elided by the compiler, so
	// named entities resolve without allocating; only the error paths
	// build a string from the scratch.
	switch string(t.nameBuf) {
	case "amp":
		return append(dst, '&'), nil
	case "lt":
		return append(dst, '<'), nil
	case "gt":
		return append(dst, '>'), nil
	case "apos":
		return append(dst, '\''), nil
	case "quot":
		return append(dst, '"'), nil
	}
	if len(t.nameBuf) > 0 && t.nameBuf[0] == '#' {
		numeric := t.nameBuf[1:]
		base := uint32(10)
		if len(numeric) > 0 && (numeric[0] == 'x' || numeric[0] == 'X') {
			numeric, base = numeric[1:], 16
		}
		n, ok := parseCharRef(numeric, base)
		if !ok || !isXMLChar(rune(n)) {
			return dst, t.syntaxErr("bad character reference &" + string(t.nameBuf) + ";") //gcxlint:allocok error construction terminates the scan
		}
		return appendRune(dst, rune(n)), nil
	}
	return dst, t.syntaxErr("unknown entity &" + string(t.nameBuf) + ";") //gcxlint:allocok error construction terminates the scan
}

// parseCharRef parses the digits of a numeric character reference without
// a string conversion (entity resolution sits on the text path). Values
// above the XML character space saturate to an out-of-range code point,
// which the caller rejects through isXMLChar.
//
//gcxlint:noalloc
func parseCharRef(digits []byte, base uint32) (uint32, bool) {
	if len(digits) == 0 {
		return 0, false
	}
	var n uint32
	for _, c := range digits {
		var d uint32
		switch {
		case c >= '0' && c <= '9':
			d = uint32(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint32(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint32(c-'A') + 10
		default:
			return 0, false
		}
		if d >= base {
			return 0, false
		}
		if n = n*base + d; n > 0x10FFFF {
			n = 0x110000
		}
	}
	return n, true
}

// isXMLChar reports whether r is in the XML 1.0 Char production:
// #x9 | #xA | #xD | [#x20-#xD7FF] | [#xE000-#xFFFD] | [#x10000-#x10FFFF].
// Character references outside it (NUL, surrogates, #xFFFE/#xFFFF, values
// above #x10FFFF) are not XML characters and must be rejected.
//
//gcxlint:noalloc
func isXMLChar(r rune) bool {
	switch {
	case r == 0x9 || r == 0xA || r == 0xD:
		return true
	case r >= 0x20 && r <= 0xD7FF:
		return true
	case r >= 0xE000 && r <= 0xFFFD:
		return true
	case r >= 0x10000 && r <= 0x10FFFF:
		return true
	}
	return false
}

// borrowString returns b's bytes as a string without copying. Callers must
// not read the string after the backing scratch buffer is rewound — this is
// the BorrowText contract documented on Options.
//
//gcxlint:noalloc
func borrowString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// textString converts the textBuf scratch to the Data of a Text token:
// a borrowed view under BorrowText, an owned copy otherwise.
func (t *Tokenizer) textString() string {
	if t.opts.BorrowText {
		return borrowString(t.textBuf)
	}
	return string(t.textBuf)
}

//gcxlint:noalloc
func appendRune(dst []byte, r rune) []byte {
	var tmp [4]byte
	n := encodeRune(tmp[:], r)
	return append(dst, tmp[:n]...)
}

// encodeRune is a minimal UTF-8 encoder (avoids importing unicode/utf8 in
// the hot path file; behaviour matches utf8.EncodeRune for valid runes).
//
//gcxlint:noalloc
func encodeRune(p []byte, r rune) int {
	switch {
	case r < 0x80:
		p[0] = byte(r)
		return 1
	case r < 0x800:
		p[0] = 0xC0 | byte(r>>6)
		p[1] = 0x80 | byte(r)&0x3F
		return 2
	case r < 0x10000:
		p[0] = 0xE0 | byte(r>>12)
		p[1] = 0x80 | byte(r>>6)&0x3F
		p[2] = 0x80 | byte(r)&0x3F
		return 3
	default:
		p[0] = 0xF0 | byte(r>>18)
		p[1] = 0x80 | byte(r>>12)&0x3F
		p[2] = 0x80 | byte(r>>6)&0x3F
		p[3] = 0x80 | byte(r)&0x3F
		return 4
	}
}

// Next returns the next token in the stream. At end of input it returns a
// token with Kind == EOF and a nil error; subsequent calls keep returning
// EOF. A non-nil error indicates malformed input or a read failure; read
// failures take precedence over the syntax confusion they cause.
func (t *Tokenizer) Next() (Token, error) {
	// Queued tokens (attribute expansion, self-closing end tags) drain by
	// advancing the head cursor — no shifting and no truncation here:
	// producers rewind the drained queue before appending, which keeps
	// this function under the inlining budget so a pop is a few loads in
	// the caller's frame.
	if h := t.pendHead; h < len(t.pending) {
		t.pendHead = h + 1
		return t.pending[h], nil
	}
	return t.scan()
}

// errOr applies the read-error precedence rule at scan's error returns:
// a read failure takes precedence over the syntax confusion it causes.
//
//gcxlint:noalloc
func (t *Tokenizer) errOr(err error) error {
	if t.err != nil && t.err != io.EOF {
		return t.err
	}
	return err
}

func (t *Tokenizer) scan() (Token, error) {
	if t.closed {
		return Token{Kind: EOF}, nil
	}
	for {
		c, ok := t.peek()
		if !ok {
			if t.err != nil && t.err != io.EOF {
				return Token{}, t.err
			}
			if len(t.stack) > 0 {
				return Token{}, t.syntaxErr("unexpected end of input: unclosed element <" + t.stack[len(t.stack)-1] + ">")
			}
			t.closed = true
			return Token{Kind: EOF}, nil
		}
		if c == '<' {
			t.pos++
			// Direct dispatch for the two hot tag kinds, skipping
			// readMarkup's extra call layer; '?'/'!' and window-edge cases
			// take the general path below.
			if t.pos < t.n {
				switch c2 := t.buf[t.pos]; c2 {
				case '?', '!':
					// comments/PIs/declarations: cold path
				case '/':
					t.pos++
					tok, err := t.endTag()
					if err != nil {
						return Token{}, t.errOr(err)
					}
					return tok, nil
				default:
					// Whole-tag fast path straight from the dispatch; the
					// slow readStartTag only runs on a bail.
					if tok, ok := t.fastStartTag(); ok {
						return tok, nil
					}
					tok, _, err := t.readStartTag()
					if err != nil {
						return Token{}, t.errOr(err)
					}
					return tok, nil
				}
			}
			tok, produced, err := t.readMarkup()
			if err != nil {
				return Token{}, t.errOr(err)
			}
			if produced {
				return tok, nil
			}
			continue // comment/PI/declaration: keep scanning
		}
		tok, produced, err := t.readText()
		if err != nil {
			return Token{}, t.errOr(err)
		}
		if produced {
			return tok, nil
		}
	}
}

// readText consumes character data up to the next '<' and reports whether a
// Text token was produced (whitespace-only runs may be suppressed). One
// maximal run yields at most one Text token, exactly like Reference.
//
// Fast path: hop the structural-index candidates to the '<' that ends
// the run. Quote and '>' candidates are plain character data and cost
// one dispatch each; reaching '<' with no '&' en route means the whole
// run lies inside the current window, so under BorrowText the token
// borrows the window subslice directly — zero copies, zero allocations.
// A run that straddles the refill (index exhausted) or contains '&' is
// accumulated in textBuf, because the refill overwrites the window.
//
//gcxlint:noalloc
func (t *Tokenizer) readText() (Token, bool, error) {
	for p := t.pos; ; {
		i := t.idx.Next(p)
		if i < 0 {
			break // the run straddles the refill boundary
		}
		c := t.buf[i]
		if c == '<' {
			run := t.buf[t.pos:i]
			t.pos = i
			return t.emitText(run, isAllSpace(run))
		}
		if c == '&' {
			break // entity: the slow path resolves into textBuf
		}
		p = i + 1 // '"', '\'', '>' are character data
	}
	// Slow path: the run straddles the window or contains entities.
	// Consume it in sub-runs delimited by '<', '&', and refills.
	t.textBuf = t.textBuf[:0]
	whitespaceOnly := true
	for {
		if t.pos >= t.n && !t.fill() {
			break
		}
		win := t.buf[t.pos:t.n]
		stop, term := len(win), byte(0)
		if i := bytes.IndexByte(win, '<'); i >= 0 {
			stop, term = i, '<'
		}
		if i := bytes.IndexByte(win[:stop], '&'); i >= 0 {
			stop, term = i, '&'
		}
		run := win[:stop]
		if whitespaceOnly && !isAllSpace(run) {
			whitespaceOnly = false
		}
		t.textBuf = append(t.textBuf, run...)
		t.pos += stop
		if term == '<' {
			break
		}
		if term == '&' {
			t.pos++
			var err error
			t.textBuf, err = t.resolveEntity(t.textBuf)
			if err != nil {
				return Token{}, false, err
			}
			whitespaceOnly = false
		}
	}
	return t.emitText(t.textBuf, whitespaceOnly)
}

// emitText applies the suppression rules shared by both readText paths
// and converts the accumulated run into a Text token: a borrowed view
// under BorrowText (of the window on the fast path, of textBuf on the
// slow path — both live until the next Next call), an owned copy
// otherwise.
//
//gcxlint:noalloc
func (t *Tokenizer) emitText(data []byte, whitespaceOnly bool) (Token, bool, error) {
	if len(data) == 0 {
		return Token{}, false, nil
	}
	if whitespaceOnly && !t.opts.KeepWhitespaceText {
		return Token{}, false, nil
	}
	if len(t.stack) == 0 {
		if whitespaceOnly {
			return Token{}, false, nil
		}
		return Token{}, false, t.syntaxErr("character data outside the root element")
	}
	if t.opts.BorrowText {
		return Token{Kind: Text, Data: borrowString(data)}, true, nil
	}
	return Token{Kind: Text, Data: string(data)}, true, nil //gcxlint:allocok owned-copy mode is for callers that retain text
}

// isAllSpace reports whether every byte of b is XML whitespace.
//
//gcxlint:noalloc
func isAllSpace(b []byte) bool {
	for _, c := range b {
		if !isSpace(c) {
			return false
		}
	}
	return true
}

// readMarkup handles input immediately after '<'. It reports whether a token
// was produced (comments, PIs, and declarations produce none).
func (t *Tokenizer) readMarkup() (Token, bool, error) {
	c, ok := t.peek()
	if !ok {
		return Token{}, false, errUnexpectedEOF
	}
	switch c {
	case '?': // processing instruction or XML declaration
		t.pos++
		if !t.skipUntil("?>") {
			return Token{}, false, t.syntaxErr("unterminated processing instruction")
		}
		return Token{}, false, nil
	case '!':
		t.pos++
		return t.readBang()
	case '/':
		t.pos++
		tok, err := t.endTag()
		if err != nil {
			return Token{}, false, err
		}
		return tok, true, nil
	default:
		return t.readStartTag()
	}
}

// endTag parses a closing tag (after "</"): the in-window fast path
// first, the refilling state machine with its diagnostics on a bail.
func (t *Tokenizer) endTag() (Token, error) {
	if tok, ok := t.fastEndTag(); ok {
		return tok, nil
	}
	name, err := t.readName()
	if err != nil {
		return Token{}, err
	}
	t.skipSpace()
	if c, ok := t.next(); !ok || c != '>' {
		return Token{}, t.syntaxErr("malformed closing tag </" + name)
	}
	if len(t.stack) == 0 {
		return Token{}, t.syntaxErr("closing tag </" + name + "> with no open element")
	}
	top := t.stack[len(t.stack)-1]
	if top != name {
		return Token{}, t.syntaxErr("mismatched closing tag </" + name + ">, expected </" + top + ">")
	}
	t.stack = t.stack[:len(t.stack)-1]
	return Token{Kind: EndElement, Name: name}, nil
}

// readBang handles "<!" constructs: comments, CDATA, DOCTYPE.
func (t *Tokenizer) readBang() (Token, bool, error) {
	c, ok := t.peek()
	if !ok {
		return Token{}, false, errUnexpectedEOF
	}
	switch c {
	case '-': // comment
		t.pos++
		if c, ok := t.next(); !ok || c != '-' {
			return Token{}, false, t.syntaxErr("malformed comment")
		}
		if !t.skipComment() {
			return Token{}, false, t.syntaxErr("unterminated comment")
		}
		return Token{}, false, nil
	case '[': // CDATA
		for _, want := range "[CDATA[" {
			c, ok := t.next()
			if !ok || c != byte(want) {
				return Token{}, false, t.syntaxErr("malformed CDATA section")
			}
		}
		return t.readCDATA()
	default: // DOCTYPE or other declaration: skip to matching '>'
		// The internal subset may contain quoted literals (entity
		// values, defaults, system ids), comments, and PIs whose content
		// legally includes '<', '>', and quote characters — all three
		// are opaque to the nesting count. pfx tracks progress through a
		// "<!--" opener (1='<', 2='<!', 3='<!-').
		depth, pfx := 1, 0
		unterminated := func() (Token, bool, error) {
			return Token{}, false, t.syntaxErr("unterminated declaration")
		}
		for {
			if t.pos >= t.n && !t.fill() {
				return unterminated()
			}
			if pfx == 0 {
				// Outside any "<!--"/"<?" prefix, only '<', '>', and
				// quote characters can change state: skip the run up to
				// the next sentinel in one IndexAny call.
				i := bytes.IndexAny(t.buf[t.pos:t.n], declSentinels)
				if i < 0 {
					t.pos = t.n
					continue
				}
				t.pos += i
			}
			c := t.buf[t.pos]
			t.pos++
			if pfx == 1 && c == '?' {
				// "<?": a processing instruction inside the subset.
				pfx = 0
				depth-- // undo the '<' that started it
				if !t.skipUntil("?>") {
					return unterminated()
				}
				continue
			}
			if pfx == 3 && c == '-' {
				// "<!--": a comment inside the subset.
				pfx = 0
				depth--
				if !t.skipComment() {
					return unterminated()
				}
				continue
			}
			switch {
			case c == '<':
				pfx = 1
			case pfx == 1 && c == '!':
				pfx = 2
			case pfx == 2 && c == '-':
				pfx = 3
			default:
				pfx = 0
			}
			switch c {
			case '"', '\'':
				// Quoted literal: opaque, skip straight to the closing
				// quote run by run.
				for {
					if t.pos >= t.n && !t.fill() {
						return unterminated()
					}
					i := bytes.IndexByte(t.buf[t.pos:t.n], c)
					if i < 0 {
						t.pos = t.n
						continue
					}
					t.pos += i + 1
					break
				}
			case '<':
				depth++
			case '>':
				depth--
				if depth == 0 {
					return Token{}, false, nil
				}
			}
		}
	}
}

// declSentinels are the only bytes that can change state while scanning a
// DOCTYPE/markup declaration outside a "<!--"/"<?" prefix: nesting
// brackets and quote openers.
const declSentinels = `<>"'`

func (t *Tokenizer) readCDATA() (Token, bool, error) {
	if len(t.stack) == 0 {
		return Token{}, false, t.syntaxErr("CDATA outside the root element")
	}
	t.textBuf = t.textBuf[:0]
	matched := 0
	for {
		if t.pos >= t.n && !t.fill() {
			return Token{}, false, t.syntaxErr("unterminated CDATA section")
		}
		if matched == 0 {
			// Interior run: everything before the next ']' is content and
			// is bulk-copied in one append.
			win := t.buf[t.pos:t.n]
			i := bytes.IndexByte(win, ']')
			if i < 0 {
				t.textBuf = append(t.textBuf, win...)
				t.pos = t.n
				continue
			}
			t.textBuf = append(t.textBuf, win[:i]...)
			t.pos += i + 1
			matched = 1
			continue
		}
		c := t.buf[t.pos]
		t.pos++
		switch {
		case c == ']':
			// In a run of brackets only the FINAL two can belong to the
			// "]]>" terminator; earlier ones are content. Flushing the
			// whole run would lose the terminator for content ending in
			// ']', rejecting valid CDATA like "<![CDATA[x]]]>".
			if matched == 2 {
				t.textBuf = append(t.textBuf, ']')
			} else {
				matched++
			}
		case c == '>' && matched == 2:
			if len(t.textBuf) == 0 {
				return Token{}, false, nil
			}
			return Token{Kind: Text, Data: t.textString()}, true, nil
		default:
			for ; matched > 0; matched-- {
				t.textBuf = append(t.textBuf, ']')
			}
			t.textBuf = append(t.textBuf, c)
		}
	}
}

// fastEndTag parses a closing tag entirely inside the current window:
// one index hop to the tag's first structural byte (its '>' when well
// formed), one string compare of the interior against the top of stack,
// and a pop. No per-byte name validation is needed on this path: the
// stack top is a known-valid name, so interior == top implies the
// interior is valid too (optional trailing spaces are trimmed first,
// since `</name >` is legal). Anything else — the tag straddling the
// window edge, a quote or '<'/'&' before the '>', a mismatched or
// space-embedded name, an empty stack — leaves the tokenizer state
// untouched and reports ok=false, so the state machine runs unchanged
// and produces its exact errors and offsets. The matching top of stack
// doubles as the interned name: no map probe at all.
//
//gcxlint:noalloc
func (t *Tokenizer) fastEndTag() (Token, bool) {
	i := t.pos
	gt := t.idx.Next(i)
	if gt < 0 || t.buf[gt] != '>' {
		return Token{}, false // window edge or malformed: slow path decides
	}
	if len(t.stack) == 0 {
		return Token{}, false
	}
	j := gt
	for j > i && isSpace(t.buf[j-1]) {
		j--
	}
	top := t.stack[len(t.stack)-1]
	if top != string(t.buf[i:j]) {
		return Token{}, false // mismatch: slow path builds the error
	}
	t.stack = t.stack[:len(t.stack)-1]
	t.pos = gt + 1
	return Token{Kind: EndElement, Name: top}, true
}

// fastStartTag parses a start tag entirely inside the current window,
// driven by the structural index in a single pass: raw bounded loops
// cover the non-structural stretches (names, spaces, '='), and every
// structural byte of the tag — each attribute value's quotes, the
// closing '>' — is reached by hopping the precomputed candidates, so
// each candidate is visited exactly once and there are no refill checks
// and no per-byte state machine. '<'/'>' inside quoted values are
// skipped as content by the value hop (this is why quotes are
// classified at all). Attribute tokens are appended to the pending
// queue as they parse; the queue is empty on entry — a new tag is only
// parsed once it drains — so a bail just truncates it back to empty.
//
// Any anomaly — the tag straddling the refill, an entity anywhere in
// the tag, a bare '<'/'&', a malformed shape — bails with the scan
// position untouched, so the original state machine reruns from the
// same byte and produces byte-identical tokens, errors, and offsets.
//
//gcxlint:noalloc
func (t *Tokenizer) fastStartTag() (Token, bool) {
	var (
		buf         = t.buf
		n           = t.n
		name        string
		selfClosing bool
		i, j        int
	)
	i = t.pos
	if !isNameStart(buf[i]) {
		goto bail
	}
	j = i + 1
	for j < n && isNameByte(buf[j]) {
		j++
	}
	if j >= n {
		goto bail // the name may continue past the window
	}
	if len(t.stack) == 0 && t.rootSeen {
		goto bail // multiple roots: slow path reports it
	}
	name = t.intern(buf[i:j])
	// The pending queue is fully drained before a new tag is parsed
	// (head == len); rewind it so the tag's tokens start at slot 0, and
	// so a bail can discard partial appends by truncating again. A bail
	// is harmless: the slow path rewinds its own scratch before use.
	t.pending = t.pending[:0]
	t.pendHead = 0
	i = j
	for {
		// Hop to the next structural byte: the opening quote of the next
		// attribute value, or the '>' that closes the tag.
		cand := t.idx.Next(i)
		if cand < 0 {
			goto bail // tag end not in this window
		}
		switch c := buf[cand]; c {
		case '>':
			// [i, cand) must be spaces, optionally ending in the '/' of a
			// self-closing tag.
			end := cand
			if end > i && buf[end-1] == '/' {
				selfClosing = true
				end--
			}
			for ; i < end; i++ {
				if !isSpace(buf[i]) {
					goto bail
				}
			}
			// Commit: the parse is final and matches the slow path's tail.
			t.pos = cand + 1
			t.rootSeen = true
			if selfClosing {
				t.pending = append(t.pending, Token{Kind: EndElement, Name: name})
			} else {
				t.stack = append(t.stack, name)
			}
			return Token{Kind: StartElement, Name: name}, true
		case '"', '\'':
			// [i, cand) must be: spaces, attribute name, spaces, '=',
			// spaces — ending exactly at the quote.
			for i < cand && isSpace(buf[i]) {
				i++
			}
			if i == cand || !isNameStart(buf[i]) {
				goto bail
			}
			j = i + 1
			for j < cand && isNameByte(buf[j]) {
				j++
			}
			aname := t.intern(buf[i:j])
			i = j
			for i < cand && isSpace(buf[i]) {
				i++
			}
			if i == cand || buf[i] != '=' {
				goto bail
			}
			i++
			for i < cand && isSpace(buf[i]) {
				i++
			}
			if i != cand {
				goto bail // non-space bytes between '=' and the quote
			}
			// The value: hop candidates to the matching quote. '<', '>',
			// and the other quote inside are content; '&' means an entity
			// the slow path must resolve.
			vstart := cand + 1
			vend := -1
			for p := vstart; vend < 0; {
				k := t.idx.Next(p)
				if k < 0 {
					goto bail // value continues past the window
				}
				switch buf[k] {
				case c:
					vend = k
				case '&':
					goto bail
				}
				p = k + 1
			}
			if t.opts.AttributesAsElements {
				// Under BorrowText the value borrows the window directly —
				// no scratch copy. This is within the contract: the window
				// only slides inside fill, fill only runs from scan, and
				// scan does not resume until the tag's pending tokens have
				// fully drained, which is exactly the borrowed view's
				// guaranteed lifetime.
				var value string
				if t.opts.BorrowText {
					value = borrowString(buf[vstart:vend])
				} else {
					value = string(buf[vstart:vend]) //gcxlint:allocok owned-copy mode is for callers that retain text
				}
				if value == "" {
					t.pending = append(t.pending,
						Token{Kind: StartElement, Name: aname},
						Token{Kind: EndElement, Name: aname})
				} else {
					t.pending = append(t.pending,
						Token{Kind: StartElement, Name: aname},
						Token{Kind: Text, Data: value},
						Token{Kind: EndElement, Name: aname})
				}
			}
			i = vend + 1
		default:
			goto bail // bare '<' or '&' inside a tag: slow path diagnoses
		}
	}

bail:
	t.pending = t.pending[:0]
	return Token{}, false
}

// readStartTag parses an opening tag (after '<') with the per-byte
// state machine, including attributes. The index-driven fast path
// (fastStartTag) is attempted by scan's dispatch before this runs; a
// bail reruns this machine from the same position.
func (t *Tokenizer) readStartTag() (Token, bool, error) {
	name, err := t.readName()
	if err != nil {
		return Token{}, false, err
	}
	if len(t.stack) == 0 && t.sawRoot() {
		return Token{}, false, t.syntaxErr("multiple root elements: <" + name + ">")
	}
	// Attribute scratch is safe to rewind here: the pending queue (which
	// may reference attrBuf under BorrowText) is always drained before the
	// next tag is parsed.
	t.attrs = t.attrs[:0]
	t.attrBuf = t.attrBuf[:0]
	selfClosing := false
	for {
		t.skipSpace()
		c, ok := t.peek()
		if !ok {
			return Token{}, false, errUnexpectedEOF
		}
		if c == '>' {
			t.pos++
			break
		}
		if c == '/' {
			t.pos++
			if c, ok := t.next(); !ok || c != '>' {
				return Token{}, false, t.syntaxErr("malformed self-closing tag <" + name)
			}
			selfClosing = true
			break
		}
		aname, err := t.readName()
		if err != nil {
			return Token{}, false, err
		}
		t.skipSpace()
		if c, ok := t.next(); !ok || c != '=' {
			return Token{}, false, t.syntaxErr("attribute " + aname + " missing '='")
		}
		t.skipSpace()
		quote, ok := t.next()
		if !ok || (quote != '"' && quote != '\'') {
			return Token{}, false, t.syntaxErr("attribute " + aname + " missing quoted value")
		}
		// The value is bulk-copied run by run: everything up to the next
		// closing quote or '&' moves in one append. It lands in attrBuf
		// (not a window borrow) because parsing the rest of the tag can
		// refill the window while the value must survive until the
		// pending attribute tokens drain.
		valStart := len(t.attrBuf)
	value:
		for {
			if t.pos >= t.n && !t.fill() {
				return Token{}, false, errUnexpectedEOF
			}
			win := t.buf[t.pos:t.n]
			stop, term := len(win), byte(0)
			if i := bytes.IndexByte(win, quote); i >= 0 {
				stop, term = i, quote
			}
			if i := bytes.IndexByte(win[:stop], '&'); i >= 0 {
				stop, term = i, '&'
			}
			t.attrBuf = append(t.attrBuf, win[:stop]...)
			t.pos += stop
			switch term {
			case 0: // window exhausted mid-value: refill and continue
			case '&':
				t.pos++
				t.attrBuf, err = t.resolveEntity(t.attrBuf)
				if err != nil {
					return Token{}, false, err
				}
			default: // the closing quote
				t.pos++
				break value
			}
		}
		if t.opts.AttributesAsElements {
			var value string
			if t.opts.BorrowText {
				value = borrowString(t.attrBuf[valStart:])
			} else {
				value = string(t.attrBuf[valStart:])
			}
			t.attrs = append(t.attrs, attr{aname, value})
		} else {
			t.attrBuf = t.attrBuf[:valStart]
		}
	}

	t.rootSeen = true
	start := Token{Kind: StartElement, Name: name}
	if !selfClosing {
		t.stack = append(t.stack, name)
	}
	// Queue attribute subelements (and the closing tag for self-closing
	// elements) behind the start token, rewinding the drained queue
	// first (Next never truncates; producers do).
	t.pending = t.pending[:0]
	t.pendHead = 0
	for _, a := range t.attrs {
		t.pending = append(t.pending, Token{Kind: StartElement, Name: a.name})
		if a.value != "" {
			t.pending = append(t.pending, Token{Kind: Text, Data: a.value})
		}
		t.pending = append(t.pending, Token{Kind: EndElement, Name: a.name})
	}
	if selfClosing {
		t.pending = append(t.pending, Token{Kind: EndElement, Name: name})
	}
	return start, true, nil
}

func (t *Tokenizer) sawRoot() bool { return t.rootSeen }
