package xmlstream

import (
	"bufio"
	"fmt"
	"io"

	"gcx/internal/obs"
)

// Writer serializes a token stream back to XML text. It performs minimal
// escaping of character data (&, <, >) and checks tag balance, so any
// well-formed token sequence produces well-formed XML.
//
// The zero value is not usable; construct with NewWriter.
type Writer struct {
	w     *bufio.Writer
	dst   io.Writer
	stack []string
	n     int64
	// first is the obs.Now timestamp of the first output byte (0 until
	// one is produced) — the time-to-first-result stamp. It marks when
	// the byte enters the writer, not when bufio flushes it: flushing is
	// I/O batching, producing the byte is what evaluation latency means.
	first int64
	err   error
}

// ResultFlusher is implemented by destinations that can push the first
// result byte further down the stack (e.g. an HTTP response writer whose
// transport-level flush commits the headers and ships the body buffer).
// FlushFirst calls it after draining the bufio layer, so the engine's
// earliest-answering guarantee extends past its own batching to the
// destination's.
type ResultFlusher interface {
	FlushResult()
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer {
	if bw, ok := w.(*bufio.Writer); ok {
		return &Writer{w: bw, dst: w}
	}
	return &Writer{w: bufio.NewWriterSize(w, 32<<10), dst: w}
}

// Reset discards all state and redirects output to out, retaining the
// internal buffer. Unflushed bytes from an aborted previous run are
// dropped. Must not be called on a Writer constructed directly around a
// caller-owned *bufio.Writer that is also the new destination.
func (w *Writer) Reset(out io.Writer) {
	w.w.Reset(out)
	w.dst = out
	w.stack = w.stack[:0]
	w.n = 0
	w.first = 0
	w.err = nil
}

// FlushFirst pushes buffered output toward the destination without the
// end-of-run balance check: the evaluator calls it once, right after the
// first result byte is certain, so the byte leaves the 32KB bufio layer
// (and, via ResultFlusher, the transport's buffers) instead of riding
// along until the final Flush. Write errors surface through Err as usual.
func (w *Writer) FlushFirst() {
	if w.first == 0 || w.err != nil {
		return
	}
	if err := w.w.Flush(); err != nil {
		w.err = err
		return
	}
	if rf, ok := w.dst.(ResultFlusher); ok {
		rf.FlushResult()
	}
}

// BytesWritten returns the number of bytes emitted so far (pre-buffering).
func (w *Writer) BytesWritten() int64 { return w.n }

// Delivered returns the number of result bytes that have actually
// reached the destination writer: emitted minus still sitting in the
// bufio layer. A failed run that never flushed has Delivered 0 even
// though bytes entered the writer — nothing was answered.
func (w *Writer) Delivered() int64 { return w.n - int64(w.w.Buffered()) }

// FirstByteAt returns the obs.Now timestamp at which the first output
// byte was produced, or 0 if nothing has been written since the last
// Reset.
func (w *Writer) FirstByteAt() int64 { return w.first }

// stampFirst records the first-result-byte timestamp. Runs on the output
// hot path for every emitted string/byte, so it must not allocate.
//
//gcxlint:noalloc
func (w *Writer) stampFirst() {
	if w.first == 0 {
		w.first = obs.Now()
	}
}

// Depth returns the number of currently open elements.
func (w *Writer) Depth() int { return len(w.stack) }

// Err returns the first error encountered, if any.
func (w *Writer) Err() error { return w.err }

func (w *Writer) writeString(s string) {
	if w.err != nil || len(s) == 0 {
		return
	}
	w.stampFirst()
	n, err := w.w.WriteString(s)
	w.n += int64(n)
	if err != nil {
		w.err = err
	}
}

func (w *Writer) writeByte(c byte) {
	if w.err != nil {
		return
	}
	w.stampFirst()
	if err := w.w.WriteByte(c); err != nil {
		w.err = err
		return
	}
	w.n++
}

// StartElement emits an opening tag.
func (w *Writer) StartElement(name string) {
	w.writeByte('<')
	w.writeString(name)
	w.writeByte('>')
	w.stack = append(w.stack, name)
}

// EndElement emits a closing tag. The name must match the innermost open
// element; a mismatch is recorded as an error.
func (w *Writer) EndElement(name string) {
	if w.err == nil {
		if len(w.stack) == 0 {
			w.err = fmt.Errorf("xmlstream: closing </%s> with no open element", name)
			return
		}
		if top := w.stack[len(w.stack)-1]; top != name {
			w.err = fmt.Errorf("xmlstream: closing </%s>, expected </%s>", name, top)
			return
		}
	}
	w.stack = w.stack[:len(w.stack)-1]
	w.writeString("</")
	w.writeString(name)
	w.writeByte('>')
}

// Text emits escaped character data.
func (w *Writer) Text(data string) {
	start := 0
	for i := 0; i < len(data); i++ {
		var esc string
		switch data[i] {
		case '&':
			esc = "&amp;"
		case '<':
			esc = "&lt;"
		case '>':
			esc = "&gt;"
		default:
			continue
		}
		w.writeString(data[start:i])
		w.writeString(esc)
		start = i + 1
	}
	w.writeString(data[start:])
}

// WriteToken dispatches a token to the matching method. EOF is ignored.
func (w *Writer) WriteToken(t Token) {
	switch t.Kind {
	case StartElement:
		w.StartElement(t.Name)
	case EndElement:
		w.EndElement(t.Name)
	case Text:
		w.Text(t.Data)
	}
}

// Flush flushes buffered output and returns the first error seen, including
// unbalanced open elements.
func (w *Writer) Flush() error {
	if w.err == nil && len(w.stack) > 0 {
		w.err = fmt.Errorf("xmlstream: %d unclosed element(s), innermost <%s>", len(w.stack), w.stack[len(w.stack)-1])
	}
	if err := w.w.Flush(); err != nil && w.err == nil {
		w.err = err
	}
	return w.err
}

// EscapeText returns data with XML character escaping applied, as Text would
// emit it. Useful for tests and tools.
func EscapeText(data string) string {
	out := make([]byte, 0, len(data))
	for i := 0; i < len(data); i++ {
		switch data[i] {
		case '&':
			out = append(out, "&amp;"...)
		case '<':
			out = append(out, "&lt;"...)
		case '>':
			out = append(out, "&gt;"...)
		default:
			out = append(out, data[i])
		}
	}
	return string(out)
}
