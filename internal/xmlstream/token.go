// Package xmlstream provides a streaming XML tokenizer and serializer for
// the attribute-free XML data model used by the GCX engine.
//
// The paper (Section 2) considers XML without attributes: "attributes can be
// handled in the same way as children of a node". Accordingly, the tokenizer
// can convert attributes to leading subelements on the fly (the adaptation
// the paper applied to all benchmark inputs, Section 7), so the rest of the
// engine only ever sees three token kinds: opening tags, closing tags, and
// character data.
//
// The tokenizer is deliberately hand-written rather than based on
// encoding/xml: the engine's pre-projector sits directly on the token
// stream and per-token overhead dominates streaming performance.
package xmlstream

import "fmt"

// Kind identifies the type of a stream token.
type Kind uint8

const (
	// StartElement is an opening tag <a>. Self-closing tags <a/> are
	// reported as a StartElement immediately followed by an EndElement.
	StartElement Kind = iota + 1
	// EndElement is a closing tag </a>.
	EndElement
	// Text is character data between tags. Entity references amp, lt, gt,
	// apos, quot and numeric character references are resolved.
	Text
	// EOF is reported once the input is exhausted.
	EOF
)

// String returns a readable name for the token kind.
func (k Kind) String() string {
	switch k {
	case StartElement:
		return "StartElement"
	case EndElement:
		return "EndElement"
	case Text:
		return "Text"
	case EOF:
		return "EOF"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Token is a single event from the XML stream.
//
// For StartElement and EndElement tokens, Name holds the tag name. For Text
// tokens, Data holds the (unescaped) character data. The byte slices behind
// Name and Data are only valid until the next call to the tokenizer; callers
// that retain them must copy.
type Token struct {
	Kind Kind
	Name string // tag name for StartElement/EndElement
	Data string // character data for Text
}

// String renders the token in the stream notation used by the paper,
// e.g. <bib>, </book>, or "text".
func (t Token) String() string {
	switch t.Kind {
	case StartElement:
		return "<" + t.Name + ">"
	case EndElement:
		return "</" + t.Name + ">"
	case Text:
		return fmt.Sprintf("%q", t.Data)
	case EOF:
		return "EOF"
	default:
		return "invalid token"
	}
}
