package xmlstream

import (
	"bytes"
	"strings"
	"testing"
)

func isStructural(c byte) bool {
	switch c {
	case '<', '>', '&', '"', '\'':
		return true
	}
	return false
}

// naiveNext is the per-byte oracle for StructIndex.Next.
func naiveNext(buf []byte, from int) int {
	if from < 0 {
		from = 0
	}
	for i := from; i < len(buf); i++ {
		if isStructural(buf[i]) {
			return i
		}
	}
	return -1
}

// TestStructIndexExhaustive cross-checks Build+Next against the per-byte
// oracle from every query offset, on buffers sized around the 64-byte
// block edges and with structural bytes planted at offsets 63/64/65.
func TestStructIndexExhaustive(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte(""),
		[]byte("x"),
		[]byte("<"),
		bytes.Repeat([]byte{'x'}, 63),
		bytes.Repeat([]byte{'<'}, 64),
		bytes.Repeat([]byte{'x'}, 65),
		[]byte(strings.Repeat("x", 63) + "<"),
		[]byte(strings.Repeat("x", 64) + ">"),
		[]byte(strings.Repeat("x", 65) + "&"),
		[]byte(strings.Repeat("x", 63) + `<>&"'` + strings.Repeat("y", 60)),
		[]byte(`<a k="v" j='w'>text &amp; more</a>`),
	}
	// Every byte value once, spanning several blocks.
	all := make([]byte, 256+37)
	for i := range all {
		all[i] = byte(i % 256)
	}
	cases = append(cases, all)
	// Pseudo-random soup of structural and plain bytes (deterministic).
	rnd := uint64(0x9e3779b97f4a7c15)
	soup := make([]byte, 777)
	alphabet := []byte(`abc<>&"' xyz`)
	for i := range soup {
		rnd ^= rnd << 13
		rnd ^= rnd >> 7
		rnd ^= rnd << 17
		soup[i] = alphabet[rnd%uint64(len(alphabet))]
	}
	cases = append(cases, soup)

	var ix StructIndex
	for ci, buf := range cases {
		ix.Build(buf)
		for from := -1; from <= len(buf)+1; from++ {
			got := ix.Next(from)
			want := naiveNext(buf, from)
			if got != want {
				t.Fatalf("case %d (len %d): Next(%d) = %d, want %d", ci, len(buf), from, got, want)
			}
		}
		if got, want := ix.Count(), countStructural(buf); got != want {
			t.Fatalf("case %d: Count = %d, want %d", ci, got, want)
		}
	}
}

func countStructural(buf []byte) int {
	c := 0
	for _, b := range buf {
		if isStructural(b) {
			c++
		}
	}
	return c
}

// TestStructIndexReuse pins that Build fully replaces prior contents:
// a long classify followed by a short one must not leak stale bits, and
// Reset must empty the queryable range.
func TestStructIndexReuse(t *testing.T) {
	var ix StructIndex
	ix.Build(bytes.Repeat([]byte{'<'}, 640))
	ix.Build([]byte("plain text only"))
	if got := ix.Next(0); got != -1 {
		t.Fatalf("stale bits after rebuild: Next(0) = %d, want -1", got)
	}
	ix.Build([]byte(`x<y`))
	if got := ix.Next(0); got != 1 {
		t.Fatalf("Next(0) = %d, want 1", got)
	}
	ix.Reset()
	if got := ix.Next(0); got != -1 {
		t.Fatalf("post-Reset Next(0) = %d, want -1", got)
	}
}

// TestStructIndexZeroAlloc pins the index pass at 0 allocs/op once the
// words slice is warm — the classification chain runs inside fill(),
// which the pooled tokenizer requires to be allocation-free.
func TestStructIndexZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	buf := []byte(strings.Repeat(`<edge from="a" to="b"/> text &amp; `, 2000))
	var ix StructIndex
	ix.Build(buf) // warm the words slice
	allocs := testing.AllocsPerRun(20, func() {
		ix.Build(buf)
		p := 0
		for {
			i := ix.Next(p)
			if i < 0 {
				break
			}
			p = i + 1
		}
	})
	if allocs > 0 {
		t.Fatalf("warm Build+Next pass allocates: %.1f allocs/op, want 0", allocs)
	}
}
