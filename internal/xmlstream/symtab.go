package xmlstream

// Sym is an interned tag name. The buffer manager stores symbols instead of
// strings ("we use a symbol table to replace tagnames by integers",
// Section 6 of the paper).
type Sym int32

// NoSym is the zero Sym; it is never assigned to a name.
const NoSym Sym = 0

// SymTab interns tag names to dense integer symbols. It is not safe for
// concurrent use; the engine is single-threaded by design (the paper's
// evaluation loop is strictly sequential).
type SymTab struct {
	byName map[string]Sym
	names  []string
}

// NewSymTab returns an empty symbol table.
func NewSymTab() *SymTab {
	return &SymTab{
		byName: make(map[string]Sym, 64),
		names:  make([]string, 1, 64), // names[0] reserved for NoSym
	}
}

// Intern returns the symbol for name, assigning a fresh one if needed.
func (s *SymTab) Intern(name string) Sym {
	if sym, ok := s.byName[name]; ok {
		return sym
	}
	sym := Sym(len(s.names))
	s.names = append(s.names, name)
	s.byName[name] = sym
	return sym
}

// Lookup returns the symbol for name, or NoSym if it was never interned.
func (s *SymTab) Lookup(name string) Sym {
	return s.byName[name]
}

// Reset drops all interned names. Only valid when no buffered node still
// carries a Sym (the engine resets the buffer first); retained capacity
// makes re-interning a steady vocabulary allocation-free.
func (s *SymTab) Reset() {
	clear(s.byName)
	s.names = s.names[:1]
}

// Name returns the string for a symbol. It panics on an unknown symbol,
// which indicates engine corruption rather than a user error.
func (s *SymTab) Name(sym Sym) string {
	return s.names[sym]
}

// Len returns the number of interned names.
func (s *SymTab) Len() int { return len(s.names) - 1 }
