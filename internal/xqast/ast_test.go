package xqast

import (
	"strings"
	"testing"
)

func TestFlattenSequence(t *testing.T) {
	v := VarRef{Var: "x"}
	cases := []struct {
		name  string
		items []Expr
		want  string
	}{
		{"empty", nil, "()"},
		{"only empties", []Expr{Empty{}, Empty{}, nil}, "()"},
		{"singleton", []Expr{Empty{}, v}, "$x"},
		{"nested", []Expr{Sequence{Items: []Expr{v, Sequence{Items: []Expr{v, v}}}}, v}, "4 items"},
	}
	for _, tc := range cases {
		got := FlattenSequence(tc.items)
		switch tc.want {
		case "()":
			if _, ok := got.(Empty); !ok {
				t.Fatalf("%s: got %T", tc.name, got)
			}
		case "$x":
			if _, ok := got.(VarRef); !ok {
				t.Fatalf("%s: got %T", tc.name, got)
			}
		case "4 items":
			seq, ok := got.(Sequence)
			if !ok || len(seq.Items) != 4 {
				t.Fatalf("%s: got %#v", tc.name, got)
			}
			// No nested sequences remain.
			for _, item := range seq.Items {
				if _, bad := item.(Sequence); bad {
					t.Fatalf("%s: nested sequence survived", tc.name)
				}
			}
		}
	}
}

func TestWalkOrderAndPruning(t *testing.T) {
	e := Sequence{Items: []Expr{
		Element{Name: "a", Child: VarRef{Var: "x"}},
		For{Var: "y", In: Path{Var: "x"}, Return: VarRef{Var: "y"}},
	}}
	var order []string
	Walk(e, func(x Expr) bool {
		switch x := x.(type) {
		case Sequence:
			order = append(order, "seq")
		case Element:
			order = append(order, "elem")
		case VarRef:
			order = append(order, "$"+x.Var)
		case For:
			order = append(order, "for")
		}
		return true
	})
	want := "seq elem $x for $y"
	if got := strings.Join(order, " "); got != want {
		t.Fatalf("walk order %q, want %q", got, want)
	}

	// Pruning: returning false stops descent.
	count := 0
	Walk(e, func(x Expr) bool {
		count++
		_, isElem := x.(Element)
		return !isElem
	})
	if count != 4 { // seq, elem, for, $y — $x pruned
		t.Fatalf("pruned walk visited %d nodes, want 4", count)
	}
}

func TestRewriteBottomUp(t *testing.T) {
	e := Element{Name: "a", Child: Sequence{Items: []Expr{
		VarRef{Var: "x"}, VarRef{Var: "y"},
	}}}
	// Replace every VarRef with Empty; the sequence then still has two
	// (Empty) items because Rewrite preserves structure.
	out := Rewrite(e, func(x Expr) Expr {
		if _, ok := x.(VarRef); ok {
			return Empty{}
		}
		return x
	})
	el := out.(Element)
	seq := el.Child.(Sequence)
	for _, item := range seq.Items {
		if _, ok := item.(Empty); !ok {
			t.Fatalf("item %T, want Empty", item)
		}
	}
}

func TestVars(t *testing.T) {
	q := &Query{Root: Element{Name: "q", Child: For{
		Var: "a", In: Path{Var: RootVar, Steps: []Step{{Axis: Child, Test: NameTest("x")}}},
		Return: For{Var: "b", In: Path{Var: "a", Steps: []Step{{Axis: Child, Test: NameTest("y")}}},
			Return: Empty{}},
	}}}
	got := Vars(q)
	if len(got) != 3 || got[0] != "root" || got[1] != "a" || got[2] != "b" {
		t.Fatalf("Vars = %v", got)
	}
}

func TestStepAndPathStrings(t *testing.T) {
	s := Step{Axis: Child, Test: NameTest("price"), First: true}
	if s.String() != "child::price[1]" {
		t.Fatalf("step: %s", s)
	}
	p := Path{Var: "x", Steps: []Step{
		{Axis: Descendant, Test: StarTest()},
		{Axis: DescendantOrSelf, Test: NodeKindTest()},
	}}
	if p.String() != "$x/descendant::*/dos::node()" {
		t.Fatalf("path: %s", p)
	}
}

func TestEqualCond(t *testing.T) {
	a := And{L: Exists{Path: Path{Var: "x", Steps: []Step{{Axis: Child, Test: NameTest("p")}}}}, R: TrueCond{}}
	b := And{L: Exists{Path: Path{Var: "x", Steps: []Step{{Axis: Child, Test: NameTest("p")}}}}, R: TrueCond{}}
	c := And{L: Exists{Path: Path{Var: "x", Steps: []Step{{Axis: Child, Test: NameTest("q")}}}}, R: TrueCond{}}
	if !EqualCond(a, b) {
		t.Fatal("structurally equal conditions must compare equal")
	}
	if EqualCond(a, c) {
		t.Fatal("different conditions must not compare equal")
	}
}

func TestFormatCoversAllForms(t *testing.T) {
	q := &Query{Root: Element{Name: "q", Child: Sequence{Items: []Expr{
		Text{Data: "hi"},
		CondTag{Cond: TrueCond{}, Name: "t", Open: true},
		SignOff{Path: Path{Var: "x"}, Role: 3},
		CondTag{Cond: TrueCond{}, Name: "t", Open: false},
		If{Cond: Not{C: Or{L: TrueCond{}, R: Compare{
			LHS: Operand{Path: Path{Var: "x", Steps: []Step{{Axis: Child, Test: NameTest("a")}}}},
			Op:  OpGe,
			RHS: Operand{IsLiteral: true, Lit: "5"},
		}}}, Then: Empty{}, Else: VarRef{Var: "x"}},
	}}}}
	out := Format(q)
	for _, want := range []string{
		`text { "hi" }`, "then <t> else ()", "then </t> else ()",
		"signOff($x, r3)", ">= \"5\"", "or", "not(",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}
