// Package xqast defines the abstract syntax tree for the XQuery fragment XQ
// of the paper (Section 3, Figure 6), plus the two internal statement forms
// the engine introduces during rewriting:
//
//   - signOff($x/π, r) statements (Section 3, "Introducing signOff-Statements
//     to XQ"), and
//   - conditional open/close tag constructors, produced by if-pushdown rule
//     NC (Figure 7), corresponding to the grammar production
//     "(if cond then <a> else (), q, if cond then </a> else ())".
//
// The fragment (Figure 6):
//
//	Q    ::= <a>q</a>
//	q    ::= () | <a>q</a> | var | var/axis::ν | (q, ..., q)
//	       | (if cond then <a> else (), q, if cond then </a> else ())
//	       | for var in var/axis::ν return q
//	       | if cond then q else q
//	cond ::= true() | exists var/axis::ν | var/axis::ν RelOp string
//	       | var/axis::ν RelOp var/axis::ν | cond and cond
//	       | cond or cond | not cond
//	axis ::= child | descendant
//	ν    ::= a | * | text()
//
// As an engineering convenience the AST also carries literal text content in
// constructors (Text) and multi-step relative paths; the normalizer reduces
// surface queries to the fragment and validates the result.
package xqast

// Role identifies a buffer-management role (Section 2: "a role serves as a
// metaphor for the future relevance of a given node"). Roles are assigned by
// static analysis; role 0 is reserved and never used.
type Role int

// Axis is an XPath axis. The query fragment permits child and descendant
// axes; descendant-or-self additionally appears in projection paths and
// signOff paths (Section 2, "dos").
type Axis uint8

const (
	// Child is the XPath child axis.
	Child Axis = iota + 1
	// Descendant is the XPath descendant axis.
	Descendant
	// DescendantOrSelf ("dos") appears only in projection and signOff
	// paths, never in user queries.
	DescendantOrSelf
)

// String returns the axis in XPath notation.
func (a Axis) String() string {
	switch a {
	case Child:
		return "child"
	case Descendant:
		return "descendant"
	case DescendantOrSelf:
		return "dos"
	default:
		return "axis?"
	}
}

// TestKind classifies a node test ν.
type TestKind uint8

const (
	// TestName matches elements with a specific tag name.
	TestName TestKind = iota + 1
	// TestStar ("*") matches any element.
	TestStar
	// TestText ("text()") matches text nodes.
	TestText
	// TestNode ("node()") matches any node; used in projection paths
	// (dos::node()) and signOff paths.
	TestNode
)

// NodeTest is a node test ν: a tag name, "*", "text()", or "node()".
type NodeTest struct {
	Kind TestKind
	Name string // tag name when Kind == TestName
}

// String renders the node test in XPath notation.
func (n NodeTest) String() string {
	switch n.Kind {
	case TestName:
		return n.Name
	case TestStar:
		return "*"
	case TestText:
		return "text()"
	case TestNode:
		return "node()"
	default:
		return "ν?"
	}
}

// NameTest returns a node test for a tag name.
func NameTest(name string) NodeTest { return NodeTest{Kind: TestName, Name: name} }

// StarTest returns the "*" node test.
func StarTest() NodeTest { return NodeTest{Kind: TestStar} }

// TextTest returns the "text()" node test.
func TextTest() NodeTest { return NodeTest{Kind: TestText} }

// NodeKindTest returns the "node()" node test.
func NodeKindTest() NodeTest { return NodeTest{Kind: TestNode} }

// Step is one location step axis::ν[predicate]. The only predicate in the
// fragment is position()=1 (First), used for existence checks (Section 2).
type Step struct {
	Axis  Axis
	Test  NodeTest
	First bool // [position()=1]
}

// String renders the step, e.g. "child::a", "dos::node()", "child::b[1]".
func (s Step) String() string {
	out := s.Axis.String() + "::" + s.Test.String()
	if s.First {
		out += "[1]"
	}
	return out
}

// Path is a variable-rooted path expression $x/step/step/... . An empty
// Steps slice denotes the bare variable $x (π = ε).
type Path struct {
	Var   string
	Steps []Step
}

// String renders the path, e.g. "$x/child::a/dos::node()".
func (p Path) String() string {
	out := "$" + p.Var
	for _, s := range p.Steps {
		out += "/" + s.String()
	}
	return out
}

// Expr is an XQ expression (production q in Figure 6).
type Expr interface {
	isExpr()
}

// Empty is the empty sequence ().
type Empty struct{}

// Sequence is (q, ..., q). Normalization guarantees len(Items) >= 2 and no
// directly nested Sequences.
type Sequence struct {
	Items []Expr
}

// Element is the node constructor <a>q</a>.
type Element struct {
	Name  string
	Child Expr
}

// Text is literal character data inside a constructor. (Engineering
// extension; trivially expressible in XQuery as a text node constructor.)
type Text struct {
	Data string
}

// VarRef is the bare variable expression $x: the node bound to $x is copied
// to the output together with its complete subtree.
type VarRef struct {
	Var string
}

// PathExpr is the output expression $x/axis::ν: all matching nodes are
// copied to the output with their subtrees, in document order.
type PathExpr struct {
	Path Path
}

// For is "for var in var/axis::ν return q".
type For struct {
	Var    string // bound variable, without '$'
	In     Path   // var-rooted path iterated over
	Return Expr
}

// If is "if cond then q else q".
type If struct {
	Cond Cond
	Then Expr
	Else Expr
}

// CondTag is the conditional unbalanced tag constructor produced by
// if-pushdown rule NC: "if cond then <a> else ()" (Open=true) or
// "if cond then </a> else ()" (Open=false). The paper's grammar requires the
// two conditions of a matching pair to be syntactically equal so output
// remains well-formed.
type CondTag struct {
	Cond Cond
	Name string
	Open bool
}

// SignOff is the internal statement signOff($x/π, r): all nodes reachable
// from the binding of $x via π lose one instance of role r, triggering
// active garbage collection (Sections 3-5).
type SignOff struct {
	Path Path
	Role Role
}

func (Empty) isExpr()    {}
func (Sequence) isExpr() {}
func (Element) isExpr()  {}
func (Text) isExpr()     {}
func (VarRef) isExpr()   {}
func (PathExpr) isExpr() {}
func (For) isExpr()      {}
func (If) isExpr()       {}
func (CondTag) isExpr()  {}
func (SignOff) isExpr()  {}

// RelOp is a comparison operator.
type RelOp uint8

const (
	OpEq RelOp = iota + 1
	OpNe       // extension: != (not in Figure 6, supported for convenience)
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator in XQuery general-comparison syntax.
func (op RelOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return "op?"
	}
}

// Cond is a condition (production cond in Figure 6).
type Cond interface {
	isCond()
}

// TrueCond is true().
type TrueCond struct{}

// Exists is "exists($x/axis::ν)".
type Exists struct {
	Path Path
}

// Operand is one side of a comparison: either a path or a string literal.
type Operand struct {
	IsLiteral bool
	Lit       string // literal value when IsLiteral
	Path      Path   // path otherwise
}

// String renders the operand.
func (o Operand) String() string {
	if o.IsLiteral {
		return "\"" + o.Lit + "\""
	}
	return o.Path.String()
}

// Compare is "χ RelOp χ" where at least one side is a path (the fragment
// requires a path on at least one side).
type Compare struct {
	LHS Operand
	Op  RelOp
	RHS Operand
}

// And is "cond and cond".
type And struct{ L, R Cond }

// Or is "cond or cond".
type Or struct{ L, R Cond }

// Not is "not cond".
type Not struct{ C Cond }

func (TrueCond) isCond() {}
func (Exists) isCond()   {}
func (Compare) isCond()  {}
func (And) isCond()      {}
func (Or) isCond()       {}
func (Not) isCond()      {}

// Query is a full XQ query: a root element constructor with the single free
// variable $root (Section 3).
type Query struct {
	Root Element
}

// RootVar is the name of the distinguished root variable (without '$').
const RootVar = "root"
