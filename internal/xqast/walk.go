package xqast

// Walk calls fn for every expression in the tree rooted at e, in evaluation
// order (pre-order). If fn returns false, the walk does not descend into the
// children of e.
func Walk(e Expr, fn func(Expr) bool) {
	if e == nil {
		return
	}
	if !fn(e) {
		return
	}
	switch e := e.(type) {
	case Sequence:
		for _, item := range e.Items {
			Walk(item, fn)
		}
	case Element:
		Walk(e.Child, fn)
	case For:
		Walk(e.Return, fn)
	case If:
		Walk(e.Then, fn)
		Walk(e.Else, fn)
	}
}

// WalkConds calls fn for every condition appearing in the tree rooted at e,
// including nested subconditions (and/or/not operands).
func WalkConds(e Expr, fn func(Cond)) {
	Walk(e, func(e Expr) bool {
		switch e := e.(type) {
		case If:
			walkCond(e.Cond, fn)
		case CondTag:
			walkCond(e.Cond, fn)
		}
		return true
	})
}

func walkCond(c Cond, fn func(Cond)) {
	if c == nil {
		return
	}
	fn(c)
	switch c := c.(type) {
	case And:
		walkCond(c.L, fn)
		walkCond(c.R, fn)
	case Or:
		walkCond(c.L, fn)
		walkCond(c.R, fn)
	case Not:
		walkCond(c.C, fn)
	}
}

// Rewrite returns a copy of e with fn applied bottom-up: children are
// rewritten first, then fn transforms the resulting node.
func Rewrite(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch v := e.(type) {
	case Sequence:
		items := make([]Expr, len(v.Items))
		for i, item := range v.Items {
			items[i] = Rewrite(item, fn)
		}
		e = Sequence{Items: items}
	case Element:
		e = Element{Name: v.Name, Child: Rewrite(v.Child, fn)}
	case For:
		e = For{Var: v.Var, In: v.In, Return: Rewrite(v.Return, fn)}
	case If:
		e = If{Cond: v.Cond, Then: Rewrite(v.Then, fn), Else: Rewrite(v.Else, fn)}
	}
	return fn(e)
}

// FlattenSequence normalizes an expression list: nested Sequences are
// inlined and Empty items dropped. It returns Empty{} for an empty result
// and the single item for a singleton.
func FlattenSequence(items []Expr) Expr {
	var flat []Expr
	var add func(Expr)
	add = func(e Expr) {
		switch e := e.(type) {
		case nil, Empty:
		case Sequence:
			for _, item := range e.Items {
				add(item)
			}
		default:
			flat = append(flat, e)
		}
	}
	for _, item := range items {
		add(item)
	}
	switch len(flat) {
	case 0:
		return Empty{}
	case 1:
		return flat[0]
	default:
		return Sequence{Items: flat}
	}
}

// Vars returns the set of variables bound by for-loops in the query,
// including RootVar, in first-binding order.
func Vars(q *Query) []string {
	out := []string{RootVar}
	seen := map[string]bool{RootVar: true}
	Walk(q.Root, func(e Expr) bool {
		if f, ok := e.(For); ok && !seen[f.Var] {
			seen[f.Var] = true
			out = append(out, f.Var)
		}
		return true
	})
	return out
}

// EqualCond reports structural equality of two conditions. The fragment
// requires the two conditions of a CondTag pair to be syntactically equal;
// the normalizer uses this to validate input.
func EqualCond(a, b Cond) bool {
	return FormatCond(a) == FormatCond(b)
}
