package xqast

import (
	"fmt"
	"strings"
)

// Format renders a query in a canonical, parseable surface syntax. It is
// used by golden tests, the -explain diagnostics of cmd/gcx, and the
// rewriting test suites (Figures 7-9 of the paper).
func Format(q *Query) string {
	var b strings.Builder
	formatExpr(&b, q.Root, 0)
	b.WriteByte('\n')
	return b.String()
}

// FormatExpr renders a single expression.
func FormatExpr(e Expr) string {
	var b strings.Builder
	formatExpr(&b, e, 0)
	return b.String()
}

// FormatCond renders a condition.
func FormatCond(c Cond) string {
	var b strings.Builder
	formatCond(&b, c)
	return b.String()
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

// compact reports whether e renders on a single short line.
func compact(e Expr) bool {
	switch e := e.(type) {
	case Empty, Text, VarRef, PathExpr, SignOff, CondTag, nil:
		return true
	case Element:
		return compact(e.Child)
	default:
		return false
	}
}

func formatExpr(b *strings.Builder, e Expr, depth int) {
	switch e := e.(type) {
	case nil:
		b.WriteString("()")
	case Empty:
		b.WriteString("()")
	case Text:
		fmt.Fprintf(b, "text { %s }", quoteLit(e.Data))
	case VarRef:
		b.WriteString("$" + e.Var)
	case PathExpr:
		b.WriteString(formatPath(e.Path))
	case SignOff:
		fmt.Fprintf(b, "signOff(%s, r%d)", formatPath(e.Path), e.Role)
	case Element:
		if compact(e.Child) {
			b.WriteString("<" + e.Name + ">{ ")
			formatExpr(b, e.Child, depth)
			b.WriteString(" }</" + e.Name + ">")
			return
		}
		b.WriteString("<" + e.Name + ">{\n")
		indent(b, depth+1)
		formatExpr(b, e.Child, depth+1)
		b.WriteByte('\n')
		indent(b, depth)
		b.WriteString("}</" + e.Name + ">")
	case CondTag:
		tag := "<" + e.Name + ">"
		if !e.Open {
			tag = "</" + e.Name + ">"
		}
		b.WriteString("if (")
		formatCond(b, e.Cond)
		b.WriteString(") then " + tag + " else ()")
	case Sequence:
		b.WriteString("(\n")
		for i, item := range e.Items {
			indent(b, depth+1)
			formatExpr(b, item, depth+1)
			if i < len(e.Items)-1 {
				b.WriteByte(',')
			}
			b.WriteByte('\n')
		}
		indent(b, depth)
		b.WriteByte(')')
	case For:
		fmt.Fprintf(b, "for $%s in %s return\n", e.Var, formatPath(e.In))
		indent(b, depth+1)
		formatExpr(b, e.Return, depth+1)
	case If:
		b.WriteString("if (")
		formatCond(b, e.Cond)
		b.WriteString(")\n")
		indent(b, depth)
		b.WriteString("then ")
		formatExpr(b, e.Then, depth+1)
		b.WriteByte('\n')
		indent(b, depth)
		b.WriteString("else ")
		formatExpr(b, e.Else, depth+1)
	default:
		fmt.Fprintf(b, "?%T", e)
	}
}

// formatPath renders paths using common XPath abbreviations, matching the
// paper's notation: child::a -> a, descendant::a -> one "/" plus "/a" (i.e.
// //a), dos::node() stays explicit.
func formatPath(p Path) string {
	var b strings.Builder
	b.WriteString("$" + p.Var)
	for _, s := range p.Steps {
		switch s.Axis {
		case Child:
			b.WriteString("/")
		case Descendant:
			b.WriteString("//")
		case DescendantOrSelf:
			b.WriteString("/dos::")
			b.WriteString(s.Test.String())
			if s.First {
				b.WriteString("[1]")
			}
			continue
		}
		b.WriteString(s.Test.String())
		if s.First {
			b.WriteString("[1]")
		}
	}
	return b.String()
}

func condParen(b *strings.Builder, c Cond) {
	switch c.(type) {
	case And, Or:
		b.WriteByte('(')
		formatCond(b, c)
		b.WriteByte(')')
	default:
		formatCond(b, c)
	}
}

func formatCond(b *strings.Builder, c Cond) {
	switch c := c.(type) {
	case TrueCond:
		b.WriteString("true()")
	case Exists:
		b.WriteString("exists(" + formatPath(c.Path) + ")")
	case Compare:
		b.WriteString(c.LHS.formatOperand())
		b.WriteString(" " + c.Op.String() + " ")
		b.WriteString(c.RHS.formatOperand())
	case And:
		condParen(b, c.L)
		b.WriteString(" and ")
		condParen(b, c.R)
	case Or:
		condParen(b, c.L)
		b.WriteString(" or ")
		condParen(b, c.R)
	case Not:
		b.WriteString("not(")
		formatCond(b, c.C)
		b.WriteString(")")
	default:
		fmt.Fprintf(b, "?%T", c)
	}
}

func (o Operand) formatOperand() string {
	if o.IsLiteral {
		return quoteLit(o.Lit)
	}
	return formatPath(o.Path)
}

// quoteLit renders a string literal in XQ surface syntax: a double quote
// inside the literal is escaped by doubling it (the XQuery convention the
// lexer implements); every other byte is emitted verbatim. Go-style
// backslash escapes would NOT round-trip through the parser.
func quoteLit(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
