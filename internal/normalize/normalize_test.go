package normalize

import (
	"strings"
	"testing"

	"gcx/internal/xqast"
	"gcx/internal/xqparser"
)

func norm(t *testing.T, src string) *xqast.Query {
	t.Helper()
	q, err := xqparser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	out, err := Normalize(q)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	return out
}

func normErr(t *testing.T, src string) error {
	t.Helper()
	q, err := xqparser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Normalize(q)
	if err == nil {
		t.Fatalf("Normalize(%q) succeeded, want error", src)
	}
	return err
}

func TestMultiStepForLoopSplits(t *testing.T) {
	q := norm(t, `<q>{ for $p in /site/people/person return $p }</q>`)
	// Expect three nested single-step loops.
	f1, ok := q.Root.Child.(xqast.For)
	if !ok {
		t.Fatalf("child: %T", q.Root.Child)
	}
	f2, ok := f1.Return.(xqast.For)
	if !ok {
		t.Fatalf("level 2: %T", f1.Return)
	}
	f3, ok := f2.Return.(xqast.For)
	if !ok {
		t.Fatalf("level 3: %T", f2.Return)
	}
	for _, f := range []xqast.For{f1, f2, f3} {
		if len(f.In.Steps) != 1 {
			t.Fatalf("loop over %s not single-step", f.In)
		}
	}
	if f3.Var != "p" {
		t.Fatalf("innermost loop must bind the user variable, got $%s", f3.Var)
	}
	if f1.In.Steps[0].Test.Name != "site" || f2.In.Steps[0].Test.Name != "people" || f3.In.Steps[0].Test.Name != "person" {
		t.Fatalf("step order wrong: %s / %s / %s", f1.In, f2.In, f3.In)
	}
	if ref, ok := f3.Return.(xqast.VarRef); !ok || ref.Var != "p" {
		t.Fatalf("body: %#v", f3.Return)
	}
}

func TestMultiStepOutputPathSplits(t *testing.T) {
	q := norm(t, `<q>{ for $p in /people return $p/name/text() }</q>`)
	// for $p_? in /people ... innermost output must be single-step.
	var sawLoopOverName, sawTextOutput bool
	xqast.Walk(q.Root, func(e xqast.Expr) bool {
		switch e := e.(type) {
		case xqast.For:
			if e.In.Steps[0].Test.Name == "name" {
				sawLoopOverName = true
			}
		case xqast.PathExpr:
			if len(e.Path.Steps) != 1 {
				t.Fatalf("output path not single-step: %s", e.Path)
			}
			if e.Path.Steps[0].Test.Kind == xqast.TestText {
				sawTextOutput = true
			}
		}
		return true
	})
	if !sawLoopOverName || !sawTextOutput {
		t.Fatalf("expected loop over name + text() output; got:\n%s", xqast.Format(q))
	}
	if err := Validate(q); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestShadowingRenamed(t *testing.T) {
	q := norm(t, `<q>{ for $x in /a return (for $x in $x/b return $x, $x) }</q>`)
	// Two distinct binder names; inner body refers to inner, trailing $x to outer.
	outer := q.Root.Child.(xqast.For)
	seq := outer.Return.(xqast.Sequence)
	inner := seq.Items[0].(xqast.For)
	if inner.Var == outer.Var {
		t.Fatalf("shadowed variable not renamed: both $%s", inner.Var)
	}
	if inner.In.Var != outer.Var {
		t.Fatalf("inner loop path rooted at $%s, want $%s", inner.In.Var, outer.Var)
	}
	if ref := inner.Return.(xqast.VarRef); ref.Var != inner.Var {
		t.Fatalf("inner body binds $%s, want $%s", ref.Var, inner.Var)
	}
	if ref := seq.Items[1].(xqast.VarRef); ref.Var != outer.Var {
		t.Fatalf("trailing ref binds $%s, want $%s", ref.Var, outer.Var)
	}
}

func TestReuseAcrossBranchesRenamed(t *testing.T) {
	q := norm(t, `<q>{ (for $x in /a return $x, for $x in /b return $x) }</q>`)
	seq := q.Root.Child.(xqast.Sequence)
	f1 := seq.Items[0].(xqast.For)
	f2 := seq.Items[1].(xqast.For)
	if f1.Var == f2.Var {
		t.Fatal("reused binder across branches must be renamed")
	}
	if err := Validate(q); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestSequenceFlattening(t *testing.T) {
	q := norm(t, `<q>{ ($root, ((), ($root, $root)), ()) }</q>`)
	seq, ok := q.Root.Child.(xqast.Sequence)
	if !ok {
		t.Fatalf("child: %T", q.Root.Child)
	}
	if len(seq.Items) != 3 {
		t.Fatalf("flattened to %d items, want 3: %#v", len(seq.Items), seq)
	}
	for _, item := range seq.Items {
		if _, ok := item.(xqast.VarRef); !ok {
			t.Fatalf("item %T, want VarRef", item)
		}
	}
}

func TestSingletonSequenceCollapses(t *testing.T) {
	q := norm(t, `<q>{ (((($root)))) }</q>`)
	if _, ok := q.Root.Child.(xqast.VarRef); !ok {
		t.Fatalf("child: %T, want VarRef", q.Root.Child)
	}
}

func TestUndefinedVariable(t *testing.T) {
	err := normErr(t, `<q>{ $nope }</q>`)
	if !strings.Contains(err.Error(), "undefined variable $nope") {
		t.Fatalf("error: %v", err)
	}
}

func TestUndefinedVariableInPath(t *testing.T) {
	err := normErr(t, `<q>{ for $x in $ghost/a return $x }</q>`)
	if !strings.Contains(err.Error(), "undefined variable $ghost") {
		t.Fatalf("error: %v", err)
	}
}

func TestVariableEscapesScope(t *testing.T) {
	err := normErr(t, `<q>{ (for $x in /a return $x, $x) }</q>`)
	if !strings.Contains(err.Error(), "undefined variable $x") {
		t.Fatalf("error: %v", err)
	}
}

func TestExistsBareVariableRejected(t *testing.T) {
	err := normErr(t, `<q>{ for $x in /a return if (exists($x)) then $x else () }</q>`)
	if !strings.Contains(err.Error(), "bare variable") {
		t.Fatalf("error: %v", err)
	}
}

func TestMultiStepConditionAccepted(t *testing.T) {
	q := norm(t, `<q>{ for $p in /people return if ($p/profile/income > 5000) then $p/name else () }</q>`)
	if err := Validate(q); err != nil {
		t.Fatalf("validate: %v", err)
	}
	// The condition path must survive with two steps.
	var found bool
	xqast.WalkConds(q.Root, func(c xqast.Cond) {
		if cmp, ok := c.(xqast.Compare); ok {
			if len(cmp.LHS.Path.Steps) == 2 {
				found = true
			}
		}
	})
	if !found {
		t.Fatalf("condition path was altered:\n%s", xqast.Format(q))
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	srcs := []string{
		`<q>{ for $p in /site/people/person return if ($p/id = "person0") then $p/name else () }</q>`,
		`<q>{ for $a in //a return <a>{ for $b in $a//b return <b/> }</a> }</q>`,
	}
	for _, src := range srcs {
		q1 := norm(t, src)
		s1 := xqast.Format(q1)
		q2, err := Normalize(q1)
		if err != nil {
			t.Fatalf("re-normalize: %v", err)
		}
		s2 := xqast.Format(q2)
		if s1 != s2 {
			t.Fatalf("not idempotent:\nfirst:\n%s\nsecond:\n%s", s1, s2)
		}
	}
}

func TestValidateCatchesInternalForms(t *testing.T) {
	q := &xqast.Query{Root: xqast.Element{
		Name:  "q",
		Child: xqast.SignOff{Path: xqast.Path{Var: xqast.RootVar}, Role: 1},
	}}
	if err := Validate(q); err == nil || !strings.Contains(err.Error(), "signOff") {
		t.Fatalf("validate: %v", err)
	}
}

func TestValidateCatchesDosAxis(t *testing.T) {
	q := &xqast.Query{Root: xqast.Element{
		Name: "q",
		Child: xqast.PathExpr{Path: xqast.Path{Var: xqast.RootVar, Steps: []xqast.Step{
			{Axis: xqast.DescendantOrSelf, Test: xqast.NodeKindTest()},
		}}},
	}}
	if err := Validate(q); err == nil {
		t.Fatal("validate must reject dos axis in queries")
	}
}

func TestWhereBecomesIf(t *testing.T) {
	q := norm(t, `<q>{ for $t in /site/closed_auctions/closed_auction where $t/buyer/person = "person0" return $t/price }</q>`)
	var sawIf bool
	xqast.Walk(q.Root, func(e xqast.Expr) bool {
		if _, ok := e.(xqast.If); ok {
			sawIf = true
		}
		return true
	})
	if !sawIf {
		t.Fatalf("where not desugared:\n%s", xqast.Format(q))
	}
	if err := Validate(q); err != nil {
		t.Fatalf("validate: %v", err)
	}
}
