package normalize

import (
	"gcx/internal/xqast"
)

// Validate checks that a query conforms to the normalized fragment the
// static analysis consumes:
//
//   - every for-loop iterates a single-step path with child or descendant
//     axis and a name, "*", or text() test;
//   - every output path expression has exactly one step;
//   - condition paths use child/descendant axes with 1..n steps;
//   - every for-loop binds a globally unique variable;
//   - every used variable is bound (or $root);
//   - no internal forms (signOff, conditional tags) appear.
//
// It is exported so tests and the engine can check invariants after each
// rewriting phase that is supposed to preserve the fragment.
func Validate(q *xqast.Query) error {
	v := &validator{binders: map[string]bool{}}
	v.expr(q.Root, map[string]bool{xqast.RootVar: true})
	return v.err
}

type validator struct {
	binders map[string]bool // names already used as for-loop binders
	err     error
}

func (v *validator) fail(format string, args ...interface{}) {
	if v.err == nil {
		v.err = errf(format, args...)
	}
}

func (v *validator) path(p xqast.Path, scope map[string]bool, what string, singleStep bool) {
	if !scope[p.Var] {
		v.fail("%s uses variable $%s outside its scope", what, p.Var)
		return
	}
	if singleStep && len(p.Steps) != 1 {
		v.fail("%s must have exactly one step after normalization: %s", what, p)
		return
	}
	for _, s := range p.Steps {
		if s.Axis != xqast.Child && s.Axis != xqast.Descendant {
			v.fail("%s uses axis %s outside the fragment: %s", what, s.Axis, p)
		}
		switch s.Test.Kind {
		case xqast.TestName, xqast.TestStar, xqast.TestText:
		default:
			v.fail("%s uses node test %s outside the fragment: %s", what, s.Test, p)
		}
		if s.First {
			v.fail("%s carries a positional predicate: %s", what, p)
		}
	}
}

func (v *validator) expr(e xqast.Expr, scope map[string]bool) {
	if v.err != nil {
		return
	}
	switch e := e.(type) {
	case nil, xqast.Empty, xqast.Text:
	case xqast.Element:
		v.expr(e.Child, scope)
	case xqast.Sequence:
		if len(e.Items) < 2 {
			v.fail("degenerate sequence of %d item(s) after normalization", len(e.Items))
		}
		for _, item := range e.Items {
			v.expr(item, scope)
		}
	case xqast.VarRef:
		if !scope[e.Var] {
			v.fail("variable $%s used outside its scope", e.Var)
		}
	case xqast.PathExpr:
		v.path(e.Path, scope, "output path", true)
	case xqast.For:
		v.path(e.In, scope, "for-loop path", true)
		if e.Var == xqast.RootVar || v.binders[e.Var] {
			v.fail("variable $%s is bound by more than one for-loop (or rebinds $root)", e.Var)
			return
		}
		v.binders[e.Var] = true
		child := childScope(scope, e.Var)
		v.expr(e.Return, child)
	case xqast.If:
		v.cond(e.Cond, scope)
		v.expr(e.Then, scope)
		v.expr(e.Else, scope)
	case xqast.CondTag:
		v.fail("conditional tag constructor in normalized query")
	case xqast.SignOff:
		v.fail("signOff statement in normalized query")
	default:
		v.fail("unsupported expression %T", e)
	}
}

func (v *validator) cond(c xqast.Cond, scope map[string]bool) {
	switch c := c.(type) {
	case xqast.TrueCond:
	case xqast.Exists:
		v.path(c.Path, scope, "exists path", false)
	case xqast.Compare:
		if !c.LHS.IsLiteral {
			v.path(c.LHS.Path, scope, "comparison path", false)
		}
		if !c.RHS.IsLiteral {
			v.path(c.RHS.Path, scope, "comparison path", false)
		}
		if c.LHS.IsLiteral && c.RHS.IsLiteral {
			v.fail("comparison between two literals")
		}
	case xqast.And:
		v.cond(c.L, scope)
		v.cond(c.R, scope)
	case xqast.Or:
		v.cond(c.L, scope)
		v.cond(c.R, scope)
	case xqast.Not:
		v.cond(c.C, scope)
	default:
		v.fail("unsupported condition %T", c)
	}
}

func childScope(scope map[string]bool, name string) map[string]bool {
	child := make(map[string]bool, len(scope)+1)
	for k, val := range scope {
		child[k] = val
	}
	child[name] = true
	return child
}
