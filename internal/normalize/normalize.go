// Package normalize reduces surface queries to the XQ fragment of the paper
// (Section 3, Figure 6) and validates the result.
//
// It mechanizes the adaptations Section 7 applied to the XMark queries:
//
//   - where-conditions have already been rewritten to if-then-else by the
//     parser;
//   - multi-step paths in for-loops are rewritten to nested single-step
//     for-loops over fresh variables ("replacing for-loops with multi-steps
//     by nested single-step for-loops");
//   - multi-step output paths $x/a/b are rewritten to
//     "for $g in $x/a return $g/b" so that every output path expression has
//     exactly one step;
//   - variables are consistently renamed so every for-loop binds a distinct
//     name (shadowing is resolved; undefined variables are errors).
//
// Conditions may retain multi-step paths: the static analysis of package
// static derives dependency chains for them directly (a conservative
// generalization of Definition 2; single-step conditions behave exactly as
// in the paper).
package normalize

import (
	"fmt"

	"gcx/internal/xqast"
)

// Error reports a query outside the supported fragment.
type Error struct {
	Msg string
}

func (e *Error) Error() string { return "normalize: " + e.Msg }

func errf(format string, args ...interface{}) *Error {
	return &Error{Msg: fmt.Sprintf(format, args...)}
}

// Normalize rewrites q into fragment form. The input query is not modified.
func Normalize(q *xqast.Query) (*xqast.Query, error) {
	n := &normalizer{
		reserved: map[string]bool{xqast.RootVar: true},
		bound:    map[string]bool{xqast.RootVar: true},
	}
	// Pre-reserve all variable names appearing in the query so fresh names
	// cannot collide.
	xqast.Walk(q.Root, func(e xqast.Expr) bool {
		if f, ok := e.(xqast.For); ok {
			n.reserved[f.Var] = true
		}
		return true
	})
	scope := map[string]string{xqast.RootVar: xqast.RootVar}
	child, err := n.expr(q.Root.Child, scope)
	if err != nil {
		return nil, err
	}
	out := &xqast.Query{Root: xqast.Element{Name: q.Root.Name, Child: child}}
	if err := Validate(out); err != nil {
		return nil, err
	}
	return out, nil
}

type normalizer struct {
	reserved map[string]bool // every name appearing in the source query
	bound    map[string]bool // names already assigned to an emitted binding
	fresh    int
}

// freshVar returns an unused variable name derived from base.
func (n *normalizer) freshVar(base string) string {
	for {
		n.fresh++
		name := fmt.Sprintf("%s_%d", base, n.fresh)
		if !n.reserved[name] && !n.bound[name] {
			n.bound[name] = true
			return name
		}
	}
}

// bind introduces a binding for surface name, returning the globally unique
// name chosen for it and a child scope. Static analysis (Section 4) assumes
// every for-loop binds a distinct variable; shadowing and reuse across
// branches are resolved by renaming.
func (n *normalizer) bind(name string, scope map[string]string) (string, map[string]string) {
	unique := name
	if n.bound[name] {
		unique = n.freshVar(name)
	} else {
		n.bound[name] = true
	}
	child := make(map[string]string, len(scope)+1)
	for k, v := range scope {
		child[k] = v
	}
	child[name] = unique
	return unique, child
}

func (n *normalizer) resolvePath(p xqast.Path, scope map[string]string) (xqast.Path, error) {
	unique, ok := scope[p.Var]
	if !ok {
		return p, errf("undefined variable $%s", p.Var)
	}
	steps := make([]xqast.Step, len(p.Steps))
	copy(steps, p.Steps)
	return xqast.Path{Var: unique, Steps: steps}, nil
}

func (n *normalizer) expr(e xqast.Expr, scope map[string]string) (xqast.Expr, error) {
	switch e := e.(type) {
	case nil, xqast.Empty:
		return xqast.Empty{}, nil
	case xqast.Text:
		return e, nil
	case xqast.Element:
		child, err := n.expr(e.Child, scope)
		if err != nil {
			return nil, err
		}
		return xqast.Element{Name: e.Name, Child: child}, nil
	case xqast.Sequence:
		items := make([]xqast.Expr, 0, len(e.Items))
		for _, item := range e.Items {
			out, err := n.expr(item, scope)
			if err != nil {
				return nil, err
			}
			items = append(items, out)
		}
		return xqast.FlattenSequence(items), nil
	case xqast.VarRef:
		unique, ok := scope[e.Var]
		if !ok {
			return nil, errf("undefined variable $%s", e.Var)
		}
		return xqast.VarRef{Var: unique}, nil
	case xqast.PathExpr:
		p, err := n.resolvePath(e.Path, scope)
		if err != nil {
			return nil, err
		}
		if err := checkUserSteps(p, false); err != nil {
			return nil, err
		}
		// Multi-step output: $x/a/b -> for $g in $x/a return $g/b.
		return n.splitOutputPath(p), nil
	case xqast.For:
		return n.forLoop(e, scope)
	case xqast.If:
		cond, err := n.cond(e.Cond, scope)
		if err != nil {
			return nil, err
		}
		then, err := n.expr(e.Then, scope)
		if err != nil {
			return nil, err
		}
		els, err := n.expr(e.Else, scope)
		if err != nil {
			return nil, err
		}
		return xqast.If{Cond: cond, Then: then, Else: els}, nil
	case xqast.CondTag:
		return nil, errf("conditional tag constructors are internal forms and cannot appear in source queries")
	case xqast.SignOff:
		return nil, errf("signOff statements are internal forms and cannot appear in source queries")
	default:
		return nil, errf("unsupported expression %T", e)
	}
}

// splitOutputPath rewrites a multi-step output path into nested for-loops so
// only single-step output path expressions remain.
func (n *normalizer) splitOutputPath(p xqast.Path) xqast.Expr {
	if len(p.Steps) == 1 {
		return xqast.PathExpr{Path: p}
	}
	v := p.Var
	var out xqast.Expr
	// Build loops for all steps but the last.
	loops := make([]xqast.For, 0, len(p.Steps)-1)
	for _, step := range p.Steps[:len(p.Steps)-1] {
		g := n.freshVar(v)
		loops = append(loops, xqast.For{Var: g, In: xqast.Path{Var: v, Steps: []xqast.Step{step}}})
		v = g
	}
	out = xqast.PathExpr{Path: xqast.Path{Var: v, Steps: []xqast.Step{p.Steps[len(p.Steps)-1]}}}
	for i := len(loops) - 1; i >= 0; i-- {
		loops[i].Return = out
		out = loops[i]
	}
	return out
}

// forLoop normalizes a for-loop, splitting multi-step iteration paths into
// nested single-step loops.
func (n *normalizer) forLoop(f xqast.For, scope map[string]string) (xqast.Expr, error) {
	p, err := n.resolvePath(f.In, scope)
	if err != nil {
		return nil, err
	}
	if err := checkUserSteps(p, false); err != nil {
		return nil, err
	}
	// Intermediate loops over fresh variables for all but the last step.
	v := p.Var
	loops := make([]xqast.For, 0, len(p.Steps))
	for _, step := range p.Steps[:len(p.Steps)-1] {
		g := n.freshVar(f.Var)
		loops = append(loops, xqast.For{Var: g, In: xqast.Path{Var: v, Steps: []xqast.Step{step}}})
		v = g
	}
	unique, child := n.bind(f.Var, scope)
	body, err := n.expr(f.Return, child)
	if err != nil {
		return nil, err
	}
	out := xqast.Expr(xqast.For{
		Var:    unique,
		In:     xqast.Path{Var: v, Steps: []xqast.Step{p.Steps[len(p.Steps)-1]}},
		Return: body,
	})
	for i := len(loops) - 1; i >= 0; i-- {
		loops[i].Return = out
		out = loops[i]
	}
	return out, nil
}

func (n *normalizer) cond(c xqast.Cond, scope map[string]string) (xqast.Cond, error) {
	switch c := c.(type) {
	case xqast.TrueCond:
		return c, nil
	case xqast.Exists:
		p, err := n.resolvePath(c.Path, scope)
		if err != nil {
			return nil, err
		}
		if len(p.Steps) == 0 {
			return nil, errf("exists($%s) over a bare variable is always true; the fragment requires a path", p.Var)
		}
		if err := checkUserSteps(p, true); err != nil {
			return nil, err
		}
		return xqast.Exists{Path: p}, nil
	case xqast.Compare:
		lhs, err := n.operand(c.LHS, scope)
		if err != nil {
			return nil, err
		}
		rhs, err := n.operand(c.RHS, scope)
		if err != nil {
			return nil, err
		}
		return xqast.Compare{LHS: lhs, Op: c.Op, RHS: rhs}, nil
	case xqast.And:
		l, err := n.cond(c.L, scope)
		if err != nil {
			return nil, err
		}
		r, err := n.cond(c.R, scope)
		if err != nil {
			return nil, err
		}
		return xqast.And{L: l, R: r}, nil
	case xqast.Or:
		l, err := n.cond(c.L, scope)
		if err != nil {
			return nil, err
		}
		r, err := n.cond(c.R, scope)
		if err != nil {
			return nil, err
		}
		return xqast.Or{L: l, R: r}, nil
	case xqast.Not:
		inner, err := n.cond(c.C, scope)
		if err != nil {
			return nil, err
		}
		return xqast.Not{C: inner}, nil
	default:
		return nil, errf("unsupported condition %T", c)
	}
}

func (n *normalizer) operand(o xqast.Operand, scope map[string]string) (xqast.Operand, error) {
	if o.IsLiteral {
		return o, nil
	}
	p, err := n.resolvePath(o.Path, scope)
	if err != nil {
		return o, err
	}
	if err := checkUserSteps(p, true); err != nil {
		return o, err
	}
	return xqast.Operand{Path: p}, nil
}

// checkUserSteps validates that a user-written path stays inside the
// fragment: child/descendant axes, name/*/text() tests, no predicates.
// Conditions (inCond) may use multi-step paths; everything else is reduced
// to single steps by the normalizer itself.
func checkUserSteps(p xqast.Path, inCond bool) error {
	for _, s := range p.Steps {
		if s.Axis != xqast.Child && s.Axis != xqast.Descendant {
			return errf("axis %s is not part of the query fragment (only child and descendant; %s)", s.Axis, p)
		}
		if s.Test.Kind == xqast.TestNode {
			return errf("node() tests are reserved for projection paths (%s)", p)
		}
		if s.First {
			return errf("positional predicates are not part of the query fragment (%s); existence checks keep first witnesses automatically", p)
		}
	}
	return nil
}
