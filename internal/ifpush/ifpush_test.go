package ifpush

import (
	"strings"
	"testing"

	"gcx/internal/normalize"
	"gcx/internal/xqast"
	"gcx/internal/xqparser"
)

func prep(t *testing.T, src string) *xqast.Query {
	t.Helper()
	q, err := xqparser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	n, err := normalize.Normalize(q)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	return n
}

// assertNoForInsideIf checks the postcondition the rewriting exists for.
func assertNoForInsideIf(t *testing.T, q *xqast.Query) {
	t.Helper()
	var check func(e xqast.Expr, insideIf bool)
	check = func(e xqast.Expr, insideIf bool) {
		switch e := e.(type) {
		case xqast.If:
			check(e.Then, true)
			check(e.Else, true)
		case xqast.For:
			if insideIf {
				t.Fatalf("for-loop remains inside an if-expression:\n%s", xqast.Format(q))
			}
			check(e.Return, insideIf)
		case xqast.Sequence:
			for _, item := range e.Items {
				check(item, insideIf)
			}
		case xqast.Element:
			check(e.Child, insideIf)
		}
	}
	check(q.Root, false)
}

func TestRuleFOR(t *testing.T) {
	q := prep(t, `<q>{ for $x in /a return if (exists($x/p)) then for $y in $x/b return $y else () }</q>`)
	out := Push(q)
	assertNoForInsideIf(t, out)
	// The loop over b must now contain the if.
	outer := out.Root.Child.(xqast.For)
	inner, ok := outer.Return.(xqast.For)
	if !ok {
		t.Fatalf("FOR rule did not hoist the loop: %T\n%s", outer.Return, xqast.Format(out))
	}
	if _, ok := inner.Return.(xqast.If); !ok {
		t.Fatalf("if not pushed into loop body: %T", inner.Return)
	}
}

func TestRuleSEQ(t *testing.T) {
	q := prep(t, `<q>{ for $x in /a return if (exists($x/p)) then ($x, for $y in $x/b return $y, $x) else () }</q>`)
	out := PushAll(q)
	assertNoForInsideIf(t, out)
	body := out.Root.Child.(xqast.For).Return
	seq, ok := body.(xqast.Sequence)
	if !ok || len(seq.Items) != 3 {
		t.Fatalf("SEQ rule result: %#v", body)
	}
	if _, ok := seq.Items[0].(xqast.If); !ok {
		t.Fatalf("first item: %T", seq.Items[0])
	}
	if _, ok := seq.Items[1].(xqast.For); !ok {
		t.Fatalf("second item: %T", seq.Items[1])
	}
}

func TestRuleNC(t *testing.T) {
	q := prep(t, `<q>{ for $x in /a return if (exists($x/p)) then <hit>{ for $y in $x/b return $y }</hit> else () }</q>`)
	out := Push(q)
	assertNoForInsideIf(t, out)
	body := out.Root.Child.(xqast.For).Return
	seq, ok := body.(xqast.Sequence)
	if !ok || len(seq.Items) != 3 {
		t.Fatalf("NC rule result: %#v", body)
	}
	openTag, ok := seq.Items[0].(xqast.CondTag)
	if !ok || !openTag.Open || openTag.Name != "hit" {
		t.Fatalf("open tag: %#v", seq.Items[0])
	}
	closeTag, ok := seq.Items[2].(xqast.CondTag)
	if !ok || closeTag.Open || closeTag.Name != "hit" {
		t.Fatalf("close tag: %#v", seq.Items[2])
	}
	if !xqast.EqualCond(openTag.Cond, closeTag.Cond) {
		t.Fatal("NC must emit syntactically equal conditions (well-formedness requirement of Figure 6)")
	}
	if _, ok := seq.Items[1].(xqast.For); !ok {
		t.Fatalf("middle: %T", seq.Items[1])
	}
}

func TestRuleDECOMP(t *testing.T) {
	q := prep(t, `<q>{ for $x in /a return if (exists($x/p)) then for $y in $x/b return $y else for $z in $x/c return $z }</q>`)
	out := Push(q)
	assertNoForInsideIf(t, out)
	body := out.Root.Child.(xqast.For).Return
	seq, ok := body.(xqast.Sequence)
	if !ok || len(seq.Items) != 2 {
		t.Fatalf("DECOMP result: %#v", body)
	}
	// Second branch must be guarded by the negated condition.
	f2 := seq.Items[1].(xqast.For)
	iff := f2.Return.(xqast.If)
	if _, ok := iff.Cond.(xqast.Not); !ok {
		t.Fatalf("else branch must get not(...) condition, got %s", xqast.FormatCond(iff.Cond))
	}
}

func TestSelectiveLeavesSimpleIfs(t *testing.T) {
	// The introduction's query: its if contains no for-loop, so selective
	// pushing must leave it untouched.
	q := prep(t, `
<r> {
  for $bib in /bib return
  ((for $x in $bib/* return
      if (not(exists($x/price))) then $x else ()),
   for $b in $bib/book return $b/title)
} </r>`)
	before := xqast.Format(q)
	out := Push(q)
	after := xqast.Format(out)
	if before != after {
		t.Fatalf("selective push must be identity here:\nbefore:\n%s\nafter:\n%s", before, after)
	}
}

func TestNestedIfsMerge(t *testing.T) {
	q := prep(t, `<q>{ for $x in /a return if (exists($x/p)) then if (exists($x/q)) then for $y in $x/b return $y else () else () }</q>`)
	out := PushAll(q)
	assertNoForInsideIf(t, out)
	// The two conditions must combine conjunctively inside the loop.
	inner := out.Root.Child.(xqast.For).Return.(xqast.For).Return.(xqast.If)
	if !strings.Contains(xqast.FormatCond(inner.Cond), "and") {
		t.Fatalf("merged condition: %s", xqast.FormatCond(inner.Cond))
	}
}

func TestFixpointIdempotent(t *testing.T) {
	srcs := []string{
		`<q>{ for $x in /a return if (exists($x/p)) then <h>{ ($x, for $y in $x/b return <i>{ $y }</i>) }</h> else ($x, for $z in $x/c return $z) }</q>`,
		`<q>{ for $x in /a return if (true()) then for $y in $x/b return if (exists($y/k)) then $y else () else () }</q>`,
	}
	for _, src := range srcs {
		q := prep(t, src)
		once := Push(q)
		twice := Push(once)
		if xqast.Format(once) != xqast.Format(twice) {
			t.Fatalf("Push not idempotent for %s:\nonce:\n%s\ntwice:\n%s", src, xqast.Format(once), xqast.Format(twice))
		}
		assertNoForInsideIf(t, once)
	}
}

func TestPushAllFullDecomposition(t *testing.T) {
	q := prep(t, `<q>{ for $x in /a return if (exists($x/p)) then <h>{ $x }</h> else () }</q>`)
	out := PushAll(q)
	body := out.Root.Child.(xqast.For).Return
	seq, ok := body.(xqast.Sequence)
	if !ok || len(seq.Items) != 3 {
		t.Fatalf("PushAll NC result: %#v", body)
	}
	mid, ok := seq.Items[1].(xqast.If)
	if !ok {
		t.Fatalf("middle: %T", seq.Items[1])
	}
	if _, ok := mid.Then.(xqast.VarRef); !ok {
		t.Fatalf("innermost then: %T", mid.Then)
	}
}

func TestContainsFor(t *testing.T) {
	q := prep(t, `<q>{ for $x in /a return $x }</q>`)
	if !ContainsFor(q.Root) {
		t.Fatal("ContainsFor false negative")
	}
	if ContainsFor(xqast.VarRef{Var: "x"}) {
		t.Fatal("ContainsFor false positive")
	}
}
