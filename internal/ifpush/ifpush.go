// Package ifpush implements the if-pushdown rewriting of the paper
// (Section 3, Figure 7).
//
// SignOff statements are always inserted at the end of for-loop bodies
// (Section 4). If a for-loop sits inside an if-expression, its signOff
// statements would be guarded by the condition and might never execute,
// breaking the assignment/removal balance. Pushing if-expressions down into
// for-loops guarantees that no signOff statement ends up inside an
// if-expression.
//
// The four rules:
//
//	DECOMP: if X then α else β
//	        ⇒ (if X then α else (), if (not X) then β else ())
//	SEQ:    if X then (α1,...,αn) else ()
//	        ⇒ (if X then α1 else (), ..., if X then αn else ())
//	NC:     if X then <a>α</a> else ()
//	        ⇒ (if X then <a> else (), if X then α else (), if X then </a> else ())
//	FOR:    if X then for $x in $y/axis::nt return α else ()
//	        ⇒ for $x in $y/axis::nt return if X then α else ()
//
// DECOMP is applied first to every if-then-else, then SEQ, NC, FOR are
// applied to a fixpoint. Following the paper's practical note ("we might
// decide to process only those if-expressions with a for-loop as a
// subexpression"), Push only rewrites if-expressions whose subtree contains
// a for-loop; PushAll rewrites every if-expression (used by tests to
// exercise the full rule set).
package ifpush

import "gcx/internal/xqast"

// Push rewrites q so that no for-loop remains inside an if-expression.
// Only if-expressions containing for-loops are decomposed; others are left
// intact (they cannot contain signOffs later).
func Push(q *xqast.Query) *xqast.Query {
	return &xqast.Query{Root: xqast.Element{
		Name:  q.Root.Name,
		Child: pushExpr(q.Root.Child, true),
	}}
}

// PushAll applies the rules to every if-expression regardless of content.
func PushAll(q *xqast.Query) *xqast.Query {
	return &xqast.Query{Root: xqast.Element{
		Name:  q.Root.Name,
		Child: pushExpr(q.Root.Child, false),
	}}
}

// ContainsFor reports whether any for-loop occurs in e.
func ContainsFor(e xqast.Expr) bool {
	found := false
	xqast.Walk(e, func(e xqast.Expr) bool {
		if _, ok := e.(xqast.For); ok {
			found = true
		}
		return !found
	})
	return found
}

// pushExpr rewrites bottom-up: children first, then the node itself.
func pushExpr(e xqast.Expr, selective bool) xqast.Expr {
	switch v := e.(type) {
	case xqast.Sequence:
		items := make([]xqast.Expr, len(v.Items))
		for i, item := range v.Items {
			items[i] = pushExpr(item, selective)
		}
		return xqast.FlattenSequence(items)
	case xqast.Element:
		return xqast.Element{Name: v.Name, Child: pushExpr(v.Child, selective)}
	case xqast.For:
		return xqast.For{Var: v.Var, In: v.In, Return: pushExpr(v.Return, selective)}
	case xqast.If:
		then := pushExpr(v.Then, selective)
		els := pushExpr(v.Else, selective)
		iff := xqast.If{Cond: v.Cond, Then: then, Else: els}
		if selective && !ContainsFor(iff) {
			return iff
		}
		return pushIf(iff, selective)
	default:
		return e
	}
}

// pushIf applies DECOMP, then SEQ/NC/FOR, to one if-expression whose
// branches are already fully pushed.
func pushIf(iff xqast.If, selective bool) xqast.Expr {
	// DECOMP: split a non-empty else into a second if with negated
	// condition.
	if !isEmpty(iff.Else) {
		return xqast.FlattenSequence([]xqast.Expr{
			pushIf(xqast.If{Cond: iff.Cond, Then: iff.Then, Else: xqast.Empty{}}, selective),
			pushIf(xqast.If{Cond: xqast.Not{C: iff.Cond}, Then: iff.Else, Else: xqast.Empty{}}, selective),
		})
	}
	if selective && !ContainsFor(iff.Then) {
		return iff
	}
	switch then := iff.Then.(type) {
	case xqast.Empty:
		return xqast.Empty{}
	case xqast.Sequence: // SEQ
		items := make([]xqast.Expr, len(then.Items))
		for i, item := range then.Items {
			items[i] = pushIf(xqast.If{Cond: iff.Cond, Then: item, Else: xqast.Empty{}}, selective)
		}
		return xqast.FlattenSequence(items)
	case xqast.Element: // NC
		return xqast.FlattenSequence([]xqast.Expr{
			xqast.CondTag{Cond: iff.Cond, Name: then.Name, Open: true},
			pushIf(xqast.If{Cond: iff.Cond, Then: then.Child, Else: xqast.Empty{}}, selective),
			xqast.CondTag{Cond: iff.Cond, Name: then.Name, Open: false},
		})
	case xqast.For: // FOR
		return xqast.For{
			Var:    then.Var,
			In:     then.In,
			Return: pushIf(xqast.If{Cond: iff.Cond, Then: then.Return, Else: xqast.Empty{}}, selective),
		}
	case xqast.If:
		// Nested empty-else if: merge conditions conjunctively, which is
		// semantically the same and keeps pushing.
		merged := xqast.If{Cond: xqast.And{L: iff.Cond, R: then.Cond}, Then: then.Then, Else: xqast.Empty{}}
		return pushIf(merged, selective)
	default:
		return iff
	}
}

func isEmpty(e xqast.Expr) bool {
	switch e.(type) {
	case nil, xqast.Empty:
		return true
	default:
		return false
	}
}
