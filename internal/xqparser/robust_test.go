package xqparser

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickParserNeverPanics feeds the parser random byte soup and random
// mutations of valid queries: it must always return (possibly an error)
// without panicking, and errors must carry positions.
func TestQuickParserNeverPanics(t *testing.T) {
	corpus := []string{
		`<q>{ for $x in /a/b return if (exists($x/c)) then $x else () }</q>`,
		`<q>{ (for $a in //a return <r>{ $a/name }</r>, $root) }</q>`,
		`<q>{ if ($root/a = "x" and true()) then <y/> else <n/> }</q>`,
	}
	alphabet := `<>/{}()$="' abcdefor return in if then else exists not and`
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var src string
		if r.Intn(2) == 0 {
			// Pure random soup.
			n := r.Intn(120)
			b := make([]byte, n)
			for i := range b {
				b[i] = alphabet[r.Intn(len(alphabet))]
			}
			src = string(b)
		} else {
			// Mutate a valid query: delete, duplicate, or flip bytes.
			src = corpus[r.Intn(len(corpus))]
			for k := 0; k < 1+r.Intn(4); k++ {
				if len(src) < 2 {
					break
				}
				i := r.Intn(len(src) - 1)
				switch r.Intn(3) {
				case 0:
					src = src[:i] + src[i+1:]
				case 1:
					src = src[:i] + string(src[i]) + src[i:]
				case 2:
					src = src[:i] + string(alphabet[r.Intn(len(alphabet))]) + src[i+1:]
				}
			}
		}
		defer func() {
			if p := recover(); p != nil {
				t.Logf("seed %d: panic on %q: %v", seed, src, p)
				t.Fail()
			}
		}()
		q, err := Parse(src)
		if err != nil {
			if perr, ok := err.(*Error); ok && (perr.Line < 1 || perr.Col < 1) {
				t.Logf("seed %d: error without position: %v", seed, err)
				return false
			}
			return true
		}
		_ = q
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
