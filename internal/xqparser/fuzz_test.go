package xqparser

import (
	"testing"

	"gcx/internal/xqast"
)

// FuzzParse feeds arbitrary strings to the XQ parser and checks that it
// never panics, and that accepted queries survive a format/reparse round
// trip with the formatter as a fixpoint — the property the engine's
// -explain output and golden tests rely on.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`<out>{ for $b in /bib/book return $b/title }</out>`,
		`<q>{ for $x in /a return if (exists($x/b)) then $x/b else () }</q>`,
		`<q>{ for $p in /site/people/person return
		    if ($p/id = "person0") then $p/name else () }</q>`,
		`<r>{ ( for $a in /x//y return <z>{ $a/text() }</z>, "lit" ) }</r>`,
		`<a>{ for $i in /s return if ($i/p >= 40 and not(exists($i/q))) then <m/> else () }</a>`,
		`<out>text</out>`,
		`<out>{ (: comment :) for $x in /a/b where $x/c = 1 return $x }</out>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		formatted := xqast.Format(q)
		q2, err := Parse(formatted)
		if err != nil {
			t.Fatalf("reparse of formatted query failed: %v\noriginal: %q\nformatted:\n%s", err, src, formatted)
		}
		if again := xqast.Format(q2); again != formatted {
			t.Fatalf("format is not a fixpoint\noriginal: %q\nfirst:\n%s\nsecond:\n%s", src, formatted, again)
		}
	})
}
