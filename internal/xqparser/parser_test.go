package xqparser

import (
	"strings"
	"testing"

	"gcx/internal/xqast"
)

// introQuery is the example from the paper's introduction.
const introQuery = `
<r> {
  for $bib in /bib return
  ((for $x in $bib/* return
      if (not(exists($x/price))) then $x else ()),
   for $b in $bib/book return $b/title)
} </r>`

func mustParse(t *testing.T, src string) *xqast.Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestParseIntroQuery(t *testing.T) {
	q := mustParse(t, introQuery)
	if q.Root.Name != "r" {
		t.Fatalf("root element %q, want r", q.Root.Name)
	}
	vars := xqast.Vars(q)
	want := []string{"root", "bib", "x", "b"}
	if len(vars) != len(want) {
		t.Fatalf("vars %v, want %v", vars, want)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Fatalf("vars %v, want %v", vars, want)
		}
	}
}

func TestParseAbsolutePaths(t *testing.T) {
	q := mustParse(t, `<q>{ for $a in /site/people return $a }</q>`)
	f := q.Root.Child.(xqast.For)
	if f.In.Var != xqast.RootVar {
		t.Fatalf("absolute path rooted at %q, want root", f.In.Var)
	}
	if len(f.In.Steps) != 2 || f.In.Steps[0].Test.Name != "site" || f.In.Steps[1].Test.Name != "people" {
		t.Fatalf("steps: %v", f.In.Steps)
	}
	if f.In.Steps[0].Axis != xqast.Child {
		t.Fatal("leading / must be child axis")
	}
}

func TestParseDescendantAxis(t *testing.T) {
	q := mustParse(t, `<q>{ for $a in //a return for $b in $a//b return $b }</q>`)
	outer := q.Root.Child.(xqast.For)
	if outer.In.Steps[0].Axis != xqast.Descendant {
		t.Fatal("// must be descendant axis")
	}
	inner := outer.Return.(xqast.For)
	if inner.In.Var != "a" || inner.In.Steps[0].Axis != xqast.Descendant {
		t.Fatalf("inner loop path: %v", inner.In)
	}
}

func TestParseExplicitAxes(t *testing.T) {
	q := mustParse(t, `<q>{ for $a in $root/child::site return $a/descendant::item }</q>`)
	f := q.Root.Child.(xqast.For)
	if f.In.Steps[0].Axis != xqast.Child || f.In.Steps[0].Test.Name != "site" {
		t.Fatalf("explicit child:: parse: %v", f.In.Steps)
	}
	pe := f.Return.(xqast.PathExpr)
	if pe.Path.Steps[0].Axis != xqast.Descendant {
		t.Fatalf("explicit descendant:: parse: %v", pe.Path.Steps)
	}
}

func TestParseDosAxisAndPredicate(t *testing.T) {
	e, err := ParseExpr(`$x/dos::node()`)
	if err != nil {
		t.Fatal(err)
	}
	pe := e.(xqast.PathExpr)
	s := pe.Path.Steps[0]
	if s.Axis != xqast.DescendantOrSelf || s.Test.Kind != xqast.TestNode {
		t.Fatalf("dos::node() parse: %v", s)
	}

	e2, err := ParseExpr(`$x/price[1]`)
	if err != nil {
		t.Fatal(err)
	}
	if !e2.(xqast.PathExpr).Path.Steps[0].First {
		t.Fatal("[1] predicate not parsed")
	}
}

func TestParseAttributeSugar(t *testing.T) {
	q := mustParse(t, `<q>{ for $p in /people return if ($p/@id = "person0") then $p/name else () }</q>`)
	f := q.Root.Child.(xqast.For)
	iff := f.Return.(xqast.If)
	cmp := iff.Cond.(xqast.Compare)
	if cmp.LHS.Path.Steps[0].Test.Name != "id" || cmp.LHS.Path.Steps[0].Axis != xqast.Child {
		t.Fatalf("@id must become child::id, got %v", cmp.LHS.Path.Steps)
	}
	if !cmp.RHS.IsLiteral || cmp.RHS.Lit != "person0" {
		t.Fatalf("literal side: %v", cmp.RHS)
	}
}

func TestParseTextTest(t *testing.T) {
	e, err := ParseExpr(`$x/text()`)
	if err != nil {
		t.Fatal(err)
	}
	if e.(xqast.PathExpr).Path.Steps[0].Test.Kind != xqast.TestText {
		t.Fatal("text() test not parsed")
	}
}

func TestParseWhereDesugarsToIf(t *testing.T) {
	q := mustParse(t, `<q>{ for $t in /a/b where $t/c = "x" return $t }</q>`)
	f := q.Root.Child.(xqast.For)
	// Multi-step paths stay intact at parse time; where becomes If.
	if len(f.In.Steps) != 2 {
		t.Fatalf("multi-step path must stay intact at parse time: %v", f.In)
	}
	inner, ok := f.Return.(xqast.If)
	if !ok {
		t.Fatalf("where must desugar to if, got %T", f.Return)
	}
	if _, ok := inner.Else.(xqast.Empty); !ok {
		t.Fatal("where-if must have empty else branch")
	}
}

func TestParseMultiBindingFor(t *testing.T) {
	q := mustParse(t, `<q>{ for $a in /x, $b in $a/y return $b }</q>`)
	outer := q.Root.Child.(xqast.For)
	if outer.Var != "a" {
		t.Fatalf("outer var %q", outer.Var)
	}
	inner, ok := outer.Return.(xqast.For)
	if !ok || inner.Var != "b" {
		t.Fatalf("multi-binding must nest: %T", outer.Return)
	}
}

func TestParseConditions(t *testing.T) {
	q := mustParse(t, `<q>{
	  for $x in /a return
	  if (true() and not(exists($x/b)) or $x/c >= "5" and $x/d != $x/e) then $x else ()
	}</q>`)
	iff := q.Root.Child.(xqast.For).Return.(xqast.If)
	or, ok := iff.Cond.(xqast.Or)
	if !ok {
		t.Fatalf("top-level cond must be Or (and binds tighter), got %T", iff.Cond)
	}
	if _, ok := or.L.(xqast.And); !ok {
		t.Fatalf("left of or: %T", or.L)
	}
	if _, ok := or.R.(xqast.And); !ok {
		t.Fatalf("right of or: %T", or.R)
	}
}

func TestParseNotWithoutParens(t *testing.T) {
	// The paper's grammar writes "not cond" without parentheses.
	q := mustParse(t, `<q>{ for $x in /a return if (not exists($x/b)) then $x else () }</q>`)
	iff := q.Root.Child.(xqast.For).Return.(xqast.If)
	n, ok := iff.Cond.(xqast.Not)
	if !ok {
		t.Fatalf("cond: %T", iff.Cond)
	}
	if _, ok := n.C.(xqast.Exists); !ok {
		t.Fatalf("not operand: %T", n.C)
	}
}

func TestParseNestedConstructors(t *testing.T) {
	q := mustParse(t, `<out><header>report</header>{ for $x in /a return <row>{ $x/name }</row> }</out>`)
	seq, ok := q.Root.Child.(xqast.Sequence)
	if !ok || len(seq.Items) != 2 {
		t.Fatalf("content: %#v", q.Root.Child)
	}
	hdr := seq.Items[0].(xqast.Element)
	if hdr.Name != "header" {
		t.Fatalf("header name %q", hdr.Name)
	}
	if txt, ok := hdr.Child.(xqast.Text); !ok || txt.Data != "report" {
		t.Fatalf("header content: %#v", hdr.Child)
	}
}

func TestParseSelfClosingConstructor(t *testing.T) {
	q := mustParse(t, `<q>{ for $x in /a return <hit/> }</q>`)
	el := q.Root.Child.(xqast.For).Return.(xqast.Element)
	if el.Name != "hit" {
		t.Fatalf("element %q", el.Name)
	}
	if _, ok := el.Child.(xqast.Empty); !ok {
		t.Fatalf("self-closing child: %T", el.Child)
	}
}

func TestParseNumericLiteral(t *testing.T) {
	q := mustParse(t, `<q>{ for $p in /people return if ($p/income > 100000) then $p else () }</q>`)
	cmp := q.Root.Child.(xqast.For).Return.(xqast.If).Cond.(xqast.Compare)
	if !cmp.RHS.IsLiteral || cmp.RHS.Lit != "100000" {
		t.Fatalf("numeric literal: %v", cmp.RHS)
	}
}

func TestParseComments(t *testing.T) {
	q := mustParse(t, `<q>{ (: outer (: nested :) comment :) for $x in /a return $x }</q>`)
	if _, ok := q.Root.Child.(xqast.For); !ok {
		t.Fatalf("child: %T", q.Root.Child)
	}
}

func TestParseEmptySequenceAndCommas(t *testing.T) {
	e, err := ParseExpr(`($x, (), $y, ($z, $w))`)
	if err != nil {
		t.Fatal(err)
	}
	seq := e.(xqast.Sequence)
	// Parser keeps structure; flattening is normalize's job. Top level has 4 items.
	if len(seq.Items) != 4 {
		t.Fatalf("items: %d (%#v)", len(seq.Items), seq)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{"let unsupported", `<q>{ let $x := /a return $x }</q>`, "let-expressions"},
		{"not an element", `for $x in /a return $x`, "element constructor"},
		{"mismatched tags", `<a>{ () }</b>`, "mismatched closing tag"},
		{"unterminated constructor", `<a>{ () }`, "unterminated element"},
		{"literal vs literal", `<q>{ if ("a" = "b") then () else () }</q>`, "at least one side"},
		{"bad predicate", `<q>{ $root/a[2] }</q>`, "[1]"},
		{"loop over bare var", `<q>{ for $x in $y return $x }</q>`, "bare variable"},
		{"unterminated string", `<q>{ if ($x/a = "oops) then () else () }</q>`, "unterminated string"},
		{"unterminated comment", `<q>{ (: oops }</q>`, "unterminated comment"},
		{"trailing garbage", `<a>{ () }</a> $x`, "after end of query"},
		{"bad axis", `<q>{ $x/parent::a }</q>`, "unsupported axis"},
		{"attr in constructor", `<q id="1">{ () }</q>`, "attributes"},
		{"missing in", `<q>{ for $x /a return $x }</q>`, `keyword "in"`},
		{"missing return", `<q>{ for $x in /a $x }</q>`, `keyword "return"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error containing %q", tc.src, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err.Error(), tc.want)
			}
		})
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Parse("<q>{\n  for $x in /a\n  retrun $x\n}</q>")
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T: %v", err, err)
	}
	if perr.Line != 3 {
		t.Fatalf("error line %d, want 3 (%v)", perr.Line, perr)
	}
}

// TestFormatRoundTrip checks that the canonical printer output reparses to
// the same canonical form for a corpus of queries.
func TestFormatRoundTrip(t *testing.T) {
	corpus := []string{
		introQuery,
		`<q>{ for $a in //a return <a>{ for $b in $a//b return <b/> }</a> }</q>`,
		`<q>{ for $a in //a return <a>{ for $b in //b return <b/> }</a> }</q>`,
		`<q>{ for $p in /site/people/person return if ($p/id = "person0") then $p/name else () }</q>`,
		`<q>{ (for $x in /a/b return $x, for $y in /a/c return ($y, $y/d)) }</q>`,
		`<q>{ if (exists($root/a)) then <yes>{ text { "hit" } }</yes> else <no/> }</q>`,
	}
	for i, src := range corpus {
		q1 := mustParse(t, src)
		s1 := xqast.Format(q1)
		q2, err := Parse(s1)
		if err != nil {
			t.Fatalf("case %d: reparse of formatted output failed: %v\n%s", i, err, s1)
		}
		s2 := xqast.Format(q2)
		if s1 != s2 {
			t.Fatalf("case %d: format not stable:\nfirst:\n%s\nsecond:\n%s", i, s1, s2)
		}
	}
}
