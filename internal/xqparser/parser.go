package xqparser

import (
	"fmt"
	"strings"

	"gcx/internal/xqast"
)

// Parse parses a complete query: a single element constructor (production
// Q ::= <a>q</a> of Figure 6). The result is surface-level AST; callers run
// package normalize to reduce it to the fragment and validate it.
func Parse(src string) (*xqast.Query, error) {
	p := &parser{lx: newLexer(src)}
	expr, err := p.parseSingle()
	if err != nil {
		return nil, err
	}
	root, ok := expr.(xqast.Element)
	if !ok {
		return nil, &Error{Line: 1, Col: 1, Msg: "a query must be a single element constructor <a>{...}</a>"}
	}
	tk, err := p.take(true)
	if err != nil {
		return nil, err
	}
	if tk.kind != tokEOF {
		return nil, p.errAt(tk, "unexpected %s after end of query", tk.kind)
	}
	return &xqast.Query{Root: root}, nil
}

// ParseExpr parses a standalone expression (used by tests).
func ParseExpr(src string) (xqast.Expr, error) {
	p := &parser{lx: newLexer(src)}
	expr, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	tk, err := p.take(true)
	if err != nil {
		return nil, err
	}
	if tk.kind != tokEOF {
		return nil, p.errAt(tk, "unexpected %s after end of expression", tk.kind)
	}
	return expr, nil
}

type parser struct {
	lx *lexer
}

type lexState struct {
	pos, line, col int
}

func (p *parser) save() lexState { return lexState{p.lx.pos, p.lx.line, p.lx.col} }
func (p *parser) restore(s lexState) {
	p.lx.pos, p.lx.line, p.lx.col = s.pos, s.line, s.col
}

// take consumes the next token in the given lexer context.
func (p *parser) take(exprCtx bool) (token, error) {
	return p.lx.next(exprCtx)
}

// peek returns the next token without consuming it.
func (p *parser) peek(exprCtx bool) (token, error) {
	s := p.save()
	tk, err := p.lx.next(exprCtx)
	p.restore(s)
	return tk, err
}

func (p *parser) errAt(tk token, format string, args ...interface{}) *Error {
	return &Error{Line: tk.line, Col: tk.col, Msg: fmt.Sprintf(format, args...)}
}

// expect consumes a token and checks its kind.
func (p *parser) expect(kind tokKind, exprCtx bool, what string) (token, error) {
	tk, err := p.take(exprCtx)
	if err != nil {
		return tk, err
	}
	if tk.kind != kind {
		return tk, p.errAt(tk, "expected %s %s, found %s", kind, what, tk.kind)
	}
	return tk, nil
}

// expectKeyword consumes an identifier token with the given text.
func (p *parser) expectKeyword(kw string) error {
	tk, err := p.take(false)
	if err != nil {
		return err
	}
	if tk.kind != tokIdent || tk.text != kw {
		return p.errAt(tk, "expected keyword %q, found %s %q", kw, tk.kind, tk.text)
	}
	return nil
}

// parseExpr parses a comma-separated sequence of single expressions.
func (p *parser) parseExpr() (xqast.Expr, error) {
	var items []xqast.Expr
	for {
		e, err := p.parseSingle()
		if err != nil {
			return nil, err
		}
		items = append(items, e)
		tk, err := p.peek(true)
		if err != nil {
			return nil, err
		}
		if tk.kind != tokComma {
			break
		}
		if _, err := p.take(true); err != nil {
			return nil, err
		}
	}
	if len(items) == 1 {
		return items[0], nil
	}
	return xqast.Sequence{Items: items}, nil
}

// parseSingle parses one ExprSingle: for, if, or a primary expression.
func (p *parser) parseSingle() (xqast.Expr, error) {
	tk, err := p.peek(true)
	if err != nil {
		return nil, err
	}
	switch tk.kind {
	case tokIdent:
		switch tk.text {
		case "for":
			return p.parseFor()
		case "if":
			return p.parseIf()
		case "let":
			return nil, p.errAt(tk, "let-expressions are outside the XQ fragment (the paper notes they can be removed in practical queries); inline the bound expression")
		case "text":
			return p.parseTextConstructor()
		}
		return nil, p.errAt(tk, "unexpected identifier %q in expression position", tk.text)
	case tokTagOpen:
		return p.parseConstructor()
	case tokVar, tokSlash, tokSlashSlash:
		path, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		if len(path.Steps) == 0 {
			return xqast.VarRef{Var: path.Var}, nil
		}
		return xqast.PathExpr{Path: path}, nil
	case tokLParen:
		if _, err := p.take(true); err != nil {
			return nil, err
		}
		nxt, err := p.peek(true)
		if err != nil {
			return nil, err
		}
		if nxt.kind == tokRParen {
			_, err := p.take(true)
			return xqast.Empty{}, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, true, "to close parenthesized expression"); err != nil {
			return nil, err
		}
		return e, nil
	case tokString:
		if _, err := p.take(true); err != nil {
			return nil, err
		}
		return xqast.Text{Data: tk.text}, nil
	default:
		return nil, p.errAt(tk, "unexpected %s in expression position", tk.kind)
	}
}

// parseTextConstructor parses text { "literal" }.
func (p *parser) parseTextConstructor() (xqast.Expr, error) {
	if err := p.expectKeyword("text"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace, false, "after text"); err != nil {
		return nil, err
	}
	tk, err := p.expect(tokString, false, "inside text constructor")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRBrace, false, "to close text constructor"); err != nil {
		return nil, err
	}
	return xqast.Text{Data: tk.text}, nil
}

// parseFor parses "for $x in path (, $y in path)* (where cond)? return single".
// Multiple bindings desugar to nested for-loops; a where clause desugars to
// if-then-else (the adaptation of Section 3: "rewriting where-conditions to
// if-then-else expressions").
func (p *parser) parseFor() (xqast.Expr, error) {
	if err := p.expectKeyword("for"); err != nil {
		return nil, err
	}
	type binding struct {
		v    string
		path xqast.Path
	}
	var bindings []binding
	for {
		tk, err := p.expect(tokVar, false, "in for clause")
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("in"); err != nil {
			return nil, err
		}
		path, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		if len(path.Steps) == 0 {
			return nil, p.errAt(tk, "for-loop over a bare variable $%s is not allowed; iterate a path", path.Var)
		}
		bindings = append(bindings, binding{tk.text, path})
		nxt, err := p.peek(false)
		if err != nil {
			return nil, err
		}
		if nxt.kind != tokComma {
			break
		}
		if _, err := p.take(false); err != nil {
			return nil, err
		}
	}

	var where xqast.Cond
	nxt, err := p.peek(false)
	if err != nil {
		return nil, err
	}
	if nxt.kind == tokIdent && nxt.text == "where" {
		if _, err := p.take(false); err != nil {
			return nil, err
		}
		where, err = p.parseCond()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("return"); err != nil {
		return nil, err
	}
	body, err := p.parseSingle()
	if err != nil {
		return nil, err
	}
	if where != nil {
		body = xqast.If{Cond: where, Then: body, Else: xqast.Empty{}}
	}
	for i := len(bindings) - 1; i >= 0; i-- {
		body = xqast.For{Var: bindings[i].v, In: bindings[i].path, Return: body}
	}
	return body, nil
}

// parseIf parses "if (cond) then single else single".
func (p *parser) parseIf() (xqast.Expr, error) {
	if err := p.expectKeyword("if"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen, false, "after if"); err != nil {
		return nil, err
	}
	cond, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen, false, "to close if condition"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("then"); err != nil {
		return nil, err
	}
	then, err := p.parseSingle()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("else"); err != nil {
		return nil, err
	}
	els, err := p.parseSingle()
	if err != nil {
		return nil, err
	}
	return xqast.If{Cond: cond, Then: then, Else: els}, nil
}

// parseConstructor parses <a>content</a> or <a/>. Content may interleave
// literal text, nested constructors, and { expr } blocks.
func (p *parser) parseConstructor() (xqast.Expr, error) {
	open, err := p.take(true)
	if err != nil {
		return nil, err
	}
	name := open.text
	// Constructor header: expect '>' or '/>'.
	hdr, err := p.take(false)
	if err != nil {
		return nil, err
	}
	switch hdr.kind {
	case tokTagSelfEnd:
		return xqast.Element{Name: name, Child: xqast.Empty{}}, nil
	case tokGt:
	default:
		return nil, p.errAt(hdr, "expected '>' or '/>' in constructor <%s (attributes are not part of the fragment; the paper converts attributes to subelements)", name)
	}

	var items []xqast.Expr
	for {
		raw := p.lx.rawText()
		if trimmed := strings.TrimSpace(raw); trimmed != "" {
			// Boundary whitespace is dropped (XQuery default); inner
			// significant text is kept verbatim.
			items = append(items, xqast.Text{Data: trimmed})
		}
		c := p.lx.peekByte()
		switch c {
		case 0:
			return nil, p.lx.errf("unterminated element constructor <%s>", name)
		case '{':
			if _, err := p.take(true); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBrace, true, "to close embedded expression"); err != nil {
				return nil, err
			}
			items = append(items, e)
		case '<':
			tk, err := p.peek(true)
			if err != nil {
				return nil, err
			}
			if tk.kind == tokTagClose {
				if _, err := p.take(true); err != nil {
					return nil, err
				}
				if tk.text != name {
					return nil, p.errAt(tk, "mismatched closing tag </%s>, expected </%s>", tk.text, name)
				}
				return xqast.Element{Name: name, Child: xqast.FlattenSequence(items)}, nil
			}
			if tk.kind != tokTagOpen {
				return nil, p.errAt(tk, "unexpected %s inside element content", tk.kind)
			}
			e, err := p.parseConstructor()
			if err != nil {
				return nil, err
			}
			items = append(items, e)
		default:
			return nil, p.lx.errf("unexpected character %q inside element content", c)
		}
	}
}

// parsePath parses a variable-rooted or absolute path:
//
//	$x, $x/step/..., /step/..., //step/...
//
// Absolute paths are rooted at $root. Steps accept the abbreviations
// name, *, @name, text(), node(), explicit axes child::ν, descendant::ν,
// descendant-or-self::ν (dos::ν), and a trailing [1] predicate.
func (p *parser) parsePath() (xqast.Path, error) {
	tk, err := p.take(false)
	if err != nil {
		return xqast.Path{}, err
	}
	var path xqast.Path
	switch tk.kind {
	case tokVar:
		path.Var = tk.text
	case tokSlash:
		path.Var = xqast.RootVar
		step, err := p.parseStep(xqast.Child)
		if err != nil {
			return path, err
		}
		path.Steps = append(path.Steps, step)
	case tokSlashSlash:
		path.Var = xqast.RootVar
		step, err := p.parseStep(xqast.Descendant)
		if err != nil {
			return path, err
		}
		path.Steps = append(path.Steps, step)
	default:
		return path, p.errAt(tk, "expected a path, found %s", tk.kind)
	}
	for {
		nxt, err := p.peek(false)
		if err != nil {
			return path, err
		}
		var axis xqast.Axis
		switch nxt.kind {
		case tokSlash:
			axis = xqast.Child
		case tokSlashSlash:
			axis = xqast.Descendant
		default:
			return path, nil
		}
		if _, err := p.take(false); err != nil {
			return path, err
		}
		step, err := p.parseStep(axis)
		if err != nil {
			return path, err
		}
		path.Steps = append(path.Steps, step)
	}
}

// parseStep parses one step after a '/' or '//' with the given default axis.
func (p *parser) parseStep(axis xqast.Axis) (xqast.Step, error) {
	tk, err := p.take(false)
	if err != nil {
		return xqast.Step{}, err
	}
	step := xqast.Step{Axis: axis}
	switch tk.kind {
	case tokStar:
		step.Test = xqast.StarTest()
	case tokAt:
		// @name sugar: with the attributes-as-subelements adaptation,
		// attribute steps become child element steps.
		name, err := p.expect(tokIdent, false, "after '@'")
		if err != nil {
			return step, err
		}
		step.Test = xqast.NameTest(name.text)
	case tokIdent:
		// Possible explicit axis prefix.
		if nxt, err := p.peek(false); err == nil && nxt.kind == tokColonColon {
			var ax xqast.Axis
			switch tk.text {
			case "child":
				ax = xqast.Child
			case "descendant":
				ax = xqast.Descendant
			case "descendant-or-self", "dos":
				ax = xqast.DescendantOrSelf
			default:
				return step, p.errAt(tk, "unsupported axis %q (fragment allows child, descendant, descendant-or-self)", tk.text)
			}
			if axis == xqast.Descendant {
				return step, p.errAt(tk, "cannot combine '//' with an explicit axis")
			}
			step.Axis = ax
			if _, err := p.take(false); err != nil {
				return step, err
			}
			return p.parseStepTest(step)
		}
		return p.parseIdentTest(step, tk)
	default:
		return step, p.errAt(tk, "expected a node test, found %s", tk.kind)
	}
	return p.parsePredicate(step)
}

// parseStepTest parses the node test after an explicit axis.
func (p *parser) parseStepTest(step xqast.Step) (xqast.Step, error) {
	tk, err := p.take(false)
	if err != nil {
		return step, err
	}
	switch tk.kind {
	case tokStar:
		step.Test = xqast.StarTest()
		return p.parsePredicate(step)
	case tokIdent:
		return p.parseIdentTest(step, tk)
	default:
		return step, p.errAt(tk, "expected a node test after axis, found %s", tk.kind)
	}
}

// parseIdentTest interprets an identifier node test, handling text() and
// node().
func (p *parser) parseIdentTest(step xqast.Step, tk token) (xqast.Step, error) {
	if nxt, err := p.peek(false); err == nil && nxt.kind == tokLParen && (tk.text == "text" || tk.text == "node") {
		if _, err := p.take(false); err != nil {
			return step, err
		}
		if _, err := p.expect(tokRParen, false, "to close node test"); err != nil {
			return step, err
		}
		if tk.text == "text" {
			step.Test = xqast.TextTest()
		} else {
			step.Test = xqast.NodeKindTest()
		}
		return p.parsePredicate(step)
	}
	step.Test = xqast.NameTest(tk.text)
	return p.parsePredicate(step)
}

// parsePredicate parses an optional trailing [1].
func (p *parser) parsePredicate(step xqast.Step) (xqast.Step, error) {
	nxt, err := p.peek(false)
	if err != nil || nxt.kind != tokLBracket {
		return step, nil
	}
	if _, err := p.take(false); err != nil {
		return step, err
	}
	tk, err := p.take(false)
	if err != nil {
		return step, err
	}
	if tk.kind != tokString || tk.text != "1" {
		return step, p.errAt(tk, "the only predicate in the fragment is [1] (first witness)")
	}
	if _, err := p.expect(tokRBracket, false, "to close predicate"); err != nil {
		return step, err
	}
	step.First = true
	return step, nil
}

// parseCond parses a condition with standard precedence:
// or < and < not/primary.
func (p *parser) parseCond() (xqast.Cond, error) {
	left, err := p.parseAndCond()
	if err != nil {
		return nil, err
	}
	for {
		nxt, err := p.peek(false)
		if err != nil {
			return nil, err
		}
		if nxt.kind != tokIdent || nxt.text != "or" {
			return left, nil
		}
		if _, err := p.take(false); err != nil {
			return nil, err
		}
		right, err := p.parseAndCond()
		if err != nil {
			return nil, err
		}
		left = xqast.Or{L: left, R: right}
	}
}

func (p *parser) parseAndCond() (xqast.Cond, error) {
	left, err := p.parsePrimCond()
	if err != nil {
		return nil, err
	}
	for {
		nxt, err := p.peek(false)
		if err != nil {
			return nil, err
		}
		if nxt.kind != tokIdent || nxt.text != "and" {
			return left, nil
		}
		if _, err := p.take(false); err != nil {
			return nil, err
		}
		right, err := p.parsePrimCond()
		if err != nil {
			return nil, err
		}
		left = xqast.And{L: left, R: right}
	}
}

func (p *parser) parsePrimCond() (xqast.Cond, error) {
	tk, err := p.peek(false)
	if err != nil {
		return nil, err
	}
	switch {
	case tk.kind == tokIdent && (tk.text == "not" || tk.text == "fn.not"):
		if _, err := p.take(false); err != nil {
			return nil, err
		}
		// Both "not(cond)" and "not cond" (the paper's grammar) are accepted.
		nxt, err := p.peek(false)
		if err != nil {
			return nil, err
		}
		if nxt.kind == tokLParen {
			if _, err := p.take(false); err != nil {
				return nil, err
			}
			c, err := p.parseCond()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen, false, "to close not(...)"); err != nil {
				return nil, err
			}
			return xqast.Not{C: c}, nil
		}
		c, err := p.parsePrimCond()
		if err != nil {
			return nil, err
		}
		return xqast.Not{C: c}, nil
	case tk.kind == tokIdent && tk.text == "true":
		if _, err := p.take(false); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLParen, false, "after true"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, false, "after true("); err != nil {
			return nil, err
		}
		return xqast.TrueCond{}, nil
	case tk.kind == tokIdent && tk.text == "exists":
		if _, err := p.take(false); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLParen, false, "after exists"); err != nil {
			return nil, err
		}
		path, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, false, "to close exists(...)"); err != nil {
			return nil, err
		}
		return xqast.Exists{Path: path}, nil
	case tk.kind == tokLParen:
		if _, err := p.take(false); err != nil {
			return nil, err
		}
		c, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, false, "to close parenthesized condition"); err != nil {
			return nil, err
		}
		return c, nil
	default:
		return p.parseComparison()
	}
}

func (p *parser) parseComparison() (xqast.Cond, error) {
	lhs, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	tk, err := p.take(false)
	if err != nil {
		return nil, err
	}
	var op xqast.RelOp
	switch tk.kind {
	case tokEq:
		op = xqast.OpEq
	case tokNe:
		op = xqast.OpNe
	case tokLt:
		op = xqast.OpLt
	case tokLe:
		op = xqast.OpLe
	case tokGt:
		op = xqast.OpGt
	case tokGe:
		op = xqast.OpGe
	default:
		return nil, p.errAt(tk, "expected a comparison operator, found %s", tk.kind)
	}
	rhs, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	if lhs.IsLiteral && rhs.IsLiteral {
		return nil, p.errAt(tk, "at least one side of a comparison must be a path (Figure 6)")
	}
	return xqast.Compare{LHS: lhs, Op: op, RHS: rhs}, nil
}

func (p *parser) parseOperand() (xqast.Operand, error) {
	tk, err := p.peek(false)
	if err != nil {
		return xqast.Operand{}, err
	}
	if tk.kind == tokString {
		if _, err := p.take(false); err != nil {
			return xqast.Operand{}, err
		}
		return xqast.Operand{IsLiteral: true, Lit: tk.text}, nil
	}
	path, err := p.parsePath()
	if err != nil {
		return xqast.Operand{}, err
	}
	return xqast.Operand{Path: path}, nil
}
