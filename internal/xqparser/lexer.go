// Package xqparser contains a hand-written lexer and recursive-descent
// parser for the XQuery surface syntax accepted by the engine. The surface
// language is a superset of the fragment XQ (Figure 6 of the paper):
// `where` clauses, multi-step paths, `@name` attribute steps, and literal
// text are accepted and reduced to the fragment by package normalize.
package xqparser

import (
	"fmt"
	"strings"
)

// tokKind enumerates lexical token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokVar    // $name
	tokString // "..." or '...'
	tokLBrace // {
	tokRBrace // }
	tokLParen // (
	tokRParen // )
	tokComma
	tokSlash       // /
	tokSlashSlash  // //
	tokStar        // *
	tokAt          // @
	tokLt          // <
	tokLe          // <=
	tokGt          // >
	tokGe          // >=
	tokEq          // =
	tokNe          // !=
	tokTagOpen     // <name   (start of constructor)
	tokTagClose    // </name>
	tokTagSelfEnd  // />  (inside constructor header)
	tokAxisChild   // child::
	tokAxisDesc    // descendant::
	tokAxisDos     // descendant-or-self:: or dos::
	tokLBracket    // [
	tokRBracket    // ]
	tokColonColon  // ::
	tokText        // raw text inside element content
	tokSemicolonNo // unused, keeps iota stable
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokVar:
		return "variable"
	case tokString:
		return "string literal"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokSlash:
		return "'/'"
	case tokSlashSlash:
		return "'//'"
	case tokStar:
		return "'*'"
	case tokAt:
		return "'@'"
	case tokLt:
		return "'<'"
	case tokLe:
		return "'<='"
	case tokGt:
		return "'>'"
	case tokGe:
		return "'>='"
	case tokEq:
		return "'='"
	case tokNe:
		return "'!='"
	case tokTagOpen:
		return "start tag"
	case tokTagClose:
		return "end tag"
	case tokTagSelfEnd:
		return "'/>'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

// token is a lexical token with its source position.
type token struct {
	kind tokKind
	text string // identifier name, variable name, string value, or tag name
	line int
	col  int
}

// Error is a parse error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("xquery parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// lexer produces tokens from the query source. Tag recognition is
// context-sensitive ('<' may start a constructor or be a comparison
// operator), so the parser steers the lexer via nextExpr (expression
// context: '<'+name is a constructor) and nextOperand (comparison context:
// '<' is an operator).
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errf(format string, args ...interface{}) *Error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) advance(n int) {
	for i := 0; i < n; i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekAt(i int) byte {
	if l.pos+i >= len(l.src) {
		return 0
	}
	return l.src[l.pos+i]
}

// skipSpaceAndComments skips whitespace and XQuery comments (: ... :),
// which nest.
func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.advance(1)
			continue
		}
		if c == '(' && l.peekAt(1) == ':' {
			depth := 0
			for l.pos < len(l.src) {
				if l.peekByte() == '(' && l.peekAt(1) == ':' {
					depth++
					l.advance(2)
					continue
				}
				if l.peekByte() == ':' && l.peekAt(1) == ')' {
					depth--
					l.advance(2)
					if depth == 0 {
						break
					}
					continue
				}
				l.advance(1)
			}
			if depth != 0 {
				return l.errf("unterminated comment")
			}
			continue
		}
		return nil
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentByte(c byte) bool {
	return isIdentStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

func (l *lexer) readIdent() string {
	start := l.pos
	for l.pos < len(l.src) && isIdentByte(l.src[l.pos]) {
		l.advance(1)
	}
	return l.src[start:l.pos]
}

func (l *lexer) readString() (string, error) {
	quote := l.src[l.pos]
	l.advance(1)
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			// XQuery doubles quotes to escape them.
			if l.peekAt(1) == quote {
				b.WriteByte(quote)
				l.advance(2)
				continue
			}
			l.advance(1)
			return b.String(), nil
		}
		b.WriteByte(c)
		l.advance(1)
	}
	return "", l.errf("unterminated string literal")
}

// next lexes one token. In expression context (exprCtx true) a '<' followed
// by a name-start character begins a tag; otherwise '<' is the less-than
// operator.
func (l *lexer) next(exprCtx bool) (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	tk := token{line: l.line, col: l.col}
	if l.pos >= len(l.src) {
		tk.kind = tokEOF
		return tk, nil
	}
	c := l.src[l.pos]
	switch {
	case c == '$':
		l.advance(1)
		if !isIdentStart(l.peekByte()) {
			return tk, l.errf("expected variable name after '$'")
		}
		tk.kind = tokVar
		tk.text = l.readIdent()
		return tk, nil
	case c == '"' || c == '\'':
		s, err := l.readString()
		if err != nil {
			return tk, err
		}
		tk.kind = tokString
		tk.text = s
		return tk, nil
	case isIdentStart(c):
		tk.kind = tokIdent
		tk.text = l.readIdent()
		return tk, nil
	case c >= '0' && c <= '9':
		// Numeric literals are treated as strings; the evaluator compares
		// numerically when both operands parse as numbers.
		start := l.pos
		for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
			l.advance(1)
		}
		tk.kind = tokString
		tk.text = l.src[start:l.pos]
		return tk, nil
	}
	switch c {
	case '{':
		l.advance(1)
		tk.kind = tokLBrace
	case '}':
		l.advance(1)
		tk.kind = tokRBrace
	case '(':
		l.advance(1)
		tk.kind = tokLParen
	case ')':
		l.advance(1)
		tk.kind = tokRParen
	case ',':
		l.advance(1)
		tk.kind = tokComma
	case '[':
		l.advance(1)
		tk.kind = tokLBracket
	case ']':
		l.advance(1)
		tk.kind = tokRBracket
	case '*':
		l.advance(1)
		tk.kind = tokStar
	case '@':
		l.advance(1)
		tk.kind = tokAt
	case '/':
		if l.peekAt(1) == '/' {
			l.advance(2)
			tk.kind = tokSlashSlash
		} else if l.peekAt(1) == '>' {
			l.advance(2)
			tk.kind = tokTagSelfEnd
		} else {
			l.advance(1)
			tk.kind = tokSlash
		}
	case ':':
		if l.peekAt(1) != ':' {
			return tk, l.errf("expected '::' axis separator")
		}
		l.advance(2)
		tk.kind = tokColonColon
	case '=':
		l.advance(1)
		tk.kind = tokEq
	case '!':
		if l.peekAt(1) != '=' {
			return tk, l.errf("expected '=' after '!'")
		}
		l.advance(2)
		tk.kind = tokNe
	case '>':
		if l.peekAt(1) == '=' {
			l.advance(2)
			tk.kind = tokGe
		} else {
			l.advance(1)
			tk.kind = tokGt
		}
	case '<':
		if exprCtx && l.peekAt(1) == '/' {
			l.advance(2)
			if !isIdentStart(l.peekByte()) {
				return tk, l.errf("expected tag name after '</'")
			}
			name := l.readIdent()
			if err := l.skipSpaceAndComments(); err != nil {
				return tk, err
			}
			if l.peekByte() != '>' {
				return tk, l.errf("expected '>' to close end tag </%s", name)
			}
			l.advance(1)
			tk.kind = tokTagClose
			tk.text = name
			return tk, nil
		}
		if exprCtx && isIdentStart(l.peekAt(1)) {
			l.advance(1)
			tk.kind = tokTagOpen
			tk.text = l.readIdent()
			return tk, nil
		}
		if l.peekAt(1) == '=' {
			l.advance(2)
			tk.kind = tokLe
		} else {
			l.advance(1)
			tk.kind = tokLt
		}
	default:
		return tk, l.errf("unexpected character %q", c)
	}
	return tk, nil
}

// rawText reads element content text up to the next '<' or '{'. The parser
// calls this directly when inside a constructor.
func (l *lexer) rawText() string {
	start := l.pos
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '<' || c == '{' || c == '}' {
			break
		}
		l.advance(1)
	}
	return l.src[start:l.pos]
}
