package dtd

import "testing"

// Truth tables for the schema-scheduling facts: ContentComplete (a child
// tag whose close finishes the parent's content in every word of the
// model) and EmptyElement.

func TestContentComplete(t *testing.T) {
	s := parse(t, `
<!ELEMENT seq (a, b, c)>
<!ELEMENT opt (a, b?)>
<!ELEMENT tail (a*, z)>
<!ELEMENT star (a, b*)>
<!ELEMENT alt (a, (x | y))>
<!ELEMENT both ((a, z) | (b, z))>
<!ELEMENT reuse (a, b, a)>
<!ELEMENT mixed (#PCDATA | a | b)*>
<!ELEMENT anything ANY>
<!ELEMENT nothing EMPTY>
`)
	cases := []struct {
		elem, seen string
		want       bool
	}{
		// Strict sequence: only the last child completes it.
		{"seq", "c", true},
		{"seq", "a", false},
		{"seq", "b", false},
		// Optional tail: b completes, a does not (b may still come).
		{"opt", "b", true},
		{"opt", "a", false},
		// Mandatory closer after a star: z completes, a never does.
		{"tail", "z", true},
		{"tail", "a", false},
		// Trailing star: nothing is ever final (more b's may come).
		{"star", "a", false},
		{"star", "b", false},
		// Choice in final position: both branches complete.
		{"alt", "x", true},
		{"alt", "y", true},
		{"alt", "a", false},
		// Same closer in both branches of a choice.
		{"both", "z", true},
		{"both", "a", false},
		{"both", "b", false},
		// A tag that re-occurs is complete only if EVERY occurrence is
		// final — here the first a has successors, so a never completes.
		{"reuse", "a", false},
		{"reuse", "b", false},
		// Mixed content repeats globally: nothing completes.
		{"mixed", "a", false},
		{"mixed", "b", false},
		// ANY and undeclared elements derive no facts.
		{"anything", "a", false},
		{"undeclared", "a", false},
		// An unknown child tag is never a completion witness.
		{"seq", "ghost", false},
	}
	for _, c := range cases {
		if got := s.ContentComplete(c.elem, c.seen); got != c.want {
			t.Errorf("ContentComplete(%s, %s) = %v, want %v", c.elem, c.seen, got, c.want)
		}
	}
}

func TestEmptyElement(t *testing.T) {
	s := parse(t, `
<!ELEMENT nothing EMPTY>
<!ELEMENT pcdata (#PCDATA)>
<!ELEMENT anything ANY>
<!ELEMENT seq (a)>
`)
	cases := []struct {
		elem string
		want bool
	}{
		{"nothing", true},
		// (#PCDATA) admits text: not EMPTY.
		{"pcdata", false},
		{"anything", false},
		{"seq", false},
		{"undeclared", false},
	}
	for _, c := range cases {
		if got := s.EmptyElement(c.elem); got != c.want {
			t.Errorf("EmptyElement(%s) = %v, want %v", c.elem, got, c.want)
		}
	}
	// EMPTY derives no child facts at all.
	if s.ContentComplete("nothing", "a") {
		t.Error("EMPTY element must not report any complete child")
	}
}
