package dtd

// Glushkov (position automaton) analysis of content models.
//
// Every occurrence of an element name in a content model is a *position*.
// The standard nullable/first/last/follow construction yields, for each
// position p, the set follow(p) of positions that can come directly after
// p in some word of the model. The transitive closure of follow gives
// "can eventually come after"; projecting positions back to tags answers
// the question the blocking cursors ask: after a child with tag d has been
// seen, can a child with tag c still arrive?

type position int

// glushkov accumulates the construction state.
type glushkov struct {
	tags   []string // tag per position
	follow []map[position]bool
}

type nfl struct {
	nullable bool
	first    []position
	last     []position
}

func (g *glushkov) newPos(tag string) position {
	g.tags = append(g.tags, tag)
	g.follow = append(g.follow, map[position]bool{})
	return position(len(g.tags) - 1)
}

func (g *glushkov) connect(from []position, to []position) {
	for _, f := range from {
		for _, t := range to {
			g.follow[f][t] = true
		}
	}
}

// build computes nullable/first/last and fills the follow relation.
func (g *glushkov) build(m model) nfl {
	switch m := m.(type) {
	case mName:
		p := g.newPos(m.tag)
		return nfl{nullable: false, first: []position{p}, last: []position{p}}
	case mEmpty, mPCData, mAny, nil:
		return nfl{nullable: true}
	case mSeq:
		out := nfl{nullable: true}
		var lasts []position
		for _, item := range m.items {
			r := g.build(item)
			g.connect(lasts, r.first)
			if out.nullable {
				out.first = append(out.first, r.first...)
			}
			if r.nullable {
				lasts = append(lasts, r.last...)
			} else {
				lasts = r.last
			}
			out.nullable = out.nullable && r.nullable
		}
		out.last = lasts
		return out
	case mChoice:
		out := nfl{}
		for _, item := range m.items {
			r := g.build(item)
			out.nullable = out.nullable || r.nullable
			out.first = append(out.first, r.first...)
			out.last = append(out.last, r.last...)
		}
		return out
	case mRep:
		r := g.build(m.item)
		if m.repeat {
			g.connect(r.last, r.first)
		}
		return nfl{nullable: r.nullable || m.min0, first: r.first, last: r.last}
	default:
		return nfl{nullable: true}
	}
}

// analyze derives the per-element facts from a content model.
func analyze(name string, m model) *elementInfo {
	info := &elementInfo{
		name:        name,
		tags:        map[string]bool{},
		noMoreAfter: map[string][]string{},
		mandatory:   map[string]bool{},
		complete:    map[string]bool{},
	}
	if _, isAny := m.(mAny); isAny {
		info.any = true
		return info
	}
	if _, isEmpty := m.(mEmpty); isEmpty {
		info.empty = true
		return info
	}

	g := &glushkov{}
	r := g.build(m)
	for _, tag := range g.tags {
		info.tags[tag] = true
	}
	n := len(g.tags)
	if n == 0 {
		return info
	}

	// Mandatory children: tag t occurs in EVERY word of the model iff the
	// t-free sublanguage is empty — no accepting path of the position
	// automaton avoids all positions labeled t. Checked per tag with a
	// BFS from the (non-t) first positions over follow edges restricted to
	// non-t positions; reaching a non-t last position exhibits a t-free
	// word. A nullable model accepts ε, so nothing is mandatory.
	if !r.nullable {
		lastSet := make([]bool, n)
		for _, p := range r.last {
			lastSet[p] = true
		}
		seen := make([]bool, n)
		queue := make([]position, 0, n)
		for t := range info.tags {
			for i := range seen {
				seen[i] = false
			}
			queue = queue[:0]
			avoidable := false
			for _, p := range r.first {
				if g.tags[p] == t || seen[p] {
					continue
				}
				if lastSet[p] {
					avoidable = true
					break
				}
				seen[p] = true
				queue = append(queue, p)
			}
			for !avoidable && len(queue) > 0 {
				p := queue[0]
				queue = queue[1:]
				for q := range g.follow[p] {
					if g.tags[q] == t || seen[q] {
						continue
					}
					if lastSet[q] {
						avoidable = true
						break
					}
					seen[q] = true
					queue = append(queue, q)
				}
			}
			if !avoidable {
				info.mandatory[t] = true
			}
		}
	}

	// Transitive closure of follow ("can come strictly after").
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = make([]bool, n)
		for t := range g.follow[i] {
			reach[i][int(t)] = true
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !reach[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if reach[k][j] {
					reach[i][j] = true
				}
			}
		}
	}

	// canAfter[d][c]: some position of tag c is reachable after some
	// position of tag d.
	canAfter := map[string]map[string]bool{}
	for d := 0; d < n; d++ {
		dt := g.tags[d]
		set := canAfter[dt]
		if set == nil {
			set = map[string]bool{}
			canAfter[dt] = set
		}
		for c := 0; c < n; c++ {
			if reach[d][c] {
				set[g.tags[c]] = true
			}
		}
	}

	for d := range info.tags {
		var dead []string
		for c := range info.tags {
			if !canAfter[d][c] {
				dead = append(dead, c)
			}
		}
		if len(dead) > 0 {
			sortStrings(dead)
			info.noMoreAfter[d] = dead
		}
	}

	// Content-complete children: tag c finishes the model when NO position
	// labeled c has any reachable successor — every occurrence of c is
	// final in every word, so once a c child closes, the parent's content
	// is done. Mixed content self-excludes: its global repetition gives
	// every position a successor.
	for c := range info.tags {
		done := true
		for p := 0; p < n && done; p++ {
			if g.tags[p] != c {
				continue
			}
			for q := 0; q < n; q++ {
				if reach[p][q] {
					done = false
					break
				}
			}
		}
		if done {
			info.complete[c] = true
		}
	}
	return info
}

// sortStrings is a small insertion sort (avoids importing sort for tiny
// slices and keeps fact order deterministic).
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}
