package dtd

import (
	"strings"
	"testing"
)

const xmarkSiteDTD = `
<!-- XMark top level -->
<!ELEMENT site (regions, categories, catgraph, people, open_auctions, closed_auctions)>
<!ELEMENT regions (africa, asia, australia, europe, namerica, samerica)>
<!ELEMENT people (person*)>
<!ATTLIST person id ID #REQUIRED>
<!ELEMENT person (name, emailaddress, phone?, address?, homepage?, creditcard?, profile, watches?)>
<!ELEMENT description (text | parlist)>
<!ELEMENT text (#PCDATA)>
<!ELEMENT mixed (#PCDATA | em | strong)*>
<!ELEMENT anything ANY>
<!ELEMENT nothing EMPTY>
<!ELEMENT choiceplus ((a | b)+, c?)>
`

func parse(t *testing.T, src string) *Schema {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return s
}

func noMoreContains(s *Schema, elem, seen, dead string) bool {
	for _, d := range s.NoMoreAfter(elem, seen) {
		if d == dead {
			return true
		}
	}
	return false
}

func TestSequenceFacts(t *testing.T) {
	s := parse(t, xmarkSiteDTD)
	// After open_auctions, no more people / regions / categories.
	for _, dead := range []string{"people", "regions", "categories", "catgraph", "open_auctions"} {
		if !noMoreContains(s, "site", "open_auctions", dead) {
			t.Fatalf("after open_auctions, %s must be dead: %v", dead, s.NoMoreAfter("site", "open_auctions"))
		}
	}
	// closed_auctions can still come.
	if noMoreContains(s, "site", "open_auctions", "closed_auctions") {
		t.Fatal("closed_auctions must still be possible after open_auctions")
	}
	// After regions, everything later is still possible.
	if noMoreContains(s, "site", "regions", "people") {
		t.Fatal("people must still be possible after regions")
	}
	// A strict sequence admits no repetition: regions is dead after itself.
	if !noMoreContains(s, "site", "regions", "regions") {
		t.Fatal("a second regions must be impossible")
	}
}

func TestStarAllowsRepetition(t *testing.T) {
	s := parse(t, xmarkSiteDTD)
	// person* repeats: person is never dead after person.
	if noMoreContains(s, "people", "person", "person") {
		t.Fatal("person* must allow more persons")
	}
}

func TestOptionalSequence(t *testing.T) {
	s := parse(t, xmarkSiteDTD)
	// In person: after profile, phone/address/... are dead, watches not.
	for _, dead := range []string{"name", "emailaddress", "phone", "address", "homepage", "creditcard"} {
		if !noMoreContains(s, "person", "profile", dead) {
			t.Fatalf("after profile, %s must be dead", dead)
		}
	}
	if noMoreContains(s, "person", "profile", "watches") {
		t.Fatal("watches must still be possible after profile")
	}
	// After phone, address can still come (phone? address?).
	if noMoreContains(s, "person", "phone", "address") {
		t.Fatal("address must still be possible after phone")
	}
	// ...but not the other way around.
	if !noMoreContains(s, "person", "address", "phone") {
		t.Fatal("phone must be dead after address")
	}
}

func TestChoice(t *testing.T) {
	s := parse(t, xmarkSiteDTD)
	// description (text | parlist): after text, parlist is dead.
	if !noMoreContains(s, "description", "text", "parlist") {
		t.Fatal("parlist must be dead after text (exclusive choice)")
	}
	if !noMoreContains(s, "description", "text", "text") {
		t.Fatal("a second text must be dead (no repetition)")
	}
}

func TestChoicePlus(t *testing.T) {
	s := parse(t, xmarkSiteDTD)
	// ((a|b)+, c?): a and b repeat and interleave; c ends everything.
	if noMoreContains(s, "choiceplus", "a", "b") || noMoreContains(s, "choiceplus", "b", "a") {
		t.Fatal("(a|b)+ must allow interleaving")
	}
	if noMoreContains(s, "choiceplus", "a", "c") {
		t.Fatal("c must be possible after a")
	}
	for _, dead := range []string{"a", "b", "c"} {
		if !noMoreContains(s, "choiceplus", "c", dead) {
			t.Fatalf("%s must be dead after c", dead)
		}
	}
}

func TestMixedContent(t *testing.T) {
	s := parse(t, xmarkSiteDTD)
	// (#PCDATA | em | strong)*: nothing is ever dead.
	if len(s.NoMoreAfter("mixed", "em")) != 0 {
		t.Fatalf("mixed content must derive no facts: %v", s.NoMoreAfter("mixed", "em"))
	}
	can, known := s.CanContain("mixed", "em")
	if !can || !known {
		t.Fatal("mixed content must report em as possible")
	}
	can, known = s.CanContain("mixed", "div")
	if can || !known {
		t.Fatal("mixed content must exclude undeclared children")
	}
}

func TestAnyAndUndeclared(t *testing.T) {
	s := parse(t, xmarkSiteDTD)
	if _, known := s.CanContain("anything", "whatever"); known {
		t.Fatal("ANY content must yield no facts")
	}
	if _, known := s.CanContain("ghost", "x"); known {
		t.Fatal("undeclared elements must yield no facts")
	}
	if s.NoMoreAfter("anything", "x") != nil || s.NoMoreAfter("ghost", "x") != nil {
		t.Fatal("no ordering facts for ANY/undeclared")
	}
}

func TestCanContain(t *testing.T) {
	s := parse(t, xmarkSiteDTD)
	can, known := s.CanContain("site", "people")
	if !can || !known {
		t.Fatal("site must contain people")
	}
	can, known = s.CanContain("site", "person")
	if can || !known {
		t.Fatal("site must not directly contain person")
	}
	// EMPTY elements contain nothing.
	can, known = s.CanContain("nothing", "x")
	if can || !known {
		t.Fatal("EMPTY must contain nothing")
	}
}

func TestMustContain(t *testing.T) {
	s := parse(t, xmarkSiteDTD+`
<!ELEMENT afterchoice (x, (y | z))>
<!ELEMENT everybranch (x | (y, x))>
`)
	cases := []struct {
		elem, child string
		want        bool
	}{
		// A strict sequence of required children: every one is mandatory.
		{"site", "regions", true},
		{"site", "people", true},
		{"site", "closed_auctions", true},
		// Required vs optional members of the person sequence.
		{"person", "name", true},
		{"person", "profile", true},
		{"person", "phone", false},
		{"person", "watches", false},
		// person* is nullable: an empty people is valid.
		{"people", "person", false},
		// Exclusive choice: either branch can be avoided.
		{"description", "text", false},
		{"description", "parlist", false},
		// (a|b)+ guarantees a child but no PARTICULAR tag.
		{"choiceplus", "a", false},
		{"choiceplus", "b", false},
		{"choiceplus", "c", false},
		// Mixed content is nullable.
		{"mixed", "em", false},
		// ANY, EMPTY, and undeclared elements yield no guarantee.
		{"anything", "whatever", false},
		{"nothing", "x", false},
		{"ghost", "x", false},
		// Not a declared child at all.
		{"site", "person", false},
		// A required child ahead of a choice stays mandatory; the choice
		// branches do not.
		{"afterchoice", "x", true},
		{"afterchoice", "y", false},
		{"afterchoice", "z", false},
		// Mandatory through EVERY branch of a choice counts.
		{"everybranch", "x", true},
		{"everybranch", "y", false},
	}
	for _, tc := range cases {
		if got := s.MustContain(tc.elem, tc.child); got != tc.want {
			t.Errorf("MustContain(%s, %s) = %v, want %v", tc.elem, tc.child, got, tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"garbage", `<!ELEMENT a (b,>`},
		{"missing paren", `<!ELEMENT a (b, c>`},
		{"mixed without star", `<!ELEMENT a (#PCDATA | b)>`},
		{"double declaration", `<!ELEMENT a (b)> <!ELEMENT a (c)>`},
		{"not element", `<!WRONG a (b)>`},
		{"mixed seps", `<!ELEMENT a (b, c | d)>`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.src); err == nil {
				t.Fatalf("Parse(%q) succeeded, want error", tc.src)
			}
		})
	}
}

func TestSkipsNonElementDeclarations(t *testing.T) {
	s := parse(t, `
<!-- a comment -->
<!ENTITY % x "y">
<!ATTLIST item id ID #REQUIRED>
<!ELEMENT item (name)>
<?pi data?>
<!ELEMENT name (#PCDATA)>
`)
	if s.Len() != 2 {
		t.Fatalf("declared %d elements, want 2", s.Len())
	}
}

func TestNestedGroups(t *testing.T) {
	s := parse(t, `<!ELEMENT r ((a, b)*, (c | (d, e))?)>`)
	// (a,b)*: after b, a can come again.
	if noMoreContains(s, "r", "b", "a") {
		t.Fatal("a must repeat via the star")
	}
	// After c, d and e are dead (choice).
	if !noMoreContains(s, "r", "c", "d") || !noMoreContains(s, "r", "c", "e") {
		t.Fatal("d/e dead after c")
	}
	// After d, e can come (inner sequence), c cannot.
	if noMoreContains(s, "r", "d", "e") {
		t.Fatal("e must be possible after d")
	}
	if !noMoreContains(s, "r", "d", "c") {
		t.Fatal("c must be dead after d")
	}
	// After a, everything except nothing is still possible.
	if noMoreContains(s, "r", "a", "c") {
		t.Fatal("c must be possible after a")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse must panic on bad input")
		}
	}()
	MustParse(`<!ELEMENT broken (`)
}

func TestFactsDeterministic(t *testing.T) {
	a := parse(t, xmarkSiteDTD).NoMoreAfter("site", "open_auctions")
	b := parse(t, xmarkSiteDTD).NoMoreAfter("site", "open_auctions")
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatal("fact order must be deterministic")
	}
}
