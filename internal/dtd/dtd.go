// Package dtd parses Document Type Definitions and derives the
// child-ordering facts that enable schema-aware early region termination.
//
// The paper's main competitor, the FluXQuery engine [11], exploits DTD
// knowledge to schedule evaluation ("schema-based scheduling"); the paper
// notes GCX needs no schema but "for a large class of queries, we can even
// outperform query engines which exploit schema information". This package
// makes the comparison concrete in the other direction: when a DTD is
// supplied, GCX's blocking cursors can terminate a region as soon as the
// content model proves that no further match can arrive — e.g. for XMark's
//
//	<!ELEMENT site (regions, categories, catgraph, people,
//	                open_auctions, closed_auctions)>
//
// a loop over /site/people can stop when <open_auctions> opens instead of
// scanning to the end of the document.
//
// Facts are derived with the classic Glushkov (position automaton)
// construction over content models: for each declared element and each
// child tag d, NoMoreAfter(elem, d) lists the child tags that cannot occur
// after an occurrence of d in any word of the model. Undeclared elements,
// ANY content, and unknown child tags yield no facts (the engine then
// behaves exactly as without a schema — the facts are purely an
// optimization and never affect results).
package dtd

import (
	"fmt"
	"strings"
)

// Schema holds the parsed element declarations and derived facts.
type Schema struct {
	elements map[string]*elementInfo
}

type elementInfo struct {
	name string
	// any is true for ANY content (no facts derivable).
	any bool
	// empty is true for EMPTY content (the element can have no content at
	// all; its region is complete the moment it opens).
	empty bool
	// tags lists the child element tags that can occur.
	tags map[string]bool
	// noMoreAfter maps a seen child tag to the child tags that can no
	// longer occur afterwards.
	noMoreAfter map[string][]string
	// mandatory holds the child tags that occur in EVERY word of the
	// content model — an existence check for such a child is true the
	// moment the parent's start tag is read.
	mandatory map[string]bool
	// complete holds the child tags whose occurrence finishes the content
	// model: after such a child, no further child can arrive, so the
	// parent's region is complete before its end tag (schema-based
	// scheduling, Koch/Scherzinger cs/0406016).
	complete map[string]bool
}

// Parse reads a DTD (internal subset syntax: a sequence of <!ELEMENT ...>
// declarations; <!ATTLIST ...>, <!ENTITY ...>, comments, and processing
// instructions are skipped).
func Parse(src string) (*Schema, error) {
	p := &parser{src: src}
	s := &Schema{elements: map[string]*elementInfo{}}
	for {
		p.skipMisc()
		if p.eof() {
			return s, nil
		}
		if !p.consume("<!ELEMENT") {
			return nil, p.errf("expected <!ELEMENT declaration")
		}
		p.skipSpace()
		name := p.name()
		if name == "" {
			return nil, p.errf("expected element name")
		}
		p.skipSpace()
		m, err := p.contentSpec()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if !p.consume(">") {
			return nil, p.errf("expected '>' closing <!ELEMENT %s", name)
		}
		if _, dup := s.elements[name]; dup {
			return nil, fmt.Errorf("dtd: element %s declared twice", name)
		}
		s.elements[name] = analyze(name, m)
	}
}

// MustParse is Parse panicking on error, for compiled-in schemas.
func MustParse(src string) *Schema {
	s, err := Parse(src)
	if err != nil {
		panic("dtd: " + err.Error())
	}
	return s
}

// Declared reports whether the element is declared.
func (s *Schema) Declared(elem string) bool {
	_, ok := s.elements[elem]
	return ok
}

// CanContain reports whether child can occur as a direct child of elem.
// known is false when the schema has nothing to say (undeclared element or
// ANY content); callers must then assume true.
func (s *Schema) CanContain(elem, child string) (can, known bool) {
	info := s.elements[elem]
	if info == nil || info.any {
		return true, false
	}
	return info.tags[child], true
}

// MustContain reports whether every valid document places at least one
// child with the given tag under every elem element. False for
// undeclared elements and ANY content (no guarantee derivable) — the
// fact is purely an optimization license, so "don't know" and "no" need
// no distinction.
func (s *Schema) MustContain(elem, child string) bool {
	info := s.elements[elem]
	if info == nil || info.any {
		return false
	}
	return info.mandatory[child]
}

// NoMoreAfter returns the child tags of elem that cannot occur after a
// child with tag seen has occurred. The slice is shared; callers must not
// modify it.
func (s *Schema) NoMoreAfter(elem, seen string) []string {
	info := s.elements[elem]
	if info == nil {
		return nil
	}
	return info.noMoreAfter[seen]
}

// ContentComplete reports whether elem's content is provably complete
// once a child with tag seen has closed: in every word of the content
// model, an occurrence of seen is final, so no further child can arrive
// before elem's end tag. False for undeclared elements, ANY, and mixed
// content (whose global repetition means nothing is ever final) — like
// the other facts it is purely an optimization license.
func (s *Schema) ContentComplete(elem, seen string) bool {
	info := s.elements[elem]
	if info == nil || info.any {
		return false
	}
	return info.complete[seen]
}

// EmptyElement reports whether elem is declared EMPTY: it can have no
// content at all (not even whitespace), so its region is complete the
// moment its start tag is read.
func (s *Schema) EmptyElement(elem string) bool {
	info := s.elements[elem]
	return info != nil && info.empty
}

// Len returns the number of declared elements.
func (s *Schema) Len() int { return len(s.elements) }

// --- content model AST ---

type model interface{ isModel() }

type mName struct{ tag string }
type mSeq struct{ items []model }
type mChoice struct{ items []model }

// mRep wraps a model with a repetition modifier: optional (?), star (*),
// or plus (+).
type mRep struct {
	item   model
	min0   bool // may be absent
	repeat bool // may repeat
}
type mPCData struct{}
type mEmpty struct{}
type mAny struct{}

func (mName) isModel()   {}
func (mSeq) isModel()    {}
func (mChoice) isModel() {}
func (mRep) isModel()    {}
func (mPCData) isModel() {}
func (mEmpty) isModel()  {}
func (mAny) isModel()    {}

// --- DTD parser ---

type parser struct {
	src string
	pos int
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("dtd: offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) skipSpace() {
	for !p.eof() {
		c := p.src[p.pos]
		if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			return
		}
		p.pos++
	}
}

// skipMisc skips whitespace, comments, PIs, and non-ELEMENT declarations.
func (p *parser) skipMisc() {
	for {
		p.skipSpace()
		switch {
		case strings.HasPrefix(p.src[p.pos:], "<!--"):
			if i := strings.Index(p.src[p.pos:], "-->"); i >= 0 {
				p.pos += i + 3
				continue
			}
			p.pos = len(p.src)
		case strings.HasPrefix(p.src[p.pos:], "<?"):
			if i := strings.Index(p.src[p.pos:], "?>"); i >= 0 {
				p.pos += i + 2
				continue
			}
			p.pos = len(p.src)
		case strings.HasPrefix(p.src[p.pos:], "<!ATTLIST"),
			strings.HasPrefix(p.src[p.pos:], "<!ENTITY"),
			strings.HasPrefix(p.src[p.pos:], "<!NOTATION"):
			if i := strings.IndexByte(p.src[p.pos:], '>'); i >= 0 {
				p.pos += i + 1
				continue
			}
			p.pos = len(p.src)
		default:
			return
		}
	}
}

func (p *parser) consume(lit string) bool {
	if strings.HasPrefix(p.src[p.pos:], lit) {
		p.pos += len(lit)
		return true
	}
	return false
}

func isNameByte(c byte) bool {
	return c == '_' || c == '-' || c == '.' || c == ':' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func (p *parser) name() string {
	start := p.pos
	for !p.eof() && isNameByte(p.src[p.pos]) {
		p.pos++
	}
	return p.src[start:p.pos]
}

// contentSpec parses EMPTY | ANY | mixed | children.
func (p *parser) contentSpec() (model, error) {
	switch {
	case p.consume("EMPTY"):
		return mEmpty{}, nil
	case p.consume("ANY"):
		return mAny{}, nil
	}
	if !p.consume("(") {
		return nil, p.errf("expected '(' in content model")
	}
	p.skipSpace()
	if p.consume("#PCDATA") {
		// Mixed content: (#PCDATA) or (#PCDATA | a | b)*.
		var items []model
		for {
			p.skipSpace()
			if p.consume(")") {
				if p.consume("*") || len(items) == 0 {
					if len(items) == 0 {
						return mPCData{}, nil
					}
					// (#PCDATA|a|b)*: tags may occur in any order, any
					// number of times.
					return mRep{item: mChoice{items: items}, min0: true, repeat: true}, nil
				}
				return nil, p.errf("mixed content with elements requires ')*'")
			}
			if !p.consume("|") {
				return nil, p.errf("expected '|' or ')' in mixed content")
			}
			p.skipSpace()
			n := p.name()
			if n == "" {
				return nil, p.errf("expected name in mixed content")
			}
			items = append(items, mName{tag: n})
		}
	}
	// children content: back up the '(' and parse a choice/seq expression.
	p.pos--
	return p.cp()
}

// cp parses one content particle: (expr)[?*+] | name[?*+].
func (p *parser) cp() (model, error) {
	p.skipSpace()
	var m model
	if p.consume("(") {
		inner, err := p.group()
		if err != nil {
			return nil, err
		}
		m = inner
	} else {
		n := p.name()
		if n == "" {
			return nil, p.errf("expected name or '(' in content model")
		}
		m = mName{tag: n}
	}
	switch {
	case p.consume("?"):
		m = mRep{item: m, min0: true}
	case p.consume("*"):
		m = mRep{item: m, min0: true, repeat: true}
	case p.consume("+"):
		m = mRep{item: m, repeat: true}
	}
	return m, nil
}

// group parses the inside of '(...)': a sequence or a choice.
func (p *parser) group() (model, error) {
	first, err := p.cp()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	switch {
	case p.consume(")"):
		return first, nil
	case p.consume(","):
		items := []model{first}
		for {
			m, err := p.cp()
			if err != nil {
				return nil, err
			}
			items = append(items, m)
			p.skipSpace()
			if p.consume(")") {
				return mSeq{items: items}, nil
			}
			if !p.consume(",") {
				return nil, p.errf("expected ',' or ')' in sequence")
			}
		}
	case p.consume("|"):
		items := []model{first}
		for {
			m, err := p.cp()
			if err != nil {
				return nil, err
			}
			items = append(items, m)
			p.skipSpace()
			if p.consume(")") {
				return mChoice{items: items}, nil
			}
			if !p.consume("|") {
				return nil, p.errf("expected '|' or ')' in choice")
			}
		}
	default:
		return nil, p.errf("expected ',', '|' or ')' in content model")
	}
}
