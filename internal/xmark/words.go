package xmark

// Word banks for synthetic text. The original XMark generator fills text
// content with Shakespearean prose; any fixed word distribution preserves
// the properties our queries depend on (element structure, value joins,
// realistic text-to-markup ratio), so a compact bank suffices.

var words = []string{
	"angel", "anger", "ant", "apple", "arrow", "autumn", "banner", "basket",
	"battle", "beacon", "bishop", "blade", "blossom", "border", "bottle",
	"branch", "bridge", "candle", "canyon", "carpet", "castle", "cattle",
	"cellar", "censor", "charge", "chorus", "cipher", "circle", "cloud",
	"clover", "coffer", "copper", "corner", "cradle", "crystal", "current",
	"dagger", "damsel", "dealer", "decree", "desert", "donkey", "dragon",
	"duchess", "eagle", "editor", "embers", "empire", "falcon", "feather",
	"fiddle", "finger", "flagon", "forest", "fountain", "galley", "garden",
	"gospel", "granite", "hammer", "harbor", "herald", "hunter", "island",
	"ivory", "jester", "jewel", "kettle", "kingdom", "ladder", "lantern",
	"legend", "lumber", "marble", "market", "meadow", "mirror", "monarch",
	"needle", "orchard", "palace", "parson", "pebble", "pillar", "pirate",
	"planet", "portal", "powder", "prince", "quarry", "raven", "ribbon",
	"saddle", "scholar", "shadow", "silver", "spider", "temple", "thunder",
	"timber", "valley", "willow", "winter",
}

var firstNames = []string{
	"Ada", "Alan", "Barbara", "Blaise", "Claude", "Donald", "Edgar",
	"Edsger", "Frances", "Grace", "Hedy", "John", "Katherine", "Kurt",
	"Leslie", "Margaret", "Niklaus", "Robin", "Sophie", "Tim",
}

var lastNames = []string{
	"Babbage", "Backus", "Church", "Codd", "Dijkstra", "Floyd", "Gray",
	"Hamilton", "Hoare", "Hopper", "Karp", "Knuth", "Lamport", "Liskov",
	"Lovelace", "McCarthy", "Milner", "Shannon", "Turing", "Wirth",
}

var countries = []string{
	"United States", "Germany", "France", "Japan", "Brazil", "Australia",
	"Canada", "Italy", "Spain", "Netherlands", "Austria", "Switzerland",
}

var cities = []string{
	"Springfield", "Riverton", "Lakewood", "Fairview", "Georgetown",
	"Ashland", "Milton", "Clayton", "Dayton", "Franklin", "Salem",
	"Bristol", "Clinton", "Dover", "Hudson", "Kingston",
}

var streets = []string{
	"Maple Street", "Oak Avenue", "Pine Road", "Cedar Lane", "Elm Drive",
	"Walnut Court", "Birch Boulevard", "Chestnut Way",
}

var categoriesWords = []string{
	"antiques", "books", "coins", "computers", "crafts", "electronics",
	"garden", "jewelry", "music", "photography", "pottery", "sports",
	"stamps", "tools", "toys", "travel",
}

var education = []string{
	"High School", "College", "Graduate School", "Other",
}

var auctionTypes = []string{"Regular", "Featured", "Dutch"}
