package xmark

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"gcx/internal/xmlstream"
)

func generate(t *testing.T, cfg Config) string {
	t.Helper()
	var b bytes.Buffer
	n, err := Generate(&b, cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if n != int64(b.Len()) {
		t.Fatalf("byte count %d != buffer %d", n, b.Len())
	}
	return b.String()
}

func TestWellFormed(t *testing.T) {
	doc := generate(t, Config{Factor: 0.002, Seed: 1})
	tok := xmlstream.NewTokenizer(strings.NewReader(doc))
	elements := 0
	for {
		tk, err := tok.Next()
		if err != nil {
			t.Fatalf("tokenize: %v", err)
		}
		if tk.Kind == xmlstream.EOF {
			break
		}
		if tk.Kind == xmlstream.StartElement {
			elements++
		}
	}
	if elements < 100 {
		t.Fatalf("only %d elements generated", elements)
	}
}

func TestDeterministic(t *testing.T) {
	a := generate(t, Config{Factor: 0.002, Seed: 7})
	b := generate(t, Config{Factor: 0.002, Seed: 7})
	if a != b {
		t.Fatal("same (factor, seed) must produce identical documents")
	}
	c := generate(t, Config{Factor: 0.002, Seed: 8})
	if a == c {
		t.Fatal("different seeds must produce different documents")
	}
}

func TestStructure(t *testing.T) {
	doc := generate(t, Config{Factor: 0.002, Seed: 1})
	for _, section := range []string{
		"<site>", "<regions>", "<africa>", "<asia>", "<australia>",
		"<europe>", "<namerica>", "<samerica>", "<categories>",
		"<catgraph>", "<people>", "<open_auctions>", "<closed_auctions>",
	} {
		if !strings.Contains(doc, section) {
			t.Fatalf("document missing section %s", section)
		}
	}
	// Q1's selector must exist.
	if !strings.Contains(doc, `person id="person0"`) {
		t.Fatal("document missing person0")
	}
	// Q8's join partners: buyers reference persons by id.
	if !strings.Contains(doc, `buyer person="person`) {
		t.Fatal("document missing buyer references")
	}
	// Q20's income attribute, including people without income.
	if !strings.Contains(doc, `profile income="`) {
		t.Fatal("document missing incomes")
	}
	if !strings.Contains(doc, `<profile>`) {
		t.Fatal("document missing income-less profiles (Q20's n/a bracket)")
	}
}

func TestCountsScaleLinearly(t *testing.T) {
	c1 := CountsFor(0.01)
	c2 := CountsFor(0.02)
	if c2.Persons < c1.Persons*2-2 || c2.Persons > c1.Persons*2+2 {
		t.Fatalf("persons don't scale: %d vs %d", c1.Persons, c2.Persons)
	}
	small := CountsFor(0.00001)
	if small.Persons < 1 || small.Categories < 1 {
		t.Fatal("counts must stay positive at tiny factors")
	}
}

func TestSizeCalibration(t *testing.T) {
	// The BytesPerFactor constant must be within 2x of reality (reports
	// always state actual sizes; this guards against gross drift).
	var b bytes.Buffer
	n, err := Generate(&b, Config{Factor: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	expect := int64(0.01 * float64(BytesPerFactor))
	if n < expect/2 || n > expect*2 {
		t.Fatalf("factor 0.01 generated %d bytes; calibration constant says %d (off by >2x)", n, expect)
	}
}

func TestFactorForSize(t *testing.T) {
	f := FactorForSize(10 << 20)
	if f < 0.05 || f > 0.2 {
		t.Fatalf("FactorForSize(10MB) = %f", f)
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := Config{Factor: 0.01, Seed: 1}
	var n int64
	for i := 0; i < b.N; i++ {
		m, err := Generate(io.Discard, cfg)
		if err != nil {
			b.Fatal(err)
		}
		n = m
	}
	b.SetBytes(n)
}
