package xmark

// DTD is the document type definition of the documents this generator
// produces — the XMark auction schema restricted to the structure actually
// emitted (attributes are declared for documentation; the engine converts
// them to subelements, which the content models below already account for
// by listing them as leading optional children after conversion is
// applied by the tokenizer; since converted attributes precede all other
// children, the models list them first).
//
// It is used by the schema-aware benchmarks: the paper provided the XMark
// DTD to the FluXQuery engine (Section 7), and this constant plays the
// same role for this repository's schema-aware mode.
const DTD = `
<!ELEMENT site            (regions, categories, catgraph, people, open_auctions, closed_auctions)>
<!ELEMENT regions         (africa, asia, australia, europe, namerica, samerica)>
<!ELEMENT africa          (item*)>
<!ELEMENT asia            (item*)>
<!ELEMENT australia       (item*)>
<!ELEMENT europe          (item*)>
<!ELEMENT namerica        (item*)>
<!ELEMENT samerica        (item*)>
<!ELEMENT item            (id, location, quantity, name, payment, description, shipping, incategory+, mailbox)>
<!ELEMENT id              (#PCDATA)>
<!ELEMENT location        (#PCDATA)>
<!ELEMENT quantity        (#PCDATA)>
<!ELEMENT name            (#PCDATA)>
<!ELEMENT payment         (#PCDATA)>
<!ELEMENT shipping        (#PCDATA)>
<!ELEMENT incategory      (category)>
<!ELEMENT category        (id?, name?, description?)>
<!ELEMENT mailbox         (mail*)>
<!ELEMENT mail            (from, to, date, text)>
<!ELEMENT from            (#PCDATA)>
<!ELEMENT to              (#PCDATA)>
<!ELEMENT date            (#PCDATA)>
<!ELEMENT description     (text | parlist)>
<!ELEMENT text            (#PCDATA)>
<!ELEMENT parlist         (listitem+)>
<!ELEMENT listitem        (text)>
<!ELEMENT categories      (category*)>
<!ELEMENT catgraph        (edge*)>
<!ELEMENT edge            (from?, to?)>
<!ELEMENT people          (person*)>
<!ELEMENT person          (id, name, emailaddress, phone?, address?, homepage?, creditcard?, profile, watches?)>
<!ELEMENT emailaddress    (#PCDATA)>
<!ELEMENT phone           (#PCDATA)>
<!ELEMENT address         (street, city, country, zipcode)>
<!ELEMENT street          (#PCDATA)>
<!ELEMENT city            (#PCDATA)>
<!ELEMENT country         (#PCDATA)>
<!ELEMENT zipcode         (#PCDATA)>
<!ELEMENT homepage        (#PCDATA)>
<!ELEMENT creditcard      (#PCDATA)>
<!ELEMENT profile         (income?, interest*, education?, gender?, business, age?)>
<!ELEMENT income          (#PCDATA)>
<!ELEMENT interest        (category)>
<!ELEMENT education       (#PCDATA)>
<!ELEMENT gender          (#PCDATA)>
<!ELEMENT business        (#PCDATA)>
<!ELEMENT age             (#PCDATA)>
<!ELEMENT watches         (watch*)>
<!ELEMENT watch           (open_auction)>
<!ELEMENT open_auctions   (open_auction*)>
<!ELEMENT open_auction    (id, initial, reserve?, bidder*, current, privacy?, itemref, seller, annotation, quantity, type, interval)>
<!ELEMENT initial         (#PCDATA)>
<!ELEMENT reserve         (#PCDATA)>
<!ELEMENT bidder          (date, time, personref, increase)>
<!ELEMENT time            (#PCDATA)>
<!ELEMENT personref       (person)>
<!ELEMENT increase        (#PCDATA)>
<!ELEMENT current         (#PCDATA)>
<!ELEMENT privacy         (#PCDATA)>
<!ELEMENT itemref         (item)>
<!ELEMENT seller          (person)>
<!ELEMENT annotation      (author, description, happiness)>
<!ELEMENT author          (person)>
<!ELEMENT happiness       (#PCDATA)>
<!ELEMENT type            (#PCDATA)>
<!ELEMENT interval        (start, end)>
<!ELEMENT start           (#PCDATA)>
<!ELEMENT end             (#PCDATA)>
<!ELEMENT closed_auctions (closed_auction*)>
<!ELEMENT closed_auction  (seller, buyer, itemref, price, date, quantity, type, annotation)>
<!ELEMENT buyer           (person)>
<!ELEMENT price           (#PCDATA)>
`
