// Package xmark generates synthetic XMark-style auction documents
// (Section 7 of the paper benchmarks on XMark [21] data).
//
// The original xmlgen tool is not available offline; this generator is a
// documented substitution (see DESIGN.md): it reproduces the XMark element
// structure — site / regions (six continents with items) / categories /
// catgraph / people / open_auctions / closed_auctions — with XMark's
// entity proportions, attribute usage (converted to subelements by the
// engine's tokenizer, as the paper's benchmark adaptation prescribes),
// value-based references between auctions, people, items and categories
// (so join queries such as Q8 behave realistically), and a comparable
// text-to-markup ratio. Documents are deterministic in (Factor, Seed) and
// scale linearly with Factor; Factor 1.0 corresponds to the original
// XMark scale (about 100 MB).
package xmark

import (
	"bufio"
	"io"
	"strconv"
)

// Config parameterizes document generation.
type Config struct {
	// Factor scales all entity counts linearly. XMark's convention:
	// Factor 1.0 ≈ 100 MB. The paper's document sizes 10/50/100/200 MB
	// correspond to factors 0.1/0.5/1.0/2.0.
	Factor float64
	// Seed makes the pseudo-random content deterministic; documents with
	// equal (Factor, Seed) are byte-identical.
	Seed uint64
}

// Counts holds the entity counts derived from a factor, following XMark's
// proportions.
type Counts struct {
	Items      [6]int // per continent: africa, asia, australia, europe, namerica, samerica
	Persons    int
	Open       int
	Closed     int
	Categories int
}

// continents in XMark order with XMark's item distribution at factor 1.
var continents = [6]string{"africa", "asia", "australia", "europe", "namerica", "samerica"}
var itemShare = [6]int{550, 2000, 2200, 6000, 10000, 1000}

// CountsFor derives the entity counts for a factor.
func CountsFor(factor float64) Counts {
	scale := func(n int) int {
		v := int(float64(n) * factor)
		if v < 1 {
			v = 1
		}
		return v
	}
	var c Counts
	for i, n := range itemShare {
		c.Items[i] = scale(n)
	}
	c.Persons = scale(25500)
	c.Open = scale(12000)
	c.Closed = scale(9750)
	c.Categories = scale(1000)
	return c
}

// BytesPerFactor is the approximate document size at factor 1.0, measured
// once and used by FactorForSize (this generator produces ~82 MB per
// factor; the original xmlgen produces ~100-113 MB — same order, slightly
// leaner text). The value is asserted loosely by tests; benchmark reports
// always state the actual generated size.
const BytesPerFactor = 82_000_000

// FactorForSize returns the factor that generates approximately the given
// number of bytes.
func FactorForSize(bytes int64) float64 {
	return float64(bytes) / float64(BytesPerFactor)
}

// Generate writes one document to w and returns the number of bytes
// written.
func Generate(w io.Writer, cfg Config) (int64, error) {
	bw := bufio.NewWriterSize(w, 256<<10)
	g := &gen{w: bw, rng: cfg.Seed*2862933555777941757 + 3037000493, counts: CountsFor(cfg.Factor)}
	if g.rng == 0 {
		g.rng = 88172645463325252
	}
	g.site()
	if g.err == nil {
		g.err = bw.Flush()
	}
	return g.n, g.err
}

type gen struct {
	w       *bufio.Writer
	rng     uint64
	n       int64
	err     error
	counts  Counts
	scratch []byte
}

// next is xorshift64*: fast, deterministic, good enough for content
// synthesis.
func (g *gen) next() uint64 {
	x := g.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	g.rng = x
	return x * 2685821657736338717
}

func (g *gen) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(g.next() % uint64(n))
}

func (g *gen) str(s string) {
	if g.err != nil {
		return
	}
	m, err := g.w.WriteString(s)
	g.n += int64(m)
	if err != nil {
		g.err = err
	}
}

func (g *gen) int(v int) {
	g.scratch = strconv.AppendInt(g.scratch[:0], int64(v), 10)
	if g.err != nil {
		return
	}
	m, err := g.w.Write(g.scratch)
	g.n += int64(m)
	if err != nil {
		g.err = err
	}
}

func (g *gen) open(tag string)  { g.str("<"); g.str(tag); g.str(">") }
func (g *gen) close(tag string) { g.str("</"); g.str(tag); g.str(">\n") }

// elem writes <tag>text</tag>.
func (g *gen) elem(tag, text string) {
	g.open(tag)
	g.str(text)
	g.close(tag)
}

// openID writes an opening tag with an id-style attribute, e.g.
// <item id="item12">. The engine's tokenizer converts the attribute to a
// leading subelement (the paper's adaptation).
func (g *gen) openAttr(tag, attr, value string, num int) {
	g.str("<")
	g.str(tag)
	g.str(" ")
	g.str(attr)
	g.str(`="`)
	g.str(value)
	if num >= 0 {
		g.scratch = strconv.AppendInt(g.scratch[:0], int64(num), 10)
		if g.err == nil {
			m, err := g.w.Write(g.scratch)
			g.n += int64(m)
			if err != nil {
				g.err = err
			}
		}
	}
	g.str(`">`)
}

func (g *gen) text(minWords, maxWords int) {
	n := minWords
	if maxWords > minWords {
		n += g.intn(maxWords - minWords)
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			g.str(" ")
		}
		g.str(words[g.intn(len(words))])
	}
}

func (g *gen) textElem(tag string, minWords, maxWords int) {
	g.open(tag)
	g.text(minWords, maxWords)
	g.close(tag)
}

// date writes an XMark-style date MM/DD/YYYY.
func (g *gen) date() {
	g.int(1 + g.intn(12))
	g.str("/")
	g.int(1 + g.intn(28))
	g.str("/")
	g.int(1998 + g.intn(4))
}

// --- document structure ---

func (g *gen) site() {
	g.str("<site>\n")
	g.regions()
	g.categories()
	g.catgraph()
	g.people()
	g.openAuctions()
	g.closedAuctions()
	g.str("</site>\n")
}

func (g *gen) regions() {
	g.str("<regions>\n")
	itemID := 0
	for i, continent := range continents {
		g.open(continent)
		g.str("\n")
		for j := 0; j < g.counts.Items[i]; j++ {
			g.item(itemID)
			itemID++
		}
		g.close(continent)
	}
	g.str("</regions>\n")
}

func (g *gen) item(id int) {
	g.openAttr("item", "id", "item", id)
	g.elem("location", countries[g.intn(len(countries))])
	g.open("quantity")
	g.int(1 + g.intn(10))
	g.close("quantity")
	g.textElem("name", 2, 4)
	g.open("payment")
	g.str("Creditcard")
	g.close("payment")
	g.description()
	g.open("shipping")
	g.str("Will ship internationally")
	g.close("shipping")
	n := 1 + g.intn(3)
	for i := 0; i < n; i++ {
		g.openAttr("incategory", "category", "category", g.intn(g.counts.Categories))
		g.str("</incategory>\n")
	}
	g.mailbox()
	g.close("item")
}

func (g *gen) description() {
	g.open("description")
	if g.intn(3) == 0 {
		g.open("parlist")
		n := 1 + g.intn(3)
		for i := 0; i < n; i++ {
			g.open("listitem")
			g.textElem("text", 40, 100)
			g.close("listitem")
		}
		g.close("parlist")
	} else {
		g.textElem("text", 55, 140)
	}
	g.close("description")
}

func (g *gen) mailbox() {
	g.open("mailbox")
	n := g.intn(4)
	for i := 0; i < n; i++ {
		g.open("mail")
		g.elem("from", firstNames[g.intn(len(firstNames))]+" "+lastNames[g.intn(len(lastNames))])
		g.elem("to", firstNames[g.intn(len(firstNames))]+" "+lastNames[g.intn(len(lastNames))])
		g.open("date")
		g.date()
		g.close("date")
		g.textElem("text", 25, 90)
		g.close("mail")
	}
	g.close("mailbox")
}

func (g *gen) categories() {
	g.str("<categories>\n")
	for i := 0; i < g.counts.Categories; i++ {
		g.openAttr("category", "id", "category", i)
		g.elem("name", categoriesWords[g.intn(len(categoriesWords))])
		g.description()
		g.close("category")
	}
	g.str("</categories>\n")
}

func (g *gen) catgraph() {
	g.str("<catgraph>\n")
	edges := g.counts.Categories
	for i := 0; i < edges; i++ {
		g.str("<edge from=\"category")
		g.int(g.intn(g.counts.Categories))
		g.str("\" to=\"category")
		g.int(g.intn(g.counts.Categories))
		g.str("\"></edge>\n")
	}
	g.str("</catgraph>\n")
}

func (g *gen) people() {
	g.str("<people>\n")
	for i := 0; i < g.counts.Persons; i++ {
		g.person(i)
	}
	g.str("</people>\n")
}

func (g *gen) person(id int) {
	g.openAttr("person", "id", "person", id)
	first := firstNames[g.intn(len(firstNames))]
	last := lastNames[g.intn(len(lastNames))]
	g.elem("name", first+" "+last)
	g.elem("emailaddress", "mailto:"+last+"@example.com")
	if g.intn(2) == 0 {
		g.open("phone")
		g.str("+")
		g.int(1 + g.intn(99))
		g.str(" (")
		g.int(100 + g.intn(899))
		g.str(") ")
		g.int(10000000 + g.intn(89999999))
		g.close("phone")
	}
	if g.intn(2) == 0 {
		g.open("address")
		g.open("street")
		g.int(1 + g.intn(99))
		g.str(" ")
		g.str(streets[g.intn(len(streets))])
		g.close("street")
		g.elem("city", cities[g.intn(len(cities))])
		g.elem("country", countries[g.intn(len(countries))])
		g.open("zipcode")
		g.int(10000 + g.intn(89999))
		g.close("zipcode")
		g.close("address")
	}
	if g.intn(3) == 0 {
		g.elem("homepage", "http://www.example.com/~"+last)
	}
	if g.intn(4) == 0 {
		g.open("creditcard")
		for k := 0; k < 4; k++ {
			if k > 0 {
				g.str(" ")
			}
			g.int(1000 + g.intn(8999))
		}
		g.close("creditcard")
	}
	g.profile()
	if g.intn(4) == 0 {
		g.open("watches")
		n := 1 + g.intn(3)
		for k := 0; k < n; k++ {
			g.openAttr("watch", "open_auction", "open_auction", g.intn(g.counts.Open))
			g.str("</watch>\n")
		}
		g.close("watches")
	}
	g.close("person")
}

func (g *gen) profile() {
	// XMark: <profile income="..."> with interests, education, gender,
	// business, age. Income is present for ~85% of people (Q20's "no
	// income" bracket needs absentees).
	hasIncome := g.intn(100) < 85
	if hasIncome {
		g.str(`<profile income="`)
		g.int(9000 + g.intn(191000))
		g.str(`">`)
	} else {
		g.open("profile")
	}
	n := g.intn(4)
	for i := 0; i < n; i++ {
		g.openAttr("interest", "category", "category", g.intn(g.counts.Categories))
		g.str("</interest>\n")
	}
	if g.intn(2) == 0 {
		g.elem("education", education[g.intn(len(education))])
	}
	if g.intn(2) == 0 {
		g.elem("gender", []string{"male", "female"}[g.intn(2)])
	}
	g.elem("business", []string{"Yes", "No"}[g.intn(2)])
	if g.intn(2) == 0 {
		g.open("age")
		g.int(18 + g.intn(60))
		g.close("age")
	}
	g.close("profile")
}

func (g *gen) totalItems() int {
	t := 0
	for _, n := range g.counts.Items {
		t += n
	}
	return t
}

func (g *gen) openAuctions() {
	g.str("<open_auctions>\n")
	for i := 0; i < g.counts.Open; i++ {
		g.openAttr("open_auction", "id", "open_auction", i)
		g.open("initial")
		g.money()
		g.close("initial")
		if g.intn(2) == 0 {
			g.open("reserve")
			g.money()
			g.close("reserve")
		}
		bidders := g.intn(5)
		for b := 0; b < bidders; b++ {
			g.open("bidder")
			g.open("date")
			g.date()
			g.close("date")
			g.open("time")
			g.int(g.intn(24))
			g.str(":")
			g.int(10 + g.intn(49))
			g.str(":")
			g.int(10 + g.intn(49))
			g.close("time")
			g.openAttr("personref", "person", "person", g.intn(g.counts.Persons))
			g.str("</personref>\n")
			g.open("increase")
			g.money()
			g.close("increase")
			g.close("bidder")
		}
		g.open("current")
		g.money()
		g.close("current")
		if g.intn(2) == 0 {
			g.elem("privacy", "Yes")
		}
		g.openAttr("itemref", "item", "item", g.intn(g.totalItems()))
		g.str("</itemref>\n")
		g.openAttr("seller", "person", "person", g.intn(g.counts.Persons))
		g.str("</seller>\n")
		g.annotation()
		g.open("quantity")
		g.int(1 + g.intn(10))
		g.close("quantity")
		g.elem("type", auctionTypes[g.intn(len(auctionTypes))])
		g.open("interval")
		g.open("start")
		g.date()
		g.close("start")
		g.open("end")
		g.date()
		g.close("end")
		g.close("interval")
		g.close("open_auction")
	}
	g.str("</open_auctions>\n")
}

func (g *gen) closedAuctions() {
	g.str("<closed_auctions>\n")
	for i := 0; i < g.counts.Closed; i++ {
		g.open("closed_auction")
		g.openAttr("seller", "person", "person", g.intn(g.counts.Persons))
		g.str("</seller>\n")
		g.openAttr("buyer", "person", "person", g.intn(g.counts.Persons))
		g.str("</buyer>\n")
		g.openAttr("itemref", "item", "item", g.intn(g.totalItems()))
		g.str("</itemref>\n")
		g.open("price")
		g.money()
		g.close("price")
		g.open("date")
		g.date()
		g.close("date")
		g.open("quantity")
		g.int(1 + g.intn(10))
		g.close("quantity")
		g.elem("type", auctionTypes[g.intn(len(auctionTypes))])
		g.annotation()
		g.close("closed_auction")
	}
	g.str("</closed_auctions>\n")
}

func (g *gen) annotation() {
	g.open("annotation")
	g.openAttr("author", "person", "person", g.intn(g.counts.Persons))
	g.str("</author>\n")
	g.description()
	g.textElem("happiness", 1, 1)
	g.close("annotation")
}

func (g *gen) money() {
	g.int(1 + g.intn(400))
	g.str(".")
	g.int(10 + g.intn(89))
}
