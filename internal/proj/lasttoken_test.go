package proj_test

import (
	"strings"
	"testing"

	"gcx/internal/buffer"
	"gcx/internal/ifpush"
	"gcx/internal/normalize"
	"gcx/internal/proj"
	"gcx/internal/static"
	"gcx/internal/xmlstream"
	"gcx/internal/xqparser"
)

// newProjector compiles src and wires a projector over doc with the
// engine's production tokenizer options (BorrowText on).
func newProjector(t *testing.T, src, doc string) *proj.Projector {
	t.Helper()
	q, err := xqparser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	n, err := normalize.Normalize(q)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	a, err := static.Analyze(ifpush.Push(n), static.Options{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	syms := xmlstream.NewSymTab()
	agg := make([]bool, len(a.Tree.Roles))
	buf := buffer.New(syms, len(a.Tree.Roles)-1, agg)
	opts := xmlstream.DefaultOptions()
	opts.BorrowText = true
	tok := xmlstream.NewTokenizerOptions(strings.NewReader(doc), opts)
	return proj.New(tok, buf, a.Tree, proj.Options{BorrowedText: true})
}

// LastToken snapshots must own their bytes. Under BorrowText the
// tokenizer reuses one scratch buffer for every entity-bearing text run,
// so a snapshot that aliased the token (the old implementation stored
// the Token itself) would be rewritten by the next run's bytes.
func TestLastTokenOwnsItsBytes(t *testing.T) {
	const src = "<q>{ for $x in //x return $x }</q>"
	// Both text runs carry an entity, forcing each through the shared
	// textBuf scratch; they have equal length so corruption would be a
	// silent byte swap, not a bounds panic.
	p := newProjector(t, src, `<r>a&amp;b<x>C&amp;D</x></r>`)
	p.TrackLastToken(true)

	var afterFirstText xmlstream.Token
	for {
		more, err := p.Step()
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		last := p.LastToken()
		if last.Kind == xmlstream.Text && last.Data == "a&b" {
			afterFirstText = last
		}
		if !more {
			break
		}
	}
	if afterFirstText.Kind != xmlstream.Text {
		t.Fatal("never observed the first text token")
	}
	if afterFirstText.Data != "a&b" {
		t.Fatalf("retained LastToken corrupted by later scratch reuse: %q", afterFirstText.Data)
	}
}

// Without tracking, LastToken stays zero: production runs must not pay
// for snapshots nobody reads.
func TestLastTokenOffByDefault(t *testing.T) {
	p := newProjector(t, "<q>{ for $x in //x return $x }</q>", `<r>hello</r>`)
	for {
		more, err := p.Step()
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		if !more {
			break
		}
	}
	if got := p.LastToken(); got.Kind != 0 || got.Name != "" || got.Data != "" {
		t.Fatalf("LastToken populated without TrackLastToken: %+v", got)
	}
}
