// Package proj implements the GCX stream pre-projector (Sections 2 and 6 of
// the paper): it matches the incoming token stream against the projection
// tree, copies relevant tokens into the buffer, and assigns roles on the
// fly.
//
// Matching is an NFA simulation over the stack of open elements, which is
// the per-instance generalization of the paper's lazily constructed DFA
// (the instance-free lazy DFA itself is implemented in dfa.go and used for
// diagnostics and the Figure 5 tests). Per-instance state is required for
//
//   - first-witness suppression: a [position()=1] projection node buffers
//     only the first match per context *instance*;
//   - multiplicity: a token matched through several derivations receives
//     the corresponding role once per derivation (Figure 4(c));
//   - cancellation: a signOff executed while its target subtree is still
//     open must suppress the role's future assignments (see DESIGN.md).
//
// A document node is preserved if (1) it matches a projection-tree node,
// (2) it lies below a dos::node() capture, or (3) the structural guard of
// Section 2 (case (2)) applies — discarding it could promote a descendant
// into a false child-axis match.
package proj

import (
	"fmt"
	"strings"

	"gcx/internal/buffer"
	"gcx/internal/dtd"
	"gcx/internal/projtree"
	"gcx/internal/xmlstream"
	"gcx/internal/xqast"
)

// Options configures the projector. AggregateRoles must match the static
// analysis configuration that produced the projection tree.
type Options struct {
	AggregateRoles bool
	// Schema, when non-nil, enables schema-aware early region
	// termination: content-model facts ("no further c child can occur
	// after a d child") are recorded on buffered nodes so blocking
	// cursors can stop without scanning to the end of the region.
	// Supplying a schema asserts the input is valid against it.
	Schema *dtd.Schema
	// BorrowedText declares that Text tokens from the tokenizer borrow
	// its scratch buffers (xmlstream.Options.BorrowText): the projector
	// then copies character data before buffering it. Tokens of discarded
	// regions are never copied, which is where streaming projection
	// spends most of its time.
	BorrowedText bool
}

// entry is one live NFA configuration: projection-tree node pn matched at a
// specific open element, reached through mult derivations.
type entry struct {
	pn *projtree.Node
	// owner is the frame at which pn matched (the context instance for
	// [1] predicates on pn's children).
	owner *frame
	// anchor is the frame of the first-straight-ancestor variable instance
	// on this derivation; signOff cancellation is keyed on (role, anchor).
	anchor *frame
	mult   int
}

// capture is an active dos::node() subtree preservation started at its
// owner frame.
type capture struct {
	role   xqast.Role
	anchor *frame
	mult   int
	live   bool
}

// frame is the per-open-element state. Frames, their match entries, and
// their captures are recycled through the projector's frame pool: matches
// and captures are value slices whose backing arrays survive reuse, so
// steady-state projection does not allocate per element.
type frame struct {
	parent *frame
	depth  int
	// node is the buffered node for this element (nil if not preserved).
	node *buffer.Node
	// attach is the nearest buffered ancestor-or-self; children of
	// discarded elements are promoted to it (Definition 1's projection).
	attach *buffer.Node
	// matches are the projection nodes matched at this element. The slice
	// is fully built before any pointer into it is taken (scopes extension
	// below), and never appended to afterwards.
	matches []entry
	// scopes are entries (here or at ancestors) whose projection nodes
	// have descendant-axis children; shared copy-on-append with parent.
	scopes []*entry
	// captures started at this element.
	captures []capture
	liveCaps int
	// firstUsed records [1]-children of nodes matched at this frame whose
	// single witness has been consumed. The witness is per derivation
	// instance, not per frame: one element can host several instances of
	// the same projection node (one per anchoring variable binding, e.g.
	// under //c below //*), and each instance owns its own [1] witness —
	// signOff resolution removes one role instance per derivation, so
	// projection must assign them the same way. Hence the key includes
	// the derivation's anchor.
	firstUsed map[firstKey]bool
}

// firstKey identifies a [1] witness: the projection node and the anchor
// frame of the derivation instance consuming it.
type firstKey struct {
	id     int
	anchor *frame
}

// cancellation reduces future derivations of a role below an anchor frame
// (registered by SignOff on unfinished subtrees). n counts the signed-off
// instances: one element can host several derivation instances of the same
// role (e.g. //b below //* reaches b once per ancestor binding), and each
// signOff retires exactly one of them — future same-anchored assignments
// lose n of their multiplicity, while the remaining instances keep
// assigning until their own signOffs arrive.
type cancellation struct {
	role   xqast.Role
	anchor *frame
	n      int
}

// Projector drives tokenization, projection, and role assignment.
type Projector struct {
	tok  *xmlstream.Tokenizer
	buf  *buffer.Buffer
	tree *projtree.Tree
	opts Options

	stack []*frame
	pool  []*frame
	cancs []cancellation
	eof   bool

	// scratch for candidate merging.
	cands []entry
	// rootScopes is the root frame's owned scope backing (descendants
	// extend scopes copy-on-append, so it is never shared downward).
	rootScopes []*entry

	tokens int64

	// trackLast enables LastToken (tracing support). It is off in
	// production runs so the hot path never copies token data.
	trackLast bool
	lastKind  xmlstream.Kind
	lastName  []byte // owned copy of the last token's tag name
	lastData  []byte // owned copy of the last token's character data
}

// New creates a projector reading from tok into buf, guided by tree.
func New(tok *xmlstream.Tokenizer, buf *buffer.Buffer, tree *projtree.Tree, opts Options) *Projector {
	p := &Projector{tok: tok, buf: buf, tree: tree, opts: opts}
	p.buf.SetCanceller(p)
	p.init()
	return p
}

// init builds the root frame against the buffer's (fresh) root node.
func (p *Projector) init() {
	rootFrame := p.takeFrame()
	rootFrame.depth = 0
	rootFrame.node = p.buf.Root()
	rootFrame.attach = p.buf.Root()
	rootFrame.matches = append(rootFrame.matches[:0], entry{pn: p.tree.Root, mult: 1})
	rootEntry := &rootFrame.matches[0]
	rootEntry.owner = rootFrame
	rootEntry.anchor = rootFrame
	if hasDescChildren(p.tree.Root) {
		p.rootScopes = append(p.rootScopes[:0], rootEntry)
		rootFrame.scopes = p.rootScopes
	}
	p.stack = append(p.stack, rootFrame)
	// The root may itself start captures (e.g. the full-buffering baseline
	// uses a projection tree whose root has a dos::node() child).
	p.startCaptures(rootFrame, rootEntry)
}

// Reset prepares the projector for a fresh run. The buffer (and the
// tokenizer) must have been reset first: Reset rebuilds the root frame
// around the buffer's new root node and re-assigns root capture roles.
// All frames are recycled into the pool, so steady-state runs allocate
// only when a document opens more simultaneous elements, matches, or
// captures than any run before it.
//
//gcxlint:keep tok wired at construction; the owner resets the tokenizer separately
//gcxlint:keep buf wired at construction; the owner resets the buffer separately
//gcxlint:keep tree the compiled projection tree is immutable and shared across runs
//gcxlint:keep opts configuration is part of the projector's identity
func (p *Projector) Reset() {
	for i := len(p.stack) - 1; i >= 0; i-- {
		p.releaseFrame(p.stack[i])
	}
	p.stack = p.stack[:0]
	p.cancs = p.cancs[:0]
	p.cands = p.cands[:0]
	p.eof = false
	p.tokens = 0
	p.trackLast = false
	p.lastKind = 0
	p.lastName = p.lastName[:0]
	p.lastData = p.lastData[:0]
	p.init()
}

// TokensRead returns the number of stream tokens consumed.
func (p *Projector) TokensRead() int64 { return p.tokens }

// TrackLastToken enables or disables LastToken snapshots. Tracking is
// off by default (and after Reset): it copies every token's name and
// data, which the production hot path must not pay for.
func (p *Projector) TrackLastToken(on bool) { p.trackLast = on }

// LastToken returns the most recently consumed token (tracing support).
// The returned token owns its strings: unlike the tokenizer's borrowed
// tokens it stays valid across subsequent Steps. It is the zero Token
// until TrackLastToken(true) is called.
func (p *Projector) LastToken() xmlstream.Token {
	return xmlstream.Token{Kind: p.lastKind, Name: string(p.lastName), Data: string(p.lastData)}
}

// noteToken snapshots a token for LastToken. The copy is the point:
// under BorrowText the token's strings alias tokenizer scratch that the
// next Next() overwrites, so retaining tk itself would corrupt the
// snapshot (and is exactly what borrowcheck forbids).
//
//gcxlint:borrowed
//gcxlint:noalloc
func (p *Projector) noteToken(tk xmlstream.Token) {
	p.lastKind = tk.Kind
	p.lastName = append(p.lastName[:0], tk.Name...)
	p.lastData = append(p.lastData[:0], tk.Data...)
}

// EOF reports whether the input is exhausted.
func (p *Projector) EOF() bool { return p.eof }

//gcxlint:noalloc
func hasDescChildren(pn *projtree.Node) bool {
	for _, c := range pn.Children {
		if c.Step.Axis == xqast.Descendant {
			return true
		}
	}
	return false
}

// Step reads and processes one token. It returns false once the input is
// exhausted. This is the nextNode() interface of Figure 11: the buffer
// manager calls Step until the data the evaluator blocks on is available.
//
//gcxlint:noalloc
func (p *Projector) Step() (bool, error) {
	if p.eof {
		return false, nil
	}
	tk, err := p.tok.Next()
	if err != nil {
		return false, err
	}
	p.tokens++
	if p.trackLast {
		p.noteToken(tk)
	}
	switch tk.Kind {
	case xmlstream.StartElement:
		p.openElement(tk.Name)
	case xmlstream.EndElement:
		p.closeElement(tk.Name)
	case xmlstream.Text:
		p.text(tk.Data)
	case xmlstream.EOF:
		p.eof = true
		if len(p.stack) != 1 {
			//gcxlint:allocok error construction terminates the run
			return false, fmt.Errorf("proj: internal error: %d frames open at EOF", len(p.stack)-1)
		}
		p.buf.Finish(p.buf.Root())
		return false, nil
	}
	return true, nil
}

// cancelledCount returns the number of signed-off instances of role at
// anchor: future derivations of the role anchored there lose this much
// multiplicity.
//
// The reduction applies only to chain continuations of signed-off
// instances — dependency-path nodes and dos captures (Var == "").
// A candidate that is itself a variable node starts a NEW binding
// instance of that variable and is never reduced, even when it is
// anchored at the same frame: under overlapping descendant steps
// (e.g. //*//*) one element's frame can anchor instances of two
// different variables, and suppressing the fresh binding would strand
// its later signOff without an assigned role instance.
//
//gcxlint:noalloc
func (p *Projector) cancelledCount(role xqast.Role, anchor *frame) int {
	for _, c := range p.cancs {
		if c.role == role && c.anchor == anchor {
			return c.n
		}
	}
	return 0
}

// elementTestMatches reports whether an element with tag sym name matches a
// step node test.
//
//gcxlint:borrowed
//gcxlint:noalloc
func elementTestMatches(t xqast.NodeTest, name string) bool {
	switch t.Kind {
	case xqast.TestName:
		return t.Name == name
	case xqast.TestStar:
		return true
	default:
		return false
	}
}

// tokenMatches evaluates a step node test against the current token: a
// text token if isText, an element with the given tag name otherwise.
//
//gcxlint:borrowed
//gcxlint:noalloc
func tokenMatches(t xqast.NodeTest, isText bool, name string) bool {
	if isText {
		return t.Kind == xqast.TestText
	}
	return elementTestMatches(t, name)
}

// addCand merges one derivation into the candidate scratch, keyed by
// (projection node, owner-to-be, anchor).
//
//gcxlint:noalloc
func (p *Projector) addCand(pn *projtree.Node, owner, anchor *frame, mult int) {
	for i := range p.cands {
		c := &p.cands[i]
		if c.pn == pn && c.owner == owner && c.anchor == anchor {
			c.mult += mult
			return
		}
	}
	p.cands = append(p.cands, entry{pn: pn, owner: owner, anchor: anchor, mult: mult})
}

// collectCands gathers candidate matches for a child of top against the
// current token, merging derivations. The returned slice is the reused
// candidate scratch, valid until the next collectCands.
// collectCands only compares name against projection-tree tests; no
// bytes are retained.
//
//gcxlint:borrowed
//gcxlint:noalloc
func (p *Projector) collectCands(top *frame, isText bool, name string) []entry {
	p.cands = p.cands[:0]
	// Child-axis steps from nodes matched at the parent.
	for i := range top.matches {
		e := &top.matches[i]
		for _, c := range e.pn.Children {
			if c.Step.Axis == xqast.Child && tokenMatches(c.Step.Test, isText, name) {
				p.addCand(c, top, e.anchor, e.mult)
			}
		}
	}
	// Descendant-axis steps from scope entries (matched here or above).
	for _, e := range top.scopes {
		for _, c := range e.pn.Children {
			if c.Step.Axis == xqast.Descendant && tokenMatches(c.Step.Test, isText, name) {
				p.addCand(c, e.owner, e.anchor, e.mult)
			}
		}
	}
	// Apply signOff cancellations after merging: all same-anchored
	// derivations of a chain funnel into one candidate, whose multiplicity
	// is reduced by the number of already signed-off instances. A shared
	// node (extra role lanes from other member queries) keeps its
	// structural multiplicity — each lane subtracts its own cancellations
	// at assignment time (assignLanes) — and is dropped only when every
	// lane is fully cancelled.
	if len(p.cancs) > 0 {
		out := p.cands[:0]
		for i := range p.cands {
			c := p.cands[i]
			if c.pn.Var == "" {
				if len(c.pn.Extra) == 0 {
					c.mult -= p.cancelledCount(c.pn.ChainRole, c.anchor)
					if c.mult <= 0 {
						continue
					}
				} else if p.allLanesCancelled(c.pn, c.mult, c.anchor) {
					continue
				}
			}
			out = append(out, c)
		}
		p.cands = out
	}
	return p.cands
}

// allLanesCancelled reports whether every role lane of a shared node has
// been fully signed off at this anchor — only then can the shared
// candidate be dropped.
//
//gcxlint:noalloc
func (p *Projector) allLanesCancelled(pn *projtree.Node, mult int, anchor *frame) bool {
	if mult > p.cancelledCount(pn.ChainRole, anchor) {
		return false
	}
	for _, l := range pn.Extra {
		if mult > p.cancelledCount(l.Chain, anchor) {
			return false
		}
	}
	return true
}

// assignLanes assigns a shared node's roles to a buffered node, one lane
// at a time: each lane's multiplicity is the candidate's structural
// multiplicity less the lane's own signed-off instances (chain lanes
// only — binding lanes start new variable instances and are exempt,
// exactly as in cancelledCount's solo rule).
//
//gcxlint:noalloc
func (p *Projector) assignLanes(n *buffer.Node, pn *projtree.Node, mult int, anchor *frame) {
	chain := pn.Var == ""
	m := mult
	if chain {
		m -= p.cancelledCount(pn.ChainRole, anchor)
	}
	if m > 0 {
		if r := p.tree.Roles[pn.Role]; r != nil && !r.Eliminated {
			p.buf.AddRole(n, pn.Role, m)
		}
	}
	for _, l := range pn.Extra {
		m := mult
		if chain {
			m -= p.cancelledCount(l.Chain, anchor)
		}
		if m > 0 {
			if r := p.tree.Roles[l.Role]; r != nil && !r.Eliminated {
				p.buf.AddRole(n, l.Role, m)
			}
		}
	}
}

// filterFirst applies first-witness suppression: a [1] candidate whose
// context instance already consumed its witness is dropped; otherwise the
// witness is consumed now.
//
//gcxlint:noalloc
func filterFirst(cands []entry) []entry {
	out := cands[:0]
	for _, c := range cands {
		if c.pn.Step.First {
			ctx := c.owner
			key := firstKey{id: c.pn.ID, anchor: c.anchor}
			if ctx.firstUsed[key] {
				continue
			}
			if ctx.firstUsed == nil {
				ctx.firstUsed = make(map[firstKey]bool, 2) //gcxlint:allocok allocated at most once per pooled frame, then cleared and reused
			}
			ctx.firstUsed[key] = true
		}
		out = append(out, c)
	}
	return out
}

// covered reports whether any live capture is active at or above f.
//
//gcxlint:noalloc
func covered(f *frame) bool {
	for ; f != nil; f = f.parent {
		if f.liveCaps > 0 {
			return true
		}
	}
	return false
}

// guard implements the structural preservation rule (Section 2, case (2)):
// the current element must be kept when its parent's configuration pairs a
// child-axis step with an overlapping descendant-axis step — discarding it
// could later promote a descendant into a false child-axis match.
//
//gcxlint:noalloc
func (p *Projector) guard(top *frame) bool {
	for _, e := range top.matches {
		for _, c := range e.pn.Children {
			if c.Step.Axis != xqast.Child {
				continue
			}
			for _, s := range top.scopes {
				for _, d := range s.pn.Children {
					if d.Step.Axis == xqast.Descendant && testsOverlap(c.Step.Test, d.Step.Test) {
						return true
					}
				}
			}
		}
	}
	return false
}

// testsOverlap reports whether two node tests can match the same token.
//
//gcxlint:noalloc
func testsOverlap(a, b xqast.NodeTest) bool {
	if a.Kind == xqast.TestText || b.Kind == xqast.TestText {
		return a.Kind == b.Kind
	}
	// Element tests: * overlaps everything, names overlap on equality.
	if a.Kind == xqast.TestStar || b.Kind == xqast.TestStar {
		return true
	}
	return a.Kind == xqast.TestName && b.Kind == xqast.TestName && a.Name == b.Name
}

// applyCaptureRoles assigns the roles of live ancestor captures to a newly
// buffered node. Under aggregate roles this is a no-op (the role sits on
// the subtree root only); otherwise every preserved node inherits each
// covering capture's role, as in the paper's base technique where e.g.
// every node below a bib child carries r5 (Figure 2).
//
//gcxlint:noalloc
func (p *Projector) applyCaptureRoles(n *buffer.Node, from *frame) {
	if p.opts.AggregateRoles {
		return
	}
	for f := from; f != nil; f = f.parent {
		for i := range f.captures {
			if f.captures[i].live {
				p.buf.AddRole(n, f.captures[i].role, f.captures[i].mult)
			}
		}
	}
}

// startCaptures creates captures for dos::node() children of a matched
// projection node and assigns the dos role to the matched element itself
// (descendant-or-self includes self). A shared dos leaf starts one
// capture per role lane: captures are keyed (role, anchor), so each
// member query's capture is cancelled independently.
//
//gcxlint:noalloc
func (p *Projector) startCaptures(f *frame, e *entry) {
	for _, c := range e.pn.Children {
		if !c.IsDosLeaf() {
			continue
		}
		p.addCapture(f, c.Role, c.ChainRole, e)
		for _, l := range c.Extra {
			p.addCapture(f, l.Role, l.Chain, e)
		}
	}
}

// addCapture starts (or re-activates) one capture lane at frame f.
//
//gcxlint:noalloc
func (p *Projector) addCapture(f *frame, roleID, chain xqast.Role, e *entry) {
	role := p.tree.Roles[roleID]
	if role == nil || role.Eliminated {
		return
	}
	mult := e.mult - p.cancelledCount(chain, e.anchor)
	if mult <= 0 {
		return
	}
	// Merge same-keyed captures: several derivation instances of the
	// same role can anchor at this frame (separate matched entries),
	// and CancelRole retires them one multiplicity at a time.
	merged := false
	for j := range f.captures {
		if f.captures[j].role == roleID && f.captures[j].anchor == e.anchor {
			if !f.captures[j].live {
				f.captures[j].live = true
				f.liveCaps++
			}
			f.captures[j].mult += mult
			merged = true
			break
		}
	}
	if !merged {
		f.captures = append(f.captures, capture{role: roleID, anchor: e.anchor, mult: mult, live: true})
		f.liveCaps++
	}
	p.buf.AddRole(f.node, roleID, mult)
}

// openElement processes a start tag. name may borrow the tokenizer's
// window; everything stored (symbols, schema facts) goes through the
// symbol table's interning.
//
//gcxlint:borrowed
//gcxlint:noalloc
func (p *Projector) openElement(name string) {
	top := p.stack[len(p.stack)-1]
	cands := p.collectCands(top, false, name)
	cands = filterFirst(cands)

	// Schema facts: a child with this tag excludes certain later child
	// tags under the parent (recorded on the buffered parent node so
	// blocking cursors can terminate the region early).
	if p.opts.Schema != nil && top.node != nil && top.node.Kind == buffer.KindElement {
		parentTag := p.buf.Syms().Name(top.node.Sym)
		for _, dead := range p.opts.Schema.NoMoreAfter(parentTag, name) {
			top.node.MarkNoMore(p.buf.Syms().Intern(dead))
		}
	}

	f := p.newFrame(top)

	keep := len(cands) > 0 || covered(top) || p.guard(top)
	if keep {
		sym := p.buf.Syms().Intern(name)
		n := p.buf.AppendElement(top.attach, sym)
		f.node = n
		f.attach = n
		p.applyCaptureRoles(n, top)
		if p.opts.Schema != nil && p.opts.Schema.EmptyElement(name) {
			// EMPTY elements can have no content at all (not even
			// whitespace): the region is complete at its start tag.
			p.buf.Seal(n)
		}
	} else {
		f.attach = top.attach
	}

	if len(cands) > 0 {
		// Materialize match entries: resolve self-anchoring (straight
		// variable instances anchor at their own frame), assign roles,
		// start captures. The matches slice reuses the pooled frame's
		// backing array; pointers into it (scopes, below) are taken only
		// after it is fully built.
		f.matches = f.matches[:0]
		for i := range cands {
			c := &cands[i]
			e := entry{pn: c.pn, owner: f, anchor: c.anchor, mult: c.mult}
			if c.pn.AnchorSelf {
				e.anchor = f
			}
			f.matches = append(f.matches, e)
			if len(c.pn.Extra) == 0 {
				if r := p.tree.Roles[c.pn.Role]; r != nil && !r.Eliminated {
					p.buf.AddRole(f.node, c.pn.Role, c.mult)
				}
			} else {
				p.assignLanes(f.node, c.pn, c.mult, c.anchor)
			}
			p.startCaptures(f, &f.matches[len(f.matches)-1])
		}
		// Extend the descendant scope with matches that have
		// descendant-axis children.
		f.scopes = top.scopes
		for i := range f.matches {
			if hasDescChildren(f.matches[i].pn) {
				f.scopes = appendScope(f.scopes, &f.matches[i])
			}
		}
	} else {
		f.scopes = top.scopes
	}

	p.stack = append(p.stack, f)
}

// appendScope appends without aliasing the parent's backing array tail
// (frames share scope slices copy-on-append; two siblings must not clobber
// each other's extension).
//
//gcxlint:noalloc
func appendScope(s []*entry, e *entry) []*entry {
	out := make([]*entry, len(s), len(s)+1) //gcxlint:allocok copy-on-append keeps sibling frames from clobbering a shared scope tail
	copy(out, s)
	return append(out, e) //gcxlint:allocok capacity was reserved by the make above; this append never grows
}

// closeElement processes an end tag. name may borrow the tokenizer's
// window; it is only compared against schema facts, never retained.
//
//gcxlint:borrowed
//gcxlint:noalloc
func (p *Projector) closeElement(name string) {
	f := p.stack[len(p.stack)-1]
	p.stack = p.stack[:len(p.stack)-1]
	// Drop cancellations anchored at the closing frame: the subtree is
	// complete, nothing further can be assigned below it.
	if len(p.cancs) > 0 {
		kept := p.cancs[:0]
		for _, c := range p.cancs {
			if c.anchor != f {
				kept = append(kept, c)
			}
		}
		p.cancs = kept
	}
	if f.node != nil {
		p.buf.Finish(f.node)
	}
	p.releaseFrame(f)
	if p.opts.Schema != nil {
		p.sealAfterChild(name)
	}
}

// sealAfterChild applies the schema-based scheduling rule of
// Koch/Scherzinger (cs/0406016) at a child's end tag: when the DTD
// proves the parent's content model is complete after a `name` child,
// the buffered parent is sealed — cursors see the region as finished
// before its end-of-element arrives, so blocked evaluation concludes and
// its signOffs flush buffered descendants that would otherwise sit until
// the parent's real close (or EOF, for accumulating queries).
//
// Sealing silences the region for EVERY cursor, including text() steps
// and dos captures, and element-content whitespace is still valid XML
// after the last child — so the seal is refused while any live capture
// covers the frame or a text candidate could still match here. In that
// refused case arriving text would have been buffered; in the sealed
// case it is discarded anyway, so nothing a cursor could observe is
// lost.
//
//gcxlint:borrowed
//gcxlint:noalloc
func (p *Projector) sealAfterChild(name string) {
	top := p.stack[len(p.stack)-1]
	if top.node == nil || top.node.Kind != buffer.KindElement || top.node.Sealed() {
		return
	}
	if covered(top) || p.textInterest(top) {
		return
	}
	parentTag := p.buf.Syms().Name(top.node.Sym)
	if p.opts.Schema.ContentComplete(parentTag, name) {
		p.buf.Seal(top.node)
	}
}

// textInterest reports whether a text token at this frame could match a
// projection node (and hence be buffered).
//
//gcxlint:noalloc
func (p *Projector) textInterest(top *frame) bool {
	for i := range top.matches {
		for _, c := range top.matches[i].pn.Children {
			if c.Step.Axis == xqast.Child && c.Step.Test.Kind == xqast.TestText {
				return true
			}
		}
	}
	for _, e := range top.scopes {
		for _, c := range e.pn.Children {
			if c.Step.Axis == xqast.Descendant && c.Step.Test.Kind == xqast.TestText {
				return true
			}
		}
	}
	return false
}

// text processes a character-data token. data may borrow the tokenizer's
// window; it is cloned before buffering (and never cloned for discarded
// regions, which is where projection spends its time).
//
//gcxlint:borrowed
//gcxlint:noalloc
func (p *Projector) text(data string) {
	top := p.stack[len(p.stack)-1]
	cands := p.collectCands(top, true, "")
	cands = filterFirst(cands)

	if len(cands) == 0 && !covered(top) {
		return
	}
	if p.opts.BorrowedText {
		// The token borrows the tokenizer's scratch; copy only now that
		// the text is known to be buffered.
		data = strings.Clone(data) //gcxlint:allocok kept text must outlive the borrowed window; discarded regions never reach this line
	}
	n := p.buf.AppendText(top.attach, data)
	p.applyCaptureRoles(n, top)
	for i := range cands {
		c := &cands[i]
		if len(c.pn.Extra) == 0 {
			if r := p.tree.Roles[c.pn.Role]; r != nil && !r.Eliminated {
				p.buf.AddRole(n, c.pn.Role, c.mult)
			}
		} else {
			p.assignLanes(n, c.pn, c.mult, c.anchor)
		}
		// text()/dos::node() chains do not occur (static analysis never
		// appends dos below text tests), so no captures here.
	}
}

// CancelRole implements buffer.Canceller: ONE instance of role anchored
// at the frame of binding is retired — future derivations anchored there
// lose one multiplicity, and every live capture for (role, anchor) sheds
// one instance (deactivating when none remain). Called by the buffer when
// a signOff's binding subtree is still unfinished; each signOff statement
// retires exactly one derivation instance, so instances signed off later
// keep projecting until their own signOff arrives.
//
//gcxlint:noalloc
func (p *Projector) CancelRole(binding *buffer.Node, role xqast.Role) {
	var bf *frame
	for i := len(p.stack) - 1; i >= 0; i-- {
		if p.stack[i].node == binding {
			bf = p.stack[i]
			break
		}
	}
	if bf == nil {
		return // binding not on the open path: nothing future to cancel
	}
	recorded := false
	for i := range p.cancs {
		if p.cancs[i].role == role && p.cancs[i].anchor == bf {
			p.cancs[i].n++
			recorded = true
			break
		}
	}
	if !recorded {
		p.cancs = append(p.cancs, cancellation{role: role, anchor: bf, n: 1})
	}
	for i := bf.depth; i < len(p.stack); i++ {
		f := p.stack[i]
		for j := range f.captures {
			cap := &f.captures[j]
			if cap.live && cap.role == role && cap.anchor == bf {
				cap.mult--
				if cap.mult <= 0 {
					cap.live = false
					f.liveCaps--
				}
			}
		}
	}
}

// takeFrame returns a cleared frame from the pool (or a fresh one),
// retaining the matches/captures backing arrays and the firstUsed map of
// its previous life. The scopes slice is not retained: its backing may be
// shared with (and owned by) an ancestor frame.
//
//gcxlint:noalloc
func (p *Projector) takeFrame() *frame {
	if n := len(p.pool); n > 0 {
		f := p.pool[n-1]
		p.pool = p.pool[:n-1]
		matches, captures, firstUsed := f.matches[:0], f.captures[:0], f.firstUsed
		*f = frame{}
		f.matches = matches
		f.captures = captures
		if firstUsed != nil {
			clear(firstUsed)
			f.firstUsed = firstUsed
		}
		return f
	}
	return &frame{} //gcxlint:allocok pool growth to document depth, amortized across runs
}

//gcxlint:noalloc
func (p *Projector) newFrame(parent *frame) *frame {
	f := p.takeFrame()
	f.parent = parent
	f.depth = parent.depth + 1
	return f
}

//gcxlint:noalloc
func (p *Projector) releaseFrame(f *frame) {
	p.pool = append(p.pool, f)
}
