// Package proj implements the GCX stream pre-projector (Sections 2 and 6 of
// the paper): it matches the incoming token stream against the projection
// tree, copies relevant tokens into the buffer, and assigns roles on the
// fly.
//
// Matching is an NFA simulation over the stack of open elements, which is
// the per-instance generalization of the paper's lazily constructed DFA
// (the instance-free lazy DFA itself is implemented in dfa.go and used for
// diagnostics and the Figure 5 tests). Per-instance state is required for
//
//   - first-witness suppression: a [position()=1] projection node buffers
//     only the first match per context *instance*;
//   - multiplicity: a token matched through several derivations receives
//     the corresponding role once per derivation (Figure 4(c));
//   - cancellation: a signOff executed while its target subtree is still
//     open must suppress the role's future assignments (see DESIGN.md).
//
// A document node is preserved if (1) it matches a projection-tree node,
// (2) it lies below a dos::node() capture, or (3) the structural guard of
// Section 2 (case (2)) applies — discarding it could promote a descendant
// into a false child-axis match.
package proj

import (
	"fmt"

	"gcx/internal/buffer"
	"gcx/internal/dtd"
	"gcx/internal/projtree"
	"gcx/internal/xmlstream"
	"gcx/internal/xqast"
)

// Options configures the projector. AggregateRoles must match the static
// analysis configuration that produced the projection tree.
type Options struct {
	AggregateRoles bool
	// Schema, when non-nil, enables schema-aware early region
	// termination: content-model facts ("no further c child can occur
	// after a d child") are recorded on buffered nodes so blocking
	// cursors can stop without scanning to the end of the region.
	// Supplying a schema asserts the input is valid against it.
	Schema *dtd.Schema
}

// entry is one live NFA configuration: projection-tree node pn matched at a
// specific open element, reached through mult derivations.
type entry struct {
	pn *projtree.Node
	// owner is the frame at which pn matched (the context instance for
	// [1] predicates on pn's children).
	owner *frame
	// anchor is the frame of the first-straight-ancestor variable instance
	// on this derivation; signOff cancellation is keyed on (role, anchor).
	anchor *frame
	mult   int
}

// capture is an active dos::node() subtree preservation started at its
// owner frame.
type capture struct {
	role   xqast.Role
	anchor *frame
	mult   int
	live   bool
}

// frame is the per-open-element state.
type frame struct {
	parent *frame
	depth  int
	// node is the buffered node for this element (nil if not preserved).
	node *buffer.Node
	// attach is the nearest buffered ancestor-or-self; children of
	// discarded elements are promoted to it (Definition 1's projection).
	attach *buffer.Node
	// matches are the projection nodes matched at this element.
	matches []*entry
	// scopes are entries (here or at ancestors) whose projection nodes
	// have descendant-axis children; shared copy-on-append with parent.
	scopes []*entry
	// captures started at this element.
	captures []*capture
	liveCaps int
	// firstUsed records [1]-children of nodes matched at this frame whose
	// single witness has been consumed (keyed by projection node ID).
	firstUsed map[int]bool
}

// cancellation suppresses future derivations of a role below an anchor
// frame (registered by SignOff on unfinished subtrees).
type cancellation struct {
	role   xqast.Role
	anchor *frame
}

// Projector drives tokenization, projection, and role assignment.
type Projector struct {
	tok  *xmlstream.Tokenizer
	buf  *buffer.Buffer
	tree *projtree.Tree
	opts Options

	stack []*frame
	pool  []*frame
	cancs []cancellation
	eof   bool

	// scratch for candidate merging.
	cands []*entry

	tokens    int64
	lastToken xmlstream.Token
}

// New creates a projector reading from tok into buf, guided by tree.
func New(tok *xmlstream.Tokenizer, buf *buffer.Buffer, tree *projtree.Tree, opts Options) *Projector {
	p := &Projector{tok: tok, buf: buf, tree: tree, opts: opts}
	rootFrame := &frame{depth: 0, node: buf.Root(), attach: buf.Root()}
	rootEntry := &entry{pn: tree.Root, owner: rootFrame, anchor: rootFrame, mult: 1}
	rootFrame.matches = []*entry{rootEntry}
	if hasDescChildren(tree.Root) {
		rootFrame.scopes = []*entry{rootEntry}
	}
	p.stack = append(p.stack, rootFrame)
	// The root may itself start captures (e.g. the full-buffering baseline
	// uses a projection tree whose root has a dos::node() child).
	p.startCaptures(rootFrame, rootEntry)
	p.buf.SetCanceller(p)
	return p
}

// TokensRead returns the number of stream tokens consumed.
func (p *Projector) TokensRead() int64 { return p.tokens }

// LastToken returns the most recently consumed token (tracing support).
func (p *Projector) LastToken() xmlstream.Token { return p.lastToken }

// EOF reports whether the input is exhausted.
func (p *Projector) EOF() bool { return p.eof }

func hasDescChildren(pn *projtree.Node) bool {
	for _, c := range pn.Children {
		if c.Step.Axis == xqast.Descendant {
			return true
		}
	}
	return false
}

// Step reads and processes one token. It returns false once the input is
// exhausted. This is the nextNode() interface of Figure 11: the buffer
// manager calls Step until the data the evaluator blocks on is available.
func (p *Projector) Step() (bool, error) {
	if p.eof {
		return false, nil
	}
	tk, err := p.tok.Next()
	if err != nil {
		return false, err
	}
	p.tokens++
	p.lastToken = tk
	switch tk.Kind {
	case xmlstream.StartElement:
		p.openElement(tk.Name)
	case xmlstream.EndElement:
		p.closeElement()
	case xmlstream.Text:
		p.text(tk.Data)
	case xmlstream.EOF:
		p.eof = true
		if len(p.stack) != 1 {
			return false, fmt.Errorf("proj: internal error: %d frames open at EOF", len(p.stack)-1)
		}
		p.buf.Finish(p.buf.Root())
		return false, nil
	}
	return true, nil
}

// cancelled reports whether derivations of role below anchor are
// suppressed.
func (p *Projector) cancelled(role xqast.Role, anchor *frame) bool {
	for _, c := range p.cancs {
		if c.role == role && c.anchor == anchor {
			return true
		}
	}
	return false
}

// elementTestMatches reports whether an element with tag sym name matches a
// step node test.
func elementTestMatches(t xqast.NodeTest, name string) bool {
	switch t.Kind {
	case xqast.TestName:
		return t.Name == name
	case xqast.TestStar:
		return true
	default:
		return false
	}
}

func textTestMatches(t xqast.NodeTest) bool {
	return t.Kind == xqast.TestText
}

// collectCands gathers candidate matches for a child of top with the given
// matcher, merging derivations by (projection node, owner-to-be, anchor).
func (p *Projector) collectCands(top *frame, match func(xqast.NodeTest) bool) []*entry {
	p.cands = p.cands[:0]
	add := func(pn *projtree.Node, owner, anchor *frame, mult int) {
		for _, c := range p.cands {
			if c.pn == pn && c.owner == owner && c.anchor == anchor {
				c.mult += mult
				return
			}
		}
		p.cands = append(p.cands, &entry{pn: pn, owner: owner, anchor: anchor, mult: mult})
	}
	// Child-axis steps from nodes matched at the parent.
	for _, e := range top.matches {
		for _, c := range e.pn.Children {
			if c.Step.Axis == xqast.Child && match(c.Step.Test) {
				if p.cancelled(c.ChainRole, e.anchor) {
					continue
				}
				add(c, top, e.anchor, e.mult)
			}
		}
	}
	// Descendant-axis steps from scope entries (matched here or above).
	for _, e := range top.scopes {
		for _, c := range e.pn.Children {
			if c.Step.Axis == xqast.Descendant && match(c.Step.Test) {
				if p.cancelled(c.ChainRole, e.anchor) {
					continue
				}
				add(c, e.owner, e.anchor, e.mult)
			}
		}
	}
	return p.cands
}

// filterFirst applies first-witness suppression: a [1] candidate whose
// context instance already consumed its witness is dropped; otherwise the
// witness is consumed now.
func filterFirst(cands []*entry) []*entry {
	out := cands[:0]
	for _, c := range cands {
		if c.pn.Step.First {
			ctx := c.owner
			if ctx.firstUsed[c.pn.ID] {
				continue
			}
			if ctx.firstUsed == nil {
				ctx.firstUsed = make(map[int]bool, 2)
			}
			ctx.firstUsed[c.pn.ID] = true
		}
		out = append(out, c)
	}
	return out
}

// covered reports whether any live capture is active at or above f.
func covered(f *frame) bool {
	for ; f != nil; f = f.parent {
		if f.liveCaps > 0 {
			return true
		}
	}
	return false
}

// guard implements the structural preservation rule (Section 2, case (2)):
// the current element must be kept when its parent's configuration pairs a
// child-axis step with an overlapping descendant-axis step — discarding it
// could later promote a descendant into a false child-axis match.
func (p *Projector) guard(top *frame) bool {
	for _, e := range top.matches {
		for _, c := range e.pn.Children {
			if c.Step.Axis != xqast.Child {
				continue
			}
			for _, s := range top.scopes {
				for _, d := range s.pn.Children {
					if d.Step.Axis == xqast.Descendant && testsOverlap(c.Step.Test, d.Step.Test) {
						return true
					}
				}
			}
		}
	}
	return false
}

// testsOverlap reports whether two node tests can match the same token.
func testsOverlap(a, b xqast.NodeTest) bool {
	if a.Kind == xqast.TestText || b.Kind == xqast.TestText {
		return a.Kind == b.Kind
	}
	// Element tests: * overlaps everything, names overlap on equality.
	if a.Kind == xqast.TestStar || b.Kind == xqast.TestStar {
		return true
	}
	return a.Kind == xqast.TestName && b.Kind == xqast.TestName && a.Name == b.Name
}

// applyCaptureRoles assigns the roles of live ancestor captures to a newly
// buffered node. Under aggregate roles this is a no-op (the role sits on
// the subtree root only); otherwise every preserved node inherits each
// covering capture's role, as in the paper's base technique where e.g.
// every node below a bib child carries r5 (Figure 2).
func (p *Projector) applyCaptureRoles(n *buffer.Node, from *frame) {
	if p.opts.AggregateRoles {
		return
	}
	for f := from; f != nil; f = f.parent {
		for _, cap := range f.captures {
			if cap.live {
				p.buf.AddRole(n, cap.role, cap.mult)
			}
		}
	}
}

// startCaptures creates captures for dos::node() children of a matched
// projection node and assigns the dos role to the matched element itself
// (descendant-or-self includes self).
func (p *Projector) startCaptures(f *frame, e *entry) {
	for _, c := range e.pn.Children {
		if !c.IsDosLeaf() {
			continue
		}
		role := p.tree.Roles[c.Role]
		if role == nil || role.Eliminated {
			continue
		}
		if p.cancelled(c.ChainRole, e.anchor) {
			continue
		}
		f.captures = append(f.captures, &capture{role: c.Role, anchor: e.anchor, mult: e.mult, live: true})
		f.liveCaps++
		p.buf.AddRole(f.node, c.Role, e.mult)
	}
}

// openElement processes a start tag.
func (p *Projector) openElement(name string) {
	top := p.stack[len(p.stack)-1]
	cands := p.collectCands(top, func(t xqast.NodeTest) bool { return elementTestMatches(t, name) })
	cands = filterFirst(cands)

	// Schema facts: a child with this tag excludes certain later child
	// tags under the parent (recorded on the buffered parent node so
	// blocking cursors can terminate the region early).
	if p.opts.Schema != nil && top.node != nil && top.node.Kind == buffer.KindElement {
		parentTag := p.buf.Syms().Name(top.node.Sym)
		for _, dead := range p.opts.Schema.NoMoreAfter(parentTag, name) {
			top.node.MarkNoMore(p.buf.Syms().Intern(dead))
		}
	}

	f := p.newFrame(top)

	keep := len(cands) > 0 || covered(top) || p.guard(top)
	if keep {
		sym := p.buf.Syms().Intern(name)
		n := p.buf.AppendElement(top.attach, sym)
		f.node = n
		f.attach = n
		p.applyCaptureRoles(n, top)
	} else {
		f.attach = top.attach
	}

	if len(cands) > 0 {
		// Materialize match entries: resolve self-anchoring (straight
		// variable instances anchor at their own frame), assign roles,
		// start captures.
		f.matches = make([]*entry, 0, len(cands))
		for _, c := range cands {
			e := &entry{pn: c.pn, owner: f, anchor: c.anchor, mult: c.mult}
			if c.pn.AnchorSelf {
				e.anchor = f
			}
			f.matches = append(f.matches, e)
			if r := p.tree.Roles[c.pn.Role]; r != nil && !r.Eliminated {
				p.buf.AddRole(f.node, c.pn.Role, c.mult)
			}
			p.startCaptures(f, e)
		}
		// Extend the descendant scope with matches that have
		// descendant-axis children.
		f.scopes = top.scopes
		for _, e := range f.matches {
			if hasDescChildren(e.pn) {
				f.scopes = appendScope(f.scopes, e)
			}
		}
	} else {
		f.scopes = top.scopes
	}

	p.stack = append(p.stack, f)
}

// appendScope appends without aliasing the parent's backing array tail
// (frames share scope slices copy-on-append; two siblings must not clobber
// each other's extension).
func appendScope(s []*entry, e *entry) []*entry {
	out := make([]*entry, len(s), len(s)+1)
	copy(out, s)
	return append(out, e)
}

// closeElement processes an end tag.
func (p *Projector) closeElement() {
	f := p.stack[len(p.stack)-1]
	p.stack = p.stack[:len(p.stack)-1]
	// Drop cancellations anchored at the closing frame: the subtree is
	// complete, nothing further can be assigned below it.
	if len(p.cancs) > 0 {
		kept := p.cancs[:0]
		for _, c := range p.cancs {
			if c.anchor != f {
				kept = append(kept, c)
			}
		}
		p.cancs = kept
	}
	if f.node != nil {
		p.buf.Finish(f.node)
	}
	p.releaseFrame(f)
}

// text processes a character-data token.
func (p *Projector) text(data string) {
	top := p.stack[len(p.stack)-1]
	cands := p.collectCands(top, textTestMatches)
	cands = filterFirst(cands)

	if len(cands) == 0 && !covered(top) {
		return
	}
	n := p.buf.AppendText(top.attach, data)
	p.applyCaptureRoles(n, top)
	for _, c := range cands {
		if r := p.tree.Roles[c.pn.Role]; r != nil && !r.Eliminated {
			p.buf.AddRole(n, c.pn.Role, c.mult)
		}
		// text()/dos::node() chains do not occur (static analysis never
		// appends dos below text tests), so no captures here.
	}
}

// CancelRole implements buffer.Canceller: future derivations of role
// anchored at the frame of binding are suppressed, and live captures for
// the role anchored there are deactivated. Called by the buffer when a
// signOff's binding subtree is still unfinished.
func (p *Projector) CancelRole(binding *buffer.Node, role xqast.Role) {
	var bf *frame
	for i := len(p.stack) - 1; i >= 0; i-- {
		if p.stack[i].node == binding {
			bf = p.stack[i]
			break
		}
	}
	if bf == nil {
		return // binding not on the open path: nothing future to cancel
	}
	p.cancs = append(p.cancs, cancellation{role: role, anchor: bf})
	for i := bf.depth; i < len(p.stack); i++ {
		f := p.stack[i]
		for _, cap := range f.captures {
			if cap.live && cap.role == role && cap.anchor == bf {
				cap.live = false
				f.liveCaps--
			}
		}
	}
}

func (p *Projector) newFrame(parent *frame) *frame {
	var f *frame
	if n := len(p.pool); n > 0 {
		f = p.pool[n-1]
		p.pool = p.pool[:n-1]
		*f = frame{}
	} else {
		f = &frame{}
	}
	f.parent = parent
	f.depth = parent.depth + 1
	return f
}

func (p *Projector) releaseFrame(f *frame) {
	p.pool = append(p.pool, f)
}
