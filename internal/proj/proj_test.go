package proj_test

import (
	"strings"
	"testing"

	"gcx/internal/buffer"
	"gcx/internal/ifpush"
	"gcx/internal/normalize"
	"gcx/internal/proj"
	"gcx/internal/projtree"
	"gcx/internal/static"
	"gcx/internal/xmlstream"
	"gcx/internal/xqast"
	"gcx/internal/xqparser"
)

// project runs the full projection of doc under the analysis of src,
// without evaluating the query (so no signOffs run): the buffer ends up
// holding the complete projected document with roles, as in the paper's
// Figures 3 and 4.
func project(t *testing.T, src, doc string, opts static.Options) (*buffer.Buffer, *static.Analysis) {
	t.Helper()
	q, err := xqparser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	n, err := normalize.Normalize(q)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	a, err := static.Analyze(ifpush.Push(n), opts)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}

	syms := xmlstream.NewSymTab()
	agg := make([]bool, len(a.Tree.Roles))
	for i, r := range a.Tree.Roles {
		if i > 0 && r.Aggregate {
			agg[i] = true
		}
	}
	buf := buffer.New(syms, len(a.Tree.Roles)-1, agg)
	tok := xmlstream.NewTokenizer(strings.NewReader(doc))
	p := proj.New(tok, buf, a.Tree, proj.Options{AggregateRoles: opts.AggregateRoles})
	for {
		more, err := p.Step()
		if err != nil {
			t.Fatalf("projection: %v", err)
		}
		if !more {
			break
		}
	}
	return buf, a
}

func dumpOf(t *testing.T, src, doc string, opts static.Options) string {
	t.Helper()
	buf, _ := project(t, src, doc, opts)
	return buf.Dump()
}

// TestFigure4RoleAssignment reproduces Figure 4(c): with projection paths
// //a and .//b below it, the b node at depth 3 of <a><a><b/></a><b/></a>
// receives the b role twice (two derivations through the nested a's).
func TestFigure4RoleAssignment(t *testing.T) {
	src := `<q>{ for $a in //a return for $b in $a//b return <hit/> }</q>`
	doc := `<a><a><b/></a><b/></a>`
	dump := dumpOf(t, src, doc, static.Options{})
	// Deep b: two derivations -> {r2,r2}; shallow b: one derivation.
	if !strings.Contains(dump, "b{r2,r2}") {
		t.Fatalf("deep b must carry the role twice (Figure 4(c)):\n%s", dump)
	}
	if !strings.Contains(dump, "b{r2}\n") {
		t.Fatalf("shallow b must carry the role once:\n%s", dump)
	}
	// The nested a matches //a twice? No: //a from the root yields one
	// derivation per node; the outer a carries r1 once, the inner a once.
	if strings.Contains(dump, "a{r1,r1}") {
		t.Fatalf("a nodes must carry the binding role once each:\n%s", dump)
	}
}

// TestExample2StructuralGuard reproduces Example 2: with both /a/b and
// /a//b in the projection tree, an unmatched intermediate node must be
// preserved to avoid promoting a deep b into a false child match.
func TestExample2StructuralGuard(t *testing.T) {
	src := `<q>{ (for $x in /a return for $y in $x/b return <c1/>,
	               for $u in /a return for $v in $u//b return <c2/>) }</q>`
	doc := `<a><x><b/></x></a>`
	dump := dumpOf(t, src, doc, static.Options{})
	// The x element matches nothing but must be kept (skeleton), with b
	// below it — not promoted to a child of a.
	lines := strings.Split(strings.TrimRight(dump, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 buffered nodes (a, x, b), got:\n%s", dump)
	}
	if !strings.HasPrefix(lines[1], "  x") {
		t.Fatalf("x must be preserved as a skeleton below a:\n%s", dump)
	}
	if !strings.HasPrefix(lines[2], "    b") {
		t.Fatalf("b must stay below x (no promotion):\n%s", dump)
	}
}

// TestPromotionWithoutGuard: with only a descendant path, intermediate
// nodes are discarded and matches are promoted — the paper's more
// aggressive projection ("we only preserve node n4" for //b, Figure 3).
func TestPromotionWithoutGuard(t *testing.T) {
	src := `<q>{ for $v in //b return <hit/> }</q>`
	doc := `<a><x><b/></x><b/></a>`
	dump := dumpOf(t, src, doc, static.Options{})
	if strings.Contains(dump, "x") {
		t.Fatalf("unmatched intermediate must be discarded:\n%s", dump)
	}
	if strings.Contains(dump, "a") && !strings.Contains(dump, "b") {
		t.Fatalf("bs must be kept:\n%s", dump)
	}
	// Both b's end up as children of the root (a itself is unmatched too).
	lines := strings.Split(strings.TrimRight(dump, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want exactly the two b nodes:\n%s", dump)
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "b{r1}") {
			t.Fatalf("want promoted b{r1} at top level, got %q:\n%s", l, dump)
		}
	}
}

// TestFirstWitnessSuppression: an exists() dependency buffers only the
// first witness per context instance (the [1] predicate of Section 2).
func TestFirstWitnessSuppression(t *testing.T) {
	src := `<q>{ for $x in /bib/book return if (exists($x/price)) then <y/> else () }</q>`
	doc := `<bib><book><price>1</price><price>2</price></book><book><price>3</price></book></bib>`
	dump := dumpOf(t, src, doc, static.Options{})
	if got := strings.Count(dump, "price"); got != 2 {
		t.Fatalf("want one witness per book (2 total), got %d:\n%s", got, dump)
	}
	// Witness subtrees are not needed: the text content below price is
	// irrelevant for exists and must not be buffered.
	if strings.Contains(dump, `"1"`) {
		t.Fatalf("witness subtree must not be buffered:\n%s", dump)
	}
}

// TestCaptureAggregateVsPerNode compares the two role assignment schemes of
// Section 6 ("Aggregate Roles").
func TestCaptureAggregateVsPerNode(t *testing.T) {
	src := `<q>{ for $x in /bib/book return $x }</q>`
	doc := `<bib><book><title>t</title></book></bib>`

	// Role numbering: r1 = binding of the fresh bib loop (normalization
	// splits /bib/book), r2 = binding of $x, r3 = the dos output role.
	// Base technique: every node of the subtree carries the dos role.
	plain := dumpOf(t, src, doc, static.Options{})
	if !strings.Contains(plain, "book{r2,r3}") {
		t.Fatalf("book must carry binding+dos roles:\n%s", plain)
	}
	if !strings.Contains(plain, "title{r3}") || !strings.Contains(plain, `"t"{r3}`) {
		t.Fatalf("per-node mode must tag every subtree node with r3:\n%s", plain)
	}

	// Aggregate: only the subtree root carries the role; descendants are
	// covered implicitly.
	agg := dumpOf(t, src, doc, static.Options{AggregateRoles: true})
	if !strings.Contains(agg, "book{r2,r3}") {
		t.Fatalf("aggregate mode keeps both roles on the root:\n%s", agg)
	}
	if !strings.Contains(agg, "title{") {
		// title must be buffered but role-free.
		if !strings.Contains(agg, "title") {
			t.Fatalf("title must be buffered:\n%s", agg)
		}
	} else {
		t.Fatalf("aggregate mode must not tag descendants:\n%s", agg)
	}
}

// TestIrrelevantRegionsSkipped: tokens outside all projection paths are
// never buffered.
func TestIrrelevantRegionsSkipped(t *testing.T) {
	src := `<q>{ for $p in /site/people return $p/name }</q>`
	doc := `<site><junk><deep><stuff>xxx</stuff></deep></junk><people><name>Ann</name></people></site>`
	buf, _ := project(t, src, doc, static.Options{AggregateRoles: true})
	dump := buf.Dump()
	if strings.Contains(dump, "junk") || strings.Contains(dump, "stuff") {
		t.Fatalf("irrelevant region buffered:\n%s", dump)
	}
	// site, people, name, text = 4 nodes + root.
	if buf.Stats().LiveNodes != 5 {
		t.Fatalf("LiveNodes = %d, want 5:\n%s", buf.Stats().LiveNodes, dump)
	}
}

// TestEliminatedRolesNotAssigned: redundant-role elimination must suppress
// assignment, not just signoffs (Figure 12).
func TestEliminatedRolesNotAssigned(t *testing.T) {
	src := `<q>{ for $x in /bib/book return $x }</q>`
	doc := `<bib><book><title>t</title></book></bib>`
	dump := dumpOf(t, src, doc, static.Options{AggregateRoles: true, EliminateRedundantRoles: true})
	// The binding role of $x (r2) is eliminated (bare dos dependency), and
	// the fresh bib loop's binding role (r1) by navigation transparency, so
	// book carries only the aggregate output role r3 and bib is a skeleton.
	if !strings.Contains(dump, "book{r3}") {
		t.Fatalf("book must carry only the dos role after elimination:\n%s", dump)
	}
	if !strings.Contains(dump, "bib\n") {
		t.Fatalf("bib must be buffered role-free:\n%s", dump)
	}
}

// TestTextRoles: text() dependencies tag text nodes directly.
func TestTextRoles(t *testing.T) {
	src := `<q>{ for $n in /a/name return $n/text() }</q>`
	doc := `<a><name>Bob<sub>x</sub>more</name></a>`
	dump := dumpOf(t, src, doc, static.Options{})
	// r1/r2 are the binding roles of the (split) a and name loops; r3 is
	// the text() output role.
	if !strings.Contains(dump, `"Bob"{r3}`) || !strings.Contains(dump, `"more"{r3}`) {
		t.Fatalf("text nodes must carry the output role:\n%s", dump)
	}
	// The sub element matches nothing (text() test) and is dropped.
	if strings.Contains(dump, "sub") {
		t.Fatalf("elements must not match text():\n%s", dump)
	}
}

// --- DFA diagnostics (Figure 5, Example 1) ---

// fig5Tree builds the projection tree of Figure 5(a): /a/b/dos::node() and
// /a//b/dos::node().
func fig5Tree() *projtree.Tree {
	t := projtree.New()
	v2 := t.AddNode(t.Root, xqast.Step{Axis: xqast.Child, Test: xqast.NameTest("a")})
	v3 := t.AddNode(v2, xqast.Step{Axis: xqast.Child, Test: xqast.NameTest("b")})
	t.AddNode(v3, xqast.Step{Axis: xqast.DescendantOrSelf, Test: xqast.NodeKindTest()})
	v5 := t.AddNode(t.Root, xqast.Step{Axis: xqast.Child, Test: xqast.NameTest("a")})
	v6 := t.AddNode(v5, xqast.Step{Axis: xqast.Descendant, Test: xqast.NameTest("b")})
	t.AddNode(v6, xqast.Step{Axis: xqast.DescendantOrSelf, Test: xqast.NodeKindTest()})
	return t
}

// TestFigure5LazyDFA checks the state-to-multiset mapping of Example 1.
// Node numbering: n0=root(v1), n1=v2(/a), n2=v3(/a/b), n4=v5(/a),
// n5=v6(/a//b).
func TestFigure5LazyDFA(t *testing.T) {
	d := proj.NewDFA(fig5Tree())

	if got := d.Start.MatchesString(); got != "{n0}" {
		t.Fatalf("q0 maps to %s, want {n0}", got)
	}
	q1 := d.MatchPath("a")
	if got := q1.MatchesString(); got != "{n1, n4}" {
		t.Fatalf("q1 maps to %s, want {n1, n4} (v2 and v5)", got)
	}
	q2 := d.MatchPath("a", "a")
	if got := q2.MatchesString(); got != "{}" {
		t.Fatalf("q2 maps to %s, want {}", got)
	}
	q3 := d.MatchPath("a", "a", "b")
	if got := q3.MatchesString(); got != "{n5}" {
		t.Fatalf("q3 maps to %s, want {n5} (v6)", got)
	}
	q4 := d.MatchPath("a", "b")
	if got := q4.MatchesString(); got != "{n2, n5}" {
		t.Fatalf("q4 maps to %s, want {n2, n5} (v3 and v6)", got)
	}
}

// TestExample1Multiplicity: for the projection tree of Figure 4(b)
// (//a with .//b below), the path /a/a/b maps to the multiset {v3, v3}.
func TestExample1Multiplicity(t *testing.T) {
	tr := projtree.New()
	v2 := tr.AddNode(tr.Root, xqast.Step{Axis: xqast.Descendant, Test: xqast.NameTest("a")})
	tr.AddNode(v2, xqast.Step{Axis: xqast.Descendant, Test: xqast.NameTest("b")})

	d := proj.NewDFA(tr)
	s := d.MatchPath("a", "a", "b")
	if got := s.MatchesString(); got != "{n2, n2}" {
		t.Fatalf("path /a/a/b maps to %s, want {n2, n2} (multiplicity 2)", got)
	}
}

// TestDFAIsLazyAndCached: repeated paths reuse states.
func TestDFAIsLazyAndCached(t *testing.T) {
	d := proj.NewDFA(fig5Tree())
	if d.StateCount() != 1 {
		t.Fatalf("fresh DFA must have only the start state, got %d", d.StateCount())
	}
	a := d.MatchPath("a", "b")
	before := d.StateCount()
	b := d.MatchPath("a", "b")
	if a != b {
		t.Fatal("identical paths must reach the identical state object")
	}
	if d.StateCount() != before {
		t.Fatal("repeated paths must not materialize new states")
	}
	// Unrelated tags collapse into the empty sink state.
	sink1 := d.MatchPath("zzz")
	sink2 := d.MatchPath("a", "zzz", "k")
	if sink1.MatchesString() != "{}" || sink2.MatchesString() != "{}" {
		t.Fatal("unmatched paths must map to empty multisets")
	}
}

// TestProjectionStatsTokens: the projector counts every token it consumes.
func TestProjectionStatsTokens(t *testing.T) {
	src := `<q>{ for $b in /a/b return <x/> }</q>`
	doc := `<a><b/><c/>text</a>`
	q, _ := xqparser.Parse(src)
	n, _ := normalize.Normalize(q)
	a, err := static.Analyze(ifpush.Push(n), static.Options{})
	if err != nil {
		t.Fatal(err)
	}
	buf := buffer.New(xmlstream.NewSymTab(), len(a.Tree.Roles)-1, nil)
	p := proj.New(xmlstream.NewTokenizer(strings.NewReader(doc)), buf, a.Tree, proj.Options{})
	for {
		more, err := p.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
	}
	// <a> <b> </b> <c> </c> text </a> EOF = 8 token events.
	if p.TokensRead() != 8 {
		t.Fatalf("TokensRead = %d, want 8", p.TokensRead())
	}
	if !p.EOF() {
		t.Fatal("EOF not reported")
	}
	if !buf.Root().Finished() {
		t.Fatal("root must be finished at EOF")
	}
}
