package proj

import (
	"fmt"
	"sort"
	"strings"

	"gcx/internal/projtree"
	"gcx/internal/xqast"
)

// DFA is the lazily constructed deterministic automaton of Section 2
// (Figure 5(b)): states correspond to tag paths of the input document and
// map to multisets of projection-tree nodes (Example 1). The projector
// itself runs the per-instance NFA simulation (required for [1] predicates
// and cancellation); this instance-free DFA is the paper's formulation and
// serves diagnostics, tests, and the -explain tooling.
type DFA struct {
	tree   *projtree.Tree
	states map[string]*DFAState
	// Start is the state of the empty path "/".
	Start *DFAState
	order []*DFAState
}

// DFAState is one lazily materialized automaton state.
type DFAState struct {
	ID int
	// Matches maps projection-node IDs to their match multiplicity at the
	// current path (Example 1's multisets).
	Matches map[int]int
	// scopes maps projection-node IDs with descendant-axis children to
	// the multiplicity with which they are pending at any ancestor.
	scopes map[int]int
	trans  map[string]*DFAState
	key    string
}

// NewDFA creates the DFA for a projection tree with only the start state
// materialized.
func NewDFA(tree *projtree.Tree) *DFA {
	d := &DFA{tree: tree, states: map[string]*DFAState{}}
	matches := map[int]int{tree.Root.ID: 1}
	scopes := map[int]int{}
	if hasDescChildren(tree.Root) {
		scopes[tree.Root.ID] = 1
	}
	d.Start = d.intern(matches, scopes)
	return d
}

// StateCount returns the number of states materialized so far ("lazy"
// construction: states appear only for paths that occur in the input).
func (d *DFA) StateCount() int { return len(d.order) }

func stateKey(matches, scopes map[int]int) string {
	ids := make([]int, 0, len(matches)+len(scopes))
	for id := range matches {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var b strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&b, "m%d:%d;", id, matches[id])
	}
	ids = ids[:0]
	for id := range scopes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Fprintf(&b, "s%d:%d;", id, scopes[id])
	}
	return b.String()
}

func (d *DFA) intern(matches, scopes map[int]int) *DFAState {
	key := stateKey(matches, scopes)
	if s, ok := d.states[key]; ok {
		return s
	}
	s := &DFAState{
		ID:      len(d.order),
		Matches: matches,
		scopes:  scopes,
		trans:   map[string]*DFAState{},
		key:     key,
	}
	d.states[key] = s
	d.order = append(d.order, s)
	return s
}

// Next returns the state reached from s by reading an opening tag with the
// given name, materializing it on first use.
func (d *DFA) Next(s *DFAState, name string) *DFAState {
	if t, ok := s.trans[name]; ok {
		return t
	}
	matches := map[int]int{}
	for id, mult := range s.Matches {
		for _, c := range d.tree.Nodes[id].Children {
			if c.Step.Axis == xqast.Child && elementTestMatches(c.Step.Test, name) {
				matches[c.ID] += mult
			}
		}
	}
	for id, mult := range s.scopes {
		for _, c := range d.tree.Nodes[id].Children {
			if c.Step.Axis == xqast.Descendant && elementTestMatches(c.Step.Test, name) {
				matches[c.ID] += mult
			}
		}
	}
	scopes := make(map[int]int, len(s.scopes))
	for id, mult := range s.scopes {
		scopes[id] = mult
	}
	for id, mult := range matches {
		if hasDescChildren(d.tree.Nodes[id]) {
			scopes[id] += mult
		}
	}
	t := d.intern(matches, scopes)
	s.trans[name] = t
	return t
}

// MatchPath runs the DFA over a path of tag names from the start state and
// returns the final state.
func (d *DFA) MatchPath(names ...string) *DFAState {
	s := d.Start
	for _, n := range names {
		s = d.Next(s, n)
	}
	return s
}

// MatchesString renders a state's projection-node multiset like
// "{v3, v3, v6}", using node IDs, sorted. Empty multisets render as "{}".
func (s *DFAState) MatchesString() string {
	var ids []int
	for id, mult := range s.Matches {
		for i := 0; i < mult; i++ {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("n%d", id)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
