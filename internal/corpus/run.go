package corpus

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"gcx/internal/obs"
)

// Options parameterizes a bulk run.
type Options struct {
	// Workers is the number of concurrent evaluations (≤0: GOMAXPROCS).
	Workers int
	// Window bounds how many documents may be in flight at once —
	// dispatched (hence materialized, for stream sources) but not yet
	// emitted. Completed-but-out-of-turn results wait inside the window,
	// so Window is what bounds the reorder memory. ≤0 selects 2×Workers;
	// values below Workers+1 are raised to Workers+1 so a slow head
	// document cannot idle the whole pool.
	Window int
	// Outputs is the number of result writers per document (1 for an
	// engine, Len() for a workload). ≤0 means 1.
	Outputs int
	// MaxDocBytes fails any document whose known size exceeds it
	// (file-backed documents are never even opened). Stream sources
	// additionally enforce their own construction-time cap, which keeps
	// oversized members from being materialized at all.
	MaxDocBytes int64
	// Context cancels the run: dispatch stops, and in-flight
	// evaluations are unwound promptly (their document reads fail), so
	// workers do not outlive a timeout. Documents already handed to
	// workers are still emitted — late ones with a cancellation error
	// in their slot — then Run returns ctx.Err(); a document the
	// source was still producing at cancellation may be discarded
	// (Run never waits on a blocked source read). Nil means no
	// cancellation.
	Context context.Context
}

// Result is one document's outcome, delivered to emit in corpus order.
type Result[T any] struct {
	// Index is the document's position in corpus order, starting at 0.
	Index int
	// Name identifies the document (file path, tar member, "doc[N]").
	Name string
	// Outs holds the result bytes, one buffer per output. The buffers
	// are pooled: they are valid only during the emit call. On a failed
	// document they hold whatever was produced before the failure —
	// exactly what a solo run would have written.
	Outs []*bytes.Buffer
	// Value is the evaluation's payload (stats). On a failed document
	// it holds whatever eval returned alongside the error — partial
	// stats, mirroring the partial bytes in Outs.
	Value T
	// Err is the document's failure, nil on success. A failed document
	// never affects its siblings.
	Err error
}

// Totals summarizes a bulk run.
type Totals struct {
	Docs    int64 // documents emitted
	Failed  int64 // documents whose slot carries an error
	Workers int
	Window  int
	// PeakInFlight is the high watermark of concurrently evaluating
	// documents (≤ Workers; how much of the pool the corpus kept busy).
	PeakInFlight int
	// BusyNanos sums per-document evaluation wall time across workers;
	// WallNanos is the run's wall time. BusyNanos/(WallNanos×Workers)
	// is the pool utilization.
	BusyNanos int64
	WallNanos int64
}

// EvalFunc evaluates one document, writing result bytes to outs and
// returning a payload (typically the run's stats). It is called
// concurrently from multiple workers and must be safe for that — the
// compiled engines are, by their concurrency contract.
type EvalFunc[T any] func(in io.Reader, outs []io.Writer) (T, error)

// outBufs recycles result buffers across documents.
var outBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// cappedReader enforces MaxDocBytes while a document streams through
// the evaluating engine; exceeding it surfaces as a read error carrying
// *DocTooLargeError, which the engine's unwinding reports in that
// document's slot.
type cappedReader struct {
	r     io.Reader
	limit int64
	read  int64
	name  string
}

// ctxReader fails document reads once the run's context is done, so a
// timeout or client disconnect unwinds in-flight evaluations instead of
// waiting for them.
type ctxReader struct {
	ctx context.Context
	r   io.Reader
}

func (c *ctxReader) Read(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, fmt.Errorf("corpus: evaluation aborted: %w", err)
	}
	return c.r.Read(p)
}

func (c *cappedReader) Read(p []byte) (int, error) {
	if c.read > c.limit {
		return 0, &DocTooLargeError{Name: c.name, Limit: c.limit}
	}
	// Allow one excess byte so the overflow is detected rather than
	// masked as a short read.
	if window := c.limit + 1 - c.read; int64(len(p)) > window {
		p = p[:window]
	}
	n, err := c.r.Read(p)
	c.read += int64(n)
	if c.read > c.limit {
		return n, &DocTooLargeError{Name: c.name, Limit: c.limit}
	}
	return n, err
}

// Run evaluates every document of src across a bounded worker pool and
// delivers results to emit strictly in corpus order. Per-document
// failures (materialization or evaluation) are isolated: they arrive as
// Results with Err set and do not disturb siblings or the pool — the
// engine's error unwinding already returns the run state to a reusable
// condition.
//
// Run returns a non-nil error only for whole-corpus failures: the
// source broke mid-stream, emit returned an error (which cancels
// dispatch), or the context was canceled. In every case all documents
// dispatched before the failure are still emitted, in order.
func Run[T any](src Source, opts Options, eval EvalFunc[T], emit func(*Result[T]) error) (Totals, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	window := opts.Window
	if window <= 0 {
		window = 2 * workers
	}
	if window < workers+1 {
		window = workers + 1
	}
	outputs := opts.Outputs
	if outputs <= 0 {
		outputs = 1
	}
	parent := opts.Context
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	totals := Totals{Workers: workers, Window: window}
	start := obs.Now()

	type task struct {
		idx int
		doc Doc
		err error // materialization failure (per-document)
	}
	var (
		sem        = make(chan struct{}, window)
		tasks      = make(chan task)
		results    = make(chan *Result[T], window)
		srcErr     atomic.Pointer[error] // terminal source failure
		dispatched atomic.Int64          // tasks handed to workers
	)

	// Dispatcher: pull documents while the window has room.
	go func() {
		defer close(tasks)
		for idx := 0; ; idx++ {
			// Cancellation wins over a free window slot: without the
			// priority check, the two-way select keeps picking the
			// acquire at random while emission drains slots, dispatching
			// (and evaluating) documents for a run that is already dead.
			select {
			case <-ctx.Done():
				return
			default:
			}
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				return
			}
			doc, err := src.Next()
			if err != nil {
				var de *DocError
				if errors.As(err, &de) {
					dispatched.Add(1)
					tasks <- task{idx: idx, doc: Doc{Name: de.Name}, err: de.Err}
					continue
				}
				if err != io.EOF {
					srcErr.Store(&err)
				}
				<-sem // release the slot acquired for the doc that never came
				return
			}
			if opts.MaxDocBytes > 0 && doc.Size > opts.MaxDocBytes {
				dispatched.Add(1)
				tasks <- task{idx: idx, doc: Doc{Name: doc.Name},
					err: &DocTooLargeError{Name: doc.Name, Limit: opts.MaxDocBytes}}
				continue
			}
			dispatched.Add(1)
			tasks <- task{idx: idx, doc: doc}
		}
	}()

	// Workers: evaluate into pooled buffers, results go to the reorder
	// stage. The results channel holds `window` slots, which is an upper
	// bound on dispatched-but-unemitted documents, so workers never
	// block on it — backpressure comes solely from the window.
	var (
		wg           sync.WaitGroup
		busy         atomic.Int64
		inFlight     atomic.Int64
		peakInFlight atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			writers := make([]io.Writer, outputs)
			for tk := range tasks {
				res := &Result[T]{Index: tk.idx, Name: tk.doc.Name, Err: tk.err}
				if tk.err == nil {
					cur := inFlight.Add(1)
					for {
						p := peakInFlight.Load()
						if cur <= p || peakInFlight.CompareAndSwap(p, cur) {
							break
						}
					}
					t0 := obs.Now()
					res.Outs = make([]*bytes.Buffer, outputs)
					for i := range res.Outs {
						res.Outs[i] = outBufs.Get().(*bytes.Buffer)
						res.Outs[i].Reset()
						writers[i] = res.Outs[i]
					}
					in, err := tk.doc.Open()
					if err != nil {
						res.Err = err
					} else {
						var reader io.Reader = in
						if opts.MaxDocBytes > 0 {
							// Read-time backstop for documents whose size
							// is unknown up front (a file that stat could
							// not size): the cap holds no matter what the
							// source reported.
							reader = &cappedReader{r: in, limit: opts.MaxDocBytes, name: tk.doc.Name}
						}
						// Cancellation must reach IN-FLIGHT evaluations,
						// not just dispatch: documents are materialized,
						// so without this check a slow evaluation would
						// hold its worker past a timeout (the engine
						// unwinds on the read error, as with any failing
						// stream).
						reader = &ctxReader{ctx: ctx, r: reader}
						res.Value, res.Err = eval(reader, writers)
						in.Close()
					}
					busy.Add(obs.Now() - t0)
					inFlight.Add(-1)
				}
				results <- res
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Reorder stage (caller's goroutine): hold out-of-turn results,
	// emit in-order runs, recycle buffers, free window slots. On
	// cancellation the loop keeps receiving only until every DISPATCHED
	// document has arrived (in-flight evaluations unwind fast — their
	// reads fail), so a dispatcher stuck in a stalled source read can
	// never hang Run; any straggler is handed to a background drainer.
	var (
		pending  = make(map[int]*Result[T])
		nextIdx  int
		received int64
		emitErr  error
		canceled bool
		done     = ctx.Done()
	)
	for {
		if canceled && received == dispatched.Load() {
			break
		}
		select {
		case res, ok := <-results:
			if !ok {
				done = nil
				goto drained
			}
			received++
			pending[res.Index] = res
			for {
				r, ok := pending[nextIdx]
				if !ok {
					break
				}
				delete(pending, nextIdx)
				nextIdx++
				if emitErr == nil {
					if err := emit(r); err != nil {
						emitErr = err
						cancel() // stop dispatching; drain what is in flight
					}
					totals.Docs++
					if r.Err != nil {
						totals.Failed++
					}
				}
				for _, b := range r.Outs {
					outBufs.Put(b)
				}
				<-sem
			}
		case <-done:
			canceled = true
			done = nil // receive-only from here; the loop head decides when to stop
		}
	}
	// Canceled exit: a straggler may still arrive if the dispatcher was
	// caught between counting and handing off; recycle it whenever the
	// stalled read finally returns.
	go func() {
		for res := range results {
			for _, b := range res.Outs {
				outBufs.Put(b)
			}
			<-sem
		}
	}()

drained:
	totals.PeakInFlight = int(peakInFlight.Load())
	totals.BusyNanos = busy.Load()
	totals.WallNanos = obs.Now() - start
	srcFailure := srcErr.Load()
	switch {
	case emitErr != nil:
		return totals, emitErr
	case srcFailure != nil:
		return totals, *srcFailure
	default:
		return totals, parent.Err()
	}
}
