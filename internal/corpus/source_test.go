package corpus

import (
	"archive/tar"
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTarHugeClaimedSize: a crafted header claiming an absurd member
// size must fail with a clean read error, not an allocation crash —
// hdr.Size is untrusted input.
func TestTarHugeClaimedSize(t *testing.T) {
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	if err := tw.WriteHeader(&tar.Header{Name: "liar.xml", Mode: 0o644, Size: 1 << 50}); err != nil {
		t.Fatal(err)
	}
	// Deliberately no body and no Close: the archive ends mid-member.
	src := Tar(bytes.NewReader(buf.Bytes()), 0)
	_, err := src.Next()
	if err == nil || err == io.EOF {
		t.Fatalf("got %v, want a read error for the lying member", err)
	}
	if !strings.Contains(err.Error(), "liar.xml") {
		t.Errorf("error does not name the member: %v", err)
	}
}

// TestTarMemberLargerThanHint: a member bigger than the pre-allocation
// hint must still be read whole through the growth loop.
func TestTarMemberLargerThanHint(t *testing.T) {
	payload := bytes.Repeat([]byte("<x>gcx</x>"), (maxTarPrealloc/10)+1000)
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	if err := tw.WriteHeader(&tar.Header{Name: "big.xml", Mode: 0o644, Size: int64(len(payload))}); err != nil {
		t.Fatal(err)
	}
	if _, err := tw.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	src := Tar(bytes.NewReader(buf.Bytes()), 0)
	doc, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	rc, err := doc.Open()
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("member round-trip: %d bytes (want %d), err %v", len(got), len(payload), err)
	}
}

// TestFilesGlobFallsBackToLiteral: a file whose NAME contains glob
// metacharacters stays reachable (shell nullglob-off semantics).
func TestFilesGlobFallsBackToLiteral(t *testing.T) {
	dir := t.TempDir()
	weird := filepath.Join(dir, "doc[1].xml")
	if err := os.WriteFile(weird, []byte("<a/>"), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := Files(weird)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	rc, err := doc.Open()
	if err != nil {
		t.Fatalf("literal fallback did not reach the file: %v", err)
	}
	data, _ := io.ReadAll(rc)
	rc.Close()
	if string(data) != "<a/>" {
		t.Fatalf("got %q", data)
	}
}
