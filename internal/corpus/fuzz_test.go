package corpus

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"gcx/internal/xmlstream"
)

// FuzzSplit drives the concatenated-document scanner with arbitrary
// bytes and checks its structural contract:
//
//  1. it terminates without panicking, and every returned document is
//     accounted against the input (no invented bytes);
//  2. splitting is stable: re-splitting the concatenation of the
//     emitted documents yields the same documents (the splitter's
//     boundaries are self-consistent, so a bulk run over its own
//     output partitions identically);
//  3. every emitted document can be fed to the engine's tokenizer,
//     which either tokenizes it or reports a syntax error — never
//     hangs or panics (per-document failures stay per-document).
func FuzzSplit(f *testing.F) {
	f.Add([]byte("<a><b>x</b></a><c/>"))
	f.Add([]byte(`<?xml version="1.0"?><a/><?xml version="1.0"?><b/>`))
	f.Add([]byte("<a/><!-- between --><?pi?><b/>"))
	f.Add([]byte("<!DOCTYPE a [<!ELEMENT a ANY>]><a>t</a><b>u</b>"))
	f.Add([]byte("<a/><b><truncated>"))
	f.Add([]byte("\xEF\xBB\xBF<a/>\xEF\xBB\xBF<b/>"))
	f.Add([]byte("<a><![CDATA[x]]]]><![CDATA[>]]></a><b/>"))
	f.Add([]byte(`<a x="1>2" y='</a>'><c/></a><b/>`))
	f.Add([]byte("<a><!-- ---></a><b/>"))
	f.Add([]byte("<a/>junk<b/>"))
	f.Add([]byte("<q1>text&amp;more</q1>\n<q2 attr=\"v\"/>"))
	f.Add([]byte(`<!DOCTYPE a [<!ENTITY lt "<"><!-- don't --><?p '> ?>]><a/><b/>`))

	f.Fuzz(func(t *testing.T, data []byte) {
		docs, err := drainSplitter(data)
		if err != nil {
			t.Fatalf("terminal error on in-memory input: %v", err)
		}
		var total int
		for _, d := range docs {
			total += len(d)
		}
		if total > len(data) {
			t.Fatalf("emitted %d bytes from %d input bytes", total, len(data))
		}

		// Stability: split(join(split(x))) == split(x).
		joined := bytes.Join(docs, nil)
		again, err := drainSplitter(joined)
		if err != nil {
			t.Fatalf("terminal error on re-split: %v", err)
		}
		if len(again) != len(docs) {
			t.Fatalf("re-split changed the document count: %d -> %d\ninput: %q\ndocs: %q\nagain: %q",
				len(docs), len(again), data, docs, again)
		}
		for i := range docs {
			if !bytes.Equal(docs[i], again[i]) {
				t.Fatalf("re-split changed doc %d:\n was %q\n now %q", i, docs[i], again[i])
			}
		}

		// Every document must be safely tokenizable (success or syntax
		// error, bounded work).
		for _, d := range docs {
			tok := xmlstream.NewTokenizer(bytes.NewReader(d))
			for {
				tk, err := tok.Next()
				if err != nil || tk.Kind == xmlstream.EOF {
					break
				}
			}
		}
	})
}

// drainSplitter returns all documents of data; per-document size-cap
// errors cannot occur (no cap is set), so any non-EOF error is
// terminal and unexpected for an in-memory reader.
func drainSplitter(data []byte) ([][]byte, error) {
	sp := NewSplitter(strings.NewReader(string(data)))
	var docs [][]byte
	for {
		d, err := sp.Next(nil)
		if err == io.EOF {
			return docs, nil
		}
		if err != nil {
			var tooBig *DocTooLargeError
			if errors.As(err, &tooBig) {
				docs = append(docs, nil)
				continue
			}
			return docs, err
		}
		docs = append(docs, append([]byte(nil), d...))
	}
}
