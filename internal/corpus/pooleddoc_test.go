package corpus

import "testing"

// Pooled document storage must be truncated on release — the pool must
// not serve readable bytes of a previous document as live length — and
// oversized buffers must not be retained at all.
func TestPooledDocResetBoundsRetention(t *testing.T) {
	pd := new(pooledDoc)
	pd.data = append(pd.data[:0], make([]byte, maxRetainedDocBytes+1)...)
	pd.Reset()
	if pd.data != nil {
		t.Fatalf("oversized storage retained: cap=%d", cap(pd.data))
	}

	pd.data = append(pd.data, "hello"...)
	c := cap(pd.data)
	pd.Reset()
	if len(pd.data) != 0 {
		t.Fatalf("storage not truncated: len=%d", len(pd.data))
	}
	if cap(pd.data) != c {
		t.Fatalf("bounded storage not retained: cap %d -> %d", c, cap(pd.data))
	}
	if n, _ := pd.Reader.Read(make([]byte, 1)); n != 0 {
		t.Fatal("embedded reader still serves bytes after Reset")
	}
}
