package corpus

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// sliceSource serves in-memory documents and records how far dispatch
// has advanced (for window-bound assertions).
type sliceSource struct {
	docs       []string
	next       int
	dispatched atomic.Int64
}

func (s *sliceSource) Next() (Doc, error) {
	if s.next >= len(s.docs) {
		return Doc{}, io.EOF
	}
	data := s.docs[s.next]
	name := fmt.Sprintf("doc[%d]", s.next)
	s.next++
	s.dispatched.Add(1)
	return Doc{
		Name: name,
		Size: int64(len(data)),
		Open: func() (io.ReadCloser, error) {
			return io.NopCloser(strings.NewReader(data)), nil
		},
	}, nil
}

func (s *sliceSource) Close() error { return nil }

// echoEval copies the input to the first output.
func echoEval(in io.Reader, outs []io.Writer) (int, error) {
	n, err := io.Copy(outs[0], in)
	return int(n), err
}

func TestRunEmitsInCorpusOrder(t *testing.T) {
	docs := make([]string, 50)
	for i := range docs {
		docs[i] = fmt.Sprintf("<d>%d</d>", i)
	}
	// A jittering evaluator forces out-of-order completion.
	eval := func(in io.Reader, outs []io.Writer) (int, error) {
		n, err := echoEval(in, outs)
		if err == nil && n%7 == 0 {
			time.Sleep(time.Duration(n%5) * time.Millisecond)
		}
		return n, err
	}
	var got []string
	totals, err := Run(&sliceSource{docs: docs}, Options{Workers: 8}, eval,
		func(r *Result[int]) error {
			if r.Index != len(got) {
				t.Errorf("emitted index %d at position %d", r.Index, len(got))
			}
			got = append(got, r.Outs[0].String())
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if totals.Docs != int64(len(docs)) || totals.Failed != 0 {
		t.Fatalf("totals: %+v", totals)
	}
	for i, d := range docs {
		if got[i] != d {
			t.Errorf("doc %d: got %q, want %q", i, got[i], d)
		}
	}
	if totals.PeakInFlight > totals.Workers {
		t.Errorf("peak in-flight %d exceeds %d workers", totals.PeakInFlight, totals.Workers)
	}
}

func TestRunWindowBoundsDispatch(t *testing.T) {
	docs := make([]string, 40)
	for i := range docs {
		docs[i] = "<d/>"
	}
	src := &sliceSource{docs: docs}
	release := make(chan struct{})
	var once sync.Once
	const workers, window = 3, 5
	go func() {
		// Give the dispatcher every chance to overrun while emission is
		// stalled on the first document, then check it could not.
		time.Sleep(100 * time.Millisecond)
		if d := src.dispatched.Load(); d > window {
			t.Errorf("dispatched %d docs with none emitted (window %d)", d, window)
		}
		close(release)
	}()
	var emitted atomic.Int64
	_, err := Run(src, Options{Workers: workers, Window: window},
		func(in io.Reader, outs []io.Writer) (int, error) {
			return echoEval(in, outs)
		},
		func(r *Result[int]) error {
			// Stall on the first document: dispatch must stop once the
			// window fills, no matter how fast the workers are.
			once.Do(func() { <-release })
			n := emitted.Add(1)
			if d := src.dispatched.Load(); d > n-1+window {
				t.Errorf("dispatched %d docs with only %d emitted (window %d)", d, n-1, window)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunIsolatesDocFailures(t *testing.T) {
	docs := []string{"<a/>", "FAIL", "<c/>", "FAIL", "<e/>"}
	boom := errors.New("poison")
	eval := func(in io.Reader, outs []io.Writer) (int, error) {
		data, _ := io.ReadAll(in)
		if string(data) == "FAIL" {
			outs[0].Write([]byte("partial"))
			return 0, boom
		}
		outs[0].Write(data)
		return len(data), nil
	}
	var results []*struct {
		out string
		err error
	}
	totals, err := Run(&sliceSource{docs: docs}, Options{Workers: 4}, eval,
		func(r *Result[int]) error {
			results = append(results, &struct {
				out string
				err error
			}{r.Outs[0].String(), r.Err})
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if totals.Docs != 5 || totals.Failed != 2 {
		t.Fatalf("totals: %+v", totals)
	}
	for i, want := range []struct {
		out string
		bad bool
	}{{"<a/>", false}, {"partial", true}, {"<c/>", false}, {"partial", true}, {"<e/>", false}} {
		if results[i].out != want.out {
			t.Errorf("doc %d output %q, want %q", i, results[i].out, want.out)
		}
		if (results[i].err != nil) != want.bad {
			t.Errorf("doc %d err %v, want failure=%v", i, results[i].err, want.bad)
		}
		if want.bad && !errors.Is(results[i].err, boom) {
			t.Errorf("doc %d err %v, want %v", i, results[i].err, boom)
		}
	}
}

func TestRunEmitErrorCancels(t *testing.T) {
	docs := make([]string, 100)
	for i := range docs {
		docs[i] = "<d/>"
	}
	src := &sliceSource{docs: docs}
	stop := errors.New("client gone")
	var emitted int
	_, err := Run(src, Options{Workers: 4}, echoEval, func(r *Result[int]) error {
		emitted++
		if emitted == 3 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("got %v, want emit error", err)
	}
	if d := src.dispatched.Load(); d == int64(len(docs)) {
		t.Errorf("dispatch was not cancelled: all %d docs dispatched", d)
	}
}

func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	docs := make([]string, 100)
	for i := range docs {
		docs[i] = "<d/>"
	}
	var emitted int
	_, err := Run(&sliceSource{docs: docs}, Options{Workers: 2, Context: ctx}, echoEval,
		func(r *Result[int]) error {
			emitted++
			if emitted == 5 {
				cancel()
			}
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestRunEmitErrorWithStalledSource: an emit failure (client gone, pipe
// closed) must return from Run even while the dispatcher is blocked
// inside a stalled source read — the dispatched documents are drained
// and the stuck goroutine is abandoned, not waited for.
func TestRunEmitErrorWithStalledSource(t *testing.T) {
	src := &stalledSource{serve: 3, stall: make(chan struct{})}
	defer close(src.stall)
	stop := errors.New("sink gone")
	type outcome struct {
		totals Totals
		err    error
	}
	res := make(chan outcome, 1)
	go func() {
		totals, err := Run(src, Options{Workers: 2}, echoEval, func(r *Result[int]) error {
			return stop
		})
		res <- outcome{totals, err}
	}()
	select {
	case o := <-res:
		if !errors.Is(o.err, stop) {
			t.Fatalf("got %v, want the emit error", o.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run hung on a stalled source after the emit error")
	}
}

// stalledSource serves a few documents, then blocks in Next forever
// (until the test closes stall).
type stalledSource struct {
	serve int
	next  int
	stall chan struct{}
}

func (s *stalledSource) Next() (Doc, error) {
	if s.next >= s.serve {
		<-s.stall
		return Doc{}, io.EOF
	}
	s.next++
	return Doc{
		Name: fmt.Sprintf("doc[%d]", s.next-1),
		Size: 4,
		Open: func() (io.ReadCloser, error) { return io.NopCloser(strings.NewReader("<d/>")), nil },
	}, nil
}

func (s *stalledSource) Close() error { return nil }

// TestRunCancelUnwindsInFlightEvaluations: cancellation must reach a
// document mid-evaluation (its reads fail), not just stop dispatch — a
// slow document would otherwise hold its worker past a server timeout.
func TestRunCancelUnwindsInFlightEvaluations(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 4)
	var once sync.Once
	slowEval := func(in io.Reader, outs []io.Writer) (int, error) {
		once.Do(func() { close(started) })
		// Trickle-read so every iteration passes through the run's
		// ctx-checking reader.
		buf := make([]byte, 1)
		for {
			_, err := in.Read(buf)
			if err == io.EOF {
				return 0, nil
			}
			if err != nil {
				return 0, err
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	go func() {
		<-started
		cancel()
	}()
	docs := []string{"<d>" + strings.Repeat("x", 10000) + "</d>"}
	var docErr error
	_, err := Run(&sliceSource{docs: docs}, Options{Workers: 1, Context: ctx}, slowEval,
		func(r *Result[int]) error {
			docErr = r.Err
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("run error %v, want context.Canceled", err)
	}
	if !errors.Is(docErr, context.Canceled) {
		t.Fatalf("in-flight doc error %v, want a cancellation unwind", docErr)
	}
}

func TestRunSourceErrorIsTerminalAfterDrain(t *testing.T) {
	boom := errors.New("stream broke")
	src := &failingSource{good: 5, err: boom}
	var emitted int
	totals, err := Run(src, Options{Workers: 3}, echoEval, func(r *Result[int]) error {
		if r.Err != nil {
			t.Errorf("doc %d unexpectedly failed: %v", r.Index, r.Err)
		}
		emitted++
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want source error", err)
	}
	if emitted != 5 || totals.Docs != 5 {
		t.Errorf("emitted %d docs before the failure, want 5", emitted)
	}
}

type failingSource struct {
	good int
	next int
	err  error
}

func (f *failingSource) Next() (Doc, error) {
	if f.next >= f.good {
		return Doc{}, f.err
	}
	f.next++
	return Doc{
		Name: fmt.Sprintf("doc[%d]", f.next-1),
		Size: 4,
		Open: func() (io.ReadCloser, error) { return io.NopCloser(strings.NewReader("<d/>")), nil },
	}, nil
}

func (f *failingSource) Close() error { return nil }

func TestRunDocErrorFromSource(t *testing.T) {
	// A *DocError from the source (oversized tar member, oversized
	// split document) fails its slot but not the corpus.
	src := &docErrSource{}
	var errsAt []int
	totals, err := Run(src, Options{Workers: 2}, echoEval, func(r *Result[int]) error {
		if r.Err != nil {
			errsAt = append(errsAt, r.Index)
			var tooBig *DocTooLargeError
			if !errors.As(r.Err, &tooBig) {
				t.Errorf("doc %d: err %v, want DocTooLargeError", r.Index, r.Err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if totals.Docs != 3 || totals.Failed != 1 {
		t.Fatalf("totals: %+v", totals)
	}
	if len(errsAt) != 1 || errsAt[0] != 1 {
		t.Fatalf("failures at %v, want [1]", errsAt)
	}
}

type docErrSource struct{ next int }

func (d *docErrSource) Next() (Doc, error) {
	defer func() { d.next++ }()
	switch d.next {
	case 0, 2:
		return Doc{
			Name: fmt.Sprintf("doc[%d]", d.next),
			Size: 4,
			Open: func() (io.ReadCloser, error) { return io.NopCloser(strings.NewReader("<d/>")), nil },
		}, nil
	case 1:
		return Doc{}, &DocError{Name: "doc[1]", Err: &DocTooLargeError{Name: "doc[1]", Limit: 1}}
	default:
		return Doc{}, io.EOF
	}
}

func (d *docErrSource) Close() error { return nil }
