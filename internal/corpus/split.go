package corpus

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"gcx/internal/xmlstream"
)

// ErrTooLarge is the sentinel every size-limit failure matches under
// errors.Is. It lives here (not in package gcx) because the concrete
// limit errors are produced at this layer; the public API re-exports it
// as gcx.ErrTooLarge.
var ErrTooLarge = errors.New("input exceeds a configured size limit")

// Splitter scans a concatenated stream of top-level XML documents and
// yields the bytes of each document in turn. It is the streaming front
// of the Concat source: one sequential pass over the input, no lookahead
// beyond the read buffer, and per-call memory bounded by the size of the
// single document being accumulated.
//
// The splitter does NOT validate documents — it only finds boundaries.
// It tracks exactly the XML surface structure needed to know when the
// root element of the current document closes: tags (with quoted
// attribute values, which may contain '>'), comments, processing
// instructions and XML declarations, CDATA sections (']]>' edges), and
// DOCTYPE/markup declarations (nested '<'/'>', mirroring the
// tokenizer's declaration skipping). Anything malformed is passed
// through verbatim and left for the tokenizer of the evaluating engine
// to diagnose, so a bulk run reports the same per-document error a solo
// run would.
//
// Between documents, whitespace and UTF-8 byte-order marks are
// discarded; prologs (XML declarations, comments, PIs, DOCTYPE) are
// attributed to the FOLLOWING document. Trailing whitespace, comments,
// PIs and declarations after the last root element are discarded —
// which also means a stream whose final (or only) "document" is a
// prolog with no root yields no document for it: at EOF a bare prolog
// is indistinguishable from trailing misc, an inherent ambiguity of
// framing by content (archives and file lists frame externally and do
// not share it). A stream that ends mid-document — the root's start
// tag arrived — yields the truncated tail as a final document (its
// tokenization error then lands in that document's slot).
type Splitter struct {
	r   io.Reader
	buf []byte
	pos int
	n   int
	err error // sticky read error (io.EOF included)
	max int64 // per-document byte cap (0 = unlimited)

	// idx is the structural-byte index over buf[:n] (see
	// xmlstream.StructIndex), rebuilt whenever the window refills or is
	// compacted. Interior runs of text, tags, quoted values, and
	// declarations hop its candidates instead of probing with
	// IndexByte/IndexAny per run; opaque interiors (comments, PIs,
	// CDATA) keep IndexByte because their sentinels ('-', '?', ']') are
	// not structural bytes.
	idx xmlstream.StructIndex
}

// NewSplitter returns a splitter reading the concatenated stream from r.
func NewSplitter(r io.Reader) *Splitter {
	return &Splitter{r: r, buf: make([]byte, 64<<10)}
}

// SetMaxDocBytes caps single-document size. A document growing past the
// cap is scanned to its boundary (bytes discarded, memory stays bounded)
// and reported as a *DocTooLargeError, so an oversized member fails
// alone while its siblings evaluate normally.
func (s *Splitter) SetMaxDocBytes(n int64) { s.max = n }

// DocTooLargeError reports a document that exceeded a per-document byte
// cap. It is a per-document failure: the source it came from continues
// with the following documents.
type DocTooLargeError struct {
	Name  string
	Limit int64
}

func (e *DocTooLargeError) Error() string {
	return fmt.Sprintf("corpus: document %s exceeds the per-document limit of %d bytes", e.Name, e.Limit)
}

// Is makes every per-document size failure match the ErrTooLarge
// sentinel, so callers classify with errors.Is instead of string
// matching.
func (e *DocTooLargeError) Is(target error) bool { return target == ErrTooLarge }

// splitter scan states.
const (
	spText        = iota // character data (inside or outside the root)
	spLT                 // just consumed '<'
	spBang               // "<!"
	spBangSeq            // matching the tail of "<!--" or "<![CDATA["
	spComment            // inside a comment, matching "-->"
	spPI                 // inside a PI / XML declaration, matching "?>"
	spCDATA              // inside CDATA, matching "]]>"
	spDecl               // inside a DOCTYPE/markup declaration, depth-counted
	spDeclQuote          // inside a quoted literal of a declaration
	spDeclComment        // inside a comment within an internal subset
	spDeclPI             // inside a PI within an internal subset
	spTag                // inside a start or end tag
	spTagQuote           // inside a quoted attribute value
)

var (
	seqComment = "-"      // after "<!-": one more '-' completes "<!--"
	seqCDATA   = "CDATA[" // after "<![": the rest of "<![CDATA["
)

// Next scans the next document and returns its bytes appended to
// dst[:0] (pass a recycled slice to avoid allocation). At the end of
// the stream it returns (nil, io.EOF). A *DocTooLargeError is
// per-document: the stream stays usable and the following call returns
// the next document. Any other error is terminal (the underlying reader
// failed; boundaries past the failure cannot be trusted).
func (s *Splitter) Next(dst []byte) ([]byte, error) {
	dst = dst[:0]
	var (
		state         = spText
		rootSeen      bool   // a real element tag was completed
		sawJunk       bool   // non-whitespace character data before any root
		depth         int    // open element depth
		closeTag      bool   // current tag is </...>
		prevSlash     bool   // last in-tag byte was '/' (self-closing detection)
		quote         byte   // active attribute quote
		seq           string // spBangSeq target
		seqPos        int
		commentDashes int  // consecutive '-' seen in spComment
		piQuestion    bool // last spPI byte was '?'
		cdataBrackets int  // consecutive ']' seen in spCDATA
		declDepth     int
		declPfx       int  // progress through "<!--" inside a declaration
		started       bool // first document byte appended
		discarding    bool // over the size cap: keep scanning, stop appending
		total         int64
	)

	// keep appends c (and later, bulk runs) to dst unless the size cap
	// tripped, in which case the document is scanned but dropped.
	keep := func(run []byte) {
		if discarding {
			return
		}
		total += int64(len(run))
		if s.max > 0 && total > s.max {
			discarding = true
			dst = dst[:0]
			return
		}
		dst = append(dst, run...)
	}

	// skipTo bulk-consumes the run of bytes strictly before the next
	// sentinel, mirroring the tokenizer's opaque-region scanning:
	// interior bytes of comments, PIs, and CDATA cannot change the
	// scanner state, and their sentinels ('-', '?', ']') are not
	// structural bytes, so whole runs move with one IndexByte call (no
	// sentinel in the window = the whole window is interior).
	skipTo := func(stop byte) {
		if i := bytes.IndexByte(s.buf[s.pos:s.n], stop); i != 0 {
			run := s.buf[s.pos:s.n]
			if i > 0 {
				run = run[:i]
			}
			s.pos += len(run)
			keep(run)
		}
	}

	// hopTo consumes the run strictly before the next occurrence of stop
	// by hopping the structural index, mirroring the tokenizer's
	// index-driven fast paths. Candidates for other structural bytes en
	// route are interior content in the calling state (a '>' in
	// character data, a '<' or the other quote inside a value) and cost
	// one dispatch each. No stop in the window = the whole window is
	// interior.
	hopTo := func(stop byte) {
		start := s.pos
		for p := start; ; {
			i := s.idx.Next(p)
			if i < 0 {
				s.pos = s.n
				keep(s.buf[start:s.n])
				return
			}
			if s.buf[i] == stop {
				s.pos = i
				keep(s.buf[start:i])
				return
			}
			p = i + 1
		}
	}

	// hopTag consumes the in-tag run up to the next quote or '>'
	// (structural candidates; '<' and '&' inside a tag are content for
	// the splitter) and recovers the '/' tracking the per-byte stepper
	// kept: '/' only matters as the byte immediately before '>', so the
	// run's last byte determines prevSlash, and an empty run carries the
	// previous value (e.g. the '/' consumed per-byte just before).
	hopTag := func() {
		start := s.pos
		for p := start; ; {
			i := s.idx.Next(p)
			if i < 0 {
				i = s.n
			} else if c := s.buf[i]; c != '"' && c != '\'' && c != '>' {
				p = i + 1
				continue
			}
			if i > start {
				s.pos = i
				keep(s.buf[start:i])
				prevSlash = s.buf[i-1] == '/'
			}
			return
		}
	}

	// hopDecl consumes the declaration-interior run up to the next
	// bracket or quote opener — all four stops are structural, so this
	// is a pure index hop ('&' is the only dispatch-skipped candidate).
	hopDecl := func() {
		start := s.pos
		for p := start; ; {
			i := s.idx.Next(p)
			if i < 0 {
				i = s.n
			} else if s.buf[i] == '&' {
				p = i + 1
				continue
			}
			if i > start {
				s.pos = i
				keep(s.buf[start:i])
			}
			return
		}
	}

	for {
		if s.pos >= s.n && !s.fill() {
			// End of input (or read error).
			if s.err != io.EOF {
				return nil, s.err
			}
			if discarding {
				return nil, &DocTooLargeError{Name: "<stream>", Limit: s.max}
			}
			if !started || (!rootSeen && !sawJunk && state == spText) {
				// Nothing, or only trailing misc (comments/PIs/decls and
				// whitespace): clean end of the corpus.
				return nil, io.EOF
			}
			// Truncated final document: hand it to the engine verbatim.
			return dst, nil
		}
		c := s.buf[s.pos]

		// Inter-document skipping: before the first kept byte, drop
		// whitespace and UTF-8 BOMs, so a boundary like
		// "</a>\n\xEF\xBB\xBF<?xml..." starts the next document at its
		// prolog.
		if !started {
			if isSpaceByte(c) {
				s.pos++
				continue
			}
			if c == 0xEF && s.skipBOM() {
				continue
			}
			started = true
		}

		s.pos++
		keep(s.buf[s.pos-1 : s.pos])

		switch state {
		case spText:
			if c == '<' {
				state = spLT
				break
			}
			if !rootSeen {
				// Pre-root character data: per-byte so junk (which the
				// engine must see and reject) is never silently dropped
				// as trailing whitespace.
				if !isSpaceByte(c) {
					sawJunk = true
				}
				break
			}
			// Inside the document, only '<' changes the state: bulk-copy
			// the rest of the character-data run.
			hopTo('<')
		case spLT:
			switch {
			case c == '!':
				state = spBang
			case c == '?':
				state, piQuestion = spPI, false
			case c == '/':
				state, closeTag, prevSlash, quote = spTag, true, false, 0
			case isNameStartByte(c):
				state, closeTag, prevSlash, quote = spTag, false, false, 0
			default:
				// "<" followed by junk: not markup the tokenizer would
				// accept; treat as text and let the engine report it.
				state = spText
				if !rootSeen {
					sawJunk = true
				}
			}
		case spBang:
			switch c {
			case '-':
				state, seq, seqPos = spBangSeq, seqComment, 0
			case '[':
				state, seq, seqPos = spBangSeq, seqCDATA, 0
			case '>':
				state = spText // empty declaration "<!>"
			default:
				state, declDepth, declPfx = spDecl, 1, 0
			}
		case spBangSeq:
			switch {
			case c == seq[seqPos]:
				seqPos++
				if seqPos == len(seq) {
					if seq == seqComment {
						state, commentDashes = spComment, 0
					} else {
						state, cdataBrackets = spCDATA, 0
					}
				}
			case c == '>':
				state = spText // malformed ("<!->"); engine will complain
			default:
				// Not a comment or CDATA after all: scan as declaration.
				state, declDepth, declPfx = spDecl, 1, 0
			}
		case spComment:
			switch {
			case c == '-':
				commentDashes++
			case c == '>' && commentDashes >= 2:
				state = spText
			default:
				commentDashes = 0
				skipTo('-') // interior run: nothing before a dash matters
			}
		case spPI:
			if c == '>' && piQuestion {
				state = spText
			} else {
				piQuestion = c == '?'
				if !piQuestion {
					skipTo('?')
				}
			}
		case spCDATA:
			switch {
			case c == ']':
				cdataBrackets++
			case c == '>' && cdataBrackets >= 2:
				state = spText
			default:
				cdataBrackets = 0
				skipTo(']')
			}
		case spDecl:
			// Quoted literals, comments, and PIs inside a DOCTYPE
			// internal subset may legally contain '<', '>', and quote
			// characters; all three are opaque to the nesting count
			// (mirrors the tokenizer's declaration skipping). declPfx
			// tracks progress through "<!--" (1='<', 2='<!', 3='<!-').
			switch {
			case declPfx == 1 && c == '?':
				declPfx = 0
				declDepth-- // undo the '<' that started the PI
				state, piQuestion = spDeclPI, false
			case declPfx == 3 && c == '-':
				declPfx = 0
				declDepth-- // undo the '<' that started the comment
				state, commentDashes = spDeclComment, 0
			default:
				switch {
				case c == '<':
					declPfx = 1
				case declPfx == 1 && c == '!':
					declPfx = 2
				case declPfx == 2 && c == '-':
					declPfx = 3
				default:
					declPfx = 0
				}
				switch c {
				case '"', '\'':
					state, quote = spDeclQuote, c
				case '<':
					declDepth++
				case '>':
					declDepth--
					if declDepth == 0 {
						state = spText
					}
				}
			}
			if state == spDecl && declPfx == 0 {
				// Outside any "<!--"/"<?" prefix, only brackets and quote
				// openers matter: hop the run to the next one.
				hopDecl()
			}
		case spDeclQuote:
			if c == quote {
				state = spDecl
			} else {
				hopTo(quote)
			}
		case spDeclComment:
			switch {
			case c == '-':
				commentDashes++
			case c == '>' && commentDashes >= 2:
				state = spDecl
			default:
				commentDashes = 0
				skipTo('-')
			}
		case spDeclPI:
			if c == '>' && piQuestion {
				state = spDecl
			} else {
				piQuestion = c == '?'
				if !piQuestion {
					skipTo('?')
				}
			}
		case spTagQuote:
			if c == quote {
				state = spTag
			} else {
				hopTo(quote)
			}
		case spTag:
			switch {
			case c == '"' || c == '\'':
				state, quote = spTagQuote, c
				prevSlash = false
			case c == '/':
				prevSlash = true
			case c == '>':
				state = spText
				rootSeen = true
				switch {
				case closeTag:
					depth--
				case prevSlash:
					// self-closing: depth unchanged
				default:
					depth++
				}
				if depth <= 0 {
					// Root element closed: the document ends here.
					if discarding {
						return nil, &DocTooLargeError{Name: "<stream>", Limit: s.max}
					}
					return dst, nil
				}
			default:
				prevSlash = false
			}
			if state == spTag {
				// Names, attribute names, '=' and spaces: hop to the next
				// byte that can end the tag or open a quote, recovering
				// the self-closing '/' from the run's tail.
				hopTag()
			}
		}
	}
}

// skipBOM consumes a UTF-8 BOM if the next three bytes are EF BB BF.
// Called with s.buf[s.pos] == 0xEF.
func (s *Splitter) skipBOM() bool {
	// Make three bytes visible (compact + refill at the buffer edge).
	for s.n-s.pos < 3 {
		if !s.fillMore() {
			return false
		}
	}
	if s.buf[s.pos+1] == 0xBB && s.buf[s.pos+2] == 0xBF {
		s.pos += 3
		return true
	}
	return false
}

// fill makes at least one unread byte available.
func (s *Splitter) fill() bool {
	if s.pos < s.n {
		return true
	}
	if s.err != nil {
		return false
	}
	s.pos, s.n = 0, 0
	for {
		n, err := s.r.Read(s.buf)
		if n > 0 {
			s.n = n
			if err != nil {
				s.err = err
			}
			s.idx.Build(s.buf[:s.n])
			return true
		}
		if err != nil {
			s.err = err
			return false
		}
	}
}

// fillMore grows the unread window without consuming, for multi-byte
// lookahead at the buffer edge. Like fill, it retries the legal
// (0, nil) read until bytes arrive or the stream ends.
func (s *Splitter) fillMore() bool {
	if s.err != nil {
		return false
	}
	if s.pos > 0 {
		copy(s.buf, s.buf[s.pos:s.n])
		s.n -= s.pos
		s.pos = 0
	}
	if s.n == len(s.buf) {
		s.buf = append(s.buf, make([]byte, len(s.buf))...)
	}
	for {
		n, err := s.r.Read(s.buf[s.n:])
		s.n += n
		if err != nil {
			s.err = err
		}
		if n > 0 {
			// The compaction above shifted the window, so absolute index
			// positions are stale either way: rebuild.
			s.idx.Build(s.buf[:s.n])
			return true
		}
		if err != nil {
			return false
		}
	}
}

func isSpaceByte(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

func isNameStartByte(c byte) bool {
	return c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}
