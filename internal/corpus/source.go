// Package corpus evaluates compiled queries over collections of XML
// documents: it abstracts where the documents come from (files on disk,
// a tar archive, a concatenated multi-document stream) and runs them
// through a bounded worker pool whose results are emitted strictly in
// corpus order (see Run).
//
// A multi-document corpus is embarrassingly parallel for the paper's
// technique: each document's evaluation is independent and bounded by
// its own GCX buffer peak, so total memory stays roughly
// workers × per-document peak plus the bounded reorder window.
package corpus

import (
	"archive/tar"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Doc is one document of a corpus. Content is obtained through Open so
// file-backed documents stream straight from disk inside the worker
// (per-worker memory = the engine's buffer peak), while stream-backed
// sources (tar, concatenated bodies) hand over bytes that were
// necessarily materialized when the sequential underlying stream was
// advanced past them.
type Doc struct {
	// Name identifies the document for results and errors: the file
	// path, the tar member name, or "doc[N]" for split streams.
	Name string
	// Open returns the content. It is called at most once, by the worker
	// evaluating the document; Close releases pooled backing storage.
	Open func() (io.ReadCloser, error)
	// Size is the content length in bytes when known, else -1.
	Size int64
}

// Source yields the documents of a corpus in corpus order. Sources are
// NOT safe for concurrent use; Run calls Next from a single goroutine.
type Source interface {
	// Next returns the next document. It returns io.EOF at the end of
	// the corpus. A *DocError marks a document that could not be
	// materialized: the caller records the failure in that document's
	// slot and keeps consuming. Any other error is terminal.
	Next() (Doc, error)
	// Close releases resources owned by the source (e.g. an archive
	// file opened from a path).
	Close() error
}

// DocError reports a single document that could not be materialized;
// the corpus continues with the following documents.
type DocError struct {
	Name string
	Err  error
}

func (e *DocError) Error() string { return fmt.Sprintf("corpus: %s: %v", e.Name, e.Err) }
func (e *DocError) Unwrap() error { return e.Err }

// docBufs recycles the backing storage of materialized documents: a
// buffer is drawn when the sequential stream is split, travels with the
// Doc to its worker, and returns to the pool when the worker closes the
// content reader.
var docBufs = sync.Pool{New: func() any { return new(pooledDoc) }}

// pooledDoc is a bytes.Reader over pooled storage.
type pooledDoc struct {
	bytes.Reader
	data []byte
}

// maxRetainedDocBytes bounds pooled document storage: one huge document
// must not pin a same-sized buffer in the pool for the rest of the
// process lifetime. Capacity below the bound is retained so steady-state
// corpus runs reuse their buffers.
const maxRetainedDocBytes = 4 << 20

// Reset truncates the document storage (releasing oversized backing) and
// rewinds the embedded reader for the next pooled use.
func (p *pooledDoc) Reset() {
	if cap(p.data) > maxRetainedDocBytes {
		p.data = nil
	}
	p.data = p.data[:0]
	p.Reader.Reset(nil)
}

func (p *pooledDoc) Close() error {
	p.Reset()
	docBufs.Put(p)
	return nil
}

// materialize wraps content that was already read into pd's pooled
// backing storage as a Doc; the storage returns to the pool when the
// worker closes the content reader.
func materialize(name string, data []byte, pd *pooledDoc) Doc {
	pd.data = data
	return Doc{
		Name: name,
		Size: int64(len(data)),
		Open: func() (io.ReadCloser, error) {
			pd.Reader.Reset(pd.data)
			return pd, nil
		},
	}
}

// maxTarPrealloc caps how much a tar member's header-declared size may
// pre-allocate before any content is read.
const maxTarPrealloc = 1 << 20

// grab returns a pooled doc whose storage has capacity for n bytes
// (n < 0: keep whatever is there).
func grab(n int64) *pooledDoc {
	pd := docBufs.Get().(*pooledDoc)
	if n > 0 && int64(cap(pd.data)) < n {
		pd.data = make([]byte, 0, n)
	}
	return pd
}

// ---------------------------------------------------------------------
// Files

type filesSource struct {
	paths []string
	next  int
}

// Files returns a source over the given file paths, in order. Patterns
// containing glob metacharacters are expanded (matches in lexical
// order); a pattern with no matches falls back to the literal path —
// shell semantics with nullglob off, so a file literally named
// "doc[1].xml" stays reachable — and a path that turns out to be
// unreadable fails only its own document slot.
func Files(patterns ...string) (Source, error) {
	paths, err := ExpandPatterns(patterns...)
	if err != nil {
		return nil, err
	}
	return FileList(paths...), nil
}

// FileList returns a source over literal file paths: no glob
// expansion, order preserved.
func FileList(paths ...string) Source {
	return &filesSource{paths: paths}
}

// ExpandPatterns resolves glob patterns to file paths (see Files for
// the fallback rule), keeping non-pattern paths literal.
func ExpandPatterns(patterns ...string) ([]string, error) {
	var paths []string
	for _, p := range patterns {
		if !strings.ContainsAny(p, "*?[") {
			paths = append(paths, p)
			continue
		}
		matches, err := filepath.Glob(p)
		if err != nil {
			return nil, fmt.Errorf("corpus: bad pattern %q: %w", p, err)
		}
		if len(matches) == 0 {
			// Nothing matched: treat the pattern as a literal name (its
			// slot fails at open time if the file does not exist either).
			paths = append(paths, p)
			continue
		}
		paths = append(paths, matches...)
	}
	return paths, nil
}

func (f *filesSource) Next() (Doc, error) {
	if f.next >= len(f.paths) {
		return Doc{}, io.EOF
	}
	path := f.paths[f.next]
	f.next++
	size := int64(-1)
	if fi, err := os.Stat(path); err == nil {
		size = fi.Size()
	}
	return Doc{
		Name: path,
		Size: size,
		Open: func() (io.ReadCloser, error) { return os.Open(path) },
	}, nil
}

func (f *filesSource) Close() error { return nil }

// ---------------------------------------------------------------------
// Tar

type tarSource struct {
	tr    *tar.Reader
	owned io.Closer // underlying file when opened from a path
	max   int64
}

// Tar returns a source over the regular-file members of a tar archive,
// in archive order. maxDocBytes > 0 caps single members: an oversized
// member is skipped (its slot fails with *DocTooLargeError wrapped in a
// *DocError) without reading it into memory.
func Tar(r io.Reader, maxDocBytes int64) Source {
	return &tarSource{tr: tar.NewReader(r), max: maxDocBytes}
}

// TarFile opens path and returns a Tar source that closes it on Close.
func TarFile(path string, maxDocBytes int64) (Source, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &tarSource{tr: tar.NewReader(f), owned: f, max: maxDocBytes}, nil
}

func (t *tarSource) Next() (Doc, error) {
	for {
		hdr, err := t.tr.Next()
		if err == io.EOF {
			return Doc{}, io.EOF
		}
		if err != nil {
			return Doc{}, fmt.Errorf("corpus: reading tar: %w", err)
		}
		if hdr.Typeflag != tar.TypeReg {
			continue
		}
		if t.max > 0 && hdr.Size > t.max {
			// Skip without materializing; tar.Reader discards the body
			// on the next header read.
			return Doc{}, &DocError{Name: hdr.Name, Err: &DocTooLargeError{Name: hdr.Name, Limit: t.max}}
		}
		// hdr.Size is untrusted input: pre-allocate only a bounded hint
		// and grow while reading, so a crafted header claiming exabytes
		// fails with a clean read error instead of an allocation crash.
		pd := grab(min(hdr.Size, maxTarPrealloc))
		data := pd.data[:0]
		for {
			if len(data) == cap(data) {
				data = append(data, 0)[:len(data)]
			}
			n, err := t.tr.Read(data[len(data):cap(data)])
			data = data[:len(data)+n]
			if err == io.EOF {
				break
			}
			if err != nil {
				pd.data = data
				pd.Close()
				return Doc{}, fmt.Errorf("corpus: reading tar member %s: %w", hdr.Name, err)
			}
		}
		return materialize(hdr.Name, data, pd), nil
	}
}

func (t *tarSource) Close() error {
	if t.owned != nil {
		return t.owned.Close()
	}
	return nil
}

// ---------------------------------------------------------------------
// Concatenated stream

type concatSource struct {
	sp  *Splitter
	idx int
}

// Concat returns a source that splits a concatenated multi-document XML
// stream into its top-level documents (see Splitter for the boundary
// rules). maxDocBytes > 0 caps single documents; an oversized document
// fails its own slot while the stream continues behind it.
func Concat(r io.Reader, maxDocBytes int64) Source {
	sp := NewSplitter(r)
	sp.SetMaxDocBytes(maxDocBytes)
	return &concatSource{sp: sp}
}

func (c *concatSource) Next() (Doc, error) {
	name := fmt.Sprintf("doc[%d]", c.idx)
	pd := grab(-1)
	data, err := c.sp.Next(pd.data)
	if err != nil {
		// Next returns nil on every error; keep pd's existing backing
		// storage so the pooled capacity survives for the next document.
		pd.Close()
		var tooBig *DocTooLargeError
		if errors.As(err, &tooBig) {
			c.idx++
			return Doc{}, &DocError{Name: name, Err: &DocTooLargeError{Name: name, Limit: tooBig.Limit}}
		}
		return Doc{}, err
	}
	c.idx++
	return materialize(name, data, pd), nil
}

func (c *concatSource) Close() error { return nil }

// ---------------------------------------------------------------------
// Chain

type chainSource struct {
	srcs []Source
	cur  int
}

// Chain concatenates sources: all documents of the first, then the
// second, and so on. Closing the chain closes every member.
func Chain(srcs ...Source) Source {
	return &chainSource{srcs: srcs}
}

func (c *chainSource) Next() (Doc, error) {
	for c.cur < len(c.srcs) {
		doc, err := c.srcs[c.cur].Next()
		if err == io.EOF {
			c.cur++
			continue
		}
		return doc, err
	}
	return Doc{}, io.EOF
}

func (c *chainSource) Close() error {
	var err error
	for _, s := range c.srcs {
		if cerr := s.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
